#!/usr/bin/env python3
"""desalign-analyze: whole-program concurrency & architecture analyzer.

Where desalign-lint token-scans single lines, this tool builds global
models across every translation unit of the build (the TU list comes from
the CMake-exported compile_commands.json; without one it falls back to a
deterministic source-tree walk, with a notice — the same graceful-skip
policy the clang-tidy/TSA stages use when clang is absent) and enforces
three whole-program contracts:

  lock-order        Every `MutexLock` scope and REQUIRES/
                    EXCLUSIVE_LOCKS_REQUIRED/ACQUIRE annotation is
                    extracted into a global lock-acquisition graph
                    (lock A -> lock B when B is acquired while A is
                    held, lexically or through a call chain). Any cycle
                    is a potential deadlock: two threads entering the
                    cycle from different edges can block forever.
                    Intentional orders are documented in
                    tools/analyze/lock_order.toml (ACQUIRED_BEFORE-style
                    `[[order]]` entries join the graph, so inverting a
                    documented order is itself a cycle), and a known-
                    benign cycle can be suppressed only by a named
                    `[[allow_cycle]]` manifest entry or a pragma on the
                    reported line.

  layering          The module dependency DAG in
                    tools/analyze/layering.toml is enforced against the
                    include graph: a file in src/<m>/ may only #include
                    from modules <m> is declared to depend on. tests/,
                    bench/ and tools/ see everything; a new src/ module
                    must be declared before it links anywhere.

  discarded-status  Call sites that drop the result of a fallible API
                    (common::Status / common::Result returns such as
                    Reload, ReloadAndRebuild, checkpoint Save/Load,
                    find-db Save/Load, QuantizeTensor, and the
                    ServeStatus-carrying futures of BatchQueue::Submit)
                    as a bare expression-statement. `(void)expr` is the
                    sanctioned explicit discard. The declarations
                    themselves carry [[nodiscard]] (the compiler
                    enforces new call sites forever); this pass also
                    verifies the nodiscard anchors are still present, so
                    the attribute cannot be silently dropped.

Suppression is per-line and per-rule, tagged with this tool's name so a
lint pragma never silences an analyzer finding:

    queue.Submit(std::move(q));  // desalign-analyze: allow(discarded-status) fire-and-forget warmup

The finding/pragma/exit-code model is shared with desalign-lint via
tools/lint/findings.py. Exit codes: 0 clean, 1 findings, 2 usage/IO or
manifest error. Findings are sorted by (path, line, rule) and are a pure
function of the scanned contents plus the two manifests.

Usage:
    tools/analyze/desalign_analyze.py [PATH...]     # default: src/ tests/
    tools/analyze/desalign_analyze.py --list-rules
    tools/analyze/desalign_analyze.py --passes=lock-order,layering
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
import tomllib

_THIS_DIR = os.path.dirname(os.path.abspath(__file__))
_REPO_ROOT = os.path.dirname(os.path.dirname(_THIS_DIR))
sys.path.insert(0, os.path.join(_REPO_ROOT, "tools", "lint"))

import findings as fm  # noqa: E402  (shared finding model)

TOOL = "desalign-analyze"

RULES = {
    "lock-order": "cycle in the global lock-acquisition graph — a "
                  "potential deadlock; fix the order or document it in "
                  "tools/analyze/lock_order.toml",
    "layering": "include crosses the module DAG in "
                "tools/analyze/layering.toml; depend downward or move "
                "the shared code down a layer",
    "discarded-status": "result of a fallible API is dropped; check it, "
                        "propagate it, or cast to void deliberately",
    fm.BAD_PRAGMA: "desalign-analyze pragma names an unknown rule",
}

ALL_PASSES = ("lock-order", "layering", "discarded-status")

PRAGMAS = fm.PragmaModel(TOOL, RULES)

FIXTURE_DIR_MARKERS = (
    os.path.join("tests", "lint", "fixtures"),
    os.path.join("tests", "analyze", "fixtures"),
)

# ---------------------------------------------------------------------------
# Shared source model


class SourceFile:
    __slots__ = ("path", "display", "raw", "code", "norm")

    def __init__(self, path, display):
        self.path = path
        self.display = display
        self.norm = display.replace(os.sep, "/")
        self.raw = fm.read_lines(path, TOOL)
        self.code = fm.strip_comments_and_strings(self.raw)


def emit(found, sf, lineno, rule, detail):
    """Appends a finding unless a pragma on its line allows the rule."""
    raw = sf.raw[lineno - 1] if 0 < lineno <= len(sf.raw) else ""
    allowed = PRAGMAS.line_allowances(raw)
    if allowed is not None and rule in allowed:
        return
    found.append(fm.Finding(sf.display, lineno, rule, detail))


def scan_pragma_abuse(found, sf):
    """Reports analyzer pragmas naming unknown rules (bad-pragma), on
    every line whether or not it also carries a finding."""
    for idx, raw in enumerate(sf.raw):
        allowed = PRAGMAS.line_allowances(raw)
        if allowed is None:
            continue
        for name in sorted(allowed):
            if name not in RULES or name == fm.BAD_PRAGMA:
                found.append(fm.Finding(sf.display, idx + 1, fm.BAD_PRAGMA,
                                        f"unknown rule '{name}'"))


# ---------------------------------------------------------------------------
# Pass 1: lock-order

MUTEXLOCK_RE = re.compile(
    r"\b(?:common::)?MutexLock\s+\w+\s*\(\s*([^;]*?)\s*\)\s*$")
ANNOTATION_RE = re.compile(
    r"\b(REQUIRES|EXCLUSIVE_LOCKS_REQUIRED|ACQUIRE|ACQUIRE_SHARED|"
    r"REQUIRES_SHARED|SHARED_LOCKS_REQUIRED)\s*\(([^()]*)\)")
CALL_RE = re.compile(r"\b([A-Za-z_]\w*)\s*\(")
SCOPE_CLASS_RE = re.compile(
    r"^(?:template\s*<[^{}]*>\s*)?(?:class|struct|union|enum(?:\s+class)?)"
    r"\b[^=;]*$")
CLASS_NAME_RE = re.compile(
    r"\b(?:class|struct|union|enum(?:\s+class)?)\s+"
    # Attribute macros, with or without arguments (CAPABILITY("m"),
    # SCOPED_CAPABILITY); backtracking recovers a genuinely ALL_CAPS
    # class name since nothing matchable would follow it.
    r"(?:[A-Z_][A-Z0-9_]*(?:\s*\([^()]*\))?\s+)*"
    r"(?:\[\[[^\]]*\]\]\s*)*"
    r"([A-Za-z_]\w*)")
NAMESPACE_RE = re.compile(r"^namespace\b\s*([\w:]*)")
FUNC_NAME_RE = re.compile(
    r"([A-Za-z_~]\w*(?:\s*::\s*[A-Za-z_~]\w*)*)\s*\(")
OPERATOR_NAME_RE = re.compile(
    r"((?:[A-Za-z_]\w*\s*::\s*)*operator\s*[^\s(]+)\s*\(")
TEMPLATE_PREFIX_RE = re.compile(
    r"^template\s*<[^<>]*(?:<[^<>]*>[^<>]*)*>\s*")
LOCAL_DECL_TMPL = (r"\b([A-Za-z_]\w*(?:::[A-Za-z_]\w*)*)"
                   r"(?:\s*<[^;<>]*>)?\s*[&*]?\s+\b{name}\b")

CONTROL_KEYWORDS = frozenset((
    "if", "for", "while", "switch", "catch", "return", "sizeof", "new",
    "delete", "throw", "assert", "static_assert", "alignof", "decltype",
    "co_return", "co_await", "else", "do", "case", "default",
))

# Call names never worth tracking (ubiquitous utilities that either hold no
# project lock or would alias by name across every class).
CALL_NOISE = frozenset((
    "MutexLock", "CondVar", "Mutex", "Finding", "CHECK", "CHECK_EQ",
    "CHECK_GE", "CHECK_GT", "CHECK_LE", "CHECK_LT", "CHECK_NE", "DCHECK",
    "size", "empty", "begin", "end", "push_back", "emplace_back", "data",
    "reserve", "resize", "clear", "find", "count", "insert", "erase",
    "front", "back", "get", "reset", "release", "move", "swap", "min",
    "max", "make_unique", "make_shared", "to_string", "static_cast",
    "reinterpret_cast", "const_cast", "dynamic_cast",
)) | CONTROL_KEYWORDS


class FunctionModel:
    __slots__ = ("qual_name", "last_name", "class_name", "file", "line",
                 "acquires", "edges", "calls", "body_text")

    def __init__(self, qual_name, class_name, file, line):
        self.qual_name = qual_name
        self.last_name = qual_name.rsplit("::", 1)[-1]
        self.class_name = class_name
        self.file = file
        self.line = line
        self.acquires = set()    # lock ids acquired anywhere inside
        self.edges = []          # (held_id, acquired_id, line)
        self.calls = []          # (frozenset(held_ids) | None, name, line)
        self.body_text = ""      # accumulated code, for local-decl lookup


class _Scope:
    __slots__ = ("kind", "name", "locks")

    def __init__(self, kind, name=""):
        self.kind = kind   # namespace | class | func | block
        self.name = name
        self.locks = []    # lock ids acquired directly in this scope


class LockScanner:
    """Extracts per-function lock acquisitions, annotation-implied held
    sets, and call sites from one file, via brace/statement structure.

    This is a structural scanner, not a parser: it understands the tree's
    clang-format style (scopes open on the signature line, RAII MutexLock
    statements, out-of-line `Class::Method` definitions) and resolves lock
    expressions to `Class::member` identities — member names against the
    enclosing class, `recv.member` through local declarations, and
    `Factory()` calls as global identities.
    """

    def __init__(self, sf, functions):
        self.sf = sf
        self.functions = functions
        self.scopes = []
        self.held = []            # stack of lock ids currently held
        self.func_stack = []      # FunctionModel currently being scanned
        self.pending = ""
        self.pending_line = 0     # line where pending started

    def current_func(self):
        return self.func_stack[-1] if self.func_stack else None

    def current_class(self):
        for scope in reversed(self.scopes):
            if scope.kind == "class":
                return scope.name
        return ""

    def scan(self):
        in_directive = False
        for idx, code in enumerate(self.sf.code):
            lineno = idx + 1
            raw = self.sf.raw[idx]
            if in_directive or code.lstrip().startswith("#"):
                # Preprocessor lines can hold unbalanced braces; skipping
                # them keeps the scope stack honest.
                in_directive = raw.rstrip().endswith("\\")
                continue
            for ch in code:
                if ch == "{":
                    self._open_scope(lineno)
                elif ch == "}":
                    self._close_scope()
                elif ch == ";":
                    self._statement(self.pending, lineno)
                    self.pending = ""
                    self.pending_line = 0
                else:
                    if not self.pending.strip():
                        self.pending_line = lineno
                    self.pending += ch
            self.pending += "\n"
        return self.functions

    # -- scope machinery

    def _open_scope(self, lineno):
        header = self.pending.strip()
        self.pending = ""
        self.pending_line = 0
        f = self.current_func()
        if f is not None:
            f.body_text += header + "\n"

        ns = NAMESPACE_RE.match(header)
        if ns is not None:
            self.scopes.append(_Scope("namespace", ns.group(1)))
            return
        if SCOPE_CLASS_RE.match(header):
            stripped = TEMPLATE_PREFIX_RE.sub("", header)
            m = CLASS_NAME_RE.search(stripped)
            self.scopes.append(_Scope("class",
                                      m.group(1) if m else "<anon>"))
            return
        if "(" in header and f is None:
            m = OPERATOR_NAME_RE.search(header)
            if m is None:
                m = FUNC_NAME_RE.search(header)
            if m is not None and header[:m.start()].count("(") == 0:
                name = re.sub(r"\s+", "", m.group(1))
                base = name.rsplit("::", 1)[-1]
                if base not in CONTROL_KEYWORDS:
                    self._open_function(name, header, lineno)
                    return
        if f is not None:
            # Calls inside a control-scope header (`if (Foo())`, range-for
            # sources, ...) still happen while the current locks are held.
            self._extract_calls(header, lineno)
        self.scopes.append(_Scope("block"))

    def _open_function(self, name, header, lineno):
        cls = self.current_class()
        if "::" in name:
            parts = name.split("::")
            cls = parts[-2]
            qual = name
        else:
            qual = f"{cls}::{name}" if cls else name
        func = FunctionModel(qual, cls, self.sf, lineno)
        self.func_stack.append(func)
        scope = _Scope("func", qual)
        self.scopes.append(scope)
        # REQUIRES locks are held on entry; ACQUIRE locks are acquired by
        # the function body (summary + held for the rest of the body).
        for macro, args in ANNOTATION_RE.findall(header):
            for arg in args.split(","):
                arg = arg.strip()
                if not arg or arg == "!":
                    continue
                lock = self._resolve_lock(arg, func)
                if lock is None:
                    continue
                if macro.startswith(("ACQUIRE",)):
                    self._acquire(lock, lineno, func, scope)
                else:
                    scope.locks.append(lock)
                    self.held.append(lock)
        self.functions.append(func)

    def _close_scope(self):
        self.pending = ""
        self.pending_line = 0
        if not self.scopes:
            return
        scope = self.scopes.pop()
        for lock in scope.locks:
            if lock in self.held:
                self.held.remove(lock)
        if scope.kind == "func" and self.func_stack:
            self.func_stack.pop()

    # -- statements

    def _statement(self, stmt, lineno):
        stmt = stmt.strip()
        if not stmt:
            return
        func = self.current_func()
        if func is None:
            # Class-body declaration: an annotated prototype still tells us
            # what calling it acquires/requires, cross-TU.
            self._declaration(stmt, lineno)
            return
        func.body_text += stmt + "\n"
        line = self.pending_line or lineno

        m = MUTEXLOCK_RE.search(stmt)
        if m is not None:
            lock = self._resolve_lock(m.group(1), func)
            if lock is not None:
                self._acquire(lock, line, func,
                              self.scopes[-1] if self.scopes else None)
            return
        lk = re.search(r"([A-Za-z_][\w.>-]*)\s*(?:\.|->)\s*Lock\s*\(\s*\)",
                       stmt)
        if lk is not None:
            lock = self._resolve_lock(lk.group(1), func)
            if lock is not None and self.scopes:
                self._acquire(lock, line, func, self.scopes[-1])
            return
        ul = re.search(r"([A-Za-z_][\w.>-]*)\s*(?:\.|->)\s*Unlock\s*\(\s*\)",
                       stmt)
        if ul is not None:
            lock = self._resolve_lock(ul.group(1), func)
            if lock in self.held:
                self.held.remove(lock)
                for scope in self.scopes:
                    if lock in scope.locks:
                        scope.locks.remove(lock)
                        break
            return

        self._extract_calls(stmt, line)

    def _extract_calls(self, text, line):
        func = self.current_func()
        if func is None:
            return
        held = frozenset(self.held)
        for cm in CALL_RE.finditer(text):
            callee = cm.group(1)
            if callee in CALL_NOISE:
                continue
            func.calls.append((held if held else None, callee, line))

    def _declaration(self, stmt, lineno):
        annotations = ANNOTATION_RE.findall(stmt)
        if not annotations or "(" not in stmt:
            return
        m = FUNC_NAME_RE.search(stmt)
        if m is None:
            return
        name = re.sub(r"\s+", "", m.group(1))
        cls = self.current_class()
        qual = f"{cls}::{name}" if cls and "::" not in name else name
        func = FunctionModel(qual, cls, self.sf, lineno)
        for macro, args in annotations:
            if not macro.startswith("ACQUIRE"):
                continue
            for arg in args.split(","):
                arg = arg.strip()
                if arg and arg != "!":
                    lock = self._resolve_lock(arg, func)
                    if lock is not None:
                        func.acquires.add(lock)
        if func.acquires:
            self.functions.append(func)

    def _acquire(self, lock, lineno, func, scope):
        for held in self.held:
            func.edges.append((held, lock, lineno))
        func.acquires.add(lock)
        if scope is not None:
            scope.locks.append(lock)
        self.held.append(lock)

    # -- lock identity resolution

    def _resolve_lock(self, expr, func):
        expr = expr.strip().lstrip("&*").strip()
        if not expr:
            return None
        if re.fullmatch(r"[A-Za-z_]\w*(?:::\w+)*\s*\(\s*\)", expr):
            return re.sub(r"\s+", "", expr)  # factory: GlobalPoolMutex()
        m = re.fullmatch(r"([A-Za-z_]\w*)\s*(?:\.|->)\s*([A-Za-z_]\w*)",
                         expr)
        if m is not None:
            recv, member = m.group(1), m.group(2)
            rtype = self._local_type(recv, func)
            if rtype is not None:
                return f"{rtype}::{member}"
            return f"{func.qual_name}#{recv}.{member}"
        if re.fullmatch(r"[A-Za-z_]\w*::[\w:]+", expr):
            return expr
        if re.fullmatch(r"[A-Za-z_]\w*", expr):
            if func.class_name:
                return f"{func.class_name}::{expr}"
            return f"{func.qual_name}#{expr}"
        compact = re.sub(r"\s+", "", expr)
        return f"{func.qual_name}#<{compact}>"

    def _local_type(self, name, func):
        rx = re.compile(LOCAL_DECL_TMPL.format(name=re.escape(name)))
        rtype = None
        for m in rx.finditer(func.body_text):
            cand = m.group(1)
            last = cand.rsplit("::", 1)[-1]
            if last in CONTROL_KEYWORDS or last in ("const", "auto",
                                                    "static", "mutable"):
                continue
            rtype = last
        return rtype


def build_lock_graph(sources):
    """Returns (edges, functions): edges maps (a, b) -> (display, line,
    via) for the lexically smallest witness of 'b acquired while a held'.
    """
    functions = []
    for sf in sources:
        LockScanner(sf, functions).scan()

    # May-acquire summaries to a fixpoint: a function may acquire what it
    # acquires directly plus whatever its callees (matched by name) may.
    by_name = {}
    for f in functions:
        by_name.setdefault(f.last_name, []).append(f)
    may = {id(f): set(f.acquires) for f in functions}
    for _ in range(len(functions)):
        changed = False
        for f in functions:
            mine = may[id(f)]
            before = len(mine)
            for _, callee, _ in f.calls:
                for g in by_name.get(callee, ()):
                    mine |= may[id(g)]
            if len(mine) != before:
                changed = True
        if not changed:
            break

    edges = {}

    def witness(a, b, display, line, via):
        key = (a, b)
        cand = (display, line, via)
        if key not in edges or (cand[0], cand[1]) < edges[key][:2]:
            edges[key] = cand

    for f in functions:
        for a, b, line in f.edges:
            witness(a, b, f.file.display, line, "")
        for held, callee, line in f.calls:
            if held is None:
                continue
            for g in by_name.get(callee, ()):
                for b in may[id(g)]:
                    for a in held:
                        # Same-lock self-edges through name-matched calls
                        # would alias distinct objects; only lexical
                        # re-acquisition (above) reports those.
                        if a != b:
                            witness(a, b, f.file.display, line,
                                    f"via {callee}()")
    return edges, functions


def tarjan_sccs(nodes, succ):
    """Iterative Tarjan; returns SCCs as sorted node lists, in a
    deterministic order."""
    index = {}
    low = {}
    on_stack = set()
    stack = []
    sccs = []
    counter = [0]

    for root in sorted(nodes):
        if root in index:
            continue
        work = [(root, iter(sorted(succ.get(root, ()))))]
        index[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, it = work[-1]
            advanced = False
            for nxt in it:
                if nxt not in index:
                    index[nxt] = low[nxt] = counter[0]
                    counter[0] += 1
                    stack.append(nxt)
                    on_stack.add(nxt)
                    work.append((nxt, iter(sorted(succ.get(nxt, ())))))
                    advanced = True
                    break
                if nxt in on_stack:
                    low[node] = min(low[node], index[nxt])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                scc = []
                while True:
                    top = stack.pop()
                    on_stack.discard(top)
                    scc.append(top)
                    if top == node:
                        break
                sccs.append(sorted(scc))
    return sccs


def load_lock_manifest(root):
    path = os.path.join(root, "tools", "analyze", "lock_order.toml")
    if not os.path.isfile(path):
        return [], []
    try:
        with open(path, "rb") as f:
            data = tomllib.load(f)
    except (OSError, tomllib.TOMLDecodeError) as e:
        print(f"{TOOL}: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(fm.EXIT_USAGE)
    orders = []
    for entry in data.get("order", []):
        before, after = entry.get("before"), entry.get("after")
        if not before or not after:
            print(f"{TOOL}: {path}: [[order]] needs before/after",
                  file=sys.stderr)
            sys.exit(fm.EXIT_USAGE)
        orders.append((before, after))
    allowed = []
    for entry in data.get("allow_cycle", []):
        locks = entry.get("locks")
        if not locks or not entry.get("reason"):
            print(f"{TOOL}: {path}: [[allow_cycle]] needs locks + reason",
                  file=sys.stderr)
            sys.exit(fm.EXIT_USAGE)
        allowed.append(frozenset(locks))
    return orders, allowed


def pass_lock_order(found, sources, root):
    edges, _ = build_lock_graph(sources)
    orders, allowed_cycles = load_lock_manifest(root)

    # Documented orders join the graph: observing the inversion of a
    # documented ACQUIRED_BEFORE edge closes a 2-cycle and is reported.
    doc_edges = set()
    for before, after in orders:
        if (before, after) not in edges:
            doc_edges.add((before, after))

    succ = {}
    nodes = set()
    for a, b in list(edges) + list(doc_edges):
        succ.setdefault(a, set()).add(b)
        nodes.update((a, b))

    # The manifest itself must be a partial order, not a cycle source.
    doc_succ = {}
    for before, after in orders:
        doc_succ.setdefault(before, set()).add(after)
    for scc in tarjan_sccs({n for e in orders for n in e}, doc_succ):
        if len(scc) > 1:
            print(f"{TOOL}: lock_order.toml [[order]] entries are cyclic: "
                  f"{' -> '.join(scc)}", file=sys.stderr)
            sys.exit(fm.EXIT_USAGE)

    for scc in tarjan_sccs(nodes, succ):
        internal = [(a, b) for (a, b) in edges
                    if a in scc and b in scc and (len(scc) > 1 or a == b)]
        if len(scc) == 1:
            internal = [(a, b) for (a, b) in internal if a == b == scc[0]]
        if not internal:
            continue
        if frozenset(scc) in allowed_cycles:
            continue
        # Anchor at the lexically smallest witness among the cycle's
        # observed edges; describe every edge so the report is actionable.
        witnesses = sorted(
            (edges[e][0], edges[e][1], e, edges[e][2]) for e in internal)
        display, line, _, _ = witnesses[0]
        parts = []
        for w_display, w_line, (a, b), via in witnesses:
            via_txt = f" {via}" if via else ""
            parts.append(f"{a} -> {b} at {w_display}:{w_line}{via_txt}")
        if len(scc) == 1:
            detail = (f"{scc[0]} re-acquired while already held "
                      f"(common::Mutex is non-reentrant): {parts[0]}")
        else:
            detail = ("cycle between {" + ", ".join(scc) + "}: "
                      + "; ".join(parts))
        sf = next(s for s in sources if s.display == display)
        emit(found, sf, line, "lock-order", detail)


# ---------------------------------------------------------------------------
# Pass 2: layering

INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"')
SRC_MODULE_RE = re.compile(r"(?:^|/)src/([A-Za-z0-9_]+)/")


def load_layering(root):
    path = os.path.join(root, "tools", "analyze", "layering.toml")
    if not os.path.isfile(path):
        print(f"{TOOL}: missing {path} — the layering pass needs the "
              f"module DAG manifest", file=sys.stderr)
        sys.exit(fm.EXIT_USAGE)
    try:
        with open(path, "rb") as f:
            data = tomllib.load(f)
    except (OSError, tomllib.TOMLDecodeError) as e:
        print(f"{TOOL}: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(fm.EXIT_USAGE)
    modules = data.get("modules")
    if not isinstance(modules, dict) or not modules:
        print(f"{TOOL}: {path}: needs a [modules] table", file=sys.stderr)
        sys.exit(fm.EXIT_USAGE)
    deps = {}
    for name, allowed in modules.items():
        deps[name] = set(allowed)
    # The declared DAG must actually be acyclic, or the contract is void.
    succ = {m: set(d) & set(deps) for m, d in deps.items()}
    for scc in tarjan_sccs(set(deps), succ):
        if len(scc) > 1:
            print(f"{TOOL}: {path}: declared module graph is cyclic: "
                  f"{' -> '.join(scc)}", file=sys.stderr)
            sys.exit(fm.EXIT_USAGE)
    return deps


def pass_layering(found, sources, root):
    deps = load_layering(root)
    for sf in sources:
        m = SRC_MODULE_RE.search(sf.norm)
        if m is None:
            continue  # tests/, bench/, tools/ see everything
        module = m.group(1)
        undeclared = module not in deps
        for idx, raw in enumerate(sf.raw):
            inc = INCLUDE_RE.match(raw)
            if inc is None:
                continue
            target = inc.group(1).split("/", 1)[0]
            if "/" not in inc.group(1) or target not in deps:
                continue  # local header or system-style include
            if undeclared:
                emit(found, sf, idx + 1, "layering",
                     f"module '{module}' is not declared in "
                     f"tools/analyze/layering.toml")
                continue
            if target != module and target not in deps[module]:
                allowed = ", ".join(sorted(deps[module])) or "none"
                emit(found, sf, idx + 1, "layering",
                     f"module '{module}' may not include '{target}' "
                     f"(allowed: {allowed})")


# ---------------------------------------------------------------------------
# Pass 3: discarded-status

# Fallible-call surface: APIs whose return value carries the only record
# of failure. Name-keyed; the statement-shape check (a bare
# `chain.Name(...);` expression-statement) keeps generic names precise.
FALLIBLE_CALLS = {
    "Reload": "EmbeddingStore::Reload (common::Status)",
    "ReloadAndRebuild": "IvfRetriever::ReloadAndRebuild (common::Status)",
    "Save": "checkpoint/find-db Save (common::Status)",
    "Load": "checkpoint/find-db Load (common::Result)",
    "SaveCheckpoint": "nn::SaveCheckpoint (common::Status)",
    "LoadCheckpoint": "nn::LoadCheckpoint (common::Result)",
    "LoadLatestValid": "CheckpointManager::LoadLatestValid (common::Result)",
    "LoadAllParameters": "nn::LoadAllParameters (common::Status)",
    "Quantize": "EmbeddingStore::Quantize (common::Result)",
    "QuantizeTensor": "nn::QuantizeTensor (common::Result)",
    "QuantizeRow": "nn::quant::QuantizeRow (common::Status)",
    "Submit": "BatchQueue::Submit (future<TopKResult> w/ ServeStatus)",
    "SubmitWithDeadline": "BatchQueue::SubmitWithDeadline (future)",
    "Init": "CheckpointManager::Init (common::Status)",
    "Write": "CheckpointManager::Write (common::Status)",
}

FALLIBLE_RE = re.compile(
    r"\b(" + "|".join(sorted(FALLIBLE_CALLS)) + r")\s*\(")

# [[nodiscard]] anchors: (display-path suffix, regex that must match some
# line, human name). The attribute makes the compiler reject new dropped
# call sites forever — so losing it silently would rot the whole contract.
NODISCARD_ANCHORS = (
    ("src/common/status.h",
     re.compile(r"class\s+\[\[nodiscard\]\]\s+Status\b"), "common::Status"),
    ("src/common/status.h",
     re.compile(r"class\s+\[\[nodiscard\]\]\s+Result\b"), "common::Result"),
)
FUTURE_DECL_RE = re.compile(r"std::future\s*<\s*TopKResult\s*>\s+\w+\s*\(")
NODISCARD_RE = re.compile(r"\[\[nodiscard\]\]")

STMT_BOUNDARY = frozenset(";{}:)")


def _chain_start(text, pos):
    """Start offset of the receiver chain ending at `pos` (the callee
    name's first char): walks back over `a.b->c::` links and `(...)`
    groups of chained calls."""
    i = pos
    while True:
        j = i
        while j > 0 and text[j - 1] in " \t\n":
            j -= 1
        if j >= 2 and text[j - 2:j] in ("->", "::"):
            link = j - 2
        elif j >= 1 and text[j - 1] == ".":
            link = j - 1
        else:
            return i
        k = link
        while k > 0 and text[k - 1] in " \t\n":
            k -= 1
        if k >= 1 and text[k - 1] == ")":
            depth = 0
            k -= 1
            while k >= 0:
                if text[k] == ")":
                    depth += 1
                elif text[k] == "(":
                    depth -= 1
                    if depth == 0:
                        break
                k -= 1
            if k < 0:
                return i
        elif k >= 1 and (text[k - 1].isalnum() or text[k - 1] == "_"):
            while k > 0 and (text[k - 1].isalnum() or text[k - 1] == "_"):
                k -= 1
        else:
            return i
        i = k


def _match_paren(text, open_pos):
    depth = 0
    for i in range(open_pos, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return i
    return -1


def pass_discarded_status(found, sources):
    for sf in sources:
        text = "\n".join(sf.code)
        # line_of[i] = 1-based line containing offset i.
        line_starts = [0]
        for i, ch in enumerate(text):
            if ch == "\n":
                line_starts.append(i + 1)

        def line_of(offset):
            lo, hi = 0, len(line_starts) - 1
            while lo < hi:
                mid = (lo + hi + 1) // 2
                if line_starts[mid] <= offset:
                    lo = mid
                else:
                    hi = mid - 1
            return lo + 1

        for m in FALLIBLE_RE.finditer(text):
            name = m.group(1)
            start = _chain_start(text, m.start(1))
            j = start
            while j > 0 and text[j - 1] in " \t\n":
                j -= 1
            if j > 0 and text[j - 1] not in STMT_BOUNDARY:
                continue  # value consumed: return/assign/condition/arg
            before = text[:j].rstrip()
            if before.endswith("(void)"):
                continue  # sanctioned explicit discard
            if re.search(r"\b(?:return|case|goto|else|do)\s*$", before):
                continue
            open_paren = text.index("(", m.end(1) - 1)
            close = _match_paren(text, open_paren)
            if close < 0:
                continue
            k = close + 1
            while k < len(text) and text[k] in " \t\n":
                k += 1
            if k >= len(text) or text[k] != ";":
                continue  # chained (.ok(), .value(), ...) or non-statement
            lineno = line_of(m.start(1))
            emit(found, sf, lineno, "discarded-status",
                 f"dropped result of {FALLIBLE_CALLS[name]}")

        # Declaration side: the nodiscard anchors must still be present.
        for suffix, rx, label in NODISCARD_ANCHORS:
            if not sf.norm.endswith(suffix):
                continue
            if not any(rx.search(c) for c in sf.code):
                emit(found, sf, 1, "discarded-status",
                     f"{label} lost its [[nodiscard]] — dropped-status "
                     f"enforcement at the compiler is gone")
        if "/src/" in f"/{sf.norm}" and sf.norm.endswith((".h", ".hpp")):
            for idx, code in enumerate(sf.code):
                if FUTURE_DECL_RE.search(code):
                    context = "\n".join(sf.code[max(0, idx - 2):idx + 1])
                    if not NODISCARD_RE.search(context):
                        emit(found, sf, idx + 1, "discarded-status",
                             "future-returning serve API lacks "
                             "[[nodiscard]] — a dropped future loses its "
                             "ServeStatus outcome")


# ---------------------------------------------------------------------------
# Driver

def load_tu_list(root, build_dir):
    """TUs from the CMake-exported compile_commands.json, or None with a
    notice (graceful skip: the walk-based fallback still analyzes
    everything, it just cannot cross-check build membership)."""
    path = os.path.join(root, build_dir, "compile_commands.json")
    if not os.path.isfile(path):
        print(f"{TOOL}: no {os.path.relpath(path, root)} — run cmake "
              f"first for the compile-commands-driven TU list; falling "
              f"back to a source-tree walk", file=sys.stderr)
        return None
    try:
        with open(path, "r", encoding="utf-8") as f:
            entries = json.load(f)
    except (OSError, ValueError) as e:
        print(f"{TOOL}: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(fm.EXIT_USAGE)
    tus = set()
    for entry in entries:
        file_path = os.path.normpath(
            os.path.join(entry.get("directory", root), entry["file"]))
        tus.add(file_path)
    return tus


def main(argv):
    parser = argparse.ArgumentParser(prog=TOOL, add_help=True)
    parser.add_argument("paths", nargs="*",
                        help="files or directories (default: src tests)")
    parser.add_argument("--root", default=None,
                        help="repository root (default: auto-detected)")
    parser.add_argument("--build-dir", default="build",
                        help="build tree holding compile_commands.json")
    parser.add_argument("--passes", default=",".join(ALL_PASSES),
                        help="comma-separated subset of: "
                             + ", ".join(ALL_PASSES))
    parser.add_argument("--list-rules", action="store_true")
    args = parser.parse_args(argv)

    if args.list_rules:
        for name in sorted(RULES):
            print(f"{name}: {RULES[name]}")
        return fm.EXIT_CLEAN

    passes = [p.strip() for p in args.passes.split(",") if p.strip()]
    for p in passes:
        if p not in ALL_PASSES:
            print(f"{TOOL}: unknown pass '{p}' (have: "
                  f"{', '.join(ALL_PASSES)})", file=sys.stderr)
            return fm.EXIT_USAGE

    root = args.root or _REPO_ROOT
    paths = args.paths or ["src", "tests"]

    files = fm.collect_files(paths, root, FIXTURE_DIR_MARKERS, TOOL)
    sources = [SourceFile(full, rel) for full, rel in files]

    # compile_commands.json drives the TU cross-check: every in-scope .cc
    # must be part of the build, or the analyzer is reasoning about code
    # the build has silently dropped.
    found = []
    tus = load_tu_list(root, args.build_dir)
    if tus is not None:
        for sf in sources:
            if (sf.norm.startswith("src/") and sf.norm.endswith(".cc")
                    and os.path.normpath(sf.path) not in tus):
                found.append(fm.Finding(
                    sf.display, 1, "layering",
                    "translation unit missing from compile_commands.json "
                    "— not built, so no contract is enforced on it"))

    for sf in sources:
        scan_pragma_abuse(found, sf)
    if "lock-order" in passes:
        pass_lock_order(found, sources, root)
    if "layering" in passes:
        pass_layering(found, sources, root)
    if "discarded-status" in passes:
        pass_discarded_status(found, sources)

    return fm.report(found, RULES, len(sources), TOOL)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
