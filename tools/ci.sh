#!/usr/bin/env bash
# CI entry point: the tier-1 gate plus the sanitizer and fault gates.
#
#   tools/ci.sh            # full: tier-1 build + all tests + kernel-bench
#                          # smoke, then ASan faults, then TSan suite
#   tools/ci.sh --tier1    # only the tier-1 gate (build + full ctest +
#                          # kernel-bench smoke)
#   tools/ci.sh --tsan     # only the ThreadSanitizer-labelled suite
#   tools/ci.sh --faults   # only the fault-injection suite under ASan
#
# Test labels (see tests/CMakeLists.txt):
#   unit        — fast, hermetic, single-component tests
#   integration — multi-component pipelines (train → serve, determinism)
#   sanitizer   — concurrency-sensitive suites worth re-running under TSan
#   faults      — crash-safety suite: checksummed checkpoints, torn-write
#                 and bit-flip injection, kill-and-resume bit-exactness
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc)"

run_tier1=1
run_tsan=1
run_faults=1
case "${1:-}" in
  --tier1) run_tsan=0; run_faults=0 ;;
  --tsan) run_tier1=0; run_faults=0 ;;
  --faults) run_tier1=0; run_tsan=0 ;;
  "") ;;
  *) echo "usage: tools/ci.sh [--tier1|--tsan|--faults]" >&2; exit 2 ;;
esac

if [[ "${run_tier1}" == 1 ]]; then
  echo "== tier-1: build + full test suite =="
  cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build build -j "${JOBS}"
  ctest --test-dir build --output-on-failure -j "${JOBS}"

  echo "== kernel-bench smoke: schema + vector-path regression gate =="
  # Tiny shapes, two repeats: this is a regression tripwire (does the
  # vector path at least match the scalar reference on elementwise ops?),
  # not a performance measurement — see docs/PERFORMANCE.md for real runs.
  ./build/tools/desalign bench-kernels --smoke --threads-list=1,2 \
    --repeats=2 --out=build/BENCH_kernels_smoke.json
  python3 - <<'EOF'
import json
with open("build/BENCH_kernels_smoke.json") as f:
    report = json.load(f)
assert report["schema"] == "desalign.kernel_bench.v1", report.get("schema")
cases = {c["op"]: c for c in report["cases"]}
assert len(cases) >= 15, f"expected >=15 bench cases, got {len(cases)}"
for case in report["cases"]:
    assert case["ref_ns_per_elem"] > 0, case
    for v in case["variants"]:
        assert v["isa"] in ("scalar", "avx2"), v
        assert v["ns_per_elem"] > 0 and v["speedup"] > 0, v
# The contiguous elementwise kernels are the pure vector path: even at
# smoke sizes their best variant must not regress below the old serial
# scalar loops.
for op in ("add", "mul", "axpy", "relu"):
    best = max(v["speedup"] for v in cases[op]["variants"])
    assert best >= 1.0, f"{op}: best speedup {best:.2f} < 1.0"
print(f"kernel-bench smoke OK: {len(cases)} cases, schema v1, "
      "vector path >= scalar reference")
EOF
fi

if [[ "${run_faults}" == 1 ]]; then
  # The fault suite corrupts buffers and tears writes on purpose; ASan
  # proves the error paths it forces never read or write out of bounds
  # while they unwind.
  echo "== faults: AddressSanitizer build + fault-injection suite =="
  cmake -B build-asan -S . -DDESALIGN_SANITIZE=address
  cmake --build build-asan -j "${JOBS}"
  ctest --test-dir build-asan --output-on-failure -j "${JOBS}" -L faults
fi

if [[ "${run_tsan}" == 1 ]]; then
  echo "== sanitizer: ThreadSanitizer build + labelled suites =="
  cmake -B build-tsan -S . -DDESALIGN_SANITIZE=thread
  cmake --build build-tsan -j "${JOBS}"
  ctest --test-dir build-tsan --output-on-failure -j "${JOBS}" -L sanitizer
  # The crash-safety tests that double as concurrency tests (batched serve
  # shutdown races, reload-under-fire) run again with faults armed.
  ctest --test-dir build-tsan --output-on-failure -j "${JOBS}" -L faults
fi

echo "ci.sh: all requested gates passed"
