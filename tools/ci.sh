#!/usr/bin/env bash
# CI entry point: the tier-1 gate plus the static-analysis, sanitizer and
# fault gates.
#
#   tools/ci.sh            # full: lint, then tier-1 build + all tests +
#                          # kernel-bench smoke, then UBSan, then ASan
#                          # faults, then TSan suite
#   tools/ci.sh lint       # static analysis only: desalign-lint + its
#                          # fixture suite, then clang-tidy over
#                          # compile_commands.json (skipped with a notice
#                          # when clang-tidy is not installed)
#   tools/ci.sh --analyze  # whole-program analysis only: desalign-analyze
#                          # fixture suite + zero-finding tree gate
#                          # (lock-order cycles, layering DAG,
#                          # discarded-status), driven by
#                          # compile_commands.json when present and a
#                          # source-tree walk otherwise
#   tools/ci.sh ubsan      # UndefinedBehaviorSanitizer build + unit and
#                          # fault suites (-fno-sanitize-recover=all, so
#                          # any UB report aborts the test)
#   tools/ci.sh --tier1    # only the tier-1 gate (build + full ctest +
#                          # kernel-bench smoke)
#   tools/ci.sh --index    # only the index gate (build + `ctest -L index`
#                          # + bench-index smoke: recall@10 == 1.0 and
#                          # bit-exactness at full probe, schema check)
#   tools/ci.sh --quant    # only the quantization gate (build +
#                          # `ctest -L quant` + bench-quant smoke: schema,
#                          # full-probe bit-exactness per dtype, recall@10
#                          # delta vs fp32 <= 0.005, int8 memory >= 3.5x)
#   tools/ci.sh --tune     # only the solver gate (build + `ctest -L solver`
#                          # + a real `desalign tune` run: find-db
#                          # round-trips through --print, blocked GEMM
#                          # >= 1.15x vs the row-axpy default at >= 256^3)
#   tools/ci.sh --tsan     # only the ThreadSanitizer-labelled suite
#   tools/ci.sh --faults   # only the fault-injection suite under ASan
#   tools/ci.sh --overload # only the overload gate (`ctest -L overload`
#                          # under TSan + bench-overload smoke: schema,
#                          # zero shed below capacity, goodput under 2x
#                          # overload >= 0.8x the 1x goodput, recovery to
#                          # healthy with bit-exact results)
#
# Test labels (see tests/CMakeLists.txt):
#   unit        — fast, hermetic, single-component tests
#   integration — multi-component pipelines (train → serve, determinism)
#   sanitizer   — concurrency-sensitive suites worth re-running under TSan
#   faults      — crash-safety suite: checksummed checkpoints, torn-write
#                 and bit-flip injection, kill-and-resume bit-exactness
#   index       — two-stage ANN index suite (k-means quantizer, IVF
#                 bit-exactness at full probe, reload-rebuild)
#   quant       — quantized serving suite (int8/bf16 round trips, v3
#                 checkpoints, scan determinism, dtype-swap reload)
#   solver      — GEMM solver registry suite (per-solver bit-exactness,
#                 find-db corruption handling, replay determinism, the
#                 reload-under-Select race)
#   overload    — serve-side overload protection: bounded admission,
#                 deadlines, the degradation ladder and its chaos suite
#   lint        — desalign-lint fixture corpus + zero-finding tree scan
#   analyze     — desalign-analyze fixture corpus + zero-finding tree gate
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc)"

run_lint=1
run_analyze=1
run_tier1=1
run_index=1
run_quant=1
run_tune=1
run_overload=1
run_ubsan=1
run_tsan=1
run_faults=1
case "${1:-}" in
  lint) run_analyze=0; run_tier1=0; run_index=0; run_quant=0; run_tune=0
        run_overload=0; run_ubsan=0; run_tsan=0; run_faults=0 ;;
  --analyze) run_lint=0; run_tier1=0; run_index=0; run_quant=0; run_tune=0
             run_overload=0; run_ubsan=0; run_tsan=0; run_faults=0 ;;
  ubsan) run_lint=0; run_analyze=0; run_tier1=0; run_index=0; run_quant=0
         run_tune=0; run_overload=0; run_tsan=0; run_faults=0 ;;
  --tier1) run_lint=0; run_analyze=0; run_index=0; run_quant=0; run_tune=0
           run_overload=0; run_ubsan=0; run_tsan=0; run_faults=0 ;;
  --index) run_lint=0; run_analyze=0; run_tier1=0; run_quant=0; run_tune=0
           run_overload=0; run_ubsan=0; run_tsan=0; run_faults=0 ;;
  --quant) run_lint=0; run_analyze=0; run_tier1=0; run_index=0; run_tune=0
           run_overload=0; run_ubsan=0; run_tsan=0; run_faults=0 ;;
  --tune) run_lint=0; run_analyze=0; run_tier1=0; run_index=0; run_quant=0
          run_overload=0; run_ubsan=0; run_tsan=0; run_faults=0 ;;
  --overload) run_lint=0; run_analyze=0; run_tier1=0; run_index=0
              run_quant=0; run_tune=0; run_ubsan=0; run_tsan=0
              run_faults=0 ;;
  --tsan) run_lint=0; run_analyze=0; run_tier1=0; run_index=0; run_quant=0
          run_tune=0; run_overload=0; run_ubsan=0; run_faults=0 ;;
  --faults) run_lint=0; run_analyze=0; run_tier1=0; run_index=0
            run_quant=0; run_tune=0; run_overload=0; run_ubsan=0
            run_tsan=0 ;;
  "") ;;
  *) echo "usage: tools/ci.sh [lint|--analyze|ubsan|--tier1|--index|--quant|--tune|--overload|--tsan|--faults]" >&2
     exit 2 ;;
esac

if [[ "${run_lint}" == 1 ]]; then
  echo "== lint: desalign-lint (zero findings over src/ + tests/) =="
  python3 tools/lint/desalign_lint.py
  echo "== lint: fixture suite (every rule fires + is suppressible) =="
  python3 tests/lint/lint_test.py --fixtures

  # clang-tidy needs compile_commands.json; configure (cheap) if absent.
  if command -v clang-tidy >/dev/null 2>&1; then
    echo "== lint: clang-tidy (warnings are errors) =="
    cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
    # Every warning is an error: the tree stays tidy-clean, no NOLINT
    # budget. Checks are curated in .clang-tidy at the repo root.
    mapfile -t tidy_sources < <(git ls-files 'src/**/*.cc' 'src/*.cc')
    clang-tidy -p build --warnings-as-errors='*' "${tidy_sources[@]}"
  else
    echo "== lint: clang-tidy not installed — stage skipped =="
    echo "   (install clang-tidy to run the .clang-tidy check set;"
    echo "    the desalign-lint gate above still ran and passed)"
  fi

  # Clang also proves the thread-safety annotations (-Wthread-safety is a
  # hard error in CMakeLists.txt when the compiler is Clang).
  if command -v clang++ >/dev/null 2>&1; then
    echo "== lint: thread-safety analysis build (clang++) =="
    cmake -B build-tsa -S . -DCMAKE_BUILD_TYPE=Release \
      -DCMAKE_CXX_COMPILER=clang++ -DDESALIGN_WERROR=ON
    cmake --build build-tsa -j "${JOBS}"
  else
    echo "== lint: clang++ not installed — thread-safety build skipped =="
  fi
fi

if [[ "${run_analyze}" == 1 ]]; then
  echo "== analyze: fixture suite (every pass fires + is suppressible) =="
  python3 tests/analyze/analyze_test.py --fixtures

  # The TU cross-check wants compile_commands.json; configure (cheap) if
  # absent. Without cmake the analyzer still runs — it prints a notice
  # and walks the source tree instead (graceful skip, same policy as the
  # clang-tidy/TSA stages above).
  if command -v cmake >/dev/null 2>&1; then
    cmake -B build -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
  else
    echo "== analyze: cmake not installed — compile-commands TU list =="
    echo "   unavailable; desalign-analyze falls back to a tree walk"
  fi

  echo "== analyze: desalign-analyze (zero findings over src/ + tests/) =="
  python3 tools/analyze/desalign_analyze.py
fi

if [[ "${run_tier1}" == 1 ]]; then
  echo "== tier-1: build + full test suite =="
  cmake -B build -S . -DCMAKE_BUILD_TYPE=Release -DDESALIGN_WERROR=ON
  cmake --build build -j "${JOBS}"
  ctest --test-dir build --output-on-failure -j "${JOBS}"

  echo "== kernel-bench smoke: schema + vector-path regression gate =="
  # Tiny shapes, two repeats: this is a regression tripwire (does the
  # vector path at least match the scalar reference on elementwise ops?),
  # not a performance measurement — see docs/PERFORMANCE.md for real runs.
  ./build/tools/desalign bench-kernels --smoke --threads-list=1,2 \
    --repeats=2 --out=build/BENCH_kernels_smoke.json
  python3 - <<'EOF'
import json
with open("build/BENCH_kernels_smoke.json") as f:
    report = json.load(f)
assert report["schema"] == "desalign.kernel_bench.v2", report.get("schema")
cases = {c["op"]: c for c in report["cases"]}
assert len(cases) >= 15, f"expected >=15 bench cases, got {len(cases)}"
for case in report["cases"]:
    assert case["ref_ns_per_elem"] > 0, case
    for v in case["variants"]:
        assert v["isa"] in ("scalar", "avx2"), v
        assert v["ns_per_elem"] > 0 and v["speedup"] > 0, v
# v2: the GEMM cases sweep every registered solver and tag each variant.
for op in ("matmul_fwd", "matmul_grad_a", "matmul_grad_b"):
    solvers = {v["solver"] for v in cases[op]["variants"]}
    assert {"gemm.rowaxpy", "gemm.blocked8x8"} <= solvers, (
        f"{op}: missing solver sweep, got {solvers}")
# The contiguous elementwise kernels are the pure vector path: even at
# smoke sizes their best variant must not regress below the old serial
# scalar loops — and since the SpanGrain fix, so must EVERY vector
# variant at <= 2 threads (mul/AVX2 used to hit 0.51x there because a
# 64k-element span was forked across workers; the min-chunk floor keeps
# it serial). Skipped per-op when the CPU has no AVX2 variants.
for op in ("add", "mul", "axpy", "relu"):
    variants = cases[op]["variants"]
    best = max(v["speedup"] for v in variants)
    assert best >= 1.0, f"{op}: best speedup {best:.2f} < 1.0"
    for v in variants:
        if v["isa"] == "avx2" and v["threads"] <= 2:
            assert v["speedup"] >= 1.0, (
                f"{op}: avx2 @{v['threads']} threads regressed to "
                f"{v['speedup']:.2f}x vs scalar (SpanGrain floor broken?)")
print(f"kernel-bench smoke OK: {len(cases)} cases, schema v2, "
      "vector path >= scalar reference, GEMM solver sweep present")
EOF
fi

if [[ "${run_index}" == 1 ]]; then
  echo "== index: two-stage ANN suite + bench-index smoke gate =="
  cmake -B build -S . -DCMAKE_BUILD_TYPE=Release -DDESALIGN_WERROR=ON
  cmake --build build -j "${JOBS}"
  ctest --test-dir build --output-on-failure -j "${JOBS}" -L index

  # Smoke sweep: one 10^4-entity case. The gate is correctness, not speed:
  # schema desalign.index_bench.v1, full probe bit-exact vs brute force
  # with recall@10 == 1.0. Partial probe only needs sane bounds here; its
  # real recall floor (>= 0.95 at 10^5) is asserted on full BENCH runs.
  ./build/tools/desalign bench-index --smoke \
    --out=build/BENCH_index_smoke.json
  python3 - <<'EOF'
import json
with open("build/BENCH_index_smoke.json") as f:
    report = json.load(f)
assert report["schema"] == "desalign.index_bench.v1", report.get("schema")
assert len(report["cases"]) >= 1, "no bench cases"
for case in report["cases"]:
    assert case["entities"] > 0 and case["num_centroids"] > 0, case
    paths = {p["path"]: p for p in case["paths"]}
    assert {"brute", "ivf_full", "ivf_partial"} <= set(paths), set(paths)
    full = paths["ivf_full"]
    assert full["bitexact"] is True, "full probe diverged from brute force"
    assert full["recall_at_k"] == 1.0, full["recall_at_k"]
    partial = paths["ivf_partial"]
    assert 0.0 <= partial["recall_at_k"] <= 1.0, partial["recall_at_k"]
    for p in case["paths"]:
        assert p["p50_ms"] > 0 and p["p99_ms"] >= p["p50_ms"], p
        assert p["qps"] > 0, p
print(f"index smoke OK: {len(report['cases'])} case(s), schema v1, "
      "full probe bit-exact with recall@10 == 1.0")
EOF
fi

if [[ "${run_quant}" == 1 ]]; then
  echo "== quant: quantized serving suite + bench-quant smoke gate =="
  cmake -B build -S . -DCMAKE_BUILD_TYPE=Release -DDESALIGN_WERROR=ON
  cmake --build build -j "${JOBS}"
  ctest --test-dir build --output-on-failure -j "${JOBS}" -L quant

  # Smoke sweep: one 10^4-entity case at dim 64. Gates: schema
  # desalign.quant_bench.v1; exact mode bit-exact vs the dequantized brute
  # force for EVERY dtype; int8 full-precision refinement bit-identical to
  # true fp32 brute force; recall@10 within 0.005 of the fp32 baseline;
  # int8 footprint >= 3.5x smaller than fp32 (the dim-64 dtype matrix in
  # docs/PERFORMANCE.md explains why 3.76x is the expected value).
  ./build/tools/desalign bench-quant --smoke \
    --out=build/BENCH_quant_smoke.json
  python3 - <<'EOF'
import json
with open("build/BENCH_quant_smoke.json") as f:
    report = json.load(f)
assert report["schema"] == "desalign.quant_bench.v1", report.get("schema")
assert len(report["cases"]) >= 1, "no bench cases"
for case in report["cases"]:
    assert case["entities"] > 0 and case["k"] > 0, case
    dtypes = {d["dtype"]: d for d in case["dtypes"]}
    assert {"fp32", "bf16", "int8"} <= set(dtypes), set(dtypes)
    fp32 = dtypes["fp32"]
    assert fp32["recall_at_k"] == 1.0 and fp32["hits_at_1"] == 1.0, fp32
    for d in case["dtypes"]:
        assert d["bitexact_full"] is True, (
            f"{d['dtype']}: exact mode diverged from brute force")
        delta = fp32["recall_at_k"] - d["recall_at_k"]
        assert delta <= 0.005, (
            f"{d['dtype']}: recall@10 delta {delta:.4f} > 0.005")
        assert d["p50_ms"] > 0 and d["p99_ms"] >= d["p50_ms"], d
    assert dtypes["int8"]["memory_reduction"] >= 3.5, (
        f"int8 reduction {dtypes['int8']['memory_reduction']:.2f}x < 3.5x")
    assert dtypes["bf16"]["memory_reduction"] >= 2.0, dtypes["bf16"]
    # Full-precision refinement: int8 exact mode with the checkpoint-backed
    # row source must reproduce TRUE fp32 brute force bit for bit, and the
    # self-contained (dequantized re-rank) recall must also be recorded.
    assert dtypes["int8"]["refined_exact_matches_fp32"] is True, (
        "int8 refined exact mode diverged from true fp32 brute force")
    assert 0.0 <= dtypes["int8"]["recall_at_k_raw"] <= 1.0, dtypes["int8"]
print(f"quant smoke OK: {len(report['cases'])} case(s), schema v1, "
      "all dtypes bit-exact at full re-rank, refined int8 == fp32, "
      "recall delta <= 0.005")
EOF
fi

if [[ "${run_tune}" == 1 ]]; then
  echo "== tune: solver suite + offline autotune round-trip gate =="
  cmake -B build -S . -DCMAKE_BUILD_TYPE=Release -DDESALIGN_WERROR=ON
  cmake --build build -j "${JOBS}"
  ctest --test-dir build --output-on-failure -j "${JOBS}" -L solver

  # A real tune run on small-to-medium cubes. Gates: the report carries
  # every op at every size with at least both stock solvers timed; the
  # persisted find-db round-trips through `tune --print` with the same
  # winners; and at >= 256^3 the blocked GEMM beats the row-axpy default by
  # >= 1.15x on the forward op (the committed BENCH_kernels.json shows
  # ~1.8x at 512^3 single-thread AVX2 — 1.15x is the CI floor, tolerant of
  # noisy shared runners).
  ./build/tools/desalign tune --sizes=64,256 --repeats=3 \
    --cache=build/gemm_find_db_ci.bin --report=build/TUNE_ci.json
  ./build/tools/desalign tune --print --cache=build/gemm_find_db_ci.bin \
    > build/TUNE_ci_print.txt
  python3 - <<'EOF'
import json
with open("build/TUNE_ci.json") as f:
    report = json.load(f)
assert report["schema"] == "desalign.tune.v1", report.get("schema")
entries = report["entries"]
ops = {e["op"] for e in entries}
assert ops == {"matmul_fwd", "matmul_grad_a", "matmul_grad_b"}, ops
assert len(entries) == 6, f"expected 3 ops x 2 sizes, got {len(entries)}"
for e in entries:
    ids = {t["id"] for t in e["solvers"]}
    assert {"gemm.rowaxpy", "gemm.blocked8x8"} <= ids, (e["op"], ids)
    assert all(t["ns_per_elem"] > 0 for t in e["solvers"]), e
    assert e["winner"] in ids, e
fwd256 = next(e for e in entries if e["op"] == "matmul_fwd" and e["m"] >= 256)
timing = {t["id"]: t["ns_per_elem"] for t in fwd256["solvers"]}
ratio = timing["gemm.rowaxpy"] / timing["gemm.blocked8x8"]
assert ratio >= 1.15, (
    f"blocked GEMM only {ratio:.2f}x vs row-axpy at "
    f"{fwd256['m']}^3 (CI floor is 1.15x)")
with open("build/TUNE_ci_print.txt") as f:
    printed = f.read()
assert "version=1 records=6" in printed, printed.splitlines()[:1]
for e in entries:
    assert f"solver={e['winner']}" in printed, (e["op"], e["winner"])
print(f"tune gate OK: 6 entries, find-db round-trips, "
      f"blocked GEMM {ratio:.2f}x vs default at {fwd256['m']}^3")
EOF
fi

if [[ "${run_overload}" == 1 ]]; then
  echo "== overload: chaos suite under TSan + bench-overload smoke gate =="
  # The admission/deadline/ladder state machine is all cross-thread; its
  # suite runs under ThreadSanitizer, not just plain Release.
  cmake -B build-tsan -S . -DDESALIGN_SANITIZE=thread
  cmake --build build-tsan -j "${JOBS}"
  ctest --test-dir build-tsan --output-on-failure -j "${JOBS}" -L overload

  cmake -B build -S . -DCMAKE_BUILD_TYPE=Release -DDESALIGN_WERROR=ON
  cmake --build build -j "${JOBS}"

  # Open-loop load sweep at 0.5x / 1x / 2x of measured capacity. Gates:
  # schema desalign.overload_bench.v1; below capacity (0.5x) effectively
  # nothing is shed; under 2x overload the queue still delivers >= 0.8x of
  # its 1x goodput (shed the surplus, keep the service) with p99 of
  # admitted requests bounded by the deadline regime; after the storm the
  # governor returns to healthy and serves bit-exact results again.
  ./build/tools/desalign bench-overload --smoke \
    --out=build/BENCH_overload_smoke.json
  python3 - <<'EOF'
import json
with open("build/BENCH_overload_smoke.json") as f:
    report = json.load(f)
assert report["schema"] == "desalign.overload_bench.v1", report.get("schema")
assert report["capacity_qps"] > 0, report["capacity_qps"]
cases = {c["multiplier"]: c for c in report["cases"]}
assert {0.5, 1.0, 2.0} <= set(cases), set(cases)
for c in report["cases"]:
    assert c["submitted"] > 0, c
    shed = c["shed_queue_full"] + c["shed_deadline"]
    assert c["admitted"] + c["shed_queue_full"] == c["submitted"], c
    # Every admitted request resolved: served ok or shed on deadline.
    assert c["ok"] + c["shed_deadline"] == c["admitted"], c
    if c["ok"] > 0:
        assert 0 < c["p50_ms"] <= c["p99_ms"], c
        # p99 of ADMITTED requests stays bounded even at 2x overload: the
        # deadline regime caps time-in-system (3x deadline = generous slop
        # for scoring time past the last admission check).
        assert c["p99_ms"] <= 3.0 * report["deadline_ms"], (
            f"x{c['multiplier']}: p99 {c['p99_ms']:.1f} ms unbounded")
half, one, two = cases[0.5], cases[1.0], cases[2.0]
# Below capacity nothing should be turned away (tolerate a stray burst).
assert half["shed_queue_full"] + half["shed_deadline"] \
    <= max(1, half["submitted"] // 100), (
    f"x0.5: shed {half['shed_queue_full'] + half['shed_deadline']} of "
    f"{half['submitted']} below capacity")
# Overload sheds the surplus, not the service: goodput under 2x must hold
# >= 0.8x of the 1x goodput instead of collapsing.
assert two["goodput_qps"] >= 0.8 * one["goodput_qps"], (
    f"goodput collapsed under overload: {two['goodput_qps']:.0f} vs "
    f"{one['goodput_qps']:.0f} at 1x")
# The storm actually engaged the governor...
assert two["max_rung"] >= 1, f"2x overload never degraded: {two}"
# ...and the ladder walked back down afterwards, bit-exactly.
rec = report["recovery"]
assert rec["from_rung"] >= 1, rec
assert rec["reached_healthy"] is True, rec
assert rec["bitexact"] is True, rec
print(f"overload smoke OK: capacity {report['capacity_qps']:.0f} qps, "
      f"goodput@2x {two['goodput_qps']:.0f} >= 0.8x goodput@1x "
      f"{one['goodput_qps']:.0f}, p99 bounded, recovery healthy+bitexact "
      f"in {rec['recover_ms']:.0f} ms")
EOF
fi

if [[ "${run_ubsan}" == 1 ]]; then
  # -fno-sanitize-recover=all (set by the CMake branch) turns every UB
  # report into an abort, so a diagnostic cannot scroll past and exit 0.
  echo "== ubsan: UndefinedBehaviorSanitizer build + unit & fault suites =="
  cmake -B build-ubsan -S . -DDESALIGN_SANITIZE=undefined
  cmake --build build-ubsan -j "${JOBS}"
  ctest --test-dir build-ubsan --output-on-failure -j "${JOBS}" -L unit
  ctest --test-dir build-ubsan --output-on-failure -j "${JOBS}" -L faults
fi

if [[ "${run_faults}" == 1 ]]; then
  # The fault suite corrupts buffers and tears writes on purpose; ASan
  # proves the error paths it forces never read or write out of bounds
  # while they unwind.
  echo "== faults: AddressSanitizer build + fault-injection suite =="
  cmake -B build-asan -S . -DDESALIGN_SANITIZE=address
  cmake --build build-asan -j "${JOBS}"
  # detect_leaks=1: LSan findings gate alongside ASan's. The deliberate
  # static-leak idiom (`static X& x = *new X;`) stays reachable at exit,
  # so LSan does not flag it — anything it does flag is a real leak.
  ASAN_OPTIONS=detect_leaks=1 \
    ctest --test-dir build-asan --output-on-failure -j "${JOBS}" -L faults
fi

if [[ "${run_tsan}" == 1 ]]; then
  echo "== sanitizer: ThreadSanitizer build + labelled suites =="
  cmake -B build-tsan -S . -DDESALIGN_SANITIZE=thread
  cmake --build build-tsan -j "${JOBS}"
  ctest --test-dir build-tsan --output-on-failure -j "${JOBS}" -L sanitizer
  # The crash-safety tests that double as concurrency tests (batched serve
  # shutdown races, reload-under-fire) run again with faults armed.
  ctest --test-dir build-tsan --output-on-failure -j "${JOBS}" -L faults
fi

echo "ci.sh: all requested gates passed"
