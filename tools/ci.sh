#!/usr/bin/env bash
# CI entry point: the tier-1 gate plus the sanitizer gate.
#
#   tools/ci.sh            # full: tier-1 build + all tests, then TSan suite
#   tools/ci.sh --tier1    # only the tier-1 gate (build + full ctest)
#   tools/ci.sh --tsan     # only the ThreadSanitizer-labelled suite
#
# Test labels (see tests/CMakeLists.txt):
#   unit        — fast, hermetic, single-component tests
#   integration — multi-component pipelines (train → serve, determinism)
#   sanitizer   — concurrency-sensitive suites worth re-running under TSan
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc)"

run_tier1=1
run_tsan=1
case "${1:-}" in
  --tier1) run_tsan=0 ;;
  --tsan) run_tier1=0 ;;
  "") ;;
  *) echo "usage: tools/ci.sh [--tier1|--tsan]" >&2; exit 2 ;;
esac

if [[ "${run_tier1}" == 1 ]]; then
  echo "== tier-1: build + full test suite =="
  cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build build -j "${JOBS}"
  ctest --test-dir build --output-on-failure -j "${JOBS}"
fi

if [[ "${run_tsan}" == 1 ]]; then
  echo "== sanitizer: ThreadSanitizer build + labelled suites =="
  cmake -B build-tsan -S . -DDESALIGN_SANITIZE=thread
  cmake --build build-tsan -j "${JOBS}"
  ctest --test-dir build-tsan --output-on-failure -j "${JOBS}" -L sanitizer
fi

echo "ci.sh: all requested gates passed"
