"""Shared finding model for desalign-lint and desalign-analyze.

Both tools report on C++ sources and must agree, byte for byte, on the
reporting contract so CI gates and fixture drivers cannot diverge:

  * findings print as `path:line: [rule] message (detail)` sorted by
    (path, line, rule) — a pure function of the scanned contents;
  * suppression is per-line and per-rule via a tool-tagged pragma
    (`<tool>: allow(<rule>)`); a pragma naming rule A never silences
    rule B, and naming an unknown rule is itself a finding (bad-pragma);
  * exit codes: 0 clean, 1 findings, 2 usage/IO error.

This module is that contract. desalign_lint.py and desalign_analyze.py
hold only their rule definitions and scanners.
"""

from __future__ import annotations

import os
import re
import sys

CXX_EXTENSIONS = (".h", ".hpp", ".cc", ".cpp", ".cxx", ".inl")

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2

BAD_PRAGMA = "bad-pragma"
BAD_PRAGMA_MESSAGE = "pragma names an unknown rule"


class Finding:
    __slots__ = ("path", "line", "rule", "detail")

    def __init__(self, path, line, rule, detail=""):
        self.path = path
        self.line = line
        self.rule = rule
        self.detail = detail

    def key(self):
        return (self.path, self.line, self.rule)


def strip_comments_and_strings(lines):
    """Returns code-only lines: comments and string/char literals blanked.

    Deliberately simple (no raw strings, no line continuations inside
    literals) — this backs token/structure scanners, not a parser; the
    tree's style keeps it exact in practice.
    """
    out = []
    in_block = False
    for line in lines:
        code = []
        i = 0
        n = len(line)
        while i < n:
            if in_block:
                end = line.find("*/", i)
                if end < 0:
                    i = n
                else:
                    in_block = False
                    i = end + 2
                continue
            ch = line[i]
            nxt = line[i + 1] if i + 1 < n else ""
            if ch == "/" and nxt == "/":
                break
            if ch == "/" and nxt == "*":
                in_block = True
                i += 2
                continue
            if ch in ('"', "'"):
                quote = ch
                i += 1
                while i < n:
                    if line[i] == "\\":
                        i += 2
                        continue
                    if line[i] == quote:
                        i += 1
                        break
                    i += 1
                code.append(quote + quote)  # keep token boundaries honest
                continue
            code.append(ch)
            i += 1
        out.append("".join(code))
    return out


class PragmaModel:
    """Per-line `<tag>: allow(<rule>)` suppression for one tool.

    `tag` is the tool name the pragma must spell (e.g. "desalign-lint"),
    so a lint pragma never silences an analyzer finding and vice versa.
    """

    def __init__(self, tag, rules):
        self.tag = tag
        self.rules = rules
        self._re = re.compile(re.escape(tag) + r":\s*allow\(([^)]*)\)")

    def line_allowances(self, raw_line):
        """Rule names allowed by pragmas on this line; None if no pragma."""
        matches = self._re.findall(raw_line)
        if not matches:
            return None
        allowed = set()
        for group in matches:
            for name in group.split(","):
                allowed.add(name.strip())
        return allowed

    def filter_hits(self, raw_line, display_path, lineno, hits, findings):
        """Applies this line's pragmas to `hits` (a list of rule names).

        Appends a bad-pragma Finding for every unknown rule named, then
        returns `hits` minus the allowed rules.
        """
        allowed = self.line_allowances(raw_line)
        if allowed is None:
            return hits
        for name in sorted(allowed):
            if name not in self.rules or name == BAD_PRAGMA:
                findings.append(Finding(display_path, lineno, BAD_PRAGMA,
                                        f"unknown rule '{name}'"))
        return [h for h in hits if h not in allowed]


def report(findings, rules, num_files, tool_name, out=None, err=None):
    """Prints findings in the shared format and returns the exit code."""
    out = out or sys.stdout
    err = err or sys.stderr
    ordered = sorted(findings, key=Finding.key)
    for f in ordered:
        detail = f" ({f.detail})" if f.detail else ""
        print(f"{f.path}:{f.line}: [{f.rule}] {rules[f.rule]}{detail}",
              file=out)
    print(f"{tool_name}: {len(ordered)} finding(s) in "
          f"{num_files} file(s)", file=err)
    return EXIT_FINDINGS if ordered else EXIT_CLEAN


def collect_files(paths, root, skip_dir_markers, tool_name):
    """Expands files/directories into (full_path, display_path) pairs.

    Directories are walked deterministically; any directory whose
    relative path contains one of `skip_dir_markers` is pruned (fixture
    corpora stay scannable when named explicitly). Exits 2 on a missing
    path, matching the shared usage-error contract.
    """
    files = []
    for p in paths:
        full = p if os.path.isabs(p) else os.path.join(root, p)
        if os.path.isfile(full):
            files.append((full, os.path.relpath(full, root)))
        elif os.path.isdir(full):
            for dirpath, dirnames, filenames in os.walk(full):
                dirnames.sort()
                rel_dir = os.path.relpath(dirpath, root)
                marked = os.path.join(rel_dir, "")
                if any(m in marked for m in skip_dir_markers):
                    dirnames[:] = []
                    continue
                for name in sorted(filenames):
                    if name.endswith(CXX_EXTENSIONS):
                        f = os.path.join(dirpath, name)
                        files.append((f, os.path.relpath(f, root)))
        else:
            print(f"{tool_name}: no such path: {p}", file=sys.stderr)
            sys.exit(EXIT_USAGE)
    return files


def read_lines(path, tool_name):
    """Reads a source file; exits 2 on IO error (shared contract)."""
    try:
        with open(path, "r", encoding="utf-8", errors="replace") as f:
            return f.read().splitlines()
    except OSError as e:
        print(f"{tool_name}: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(EXIT_USAGE)
