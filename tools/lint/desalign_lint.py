#!/usr/bin/env python3
"""desalign-lint: project-specific determinism & robustness linter.

Token-scans C++ sources for hazards that generic tools (clang-tidy, TSan)
miss because they are *project contracts*, not language rules:

  banned-random       rand()/srand()/std::random_device — nondeterministic
                      or process-global RNG; all randomness must flow
                      through common::Rng with an explicit seed.
  unseeded-rng        default-constructed std::mt19937/_64 — signals a
                      forgotten seed; construct from common::Rng or an
                      explicit seed expression instead.
  wall-clock          time()/clock()/system_clock outside src/cli/ —
                      wall-clock reads in library code break replayable
                      runs (steady_clock via common::Stopwatch is fine).
  float-atomic        std::atomic<float|double> — concurrent float
                      accumulation is ordering-dependent and violates the
                      bit-exactness contract in docs/PERFORMANCE.md.
  unordered-iteration iteration over a std::unordered_map/set — the visit
                      order is implementation-defined, so anything it
                      feeds (serialized output, reductions) loses
                      byte-stability. Iterate a sorted copy or use
                      std::map/vector.
  naked-new           new/delete outside RAII — ownership must be held by
                      unique_ptr/shared_ptr/containers. The deliberate
                      static-leak idiom (`static X& x = *new X;`) is
                      recognized and allowed.
  missing-fault-site  a src/ file writes files (std::ofstream/fopen/
                      fwrite) but never consults
                      common::FaultInjector::OnSite — crash-safety tests
                      (DESALIGN_FAULTS, docs/ROBUSTNESS.md) cannot reach
                      that IO path.

Suppression is per-line and per-rule only:

    int64_t t = time(nullptr);  // desalign-lint: allow(wall-clock) <why>

A pragma naming rule A never silences rule B, and naming an unknown rule
is itself reported (bad-pragma). See docs/STATIC_ANALYSIS.md.

The finding/pragma/exit-code model is shared with desalign-analyze via
tools/lint/findings.py, so the two tools cannot drift apart.

Usage:
    tools/lint/desalign_lint.py [PATH...]      # default: src/ tests/
    tools/lint/desalign_lint.py --list-rules

Exit codes: 0 clean, 1 findings, 2 usage/IO error.

Determinism: findings are reported sorted by (path, line, rule); scanning
is a pure function of file contents.
"""

from __future__ import annotations

import argparse
import os
import re
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import findings as fm  # noqa: E402  (shared finding model)

# Fixture files deliberately seeded with violations; skipped during
# directory walks, still scannable when named explicitly.
FIXTURE_DIR_MARKERS = (
    os.path.join("tests", "lint", "fixtures"),
    os.path.join("tests", "analyze", "fixtures"),
)

RULES = {
    "banned-random": "rand()/srand()/std::random_device is banned; use "
                     "common::Rng with an explicit seed",
    "unseeded-rng": "default-constructed std::mt19937 hides the seed; "
                    "seed explicitly (see common/rng.h)",
    "wall-clock": "wall-clock read in non-CLI code breaks replayable "
                  "runs; use common::Stopwatch (steady_clock)",
    "float-atomic": "std::atomic<float|double> accumulation is "
                    "ordering-dependent; violates the determinism "
                    "contract (docs/PERFORMANCE.md)",
    "unordered-iteration": "iteration order over unordered containers is "
                           "implementation-defined; sort first or use an "
                           "ordered container",
    "naked-new": "naked new/delete; use unique_ptr/shared_ptr/containers "
                 "(static-leak idiom `static X& x = *new X;` is allowed)",
    "missing-fault-site": "file-writing code without a "
                          "FaultInjector::OnSite call site; crash-safety "
                          "tests cannot inject faults here "
                          "(docs/ROBUSTNESS.md)",
    fm.BAD_PRAGMA: "desalign-lint pragma names an unknown rule",
}

PRAGMAS = fm.PragmaModel("desalign-lint", RULES)

BANNED_RANDOM_RE = re.compile(r"(\b(?:std::)?s?rand\s*\(|\brandom_device\b)")
UNSEEDED_RNG_RE = re.compile(
    r"\bstd::mt19937(?:_64)?\s+\w+\s*(?:;|\{\s*\}|\(\s*\))")
WALL_CLOCK_RE = re.compile(r"(\btime\s*\(|\bclock\s*\(|\bsystem_clock\b)")
FLOAT_ATOMIC_RE = re.compile(r"std::atomic\s*<\s*(?:float|double)\s*>")
UNORDERED_DECL_RE = re.compile(
    r"\bunordered_(?:map|set|multimap|multiset)\s*<[^;{]*?>\s+(\w+)")
NEW_DELETE_RE = re.compile(r"\bnew\b|\bdelete\b")
DELETED_FN_RE = re.compile(r"=\s*delete\b|\boperator\s+(?:new|delete)\b")
SMART_PTR_RE = re.compile(
    r"unique_ptr\s*<|shared_ptr\s*<|make_unique|make_shared")
WRITE_IO_RE = re.compile(r"\bstd::ofstream\b|\bfopen\s*\(|\bfwrite\s*\(")
ON_SITE_RE = re.compile(r"\bOnSite\s*\(")


def scan_file(path, display_path):
    raw_lines = fm.read_lines(path, "desalign-lint")
    code_lines = fm.strip_comments_and_strings(raw_lines)
    found = []
    norm = display_path.replace(os.sep, "/")
    in_src = norm.startswith("src/") or "/src/" in norm
    is_cli = "src/cli/" in norm or norm.startswith("src/cli/")

    # File-level facts for missing-fault-site.
    has_on_site = any(ON_SITE_RE.search(c) for c in code_lines)

    # Names of unordered containers declared anywhere in this file.
    unordered_names = set()
    for code in code_lines:
        for m in UNORDERED_DECL_RE.finditer(code):
            unordered_names.add(m.group(1))
    unordered_iter_res = []
    if unordered_names:
        names = "|".join(sorted(re.escape(n) for n in unordered_names))
        unordered_iter_res = [
            re.compile(r"for\s*\([^;)]*:\s*(?:" + names + r")\b"),
            re.compile(r"\b(?:" + names + r")\s*\.\s*(?:begin|cbegin|rbegin)"
                       r"\s*\("),
        ]

    for idx, (raw, code) in enumerate(zip(raw_lines, code_lines)):
        lineno = idx + 1
        hits = []

        if BANNED_RANDOM_RE.search(code):
            hits.append("banned-random")
        if UNSEEDED_RNG_RE.search(code):
            hits.append("unseeded-rng")
        if not is_cli and WALL_CLOCK_RE.search(code):
            hits.append("wall-clock")
        if FLOAT_ATOMIC_RE.search(code):
            hits.append("float-atomic")
        for rx in unordered_iter_res:
            if rx.search(code):
                hits.append("unordered-iteration")
                break
        if NEW_DELETE_RE.search(code) and not DELETED_FN_RE.search(code) \
                and not SMART_PTR_RE.search(code):
            # The static-leak idiom spans at most the declarator line and
            # one continuation; accept `static` on this or the previous
            # code line.
            prev = code_lines[idx - 1] if idx > 0 else ""
            joined = prev + " " + code
            if not re.search(r"\bstatic\b", joined):
                hits.append("naked-new")
        if in_src and not is_cli and not has_on_site \
                and WRITE_IO_RE.search(code):
            hits.append("missing-fault-site")

        hits = PRAGMAS.filter_hits(raw, display_path, lineno, hits, found)
        for rule in hits:
            found.append(fm.Finding(display_path, lineno, rule))

    return found


def main(argv):
    parser = argparse.ArgumentParser(prog="desalign-lint", add_help=True)
    parser.add_argument("paths", nargs="*",
                        help="files or directories (default: src tests)")
    parser.add_argument("--root", default=None,
                        help="repository root (default: auto-detected "
                             "from this script's location)")
    parser.add_argument("--list-rules", action="store_true")
    args = parser.parse_args(argv)

    if args.list_rules:
        for name in sorted(RULES):
            print(f"{name}: {RULES[name]}")
        return fm.EXIT_CLEAN

    root = args.root or os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))
    paths = args.paths or ["src", "tests"]

    found = []
    files = fm.collect_files(paths, root, FIXTURE_DIR_MARKERS,
                             "desalign-lint")
    for full, rel in files:
        found.extend(scan_file(full, rel))

    return fm.report(found, RULES, len(files), "desalign-lint")


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
