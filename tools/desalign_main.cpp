// The `desalign` command-line tool: dataset generation, statistics,
// training runs and robustness sweeps from the shell. See cli/cli.h for
// the subcommand reference, or run with --help.

#include "cli/cli.h"

int main(int argc, char** argv) {
  return desalign::cli::RunCliMain(argc, argv);
}
