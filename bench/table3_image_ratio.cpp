// Regenerates Table III: robustness of the prominent methods to a varying
// ratio of images (R_img) on the bilingual DBP15K datasets.
// Paper shape to reproduce: DESAlign leads at every ratio with the largest
// margins at low R_img; baselines oscillate or decline as images go
// missing.

#include <cstdio>

#include "bench/bench_sweep.h"
#include "kg/presets.h"

int main() {
  using namespace desalign;
  std::printf("== Table III: varying ratio of images ==\n");
  bench::RunMissingModalitySweep(
      {kg::PresetDbp15k(kg::Dbp15kLang::kZhEn),
       kg::PresetDbp15k(kg::Dbp15kLang::kJaEn),
       kg::PresetDbp15k(kg::Dbp15kLang::kFrEn)},
      bench::SweepVariable::kImageRatio,
      {0.05, 0.20, 0.30, 0.40, 0.50, 0.60});
  return 0;
}
