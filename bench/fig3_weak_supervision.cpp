// Regenerates Fig. 3 (right): weakly supervised settings — H@1 of the
// prominent methods as the seed-alignment ratio R_seed grows from 1% to
// 30% on FB15K-DB15K and DBP15K-FR-EN analogues.
// Paper shape to reproduce: a consistent gap with DESAlign on top at every
// ratio, widest in the weakly supervised (low R_seed) regime; all methods
// improve monotonically with more seeds.

#include <cstdio>

#include "bench/bench_common.h"
#include "eval/harness.h"
#include "common/table.h"
#include "kg/presets.h"
#include "kg/synthetic.h"

int main() {
  using namespace desalign;
  std::printf("== Fig. 3 (right): weakly supervised settings ==\n");
  const std::vector<double> seed_ratios = {0.01, 0.05, 0.10, 0.20, 0.30};

  for (const auto& preset :
       {kg::PresetFbDb15k(), kg::PresetDbp15k(kg::Dbp15kLang::kFrEn)}) {
    bench::ConfigureHarness(bench::IsBilingual(preset.name));
    std::printf("\n-- Dataset %s (H@1 series) --\n", preset.name.c_str());
    std::vector<std::string> headers = {"Model"};
    for (double r : seed_ratios) {
      headers.push_back("Rseed=" +
                        std::to_string(static_cast<int>(r * 100 + 0.5)) +
                        "%");
    }
    common::TablePrinter table(headers);

    auto methods = eval::ProminentMethods();
    std::vector<std::vector<std::string>> rows(methods.size());
    for (size_t mi = 0; mi < methods.size(); ++mi) {
      rows[mi].push_back(methods[mi].name);
    }
    for (double r : seed_ratios) {
      auto spec = bench::BenchSpec(preset);
      spec.seed_ratio = r;
      auto data = kg::GenerateSyntheticPair(spec);
      for (size_t mi = 0; mi < methods.size(); ++mi) {
        auto cell = eval::RunCell(methods[mi], data, /*seed=*/7);
        rows[mi].push_back(common::Pct(cell.metrics.h_at_1));
        std::fprintf(stderr, "  [%s %s Rseed=%.2f] H@1=%.3f\n",
                     preset.name.c_str(), methods[mi].name.c_str(), r,
                     cell.metrics.h_at_1);
      }
    }
    for (auto& row : rows) table.AddRow(std::move(row));
    table.Print();
  }
  return 0;
}
