#ifndef DESALIGN_BENCH_BENCH_SWEEP_H_
#define DESALIGN_BENCH_BENCH_SWEEP_H_

// Shared driver for Tables II and III: sweep a missing-modality ratio over
// the prominent methods and print H@1/H@10/MRR per cell plus the "Improv."
// row (DESAlign minus best baseline), matching the paper's layout.

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "align/metrics.h"
#include "bench/bench_common.h"
#include "eval/harness.h"
#include "common/table.h"
#include "kg/synthetic.h"

namespace desalign::bench {

enum class SweepVariable { kTextRatio, kImageRatio };

inline void RunMissingModalitySweep(
    const std::vector<kg::SyntheticSpec>& base_specs, SweepVariable variable,
    const std::vector<double>& ratios) {
  for (const auto& base : base_specs) {
    ConfigureHarness(IsBilingual(base.name));
    std::printf("\n-- Dataset %s --\n", base.name.c_str());
    std::vector<std::string> headers = {"Model"};
    for (double r : ratios) {
      const std::string tag =
          (variable == SweepVariable::kTextRatio ? "Rtex=" : "Rimg=") +
          std::to_string(static_cast<int>(r * 100)) + "%";
      headers.push_back(tag + " H@1");
      headers.push_back("H@10");
      headers.push_back("MRR");
    }
    common::TablePrinter table(headers);

    auto methods = eval::ProminentMethods();
    // metrics[method][ratio index]
    std::map<std::string, std::vector<align::RankingMetrics>> results;
    for (size_t ri = 0; ri < ratios.size(); ++ri) {
      auto spec = BenchSpec(base);
      if (variable == SweepVariable::kTextRatio) {
        spec.text_ratio = ratios[ri];
      } else {
        spec.image_ratio = ratios[ri];
      }
      auto data = kg::GenerateSyntheticPair(spec);
      for (const auto& method : methods) {
        auto cell = eval::RunCell(method, data, /*seed=*/7);
        results[method.name].push_back(cell.metrics);
        std::fprintf(stderr, "  [%s %s ratio=%.2f] H@1=%.3f\n",
                     base.name.c_str(), method.name.c_str(), ratios[ri],
                     cell.metrics.h_at_1);
      }
    }
    for (const auto& method : methods) {
      std::vector<std::string> row = {method.name};
      for (const auto& m : results[method.name]) {
        row.push_back(common::Pct(m.h_at_1));
        row.push_back(common::Pct(m.h_at_10));
        row.push_back(common::Pct(m.mrr));
      }
      table.AddRow(std::move(row));
    }
    // Improv. = DESAlign − best baseline, per cell.
    std::vector<std::string> improv = {"Improv."};
    for (size_t ri = 0; ri < ratios.size(); ++ri) {
      align::RankingMetrics best;
      for (const auto& method : methods) {
        if (method.name == "DESAlign") continue;
        const auto& m = results[method.name][ri];
        best.h_at_1 = std::max(best.h_at_1, m.h_at_1);
        best.h_at_10 = std::max(best.h_at_10, m.h_at_10);
        best.mrr = std::max(best.mrr, m.mrr);
      }
      const auto& ours = results["DESAlign"][ri];
      improv.push_back(common::Pct(ours.h_at_1 - best.h_at_1));
      improv.push_back(common::Pct(ours.h_at_10 - best.h_at_10));
      improv.push_back(common::Pct(ours.mrr - best.mrr));
    }
    table.AddSeparator();
    table.AddRow(std::move(improv));
    table.Print();
  }
}

}  // namespace desalign::bench

#endif  // DESALIGN_BENCH_BENCH_SWEEP_H_
