// Regenerates §V-E (efficiency analysis): wall-clock of training vs
// semantic propagation for the prominent methods, parameter counts, and
// the O(|E|·d) scaling of semantic propagation with graph size.
// Paper shape to reproduce: DESAlign's cost is dominated by multi-modal
// semantic learning (comparable to MEAformer); semantic propagation is a
// few percent of total time and scales linearly in the number of entities.

#include <cstdio>

#include "align/metrics.h"
#include "bench/bench_common.h"
#include "common/stopwatch.h"
#include "core/desalign.h"
#include "core/semantic_propagation.h"
#include "eval/harness.h"
#include "common/table.h"
#include "kg/presets.h"
#include "kg/synthetic.h"
#include "tensor/init.h"

int main() {
  using namespace desalign;
  std::printf("== Efficiency analysis (Sec. V-E) ==\n");

  // ---- Per-method timing on two dataset families ----
  for (const auto& preset :
       {kg::PresetFbDb15k(), kg::PresetDbp15k(kg::Dbp15kLang::kFrEn)}) {
    bench::ConfigureHarness(bench::IsBilingual(preset.name));
    auto data = kg::GenerateSyntheticPair(bench::BenchSpec(preset));
    std::printf("\n-- Dataset %s --\n", preset.name.c_str());
    common::TablePrinter table(
        {"Model", "H@1", "MRR", "train(s)", "decode(s)"});
    for (const auto& method : eval::ProminentMethods()) {
      auto cell = eval::RunCell(method, data, /*seed=*/7);
      table.AddRow({method.name, common::Pct(cell.metrics.h_at_1),
                    common::Pct(cell.metrics.mrr),
                    common::Secs(cell.train_seconds),
                    common::Secs(cell.decode_seconds)});
    }
    table.Print();
  }

  // ---- Semantic propagation scaling: O(|E|·d) in the entity count ----
  std::printf("\n-- Semantic propagation scaling (2 iterations, d=128) --\n");
  common::TablePrinter scaling({"Entities", "Edges", "SP time (ms)",
                              "ms per 1k entities"});
  common::Rng rng(3);
  for (int64_t n : {500, 1000, 2000, 4000, 8000}) {
    kg::SyntheticSpec spec = kg::PresetFbDb15k();
    spec.num_entities = n;
    auto data = kg::GenerateSyntheticPair(spec);
    auto graph = data.source.BuildGraph();
    auto norm = graph.NormalizedAdjacency();
    auto x = tensor::Tensor::Create(n, 128);
    tensor::FillNormal(*x, rng);
    std::vector<bool> known(n, false);
    common::Stopwatch watch;
    auto states = core::SemanticPropagation::Run(norm, x, known, 2);
    const double ms = watch.ElapsedMillis();
    scaling.AddRow({std::to_string(n), std::to_string(graph.num_edges()),
                    common::FormatDouble(ms, 2),
                    common::FormatDouble(ms * 1000.0 / n, 3)});
  }
  scaling.Print();

  // ---- DESAlign stage breakdown ----
  std::printf("\n-- DESAlign stage breakdown (FBDB15K analogue) --\n");
  {
    bench::ConfigureHarness(false);
    auto data = kg::GenerateSyntheticPair(
        bench::BenchSpec(kg::PresetFbDb15k()));
    auto cfg = core::DesalignConfig::Default(7);
    cfg.base.dim = bench::BenchDim();
    cfg.base.epochs = bench::BenchEpochs();
    core::DesalignModel model(cfg);
    common::Stopwatch watch;
    model.Fit(data);
    const double train_s = watch.ElapsedSeconds();
    watch.Reset();
    model.set_propagation_iterations(0);
    (void)model.DecodeSimilarity(data);
    const double plain_decode_s = watch.ElapsedSeconds();
    watch.Reset();
    model.set_propagation_iterations(2);
    (void)model.DecodeSimilarity(data);
    const double sp_decode_s = watch.ElapsedSeconds();
    common::TablePrinter breakdown({"Stage", "seconds", "share"});
    const double total = train_s + sp_decode_s;
    breakdown.AddRow({"multi-modal semantic learning (train)",
                      common::Secs(train_s),
                      common::Pct(train_s / total)});
    breakdown.AddRow({"decode without propagation",
                      common::Secs(plain_decode_s), "-"});
    breakdown.AddRow({"decode with semantic propagation (n_p=2)",
                      common::Secs(sp_decode_s),
                      common::Pct(sp_decode_s / total)});
    breakdown.AddRow({"semantic propagation overhead",
                      common::Secs(sp_decode_s - plain_decode_s), "-"});
    breakdown.Print();
    std::printf("trainable parameters: %lld\n",
                static_cast<long long>(model.NumParameters()));
  }
  return 0;
}
