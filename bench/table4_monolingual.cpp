// Regenerates Table IV: main results on the monolingual datasets
// (FB15K-DB15K / FB15K-YAGO15K analogues) at R_seed ∈ {20, 50, 80}%,
// basic and iterative strategies.
// Paper shape to reproduce: TransE < GCN-align < EVA < MCLEA < MEAformer <
// DESAlign in each column; every method improves with more seeds; the
// iterative strategy improves every fusion model; DESAlign's margin is
// largest at R_seed = 20%.

#include <cstdio>

#include "align/iterative.h"
#include "bench/bench_common.h"
#include "eval/harness.h"
#include "common/table.h"
#include "kg/presets.h"
#include "kg/synthetic.h"

int main() {
  using namespace desalign;
  std::printf("== Table IV: monolingual main results ==\n");
  const std::vector<double> seed_ratios = {0.2, 0.5, 0.8};
  bench::ConfigureHarness(/*bilingual=*/false);

  for (const auto& preset : {kg::PresetFbDb15k(), kg::PresetFbYg15k()}) {
    std::printf("\n-- Dataset %s --\n", preset.name.c_str());
    std::vector<std::string> headers = {"Strategy", "Model"};
    for (double r : seed_ratios) {
      headers.push_back("Rseed=" + std::to_string(static_cast<int>(r * 100)) +
                        "% H@1");
      headers.push_back("H@10");
      headers.push_back("MRR");
    }
    common::TablePrinter table(headers);

    // Pre-generate the three splits (same world, different seed ratio).
    std::vector<kg::AlignedKgPair> splits;
    for (double r : seed_ratios) {
      auto spec = bench::BenchSpec(preset);
      spec.seed_ratio = r;
      splits.push_back(kg::GenerateSyntheticPair(spec));
    }

    align::IterativeConfig iter;
    iter.rounds = 2;
    iter.epochs_per_round = bench::BenchEpochs() / 2;

    for (bool iterative : {false, true}) {
      auto methods =
          iterative ? eval::ProminentMethods() : eval::AllBasicMethods();
      for (const auto& method : methods) {
        std::vector<std::string> row = {iterative ? "Iterative" : "Basic",
                                        method.name};
        for (size_t si = 0; si < splits.size(); ++si) {
          auto cell = eval::RunCell(method, splits[si], /*seed=*/7,
                                    iterative, iter);
          row.push_back(common::Pct(cell.metrics.h_at_1));
          row.push_back(common::Pct(cell.metrics.h_at_10));
          row.push_back(common::Pct(cell.metrics.mrr));
          std::fprintf(stderr, "  [%s %s%s Rseed=%.0f%%] H@1=%.3f\n",
                       preset.name.c_str(), method.name.c_str(),
                       iterative ? "+iter" : "", seed_ratios[si] * 100,
                       cell.metrics.h_at_1);
        }
        table.AddRow(std::move(row));
      }
      if (!iterative) table.AddSeparator();
    }
    table.Print();
  }
  return 0;
}
