// Google-benchmark micro-benchmarks for the substrate kernels: SpMM,
// Dirichlet energy, GAT and cross-modal attention forward passes, semantic
// propagation steps, the closed-form interpolation solver, ranking
// metric evaluation, and the observability primitives (counter, histogram,
// span) whose per-event cost bounds the instrumentation overhead.

#include <benchmark/benchmark.h>

#include "align/metrics.h"
#include "common/rng.h"
#include "core/semantic_propagation.h"
#include "graph/dirichlet.h"
#include "graph/graph.h"
#include "nn/layers.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/init.h"
#include "tensor/ops.h"

namespace {

using namespace desalign;
using tensor::Tensor;
using tensor::TensorPtr;

graph::Graph RandomGraph(int64_t n, int64_t avg_degree, uint64_t seed) {
  common::Rng rng(seed);
  std::vector<std::pair<int64_t, int64_t>> edges;
  const int64_t m = n * avg_degree / 2;
  for (int64_t e = 0; e < m; ++e) {
    int64_t u = rng.UniformInt(n);
    int64_t v = rng.UniformInt(n);
    if (u != v) edges.emplace_back(u, v);
  }
  return graph::Graph(n, std::move(edges));
}

TensorPtr RandomDense(int64_t r, int64_t c, uint64_t seed) {
  common::Rng rng(seed);
  auto t = Tensor::Create(r, c);
  tensor::FillNormal(*t, rng);
  return t;
}

void BM_SpMM(benchmark::State& state) {
  const int64_t n = state.range(0);
  auto g = RandomGraph(n, 8, 1);
  auto norm = g.NormalizedAdjacency();
  auto x = RandomDense(n, 64, 2);
  tensor::NoGradGuard no_grad;
  for (auto _ : state) {
    auto y = tensor::SpMM(norm, x);
    benchmark::DoNotOptimize(y->data().data());
  }
  state.SetItemsProcessed(state.iterations() * norm->nnz() * 64);
}
BENCHMARK(BM_SpMM)->Arg(1000)->Arg(4000)->Arg(16000);

void BM_DirichletEnergy(benchmark::State& state) {
  const int64_t n = state.range(0);
  auto g = RandomGraph(n, 8, 3);
  auto norm = g.NormalizedAdjacency();
  auto x = RandomDense(n, 64, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::DirichletEnergy(norm, x));
  }
}
BENCHMARK(BM_DirichletEnergy)->Arg(1000)->Arg(4000)->Arg(16000);

void BM_DenseMatMul(benchmark::State& state) {
  const int64_t n = state.range(0);
  auto a = RandomDense(n, 64, 5);
  auto b = RandomDense(64, 64, 6);
  tensor::NoGradGuard no_grad;
  for (auto _ : state) {
    auto y = tensor::MatMul(a, b);
    benchmark::DoNotOptimize(y->data().data());
  }
  state.SetItemsProcessed(state.iterations() * n * 64 * 64);
}
BENCHMARK(BM_DenseMatMul)->Arg(512)->Arg(2048);

void BM_GatForward(benchmark::State& state) {
  const int64_t n = state.range(0);
  common::Rng rng(7);
  auto g = RandomGraph(n, 8, 8);
  auto edges = g.MessagePassingEdges(true);
  nn::GatEncoder gat(32, 2, 2, rng);
  auto x = RandomDense(n, 32, 9);
  tensor::NoGradGuard no_grad;
  for (auto _ : state) {
    auto y = gat.Forward(x, edges, n);
    benchmark::DoNotOptimize(y->data().data());
  }
}
BENCHMARK(BM_GatForward)->Arg(1000)->Arg(4000);

void BM_GatForwardBackward(benchmark::State& state) {
  const int64_t n = state.range(0);
  common::Rng rng(10);
  auto g = RandomGraph(n, 8, 11);
  auto edges = g.MessagePassingEdges(true);
  nn::GatEncoder gat(32, 2, 2, rng);
  auto x = Tensor::Create(n, 32, /*requires_grad=*/true);
  tensor::FillNormal(*x, rng);
  for (auto _ : state) {
    auto loss = tensor::Sum(tensor::Square(gat.Forward(x, edges, n)));
    loss->Backward();
    x->ZeroGrad();
    gat.ZeroGrad();
  }
}
BENCHMARK(BM_GatForwardBackward)->Arg(1000)->Arg(4000);

void BM_CrossModalAttention(benchmark::State& state) {
  const int64_t n = state.range(0);
  common::Rng rng(12);
  nn::CrossModalAttention caw(32, 4, 1, rng);
  std::vector<TensorPtr> inputs;
  for (int m = 0; m < 4; ++m) inputs.push_back(RandomDense(n, 32, 13 + m));
  tensor::NoGradGuard no_grad;
  for (auto _ : state) {
    auto out = caw.Forward(inputs);
    benchmark::DoNotOptimize(out.confidence->data().data());
  }
}
BENCHMARK(BM_CrossModalAttention)->Arg(1000)->Arg(4000);

void BM_SemanticPropagationStep(benchmark::State& state) {
  const int64_t n = state.range(0);
  auto g = RandomGraph(n, 8, 17);
  auto norm = g.NormalizedAdjacency();
  auto x = RandomDense(n, 128, 18);
  common::Rng rng(19);
  std::vector<bool> known(n);
  for (int64_t i = 0; i < n; ++i) known[i] = rng.Bernoulli(0.7);
  for (auto _ : state) {
    auto y = core::SemanticPropagation::Step(norm, x, x, known);
    benchmark::DoNotOptimize(y->data().data());
  }
  state.SetItemsProcessed(state.iterations() * n * 128);
}
BENCHMARK(BM_SemanticPropagationStep)->Arg(1000)->Arg(4000)->Arg(16000);

void BM_ClosedFormInterpolation(benchmark::State& state) {
  const int64_t n = state.range(0);
  auto g = RandomGraph(n, 8, 20);
  auto norm = g.NormalizedAdjacency();
  auto x = RandomDense(n, 16, 21);
  common::Rng rng(22);
  std::vector<bool> known(n);
  for (int64_t i = 0; i < n; ++i) known[i] = rng.Bernoulli(0.8);
  known[0] = true;
  for (auto _ : state) {
    auto y = core::SemanticPropagation::SolveClosedForm(norm, x, known);
    benchmark::DoNotOptimize(y->data().data());
  }
}
// O(|E_o|^3): kept small — this is exactly why the paper discretizes.
BENCHMARK(BM_ClosedFormInterpolation)->Arg(100)->Arg(400);

void BM_RankingMetrics(benchmark::State& state) {
  const int64_t n = state.range(0);
  auto sim = RandomDense(n, n, 23);
  for (auto _ : state) {
    benchmark::DoNotOptimize(align::MetricsFromSimilarity(*sim));
  }
}
BENCHMARK(BM_RankingMetrics)->Arg(500)->Arg(2000);

void BM_ContrastiveLossForwardBackward(benchmark::State& state) {
  const int64_t b = state.range(0);
  auto z1 = Tensor::Create(b, 32, /*requires_grad=*/true);
  auto z2 = Tensor::Create(b, 32, /*requires_grad=*/true);
  common::Rng rng(24);
  tensor::FillNormal(*z1, rng);
  tensor::FillNormal(*z2, rng);
  for (auto _ : state) {
    auto s = tensor::Scale(
        tensor::MatMul(tensor::RowL2Normalize(z1),
                       tensor::Transpose(tensor::RowL2Normalize(z2))),
        10.0f);
    auto loss = tensor::Neg(
        tensor::Mean(tensor::TakeDiag(tensor::RowLogSoftmax(s))));
    loss->Backward();
    z1->ZeroGrad();
    z2->ZeroGrad();
  }
}
BENCHMARK(BM_ContrastiveLossForwardBackward)->Arg(128)->Arg(512);

// --- Observability primitives ------------------------------------------
// These bound the per-event cost of instrumentation. The acceptance bar is
// < 2% training overhead; each event below is tens of nanoseconds against
// training phases measured in milliseconds.

void BM_ObsCounterIncrement(benchmark::State& state) {
  auto& counter =
      obs::MetricsRegistry::Global().GetCounter("bench.counter");
  for (auto _ : state) {
    counter.Increment();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsCounterIncrement);

void BM_ObsHistogramRecord(benchmark::State& state) {
  auto& hist = obs::MetricsRegistry::Global().GetHistogram(
      "bench.histogram", obs::Histogram::DefaultLatencyBucketsMs());
  double v = 0.001;
  for (auto _ : state) {
    hist.Record(v);
    v = v < 1000.0 ? v * 1.01 : 0.001;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsHistogramRecord);

void BM_ObsTraceSpan(benchmark::State& state) {
  for (auto _ : state) {
    obs::TraceSpan span("bench_span");
    benchmark::DoNotOptimize(&span);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsTraceSpan);

// Instrumented vs raw: semantic propagation with the detail flag toggled.
// The delta between detail on/off is what --metrics-out costs; the delta
// between this and BM_SemanticPropagationStep is the always-on cost.
void BM_SemanticPropagationStepWithDetail(benchmark::State& state) {
  const int64_t n = state.range(0);
  auto g = RandomGraph(n, 8, 17);
  auto norm = g.NormalizedAdjacency();
  auto x = RandomDense(n, 128, 18);
  common::Rng rng(19);
  std::vector<bool> known(n);
  for (int64_t i = 0; i < n; ++i) known[i] = rng.Bernoulli(0.7);
  obs::MetricsRegistry::Global().set_detail_enabled(true);
  auto& energy =
      obs::MetricsRegistry::Global().GetSeries("bench.step_energy");
  for (auto _ : state) {
    auto y = core::SemanticPropagation::Step(norm, x, x, known);
    energy.Append(graph::DirichletEnergy(norm, y) /
                  static_cast<double>(n * 128));
    benchmark::DoNotOptimize(y->data().data());
  }
  obs::MetricsRegistry::Global().set_detail_enabled(false);
  state.SetItemsProcessed(state.iterations() * n * 128);
}
BENCHMARK(BM_SemanticPropagationStepWithDetail)->Arg(1000)->Arg(4000);

}  // namespace

BENCHMARK_MAIN();
