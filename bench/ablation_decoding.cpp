// Design-choice ablation (DESIGN.md): decoding variants of a single
// trained DESAlign model — plain cosine, CSLS hubness correction, semantic
// propagation (Algorithm 1's mean-of-similarities), and their combination.
// Decoding is learning-free, so every variant reuses the same weights.

#include <cstdio>

#include "align/metrics.h"
#include "bench/bench_common.h"
#include "core/desalign.h"
#include "common/table.h"
#include "kg/presets.h"
#include "kg/synthetic.h"

int main() {
  using namespace desalign;
  std::printf("== Decoding ablation: SP and CSLS on a fixed model ==\n");

  for (const auto& preset :
       {kg::PresetFbDb15k(), kg::PresetDbp15k(kg::Dbp15kLang::kFrEn)}) {
    const bool bilingual = bench::IsBilingual(preset.name);
    auto spec = bench::BenchSpec(preset);
    spec.image_ratio = 0.5;  // missing modality is where decoding matters
    auto data = kg::GenerateSyntheticPair(spec);

    auto cfg = core::DesalignConfig::Default(/*seed=*/7);
    cfg.base.dim = bench::BenchDim();
    cfg.base.epochs = bench::BenchEpochs();
    cfg.propagation_iterations = bilingual ? 1 : 2;
    core::DesalignModel model(cfg);
    model.Fit(data);

    std::printf("\n-- Dataset %s (R_img=50%%) --\n", preset.name.c_str());
    common::TablePrinter table({"Decoding", "H@1", "H@10", "MRR"});
    struct Variant {
      const char* label;
      int np;
      bool csls;
    };
    const Variant variants[] = {
        {"cosine only", 0, false},
        {"+ CSLS", 0, true},
        {"+ semantic propagation", bilingual ? 1 : 2, false},
        {"+ SP + CSLS", bilingual ? 1 : 2, true},
    };
    for (const auto& v : variants) {
      model.set_propagation_iterations(v.np);
      auto sim = model.DecodeSimilarity(data);
      if (v.csls) align::ApplyCsls(*sim);
      auto m = align::MetricsFromSimilarity(*sim);
      table.AddRow({v.label, common::Pct(m.h_at_1), common::Pct(m.h_at_10),
                    common::Pct(m.mrr)});
    }
    table.Print();
  }
  return 0;
}
