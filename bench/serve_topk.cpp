// Serving-path benchmark: batched cosine top-k retrieval over synthetic
// fused embeddings. Compares (a) the exact single-threaded brute-force
// reference (full score vector per query, the cost profile of the offline
// align::ComputeSimilarity-style decode), (b) the blocked scan on one
// thread (cache-locality win only), and (c) the blocked scan on the global
// worker pool (cache + parallel win). All three return bit-identical
// results, which this binary also verifies on a sample.
//
//   ./serve_topk [--targets=10000] [--queries=10000] [--dim=64] [--k=10]
//                [--block=256] [--threads=0] [--sample=...]

#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/flags.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "common/table.h"
#include "serve/embedding_store.h"
#include "serve/topk.h"

using namespace desalign;

namespace {

std::vector<float> RandomRows(int64_t rows, int64_t dim, common::Rng& rng) {
  std::vector<float> data(static_cast<size_t>(rows * dim));
  for (auto& v : data) v = rng.UniformF(-1.0f, 1.0f);
  return data;
}

bool SameResults(const std::vector<serve::TopKResult>& a,
                 const std::vector<serve::TopKResult>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].ids != b[i].ids || a[i].scores != b[i].scores) return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  common::FlagParser parser(
      "serve_topk: blocked multi-threaded top-k vs brute force");
  int64_t targets, queries, dim, k, block, threads, sample;
  parser.AddInt64("targets", 10000, "stored target embeddings", &targets);
  parser.AddInt64("queries", 10000, "replayed queries", &queries);
  parser.AddInt64("dim", 64, "embedding dimension", &dim);
  parser.AddInt64("k", 10, "candidates per query", &k);
  parser.AddInt64("block", 256, "target rows per block", &block);
  common::AddThreadsFlag(parser, &threads);
  parser.AddInt64("sample", 256,
                  "queries cross-checked for bit-exactness vs brute force",
                  &sample);
  auto status = parser.Parse(argc, argv);
  if (!status.ok()) {
    if (status.code() != common::StatusCode::kFailedPrecondition) {
      std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    }
    return status.code() == common::StatusCode::kFailedPrecondition ? 0 : 1;
  }
  if (!common::ApplyThreadsFlag(threads).ok()) return 1;
  const int pool_threads = common::ThreadPool::Global().num_threads();

  std::printf("== serve top-k: %lld targets x %lld queries, dim %lld, "
              "k=%lld, block=%lld, %d threads ==\n",
              static_cast<long long>(targets),
              static_cast<long long>(queries), static_cast<long long>(dim),
              static_cast<long long>(k), static_cast<long long>(block),
              pool_threads);

  common::Rng rng(7);
  const auto store = serve::EmbeddingStore::FromRows(
      targets, dim, RandomRows(targets, dim, rng));
  const std::vector<float> query_data = RandomRows(queries, dim, rng);

  serve::TopKOptions blocked_options;
  blocked_options.block_rows = block;
  serve::TopKRetriever retriever(&store, blocked_options);

  common::ThreadPool single(1);
  serve::TopKOptions single_options = blocked_options;
  single_options.pool = &single;
  serve::TopKRetriever single_retriever(&store, single_options);

  common::TablePrinter table({"path", "threads", "time(s)", "queries/s",
                            "speedup"});
  double brute_seconds = 0.0;
  const auto add_row = [&](const char* name, int nthreads, double seconds) {
    char qps[32], secs[32], speedup[32];
    std::snprintf(secs, sizeof(secs), "%.3f", seconds);
    std::snprintf(qps, sizeof(qps), "%.0f",
                  static_cast<double>(queries) / seconds);
    std::snprintf(speedup, sizeof(speedup), "%.2fx",
                  brute_seconds / seconds);
    table.AddRow({name, std::to_string(nthreads), secs, qps, speedup});
  };

  common::Stopwatch clock;
  const auto brute =
      single_retriever.RetrieveBruteForce(query_data.data(), queries, k);
  brute_seconds = clock.ElapsedSeconds();
  add_row("brute full-matrix", 1, brute_seconds);

  clock.Reset();
  const auto blocked_single =
      single_retriever.Retrieve(query_data.data(), queries, k);
  add_row("blocked", 1, clock.ElapsedSeconds());

  clock.Reset();
  const auto blocked_pooled =
      retriever.Retrieve(query_data.data(), queries, k);
  add_row("blocked + pool", pool_threads, clock.ElapsedSeconds());

  table.Print();

  // Bit-exactness: the pooled blocked path must reproduce brute force.
  const int64_t check = std::min(sample, queries);
  std::vector<serve::TopKResult> brute_head(brute.begin(),
                                            brute.begin() + check);
  std::vector<serve::TopKResult> single_head(blocked_single.begin(),
                                             blocked_single.begin() + check);
  std::vector<serve::TopKResult> pooled_head(blocked_pooled.begin(),
                                             blocked_pooled.begin() + check);
  if (!SameResults(brute_head, single_head) ||
      !SameResults(brute_head, pooled_head)) {
    std::printf("MISMATCH: blocked results differ from brute force!\n");
    return 1;
  }
  std::printf("verified: all paths bit-identical on %lld sampled queries\n",
              static_cast<long long>(check));
  return 0;
}
