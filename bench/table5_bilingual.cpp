// Regenerates Table V: main results on the bilingual DBP15K datasets
// (R_seed = 30%), non-iterative and iterative.
// Paper shape to reproduce: DESAlign > MEAformer > MCLEA > EVA >
// structure-only baselines in every column; iterative > non-iterative.

#include <cstdio>

#include "align/iterative.h"
#include "bench/bench_common.h"
#include "eval/harness.h"
#include "common/table.h"
#include "kg/presets.h"
#include "kg/synthetic.h"

int main() {
  using namespace desalign;
  std::printf("== Table V: bilingual main results ==\n");
  bench::ConfigureHarness(/*bilingual=*/true);

  const std::vector<kg::SyntheticSpec> presets = {
      kg::PresetDbp15k(kg::Dbp15kLang::kFrEn),
      kg::PresetDbp15k(kg::Dbp15kLang::kJaEn),
      kg::PresetDbp15k(kg::Dbp15kLang::kZhEn)};

  std::vector<kg::AlignedKgPair> datasets;
  for (const auto& preset : presets) {
    datasets.push_back(kg::GenerateSyntheticPair(bench::BenchSpec(preset)));
  }

  std::vector<std::string> headers = {"Strategy", "Model"};
  for (const auto& d : datasets) {
    headers.push_back(d.name + " H@1");
    headers.push_back("H@10");
    headers.push_back("MRR");
  }
  common::TablePrinter table(headers);

  align::IterativeConfig iter;
  iter.rounds = 2;
  iter.epochs_per_round = bench::BenchEpochs() / 2;

  for (bool iterative : {false, true}) {
    auto methods =
        iterative ? eval::ProminentMethods() : eval::AllBasicMethods();
    for (const auto& method : methods) {
      std::vector<std::string> row = {
          iterative ? "Iterative" : "Non-iterative", method.name};
      for (const auto& data : datasets) {
        auto cell = eval::RunCell(method, data, /*seed=*/7, iterative, iter);
        row.push_back(common::Pct(cell.metrics.h_at_1));
        row.push_back(common::Pct(cell.metrics.h_at_10));
        row.push_back(common::Pct(cell.metrics.mrr));
        std::fprintf(stderr, "  [%s %s%s] H@1=%.3f\n", data.name.c_str(),
                     method.name.c_str(), iterative ? "+iter" : "",
                     cell.metrics.h_at_1);
      }
      table.AddRow(std::move(row));
    }
    if (!iterative) table.AddSeparator();
  }
  table.Print();
  return 0;
}
