#ifndef DESALIGN_BENCH_BENCH_COMMON_H_
#define DESALIGN_BENCH_BENCH_COMMON_H_

// Shared plumbing for the table/figure reproduction binaries.
//
// Scale knobs (environment variables):
//   DESALIGN_BENCH_ENTITIES  entities per KG            (default 350)
//   DESALIGN_BENCH_EPOCHS    training epochs per model  (default 40)
//   DESALIGN_BENCH_DIM       hidden dimension           (default 32)
// Raising them tightens the numbers at the cost of wall-clock; the
// comparative shape is stable across scales.

#include <cstdlib>
#include <string>

#include "common/strings.h"
#include "eval/harness.h"
#include "kg/presets.h"
#include "kg/synthetic.h"

namespace desalign::bench {

inline int64_t EnvInt(const char* name, int64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || value[0] == '\0') return fallback;
  return std::atoll(value);
}

inline int64_t BenchEntities() {
  return EnvInt("DESALIGN_BENCH_ENTITIES", 350);
}
inline int BenchEpochs() {
  return static_cast<int>(EnvInt("DESALIGN_BENCH_EPOCHS", 40));
}
inline int64_t BenchDim() { return EnvInt("DESALIGN_BENCH_DIM", 32); }

/// Applies the bench scale to the harness factories. `bilingual` selects
/// the paper's best propagation depth for the dataset family (Fig. 4:
/// n_p = 1 bilingual, n_p = 2 monolingual).
inline void ConfigureHarness(bool bilingual) {
  auto& settings = eval::GlobalHarnessSettings();
  settings.dim = BenchDim();
  settings.epochs = BenchEpochs();
  settings.propagation_iterations = bilingual ? 1 : 2;
}

/// Scales a preset down to the bench entity budget.
inline kg::SyntheticSpec BenchSpec(kg::SyntheticSpec spec) {
  spec.num_entities = BenchEntities();
  return spec;
}

inline bool IsBilingual(const std::string& dataset_name) {
  return common::StartsWith(dataset_name, "DBP15K");
}

}  // namespace desalign::bench

#endif  // DESALIGN_BENCH_BENCH_COMMON_H_
