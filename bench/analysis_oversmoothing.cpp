// Section III analysis: Dirichlet-energy trajectories during training with
// and without the MMSL constraints, under severe semantic inconsistency
// (R_img = R_tex = 30%). The paper's claim: with inconsistent semantics and
// no energy control, models overfit modality noise and the layer energies
// drift (over-smoothing toward zero, or over-separation), costing accuracy;
// the Proposition 3 constraints keep E(X^(k)) inside
// [c_min·E(X^(k−1)), c_max·E(X^(0))].

#include <cstdio>

#include "align/metrics.h"
#include "bench/bench_common.h"
#include "core/desalign.h"
#include "common/table.h"
#include "kg/presets.h"
#include "kg/synthetic.h"

int main() {
  using namespace desalign;
  std::printf("== Dirichlet-energy trajectories (Sec. III analysis) ==\n");

  auto spec = bench::BenchSpec(kg::PresetFbDb15k());
  spec.image_ratio = 0.3;
  spec.text_ratio = 0.3;
  auto data = kg::GenerateSyntheticPair(spec);

  struct Variant {
    const char* label;
    bool use_mmsl;
    align::MissingFeaturePolicy policy;
  };
  const Variant variants[] = {
      {"noise-fill, no MMSL (baseline behaviour)", false,
       align::MissingFeaturePolicy::kRandomFromDistribution},
      {"zero-fill + MMSL (DESAlign)", true,
       align::MissingFeaturePolicy::kZeroFill},
  };

  for (const auto& variant : variants) {
    auto cfg = core::DesalignConfig::Default(/*seed=*/7);
    cfg.base.dim = bench::BenchDim();
    cfg.base.epochs = bench::BenchEpochs();
    cfg.base.record_energy_trace = true;
    cfg.use_mmsl = variant.use_mmsl;
    cfg.base.missing_policy = variant.policy;
    core::DesalignModel model(cfg);
    auto result = model.Evaluate(data);

    std::printf("\n-- %s --\n", variant.label);
    common::TablePrinter table(
        {"Epoch", "E(X^(0))", "E(X^(k-1))", "E(X^(k))", "ratio k/(k-1)"});
    const auto& trace = model.energy_trace();
    for (size_t e = 0; e < trace.size(); e += 5) {
      const auto& snap = trace[e];
      table.AddRow({std::to_string(e),
                    common::FormatDouble(snap.e_initial, 4),
                    common::FormatDouble(snap.e_mid, 4),
                    common::FormatDouble(snap.e_final, 4),
                    common::FormatDouble(
                        snap.e_mid > 0 ? snap.e_final / snap.e_mid : 0.0,
                        3)});
    }
    table.Print();
    std::printf("H@1 = %s, MRR = %s\n",
                common::Pct(result.metrics.h_at_1).c_str(),
                common::Pct(result.metrics.mrr).c_str());
  }
  return 0;
}
