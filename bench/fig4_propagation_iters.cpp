// Regenerates Fig. 4: impact of the number of semantic-propagation
// iterations n_p on H@1 for all five datasets. Each model is trained once;
// decoding is repeated at every depth (propagation is learning-free).
// Paper shape to reproduce: small n_p is optimal — n_p = 1 for the
// bilingual DBP15K datasets, n_p = 2–3 for the monolingual datasets — and
// accuracy decays when propagation runs too long (noise from smoothing the
// consistent features).

#include <algorithm>
#include <cstdio>

#include "align/metrics.h"
#include "bench/bench_common.h"
#include "core/desalign.h"
#include "common/table.h"
#include "kg/presets.h"
#include "kg/synthetic.h"

int main() {
  using namespace desalign;
  std::printf("== Fig. 4: semantic propagation iterations (H@1) ==\n");
  const int max_np = 8;
  std::vector<std::string> headers = {"Dataset"};
  for (int np = 0; np <= max_np; ++np) {
    headers.push_back("n_p=" + std::to_string(np));
  }
  common::TablePrinter table(headers);

  for (const auto& preset : kg::AllPresets()) {
    auto spec = bench::BenchSpec(preset);
    // Propagation matters most when modalities are missing.
    spec.image_ratio = std::min(spec.image_ratio, 0.6);
    auto data = kg::GenerateSyntheticPair(spec);

    auto cfg = core::DesalignConfig::Default(/*seed=*/7);
    cfg.base.dim = bench::BenchDim();
    cfg.base.epochs = bench::BenchEpochs();
    core::DesalignModel model(cfg);
    model.Fit(data);

    std::vector<std::string> row = {preset.name};
    for (int np = 0; np <= max_np; ++np) {
      model.set_propagation_iterations(np);
      auto metrics = align::MetricsFromSimilarity(
          *model.DecodeSimilarity(data));
      row.push_back(common::Pct(metrics.h_at_1));
      std::fprintf(stderr, "  [%s n_p=%d] H@1=%.3f\n", preset.name.c_str(),
                   np, metrics.h_at_1);
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  return 0;
}
