// Regenerates Table II: robustness of the prominent methods to a varying
// ratio of text attributes (R_tex) on the monolingual datasets.
// Paper shape to reproduce: DESAlign's scores stay nearly flat across
// ratios while the baselines stay lower; "Improv." stays large at every
// ratio.

#include <cstdio>

#include "bench/bench_sweep.h"
#include "kg/presets.h"

int main() {
  using namespace desalign;
  std::printf("== Table II: varying ratio of text attributes ==\n");
  bench::RunMissingModalitySweep(
      {kg::PresetFbDb15k(), kg::PresetFbYg15k()},
      bench::SweepVariable::kTextRatio,
      {0.05, 0.20, 0.30, 0.40, 0.50, 0.60});
  return 0;
}
