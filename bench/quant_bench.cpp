// Quantization benchmark: fp32 vs bf16 vs int8 embedding storage across an
// entity-count sweep on clustered synthetic embeddings. For each dtype it
// reports the table footprint and memory reduction vs fp32, single-query
// p50/p99 latency, recall@k and Hits@1 agreement against fp32 brute-force
// ground truth, and whether exact mode (int8 scan + fp32 re-rank over all
// rows) is bit-exact vs the dequantized brute-force reference. Writes
// BENCH_quant.json (schema "desalign.quant_bench.v1"); see
// docs/PERFORMANCE.md for how to read it.
//
//   ./quant_bench [--out=BENCH_quant.json]
//                 [--entities-list=10000,100000,1000000] [--dim=64]
//                 [--queries=256] [--k=10] [--rerank=0] [--clusters=256]
//                 [--smoke]

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "common/flags.h"
#include "common/strings.h"
#include "index/quant_bench.h"

using namespace desalign;

int main(int argc, char** argv) {
  common::FlagParser parser(
      "quant_bench: int8/bf16 embedding storage vs fp32 brute force");
  std::string out_path, entities_list;
  int64_t dim, queries, k, rerank, clusters;
  double noise;
  bool smoke;
  parser.AddString("out", "BENCH_quant.json", "output JSON path", &out_path);
  parser.AddString("entities-list", "10000,100000,1000000",
                   "comma-separated entity counts to sweep", &entities_list);
  parser.AddInt64("dim", 64, "embedding dimension", &dim);
  parser.AddInt64("queries", 256, "queries per case", &queries);
  parser.AddInt64("k", 10, "candidates per query", &k);
  parser.AddInt64("rerank", 0,
                  "int8 stage-2 fp32 re-rank width (0 = auto, <0 = exact)",
                  &rerank);
  parser.AddInt64("clusters", 256, "synthetic mixture components", &clusters);
  parser.AddDouble("noise", 0.25, "synthetic per-coordinate noise", &noise);
  parser.AddBool("smoke", false, "CI mode: smallest entity count only",
                 &smoke);
  auto status = parser.Parse(argc, argv);
  if (!status.ok()) {
    if (status.code() != common::StatusCode::kFailedPrecondition) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    return 0;  // --help
  }

  index::QuantBenchOptions options;
  options.entity_counts.clear();
  for (const auto& tok : common::Split(entities_list, ',')) {
    const std::string trimmed(common::Trim(tok));
    if (trimmed.empty()) continue;
    options.entity_counts.push_back(std::atoll(trimmed.c_str()));
  }
  if (options.entity_counts.empty()) options.entity_counts = {10000};
  options.dim = dim;
  options.queries = queries;
  options.k = k;
  options.rerank_candidates = rerank;
  options.clusters = clusters;
  options.noise = noise;
  options.smoke = smoke;

  auto report = index::RunQuantBench(options);

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  out << report.ToJson();
  out.close();

  for (const auto& c : report.cases) {
    std::printf("%ld entities, dim %ld, k %ld\n",
                static_cast<long>(c.entities), static_cast<long>(c.dim),
                static_cast<long>(c.k));
    for (const auto& d : c.dtypes) {
      std::printf("  %-5s %10ld B (%.2fx)  p50 %8.3f ms  p99 %8.3f ms  "
                  "recall@%ld %.4f",
                  d.dtype.c_str(), static_cast<long>(d.table_bytes),
                  d.memory_reduction, d.p50_ms, d.p99_ms,
                  static_cast<long>(c.k), d.recall_at_k);
      if (d.dtype == "int8") std::printf(" (raw %.4f)", d.recall_at_k_raw);
      std::printf("  hits@1 %.4f%s%s\n", d.hits_at_1,
                  d.bitexact_full ? "  (bit-exact full)" : "",
                  d.refined_exact_matches_fp32 ? " (refined == fp32)" : "");
    }
  }
  std::printf("wrote %s (%zu cases)\n", out_path.c_str(), report.cases.size());
  return 0;
}
