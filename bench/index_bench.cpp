// Index benchmark: brute-force retrieval vs the two-stage IVF index
// (src/index/) across an entity-count sweep on clustered synthetic
// embeddings. Reports per-path p50/p99 latency, qps, recall@k and whether
// the path is bit-exact vs brute force. Writes BENCH_index.json (schema
// "desalign.index_bench.v1"); see docs/SERVING.md for how to read it.
//
//   ./index_bench [--out=BENCH_index.json]
//                 [--entities-list=10000,100000,1000000] [--dim=64]
//                 [--queries=256] [--k=10] [--nprobe=8] [--shards=4]
//                 [--smoke]

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "common/flags.h"
#include "common/strings.h"
#include "index/index_bench.h"

using namespace desalign;

int main(int argc, char** argv) {
  common::FlagParser parser(
      "index_bench: IVF two-stage index vs brute-force retrieval");
  std::string out_path, entities_list;
  int64_t dim, queries, k, nprobe, centroids, shards, clusters;
  double noise;
  bool smoke;
  parser.AddString("out", "BENCH_index.json", "output JSON path", &out_path);
  parser.AddString("entities-list", "10000,100000,1000000",
                   "comma-separated entity counts to sweep", &entities_list);
  parser.AddInt64("dim", 64, "embedding dimension", &dim);
  parser.AddInt64("queries", 256, "queries per case", &queries);
  parser.AddInt64("k", 10, "candidates per query", &k);
  parser.AddInt64("nprobe", 8, "partial-probe width", &nprobe);
  parser.AddInt64("centroids", 0, "IVF coarse cells (0 = ~sqrt(n))",
                  &centroids);
  parser.AddInt64("shards", 4, "IVF inverted-list shards", &shards);
  parser.AddInt64("clusters", 256, "synthetic mixture components", &clusters);
  parser.AddDouble("noise", 0.25, "synthetic per-coordinate noise", &noise);
  parser.AddBool("smoke", false, "CI mode: smallest entity count only",
                 &smoke);
  auto status = parser.Parse(argc, argv);
  if (!status.ok()) {
    if (status.code() != common::StatusCode::kFailedPrecondition) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    return 0;  // --help
  }

  index::IndexBenchOptions options;
  options.entity_counts.clear();
  for (const auto& tok : common::Split(entities_list, ',')) {
    const std::string trimmed(common::Trim(tok));
    if (trimmed.empty()) continue;
    options.entity_counts.push_back(std::atoll(trimmed.c_str()));
  }
  if (options.entity_counts.empty()) options.entity_counts = {10000};
  options.dim = dim;
  options.queries = queries;
  options.k = k;
  options.nprobe = nprobe;
  options.num_centroids = centroids;
  options.num_shards = static_cast<int>(shards);
  options.clusters = clusters;
  options.noise = noise;
  options.smoke = smoke;

  auto report = index::RunIndexBench(options);

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  out << report.ToJson();
  out.close();

  for (const auto& c : report.cases) {
    std::printf("%ld entities, dim %ld, %ld cells, %d shards, build %.1f ms\n",
                static_cast<long>(c.entities), static_cast<long>(c.dim),
                static_cast<long>(c.num_centroids), c.shards, c.build_ms);
    for (const auto& p : c.paths) {
      std::printf("  %-12s p50 %8.3f ms  p99 %8.3f ms  %8.0f qps  "
                  "recall@%ld %.4f%s\n",
                  p.path.c_str(), p.p50_ms, p.p99_ms, p.qps,
                  static_cast<long>(c.k), p.recall_at_k,
                  p.bitexact ? "  (bit-exact)" : "");
    }
  }
  std::printf("wrote %s (%zu cases)\n", out_path.c_str(), report.cases.size());
  return 0;
}
