// Regenerates Fig. 3 (left): ablation study of DESAlign — removing each
// modality (g/r/t/v), each training objective of Proposition 3, the MMSL
// Dirichlet-energy constraints, the min-confidence weighting, and semantic
// propagation (w/o PP).
// Paper shape to reproduce: every ablation degrades H@1/MRR; dropping a
// whole modality (text most of all) and dropping semantic propagation hurt
// the most; the X^(0)/X^(k−1) objectives matter less than the final-layer
// objectives.

#include <cstdio>
#include <functional>
#include <vector>

#include "bench/bench_common.h"
#include "core/desalign.h"
#include "common/table.h"
#include "kg/presets.h"
#include "kg/synthetic.h"

int main() {
  using namespace desalign;
  std::printf("== Fig. 3 (left): ablation study ==\n");

  struct Variant {
    const char* label;
    std::function<void(core::DesalignConfig&)> apply;
  };
  const std::vector<Variant> variants = {
      {"DESAlign (full)", [](core::DesalignConfig&) {}},
      {"w/o graph (g)",
       [](core::DesalignConfig& c) {
         c.base.use_modality[static_cast<int>(kg::Modality::kGraph)] = false;
       }},
      {"w/o relation (r)",
       [](core::DesalignConfig& c) {
         c.base.use_modality[static_cast<int>(kg::Modality::kRelation)] =
             false;
       }},
      {"w/o text (t)",
       [](core::DesalignConfig& c) {
         c.base.use_modality[static_cast<int>(kg::Modality::kText)] = false;
       }},
      {"w/o visual (v)",
       [](core::DesalignConfig& c) {
         c.base.use_modality[static_cast<int>(kg::Modality::kVisual)] =
             false;
       }},
      {"w/o L_task^(0)",
       [](core::DesalignConfig& c) { c.base.use_initial_task_loss = false; }},
      {"w/o L_m^(k-1)",
       [](core::DesalignConfig& c) { c.base.use_mid_layer_losses = false; }},
      {"w/o MMSL (energy constraints)",
       [](core::DesalignConfig& c) { c.use_mmsl = false; }},
      {"w/o min-confidence",
       [](core::DesalignConfig& c) { c.base.use_min_confidence = false; }},
      {"w/o PP (semantic propagation)",
       [](core::DesalignConfig& c) { c.use_propagation = false; }},
  };

  for (const auto& preset :
       {kg::PresetFbDb15k(), kg::PresetDbp15k(kg::Dbp15kLang::kFrEn)}) {
    const bool bilingual = bench::IsBilingual(preset.name);
    // The presets already carry realistic missing-modality levels (Table
    // I), which is what the ablated components exist for.
    auto spec = bench::BenchSpec(preset);
    auto data = kg::GenerateSyntheticPair(spec);
    std::printf("\n-- Dataset %s --\n", preset.name.c_str());
    common::TablePrinter table({"Variant", "H@1", "H@10", "MRR"});
    for (const auto& variant : variants) {
      auto cfg = core::DesalignConfig::Default(/*seed=*/7);
      cfg.base.dim = bench::BenchDim();
      cfg.base.epochs = bench::BenchEpochs();
      cfg.propagation_iterations = bilingual ? 1 : 2;
      variant.apply(cfg);
      core::DesalignModel model(cfg);
      auto r = model.Evaluate(data);
      table.AddRow({variant.label, common::Pct(r.metrics.h_at_1),
                    common::Pct(r.metrics.h_at_10), common::Pct(r.metrics.mrr)});
      std::fprintf(stderr, "  [%s %s] H@1=%.3f\n", preset.name.c_str(),
                   variant.label, r.metrics.h_at_1);
    }
    table.Print();
  }
  return 0;
}
