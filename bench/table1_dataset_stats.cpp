// Regenerates Table I: statistics of the five benchmark datasets
// (entities, relations, attributes, triples, images, seed pairs) on the
// synthetic analogues.

#include <cstdio>

#include "bench/bench_common.h"
#include "common/table.h"
#include "kg/presets.h"
#include "kg/synthetic.h"

int main() {
  using namespace desalign;
  std::printf("== Table I: dataset statistics (synthetic analogues) ==\n");
  common::TablePrinter table({"Dataset", "KG", "Ent.", "Rel.", "Att.",
                            "R.Triples", "A.Triples", "Image", "EA pairs"});
  for (auto spec : kg::AllPresets()) {
    spec.num_entities = bench::BenchEntities();
    auto pair = kg::GenerateSyntheticPair(spec);
    auto s = kg::ComputeStatistics(pair.source);
    auto t = kg::ComputeStatistics(pair.target);
    table.AddRow({pair.name, "source", std::to_string(s.entities),
                  std::to_string(s.relations), std::to_string(s.attributes),
                  std::to_string(s.relation_triples),
                  std::to_string(s.attribute_triples),
                  std::to_string(s.images),
                  std::to_string(pair.TotalPairs())});
    table.AddRow({"", "target", std::to_string(t.entities),
                  std::to_string(t.relations), std::to_string(t.attributes),
                  std::to_string(t.relation_triples),
                  std::to_string(t.attribute_triples),
                  std::to_string(t.images), ""});
    table.AddSeparator();
  }
  table.Print();
  return 0;
}
