// Overload benchmark: open-loop load generator sweeping offered QPS past
// the serving queue's measured capacity. Proves the overload-protection
// stack (bounded admission, per-request deadlines, the degradation
// ladder) keeps goodput flat and the p99 of admitted requests bounded
// while the surplus is shed, and that the queue walks back to healthy,
// bit-exact answers after the storm. Writes BENCH_overload.json (schema
// "desalign.overload_bench.v1"); see docs/ROBUSTNESS.md.
//
//   ./overload_bench [--out=BENCH_overload.json] [--entities=30000]
//                    [--dim=64] [--k=10] [--deadline-ms=50]
//                    [--max-pending=256] [--duration-s=2]
//                    [--multipliers=0.5,1,2,4] [--threads=4] [--smoke]

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "common/flags.h"
#include "common/strings.h"
#include "serve/overload_bench.h"

using namespace desalign;

int main(int argc, char** argv) {
  common::FlagParser parser(
      "overload_bench: open-loop overload sweep of the serving queue");
  std::string out_path, multipliers;
  int64_t entities, dim, k, max_pending, threads;
  double deadline_ms, duration_s;
  bool smoke;
  parser.AddString("out", "BENCH_overload.json", "output JSON path",
                   &out_path);
  parser.AddInt64("entities", 30000, "synthetic table rows", &entities);
  parser.AddInt64("dim", 64, "embedding dimension", &dim);
  parser.AddInt64("k", 10, "candidates per query", &k);
  parser.AddDouble("deadline-ms", 50.0, "per-request deadline", &deadline_ms);
  parser.AddInt64("max-pending", 256, "admission bound on the queue",
                  &max_pending);
  parser.AddDouble("duration-s", 2.0, "open-loop seconds per load point",
                   &duration_s);
  parser.AddString("multipliers", "0.5,1,2,4",
                   "offered load as multiples of measured capacity",
                   &multipliers);
  parser.AddInt64("threads", 4, "submitting client threads", &threads);
  parser.AddBool("smoke", false, "CI mode: small table, short points",
                 &smoke);
  auto status = parser.Parse(argc, argv);
  if (!status.ok()) {
    if (status.code() != common::StatusCode::kFailedPrecondition) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    return 0;  // --help
  }

  serve::OverloadBenchOptions options;
  options.entities = entities;
  options.dim = dim;
  options.k = k;
  options.deadline_ms = deadline_ms;
  options.max_pending = max_pending;
  options.duration_s = duration_s;
  options.submit_threads = static_cast<int>(threads);
  options.smoke = smoke;
  options.load_multipliers.clear();
  for (const auto& tok : common::Split(multipliers, ',')) {
    const std::string trimmed(common::Trim(tok));
    if (!trimmed.empty()) {
      options.load_multipliers.push_back(std::atof(trimmed.c_str()));
    }
  }
  if (options.load_multipliers.empty()) {
    options.load_multipliers = {0.5, 1.0, 2.0, 4.0};
  }

  const auto report = serve::RunOverloadBench(options);

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  out << report.ToJson();
  out.close();

  std::printf("capacity %.0f qps (%ld entities, dim %ld, deadline %.0f ms)\n",
              report.capacity_qps, static_cast<long>(report.entities),
              static_cast<long>(report.dim), report.deadline_ms);
  for (const auto& c : report.cases) {
    std::printf("  x%-4.2g offered %7.0f qps  goodput %7.0f qps  "
                "ok %6ld  shed %5ld/%-5ld  p99 %7.2f ms  rung %ld->%ld\n",
                c.multiplier, c.offered_qps, c.goodput_qps,
                static_cast<long>(c.ok),
                static_cast<long>(c.shed_queue_full),
                static_cast<long>(c.shed_deadline), c.p99_ms,
                static_cast<long>(c.max_rung), static_cast<long>(c.end_rung));
  }
  std::printf("recovery: rung %ld -> %s in %.0f ms, %s\n",
              static_cast<long>(report.recovery.from_rung),
              report.recovery.reached_healthy ? "healthy" : "NOT healthy",
              report.recovery.recover_ms,
              report.recovery.bitexact ? "bit-exact" : "NOT bit-exact");
  std::printf("wrote %s (%zu load points)\n", out_path.c_str(),
              report.cases.size());
  return 0;
}
