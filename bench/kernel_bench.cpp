// Kernel regression benchmark: sweeps the tensor kernel layer (elementwise,
// GEMM, rowwise, sparse) over a thread-count x ISA grid and reports each
// variant's ns/element plus its speedup against the serial scalar reference
// (kernels/reference.cc — the pre-kernel-layer op loops). Writes
// BENCH_kernels.json (schema "desalign.kernel_bench.v1"); see
// docs/PERFORMANCE.md for how to read the output.
//
//   ./kernel_bench [--out=BENCH_kernels.json] [--threads-list=1,2,4,8]
//                  [--repeats=5] [--smoke]

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/strings.h"
#include "tensor/kernels/kernel_bench.h"

using namespace desalign;

int main(int argc, char** argv) {
  common::FlagParser parser(
      "kernel_bench: tensor kernel layer vs serial scalar reference");
  std::string out_path, threads_list;
  int64_t repeats;
  bool smoke;
  parser.AddString("out", "BENCH_kernels.json", "output JSON path", &out_path);
  parser.AddString("threads-list", "1,2,4,8",
                   "comma-separated thread counts to sweep", &threads_list);
  parser.AddInt64("repeats", 5, "timing repeats per measurement (min wins)",
                  &repeats);
  parser.AddBool("smoke", false, "tiny shapes for CI smoke runs", &smoke);
  auto status = parser.Parse(argc, argv);
  if (!status.ok()) {
    if (status.code() != common::StatusCode::kFailedPrecondition) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    return 0;  // --help
  }

  tensor::kernels::KernelBenchOptions options;
  options.thread_counts.clear();
  for (const auto& tok : common::Split(threads_list, ',')) {
    const std::string trimmed(common::Trim(tok));
    if (trimmed.empty()) continue;
    options.thread_counts.push_back(std::atoi(trimmed.c_str()));
  }
  if (options.thread_counts.empty()) options.thread_counts = {1};
  options.repeats = static_cast<int>(repeats);
  options.smoke = smoke;

  auto report = tensor::kernels::RunKernelBench(options);

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  out << report.ToJson();
  out.close();

  std::printf("%-20s %10s %10s  best\n", "op", "shape", "ref ns/el");
  for (const auto& c : report.cases) {
    char shape[32];
    std::snprintf(shape, sizeof(shape), "%ldx%ld", static_cast<long>(c.rows),
                  static_cast<long>(c.cols));
    std::printf("%-20s %10s %10.3f  %.2fx\n", c.op.c_str(), shape,
                c.ref_ns_per_elem, c.BestSpeedup());
  }
  std::printf("wrote %s (%zu cases)\n", out_path.c_str(),
              report.cases.size());
  return 0;
}
