// Missing-modality robustness demo (the paper's Q1, Tables II/III in
// miniature): sweep the image ratio R_img and watch DESAlign stay flat
// while a noise-interpolating baseline oscillates and declines.
//
//   ./build/examples/missing_modality

#include <cstdio>

#include "baselines/fusion_baselines.h"
#include "core/desalign.h"
#include "common/table.h"
#include "kg/presets.h"
#include "kg/synthetic.h"

int main() {
  using namespace desalign;
  const std::vector<double> ratios = {0.1, 0.3, 0.5, 0.7, 0.9};

  std::printf("Sweeping R_img on a DBP15K-FR-EN-style dataset (H@1)\n\n");
  common::TablePrinter table({"Model", "R=10%", "R=30%", "R=50%", "R=70%",
                            "R=90%"});
  std::vector<std::string> ours_row = {"DESAlign"};
  std::vector<std::string> base_row = {"MEAformer"};

  for (double ratio : ratios) {
    kg::SyntheticSpec spec = kg::PresetDbp15k(kg::Dbp15kLang::kFrEn);
    spec.num_entities = 300;
    spec.image_ratio = ratio;
    auto data = kg::GenerateSyntheticPair(spec);

    auto cfg = core::DesalignConfig::Default(/*seed=*/3);
    cfg.base.epochs = 40;
    cfg.propagation_iterations = 1;  // bilingual sweet spot (Fig. 4)
    core::DesalignModel ours(cfg);
    auto r_ours = ours.Evaluate(data);

    auto base_cfg = baselines::MeaformerConfig(/*seed=*/3);
    base_cfg.epochs = 40;
    align::FusionAlignModel baseline(base_cfg);
    auto r_base = baseline.Evaluate(data);

    ours_row.push_back(common::Pct(r_ours.metrics.h_at_1));
    base_row.push_back(common::Pct(r_base.metrics.h_at_1));
    std::printf("R_img=%.0f%%: DESAlign %.1f vs MEAformer %.1f\n",
                ratio * 100, r_ours.metrics.h_at_1 * 100,
                r_base.metrics.h_at_1 * 100);
  }
  std::printf("\n");
  table.AddRow(std::move(base_row));
  table.AddRow(std::move(ours_row));
  table.Print();
  std::printf(
      "\nDESAlign zero-fills missing rows and repairs them with semantic\n"
      "propagation at decode time; the baseline samples them from a\n"
      "predefined Gaussian, injecting modality noise into training.\n");
  return 0;
}
