// Quickstart: generate a synthetic MMEA dataset, train DESAlign, and
// compare it against the strongest baseline (MEAformer) on H@k / MRR.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "baselines/fusion_baselines.h"
#include "core/desalign.h"
#include "common/table.h"
#include "kg/presets.h"
#include "kg/synthetic.h"

int main() {
  using namespace desalign;

  // 1. Generate an FB15K-DB15K-style dataset (see kg/presets.h for the
  //    other four presets; every knob lives on kg::SyntheticSpec).
  kg::SyntheticSpec spec = kg::PresetFbDb15k();
  spec.num_entities = 400;  // keep the demo snappy
  spec.seed_ratio = 0.3;
  kg::AlignedKgPair data = kg::GenerateSyntheticPair(spec);
  std::printf("dataset %s: %lld + %lld entities, %zu + %zu triples, "
              "%zu seed / %zu test pairs\n",
              data.name.c_str(),
              static_cast<long long>(data.source.num_entities),
              static_cast<long long>(data.target.num_entities),
              data.source.triples.size(), data.target.triples.size(),
              data.train_pairs.size(), data.test_pairs.size());

  // 2. Train and evaluate DESAlign.
  core::DesalignConfig config = core::DesalignConfig::Default(/*seed=*/1);
  config.base.epochs = 50;
  core::DesalignModel desalign(config);
  auto desalign_result = desalign.Evaluate(data);

  // 3. Train and evaluate the MEAformer baseline for comparison.
  auto meaformer = baselines::MakeMeaformer(/*seed=*/1);
  auto meaformer_result = meaformer->Evaluate(data);

  // 4. Report.
  common::TablePrinter table({"Model", "H@1", "H@10", "MRR", "train", "decode"});
  auto add = [&table](const char* name, const align::EvalResult& r) {
    table.AddRow({name, common::Pct(r.metrics.h_at_1),
                  common::Pct(r.metrics.h_at_10), common::Pct(r.metrics.mrr),
                  common::Secs(r.train_seconds), common::Secs(r.decode_seconds)});
  };
  add("MEAformer", meaformer_result);
  add("DESAlign", desalign_result);
  table.Print();

  // 5. Peek at the Dirichlet energies Proposition 3 constrains.
  auto energies = desalign.MeasureDirichletEnergies();
  std::printf("Dirichlet energies (per N*d): E(X0)=%.4f E(Xk-1)=%.4f "
              "E(Xk)=%.4f\n",
              energies.e_initial, energies.e_mid, energies.e_final);
  return 0;
}
