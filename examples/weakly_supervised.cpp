// Weakly supervised alignment + the iterative strategy (paper Q4): train
// DESAlign with as little as 1% seed alignments, then bootstrap pseudo
// seeds from mutual nearest neighbours.
//
//   ./build/examples/weakly_supervised

#include <cstdio>

#include "align/iterative.h"
#include "align/metrics.h"
#include "core/desalign.h"
#include "common/table.h"
#include "kg/io.h"
#include "kg/presets.h"
#include "kg/synthetic.h"

int main() {
  using namespace desalign;
  common::TablePrinter table({"R_seed", "seeds", "H@1 basic", "H@1 +iterative",
                            "pseudo-seed gain"});

  for (double seed_ratio : {0.01, 0.05, 0.10}) {
    kg::SyntheticSpec spec = kg::PresetDbp15k(kg::Dbp15kLang::kFrEn);
    spec.num_entities = 300;
    spec.seed_ratio = seed_ratio;
    auto data = kg::GenerateSyntheticPair(spec);

    auto cfg = core::DesalignConfig::Default(/*seed=*/5);
    cfg.base.epochs = 40;
    cfg.propagation_iterations = 1;
    core::DesalignModel model(cfg);
    model.Fit(data);
    auto basic = align::MetricsFromSimilarity(*model.DecodeSimilarity(data));

    align::IterativeConfig iter;
    iter.rounds = 2;
    iter.epochs_per_round = 20;
    iter.min_similarity = 0.5f;
    align::RunIterativeRefinement(model, data, iter);
    auto boosted =
        align::MetricsFromSimilarity(*model.DecodeSimilarity(data));

    table.AddRow({common::Pct(seed_ratio),
                  std::to_string(data.train_pairs.size()),
                  common::Pct(basic.h_at_1), common::Pct(boosted.h_at_1),
                  common::Pct(boosted.h_at_1 - basic.h_at_1)});
    std::printf("R_seed=%.0f%%: basic H@1=%.1f, iterative H@1=%.1f\n",
                seed_ratio * 100, basic.h_at_1 * 100, boosted.h_at_1 * 100);
  }
  std::printf("\n");
  table.Print();
  std::printf(
      "\nThe iterative strategy caches cross-graph mutual nearest\n"
      "neighbours above a similarity threshold as pseudo seeds and\n"
      "refines the model on the enlarged set; the cache is rebuilt every\n"
      "round (alignment editing), so unstable pairs drop out.\n");
  return 0;
}
