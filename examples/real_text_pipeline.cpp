// Real-data ingestion walkthrough: build an MMEA dataset from raw strings
// (the shape of an actual DBpedia/Freebase dump) using the bag-of-words
// pipeline, then align it with DESAlign.
//
// Two toy KGs describe the same twelve entities with different surface
// text and different relational coverage — the semantic-inconsistency
// situation from the paper's Figure 1 (Elon Musk vs. Elon Reeve Musk).
//
//   ./build/examples/real_text_pipeline

#include <cstdio>
#include <string>
#include <vector>

#include "align/assignment.h"
#include "align/metrics.h"
#include "core/desalign.h"
#include "kg/text.h"
#include "tensor/tensor.h"

namespace {

using namespace desalign;

struct RawKg {
  std::vector<std::string> attributes;  // per entity, concatenated strings
  std::vector<kg::Triple> triples;
};

kg::Mmkg BuildKgFromStrings(const RawKg& raw, const kg::Vocabulary& vocab,
                            const std::string& name) {
  kg::Mmkg out;
  out.name = name;
  out.num_entities = static_cast<int64_t>(raw.attributes.size());
  out.num_relations = 2;
  out.num_attributes = vocab.size();
  out.triples = raw.triples;
  out.text_features = kg::BuildBowFeatures(raw.attributes, vocab);
  // Bag-of-relations from the triples.
  out.relation_features.features =
      tensor::Tensor::Create(out.num_entities, out.num_relations);
  out.relation_features.present.assign(out.num_entities, false);
  for (const auto& t : out.triples) {
    out.relation_features.features->At(t.head, t.relation) += 1.0f;
    out.relation_features.features->At(t.tail, t.relation) += 1.0f;
    out.relation_features.present[t.head] = true;
    out.relation_features.present[t.tail] = true;
  }
  // This toy dump carries no images: the visual modality is absent for
  // every entity — DESAlign handles the empty modality gracefully.
  out.visual_features.features = tensor::Tensor::Create(out.num_entities, 4);
  out.visual_features.present.assign(out.num_entities, false);
  return out;
}

}  // namespace

int main() {
  // Twelve entities; KG2 describes them with different wording/coverage.
  const std::vector<std::string> kg1_text = {
      "Elon Musk, businessman, born Pretoria, citizenship Canada",
      "SpaceX, aerospace company, Hawthorne California",
      "Tesla, electric vehicle maker, Austin",
      "Albert Einstein, physicist, relativity, Ulm",
      "Marie Curie, chemist physicist, radioactivity, Warsaw",
      "Berlin, capital city of Germany",
      "Paris, capital city of France",
      "Lionel Messi, footballer, forward, Rosario",
      "FC Barcelona, football club, Camp Nou",
      "Mount Everest, mountain, Himalaya, 8849 metres",
      "Amazon River, river, South America",
      "Kyoto, city, Japan, temples",
  };
  const std::vector<std::string> kg2_text = {
      "Elon Reeve Musk: entrepreneur; born in Pretoria; SpaceX founder",
      "Space Exploration Technologies (SpaceX), rockets, California",
      "Tesla Inc, electric cars, energy storage",
      "A. Einstein — theoretical physicist — theory of relativity",
      "Maria Sklodowska-Curie, pioneer of radioactivity research",
      "Berlin (Deutschland), capital and largest city of Germany",
      "Paris, la capitale de la France",
      "Leo Messi, Argentine football forward",
      "Futbol Club Barcelona, La Liga, stadium Camp Nou",
      "Everest, highest mountain on Earth, Nepal and Tibet",
      "The Amazon, largest river by discharge, Brazil Peru",
      "Kyoto, former imperial capital of Japan",
  };
  // Relation 0 = "associated-with", relation 1 = "located-in".
  RawKg raw1;
  raw1.attributes = kg1_text;
  raw1.triples = {{0, 0, 1}, {0, 0, 2}, {7, 0, 8}, {1, 1, 6},
                  {3, 1, 5},  {9, 1, 11}, {10, 1, 11}};
  RawKg raw2;
  raw2.attributes = kg2_text;
  raw2.triples = {{0, 0, 1}, {0, 0, 2}, {7, 0, 8}, {3, 1, 5},
                  {4, 1, 6},  {9, 1, 11}};

  // One shared vocabulary over both dumps makes the BoW spaces comparable.
  kg::Vocabulary vocab;
  for (const auto& doc : kg1_text) vocab.AddText(doc);
  for (const auto& doc : kg2_text) vocab.AddText(doc);
  vocab.Prune(/*min_count=*/1, /*max_vocab=*/512);
  std::printf("shared vocabulary: %lld tokens\n",
              static_cast<long long>(vocab.size()));

  kg::AlignedKgPair data;
  data.name = "toy-text";
  data.source = BuildKgFromStrings(raw1, vocab, "toy-src");
  data.target = BuildKgFromStrings(raw2, vocab, "toy-tgt");
  // Three seeds, nine test pairs (identity mapping in this toy).
  for (int64_t i = 0; i < 12; ++i) {
    (i < 3 ? data.train_pairs : data.test_pairs).push_back({i, i});
  }

  auto cfg = core::DesalignConfig::Default(/*seed=*/3);
  cfg.base.dim = 16;
  cfg.base.epochs = 60;
  cfg.propagation_iterations = 1;
  core::DesalignModel model(cfg);
  model.Fit(data);
  auto sim = model.DecodeSimilarity(data);
  auto metrics = align::MetricsFromSimilarity(*sim);
  std::printf("ranking decode:   H@1=%.1f%%  MRR=%.1f%%\n",
              metrics.h_at_1 * 100, metrics.mrr * 100);

  // One-to-one assignment decoding resolves remaining conflicts.
  auto match = align::HungarianMatch(*sim);
  std::printf("assignment decode: accuracy=%.1f%% (Hungarian, one-to-one)\n",
              align::MatchingAccuracy(match) * 100);
  for (size_t i = 0; i < match.size(); ++i) {
    std::printf("  \"%.30s...\"  ->  \"%.30s...\"%s\n",
                kg1_text[data.test_pairs[i].source].c_str(),
                kg2_text[data.test_pairs[match[i]].target].c_str(),
                match[i] == static_cast<int64_t>(i) ? "" : "   [WRONG]");
  }
  return 0;
}
