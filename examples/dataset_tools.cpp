// Dataset tooling walkthrough: generate a benchmark-style MMEA dataset,
// inspect its statistics and semantic-inconsistency profile, persist it to
// disk, and reload it — the workflow for plugging your own data into the
// library (write the same TSV/fbin layout and call kg::LoadDataset).
//
//   ./build/examples/dataset_tools [output_dir]

#include <cstdio>
#include <filesystem>

#include "common/table.h"
#include "kg/io.h"
#include "kg/presets.h"
#include "kg/synthetic.h"

int main(int argc, char** argv) {
  using namespace desalign;
  const std::string dir =
      argc > 1 ? argv[1]
               : (std::filesystem::temp_directory_path() /
                  "desalign_dataset_demo").string();

  // 1. Generate: every preset mirrors one of the paper's Table I datasets.
  kg::SyntheticSpec spec = kg::PresetFbYg15k();
  spec.num_entities = 300;
  auto data = kg::GenerateSyntheticPair(spec);

  // 2. Inspect.
  common::TablePrinter stats({"KG", "Ent.", "Rel.", "Att.", "R.Triples",
                            "A.Triples", "Image", "text%", "image%"});
  for (const auto* kg : {&data.source, &data.target}) {
    auto s = kg::ComputeStatistics(*kg);
    stats.AddRow({kg->name, std::to_string(s.entities),
                  std::to_string(s.relations), std::to_string(s.attributes),
                  std::to_string(s.relation_triples),
                  std::to_string(s.attribute_triples),
                  std::to_string(s.images),
                  common::Pct(kg->text_features.PresentRatio()),
                  common::Pct(kg->visual_features.PresentRatio())});
  }
  stats.Print();
  std::printf("seed alignments: %zu, test alignments: %zu (R_seed=%s%%)\n",
              data.train_pairs.size(), data.test_pairs.size(),
              common::Pct(data.SeedRatio()).c_str());

  // 3. Persist.
  auto status = kg::SaveDataset(data, dir);
  if (!status.ok()) {
    std::fprintf(stderr, "save failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("saved to %s\n", dir.c_str());

  // 4. Reload and re-split for a weakly supervised experiment.
  auto loaded = kg::LoadDataset(dir);
  if (!loaded.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  auto pair = std::move(loaded).value();
  pair.Resplit(/*seed_ratio=*/0.05, /*seed=*/9);
  std::printf("reloaded %s: resplit to %zu seeds / %zu test pairs\n",
              pair.name.c_str(), pair.train_pairs.size(),
              pair.test_pairs.size());
  return 0;
}
