// Semantic Propagation as a standalone, learning-free plugin: reconstruct
// missing feature rows from graph structure (paper §IV-C) and compare the
// Euler scheme against the closed-form solution (Eq. 19) and naive
// baselines.
//
//   ./build/examples/propagation_plugin

#include <cmath>
#include <cstdio>

#include "common/rng.h"
#include "common/strings.h"
#include "core/semantic_propagation.h"
#include "common/table.h"
#include "graph/dirichlet.h"
#include "kg/presets.h"
#include "kg/synthetic.h"
#include "tensor/tensor.h"

namespace {

using namespace desalign;
using tensor::Tensor;
using tensor::TensorPtr;

// Mean squared error over the rows flagged missing.
double MissingRowsMse(const TensorPtr& reconstructed, const TensorPtr& truth,
                      const std::vector<bool>& known) {
  double acc = 0.0;
  int64_t count = 0;
  for (int64_t i = 0; i < truth->rows(); ++i) {
    if (known[i]) continue;
    for (int64_t j = 0; j < truth->cols(); ++j) {
      const double d = reconstructed->At(i, j) - truth->At(i, j);
      acc += d * d;
      ++count;
    }
  }
  return count > 0 ? acc / count : 0.0;
}

}  // namespace

int main() {
  // A KG whose visual features are fully known — the ground truth.
  kg::SyntheticSpec spec = kg::PresetFbDb15k();
  spec.num_entities = 250;
  spec.image_ratio = 1.0;
  auto data = kg::GenerateSyntheticPair(spec);
  const auto& kg = data.source;
  auto truth = kg.visual_features.features;
  const int64_t n = kg.num_entities;
  const int64_t d = truth->cols();

  // Hide 35% of rows.
  common::Rng rng(11);
  std::vector<bool> known(n);
  for (int64_t i = 0; i < n; ++i) known[i] = rng.Bernoulli(0.65);
  auto observed = Tensor::Create(n, d);
  for (int64_t i = 0; i < n; ++i) {
    if (!known[i]) continue;
    for (int64_t j = 0; j < d; ++j) observed->At(i, j) = truth->At(i, j);
  }

  auto graph = kg.BuildGraph();
  auto norm = graph.NormalizedAdjacency();

  // Baseline 1: leave zeros. Baseline 2: per-column Gaussian noise.
  auto random_fill = observed->Detach();
  {
    std::vector<double> mean(d, 0.0);
    std::vector<double> sq(d, 0.0);
    int64_t cnt = 0;
    for (int64_t i = 0; i < n; ++i) {
      if (!known[i]) continue;
      ++cnt;
      for (int64_t j = 0; j < d; ++j) {
        mean[j] += truth->At(i, j);
        sq[j] += truth->At(i, j) * truth->At(i, j);
      }
    }
    for (int64_t j = 0; j < d; ++j) {
      mean[j] /= cnt;
      sq[j] = std::sqrt(std::max(0.0, sq[j] / cnt - mean[j] * mean[j]));
    }
    for (int64_t i = 0; i < n; ++i) {
      if (known[i]) continue;
      for (int64_t j = 0; j < d; ++j) {
        random_fill->At(i, j) =
            static_cast<float>(rng.Normal(mean[j], sq[j]));
      }
    }
  }

  common::TablePrinter table({"Interpolation", "MSE on missing rows",
                            "Dirichlet energy"});
  auto report = [&](const char* label, const TensorPtr& x) {
    table.AddRow({label,
                  common::FormatDouble(MissingRowsMse(x, truth, known), 4),
                  common::FormatDouble(graph::DirichletEnergy(norm, x), 1)});
  };
  report("zero-fill", observed);
  report("predefined distribution (noise)", random_fill);
  for (int iters : {1, 2, 5, 20}) {
    auto states = core::SemanticPropagation::Run(norm, observed, known,
                                                 iters);
    report(("semantic propagation, " + std::to_string(iters) + " steps")
               .c_str(),
           states.back());
  }
  report("closed form (Eq. 19)",
         core::SemanticPropagation::SolveClosedForm(norm, observed, known));
  report("ground truth", truth);
  table.Print();
  std::printf(
      "\nPropagation reconstructs missing rows from existing modal features\n"
      "(Proposition 4); more steps approach the closed-form harmonic\n"
      "solution. Noise interpolation matches the moments but not the\n"
      "entities.\n");
  return 0;
}
