#ifndef DESALIGN_GRAPH_ALGORITHMS_H_
#define DESALIGN_GRAPH_ALGORITHMS_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace desalign::graph {

/// Connected-component labels in [0, num_components); label 0 is the
/// component of node 0.
struct ComponentLabels {
  std::vector<int64_t> label;  ///< per node
  int64_t num_components = 0;

  /// Size of each component.
  std::vector<int64_t> ComponentSizes() const;
};

/// Union-find based connected components.
ComponentLabels ConnectedComponents(const Graph& g);

/// True when the graph has exactly one connected component.
bool IsConnected(const Graph& g);

/// Breadth-first distances from `source` (-1 for unreachable nodes).
std::vector<int64_t> BfsDistances(const Graph& g, int64_t source);

/// Nodes within `hops` of `source` (including `source` itself).
std::vector<int64_t> KHopNeighborhood(const Graph& g, int64_t source,
                                      int64_t hops);

/// Induced subgraph on `nodes`: returns the subgraph plus the mapping from
/// new ids to the original ids (new id i corresponds to nodes[i]).
Graph InducedSubgraph(const Graph& g, const std::vector<int64_t>& nodes);

/// Summary statistics used by the dataset tooling.
struct GraphStatistics {
  int64_t num_nodes = 0;
  int64_t num_edges = 0;
  int64_t num_components = 0;
  int64_t max_degree = 0;
  int64_t isolated_nodes = 0;
  double average_degree = 0.0;
};

GraphStatistics ComputeGraphStatistics(const Graph& g);

}  // namespace desalign::graph

#endif  // DESALIGN_GRAPH_ALGORITHMS_H_
