#include "graph/dirichlet.h"

#include <cmath>

#include "common/check.h"
#include "common/rng.h"
#include "obs/metrics.h"

namespace desalign::graph {

using tensor::Tensor;

double DirichletEnergy(const CsrMatrixPtr& normalized_adjacency,
                       const TensorPtr& x) {
  DESALIGN_CHECK_EQ(normalized_adjacency->rows(), x->rows());
  // Static: monitoring code calls this per propagation state; re-resolving
  // the counter by name every call would be map-lookup noise.
  static obs::Counter& evals =
      obs::MetricsRegistry::Global().GetCounter("dirichlet.energy_evals");
  evals.Increment();
  const int64_t n = x->rows();
  const int64_t d = x->cols();
  std::vector<float> ax(static_cast<size_t>(n * d));
  normalized_adjacency->Multiply(x->data().data(), d, ax.data());
  double self = 0.0;
  double cross = 0.0;
  for (int64_t i = 0; i < n * d; ++i) {
    const double v = x->data()[i];
    self += v * v;
    cross += v * ax[i];
  }
  return self - cross;
}

TensorPtr DirichletEnergyNode(const CsrMatrixPtr& normalized_adjacency,
                              const TensorPtr& x) {
  DESALIGN_CHECK_EQ(normalized_adjacency->rows(), x->rows());
  auto self = tensor::SumSquares(x);
  auto cross = tensor::Sum(tensor::Mul(x, tensor::SpMM(normalized_adjacency, x)));
  return tensor::Sub(self, cross);
}

double LargestEigenvalue(const CsrMatrixPtr& m, int iterations,
                         uint64_t seed) {
  DESALIGN_CHECK_EQ(m->rows(), m->cols());
  const int64_t n = m->rows();
  common::Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.Normal());
  std::vector<float> w(n);
  double eig = 0.0;
  for (int it = 0; it < iterations; ++it) {
    m->Multiply(v.data(), 1, w.data());
    double norm = 0.0;
    for (float x : w) norm += static_cast<double>(x) * x;
    norm = std::sqrt(norm);
    if (norm < 1e-30) return 0.0;
    for (int64_t i = 0; i < n; ++i) v[i] = static_cast<float>(w[i] / norm);
    eig = norm;
  }
  // Rayleigh quotient for the final vector (v is unit norm).
  m->Multiply(v.data(), 1, w.data());
  double rq = 0.0;
  for (int64_t i = 0; i < n; ++i) rq += static_cast<double>(v[i]) * w[i];
  (void)eig;
  return rq;
}

namespace {

// y = WᵀW v for dense W (r x c), v length c.
void GramMultiply(const Tensor& w, const std::vector<double>& v,
                  std::vector<double>& y) {
  const int64_t r = w.rows();
  const int64_t c = w.cols();
  std::vector<double> tmp(r, 0.0);
  for (int64_t i = 0; i < r; ++i) {
    double acc = 0.0;
    for (int64_t j = 0; j < c; ++j) acc += w.At(i, j) * v[j];
    tmp[i] = acc;
  }
  y.assign(c, 0.0);
  for (int64_t i = 0; i < r; ++i) {
    for (int64_t j = 0; j < c; ++j) y[j] += w.At(i, j) * tmp[i];
  }
}

double Normalize(std::vector<double>& v) {
  double norm = 0.0;
  for (double x : v) norm += x * x;
  norm = std::sqrt(norm);
  if (norm > 1e-300) {
    for (double& x : v) x /= norm;
  }
  return norm;
}

}  // namespace

SingularValueBounds EstimateSingularValueBounds(const TensorPtr& w,
                                                int iterations,
                                                uint64_t seed) {
  const int64_t c = w->cols();
  common::Rng rng(seed);
  SingularValueBounds out;

  // p_max: power iteration on G = WᵀW.
  std::vector<double> v(c);
  for (auto& x : v) x = rng.Normal();
  Normalize(v);
  std::vector<double> y;
  for (int it = 0; it < iterations; ++it) {
    GramMultiply(*w, v, y);
    v = y;
    Normalize(v);
  }
  GramMultiply(*w, v, y);
  double pmax = 0.0;
  for (int64_t j = 0; j < c; ++j) pmax += v[j] * y[j];
  out.p_max = pmax;

  // p_min via shifted power iteration on (p_max·I − G): its largest
  // eigenvalue is p_max − p_min.
  std::vector<double> u(c);
  for (auto& x : u) x = rng.Normal();
  Normalize(u);
  for (int it = 0; it < iterations; ++it) {
    GramMultiply(*w, u, y);
    for (int64_t j = 0; j < c; ++j) y[j] = pmax * u[j] - y[j];
    u = y;
    if (Normalize(u) < 1e-30) break;
  }
  GramMultiply(*w, u, y);
  double rq = 0.0;
  for (int64_t j = 0; j < c; ++j) rq += u[j] * (pmax * u[j] - y[j]);
  out.p_min = std::max(0.0, pmax - rq);
  return out;
}

EnergyGapBounds InterpolationQualityBounds(double energy_x_hat,
                                           double energy_x,
                                           double lambda_max,
                                           double norm_min,
                                           double norm_max) {
  EnergyGapBounds b;
  const double gap = std::fabs(energy_x_hat - energy_x);
  if (lambda_max <= 0.0) return b;
  if (norm_max > 0.0) b.lower = gap / (2.0 * lambda_max * norm_max);
  if (norm_min > 0.0) b.upper = gap / (2.0 * lambda_max * norm_min);
  return b;
}

}  // namespace desalign::graph
