#include "graph/spectrum.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace desalign::graph {

std::vector<double> SymmetricEigenvalues(const tensor::CsrMatrix& m,
                                         int max_sweeps, double tol) {
  DESALIGN_CHECK_EQ(m.rows(), m.cols());
  DESALIGN_CHECK_MSG(m.IsSymmetric(1e-5f),
                     "Jacobi eigensolver requires a symmetric matrix");
  const int64_t n = m.rows();
  // Densify.
  std::vector<double> a(static_cast<size_t>(n * n), 0.0);
  const auto& row_ptr = m.row_ptr();
  const auto& col_idx = m.col_idx();
  const auto& values = m.values();
  for (int64_t r = 0; r < n; ++r) {
    for (int64_t p = row_ptr[r]; p < row_ptr[r + 1]; ++p) {
      a[r * n + col_idx[p]] = values[p];
    }
  }

  // Cyclic Jacobi rotations.
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t j = i + 1; j < n; ++j) {
        off += a[i * n + j] * a[i * n + j];
      }
    }
    if (std::sqrt(2.0 * off) < tol) break;
    for (int64_t p = 0; p < n - 1; ++p) {
      for (int64_t q = p + 1; q < n; ++q) {
        const double apq = a[p * n + q];
        if (std::fabs(apq) < 1e-300) continue;
        const double app = a[p * n + p];
        const double aqq = a[q * n + q];
        const double theta = 0.5 * (aqq - app) / apq;
        const double t = (theta >= 0 ? 1.0 : -1.0) /
                         (std::fabs(theta) +
                          std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        for (int64_t k = 0; k < n; ++k) {
          const double akp = a[k * n + p];
          const double akq = a[k * n + q];
          a[k * n + p] = c * akp - s * akq;
          a[k * n + q] = s * akp + c * akq;
        }
        for (int64_t k = 0; k < n; ++k) {
          const double apk = a[p * n + k];
          const double aqk = a[q * n + k];
          a[p * n + k] = c * apk - s * aqk;
          a[q * n + k] = s * apk + c * aqk;
        }
      }
    }
  }
  std::vector<double> eigenvalues(n);
  for (int64_t i = 0; i < n; ++i) eigenvalues[i] = a[i * n + i];
  std::sort(eigenvalues.begin(), eigenvalues.end());
  return eigenvalues;
}

SpectrumSummary SummarizeLaplacianSpectrum(const tensor::CsrMatrix& lap,
                                           double zero_tol) {
  auto eig = SymmetricEigenvalues(lap);
  SpectrumSummary s;
  DESALIGN_CHECK(!eig.empty());
  s.lambda_min = eig.front();
  s.lambda_max = eig.back();
  s.lambda_2 = eig.size() > 1 ? eig[1] : eig[0];
  for (double v : eig) {
    if (std::fabs(v) <= zero_tol) ++s.num_near_zero;
  }
  return s;
}

}  // namespace desalign::graph
