#ifndef DESALIGN_GRAPH_GRAPH_H_
#define DESALIGN_GRAPH_GRAPH_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "tensor/sparse.h"

namespace desalign::graph {

using tensor::CsrMatrixPtr;

/// An undirected edge list over nodes [0, num_nodes). Self-loops and
/// duplicate edges are tolerated on input and deduplicated when building
/// matrices.
class Graph {
 public:
  Graph(int64_t num_nodes, std::vector<std::pair<int64_t, int64_t>> edges);

  int64_t num_nodes() const { return num_nodes_; }
  /// Number of distinct undirected edges (excluding self-loops).
  int64_t num_edges() const { return static_cast<int64_t>(edges_.size()); }
  const std::vector<std::pair<int64_t, int64_t>>& edges() const {
    return edges_;
  }

  /// Binary symmetric adjacency matrix A.
  CsrMatrixPtr Adjacency() const;

  /// Symmetrically normalized adjacency Ã = D^-1/2 (A + sI) D^-1/2.
  /// `self_loop_weight` s > 0 adds weighted self-loops (the common
  /// renormalization trick); s = 0 gives the plain normalized adjacency.
  /// Isolated nodes receive an identity row so Ã is always well defined.
  CsrMatrixPtr NormalizedAdjacency(float self_loop_weight = 1.0f) const;

  /// Graph Laplacian Δ = I − Ã (positive semi-definite, eigenvalues in
  /// [0, 2)).
  CsrMatrixPtr Laplacian(float self_loop_weight = 1.0f) const;

  /// Node degrees (self-loops excluded).
  std::vector<int64_t> Degrees() const;

  /// Directed edge arrays (each undirected edge contributes both
  /// directions, plus one self-loop per node) — the message-passing form
  /// consumed by the GAT layer.
  struct DirectedEdges {
    std::vector<int64_t> src;
    std::vector<int64_t> dst;
  };
  DirectedEdges MessagePassingEdges(bool add_self_loops = true) const;

  /// Builds a block-diagonal union of two graphs (nodes of `b` shifted by
  /// a.num_nodes()). Used to treat the source and target MMKG as one graph
  /// for Dirichlet-energy computations and joint propagation.
  static Graph DisjointUnion(const Graph& a, const Graph& b);

 private:
  int64_t num_nodes_;
  std::vector<std::pair<int64_t, int64_t>> edges_;  // deduped, u < v
};

}  // namespace desalign::graph

#endif  // DESALIGN_GRAPH_GRAPH_H_
