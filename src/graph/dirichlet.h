#ifndef DESALIGN_GRAPH_DIRICHLET_H_
#define DESALIGN_GRAPH_DIRICHLET_H_

#include <cstdint>

#include "tensor/ops.h"
#include "tensor/sparse.h"
#include "tensor/tensor.h"

namespace desalign::graph {

using tensor::CsrMatrixPtr;
using tensor::TensorPtr;

/// Dirichlet energy E(X) = tr(Xᵀ Δ X) of node features X w.r.t. the
/// Laplacian Δ = I − Ã (paper Definition 3). Non-differentiable fast path
/// used for monitoring and analysis.
double DirichletEnergy(const CsrMatrixPtr& normalized_adjacency,
                       const TensorPtr& x);

/// Autograd node computing the Dirichlet energy as
/// E(X) = Σ X⊙X − Σ X⊙(ÃX), differentiable in X. Used inside the MMSL
/// training objective (Proposition 3 penalties).
TensorPtr DirichletEnergyNode(const CsrMatrixPtr& normalized_adjacency,
                              const TensorPtr& x);

/// Estimates the largest eigenvalue of a symmetric sparse matrix by power
/// iteration. For a Laplacian this is λ_max ∈ [0, 2).
double LargestEigenvalue(const CsrMatrixPtr& m, int iterations = 100,
                         uint64_t seed = 7);

/// Bounds on the squared singular values of a dense weight matrix W,
/// estimated by power iteration on WᵀW (largest) and inverse-free deflated
/// iteration (smallest, approximate). These are the p_max / p_min of
/// Proposition 2.
struct SingularValueBounds {
  double p_min = 0.0;  ///< square of the smallest singular value
  double p_max = 0.0;  ///< square of the largest singular value
};
SingularValueBounds EstimateSingularValueBounds(const TensorPtr& w,
                                                int iterations = 200,
                                                uint64_t seed = 7);

/// Corollary 1: bounds on ||X̂ − X||₂ implied by the Dirichlet-energy gap.
/// `lower`/`upper` bracket the optimal interpolation quality.
struct EnergyGapBounds {
  double lower = 0.0;
  double upper = 0.0;
};
EnergyGapBounds InterpolationQualityBounds(double energy_x_hat,
                                           double energy_x,
                                           double lambda_max,
                                           double norm_min, double norm_max);

}  // namespace desalign::graph

#endif  // DESALIGN_GRAPH_DIRICHLET_H_
