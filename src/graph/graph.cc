#include "graph/graph.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace desalign::graph {

using tensor::CsrMatrix;
using tensor::Triplet;

Graph::Graph(int64_t num_nodes,
             std::vector<std::pair<int64_t, int64_t>> edges)
    : num_nodes_(num_nodes) {
  DESALIGN_CHECK_GT(num_nodes, 0);
  edges_.reserve(edges.size());
  for (auto [u, v] : edges) {
    DESALIGN_CHECK(u >= 0 && u < num_nodes);
    DESALIGN_CHECK(v >= 0 && v < num_nodes);
    if (u == v) continue;  // drop self-loops; added back where needed
    if (u > v) std::swap(u, v);
    edges_.emplace_back(u, v);
  }
  std::sort(edges_.begin(), edges_.end());
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());
}

CsrMatrixPtr Graph::Adjacency() const {
  std::vector<Triplet> t;
  t.reserve(edges_.size() * 2);
  for (auto [u, v] : edges_) {
    t.push_back({u, v, 1.0f});
    t.push_back({v, u, 1.0f});
  }
  return CsrMatrix::FromTriplets(num_nodes_, num_nodes_, std::move(t));
}

CsrMatrixPtr Graph::NormalizedAdjacency(float self_loop_weight) const {
  std::vector<float> degree(num_nodes_, self_loop_weight);
  for (auto [u, v] : edges_) {
    degree[u] += 1.0f;
    degree[v] += 1.0f;
  }
  std::vector<float> inv_sqrt(num_nodes_);
  for (int64_t i = 0; i < num_nodes_; ++i) {
    // Isolated node with no self-loop: force degree 1 so the row is the
    // identity and propagation leaves its feature unchanged.
    const float d = degree[i] > 0.0f ? degree[i] : 1.0f;
    inv_sqrt[i] = 1.0f / std::sqrt(d);
  }
  std::vector<Triplet> t;
  t.reserve(edges_.size() * 2 + num_nodes_);
  for (auto [u, v] : edges_) {
    const float w = inv_sqrt[u] * inv_sqrt[v];
    t.push_back({u, v, w});
    t.push_back({v, u, w});
  }
  for (int64_t i = 0; i < num_nodes_; ++i) {
    const float s = degree[i] > 0.0f && self_loop_weight > 0.0f
                        ? self_loop_weight * inv_sqrt[i] * inv_sqrt[i]
                        : (self_loop_weight > 0.0f ? 1.0f : 0.0f);
    if (s > 0.0f) t.push_back({i, i, s});
  }
  return CsrMatrix::FromTriplets(num_nodes_, num_nodes_, std::move(t));
}

CsrMatrixPtr Graph::Laplacian(float self_loop_weight) const {
  auto identity = CsrMatrix::Identity(num_nodes_);
  auto norm_adj = NormalizedAdjacency(self_loop_weight);
  return identity->Add(*norm_adj, 1.0f, -1.0f);
}

std::vector<int64_t> Graph::Degrees() const {
  std::vector<int64_t> degree(num_nodes_, 0);
  for (auto [u, v] : edges_) {
    ++degree[u];
    ++degree[v];
  }
  return degree;
}

Graph::DirectedEdges Graph::MessagePassingEdges(bool add_self_loops) const {
  DirectedEdges de;
  const size_t n = edges_.size() * 2 +
                   (add_self_loops ? static_cast<size_t>(num_nodes_) : 0);
  de.src.reserve(n);
  de.dst.reserve(n);
  for (auto [u, v] : edges_) {
    de.src.push_back(u);
    de.dst.push_back(v);
    de.src.push_back(v);
    de.dst.push_back(u);
  }
  if (add_self_loops) {
    for (int64_t i = 0; i < num_nodes_; ++i) {
      de.src.push_back(i);
      de.dst.push_back(i);
    }
  }
  return de;
}

Graph Graph::DisjointUnion(const Graph& a, const Graph& b) {
  std::vector<std::pair<int64_t, int64_t>> edges = a.edges_;
  edges.reserve(a.edges_.size() + b.edges_.size());
  for (auto [u, v] : b.edges_) {
    edges.emplace_back(u + a.num_nodes_, v + a.num_nodes_);
  }
  return Graph(a.num_nodes_ + b.num_nodes_, std::move(edges));
}

}  // namespace desalign::graph
