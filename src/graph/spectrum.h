#ifndef DESALIGN_GRAPH_SPECTRUM_H_
#define DESALIGN_GRAPH_SPECTRUM_H_

#include <vector>

#include "tensor/sparse.h"

namespace desalign::graph {

/// Full eigenvalue spectrum of a symmetric sparse matrix, computed by the
/// cyclic Jacobi method on a densified copy — exact spectral analysis for
/// the moderate sizes used in theory validation (the paper's claims about
/// λ(Δ) ∈ [0, 2) and the spectral view of semantic propagation as
/// low-pass filtering). O(n³); intended for n ≲ a few hundred.
///
/// Returns eigenvalues sorted ascending.
std::vector<double> SymmetricEigenvalues(const tensor::CsrMatrix& m,
                                         int max_sweeps = 50,
                                         double tol = 1e-10);

/// Spectral summary of a graph Laplacian.
struct SpectrumSummary {
  double lambda_min = 0.0;       ///< ≈ 0 on any graph
  double lambda_2 = 0.0;         ///< algebraic connectivity (Fiedler value)
  double lambda_max = 0.0;       ///< < 2 for Δ = I − Ã
  int64_t num_near_zero = 0;     ///< multiplicity of ~0 = #components
};

SpectrumSummary SummarizeLaplacianSpectrum(const tensor::CsrMatrix& lap,
                                           double zero_tol = 1e-6);

}  // namespace desalign::graph

#endif  // DESALIGN_GRAPH_SPECTRUM_H_
