#include "graph/algorithms.h"

#include <algorithm>
#include <numeric>
#include <queue>
#include <unordered_map>

#include "common/check.h"

namespace desalign::graph {

namespace {

// Path-compressing union-find.
class UnionFind {
 public:
  explicit UnionFind(int64_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  int64_t Find(int64_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  void Union(int64_t a, int64_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<int64_t> parent_;
};

std::vector<std::vector<int64_t>> AdjacencyLists(const Graph& g) {
  std::vector<std::vector<int64_t>> adj(g.num_nodes());
  for (auto [u, v] : g.edges()) {
    adj[u].push_back(v);
    adj[v].push_back(u);
  }
  return adj;
}

}  // namespace

std::vector<int64_t> ComponentLabels::ComponentSizes() const {
  std::vector<int64_t> sizes(num_components, 0);
  for (int64_t l : label) ++sizes[l];
  return sizes;
}

ComponentLabels ConnectedComponents(const Graph& g) {
  UnionFind uf(g.num_nodes());
  for (auto [u, v] : g.edges()) uf.Union(u, v);
  ComponentLabels out;
  out.label.assign(g.num_nodes(), -1);
  for (int64_t i = 0; i < g.num_nodes(); ++i) {
    const int64_t root = uf.Find(i);
    if (out.label[root] < 0) out.label[root] = out.num_components++;
    out.label[i] = out.label[root];
  }
  return out;
}

bool IsConnected(const Graph& g) {
  return ConnectedComponents(g).num_components == 1;
}

std::vector<int64_t> BfsDistances(const Graph& g, int64_t source) {
  DESALIGN_CHECK(source >= 0 && source < g.num_nodes());
  auto adj = AdjacencyLists(g);
  std::vector<int64_t> dist(g.num_nodes(), -1);
  std::queue<int64_t> frontier;
  dist[source] = 0;
  frontier.push(source);
  while (!frontier.empty()) {
    const int64_t u = frontier.front();
    frontier.pop();
    for (int64_t v : adj[u]) {
      if (dist[v] < 0) {
        dist[v] = dist[u] + 1;
        frontier.push(v);
      }
    }
  }
  return dist;
}

std::vector<int64_t> KHopNeighborhood(const Graph& g, int64_t source,
                                      int64_t hops) {
  auto dist = BfsDistances(g, source);
  std::vector<int64_t> nodes;
  for (int64_t i = 0; i < g.num_nodes(); ++i) {
    if (dist[i] >= 0 && dist[i] <= hops) nodes.push_back(i);
  }
  return nodes;
}

Graph InducedSubgraph(const Graph& g, const std::vector<int64_t>& nodes) {
  DESALIGN_CHECK(!nodes.empty());
  std::unordered_map<int64_t, int64_t> new_id;
  new_id.reserve(nodes.size());
  for (size_t i = 0; i < nodes.size(); ++i) {
    DESALIGN_CHECK(nodes[i] >= 0 && nodes[i] < g.num_nodes());
    new_id[nodes[i]] = static_cast<int64_t>(i);
  }
  std::vector<std::pair<int64_t, int64_t>> edges;
  for (auto [u, v] : g.edges()) {
    auto iu = new_id.find(u);
    auto iv = new_id.find(v);
    if (iu != new_id.end() && iv != new_id.end()) {
      edges.emplace_back(iu->second, iv->second);
    }
  }
  return Graph(static_cast<int64_t>(nodes.size()), std::move(edges));
}

GraphStatistics ComputeGraphStatistics(const Graph& g) {
  GraphStatistics s;
  s.num_nodes = g.num_nodes();
  s.num_edges = g.num_edges();
  s.num_components = ConnectedComponents(g).num_components;
  auto degrees = g.Degrees();
  for (int64_t d : degrees) {
    s.max_degree = std::max(s.max_degree, d);
    if (d == 0) ++s.isolated_nodes;
  }
  s.average_degree =
      2.0 * static_cast<double>(s.num_edges) /
      static_cast<double>(std::max<int64_t>(1, s.num_nodes));
  return s;
}

}  // namespace desalign::graph
