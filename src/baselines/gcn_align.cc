#include "baselines/gcn_align.h"

#include "align/loss.h"
#include "align/metrics.h"
#include "common/check.h"
#include "nn/optimizer.h"
#include "tensor/init.h"
#include "tensor/ops.h"

namespace desalign::baselines {

namespace ops = desalign::tensor;
using tensor::Tensor;
using tensor::TensorPtr;

GcnAlignModel::GcnAlignModel(GcnAlignConfig config)
    : config_(std::move(config)), rng_(config_.seed) {}

GcnAlignConfig AttrGnnConfig(uint64_t seed) {
  GcnAlignConfig cfg;
  cfg.name = "AttrGNN";
  cfg.seed = seed;
  cfg.attribute_input = true;
  return cfg;
}

TensorPtr GcnAlignModel::Embed() {
  // Structure channel: H = Ã·relu(Ã·X·W1)·W2 where X is either a free
  // embedding table (GCN-align) or projected attribute features (AttrGNN).
  auto x = config_.attribute_input ? fc_input_->Forward(features_.text)
                                   : entity_embeddings_;
  auto h = ops::SpMM(norm_adj_, x);
  h = ops::Relu(gcn_w1_->Forward(h));
  h = gcn_w2_->Forward(ops::SpMM(norm_adj_, h));
  // Attribute channel.
  auto a = fc_attr_->Forward(features_.text);
  return ops::ConcatCols({h, a});
}

void GcnAlignModel::Fit(const kg::AlignedKgPair& data) {
  if (!prepared_) {
    prepared_ = true;
    features_ = align::BuildCombinedFeatures(
        data, align::MissingFeaturePolicy::kZeroFill, rng_);
    auto graph_union = graph::Graph::DisjointUnion(data.source.BuildGraph(),
                                                   data.target.BuildGraph());
    norm_adj_ = graph_union.NormalizedAdjacency();
    if (config_.attribute_input) {
      fc_input_ = std::make_unique<nn::Linear>(features_.text->cols(),
                                               config_.dim, rng_);
    } else {
      entity_embeddings_ = Tensor::Create(features_.total(), config_.dim,
                                          /*requires_grad=*/true);
      tensor::GlorotUniform(*entity_embeddings_, rng_);
    }
    gcn_w1_ = std::make_unique<nn::Linear>(config_.dim, config_.dim, rng_);
    gcn_w2_ = std::make_unique<nn::Linear>(config_.dim, config_.dim, rng_);
    fc_attr_ =
        std::make_unique<nn::Linear>(features_.text->cols(), config_.dim,
                                     rng_);
  }
  std::vector<int64_t> src_rows;
  std::vector<int64_t> tgt_rows;
  for (const auto& p : data.train_pairs) {
    src_rows.push_back(p.source);
    tgt_rows.push_back(features_.num_source + p.target);
  }
  std::vector<TensorPtr> params;
  if (entity_embeddings_) params.push_back(entity_embeddings_);
  for (auto* m : std::initializer_list<nn::Module*>{
           fc_input_.get(), gcn_w1_.get(), gcn_w2_.get(), fc_attr_.get()}) {
    if (m == nullptr) continue;
    auto sub = m->Parameters();
    params.insert(params.end(), sub.begin(), sub.end());
  }
  nn::AdamWConfig opt_config;
  opt_config.lr = config_.lr;
  opt_config.weight_decay = config_.weight_decay;
  nn::AdamW optimizer(params, opt_config);
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    auto emb = Embed();
    auto loss = align::ContrastiveAlignmentLoss(
        ops::GatherRows(emb, src_rows), ops::GatherRows(emb, tgt_rows),
        config_.tau);
    optimizer.ZeroGrad();
    loss->Backward();
    nn::ClipGradNorm(params, config_.grad_clip);
    optimizer.Step();
  }
}

TensorPtr GcnAlignModel::DecodeSimilarity(const kg::AlignedKgPair& data) {
  DESALIGN_CHECK_MSG(prepared_, "DecodeSimilarity requires a fitted model");
  tensor::NoGradGuard no_grad;
  auto emb = Embed();
  std::vector<int64_t> src_rows;
  std::vector<int64_t> tgt_rows;
  for (const auto& p : data.test_pairs) {
    src_rows.push_back(p.source);
    tgt_rows.push_back(features_.num_source + p.target);
  }
  return align::CosineSimilarityMatrix(ops::GatherRows(emb, src_rows),
                                       ops::GatherRows(emb, tgt_rows));
}

}  // namespace desalign::baselines
