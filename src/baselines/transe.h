#ifndef DESALIGN_BASELINES_TRANSE_H_
#define DESALIGN_BASELINES_TRANSE_H_

#include <string>
#include <vector>

#include "align/method.h"
#include "common/rng.h"
#include "tensor/tensor.h"

namespace desalign::baselines {

/// TransE [Bordes et al. 2013] adapted to entity alignment by parameter
/// sharing: seed-aligned entities share one embedding row (the classic
/// MTransE/IPTransE-style bridge), all triples of both KGs train the
/// translation objective h + r ≈ t with margin ranking loss and uniform
/// negative sampling. Structure-only: the weakest family in the paper's
/// Table IV, included as the classic reference point.
struct TranseConfig {
  std::string name = "TransE";
  uint64_t seed = 7;
  int64_t dim = 32;
  int epochs = 40;
  int batch_size = 512;
  float lr = 1e-2f;
  float margin = 1.0f;
  /// > 0 turns the model into IPTransE [Zhu et al. 2017]: after the base
  /// fit, mutual-nearest test pairs above `min_similarity` are softly
  /// merged (their embedding rows averaged) and training continues for
  /// `epochs / 2` more epochs per round.
  int iterative_rounds = 0;
  float min_similarity = 0.5f;
};

/// IPTransE preset: TransE + iterative soft parameter sharing.
TranseConfig IpTranseConfig(uint64_t seed = 7);

class TranseModel : public align::AlignmentMethod {
 public:
  explicit TranseModel(TranseConfig config);

  std::string name() const override { return config_.name; }
  void Fit(const kg::AlignedKgPair& data) override;
  tensor::TensorPtr DecodeSimilarity(const kg::AlignedKgPair& data) override;

 private:
  /// One pass of margin-ranking training over the cached triples.
  void TrainEpochs(int epochs);

  TranseConfig config_;
  common::Rng rng_;
  bool prepared_ = false;
  int64_t num_source_ = 0;
  int64_t num_rows_ = 0;                ///< distinct embedding rows
  std::vector<int64_t> row_of_;         ///< combined entity id -> row
  std::vector<kg::Triple> triples_;     ///< union triples, row-indexed
  tensor::TensorPtr entity_embeddings_; ///< num_rows x dim
  tensor::TensorPtr relation_embeddings_;
};

}  // namespace desalign::baselines

#endif  // DESALIGN_BASELINES_TRANSE_H_
