#ifndef DESALIGN_BASELINES_GCN_ALIGN_H_
#define DESALIGN_BASELINES_GCN_ALIGN_H_

#include <memory>
#include <optional>
#include <string>

#include "align/features.h"
#include "align/method.h"
#include "common/rng.h"
#include "graph/graph.h"
#include "nn/layers.h"
#include "tensor/sparse.h"

namespace desalign::baselines {

/// GCN-Align [Wang et al. 2018]: a structure channel (two-layer GCN over
/// the normalized adjacency on learnable entity embeddings) concatenated
/// with an attribute channel (linear projection of the attribute bag),
/// trained contrastively on the seed alignments. No visual modality, no
/// attention — a representative pre-multi-modal GNN baseline.
struct GcnAlignConfig {
  std::string name = "GCN-align";
  uint64_t seed = 7;
  int64_t dim = 32;
  int epochs = 60;
  float lr = 5e-3f;
  float weight_decay = 1e-4f;
  float tau = 0.1f;
  float grad_clip = 5.0f;
  /// AttrGNN [Liu et al. 2020] mode: the GCN consumes projected attribute
  /// features instead of free entity embeddings, so attribute values
  /// propagate through the graph channels.
  bool attribute_input = false;
};

/// AttrGNN preset (attribute-valued GNN channels).
GcnAlignConfig AttrGnnConfig(uint64_t seed = 7);

class GcnAlignModel : public align::AlignmentMethod {
 public:
  explicit GcnAlignModel(GcnAlignConfig config);

  std::string name() const override { return config_.name; }
  void Fit(const kg::AlignedKgPair& data) override;
  tensor::TensorPtr DecodeSimilarity(const kg::AlignedKgPair& data) override;

 private:
  tensor::TensorPtr Embed();

  GcnAlignConfig config_;
  common::Rng rng_;
  bool prepared_ = false;
  align::CombinedFeatures features_;
  tensor::CsrMatrixPtr norm_adj_;
  tensor::TensorPtr entity_embeddings_;   // null in attribute_input mode
  std::unique_ptr<nn::Linear> fc_input_;  // attribute_input mode only
  std::unique_ptr<nn::Linear> gcn_w1_;
  std::unique_ptr<nn::Linear> gcn_w2_;
  std::unique_ptr<nn::Linear> fc_attr_;
};

}  // namespace desalign::baselines

#endif  // DESALIGN_BASELINES_GCN_ALIGN_H_
