#include "baselines/poe.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "common/check.h"
#include "tensor/tensor.h"

namespace desalign::baselines {

using tensor::Tensor;
using tensor::TensorPtr;

namespace {

constexpr int kNumExperts = 4;  // relation, text, visual, structure

float RowDotProduct(const Tensor& m, int64_t a, int64_t b) {
  const int64_t c = m.cols();
  float acc = 0.0f;
  for (int64_t j = 0; j < c; ++j) acc += m.At(a, j) * m.At(b, j);
  return acc;
}

float Sigmoid(float x) { return 1.0f / (1.0f + std::exp(-x)); }

}  // namespace

PoeModel::PoeModel(PoeConfig config)
    : config_(std::move(config)), rng_(config_.seed) {}

std::vector<float> PoeModel::ExpertScores(int64_t source,
                                          int64_t target) const {
  const int64_t t_row = features_.num_source + target;
  std::vector<float> scores(kNumExperts);
  // Rows are l2-normalized where present, so the dot product is cosine;
  // missing rows are zero and contribute a neutral 0.
  scores[0] = RowDotProduct(*features_.relation, source, t_row);
  scores[1] = RowDotProduct(*features_.text, source, t_row);
  scores[2] = RowDotProduct(*features_.visual, source, t_row);
  // Structure expert: degree similarity — intentionally coarse (PoE has no
  // graph representation learning).
  scores[3] = 1.0f / (1.0f + static_cast<float>(std::abs(
                                 source_degree_[source] -
                                 target_degree_[target])));
  return scores;
}

void PoeModel::Fit(const kg::AlignedKgPair& data) {
  const int64_t ns = data.source.num_entities;
  const int64_t nt = data.target.num_entities;
  if (!prepared_) {
    prepared_ = true;
    // PoE does not interpolate missing features; zero rows score 0.
    features_ = align::BuildCombinedFeatures(
        data, align::MissingFeaturePolicy::kZeroFill, rng_);
    source_degree_.assign(ns, 0);
    target_degree_.assign(nt, 0);
    for (const auto& t : data.source.triples) {
      ++source_degree_[t.head];
      ++source_degree_[t.tail];
    }
    for (const auto& t : data.target.triples) {
      ++target_degree_[t.head];
      ++target_degree_[t.tail];
    }
    weights_.assign(kNumExperts, 1.0f);
    bias_ = 0.0f;
  }

  // Logistic regression: seeds are positives, random cross pairs negatives.
  for (int it = 0; it < config_.fit_iterations; ++it) {
    for (const auto& p : data.train_pairs) {
      auto update = [&](int64_t src, int64_t tgt, float label) {
        const auto f = ExpertScores(src, tgt);
        float z = bias_;
        for (int e = 0; e < kNumExperts; ++e) z += weights_[e] * f[e];
        const float err = label - Sigmoid(z);
        for (int e = 0; e < kNumExperts; ++e) {
          weights_[e] += config_.lr * err * f[e] /
                         static_cast<float>(data.train_pairs.size());
        }
        bias_ += config_.lr * err /
                 static_cast<float>(data.train_pairs.size());
      };
      update(p.source, p.target, 1.0f);
      for (int k = 0; k < config_.negatives_per_pair; ++k) {
        update(p.source, rng_.UniformInt(nt), 0.0f);
      }
    }
  }
}

TensorPtr PoeModel::DecodeSimilarity(const kg::AlignedKgPair& data) {
  DESALIGN_CHECK_MSG(prepared_, "DecodeSimilarity requires a fitted model");
  const int64_t n = static_cast<int64_t>(data.test_pairs.size());
  auto sim = Tensor::Create(n, n);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      const auto f = ExpertScores(data.test_pairs[i].source,
                                  data.test_pairs[j].target);
      float z = bias_;
      for (int e = 0; e < kNumExperts; ++e) z += weights_[e] * f[e];
      sim->At(i, j) = z;
    }
  }
  return sim;
}

}  // namespace desalign::baselines
