#include "baselines/transe.h"

#include <algorithm>
#include <numeric>

#include "align/iterative.h"
#include "align/metrics.h"
#include "common/check.h"
#include "nn/optimizer.h"
#include "tensor/init.h"
#include "tensor/ops.h"

namespace desalign::baselines {

namespace ops = desalign::tensor;
using tensor::Tensor;
using tensor::TensorPtr;

TranseModel::TranseModel(TranseConfig config)
    : config_(std::move(config)), rng_(config_.seed) {}

void TranseModel::Fit(const kg::AlignedKgPair& data) {
  const int64_t ns = data.source.num_entities;
  const int64_t nt = data.target.num_entities;
  if (!prepared_) {
    prepared_ = true;
    num_source_ = ns;
    // Seed pairs share one embedding row.
    row_of_.resize(ns + nt);
    std::iota(row_of_.begin(), row_of_.end(), 0);
    for (const auto& p : data.train_pairs) {
      row_of_[ns + p.target] = p.source;
    }
    // Compact row ids.
    std::vector<int64_t> remap(ns + nt, -1);
    num_rows_ = 0;
    for (int64_t i = 0; i < ns + nt; ++i) {
      int64_t canonical = row_of_[i];
      if (remap[canonical] < 0) remap[canonical] = num_rows_++;
      row_of_[i] = remap[canonical];
    }
    const int64_t num_rel = std::max(data.source.num_relations,
                                     data.target.num_relations);
    entity_embeddings_ =
        Tensor::Create(num_rows_, config_.dim, /*requires_grad=*/true);
    relation_embeddings_ =
        Tensor::Create(num_rel, config_.dim, /*requires_grad=*/true);
    tensor::GlorotUniform(*entity_embeddings_, rng_);
    tensor::GlorotUniform(*relation_embeddings_, rng_);
    triples_.clear();
    triples_.reserve(data.source.triples.size() +
                     data.target.triples.size());
    for (const auto& t : data.source.triples) {
      triples_.push_back({row_of_[t.head], t.relation, row_of_[t.tail]});
    }
    for (const auto& t : data.target.triples) {
      triples_.push_back(
          {row_of_[ns + t.head], t.relation, row_of_[ns + t.tail]});
    }
  }
  DESALIGN_CHECK(!triples_.empty());
  TrainEpochs(config_.epochs);

  // IPTransE: iterative soft parameter sharing over pseudo alignments.
  for (int round = 0; round < config_.iterative_rounds; ++round) {
    auto sim = DecodeSimilarity(data);
    auto pseudo =
        align::MutualNearestPairs(*sim, data, config_.min_similarity);
    for (const auto& p : pseudo) {
      const int64_t r1 = row_of_[p.source];
      const int64_t r2 = row_of_[num_source_ + p.target];
      if (r1 == r2) continue;
      for (int64_t j = 0; j < config_.dim; ++j) {
        const float avg = 0.5f * (entity_embeddings_->At(r1, j) +
                                  entity_embeddings_->At(r2, j));
        entity_embeddings_->At(r1, j) = avg;
        entity_embeddings_->At(r2, j) = avg;
      }
    }
    TrainEpochs(config_.epochs / 2);
  }
}

TranseConfig IpTranseConfig(uint64_t seed) {
  TranseConfig cfg;
  cfg.name = "IPTransE";
  cfg.seed = seed;
  cfg.iterative_rounds = 2;
  return cfg;
}

void TranseModel::TrainEpochs(int epochs) {
  std::vector<TensorPtr> params = {entity_embeddings_, relation_embeddings_};
  nn::AdamWConfig opt_config;
  opt_config.lr = config_.lr;
  opt_config.weight_decay = 0.0f;
  nn::AdamW optimizer(params, opt_config);

  std::vector<int64_t> order(triples_.size());
  std::iota(order.begin(), order.end(), 0);
  for (int epoch = 0; epoch < epochs; ++epoch) {
    rng_.Shuffle(order);
    for (size_t start = 0; start < order.size();
         start += static_cast<size_t>(config_.batch_size)) {
      const size_t end = std::min(order.size(),
                                  start + static_cast<size_t>(
                                              config_.batch_size));
      std::vector<int64_t> h, r, t, h_neg, t_neg;
      for (size_t k = start; k < end; ++k) {
        const auto& triple = triples_[order[k]];
        h.push_back(triple.head);
        r.push_back(triple.relation);
        t.push_back(triple.tail);
        // Corrupt head or tail uniformly.
        if (rng_.Bernoulli(0.5)) {
          h_neg.push_back(rng_.UniformInt(num_rows_));
          t_neg.push_back(triple.tail);
        } else {
          h_neg.push_back(triple.head);
          t_neg.push_back(rng_.UniformInt(num_rows_));
        }
      }
      auto he = ops::GatherRows(entity_embeddings_, h);
      auto re = ops::GatherRows(relation_embeddings_, r);
      auto te = ops::GatherRows(entity_embeddings_, t);
      auto hne = ops::GatherRows(entity_embeddings_, h_neg);
      auto tne = ops::GatherRows(entity_embeddings_, t_neg);
      auto d_pos = ops::RowSum(ops::Square(ops::Sub(ops::Add(he, re), te)));
      auto d_neg =
          ops::RowSum(ops::Square(ops::Sub(ops::Add(hne, re), tne)));
      auto loss = ops::Mean(ops::Relu(
          ops::AddScalar(ops::Sub(d_pos, d_neg), config_.margin)));
      optimizer.ZeroGrad();
      loss->Backward();
      optimizer.Step();
    }
  }
}

TensorPtr TranseModel::DecodeSimilarity(const kg::AlignedKgPair& data) {
  DESALIGN_CHECK_MSG(prepared_, "DecodeSimilarity requires a fitted model");
  tensor::NoGradGuard no_grad;
  std::vector<int64_t> src_rows;
  std::vector<int64_t> tgt_rows;
  for (const auto& p : data.test_pairs) {
    src_rows.push_back(row_of_[p.source]);
    tgt_rows.push_back(row_of_[num_source_ + p.target]);
  }
  return align::CosineSimilarityMatrix(
      ops::GatherRows(entity_embeddings_, src_rows),
      ops::GatherRows(entity_embeddings_, tgt_rows));
}

}  // namespace desalign::baselines
