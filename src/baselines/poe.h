#ifndef DESALIGN_BASELINES_POE_H_
#define DESALIGN_BASELINES_POE_H_

#include <string>
#include <vector>

#include "align/features.h"
#include "align/method.h"
#include "common/rng.h"
#include "tensor/tensor.h"

namespace desalign::baselines {

/// PoE [Liu et al. 2019, "MMKG"] (simplified): a product-of-experts scorer.
/// Each modality contributes an expert similarity computed directly on the
/// raw input features (bag-of-relations, bag-of-attributes, visual
/// encoder outputs); a deliberately weak structure expert compares node
/// degrees. The per-expert log-weights are fitted on the seed alignments
/// by logistic regression against sampled negatives — no representation
/// learning, which is why PoE trails the embedding families in the paper's
/// Table IV.
struct PoeConfig {
  std::string name = "PoE";
  uint64_t seed = 7;
  int fit_iterations = 200;
  float lr = 0.5f;
  int negatives_per_pair = 4;
};

class PoeModel : public align::AlignmentMethod {
 public:
  explicit PoeModel(PoeConfig config);

  std::string name() const override { return config_.name; }
  void Fit(const kg::AlignedKgPair& data) override;
  tensor::TensorPtr DecodeSimilarity(const kg::AlignedKgPair& data) override;

  /// Learned expert weights (relation, text, visual, structure), softplus
  /// domain. Exposed for inspection/tests.
  const std::vector<float>& expert_weights() const { return weights_; }

 private:
  /// Expert similarity vector for a (source, target) entity pair.
  std::vector<float> ExpertScores(int64_t source, int64_t target) const;

  PoeConfig config_;
  common::Rng rng_;
  bool prepared_ = false;
  align::CombinedFeatures features_;
  std::vector<int64_t> source_degree_;
  std::vector<int64_t> target_degree_;
  std::vector<float> weights_;
  float bias_ = 0.0f;
};

}  // namespace desalign::baselines

#endif  // DESALIGN_BASELINES_POE_H_
