#include "baselines/fusion_baselines.h"

namespace desalign::baselines {

using align::FusionAlignModel;
using align::FusionModelConfig;
using align::MissingFeaturePolicy;

FusionModelConfig EvaConfig(uint64_t seed) {
  FusionModelConfig cfg;
  cfg.name = "EVA";
  cfg.seed = seed;
  cfg.use_cross_modal_attention = false;
  cfg.use_intra_modal_losses = false;
  cfg.use_min_confidence = false;
  cfg.missing_policy = MissingFeaturePolicy::kRandomFromDistribution;
  return cfg;
}

FusionModelConfig McleaConfig(uint64_t seed) {
  FusionModelConfig cfg = EvaConfig(seed);
  cfg.name = "MCLEA";
  cfg.use_intra_modal_losses = true;
  return cfg;
}

FusionModelConfig MeaformerConfig(uint64_t seed) {
  FusionModelConfig cfg;
  cfg.name = "MEAformer";
  cfg.seed = seed;
  cfg.use_cross_modal_attention = true;
  cfg.use_intra_modal_losses = true;
  cfg.use_min_confidence = false;
  cfg.missing_policy = MissingFeaturePolicy::kRandomFromDistribution;
  return cfg;
}

FusionModelConfig MmeaConfig(uint64_t seed) {
  FusionModelConfig cfg = EvaConfig(seed);
  cfg.name = "MMEA";
  cfg.task_loss = align::TaskLossKind::kMarginRanking;
  return cfg;
}

std::unique_ptr<FusionAlignModel> MakeEva(uint64_t seed) {
  return std::make_unique<FusionAlignModel>(EvaConfig(seed));
}

std::unique_ptr<FusionAlignModel> MakeMmea(uint64_t seed) {
  return std::make_unique<FusionAlignModel>(MmeaConfig(seed));
}

std::unique_ptr<FusionAlignModel> MakeMclea(uint64_t seed) {
  return std::make_unique<FusionAlignModel>(McleaConfig(seed));
}

std::unique_ptr<FusionAlignModel> MakeMeaformer(uint64_t seed) {
  return std::make_unique<FusionAlignModel>(MeaformerConfig(seed));
}

}  // namespace desalign::baselines
