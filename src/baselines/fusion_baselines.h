#ifndef DESALIGN_BASELINES_FUSION_BASELINES_H_
#define DESALIGN_BASELINES_FUSION_BASELINES_H_

#include <cstdint>
#include <memory>

#include "align/fusion_model.h"

namespace desalign::baselines {

/// EVA [Liu et al. 2021]: modality embeddings fused by global learnable
/// weights, single contrastive task objective, missing features drawn from
/// a predefined distribution.
align::FusionModelConfig EvaConfig(uint64_t seed = 7);

/// MCLEA [Lin et al. 2022]: EVA-style fusion plus intra-modal contrastive
/// objectives for every modality.
align::FusionModelConfig McleaConfig(uint64_t seed = 7);

/// MEAformer [Chen et al. 2023] (simplified): transformer cross-modal
/// attention fusion with meta-modality weighting and intra-modal
/// objectives — the strongest published baseline; lacks DESAlign's
/// Dirichlet-energy training constraints, min-confidence weighting and
/// semantic propagation.
align::FusionModelConfig MeaformerConfig(uint64_t seed = 7);

/// MMEA [Chen et al. 2020] (simplified): per-modality encoders fused by
/// global weights, trained with the translation-era margin ranking
/// objective instead of contrastive learning.
align::FusionModelConfig MmeaConfig(uint64_t seed = 7);

std::unique_ptr<align::FusionAlignModel> MakeEva(uint64_t seed = 7);
std::unique_ptr<align::FusionAlignModel> MakeMmea(uint64_t seed = 7);
std::unique_ptr<align::FusionAlignModel> MakeMclea(uint64_t seed = 7);
std::unique_ptr<align::FusionAlignModel> MakeMeaformer(uint64_t seed = 7);

}  // namespace desalign::baselines

#endif  // DESALIGN_BASELINES_FUSION_BASELINES_H_
