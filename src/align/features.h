#ifndef DESALIGN_ALIGN_FEATURES_H_
#define DESALIGN_ALIGN_FEATURES_H_

#include <vector>

#include "common/rng.h"
#include "kg/mmkg.h"
#include "tensor/tensor.h"

namespace desalign::align {

using tensor::TensorPtr;

/// How a model fills feature rows of entities whose modality is absent.
enum class MissingFeaturePolicy {
  /// Leave the row at zero. DESAlign's choice: the gap is later closed by
  /// semantic propagation instead of synthetic noise.
  kZeroFill,
  /// Sample from a Gaussian fit to the present rows (column-wise moments).
  /// What EVA/MCLEA/MEAformer do — the "predefined distribution"
  /// interpolation the paper identifies as a source of modality noise.
  kRandomFromDistribution,
};

/// Input features of both KGs stacked into one entity index space:
/// rows [0, num_source) are source entities, rows [num_source,
/// num_source+num_target) are target entities (target ids shifted).
struct CombinedFeatures {
  int64_t num_source = 0;
  int64_t num_target = 0;
  TensorPtr relation;  ///< N x d_r, row-l2-normalized where present
  TensorPtr text;      ///< N x d_t
  TensorPtr visual;    ///< N x d_v
  std::vector<bool> relation_present;
  std::vector<bool> text_present;
  std::vector<bool> visual_present;

  int64_t total() const { return num_source + num_target; }

  /// Entities with every modality present — the semantically consistent
  /// set E_c of the paper; the complement is E_o.
  std::vector<bool> AllPresent() const;

  /// Presence mask for a single modality (kGraph is always present).
  const std::vector<bool>& PresentFor(kg::Modality m) const;
};

/// Stacks and normalizes the two KGs' modal features and applies the
/// missing-feature policy. Deterministic given `rng`'s state.
CombinedFeatures BuildCombinedFeatures(const kg::AlignedKgPair& data,
                                       MissingFeaturePolicy policy,
                                       common::Rng& rng);

}  // namespace desalign::align

#endif  // DESALIGN_ALIGN_FEATURES_H_
