#include "align/fusion_model.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "align/loss.h"
#include "common/check.h"
#include "common/fault_injection.h"
#include "common/stopwatch.h"
#include "graph/dirichlet.h"
#include "nn/checkpoint.h"
#include "nn/serialize.h"
#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/init.h"
#include "tensor/ops.h"

namespace desalign::align {

namespace ops = desalign::tensor;
using kg::Modality;
using tensor::Tensor;
using tensor::TensorPtr;

namespace {

constexpr int kM = kg::kNumModalities;

int Index(Modality m) { return static_cast<int>(m); }

}  // namespace

FusionAlignModel::FusionAlignModel(FusionModelConfig config)
    : config_(std::move(config)), rng_(config_.seed) {}

std::vector<Modality> FusionAlignModel::ActiveModalities() const {
  std::vector<Modality> active;
  for (Modality m : kg::AllModalities()) {
    if (config_.use_modality[Index(m)]) active.push_back(m);
  }
  DESALIGN_CHECK_MSG(!active.empty(), "all modalities disabled");
  return active;
}

void FusionAlignModel::Prepare(const kg::AlignedKgPair& data) {
  if (prepared_) return;
  prepared_ = true;
  features_ = BuildCombinedFeatures(data, config_.missing_policy, rng_);
  graph_src_.emplace(data.source.BuildGraph());
  graph_tgt_.emplace(data.target.BuildGraph());
  graph_union_.emplace(graph::Graph::DisjointUnion(*graph_src_, *graph_tgt_));
  mp_edges_ = graph_union_->MessagePassingEdges(/*add_self_loops=*/true);
  norm_adj_union_ = graph_union_->NormalizedAdjacency();
  norm_adj_src_ = graph_src_->NormalizedAdjacency();
  norm_adj_tgt_ = graph_tgt_->NormalizedAdjacency();

  const int64_t n = features_.total();
  const int64_t d = config_.dim;
  entity_embeddings_ = Tensor::Create(n, d, /*requires_grad=*/true);
  tensor::GlorotUniform(*entity_embeddings_, rng_);
  gat_ = std::make_unique<nn::GatEncoder>(d, config_.gat_heads,
                                          config_.gat_layers, rng_);
  fc_relation_ =
      std::make_unique<nn::Linear>(features_.relation->cols(), d, rng_);
  fc_text_ = std::make_unique<nn::Linear>(features_.text->cols(), d, rng_);
  fc_visual_ =
      std::make_unique<nn::Linear>(features_.visual->cols(), d, rng_);
  if (config_.use_cross_modal_attention) {
    caw_ = std::make_unique<nn::CrossModalAttention>(
        d, static_cast<int64_t>(ActiveModalities().size()),
        config_.attn_heads, rng_);
  } else {
    global_modality_logits_ = Tensor::Create(1, kM, /*requires_grad=*/true);
  }
}

std::vector<TensorPtr> FusionAlignModel::CollectParameters() const {
  std::vector<TensorPtr> params;
  params.push_back(entity_embeddings_);
  auto extend = [&params](const std::vector<TensorPtr>& more) {
    params.insert(params.end(), more.begin(), more.end());
  };
  if (config_.use_modality[Index(Modality::kGraph)]) {
    extend(gat_->Parameters());
  }
  if (config_.use_modality[Index(Modality::kRelation)]) {
    extend(fc_relation_->Parameters());
  }
  if (config_.use_modality[Index(Modality::kText)]) {
    extend(fc_text_->Parameters());
  }
  if (config_.use_modality[Index(Modality::kVisual)]) {
    extend(fc_visual_->Parameters());
  }
  if (caw_) extend(caw_->Parameters());
  if (global_modality_logits_) params.push_back(global_modality_logits_);
  return params;
}

int64_t FusionAlignModel::NumParameters() const {
  int64_t total = 0;
  for (const auto& p : CollectParameters()) total += p->size();
  return total;
}

TensorPtr FusionAlignModel::FusedEmbeddings() {
  DESALIGN_CHECK_MSG(prepared_, "FusedEmbeddings requires a fitted model");
  tensor::NoGradGuard no_grad;
  auto state = Forward();
  return state.h_ori->Detach();
}

int64_t FusionAlignModel::num_source_entities() const {
  DESALIGN_CHECK_MSG(prepared_, "num_source_entities requires Fit/Warmup");
  return features_.num_source;
}

FusionAlignModel::ForwardState FusionAlignModel::Forward() {
  DESALIGN_CHECK_MSG(prepared_, "Fit must run before Forward");
  ForwardState state;
  state.modal_raw.assign(kM, nullptr);
  state.modal_mid.assign(kM, nullptr);
  state.modal_fused.assign(kM, nullptr);
  const int64_t n = features_.total();

  // ---- Per-modality encoders (Eq. 7–8) ----
  if (config_.use_modality[Index(Modality::kGraph)]) {
    state.modal_raw[Index(Modality::kGraph)] =
        gat_->Forward(entity_embeddings_, mp_edges_, n);
  }
  if (config_.use_modality[Index(Modality::kRelation)]) {
    state.modal_raw[Index(Modality::kRelation)] =
        fc_relation_->Forward(features_.relation);
  }
  if (config_.use_modality[Index(Modality::kText)]) {
    state.modal_raw[Index(Modality::kText)] =
        fc_text_->Forward(features_.text);
  }
  if (config_.use_modality[Index(Modality::kVisual)]) {
    state.modal_raw[Index(Modality::kVisual)] =
        fc_visual_->Forward(features_.visual);
  }

  const auto active = ActiveModalities();
  std::vector<TensorPtr> active_raw;
  active_raw.reserve(active.size());
  for (Modality m : active) active_raw.push_back(state.modal_raw[Index(m)]);

  if (config_.use_cross_modal_attention) {
    // ---- CAW fusion (Eq. 9–13) ----
    auto caw_out = caw_->Forward(active_raw);
    state.confidence = caw_out.confidence;  // n x |active|
    std::vector<TensorPtr> ori_parts;
    std::vector<TensorPtr> mid_parts;
    std::vector<TensorPtr> fus_parts;
    for (size_t k = 0; k < active.size(); ++k) {
      auto w = ops::SliceCols(state.confidence, static_cast<int64_t>(k), 1);
      state.modal_mid[Index(active[k])] = caw_out.fused_mid[k];
      state.modal_fused[Index(active[k])] = caw_out.fused[k];
      ori_parts.push_back(ops::MulColVector(active_raw[k], w));
      mid_parts.push_back(ops::MulColVector(caw_out.fused_mid[k], w));
      fus_parts.push_back(ops::MulColVector(caw_out.fused[k], w));
    }
    state.h_ori = ops::ConcatCols(ori_parts);  // X^(0)  (Eq. 14)
    state.h_mid = ops::ConcatCols(mid_parts);  // X^(k−1)
    state.h_fus = ops::ConcatCols(fus_parts);  // X^(k)
  } else {
    // ---- EVA-style fusion: global learnable modality weights ----
    auto weights = ops::RowSoftmax(global_modality_logits_);  // 1 x M
    auto ones = Tensor::Full(n, 1, 1.0f);
    std::vector<TensorPtr> parts;
    for (size_t k = 0; k < active.size(); ++k) {
      auto w_scalar = ops::SliceCols(weights, Index(active[k]), 1);  // 1x1
      auto w_col = ops::MatMul(ones, w_scalar);                      // n x 1
      parts.push_back(ops::MulColVector(active_raw[k], w_col));
    }
    state.h_ori = ops::ConcatCols(parts);
  }
  return state;
}

TensorPtr FusionAlignModel::PairConfidence(
    const ForwardState& state, int modality,
    const std::vector<int64_t>& src_rows,
    const std::vector<int64_t>& tgt_rows) const {
  if (!config_.use_min_confidence || !state.confidence) return nullptr;
  // Map the modality index into the active-modality column of w̃.
  const auto active = ActiveModalities();
  int64_t col = -1;
  for (size_t k = 0; k < active.size(); ++k) {
    if (Index(active[k]) == modality) col = static_cast<int64_t>(k);
  }
  if (col < 0) return nullptr;
  const int64_t b = static_cast<int64_t>(src_rows.size());
  auto w = Tensor::Create(b, 1);
  const auto& conf = state.confidence;
  const int64_t mcols = conf->cols();
  for (int64_t i = 0; i < b; ++i) {
    const float ws = conf->data()[src_rows[i] * mcols + col];
    const float wt = conf->data()[tgt_rows[i] * mcols + col];
    // φ_m = Min(w̃_src, w̃_tgt), scaled by |M| so a uniform confidence
    // profile yields weight 1.
    w->data()[i] = std::min(ws, wt) * static_cast<float>(mcols);
  }
  return w;  // constant: confidence gradients flow through the task losses
}

TensorPtr FusionAlignModel::ComputeLoss(
    const ForwardState& state, const std::vector<int64_t>& src_rows,
    const std::vector<int64_t>& tgt_rows) {
  TensorPtr total;
  auto accumulate = [&total](const TensorPtr& term) {
    if (!term) return;
    total = total ? ops::Add(total, term) : term;
  };

  // Rotated targets serve as in-batch negatives for the margin objective.
  std::vector<int64_t> neg_rows(tgt_rows.size());
  for (size_t i = 0; i < tgt_rows.size(); ++i) {
    neg_rows[i] = tgt_rows[(i + 1) % tgt_rows.size()];
  }
  auto pair_loss = [&](const TensorPtr& emb, const TensorPtr& weights) {
    auto z1 = ops::GatherRows(emb, src_rows);
    auto z2 = ops::GatherRows(emb, tgt_rows);
    if (config_.task_loss == TaskLossKind::kMarginRanking) {
      return MarginAlignmentLoss(z1, z2, ops::GatherRows(emb, neg_rows),
                                 config_.margin);
    }
    return ContrastiveAlignmentLoss(z1, z2, config_.tau, weights);
  };

  // L_task^(0) and L_task^(k) (φ = 1 for the joint objectives).
  {
    obs::TraceSpan span("task");
    if (config_.use_initial_task_loss || !state.h_fus) {
      accumulate(pair_loss(state.h_ori, nullptr));
    }
    if (state.h_fus) {
      accumulate(pair_loss(state.h_fus, nullptr));
    }
  }

  // Intra-modal objectives Σ_m (L_m^(k−1) + L_m^(k)).
  if (config_.use_intra_modal_losses) {
    obs::TraceSpan span("intra_modal");
    for (Modality m : ActiveModalities()) {
      const int mi = Index(m);
      auto phi = PairConfidence(state, mi, src_rows, tgt_rows);
      if (state.modal_fused[mi]) {
        accumulate(pair_loss(state.modal_fused[mi], phi));
        if (config_.use_mid_layer_losses && state.modal_mid[mi]) {
          accumulate(pair_loss(state.modal_mid[mi], phi));
        }
      } else {
        // EVA/MCLEA family: intra-modal loss on the raw modality embedding.
        accumulate(pair_loss(state.modal_raw[mi], phi));
      }
    }
  }

  {
    obs::TraceSpan span("extra");
    accumulate(ExtraLoss(state));
  }
  DESALIGN_CHECK(total != nullptr);
  return total;
}

void FusionAlignModel::RunEpochs(const std::vector<kg::AlignmentPair>& seeds,
                                 int epochs) {
  DESALIGN_CHECK(!seeds.empty());
  std::vector<int64_t> src_rows;
  std::vector<int64_t> tgt_rows;
  src_rows.reserve(seeds.size());
  tgt_rows.reserve(seeds.size());
  for (const auto& p : seeds) {
    src_rows.push_back(p.source);
    tgt_rows.push_back(features_.num_source + p.target);
  }

  auto params = CollectParameters();
  nn::AdamWConfig opt_config;
  opt_config.lr = config_.lr;
  opt_config.weight_decay = config_.weight_decay;
  nn::AdamW optimizer(params, opt_config);
  nn::CosineWarmupSchedule schedule(config_.lr, epochs,
                                    config_.warmup_fraction);

  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  obs::Counter& epoch_counter = metrics.GetCounter("train.epochs");
  obs::Counter& nonfinite_counter = metrics.GetCounter("train.nonfinite_skips");
  obs::Counter& rollback_counter = metrics.GetCounter("train.rollbacks");
  obs::Gauge& loss_gauge = metrics.GetGauge("train.loss");
  obs::Histogram& epoch_ms = metrics.GetHistogram("train.epoch_ms");
  obs::Histogram& ckpt_write_ms = metrics.GetHistogram("checkpoint.write_ms");
  common::FaultInjector& faults = common::FaultInjector::Global();

  float best_loss = std::numeric_limits<float>::infinity();
  int stall = 0;
  float lr_scale = 1.0f;  // non-finite-guard backoff; 1.0f multiply is exact
  int start_epoch = 0;
  int bad_streak = 0;

  // Restores model weights, optimizer moments, and the RNG from `ckpt`.
  // `restore_lr_scale` is true on resume; a mid-run rollback keeps the
  // decayed scale so repeated instability keeps shrinking the LR.
  const auto restore = [&](const nn::TrainingCheckpoint& ckpt,
                           bool restore_lr_scale) -> common::Status {
    if (ckpt.tensors.size() != params.size()) {
      return common::Status::InvalidArgument(
          "checkpoint holds " + std::to_string(ckpt.tensors.size()) +
          " tensors, model has " + std::to_string(params.size()));
    }
    for (size_t i = 0; i < params.size(); ++i) {
      if (ckpt.tensors[i]->rows() != params[i]->rows() ||
          ckpt.tensors[i]->cols() != params[i]->cols()) {
        return common::Status::InvalidArgument(
            "checkpoint tensor " + std::to_string(i) +
            " shape does not match the model");
      }
    }
    for (size_t i = 0; i < params.size(); ++i) {
      params[i]->data() = ckpt.tensors[i]->data();
    }
    if (ckpt.has_optimizer) {
      DESALIGN_RETURN_NOT_OK(
          optimizer.RestoreState(ckpt.opt_step, ckpt.opt_m, ckpt.opt_v));
    }
    if (ckpt.has_rng && !rng_.DeserializeState(ckpt.rng_state)) {
      return common::Status::IoError("checkpoint rng state is malformed");
    }
    if (ckpt.has_train_state) {
      best_loss = ckpt.best_loss;
      stall = ckpt.stall;
      if (restore_lr_scale) lr_scale = ckpt.lr_scale;
    }
    return common::Status::Ok();
  };

  std::optional<nn::CheckpointManager> ckpts;
  if (!config_.checkpoint_dir.empty()) {
    nn::CheckpointManager::Options opts;
    opts.keep_last = config_.checkpoint_keep;
    ckpts.emplace(config_.checkpoint_dir, opts);
    if (const auto st = ckpts->Init(); !st.ok()) {
      DESALIGN_LOG(Warning) << config_.name
                            << ": checkpointing disabled: " << st.ToString();
      ckpts.reset();
    }
  }
  if (ckpts && config_.resume) {
    std::string loaded_path;
    auto loaded = ckpts->LoadLatestValid(&loaded_path);
    if (loaded.ok()) {
      if (const auto st = restore(loaded.value(), /*restore_lr_scale=*/true);
          st.ok()) {
        start_epoch = static_cast<int>(loaded.value().epoch) + 1;
        DESALIGN_LOG(Info) << config_.name << ": resumed from "
                           << loaded_path << " at epoch " << start_epoch;
      } else {
        DESALIGN_LOG(Warning) << config_.name << ": cannot resume from "
                              << loaded_path << ": " << st.ToString();
      }
    } else {
      DESALIGN_LOG(Info) << config_.name << ": nothing to resume ("
                         << loaded.status().ToString() << ")";
    }
  }

  const auto write_checkpoint = [&](int epoch) {
    if (!ckpts) return;
    common::Stopwatch ckpt_clock;
    nn::TrainingCheckpoint ckpt;
    ckpt.epoch = epoch;
    ckpt.tensors = params;
    ckpt.has_optimizer = true;
    ckpt.opt_step = optimizer.step_count();
    ckpt.opt_m = optimizer.moment1();
    ckpt.opt_v = optimizer.moment2();
    ckpt.has_rng = true;
    ckpt.rng_state = rng_.SerializeState();
    ckpt.has_train_state = true;
    ckpt.best_loss = best_loss;
    ckpt.stall = stall;
    ckpt.lr_scale = lr_scale;
    if (const auto st = ckpts->Write(ckpt); !st.ok()) {
      // Training outlives a failed checkpoint write; the previous
      // checkpoint is still intact thanks to the atomic publish.
      DESALIGN_LOG(Warning) << config_.name << ": checkpoint write failed: "
                            << st.ToString();
    }
    ckpt_write_ms.Record(ckpt_clock.ElapsedSeconds() * 1e3);
  };

  obs::TraceSpan train_span("train");
  for (int epoch = start_epoch; epoch < epochs; ++epoch) {
    obs::TraceSpan epoch_span("epoch");
    common::Stopwatch epoch_clock;
    optimizer.set_lr(schedule.LrAt(epoch) * lr_scale);
    auto state = [&] {
      obs::TraceSpan span("forward");
      return Forward();
    }();
    TensorPtr loss;
    {
      obs::TraceSpan span("loss");
      loss = ComputeLoss(state, src_rows, tgt_rows);
    }
    optimizer.ZeroGrad();
    {
      obs::TraceSpan span("backward");
      loss->Backward();
      nn::ClipGradNorm(params, config_.grad_clip);
    }

    float loss_value = loss->ScalarValue();
    if (faults.OnSite("train.loss").kind == common::FaultKind::kNan) {
      loss_value = std::numeric_limits<float>::quiet_NaN();
    }
    const bool grads_finite = [&] {
      for (const auto& p : params) {
        if (!p->has_grad()) continue;
        for (float g : p->grad()) {
          if (!std::isfinite(g)) return false;
        }
      }
      return true;
    }();

    if (!std::isfinite(loss_value) || !grads_finite) {
      // Non-finite guard: skip the update, back the LR off, and after
      // max_bad_steps consecutive bad epochs roll back to the last
      // checkpoint (the epoch counter keeps advancing).
      nonfinite_counter.Increment();
      lr_scale *= config_.nonfinite_lr_backoff;
      ++bad_streak;
      DESALIGN_LOG(Warning)
          << config_.name << ": non-finite "
          << (std::isfinite(loss_value) ? "gradients" : "loss")
          << " at epoch " << epoch << "; skipping update (lr_scale="
          << lr_scale << ")";
      if (bad_streak >= config_.max_bad_steps && ckpts) {
        auto latest = ckpts->LoadLatestValid();
        if (latest.ok() &&
            restore(latest.value(), /*restore_lr_scale=*/false).ok()) {
          rollback_counter.Increment();
          bad_streak = 0;
          DESALIGN_LOG(Warning) << config_.name
                                << ": rolled back to checkpoint at epoch "
                                << latest.value().epoch;
        }
      }
      epoch_counter.Increment();
      epoch_ms.Record(epoch_clock.ElapsedSeconds() * 1e3);
      continue;
    }
    bad_streak = 0;
    {
      obs::TraceSpan span("optimizer");
      optimizer.Step();
    }
    if (config_.record_energy_trace) {
      obs::TraceSpan span("energy_trace");
      const EnergySnapshot snap = MeasureDirichletEnergies();
      energy_trace_.push_back(snap);
      metrics.GetSeries("train.energy.initial").Append(snap.e_initial);
      metrics.GetSeries("train.energy.mid").Append(snap.e_mid);
      metrics.GetSeries("train.energy.final").Append(snap.e_final);
    }
    epoch_counter.Increment();
    loss_gauge.Set(loss_value);
    epoch_ms.Record(epoch_clock.ElapsedSeconds() * 1e3);
    bool stop = false;
    if (config_.early_stop_patience > 0) {
      if (loss_value < best_loss - 1e-4f) {
        best_loss = loss_value;
        stall = 0;
      } else if (++stall >= config_.early_stop_patience) {
        DESALIGN_LOG(Debug) << config_.name << ": early stop at epoch "
                            << epoch;
        stop = true;
      }
    }
    if (ckpts && (stop || epoch == epochs - 1 ||
                  (epoch + 1) % std::max(config_.checkpoint_every, 1) == 0)) {
      write_checkpoint(epoch);
    }
    if (stop) break;
    // Fault site "train.epoch": `stop@K` simulates a crash at the end of
    // the K-th trained epoch (the crash-resume integration test).
    if (faults.OnSite("train.epoch").kind == common::FaultKind::kStop) {
      DESALIGN_LOG(Warning) << config_.name
                            << ": injected crash after epoch " << epoch;
      return;
    }
  }
}

void FusionAlignModel::Fit(const kg::AlignedKgPair& data) {
  Prepare(data);
  RunEpochs(data.train_pairs, config_.epochs);
}

void FusionAlignModel::FitMore(const kg::AlignedKgPair& data,
                               const std::vector<kg::AlignmentPair>& seeds,
                               int epochs) {
  Prepare(data);
  RunEpochs(seeds, epochs);
}

void FusionAlignModel::Warmup(const kg::AlignedKgPair& data) {
  Prepare(data);
}

common::Status FusionAlignModel::SaveCheckpoint(
    const std::string& path) const {
  if (!prepared_) {
    return common::Status::FailedPrecondition(
        "model has no parameters yet; Fit or Warmup first");
  }
  // Params-only v2 checkpoint: checksummed and atomically published.
  nn::TrainingCheckpoint ckpt;
  ckpt.tensors = CollectParameters();
  return nn::SaveCheckpoint(ckpt, path);
}

common::Status FusionAlignModel::LoadCheckpoint(const std::string& path) {
  if (!prepared_) {
    return common::Status::FailedPrecondition(
        "model has no parameters yet; Warmup with the dataset first");
  }
  return nn::LoadParameters(CollectParameters(), path);
}

std::vector<int64_t> FusionAlignModel::TestSourceRows(
    const kg::AlignedKgPair& data) const {
  std::vector<int64_t> rows;
  rows.reserve(data.test_pairs.size());
  for (const auto& p : data.test_pairs) rows.push_back(p.source);
  return rows;
}

std::vector<int64_t> FusionAlignModel::TestTargetRows(
    const kg::AlignedKgPair& data) const {
  std::vector<int64_t> rows;
  rows.reserve(data.test_pairs.size());
  for (const auto& p : data.test_pairs) {
    rows.push_back(features_.num_source + p.target);
  }
  return rows;
}

TensorPtr FusionAlignModel::ExtraLoss(const ForwardState&) { return nullptr; }

FusionAlignModel::EnergySnapshot
FusionAlignModel::MeasureDirichletEnergies() {
  DESALIGN_CHECK_MSG(prepared_, "model must be fitted first");
  tensor::NoGradGuard no_grad;
  auto state = Forward();
  EnergySnapshot snap;
  const auto normalize = [&](const TensorPtr& x) {
    if (!x) return 0.0;
    return graph::DirichletEnergy(norm_adj_union_, x) /
           static_cast<double>(x->rows() * x->cols());
  };
  snap.e_initial = normalize(state.h_ori);
  snap.e_mid = normalize(state.h_mid);
  snap.e_final = normalize(state.h_fus);
  return snap;
}

TensorPtr FusionAlignModel::SimilarityFromEmbeddings(
    const ForwardState& state, const kg::AlignedKgPair& data) {
  auto src = ops::GatherRows(state.h_ori, TestSourceRows(data));
  auto tgt = ops::GatherRows(state.h_ori, TestTargetRows(data));
  return CosineSimilarityMatrix(src, tgt);
}

TensorPtr FusionAlignModel::DecodeSimilarity(const kg::AlignedKgPair& data) {
  DESALIGN_CHECK_MSG(prepared_, "DecodeSimilarity requires a fitted model");
  obs::TraceSpan span("decode");
  tensor::NoGradGuard no_grad;
  auto state = Forward();
  auto sim = SimilarityFromEmbeddings(state, data);
  if (config_.use_csls) ApplyCsls(*sim);
  return sim;
}

}  // namespace desalign::align
