#include "align/loss.h"

#include "common/check.h"
#include "tensor/ops.h"

namespace desalign::align {

namespace ops = desalign::tensor;

TensorPtr ContrastiveAlignmentLoss(const TensorPtr& z1, const TensorPtr& z2,
                                   float tau,
                                   const TensorPtr& pair_weights) {
  DESALIGN_CHECK_EQ(z1->rows(), z2->rows());
  DESALIGN_CHECK_EQ(z1->cols(), z2->cols());
  DESALIGN_CHECK_GT(tau, 0.0f);
  auto z1n = ops::RowL2Normalize(z1);
  auto z2n = ops::RowL2Normalize(z2);
  auto logits =
      ops::Scale(ops::MatMul(z1n, ops::Transpose(z2n)), 1.0f / tau);
  // p(e1_i -> e2_i) and p(e2_i -> e1_i): the same matrix read row-wise and
  // column-wise.
  auto fwd = ops::Neg(ops::TakeDiag(ops::RowLogSoftmax(logits)));
  auto bwd =
      ops::Neg(ops::TakeDiag(ops::RowLogSoftmax(ops::Transpose(logits))));
  auto per_pair = ops::Scale(ops::Add(fwd, bwd), 0.5f);
  if (pair_weights) {
    DESALIGN_CHECK_EQ(pair_weights->rows(), z1->rows());
    DESALIGN_CHECK_EQ(pair_weights->cols(), 1);
    per_pair = ops::Mul(per_pair, pair_weights);
  }
  return ops::Mean(per_pair);
}

TensorPtr MarginAlignmentLoss(const TensorPtr& z1, const TensorPtr& z2,
                              const TensorPtr& z2_neg, float margin) {
  DESALIGN_CHECK_EQ(z1->rows(), z2->rows());
  DESALIGN_CHECK_EQ(z1->rows(), z2_neg->rows());
  auto z1n = ops::RowL2Normalize(z1);
  auto z2n = ops::RowL2Normalize(z2);
  auto znn = ops::RowL2Normalize(z2_neg);
  auto d_pos = ops::RowSum(ops::Square(ops::Sub(z1n, z2n)));
  auto d_neg = ops::RowSum(ops::Square(ops::Sub(z1n, znn)));
  return ops::Mean(
      ops::Relu(ops::AddScalar(ops::Sub(d_pos, d_neg), margin)));
}

}  // namespace desalign::align
