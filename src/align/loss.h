#ifndef DESALIGN_ALIGN_LOSS_H_
#define DESALIGN_ALIGN_LOSS_H_

#include "tensor/tensor.h"

namespace desalign::align {

using tensor::TensorPtr;

/// Bidirectional in-batch contrastive alignment loss (paper Eq. 16–17).
/// `z1`/`z2` are the B x d embeddings of B seed pairs (row i of z1 aligns
/// with row i of z2); every other in-batch row acts as a negative.
/// `pair_weights` (optional, B x 1, treated as constants) carries the
/// min-confidence values φ_m; null means uniform weights.
/// Returns a differentiable scalar.
TensorPtr ContrastiveAlignmentLoss(const TensorPtr& z1, const TensorPtr& z2,
                                   float tau,
                                   const TensorPtr& pair_weights = nullptr);

/// Margin ranking alignment loss (used by the translation-era baselines,
/// e.g. the MMEA model family): mean(relu(margin + d(z1, z2) − d(z1,
/// z2_neg))) with squared-l2 distance d; `z2_neg` holds one negative per
/// pair (rows aligned with z1).
TensorPtr MarginAlignmentLoss(const TensorPtr& z1, const TensorPtr& z2,
                              const TensorPtr& z2_neg, float margin);

}  // namespace desalign::align

#endif  // DESALIGN_ALIGN_LOSS_H_
