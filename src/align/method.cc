#include "align/method.h"

#include "common/stopwatch.h"

namespace desalign::align {

EvalResult AlignmentMethod::Evaluate(const kg::AlignedKgPair& data) {
  EvalResult result;
  common::Stopwatch watch;
  Fit(data);
  result.train_seconds = watch.ElapsedSeconds();
  watch.Reset();
  auto sim = DecodeSimilarity(data);
  result.decode_seconds = watch.ElapsedSeconds();
  result.metrics = MetricsFromSimilarity(*sim);
  return result;
}

}  // namespace desalign::align
