#include "align/metrics.h"

#include <algorithm>
#include <vector>

#include "common/check.h"
#include "tensor/ops.h"

namespace desalign::align {

RankingMetrics MetricsFromSimilarity(const Tensor& sim) {
  DESALIGN_CHECK_EQ(sim.rows(), sim.cols());
  const int64_t n = sim.rows();
  RankingMetrics m;
  m.num_queries = n;
  for (int64_t i = 0; i < n; ++i) {
    const float truth = sim.At(i, i);
    int64_t rank = 1;
    for (int64_t j = 0; j < n; ++j) {
      if (j != i && sim.At(i, j) > truth) ++rank;
    }
    if (rank <= 1) m.h_at_1 += 1.0;
    if (rank <= 5) m.h_at_5 += 1.0;
    if (rank <= 10) m.h_at_10 += 1.0;
    m.mrr += 1.0 / static_cast<double>(rank);
  }
  if (n > 0) {
    m.h_at_1 /= n;
    m.h_at_5 /= n;
    m.h_at_10 /= n;
    m.mrr /= n;
  }
  return m;
}

TensorPtr CosineSimilarityMatrix(const TensorPtr& a, const TensorPtr& b) {
  tensor::NoGradGuard no_grad;
  auto an = tensor::RowL2Normalize(a);
  auto bn = tensor::RowL2Normalize(b);
  return tensor::MatMul(an, tensor::Transpose(bn));
}

void ApplyCsls(Tensor& sim, int k) {
  const int64_t n = sim.rows();
  const int64_t m = sim.cols();
  const int64_t kk = std::min<int64_t>(k, std::min(n, m));
  if (kk <= 0) return;
  std::vector<float> row_mean(n, 0.0f);
  std::vector<float> col_mean(m, 0.0f);
  std::vector<float> buf;
  for (int64_t i = 0; i < n; ++i) {
    buf.assign(sim.data().begin() + i * m, sim.data().begin() + (i + 1) * m);
    std::nth_element(buf.begin(), buf.begin() + (kk - 1), buf.end(),
                     std::greater<float>());
    float acc = 0.0f;
    for (int64_t j = 0; j < kk; ++j) acc += buf[j];
    row_mean[i] = acc / static_cast<float>(kk);
  }
  for (int64_t j = 0; j < m; ++j) {
    buf.resize(n);
    for (int64_t i = 0; i < n; ++i) buf[i] = sim.At(i, j);
    std::nth_element(buf.begin(), buf.begin() + (kk - 1), buf.end(),
                     std::greater<float>());
    float acc = 0.0f;
    for (int64_t i = 0; i < kk; ++i) acc += buf[i];
    col_mean[j] = acc / static_cast<float>(kk);
  }
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < m; ++j) {
      sim.At(i, j) = 2.0f * sim.At(i, j) - row_mean[i] - col_mean[j];
    }
  }
}

}  // namespace desalign::align
