#ifndef DESALIGN_ALIGN_FUSION_MODEL_H_
#define DESALIGN_ALIGN_FUSION_MODEL_H_

#include <array>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "align/features.h"
#include "align/method.h"
#include "common/rng.h"
#include "common/status.h"
#include "graph/graph.h"
#include "kg/mmkg.h"
#include "nn/layers.h"
#include "nn/optimizer.h"
#include "tensor/sparse.h"

namespace desalign::align {

/// Configuration shared by the modality-fusion family of MMEA models
/// (EVA, MCLEA, MEAformer-sim, DESAlign). Feature switches select the
/// family member; DESAlign adds its extras through virtual hooks.
/// Task-objective family for the alignment losses.
enum class TaskLossKind {
  kContrastive,     ///< bidirectional InfoNCE (Eq. 16–17)
  kMarginRanking,   ///< translation-era margin ranking (MMEA family)
};

struct FusionModelConfig {
  std::string name = "FusionModel";
  uint64_t seed = 7;

  // ---- Architecture ----
  int64_t dim = 32;          ///< hidden dim d (paper: 300; scaled down)
  int64_t gat_heads = 2;     ///< paper: two attention heads
  int64_t gat_layers = 2;    ///< paper: two layers
  int64_t attn_heads = 1;    ///< CAW heads N_h (paper: 1)

  // ---- Training ----
  int epochs = 60;
  float lr = 5e-3f;
  float weight_decay = 1e-4f;
  float tau = 0.1f;          ///< contrastive temperature (paper: 0.1)
  TaskLossKind task_loss = TaskLossKind::kContrastive;
  float margin = 1.0f;       ///< for kMarginRanking
  float grad_clip = 5.0f;
  double warmup_fraction = 0.15;
  int early_stop_patience = 0;  ///< 0 disables early stopping

  // ---- Crash safety (docs/ROBUSTNESS.md) ----
  /// Directory for rotating training checkpoints; empty disables them.
  std::string checkpoint_dir;
  int checkpoint_every = 5;  ///< epochs between checkpoint writes
  int checkpoint_keep = 3;   ///< last-K retention in checkpoint_dir
  /// Resume from the newest valid checkpoint in checkpoint_dir. Bit-exact:
  /// the run finishes with the same weights and metrics as an
  /// uninterrupted run of the same config (same seed and thread count).
  bool resume = false;
  /// Consecutive non-finite steps tolerated (skip + LR backoff) before
  /// training rolls the weights back to the last checkpoint.
  int max_bad_steps = 3;
  /// LR multiplier applied after each non-finite step (compounds).
  float nonfinite_lr_backoff = 0.5f;

  // ---- Family switches ----
  /// Cross-modal attention fusion (MEAformer/DESAlign) vs. global learnable
  /// modality weights (EVA/MCLEA).
  bool use_cross_modal_attention = true;
  /// Intra-modal contrastive objectives L_m (MCLEA and up).
  bool use_intra_modal_losses = true;
  /// Min-confidence weighting φ_m of Eq. 17 (DESAlign).
  bool use_min_confidence = false;
  /// Include L_task^(0) (early-fusion task loss). Ablated in Fig. 3.
  bool use_initial_task_loss = true;
  /// Include Σ_m L_m^(k−1) (intermediate-layer intra-modal losses).
  bool use_mid_layer_losses = true;
  /// Missing-feature interpolation at input time.
  MissingFeaturePolicy missing_policy =
      MissingFeaturePolicy::kRandomFromDistribution;
  /// Per-modality enable switches, indexed by kg::Modality (ablations).
  std::array<bool, kg::kNumModalities> use_modality = {true, true, true,
                                                       true};
  /// Apply cross-domain similarity local scaling to the decoded similarity
  /// matrix (optional hubness correction).
  bool use_csls = false;
  /// Record a Dirichlet-energy snapshot after every training epoch
  /// (analysis runs only — costs one extra no-grad forward per epoch).
  bool record_energy_trace = false;
};

/// Shared implementation of the fusion-based MMEA model family. Encodes
/// each modality (Eq. 7–8), fuses (Eq. 9–14), and trains the bidirectional
/// contrastive objective (Eq. 16–17) full-batch over the seed alignments.
/// Subclasses hook in extra loss terms (DESAlign's Dirichlet-energy
/// penalties) and decode-time refinement (semantic propagation).
class FusionAlignModel : public AlignmentMethod {
 public:
  explicit FusionAlignModel(FusionModelConfig config);

  std::string name() const override { return config_.name; }
  void Fit(const kg::AlignedKgPair& data) override;
  tensor::TensorPtr DecodeSimilarity(const kg::AlignedKgPair& data) override;

  /// Continues training this (already fitted) model on `seeds` for `epochs`
  /// more epochs — the iterative strategy's refinement phase.
  void FitMore(const kg::AlignedKgPair& data,
               const std::vector<kg::AlignmentPair>& seeds, int epochs);

  /// Builds the dataset caches and parameter tensors without training —
  /// required before LoadCheckpoint on a fresh model.
  void Warmup(const kg::AlignedKgPair& data);

  /// Persists / restores all trainable parameters. The model must be
  /// warmed up (or fitted) with the same configuration and dataset shape.
  common::Status SaveCheckpoint(const std::string& path) const;
  common::Status LoadCheckpoint(const std::string& path);

  const FusionModelConfig& config() const { return config_; }

  /// Enables crash-safe checkpointing for the next Fit: rotating
  /// checkpoints under `dir` every `every` epochs keeping the newest
  /// `keep`, resuming from the newest valid one when `resume` is set.
  /// Exists so CLI/driver code can arm checkpointing on a model built by
  /// a method factory, which fixes the rest of the config.
  void ConfigureCheckpointing(std::string dir, int every, int keep,
                              bool resume) {
    config_.checkpoint_dir = std::move(dir);
    config_.checkpoint_every = every;
    config_.checkpoint_keep = keep;
    config_.resume = resume;
  }

  /// Total trainable scalars (for the efficiency analysis).
  int64_t NumParameters() const;

  /// Final fused entity representations X^(0) for every entity of both
  /// KGs (source rows first, then target rows), as a gradient-detached
  /// (N_src + N_tgt) x D matrix from a no-grad forward pass. Requires a
  /// fitted model (or Warmup + LoadCheckpoint). This is the matrix the
  /// serve::EmbeddingStore indexes for query-time top-k retrieval.
  tensor::TensorPtr FusedEmbeddings();

  /// Number of source-KG entities, i.e. the row where the target block of
  /// FusedEmbeddings() starts. Requires a prepared model.
  int64_t num_source_entities() const;

  /// Dirichlet energies of the semantic embedding at the three layers of
  /// Proposition 3, measured on the current weights (no-grad forward).
  /// Energies are normalized by N·d so values are comparable across
  /// configurations; layers without a fused path report 0.
  struct EnergySnapshot {
    double e_initial = 0.0;  ///< E(X^(0))
    double e_mid = 0.0;      ///< E(X^(k−1))
    double e_final = 0.0;    ///< E(X^(k))
  };
  EnergySnapshot MeasureDirichletEnergies();

  /// Per-epoch energy snapshots; non-empty only when
  /// `config.record_energy_trace` is set.
  const std::vector<EnergySnapshot>& energy_trace() const {
    return energy_trace_;
  }

 protected:
  /// Everything one forward pass produces; indices follow kg::Modality.
  struct ForwardState {
    std::vector<tensor::TensorPtr> modal_raw;    ///< h^m (null if disabled)
    std::vector<tensor::TensorPtr> modal_mid;    ///< ĥ^ATT pre-FFN
    std::vector<tensor::TensorPtr> modal_fused;  ///< ĥ^ATT (Eq. 12)
    tensor::TensorPtr confidence;                ///< w̃ (N x M) or null
    tensor::TensorPtr h_ori;  ///< X^(0): early fusion (final representation)
    tensor::TensorPtr h_mid;  ///< X^(k−1)
    tensor::TensorPtr h_fus;  ///< X^(k): late fusion
  };

  ForwardState Forward();

  /// Subclass hook: extra differentiable loss terms (may return null).
  virtual tensor::TensorPtr ExtraLoss(const ForwardState& state);

  /// Subclass hook: decode-time similarity from the final embedding
  /// (default: cosine over h_ori rows of the test pairs).
  virtual tensor::TensorPtr SimilarityFromEmbeddings(
      const ForwardState& state, const kg::AlignedKgPair& data);

  /// Test-pair row indices into the combined entity space.
  std::vector<int64_t> TestSourceRows(const kg::AlignedKgPair& data) const;
  std::vector<int64_t> TestTargetRows(const kg::AlignedKgPair& data) const;

  /// Active (enabled) modalities in canonical order.
  std::vector<kg::Modality> ActiveModalities() const;

  FusionModelConfig config_;
  common::Rng rng_;

  // Dataset-derived caches (built by Prepare).
  bool prepared_ = false;
  CombinedFeatures features_;
  std::optional<graph::Graph> graph_src_;
  std::optional<graph::Graph> graph_tgt_;
  std::optional<graph::Graph> graph_union_;
  graph::Graph::DirectedEdges mp_edges_;
  tensor::CsrMatrixPtr norm_adj_union_;  ///< Ã of the disjoint union
  tensor::CsrMatrixPtr norm_adj_src_;
  tensor::CsrMatrixPtr norm_adj_tgt_;

  // Trainable components.
  tensor::TensorPtr entity_embeddings_;  ///< x^g, N x d
  std::unique_ptr<nn::GatEncoder> gat_;
  std::unique_ptr<nn::Linear> fc_relation_;
  std::unique_ptr<nn::Linear> fc_text_;
  std::unique_ptr<nn::Linear> fc_visual_;
  std::unique_ptr<nn::CrossModalAttention> caw_;
  tensor::TensorPtr global_modality_logits_;  ///< 1 x M (EVA-style fusion)

 private:
  std::vector<EnergySnapshot> energy_trace_;
  void Prepare(const kg::AlignedKgPair& data);
  std::vector<tensor::TensorPtr> CollectParameters() const;
  tensor::TensorPtr ComputeLoss(const ForwardState& state,
                                const std::vector<int64_t>& src_rows,
                                const std::vector<int64_t>& tgt_rows);
  void RunEpochs(const std::vector<kg::AlignmentPair>& seeds, int epochs);

  /// Pair weight column (B x 1 constants) = min(w̃_src, w̃_tgt) for
  /// modality m; null when min-confidence is off or confidence missing.
  tensor::TensorPtr PairConfidence(const ForwardState& state, int modality,
                                   const std::vector<int64_t>& src_rows,
                                   const std::vector<int64_t>& tgt_rows)
      const;
};

}  // namespace desalign::align

#endif  // DESALIGN_ALIGN_FUSION_MODEL_H_
