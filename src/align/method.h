#ifndef DESALIGN_ALIGN_METHOD_H_
#define DESALIGN_ALIGN_METHOD_H_

#include <string>

#include "align/metrics.h"
#include "kg/mmkg.h"
#include "tensor/tensor.h"

namespace desalign::align {

/// Evaluation record for one (method, dataset) cell of a results table.
struct EvalResult {
  RankingMetrics metrics;
  double train_seconds = 0.0;
  double decode_seconds = 0.0;
};

/// Interface every alignment method (DESAlign and all baselines)
/// implements, so the benchmark harness can sweep them uniformly.
class AlignmentMethod {
 public:
  virtual ~AlignmentMethod() = default;

  /// Human-readable method name used in result tables.
  virtual std::string name() const = 0;

  /// Trains on `data.train_pairs`.
  virtual void Fit(const kg::AlignedKgPair& data) = 0;

  /// Produces the test-set similarity matrix: row i = test pair i's source
  /// entity, column j = test pair j's target entity (diagonal = truth).
  virtual tensor::TensorPtr DecodeSimilarity(
      const kg::AlignedKgPair& data) = 0;

  /// Fit + decode + rank, with timings.
  EvalResult Evaluate(const kg::AlignedKgPair& data);
};

}  // namespace desalign::align

#endif  // DESALIGN_ALIGN_METHOD_H_
