#ifndef DESALIGN_ALIGN_ITERATIVE_H_
#define DESALIGN_ALIGN_ITERATIVE_H_

#include <vector>

#include "align/fusion_model.h"
#include "kg/mmkg.h"

namespace desalign::align {

/// Settings for the iterative (bootstrapping) training strategy: after the
/// base fit, mutual-nearest cross-graph test pairs above a similarity
/// threshold are cached as pseudo-seeds and the model is refined on the
/// enlarged seed set ("alignment editing" drops pseudo-seeds that stop
/// being mutual nearest neighbours between rounds, limiting error
/// accumulation, following Sun et al. 2018).
struct IterativeConfig {
  int rounds = 2;
  int epochs_per_round = 30;
  float min_similarity = 0.5f;
};

/// Mutual-nearest-neighbour pseudo pairs from a test similarity matrix
/// (row/column conventions of AlignmentMethod::DecodeSimilarity).
/// Returned pairs index into `data.test_pairs`' entity ids.
std::vector<kg::AlignmentPair> MutualNearestPairs(
    const tensor::Tensor& sim, const kg::AlignedKgPair& data,
    float min_similarity);

/// Runs the iterative strategy on a fusion-family model that has already
/// been `Fit` once. Mutates the model in place.
void RunIterativeRefinement(FusionAlignModel& model,
                            const kg::AlignedKgPair& data,
                            const IterativeConfig& config);

}  // namespace desalign::align

#endif  // DESALIGN_ALIGN_ITERATIVE_H_
