#include "align/assignment.h"

#include <algorithm>
#include <limits>

#include "common/check.h"

namespace desalign::align {

std::vector<int64_t> GreedyOneToOneMatch(const tensor::Tensor& sim) {
  const int64_t n = sim.rows();
  const int64_t m = sim.cols();
  if (n == 0 || m == 0) return std::vector<int64_t>(n, -1);
  if (n == 1 && m == 1) return {0};
  struct Cell {
    float value;
    int64_t row;
    int64_t col;
  };
  std::vector<Cell> cells;
  cells.reserve(static_cast<size_t>(n * m));
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < m; ++j) {
      cells.push_back({sim.At(i, j), i, j});
    }
  }
  std::sort(cells.begin(), cells.end(), [](const Cell& a, const Cell& b) {
    if (a.value != b.value) return a.value > b.value;
    if (a.row != b.row) return a.row < b.row;
    return a.col < b.col;
  });
  std::vector<int64_t> match(n, -1);
  std::vector<bool> col_used(m, false);
  int64_t committed = 0;
  const int64_t target = std::min(n, m);
  for (const auto& cell : cells) {
    if (committed == target) break;
    if (match[cell.row] >= 0 || col_used[cell.col]) continue;
    match[cell.row] = cell.col;
    col_used[cell.col] = true;
    ++committed;
  }
  return match;
}

std::vector<int64_t> HungarianMatch(const tensor::Tensor& sim) {
  DESALIGN_CHECK_MSG(sim.rows() == sim.cols(),
                     "HungarianMatch requires a square matrix; see the "
                     "shape contract in assignment.h");
  const int64_t n = sim.rows();
  if (n == 0) return {};
  if (n == 1) return {0};
  // Minimize cost = -similarity with the O(n^3) potentials formulation
  // (1-indexed internal arrays, standard Jonker–Volgenant scheme).
  const double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> u(n + 1, 0.0);      // row potentials
  std::vector<double> v(n + 1, 0.0);      // column potentials
  std::vector<int64_t> p(n + 1, 0);       // p[j]: row matched to column j
  std::vector<int64_t> way(n + 1, 0);
  for (int64_t i = 1; i <= n; ++i) {
    p[0] = i;
    int64_t j0 = 0;
    std::vector<double> minv(n + 1, kInf);
    std::vector<bool> used(n + 1, false);
    do {
      used[j0] = true;
      const int64_t i0 = p[j0];
      double delta = kInf;
      int64_t j1 = 0;
      for (int64_t j = 1; j <= n; ++j) {
        if (used[j]) continue;
        const double cost = -static_cast<double>(sim.At(i0 - 1, j - 1));
        const double current = cost - u[i0] - v[j];
        if (current < minv[j]) {
          minv[j] = current;
          way[j] = j0;
        }
        if (minv[j] < delta) {
          delta = minv[j];
          j1 = j;
        }
      }
      for (int64_t j = 0; j <= n; ++j) {
        if (used[j]) {
          u[p[j]] += delta;
          v[j] -= delta;
        } else {
          minv[j] -= delta;
        }
      }
      j0 = j1;
    } while (p[j0] != 0);
    do {
      const int64_t j1 = way[j0];
      p[j0] = p[j1];
      j0 = j1;
    } while (j0 != 0);
  }
  std::vector<int64_t> match(n, -1);
  for (int64_t j = 1; j <= n; ++j) {
    if (p[j] > 0) match[p[j] - 1] = j - 1;
  }
  return match;
}

double MatchingAccuracy(const std::vector<int64_t>& match) {
  if (match.empty()) return 0.0;
  int64_t hits = 0;
  for (size_t i = 0; i < match.size(); ++i) {
    if (match[i] == static_cast<int64_t>(i)) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(match.size());
}

double MatchingScore(const tensor::Tensor& sim,
                     const std::vector<int64_t>& match) {
  double total = 0.0;
  for (size_t i = 0; i < match.size(); ++i) {
    if (match[i] >= 0) total += sim.At(static_cast<int64_t>(i), match[i]);
  }
  return total;
}

}  // namespace desalign::align
