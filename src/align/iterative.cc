#include "align/iterative.h"

#include <algorithm>

#include "common/check.h"
#include "common/logging.h"

namespace desalign::align {

std::vector<kg::AlignmentPair> MutualNearestPairs(
    const tensor::Tensor& sim, const kg::AlignedKgPair& data,
    float min_similarity) {
  const int64_t n = sim.rows();
  DESALIGN_CHECK_EQ(n, static_cast<int64_t>(data.test_pairs.size()));
  std::vector<int64_t> best_for_row(n), best_for_col(n);
  for (int64_t i = 0; i < n; ++i) {
    int64_t arg = 0;
    for (int64_t j = 1; j < n; ++j) {
      if (sim.At(i, j) > sim.At(i, arg)) arg = j;
    }
    best_for_row[i] = arg;
  }
  for (int64_t j = 0; j < n; ++j) {
    int64_t arg = 0;
    for (int64_t i = 1; i < n; ++i) {
      if (sim.At(i, j) > sim.At(arg, j)) arg = i;
    }
    best_for_col[j] = arg;
  }
  std::vector<kg::AlignmentPair> pseudo;
  for (int64_t i = 0; i < n; ++i) {
    const int64_t j = best_for_row[i];
    if (best_for_col[j] == i && sim.At(i, j) >= min_similarity) {
      pseudo.push_back({data.test_pairs[i].source, data.test_pairs[j].target});
    }
  }
  return pseudo;
}

void RunIterativeRefinement(FusionAlignModel& model,
                            const kg::AlignedKgPair& data,
                            const IterativeConfig& config) {
  for (int round = 0; round < config.rounds; ++round) {
    auto sim = model.DecodeSimilarity(data);
    // The pseudo-seed cache is rebuilt from scratch every round, which IS
    // the alignment-editing rule: a pair added in round r that stops being
    // a mutual nearest neighbour disappears from round r+1's seed set.
    auto pseudo = MutualNearestPairs(*sim, data, config.min_similarity);
    DESALIGN_LOG(Debug) << model.name() << ": iterative round " << round
                        << " adds " << pseudo.size() << " pseudo seeds";
    std::vector<kg::AlignmentPair> seeds = data.train_pairs;
    seeds.insert(seeds.end(), pseudo.begin(), pseudo.end());
    model.FitMore(data, seeds, config.epochs_per_round);
  }
}

}  // namespace desalign::align
