#ifndef DESALIGN_ALIGN_ASSIGNMENT_H_
#define DESALIGN_ALIGN_ASSIGNMENT_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace desalign::align {

// One-to-one assignment decoding: instead of ranking targets independently
// per source (H@k/MRR), commit to a global matching. Entity alignment is
// one-to-one by definition, so assignment decoding resolves conflicts
// where two sources claim the same target — the "collective" alignment
// setting of Zeng et al. [51].

/// Greedy global matching: repeatedly commits the highest-similarity
/// unmatched (row, column) pair. O(n·m·log(n·m)).
///
/// Shape contract: any rectangular n x m matrix is accepted. Exactly
/// min(n, m) rows are matched; the remaining rows carry -1 (callers must
/// treat -1 as "unmatched", never index with it). Degenerate inputs are
/// well-defined: an empty matrix (n == 0 or m == 0) yields a vector of n
/// entries of -1, and a 1x1 matrix yields {0}. (tensor::Tensor currently
/// forbids 0-sized matrices, so the empty guard is defensive.)
std::vector<int64_t> GreedyOneToOneMatch(const tensor::Tensor& sim);

/// Optimal assignment maximizing total similarity via the Hungarian
/// algorithm (Jonker–Volgenant style potentials), O(n³).
///
/// Shape contract: requires a square matrix (CHECK-fails on non-square
/// input — pad rectangular problems with a -inf-ish constant first, or use
/// GreedyOneToOneMatch which handles rectangles natively). A 0x0 matrix
/// yields {} and a 1x1 matrix yields {0}; every row of a square input is
/// matched to a distinct column.
std::vector<int64_t> HungarianMatch(const tensor::Tensor& sim);

/// Fraction of rows whose match is the ground-truth diagonal entry.
double MatchingAccuracy(const std::vector<int64_t>& match);

/// Total similarity collected by a matching.
double MatchingScore(const tensor::Tensor& sim,
                     const std::vector<int64_t>& match);

}  // namespace desalign::align

#endif  // DESALIGN_ALIGN_ASSIGNMENT_H_
