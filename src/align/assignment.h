#ifndef DESALIGN_ALIGN_ASSIGNMENT_H_
#define DESALIGN_ALIGN_ASSIGNMENT_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace desalign::align {

// One-to-one assignment decoding: instead of ranking targets independently
// per source (H@k/MRR), commit to a global matching. Entity alignment is
// one-to-one by definition, so assignment decoding resolves conflicts
// where two sources claim the same target — the "collective" alignment
// setting of Zeng et al. [51].

/// Greedy global matching: repeatedly commits the highest-similarity
/// unmatched (row, column) pair. Returns, per row, the matched column
/// (every row is matched when the matrix is square). O(n² log n).
std::vector<int64_t> GreedyOneToOneMatch(const tensor::Tensor& sim);

/// Optimal assignment maximizing total similarity via the Hungarian
/// algorithm (Jonker–Volgenant style potentials), O(n³). Requires a
/// square matrix.
std::vector<int64_t> HungarianMatch(const tensor::Tensor& sim);

/// Fraction of rows whose match is the ground-truth diagonal entry.
double MatchingAccuracy(const std::vector<int64_t>& match);

/// Total similarity collected by a matching.
double MatchingScore(const tensor::Tensor& sim,
                     const std::vector<int64_t>& match);

}  // namespace desalign::align

#endif  // DESALIGN_ALIGN_ASSIGNMENT_H_
