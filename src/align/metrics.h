#ifndef DESALIGN_ALIGN_METRICS_H_
#define DESALIGN_ALIGN_METRICS_H_

#include <cstdint>

#include "tensor/tensor.h"

namespace desalign::align {

using tensor::Tensor;
using tensor::TensorPtr;

/// Ranking quality of an alignment prediction (paper Eq. 23–24). The
/// similarity matrix convention: row i is test pair i's source entity,
/// column j is test pair j's target entity, so the correct answer for row i
/// is column i.
struct RankingMetrics {
  double h_at_1 = 0.0;
  double h_at_5 = 0.0;
  double h_at_10 = 0.0;
  double mrr = 0.0;
  int64_t num_queries = 0;
};

/// Computes H@{1,5,10} and MRR from a square similarity matrix whose
/// diagonal holds the ground-truth matches (source -> target direction).
RankingMetrics MetricsFromSimilarity(const Tensor& sim);

/// Cosine similarity matrix between row-sets a (n x d) and b (m x d);
/// returns n x m. Pure inference helper — never builds autograd state.
TensorPtr CosineSimilarityMatrix(const TensorPtr& a, const TensorPtr& b);

/// Cross-domain similarity local scaling [Lample et al.]: replaces
/// sim(i,j) by 2*sim(i,j) − r_src(i) − r_tgt(j) where r are mean top-k
/// neighborhood similarities. Mitigates hubness in nearest-neighbor
/// retrieval; offered as an optional decoding refinement.
void ApplyCsls(Tensor& sim, int k = 10);

}  // namespace desalign::align

#endif  // DESALIGN_ALIGN_METRICS_H_
