#include "align/features.h"

#include <cmath>

#include "common/check.h"

namespace desalign::align {

namespace {

using kg::FeatureTable;
using tensor::Tensor;

// Row-l2-normalizes rows flagged present (missing rows stay zero).
void NormalizePresentRows(Tensor& t, const std::vector<bool>& present) {
  const int64_t n = t.rows();
  const int64_t c = t.cols();
  for (int64_t r = 0; r < n; ++r) {
    if (!present[r]) continue;
    double acc = 0.0;
    for (int64_t j = 0; j < c; ++j) {
      acc += static_cast<double>(t.At(r, j)) * t.At(r, j);
    }
    const float norm = static_cast<float>(std::sqrt(acc));
    if (norm < 1e-12f) continue;
    for (int64_t j = 0; j < c; ++j) t.At(r, j) /= norm;
  }
}

// Fills missing rows with N(mu_j, sigma_j) where the moments are estimated
// column-wise from the present rows.
void FillMissingFromDistribution(Tensor& t, const std::vector<bool>& present,
                                 common::Rng& rng) {
  const int64_t n = t.rows();
  const int64_t c = t.cols();
  int64_t count = 0;
  std::vector<double> mean(c, 0.0);
  std::vector<double> sq(c, 0.0);
  for (int64_t r = 0; r < n; ++r) {
    if (!present[r]) continue;
    ++count;
    for (int64_t j = 0; j < c; ++j) {
      mean[j] += t.At(r, j);
      sq[j] += static_cast<double>(t.At(r, j)) * t.At(r, j);
    }
  }
  if (count == 0) return;
  for (int64_t j = 0; j < c; ++j) {
    mean[j] /= count;
    sq[j] = std::sqrt(std::max(0.0, sq[j] / count - mean[j] * mean[j]));
  }
  for (int64_t r = 0; r < n; ++r) {
    if (present[r]) continue;
    for (int64_t j = 0; j < c; ++j) {
      t.At(r, j) = static_cast<float>(rng.Normal(mean[j], sq[j]));
    }
  }
}

// Stacks source over target feature tables into one (N x d) tensor.
std::pair<tensor::TensorPtr, std::vector<bool>> Stack(
    const FeatureTable& src, const FeatureTable& tgt) {
  DESALIGN_CHECK_MSG(src.dim() == tgt.dim(),
                     "source/target feature dims differ; datasets must share "
                     "a union vocabulary");
  const int64_t ns = src.num_entities();
  const int64_t nt = tgt.num_entities();
  auto out = Tensor::Create(ns + nt, src.dim());
  std::copy(src.features->data().begin(), src.features->data().end(),
            out->data().begin());
  std::copy(tgt.features->data().begin(), tgt.features->data().end(),
            out->data().begin() + ns * src.dim());
  std::vector<bool> present(src.present);
  present.insert(present.end(), tgt.present.begin(), tgt.present.end());
  return {out, present};
}

}  // namespace

std::vector<bool> CombinedFeatures::AllPresent() const {
  std::vector<bool> out(total());
  for (int64_t i = 0; i < total(); ++i) {
    out[i] = relation_present[i] && text_present[i] && visual_present[i];
  }
  return out;
}

const std::vector<bool>& CombinedFeatures::PresentFor(kg::Modality m) const {
  switch (m) {
    case kg::Modality::kRelation:
      return relation_present;
    case kg::Modality::kText:
      return text_present;
    case kg::Modality::kVisual:
      return visual_present;
    case kg::Modality::kGraph:
      break;
  }
  // kGraph: structure is always available; reuse relation mask shape with
  // an all-true static.
  static const std::vector<bool>& empty = *new std::vector<bool>();
  return empty;
}

CombinedFeatures BuildCombinedFeatures(const kg::AlignedKgPair& data,
                                       MissingFeaturePolicy policy,
                                       common::Rng& rng) {
  CombinedFeatures out;
  out.num_source = data.source.num_entities;
  out.num_target = data.target.num_entities;

  std::tie(out.relation, out.relation_present) =
      Stack(data.source.relation_features, data.target.relation_features);
  std::tie(out.text, out.text_present) =
      Stack(data.source.text_features, data.target.text_features);
  std::tie(out.visual, out.visual_present) =
      Stack(data.source.visual_features, data.target.visual_features);

  NormalizePresentRows(*out.relation, out.relation_present);
  NormalizePresentRows(*out.text, out.text_present);
  NormalizePresentRows(*out.visual, out.visual_present);

  if (policy == MissingFeaturePolicy::kRandomFromDistribution) {
    FillMissingFromDistribution(*out.relation, out.relation_present, rng);
    FillMissingFromDistribution(*out.text, out.text_present, rng);
    FillMissingFromDistribution(*out.visual, out.visual_present, rng);
  }
  return out;
}

}  // namespace desalign::align
