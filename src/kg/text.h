#ifndef DESALIGN_KG_TEXT_H_
#define DESALIGN_KG_TEXT_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "kg/mmkg.h"

namespace desalign::kg {

/// Lower-cases ASCII and splits on every non-alphanumeric byte. This is
/// the tokenizer behind the paper's bag-of-words encoding of relation
/// names and textual attribute values ([29] Yang et al. 2019).
std::vector<std::string> Tokenize(std::string_view text);

/// Frequency-counted token vocabulary with pruning, mapping tokens to
/// dense ids [0, size()).
class Vocabulary {
 public:
  /// Counts one occurrence (assigns an id on first sight).
  void Add(const std::string& token);

  /// Counts every token of `text` via Tokenize.
  void AddText(std::string_view text);

  /// Keeps only tokens seen at least `min_count` times, capped at the
  /// `max_size` most frequent (ties broken lexicographically for
  /// determinism). Ids are re-assigned densely by descending frequency.
  void Prune(int64_t min_count, int64_t max_size);

  /// Dense id of `token`, or -1 when absent.
  int64_t IdOf(const std::string& token) const;

  int64_t size() const { return static_cast<int64_t>(tokens_.size()); }
  /// Token list indexed by id.
  const std::vector<std::string>& tokens() const { return tokens_; }
  /// Occurrence count of the token with the given id.
  int64_t CountOf(int64_t id) const { return counts_[id]; }

 private:
  std::unordered_map<std::string, int64_t> id_of_;
  std::vector<std::string> tokens_;
  std::vector<int64_t> counts_;
};

/// log1p bag-of-words features over a fixed vocabulary: row i encodes
/// documents[i]; rows whose document has no in-vocabulary token are marked
/// absent.
FeatureTable BuildBowFeatures(const std::vector<std::string>& documents,
                              const Vocabulary& vocabulary);

/// Convenience: vocabulary construction + pruning + feature building for a
/// document collection (the per-entity concatenated attribute strings of a
/// real MMKG dump).
struct BowResult {
  Vocabulary vocabulary;
  FeatureTable features;
};
BowResult BuildBow(const std::vector<std::string>& documents,
                   int64_t min_count = 1, int64_t max_vocab = 10000);

}  // namespace desalign::kg

#endif  // DESALIGN_KG_TEXT_H_
