#ifndef DESALIGN_KG_PERTURB_H_
#define DESALIGN_KG_PERTURB_H_

#include "common/rng.h"
#include "kg/mmkg.h"

namespace desalign::kg {

// Controlled degradation of an existing dataset — used when the
// semantic-inconsistency sweeps must run on *loaded* (e.g. real) data
// instead of regenerating synthetic data per ratio. These are the
// operations behind the paper's variant benchmarks: "we set R_img ... and
// R_tex ... from 5% to 60% to validate robustness".

/// Keeps each currently present row of the modality with probability
/// `keep_ratio`; dropped rows are zeroed and their presence flag cleared.
/// kGraph is rejected (structure has no feature table).
void DropModalityFeatures(Mmkg& kg, Modality modality, double keep_ratio,
                          common::Rng& rng);

/// Applies DropModalityFeatures to both KGs of a pair.
void DropModalityFeatures(AlignedKgPair& pair, Modality modality,
                          double keep_ratio, common::Rng& rng);

/// Removes each relational triple with probability `1 - keep_ratio`.
void DropTriples(Mmkg& kg, double keep_ratio, common::Rng& rng);

/// Adds `count` uniformly random spurious triples (relations drawn from
/// the existing vocabulary).
void AddNoiseTriples(Mmkg& kg, int64_t count, common::Rng& rng);

/// Adds N(0, stddev) noise to every present feature row of the modality.
void AddFeatureNoise(Mmkg& kg, Modality modality, double stddev,
                     common::Rng& rng);

/// Zero-pads the relation/text feature tables of both KGs to a shared
/// union width (source ids keep their columns, target-only ids map to
/// appended columns). Real KG pairs have disjoint tails of their schema
/// vocabularies; the models require equal feature dims across KGs. Visual
/// features must already agree (same encoder) — CHECK enforced.
void ReconcileFeatureDims(AlignedKgPair& pair);

}  // namespace desalign::kg

#endif  // DESALIGN_KG_PERTURB_H_
