#include "kg/io.h"

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/fault_injection.h"
#include "common/strings.h"
#include "tensor/tensor.h"

namespace desalign::kg {

namespace {

using common::Result;
using common::Status;
using tensor::Tensor;

// strtoll/strtof-based parsers: a non-numeric field in a hand-edited or
// corrupted file must surface as a Status, never as a std::invalid_argument
// crash (which is what std::stoll/std::stof would throw).
Status ParseIdField(const std::string& field, const std::string& path,
                    const std::string& line, int64_t* out) {
  if (!common::ParseInt64(common::Trim(field), out)) {
    return Status::IoError("non-numeric field '" + field + "' in " + path +
                           ": " + line);
  }
  return Status::Ok();
}

Status ParseValueField(const std::string& field, const std::string& path,
                       const std::string& line, float* out) {
  if (!common::ParseFloat(common::Trim(field), out)) {
    return Status::IoError("non-numeric field '" + field + "' in " + path +
                           ": " + line);
  }
  return Status::Ok();
}

// Fault hook shared by every writer in this file: crash-safety tests arm
// these sites (e.g. DESALIGN_FAULTS="io.write.triples:fail") to prove
// callers surface write failures as Status. Only the `fail` action is
// meaningful here; torn writes are exercised at the atomic_file layer.
Status CheckWriteFaultSite(const std::string& site, const std::string& path) {
  if (common::FaultInjector::Global().OnSite(site)) {
    return Status::IoError("injected fault at " + site + " writing " + path);
  }
  return Status::Ok();
}

Status WriteTriples(const std::string& path,
                    const std::vector<Triple>& triples) {
  DESALIGN_RETURN_NOT_OK(CheckWriteFaultSite("io.write.triples", path));
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  for (const auto& t : triples) {
    out << t.head << '\t' << t.relation << '\t' << t.tail << '\n';
  }
  return Status::Ok();
}

Result<std::vector<Triple>> ReadTriples(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  std::vector<Triple> triples;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    auto fields = common::Split(line, '\t');
    if (fields.size() != 3) {
      return Status::IoError("malformed triple line in " + path + ": " +
                             line);
    }
    Triple t;
    DESALIGN_RETURN_NOT_OK(ParseIdField(fields[0], path, line, &t.head));
    DESALIGN_RETURN_NOT_OK(ParseIdField(fields[1], path, line, &t.relation));
    DESALIGN_RETURN_NOT_OK(ParseIdField(fields[2], path, line, &t.tail));
    triples.push_back(t);
  }
  return triples;
}

Status WriteAttrTriples(const std::string& path,
                        const std::vector<AttributeTriple>& triples) {
  DESALIGN_RETURN_NOT_OK(CheckWriteFaultSite("io.write.attrs", path));
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  for (const auto& t : triples) {
    out << t.entity << '\t' << t.attribute << '\t' << t.count << '\n';
  }
  return Status::Ok();
}

Result<std::vector<AttributeTriple>> ReadAttrTriples(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  std::vector<AttributeTriple> triples;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    auto fields = common::Split(line, '\t');
    if (fields.size() != 3) {
      return Status::IoError("malformed attribute line in " + path + ": " +
                             line);
    }
    AttributeTriple t;
    DESALIGN_RETURN_NOT_OK(ParseIdField(fields[0], path, line, &t.entity));
    DESALIGN_RETURN_NOT_OK(ParseIdField(fields[1], path, line, &t.attribute));
    DESALIGN_RETURN_NOT_OK(ParseValueField(fields[2], path, line, &t.count));
    triples.push_back(t);
  }
  return triples;
}

Status WritePairs(const std::string& path,
                  const std::vector<AlignmentPair>& pairs) {
  DESALIGN_RETURN_NOT_OK(CheckWriteFaultSite("io.write.pairs", path));
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  for (const auto& p : pairs) {
    out << p.source << '\t' << p.target << '\n';
  }
  return Status::Ok();
}

Result<std::vector<AlignmentPair>> ReadPairs(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  std::vector<AlignmentPair> pairs;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    auto fields = common::Split(line, '\t');
    if (fields.size() != 2) {
      return Status::IoError("malformed pair line in " + path + ": " + line);
    }
    AlignmentPair p;
    DESALIGN_RETURN_NOT_OK(ParseIdField(fields[0], path, line, &p.source));
    DESALIGN_RETURN_NOT_OK(ParseIdField(fields[1], path, line, &p.target));
    pairs.push_back(p);
  }
  return pairs;
}

// Binary feature table: [int64 rows][int64 cols][rows*cols float32]
// [rows uint8 presence].
Status WriteFeatures(const std::string& path, const FeatureTable& table) {
  DESALIGN_RETURN_NOT_OK(CheckWriteFaultSite("io.write.features", path));
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  const int64_t rows = table.features->rows();
  const int64_t cols = table.features->cols();
  out.write(reinterpret_cast<const char*>(&rows), sizeof(rows));
  out.write(reinterpret_cast<const char*>(&cols), sizeof(cols));
  out.write(reinterpret_cast<const char*>(table.features->data().data()),
            static_cast<std::streamsize>(sizeof(float) * rows * cols));
  std::vector<uint8_t> mask(table.present.begin(), table.present.end());
  out.write(reinterpret_cast<const char*>(mask.data()),
            static_cast<std::streamsize>(mask.size()));
  if (!out) return Status::IoError("short write to " + path);
  return Status::Ok();
}

Result<FeatureTable> ReadFeatures(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  int64_t rows = 0;
  int64_t cols = 0;
  in.read(reinterpret_cast<char*>(&rows), sizeof(rows));
  in.read(reinterpret_cast<char*>(&cols), sizeof(cols));
  if (!in || rows <= 0 || cols <= 0) {
    return Status::IoError("corrupt feature header in " + path);
  }
  // Cap the header before trusting it with an allocation: a bit-flipped
  // rows/cols must fail cleanly, not bad_alloc (or overflow rows*cols).
  constexpr int64_t kMaxElements = int64_t{1} << 33;  // 32 GiB of floats
  if (cols > kMaxElements / rows) {
    return Status::IoError("implausible feature shape " +
                           std::to_string(rows) + "x" + std::to_string(cols) +
                           " in " + path + "; corrupt header?");
  }
  std::vector<float> data(static_cast<size_t>(rows * cols));
  in.read(reinterpret_cast<char*>(data.data()),
          static_cast<std::streamsize>(sizeof(float) * rows * cols));
  std::vector<uint8_t> mask(static_cast<size_t>(rows));
  in.read(reinterpret_cast<char*>(mask.data()),
          static_cast<std::streamsize>(mask.size()));
  if (!in) return Status::IoError("short read from " + path);
  FeatureTable table;
  table.features = Tensor::FromData(rows, cols, std::move(data));
  table.present.assign(mask.begin(), mask.end());
  return table;
}

Status SaveKg(const Mmkg& kg, const std::string& dir,
              const std::string& prefix) {
  DESALIGN_RETURN_NOT_OK(
      WriteTriples(dir + "/" + prefix + "_triples.tsv", kg.triples));
  DESALIGN_RETURN_NOT_OK(WriteAttrTriples(
      dir + "/" + prefix + "_attr_triples.tsv", kg.attribute_triples));
  DESALIGN_RETURN_NOT_OK(
      WriteFeatures(dir + "/" + prefix + "_rel.fbin", kg.relation_features));
  DESALIGN_RETURN_NOT_OK(
      WriteFeatures(dir + "/" + prefix + "_text.fbin", kg.text_features));
  DESALIGN_RETURN_NOT_OK(
      WriteFeatures(dir + "/" + prefix + "_vis.fbin", kg.visual_features));
  return Status::Ok();
}

Result<Mmkg> LoadKg(const std::string& dir, const std::string& prefix) {
  Mmkg kg;
  DESALIGN_ASSIGN_OR_RETURN(kg.triples,
                            ReadTriples(dir + "/" + prefix + "_triples.tsv"));
  DESALIGN_ASSIGN_OR_RETURN(
      kg.attribute_triples,
      ReadAttrTriples(dir + "/" + prefix + "_attr_triples.tsv"));
  DESALIGN_ASSIGN_OR_RETURN(kg.relation_features,
                            ReadFeatures(dir + "/" + prefix + "_rel.fbin"));
  DESALIGN_ASSIGN_OR_RETURN(kg.text_features,
                            ReadFeatures(dir + "/" + prefix + "_text.fbin"));
  DESALIGN_ASSIGN_OR_RETURN(kg.visual_features,
                            ReadFeatures(dir + "/" + prefix + "_vis.fbin"));
  kg.num_entities = kg.relation_features.num_entities();
  kg.num_relations = kg.relation_features.dim();
  kg.num_attributes = kg.text_features.dim();
  return kg;
}

}  // namespace

Status SaveDataset(const AlignedKgPair& pair, const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return Status::IoError("cannot create directory " + dir);
  {
    DESALIGN_RETURN_NOT_OK(
        CheckWriteFaultSite("io.write.meta", dir + "/meta.tsv"));
    std::ofstream meta(dir + "/meta.tsv");
    if (!meta) return Status::IoError("cannot write meta.tsv");
    meta << "name\t" << pair.name << '\n';
    meta << "src_name\t" << pair.source.name << '\n';
    meta << "tgt_name\t" << pair.target.name << '\n';
  }
  DESALIGN_RETURN_NOT_OK(SaveKg(pair.source, dir, "src"));
  DESALIGN_RETURN_NOT_OK(SaveKg(pair.target, dir, "tgt"));
  DESALIGN_RETURN_NOT_OK(
      WritePairs(dir + "/train_pairs.tsv", pair.train_pairs));
  DESALIGN_RETURN_NOT_OK(WritePairs(dir + "/test_pairs.tsv", pair.test_pairs));
  return Status::Ok();
}

Result<AlignedKgPair> LoadDataset(const std::string& dir) {
  AlignedKgPair pair;
  {
    std::ifstream meta(dir + "/meta.tsv");
    if (!meta) return Status::IoError("cannot open " + dir + "/meta.tsv");
    std::string line;
    while (std::getline(meta, line)) {
      auto fields = common::Split(line, '\t');
      if (fields.size() != 2) continue;
      if (fields[0] == "name") pair.name = fields[1];
      if (fields[0] == "src_name") pair.source.name = fields[1];
      if (fields[0] == "tgt_name") pair.target.name = fields[1];
    }
  }
  DESALIGN_ASSIGN_OR_RETURN(pair.source, LoadKg(dir, "src"));
  DESALIGN_ASSIGN_OR_RETURN(pair.target, LoadKg(dir, "tgt"));
  {
    // Preserve the names read from meta.tsv (LoadKg overwrote the struct).
    std::ifstream meta(dir + "/meta.tsv");
    std::string line;
    while (std::getline(meta, line)) {
      auto fields = common::Split(line, '\t');
      if (fields.size() != 2) continue;
      if (fields[0] == "src_name") pair.source.name = fields[1];
      if (fields[0] == "tgt_name") pair.target.name = fields[1];
    }
  }
  DESALIGN_ASSIGN_OR_RETURN(pair.train_pairs,
                            ReadPairs(dir + "/train_pairs.tsv"));
  DESALIGN_ASSIGN_OR_RETURN(pair.test_pairs,
                            ReadPairs(dir + "/test_pairs.tsv"));
  return pair;
}

}  // namespace desalign::kg
