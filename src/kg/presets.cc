#include "kg/presets.h"

namespace desalign::kg {

SyntheticSpec PresetFbDb15k() {
  SyntheticSpec s;
  s.name = "FBDB15K";
  s.seed = 101;
  s.num_entities = 600;
  s.num_clusters = 12;
  s.num_relations = 28;
  s.num_attributes = 56;
  s.relation_vocab_overlap = 0.5;
  s.attribute_vocab_overlap = 0.5;
  s.attrs_per_entity = 4.5;
  s.avg_degree = 7.0;
  s.edge_keep_prob = 0.92;
  s.extra_edge_ratio = 0.04;
  s.attr_keep_prob = 0.8;
  s.extra_attr_ratio = 0.12;
  s.visual_noise = 0.45;
  s.image_ratio = 0.9;
  s.text_ratio = 0.95;
  s.seed_ratio = 0.2;
  return s;
}

SyntheticSpec PresetFbYg15k() {
  SyntheticSpec s = PresetFbDb15k();
  s.name = "FBYG15K";
  s.seed = 102;
  // YAGO15K carries a very sparse schema: 32 relations, 7 attribute types.
  s.num_relations = 20;
  s.num_attributes = 16;
  s.attrs_per_entity = 2.5;
  s.attribute_vocab_overlap = 0.4;
  s.visual_noise = 0.5;
  s.image_ratio = 0.73;  // 73.24% of FBYG15K entities have images
  return s;
}

SyntheticSpec PresetDbp15k(Dbp15kLang lang) {
  SyntheticSpec s;
  s.num_entities = 600;
  s.num_clusters = 12;
  s.num_relations = 26;
  s.num_attributes = 64;
  s.attrs_per_entity = 6.0;
  s.avg_degree = 9.0;
  // Bilingual KGs: structurally and lexically more heterogeneous...
  s.edge_keep_prob = 0.80;
  s.extra_edge_ratio = 0.06;
  s.attr_keep_prob = 0.80;
  s.extra_attr_ratio = 0.12;
  s.relation_vocab_overlap = 0.35;
  s.attribute_vocab_overlap = 0.35;
  // ...but with markedly stronger modal features, matching DBP15K's much
  // higher absolute scores in the paper.
  s.visual_noise = 0.20;
  s.image_ratio = 0.75;
  s.text_ratio = 0.97;
  s.seed_ratio = 0.3;
  switch (lang) {
    case Dbp15kLang::kZhEn:
      s.name = "DBP15K-ZH-EN";
      s.seed = 111;
      s.visual_noise = 0.20;
      break;
    case Dbp15kLang::kJaEn:
      s.name = "DBP15K-JA-EN";
      s.seed = 112;
      s.visual_noise = 0.18;
      break;
    case Dbp15kLang::kFrEn:
      s.name = "DBP15K-FR-EN";
      s.seed = 113;
      // FR-EN is the easiest split in the paper.
      s.visual_noise = 0.15;
      s.attribute_vocab_overlap = 0.45;
      break;
  }
  return s;
}

std::vector<SyntheticSpec> AllPresets() {
  return {PresetFbDb15k(), PresetFbYg15k(), PresetDbp15k(Dbp15kLang::kZhEn),
          PresetDbp15k(Dbp15kLang::kJaEn), PresetDbp15k(Dbp15kLang::kFrEn)};
}

common::Result<SyntheticSpec> PresetByName(const std::string& name) {
  for (auto& spec : AllPresets()) {
    if (spec.name == name) return spec;
  }
  return common::Status::NotFound("no preset named '" + name + "'");
}

}  // namespace desalign::kg
