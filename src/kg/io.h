#ifndef DESALIGN_KG_IO_H_
#define DESALIGN_KG_IO_H_

#include <string>

#include "common/status.h"
#include "kg/mmkg.h"

namespace desalign::kg {

/// Persists a dataset into `dir` (created if necessary):
///   meta.tsv                       — names, sizes
///   {src,tgt}_triples.tsv          — head \t relation \t tail
///   {src,tgt}_attr_triples.tsv     — entity \t attribute \t count
///   {train,test}_pairs.tsv         — source \t target
///   {src,tgt}_{rel,text,vis}.fbin  — features (binary) + presence mask
common::Status SaveDataset(const AlignedKgPair& pair,
                           const std::string& dir);

/// Loads a dataset previously written by SaveDataset.
common::Result<AlignedKgPair> LoadDataset(const std::string& dir);

}  // namespace desalign::kg

#endif  // DESALIGN_KG_IO_H_
