#ifndef DESALIGN_KG_SYNTHETIC_H_
#define DESALIGN_KG_SYNTHETIC_H_

#include <cstdint>
#include <string>

#include "kg/mmkg.h"

namespace desalign::kg {

/// Controls for the synthetic MMKG pair generator. Two KGs are sampled as
/// noisy, partially overlapping views of one latent world (latent entity
/// vectors, a latent relation graph, a latent attribute assignment), which
/// is exactly the generative assumption behind real MMEA datasets: both
/// DBpedia and Freebase describe the same underlying entities with
/// different coverage. The semantic-inconsistency controls (`text_ratio`,
/// `image_ratio`) and the supervision control (`seed_ratio`) are the
/// variables every experiment of the paper sweeps.
struct SyntheticSpec {
  std::string name = "synthetic";
  uint64_t seed = 42;

  // ---- World ----
  int64_t num_entities = 700;   ///< per KG; aligned one-to-one
  int64_t num_clusters = 12;    ///< latent communities
  int64_t latent_dim = 24;      ///< dim of latent entity vectors
  double avg_degree = 6.0;      ///< latent graph mean degree
  double intra_cluster_prob = 0.7;  ///< edge endpoints share a cluster

  // ---- Schema ----
  int64_t num_relations = 24;        ///< latent relation types
  int64_t num_attributes = 48;       ///< latent attribute vocabulary
  double relation_vocab_overlap = 0.5;  ///< fraction of relation ids shared
                                        ///< across the two KGs
  double attribute_vocab_overlap = 0.5; ///< same for attributes
  double attrs_per_entity = 4.0;        ///< mean attributes per entity

  // ---- Per-KG heterogeneity (bilingual presets raise the noise) ----
  double edge_keep_prob = 0.9;    ///< latent edge survives in a given KG
  double extra_edge_ratio = 0.05; ///< per-KG spurious edges
  double attr_keep_prob = 0.85;   ///< latent attribute survives
  double extra_attr_ratio = 0.10; ///< per-KG spurious attributes

  // ---- Modal features ----
  int64_t visual_dim = 48;     ///< simulated visual-encoder output dim
  double visual_noise = 0.35;  ///< stddev of per-KG visual noise
  double image_ratio = 0.85;   ///< R_img: P(entity has an image)
  double text_ratio = 0.95;    ///< R_tex: P(entity keeps text attributes)

  // ---- Supervision ----
  double seed_ratio = 0.3;  ///< R_seed: fraction of pairs used as seeds
};

/// Samples an aligned MMKG pair from `spec`. Deterministic in `spec.seed`.
AlignedKgPair GenerateSyntheticPair(const SyntheticSpec& spec);

}  // namespace desalign::kg

#endif  // DESALIGN_KG_SYNTHETIC_H_
