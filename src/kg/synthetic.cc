#include "kg/synthetic.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "tensor/init.h"

namespace desalign::kg {

namespace {

using common::Rng;
using tensor::Tensor;
using tensor::TensorPtr;

// Latent world shared by both generated KGs.
struct LatentWorld {
  std::vector<int64_t> cluster;             // entity -> cluster id
  std::vector<std::vector<float>> z;        // entity -> latent vector
  std::vector<Triple> edges;                // latent relational triples
  std::vector<AttributeTriple> attributes;  // latent attribute triples
  TensorPtr visual_projection;              // latent_dim x visual_dim
};

LatentWorld BuildWorld(const SyntheticSpec& spec, Rng& rng) {
  LatentWorld w;
  const int64_t n = spec.num_entities;
  const int64_t k = spec.num_clusters;
  const int64_t l = spec.latent_dim;

  // Cluster centers and latent entity vectors.
  std::vector<std::vector<float>> centers(k, std::vector<float>(l));
  for (auto& c : centers) {
    for (auto& v : c) v = static_cast<float>(rng.Normal());
  }
  w.cluster.resize(n);
  w.z.assign(n, std::vector<float>(l));
  for (int64_t i = 0; i < n; ++i) {
    w.cluster[i] = rng.UniformInt(k);
    for (int64_t j = 0; j < l; ++j) {
      w.z[i][j] = centers[w.cluster[i]][j] +
                  0.4f * static_cast<float>(rng.Normal());
    }
  }

  // Cluster membership lists for intra-cluster edge sampling.
  std::vector<std::vector<int64_t>> members(k);
  for (int64_t i = 0; i < n; ++i) members[w.cluster[i]].push_back(i);

  // Latent relation graph: community-biased random edges with relation
  // types keyed (noisily) to the cluster pair, so relation bags carry
  // alignment signal.
  const int64_t num_edges =
      static_cast<int64_t>(spec.avg_degree * static_cast<double>(n) / 2.0);
  w.edges.reserve(num_edges);
  for (int64_t e = 0; e < num_edges; ++e) {
    const int64_t u = rng.UniformInt(n);
    int64_t v;
    if (rng.Bernoulli(spec.intra_cluster_prob) &&
        members[w.cluster[u]].size() > 1) {
      const auto& pool = members[w.cluster[u]];
      do {
        v = pool[rng.UniformInt(static_cast<int64_t>(pool.size()))];
      } while (v == u);
    } else {
      do {
        v = rng.UniformInt(n);
      } while (v == u);
    }
    int64_t rel;
    if (rng.Bernoulli(0.85)) {
      rel = (w.cluster[u] * 31 + w.cluster[v] * 7) % spec.num_relations;
    } else {
      rel = rng.UniformInt(spec.num_relations);
    }
    w.edges.push_back({u, rel, v});
  }

  // Latent attributes: each cluster prefers a small attribute subset.
  const int64_t prefs_per_cluster =
      std::max<int64_t>(3, spec.num_attributes / k + 2);
  std::vector<std::vector<int64_t>> prefs(k);
  for (int64_t c = 0; c < k; ++c) {
    prefs[c] = rng.SampleWithoutReplacement(spec.num_attributes,
                                            prefs_per_cluster);
  }
  for (int64_t i = 0; i < n; ++i) {
    // Geometric-ish count with the requested mean.
    int64_t count = 1;
    while (rng.Bernoulli(1.0 - 1.0 / spec.attrs_per_entity) && count < 16) {
      ++count;
    }
    for (int64_t a = 0; a < count; ++a) {
      int64_t attr;
      if (rng.Bernoulli(0.7)) {
        const auto& pool = prefs[w.cluster[i]];
        attr = pool[rng.UniformInt(static_cast<int64_t>(pool.size()))];
      } else {
        attr = rng.UniformInt(spec.num_attributes);
      }
      w.attributes.push_back({i, attr, 1.0f});
    }
  }

  // Shared "visual encoder": one projection used for both KGs, mirroring a
  // single pretrained ResNet applied to both datasets' images.
  w.visual_projection = Tensor::Create(l, spec.visual_dim);
  tensor::GlorotUniform(*w.visual_projection, rng);
  return w;
}

// Maps a latent vocabulary id into the union vocabulary of the two KGs:
// ids below the overlap threshold are shared; the rest are KG-specific.
struct VocabMap {
  int64_t shared = 0;  // ids [0, shared) are common
  int64_t latent_size = 0;

  int64_t union_size() const { return latent_size + (latent_size - shared); }

  int64_t Map(int64_t latent_id, int kg_index) const {
    if (latent_id < shared || kg_index == 0) return latent_id;
    return latent_size + (latent_id - shared);
  }
};

VocabMap MakeVocabMap(int64_t latent_size, double overlap) {
  VocabMap m;
  m.latent_size = latent_size;
  m.shared = std::clamp<int64_t>(
      static_cast<int64_t>(overlap * static_cast<double>(latent_size)), 0,
      latent_size);
  return m;
}

// log1p-normalized bag-of-X counts.
TensorPtr BagFeatures(int64_t n, int64_t dim,
                      const std::vector<std::pair<int64_t, int64_t>>& items) {
  auto t = Tensor::Create(n, dim);
  for (auto [entity, id] : items) {
    t->At(entity, id) += 1.0f;
  }
  for (auto& v : t->data()) v = std::log1p(v);
  return t;
}

Mmkg BuildKg(const SyntheticSpec& spec, const LatentWorld& world,
             const VocabMap& rel_vocab, const VocabMap& attr_vocab,
             int kg_index, const std::vector<int64_t>& id_map, Rng& rng) {
  const int64_t n = spec.num_entities;
  Mmkg kg;
  kg.name = spec.name + (kg_index == 0 ? "-src" : "-tgt");
  kg.num_entities = n;
  kg.num_relations = rel_vocab.union_size();
  kg.num_attributes = attr_vocab.union_size();

  // Relational triples: latent edges survive with edge_keep_prob, plus
  // KG-specific spurious edges.
  for (const auto& t : world.edges) {
    if (!rng.Bernoulli(spec.edge_keep_prob)) continue;
    kg.triples.push_back({id_map[t.head],
                          rel_vocab.Map(t.relation, kg_index),
                          id_map[t.tail]});
  }
  const int64_t extra_edges = static_cast<int64_t>(
      spec.extra_edge_ratio * static_cast<double>(world.edges.size()));
  for (int64_t e = 0; e < extra_edges; ++e) {
    const int64_t u = rng.UniformInt(n);
    int64_t v;
    do {
      v = rng.UniformInt(n);
    } while (v == u);
    kg.triples.push_back(
        {u, rel_vocab.Map(rng.UniformInt(spec.num_relations), kg_index), v});
  }

  // Attribute triples.
  for (const auto& a : world.attributes) {
    if (!rng.Bernoulli(spec.attr_keep_prob)) continue;
    kg.attribute_triples.push_back({id_map[a.entity],
                                    attr_vocab.Map(a.attribute, kg_index),
                                    a.count});
  }
  const int64_t extra_attrs = static_cast<int64_t>(
      spec.extra_attr_ratio * static_cast<double>(world.attributes.size()));
  for (int64_t e = 0; e < extra_attrs; ++e) {
    kg.attribute_triples.push_back(
        {rng.UniformInt(n),
         attr_vocab.Map(rng.UniformInt(spec.num_attributes), kg_index),
         1.0f});
  }

  // ---- Relation features: bag of incident relation types ----
  {
    std::vector<std::pair<int64_t, int64_t>> items;
    items.reserve(kg.triples.size() * 2);
    for (const auto& t : kg.triples) {
      items.emplace_back(t.head, t.relation);
      items.emplace_back(t.tail, t.relation);
    }
    kg.relation_features.features =
        BagFeatures(n, kg.num_relations, items);
    kg.relation_features.present.assign(n, false);
    for (const auto& t : kg.triples) {
      kg.relation_features.present[t.head] = true;
      kg.relation_features.present[t.tail] = true;
    }
  }

  // ---- Text features: bag of attributes, masked by R_tex ----
  {
    std::vector<std::pair<int64_t, int64_t>> items;
    items.reserve(kg.attribute_triples.size());
    for (const auto& a : kg.attribute_triples) {
      items.emplace_back(a.entity, a.attribute);
    }
    kg.text_features.features = BagFeatures(n, kg.num_attributes, items);
    kg.text_features.present.assign(n, false);
    for (int64_t i = 0; i < n; ++i) {
      kg.text_features.present[i] = rng.Bernoulli(spec.text_ratio);
    }
    // Zero out rows whose text modality is declared missing — the data
    // simply is not there for those entities.
    for (int64_t i = 0; i < n; ++i) {
      if (kg.text_features.present[i]) continue;
      for (int64_t j = 0; j < kg.num_attributes; ++j) {
        kg.text_features.features->At(i, j) = 0.0f;
      }
    }
  }

  // ---- Visual features: shared projection of the latent vector ----
  {
    auto feats = Tensor::Create(n, spec.visual_dim);
    kg.visual_features.present.assign(n, false);
    for (int64_t latent_id = 0; latent_id < n; ++latent_id) {
      const int64_t i = id_map[latent_id];
      kg.visual_features.present[i] = rng.Bernoulli(spec.image_ratio);
      if (!kg.visual_features.present[i]) continue;
      for (int64_t j = 0; j < spec.visual_dim; ++j) {
        float acc = 0.0f;
        for (int64_t p = 0; p < spec.latent_dim; ++p) {
          acc += world.z[latent_id][p] * world.visual_projection->At(p, j);
        }
        feats->At(i, j) =
            acc + static_cast<float>(rng.Normal(0.0, spec.visual_noise));
      }
    }
    kg.visual_features.features = std::move(feats);
  }
  return kg;
}

}  // namespace

AlignedKgPair GenerateSyntheticPair(const SyntheticSpec& spec) {
  DESALIGN_CHECK_GT(spec.num_entities, 1);
  DESALIGN_CHECK_GT(spec.num_relations, 0);
  DESALIGN_CHECK_GT(spec.num_attributes, 0);
  Rng rng(spec.seed);
  LatentWorld world = BuildWorld(spec, rng);

  const VocabMap rel_vocab =
      MakeVocabMap(spec.num_relations, spec.relation_vocab_overlap);
  const VocabMap attr_vocab =
      MakeVocabMap(spec.num_attributes, spec.attribute_vocab_overlap);

  // Source keeps latent ids; target ids are a random permutation so that no
  // index identity leaks across the graphs.
  const int64_t n = spec.num_entities;
  std::vector<int64_t> src_map(n);
  std::iota(src_map.begin(), src_map.end(), 0);
  std::vector<int64_t> tgt_map(n);
  std::iota(tgt_map.begin(), tgt_map.end(), 0);
  rng.Shuffle(tgt_map);

  AlignedKgPair pair;
  pair.name = spec.name;
  Rng src_rng = rng.Fork();
  Rng tgt_rng = rng.Fork();
  pair.source = BuildKg(spec, world, rel_vocab, attr_vocab, 0, src_map,
                        src_rng);
  pair.target = BuildKg(spec, world, rel_vocab, attr_vocab, 1, tgt_map,
                        tgt_rng);

  std::vector<AlignmentPair> all(n);
  for (int64_t i = 0; i < n; ++i) all[i] = {i, tgt_map[i]};
  rng.Shuffle(all);
  const int64_t n_train = std::max<int64_t>(
      1, static_cast<int64_t>(spec.seed_ratio * static_cast<double>(n)));
  pair.train_pairs.assign(all.begin(), all.begin() + n_train);
  pair.test_pairs.assign(all.begin() + n_train, all.end());
  return pair;
}

}  // namespace desalign::kg
