#ifndef DESALIGN_KG_MMKG_H_
#define DESALIGN_KG_MMKG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "tensor/tensor.h"

namespace desalign::kg {

/// The four entity modalities of the paper: graph structure (g), relations
/// (r), textual attributes (t) and vision (v).
enum class Modality { kGraph = 0, kRelation = 1, kText = 2, kVisual = 3 };
inline constexpr int kNumModalities = 4;

/// Short name used in logs and tables ("g", "r", "t", "v").
const char* ModalityName(Modality m);

/// All four modalities, in canonical order.
const std::vector<Modality>& AllModalities();

/// A relational triple (head, relation, tail).
struct Triple {
  int64_t head = 0;
  int64_t relation = 0;
  int64_t tail = 0;

  friend bool operator==(const Triple&, const Triple&) = default;
};

/// An attribute triple: entity `entity` carries textual attribute
/// `attribute` with bag-of-words count `count`.
struct AttributeTriple {
  int64_t entity = 0;
  int64_t attribute = 0;
  float count = 1.0f;

  friend bool operator==(const AttributeTriple&,
                         const AttributeTriple&) = default;
};

/// Dense per-entity feature matrix plus a presence mask. Entities whose
/// modality is absent (the semantic-inconsistency case the paper studies)
/// have `present[i] == false` and a zero feature row; how the gap is filled
/// is a *model* decision (predefined-distribution noise for the baselines,
/// semantic propagation for DESAlign).
struct FeatureTable {
  tensor::TensorPtr features;  ///< num_entities x dim (never null once built)
  std::vector<bool> present;   ///< size num_entities

  int64_t dim() const { return features ? features->cols() : 0; }
  int64_t num_entities() const {
    return static_cast<int64_t>(present.size());
  }
  /// Fraction of entities with the modality present.
  double PresentRatio() const;
  /// Number of entities with the modality present.
  int64_t PresentCount() const;
};

/// One multi-modal knowledge graph G = (E, R, A, V).
struct Mmkg {
  std::string name;
  int64_t num_entities = 0;
  int64_t num_relations = 0;
  int64_t num_attributes = 0;
  std::vector<Triple> triples;
  std::vector<AttributeTriple> attribute_triples;
  FeatureTable relation_features;  ///< bag-of-relations, always present
  FeatureTable text_features;     ///< bag-of-attributes, missing per R_tex
  FeatureTable visual_features;   ///< simulated visual encoder, per R_img

  /// Undirected entity graph induced by the relational triples.
  graph::Graph BuildGraph() const;

  /// Table lookup by modality (kGraph has no input features and returns
  /// nullptr).
  const FeatureTable* FeaturesFor(Modality m) const;
  FeatureTable* MutableFeaturesFor(Modality m);
};

/// A ground-truth alignment (source entity, target entity).
struct AlignmentPair {
  int64_t source = 0;
  int64_t target = 0;

  friend bool operator==(const AlignmentPair&,
                         const AlignmentPair&) = default;
};

/// A full MMEA dataset: two MMKGs plus seed and test alignments.
struct AlignedKgPair {
  std::string name;
  Mmkg source;
  Mmkg target;
  std::vector<AlignmentPair> train_pairs;  ///< seed alignments Φ'
  std::vector<AlignmentPair> test_pairs;   ///< evaluation alignments

  int64_t TotalPairs() const {
    return static_cast<int64_t>(train_pairs.size() + test_pairs.size());
  }
  /// Seed ratio R_seed = |train| / (|train| + |test|).
  double SeedRatio() const;

  /// Re-splits train/test to a new seed ratio, deterministically from
  /// `seed`. Used by the R_seed sweeps (Table IV, Fig. 3 right).
  void Resplit(double seed_ratio, uint64_t seed);
};

/// Per-KG statistics matching the columns of the paper's Table I.
struct KgStatistics {
  std::string name;
  int64_t entities = 0;
  int64_t relations = 0;
  int64_t attributes = 0;
  int64_t relation_triples = 0;
  int64_t attribute_triples = 0;
  int64_t images = 0;
};

KgStatistics ComputeStatistics(const Mmkg& kg);

}  // namespace desalign::kg

#endif  // DESALIGN_KG_MMKG_H_
