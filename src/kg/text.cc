#include "kg/text.h"

#include <algorithm>
#include <cctype>
#include <cmath>

#include "common/check.h"
#include "tensor/tensor.h"

namespace desalign::kg {

std::vector<std::string> Tokenize(std::string_view text) {
  std::vector<std::string> tokens;
  std::string current;
  for (char raw : text) {
    const unsigned char c = static_cast<unsigned char>(raw);
    if (std::isalnum(c)) {
      current.push_back(
          static_cast<char>(std::tolower(c)));
    } else if (!current.empty()) {
      tokens.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

void Vocabulary::Add(const std::string& token) {
  auto [it, inserted] = id_of_.try_emplace(
      token, static_cast<int64_t>(tokens_.size()));
  if (inserted) {
    tokens_.push_back(token);
    counts_.push_back(0);
  }
  ++counts_[it->second];
}

void Vocabulary::AddText(std::string_view text) {
  for (auto& token : Tokenize(text)) Add(token);
}

void Vocabulary::Prune(int64_t min_count, int64_t max_size) {
  DESALIGN_CHECK_GE(min_count, 0);
  DESALIGN_CHECK_GT(max_size, 0);
  std::vector<int64_t> keep;
  for (int64_t id = 0; id < size(); ++id) {
    if (counts_[id] >= min_count) keep.push_back(id);
  }
  std::sort(keep.begin(), keep.end(), [this](int64_t a, int64_t b) {
    if (counts_[a] != counts_[b]) return counts_[a] > counts_[b];
    return tokens_[a] < tokens_[b];
  });
  if (static_cast<int64_t>(keep.size()) > max_size) keep.resize(max_size);

  std::vector<std::string> new_tokens;
  std::vector<int64_t> new_counts;
  std::unordered_map<std::string, int64_t> new_ids;
  new_tokens.reserve(keep.size());
  for (int64_t old_id : keep) {
    new_ids[tokens_[old_id]] = static_cast<int64_t>(new_tokens.size());
    new_tokens.push_back(tokens_[old_id]);
    new_counts.push_back(counts_[old_id]);
  }
  tokens_ = std::move(new_tokens);
  counts_ = std::move(new_counts);
  id_of_ = std::move(new_ids);
}

int64_t Vocabulary::IdOf(const std::string& token) const {
  auto it = id_of_.find(token);
  return it == id_of_.end() ? -1 : it->second;
}

FeatureTable BuildBowFeatures(const std::vector<std::string>& documents,
                              const Vocabulary& vocabulary) {
  DESALIGN_CHECK_GT(vocabulary.size(), 0);
  const int64_t n = static_cast<int64_t>(documents.size());
  FeatureTable table;
  table.features = tensor::Tensor::Create(n, vocabulary.size());
  table.present.assign(n, false);
  for (int64_t i = 0; i < n; ++i) {
    for (const auto& token : Tokenize(documents[i])) {
      const int64_t id = vocabulary.IdOf(token);
      if (id < 0) continue;
      table.features->At(i, id) += 1.0f;
      table.present[i] = true;
    }
  }
  for (auto& v : table.features->data()) v = std::log1p(v);
  return table;
}

BowResult BuildBow(const std::vector<std::string>& documents,
                   int64_t min_count, int64_t max_vocab) {
  BowResult result;
  for (const auto& doc : documents) result.vocabulary.AddText(doc);
  result.vocabulary.Prune(min_count, max_vocab);
  result.features = BuildBowFeatures(documents, result.vocabulary);
  return result;
}

}  // namespace desalign::kg
