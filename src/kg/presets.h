#ifndef DESALIGN_KG_PRESETS_H_
#define DESALIGN_KG_PRESETS_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "kg/synthetic.h"

namespace desalign::kg {

/// Named generator presets mirroring the paper's five benchmark datasets
/// (Table I), scaled down so CPU training completes in seconds. Monolingual
/// presets (FBDB15K/FBYG15K) have consistent structure but weaker modal
/// features; bilingual presets (DBP15K) have noisier cross-KG structure but
/// stronger modal features — reproducing the paper's observation that DBP15K
/// scores higher overall while monolingual data profits from more semantic
/// propagation iterations.

/// FB15K–DB15K analogue: monolingual, rich attributes.
SyntheticSpec PresetFbDb15k();

/// FB15K–YAGO15K analogue: monolingual, very sparse attribute schema
/// (YAGO15K has only 7 attribute types), hence the hardest text modality.
SyntheticSpec PresetFbYg15k();

enum class Dbp15kLang { kZhEn, kJaEn, kFrEn };

/// DBP15K analogue for the given language pair: bilingual (low cross-KG
/// vocabulary overlap, noisier shared structure), strong visual features.
SyntheticSpec PresetDbp15k(Dbp15kLang lang);

/// All five presets in the paper's order: FBDB15K, FBYG15K, DBP15K-ZH-EN,
/// DBP15K-JA-EN, DBP15K-FR-EN.
std::vector<SyntheticSpec> AllPresets();

/// Lookup by name ("FBDB15K", "FBYG15K", "DBP15K-ZH-EN", "DBP15K-JA-EN",
/// "DBP15K-FR-EN").
common::Result<SyntheticSpec> PresetByName(const std::string& name);

}  // namespace desalign::kg

#endif  // DESALIGN_KG_PRESETS_H_
