#include "kg/mmkg.h"

#include <algorithm>

#include "common/check.h"
#include "common/rng.h"

namespace desalign::kg {

const char* ModalityName(Modality m) {
  switch (m) {
    case Modality::kGraph:
      return "g";
    case Modality::kRelation:
      return "r";
    case Modality::kText:
      return "t";
    case Modality::kVisual:
      return "v";
  }
  return "?";
}

const std::vector<Modality>& AllModalities() {
  static const std::vector<Modality>& all = *new std::vector<Modality>{
      Modality::kGraph, Modality::kRelation, Modality::kText,
      Modality::kVisual};
  return all;
}

double FeatureTable::PresentRatio() const {
  if (present.empty()) return 0.0;
  return static_cast<double>(PresentCount()) /
         static_cast<double>(present.size());
}

int64_t FeatureTable::PresentCount() const {
  return std::count(present.begin(), present.end(), true);
}

graph::Graph Mmkg::BuildGraph() const {
  std::vector<std::pair<int64_t, int64_t>> edges;
  edges.reserve(triples.size());
  for (const auto& t : triples) {
    edges.emplace_back(t.head, t.tail);
  }
  return graph::Graph(num_entities, std::move(edges));
}

const FeatureTable* Mmkg::FeaturesFor(Modality m) const {
  switch (m) {
    case Modality::kGraph:
      return nullptr;
    case Modality::kRelation:
      return &relation_features;
    case Modality::kText:
      return &text_features;
    case Modality::kVisual:
      return &visual_features;
  }
  return nullptr;
}

FeatureTable* Mmkg::MutableFeaturesFor(Modality m) {
  return const_cast<FeatureTable*>(
      static_cast<const Mmkg*>(this)->FeaturesFor(m));
}

double AlignedKgPair::SeedRatio() const {
  const int64_t total = TotalPairs();
  if (total == 0) return 0.0;
  return static_cast<double>(train_pairs.size()) /
         static_cast<double>(total);
}

void AlignedKgPair::Resplit(double seed_ratio, uint64_t seed) {
  DESALIGN_CHECK(seed_ratio > 0.0 && seed_ratio < 1.0);
  std::vector<AlignmentPair> all = train_pairs;
  all.insert(all.end(), test_pairs.begin(), test_pairs.end());
  // Deterministic canonical order before shuffling so the result does not
  // depend on the previous split.
  std::sort(all.begin(), all.end(),
            [](const AlignmentPair& a, const AlignmentPair& b) {
              return a.source < b.source;
            });
  common::Rng rng(seed);
  rng.Shuffle(all);
  const int64_t n_train = std::max<int64_t>(
      1, static_cast<int64_t>(seed_ratio * static_cast<double>(all.size())));
  train_pairs.assign(all.begin(), all.begin() + n_train);
  test_pairs.assign(all.begin() + n_train, all.end());
}

KgStatistics ComputeStatistics(const Mmkg& kg) {
  KgStatistics s;
  s.name = kg.name;
  s.entities = kg.num_entities;
  s.relations = kg.num_relations;
  s.attributes = kg.num_attributes;
  s.relation_triples = static_cast<int64_t>(kg.triples.size());
  s.attribute_triples = static_cast<int64_t>(kg.attribute_triples.size());
  s.images = kg.visual_features.PresentCount();
  return s;
}

}  // namespace desalign::kg
