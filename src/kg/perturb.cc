#include "kg/perturb.h"

#include <algorithm>

#include "common/check.h"

namespace desalign::kg {

void DropModalityFeatures(Mmkg& kg, Modality modality, double keep_ratio,
                          common::Rng& rng) {
  DESALIGN_CHECK(keep_ratio >= 0.0 && keep_ratio <= 1.0);
  FeatureTable* table = kg.MutableFeaturesFor(modality);
  DESALIGN_CHECK_MSG(table != nullptr,
                     "graph structure has no feature table to drop");
  const int64_t n = table->num_entities();
  const int64_t dim = table->dim();
  for (int64_t i = 0; i < n; ++i) {
    if (!table->present[i]) continue;
    if (rng.Bernoulli(keep_ratio)) continue;
    table->present[i] = false;
    for (int64_t j = 0; j < dim; ++j) table->features->At(i, j) = 0.0f;
  }
}

void DropModalityFeatures(AlignedKgPair& pair, Modality modality,
                          double keep_ratio, common::Rng& rng) {
  DropModalityFeatures(pair.source, modality, keep_ratio, rng);
  DropModalityFeatures(pair.target, modality, keep_ratio, rng);
}

void DropTriples(Mmkg& kg, double keep_ratio, common::Rng& rng) {
  DESALIGN_CHECK(keep_ratio >= 0.0 && keep_ratio <= 1.0);
  std::vector<Triple> kept;
  kept.reserve(kg.triples.size());
  for (const auto& t : kg.triples) {
    if (rng.Bernoulli(keep_ratio)) kept.push_back(t);
  }
  kg.triples = std::move(kept);
}

void AddNoiseTriples(Mmkg& kg, int64_t count, common::Rng& rng) {
  DESALIGN_CHECK_GT(kg.num_entities, 1);
  DESALIGN_CHECK_GT(kg.num_relations, 0);
  for (int64_t i = 0; i < count; ++i) {
    const int64_t head = rng.UniformInt(kg.num_entities);
    int64_t tail;
    do {
      tail = rng.UniformInt(kg.num_entities);
    } while (tail == head);
    kg.triples.push_back({head, rng.UniformInt(kg.num_relations), tail});
  }
}

void AddFeatureNoise(Mmkg& kg, Modality modality, double stddev,
                     common::Rng& rng) {
  FeatureTable* table = kg.MutableFeaturesFor(modality);
  DESALIGN_CHECK_MSG(table != nullptr,
                     "graph structure has no feature table to perturb");
  const int64_t n = table->num_entities();
  const int64_t dim = table->dim();
  for (int64_t i = 0; i < n; ++i) {
    if (!table->present[i]) continue;
    for (int64_t j = 0; j < dim; ++j) {
      table->features->At(i, j) +=
          static_cast<float>(rng.Normal(0.0, stddev));
    }
  }
}

namespace {

// Zero-pads a feature table to `width` columns (no-op when already wide
// enough). Offset shifts the existing columns (used for the target KG so
// its private vocabulary lands after the source's).
void PadFeatureTable(FeatureTable& table, int64_t width, int64_t offset) {
  DESALIGN_CHECK_LE(table.dim() + offset, width);
  if (table.dim() == width && offset == 0) return;
  auto padded =
      tensor::Tensor::Create(table.num_entities(), width);
  for (int64_t i = 0; i < table.num_entities(); ++i) {
    for (int64_t j = 0; j < table.dim(); ++j) {
      padded->At(i, j + offset) = table.features->At(i, j);
    }
  }
  table.features = std::move(padded);
}

}  // namespace

void ReconcileFeatureDims(AlignedKgPair& pair) {
  DESALIGN_CHECK_MSG(pair.source.visual_features.dim() ==
                         pair.target.visual_features.dim(),
                     "visual dims must agree (same visual encoder)");
  // Relation and text vocabularies: concatenate the two id spaces. The
  // source keeps columns [0, d_src); the target occupies [d_src, d_src +
  // d_tgt). If the dims already match we assume a shared vocabulary and
  // leave both untouched.
  auto reconcile = [](FeatureTable& src, FeatureTable& tgt,
                      int64_t& src_count, int64_t& tgt_count) {
    if (src.dim() == tgt.dim()) return;
    const int64_t width = src.dim() + tgt.dim();
    const int64_t src_dim = src.dim();
    PadFeatureTable(src, width, /*offset=*/0);
    PadFeatureTable(tgt, width, /*offset=*/src_dim);
    src_count = width;
    tgt_count = width;
  };
  reconcile(pair.source.relation_features, pair.target.relation_features,
            pair.source.num_relations, pair.target.num_relations);
  reconcile(pair.source.text_features, pair.target.text_features,
            pair.source.num_attributes, pair.target.num_attributes);
}

}  // namespace desalign::kg
