#include "eval/csv.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "common/fault_injection.h"
#include "common/strings.h"

namespace desalign::eval {

std::string CsvEscape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += "\"";
  return out;
}

void CsvRecorder::AddRow(const std::map<std::string, std::string>& cells) {
  for (const auto& [key, value] : cells) {
    (void)value;
    if (std::find(columns_.begin(), columns_.end(), key) == columns_.end()) {
      columns_.push_back(key);
    }
  }
  rows_.push_back(cells);
}

void CsvRecorder::AddResult(const std::string& method,
                            const std::string& dataset,
                            const align::EvalResult& result,
                            const std::map<std::string, std::string>& extra) {
  std::map<std::string, std::string> cells = {
      {"method", method},
      {"dataset", dataset},
      {"h_at_1", common::FormatDouble(result.metrics.h_at_1, 4)},
      {"h_at_5", common::FormatDouble(result.metrics.h_at_5, 4)},
      {"h_at_10", common::FormatDouble(result.metrics.h_at_10, 4)},
      {"mrr", common::FormatDouble(result.metrics.mrr, 4)},
      {"train_seconds", common::FormatDouble(result.train_seconds, 3)},
      {"decode_seconds", common::FormatDouble(result.decode_seconds, 3)},
  };
  for (const auto& [key, value] : extra) cells[key] = value;
  AddRow(cells);
}

std::string CsvRecorder::ToString() const {
  std::ostringstream os;
  for (size_t c = 0; c < columns_.size(); ++c) {
    if (c) os << ',';
    os << CsvEscape(columns_[c]);
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (size_t c = 0; c < columns_.size(); ++c) {
      if (c) os << ',';
      auto it = row.find(columns_[c]);
      if (it != row.end()) os << CsvEscape(it->second);
    }
    os << '\n';
  }
  return os.str();
}

common::Status CsvRecorder::WriteFile(const std::string& path) const {
  // Fault site for crash-safety tests (DESALIGN_FAULTS="csv.write:fail").
  if (common::FaultInjector::Global().OnSite("csv.write")) {
    return common::Status::IoError("injected fault at csv.write writing " +
                                   path);
  }
  std::ofstream out(path);
  if (!out) {
    return common::Status::IoError("cannot open " + path + " for writing");
  }
  out << ToString();
  if (!out) return common::Status::IoError("short write to " + path);
  return common::Status::Ok();
}

}  // namespace desalign::eval
