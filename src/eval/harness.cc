#include "eval/harness.h"

#include "align/fusion_model.h"
#include "align/metrics.h"
#include "baselines/fusion_baselines.h"
#include "baselines/gcn_align.h"
#include "baselines/poe.h"
#include "baselines/transe.h"
#include "common/check.h"
#include "common/stopwatch.h"
#include "core/desalign.h"

namespace desalign::eval {

using align::AlignmentMethod;

HarnessSettings& GlobalHarnessSettings() {
  static HarnessSettings& settings = *new HarnessSettings();
  return settings;
}

namespace {

align::FusionModelConfig Tuned(align::FusionModelConfig cfg) {
  const auto& s = GlobalHarnessSettings();
  cfg.dim = s.dim;
  cfg.epochs = s.epochs;
  return cfg;
}

std::unique_ptr<AlignmentMethod> MakeDesalign(uint64_t seed) {
  auto cfg = core::DesalignConfig::Default(seed);
  cfg.base = Tuned(std::move(cfg.base));
  cfg.propagation_iterations =
      GlobalHarnessSettings().propagation_iterations;
  return std::make_unique<core::DesalignModel>(std::move(cfg));
}

}  // namespace

std::vector<NamedFactory> ProminentMethods() {
  return {
      {"EVA",
       [](uint64_t s) {
         return std::make_unique<align::FusionAlignModel>(
             Tuned(baselines::EvaConfig(s)));
       }},
      {"MCLEA",
       [](uint64_t s) {
         return std::make_unique<align::FusionAlignModel>(
             Tuned(baselines::McleaConfig(s)));
       }},
      {"MEAformer",
       [](uint64_t s) {
         return std::make_unique<align::FusionAlignModel>(
             Tuned(baselines::MeaformerConfig(s)));
       }},
      {"DESAlign", MakeDesalign},
  };
}

std::vector<NamedFactory> AllBasicMethods() {
  const auto transe_epochs = [] {
    return GlobalHarnessSettings().epochs / 2 + 10;
  };
  std::vector<NamedFactory> methods = {
      {"TransE",
       [transe_epochs](uint64_t s) {
         baselines::TranseConfig cfg;
         cfg.seed = s;
         cfg.dim = GlobalHarnessSettings().dim;
         cfg.epochs = transe_epochs();
         return std::make_unique<baselines::TranseModel>(cfg);
       }},
      {"IPTransE",
       [transe_epochs](uint64_t s) {
         baselines::TranseConfig cfg = baselines::IpTranseConfig(s);
         cfg.dim = GlobalHarnessSettings().dim;
         cfg.epochs = transe_epochs();
         return std::make_unique<baselines::TranseModel>(cfg);
       }},
      {"PoE",
       [](uint64_t s) {
         baselines::PoeConfig cfg;
         cfg.seed = s;
         return std::make_unique<baselines::PoeModel>(cfg);
       }},
      {"GCN-align",
       [](uint64_t s) {
         baselines::GcnAlignConfig cfg;
         cfg.seed = s;
         cfg.dim = GlobalHarnessSettings().dim;
         cfg.epochs = GlobalHarnessSettings().epochs;
         return std::make_unique<baselines::GcnAlignModel>(cfg);
       }},
      {"AttrGNN",
       [](uint64_t s) {
         baselines::GcnAlignConfig cfg = baselines::AttrGnnConfig(s);
         cfg.dim = GlobalHarnessSettings().dim;
         cfg.epochs = GlobalHarnessSettings().epochs;
         return std::make_unique<baselines::GcnAlignModel>(cfg);
       }},
      {"MMEA",
       [](uint64_t s) {
         return std::make_unique<align::FusionAlignModel>(
             Tuned(baselines::MmeaConfig(s)));
       }},
  };
  for (auto& f : ProminentMethods()) methods.push_back(std::move(f));
  return methods;
}

align::EvalResult RunCell(const NamedFactory& factory,
                          const kg::AlignedKgPair& data, uint64_t seed,
                          bool iterative,
                          const align::IterativeConfig& iter_config,
                          bool csls) {
  auto method = factory.make(seed);
  align::EvalResult result;
  common::Stopwatch watch;
  method->Fit(data);
  if (iterative) {
    // The iterative strategy applies to the fusion family; other methods
    // fall back to their base fit.
    auto* fusion = dynamic_cast<align::FusionAlignModel*>(method.get());
    if (fusion != nullptr) {
      align::RunIterativeRefinement(*fusion, data, iter_config);
    }
  }
  result.train_seconds = watch.ElapsedSeconds();
  watch.Reset();
  auto sim = method->DecodeSimilarity(data);
  if (csls) align::ApplyCsls(*sim);
  result.decode_seconds = watch.ElapsedSeconds();
  result.metrics = align::MetricsFromSimilarity(*sim);
  return result;
}

}  // namespace desalign::eval
