#ifndef DESALIGN_EVAL_CSV_H_
#define DESALIGN_EVAL_CSV_H_

#include <map>
#include <string>
#include <vector>

#include "align/method.h"
#include "common/status.h"

namespace desalign::eval {

/// Accumulates experiment rows and exports them as RFC-4180-ish CSV
/// (quotes fields containing commas/quotes/newlines). Used by the CLI to
/// make sweeps machine-readable.
class CsvRecorder {
 public:
  /// Column order is fixed by the first row; later rows may add columns
  /// (earlier rows export empty cells for them).
  void AddRow(const std::map<std::string, std::string>& cells);

  /// Convenience: one row from a method/dataset evaluation.
  void AddResult(const std::string& method, const std::string& dataset,
                 const align::EvalResult& result,
                 const std::map<std::string, std::string>& extra = {});

  size_t num_rows() const { return rows_.size(); }

  /// Serializes header + rows.
  std::string ToString() const;

  /// Writes to `path`.
  common::Status WriteFile(const std::string& path) const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::map<std::string, std::string>> rows_;
};

/// Escapes one CSV field.
std::string CsvEscape(const std::string& field);

}  // namespace desalign::eval

#endif  // DESALIGN_EVAL_CSV_H_
