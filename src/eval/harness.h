#ifndef DESALIGN_EVAL_HARNESS_H_
#define DESALIGN_EVAL_HARNESS_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "align/iterative.h"
#include "align/method.h"
#include "kg/mmkg.h"

namespace desalign::eval {

/// Process-wide knobs the method factories honour, letting benchmark
/// binaries trade fidelity for wall-clock without touching each config.
struct HarnessSettings {
  int64_t dim = 32;
  int epochs = 60;
  /// DESAlign semantic-propagation iterations n_p; the paper uses 1 for
  /// bilingual and 2–3 for monolingual data (Fig. 4).
  int propagation_iterations = 2;
};

/// Mutable singleton consulted by the factories below.
HarnessSettings& GlobalHarnessSettings();

/// Creates a fresh method instance (models are single-use: one Fit per
/// dataset cell).
using MethodFactory =
    std::function<std::unique_ptr<align::AlignmentMethod>(uint64_t seed)>;

struct NamedFactory {
  std::string name;
  MethodFactory make;
};

/// The fusion-family lineup used in Tables II/III and Fig. 3 right:
/// EVA, MCLEA, MEAformer, DESAlign.
std::vector<NamedFactory> ProminentMethods();

/// The full Table IV lineup: TransE, GCN-align, EVA, MCLEA, MEAformer,
/// DESAlign.
std::vector<NamedFactory> AllBasicMethods();

/// One table cell: run a method on a dataset, optionally with the iterative
/// strategy and/or CSLS-corrected decoding, and report metrics + timings.
align::EvalResult RunCell(const NamedFactory& factory,
                          const kg::AlignedKgPair& data, uint64_t seed,
                          bool iterative = false,
                          const align::IterativeConfig& iter_config = {},
                          bool csls = false);

}  // namespace desalign::eval

#endif  // DESALIGN_EVAL_HARNESS_H_
