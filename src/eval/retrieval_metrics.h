#ifndef DESALIGN_EVAL_RETRIEVAL_METRICS_H_
#define DESALIGN_EVAL_RETRIEVAL_METRICS_H_

#include <cstdint>
#include <vector>

namespace desalign::eval {

/// Retrieval-quality metrics over per-query ranked id lists, shared by the
/// index and quantization benches (src/index/*_bench.cc). They operate on
/// raw id lists rather than serve::TopKResult so eval stays below serve in
/// the dependency graph.

/// Mean recall@k of `got` against `truth`: per query, the fraction of the
/// truth ids that appear anywhere in the retrieved list, averaged over
/// queries. An empty truth list counts as recall 1 (nothing to find);
/// empty input overall returns 1.
double MeanRecallAtK(const std::vector<std::vector<int64_t>>& truth,
                     const std::vector<std::vector<int64_t>>& got);

/// Fraction of queries whose rank-1 id agrees with the truth's rank-1 id —
/// the serving-side analogue of Hits@1: how often the quantized path names
/// the same best entity as the fp32 reference. Queries with an empty truth
/// list count as agreeing; empty input overall returns 1.
double HitsAt1Agreement(const std::vector<std::vector<int64_t>>& truth,
                        const std::vector<std::vector<int64_t>>& got);

}  // namespace desalign::eval

#endif  // DESALIGN_EVAL_RETRIEVAL_METRICS_H_
