#include "eval/retrieval_metrics.h"

#include <algorithm>

#include "common/check.h"

namespace desalign::eval {

double MeanRecallAtK(const std::vector<std::vector<int64_t>>& truth,
                     const std::vector<std::vector<int64_t>>& got) {
  DESALIGN_CHECK_EQ(truth.size(), got.size());
  if (truth.empty()) return 1.0;
  double total = 0.0;
  for (size_t i = 0; i < truth.size(); ++i) {
    if (truth[i].empty()) {
      total += 1.0;
      continue;
    }
    // Both id lists are small (k entries); count the overlap directly.
    int64_t hit = 0;
    for (const int64_t id : got[i]) {
      if (std::find(truth[i].begin(), truth[i].end(), id) !=
          truth[i].end()) {
        ++hit;
      }
    }
    total +=
        static_cast<double>(hit) / static_cast<double>(truth[i].size());
  }
  return total / static_cast<double>(truth.size());
}

double HitsAt1Agreement(const std::vector<std::vector<int64_t>>& truth,
                        const std::vector<std::vector<int64_t>>& got) {
  DESALIGN_CHECK_EQ(truth.size(), got.size());
  if (truth.empty()) return 1.0;
  int64_t agree = 0;
  for (size_t i = 0; i < truth.size(); ++i) {
    if (truth[i].empty()) {
      ++agree;
      continue;
    }
    if (!got[i].empty() && got[i][0] == truth[i][0]) ++agree;
  }
  return static_cast<double>(agree) / static_cast<double>(truth.size());
}

}  // namespace desalign::eval
