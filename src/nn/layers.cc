#include "nn/layers.h"

#include <cmath>
#include <memory>

#include "common/check.h"
#include "tensor/init.h"

namespace desalign::nn {

namespace ops = desalign::tensor;
using tensor::TensorPtr;

Linear::Linear(int64_t in_dim, int64_t out_dim, common::Rng& rng,
               bool with_bias) {
  weight_ = AddParameter("weight", in_dim, out_dim);
  tensor::GlorotUniform(*weight_, rng);
  if (with_bias) {
    bias_ = AddParameter("bias", 1, out_dim);
  }
}

TensorPtr Linear::Forward(const TensorPtr& x) const {
  auto y = ops::MatMul(x, weight_);
  if (bias_) y = ops::AddRowVector(y, bias_);
  return y;
}

GatLayer::GatLayer(int64_t dim, int64_t num_heads, common::Rng& rng)
    : dim_(dim), num_heads_(num_heads), head_dim_(dim / num_heads) {
  DESALIGN_CHECK_EQ(head_dim_ * num_heads_, dim_);
  w_diag_ = AddParameter("w_diag", 1, dim_);
  tensor::FillConstant(*w_diag_, 1.0f);
  for (int64_t h = 0; h < num_heads_; ++h) {
    attn_src_.push_back(AddParameter("attn_src", head_dim_, 1));
    attn_dst_.push_back(AddParameter("attn_dst", head_dim_, 1));
    tensor::GlorotUniform(*attn_src_.back(), rng);
    tensor::GlorotUniform(*attn_dst_.back(), rng);
  }
}

TensorPtr GatLayer::Forward(const TensorPtr& x,
                            const graph::Graph::DirectedEdges& edges,
                            int64_t num_nodes) const {
  DESALIGN_CHECK_EQ(x->rows(), num_nodes);
  DESALIGN_CHECK_EQ(x->cols(), dim_);
  auto h = ops::MulRowVector(x, w_diag_);
  auto h_src = ops::GatherRows(h, edges.src);
  auto h_dst = ops::GatherRows(h, edges.dst);
  std::vector<TensorPtr> head_outputs;
  head_outputs.reserve(num_heads_);
  for (int64_t k = 0; k < num_heads_; ++k) {
    auto hs = ops::SliceCols(h_src, k * head_dim_, head_dim_);
    auto hd = ops::SliceCols(h_dst, k * head_dim_, head_dim_);
    auto score = ops::LeakyRelu(
        ops::Add(ops::MatMul(hs, attn_src_[k]), ops::MatMul(hd, attn_dst_[k])),
        0.2f);
    auto alpha = ops::SegmentSoftmax(score, edges.dst, num_nodes);
    auto messages = ops::MulColVector(hs, alpha);
    head_outputs.push_back(ops::SegmentSum(messages, edges.dst, num_nodes));
  }
  return num_heads_ == 1 ? head_outputs[0] : ops::ConcatCols(head_outputs);
}

GatEncoder::GatEncoder(int64_t dim, int64_t num_heads, int64_t num_layers,
                       common::Rng& rng) {
  DESALIGN_CHECK_GT(num_layers, 0);
  for (int64_t l = 0; l < num_layers; ++l) {
    layers_.push_back(std::make_unique<GatLayer>(dim, num_heads, rng));
    AddChild(layers_.back().get());
  }
}

TensorPtr GatEncoder::Forward(const TensorPtr& x,
                              const graph::Graph::DirectedEdges& edges,
                              int64_t num_nodes) const {
  TensorPtr h = x;
  for (size_t l = 0; l < layers_.size(); ++l) {
    h = layers_[l]->Forward(h, edges, num_nodes);
    if (l + 1 < layers_.size()) h = ops::LeakyRelu(h, 0.2f);
  }
  return h;
}

CrossModalAttention::CrossModalAttention(int64_t dim, int64_t num_modalities,
                                         int64_t num_heads, common::Rng& rng)
    : dim_(dim),
      num_modalities_(num_modalities),
      num_heads_(num_heads),
      head_dim_(dim / num_heads) {
  DESALIGN_CHECK_EQ(head_dim_ * num_heads_, dim_);
  for (int64_t h = 0; h < num_heads_; ++h) {
    w_query_.push_back(AddParameter("w_q", dim_, head_dim_));
    w_key_.push_back(AddParameter("w_k", dim_, head_dim_));
    w_value_.push_back(AddParameter("w_v", dim_, head_dim_));
    tensor::GlorotUniform(*w_query_.back(), rng);
    tensor::GlorotUniform(*w_key_.back(), rng);
    tensor::GlorotUniform(*w_value_.back(), rng);
  }
  w_output_ = AddParameter("w_o", dim_, dim_);
  tensor::GlorotUniform(*w_output_, rng);
  ln1_gamma_ = AddParameter("ln1_gamma", 1, dim_);
  ln1_beta_ = AddParameter("ln1_beta", 1, dim_);
  tensor::FillConstant(*ln1_gamma_, 1.0f);
  const int64_t ffn_dim = dim_;
  ffn_w1_ = AddParameter("ffn_w1", dim_, ffn_dim);
  ffn_b1_ = AddParameter("ffn_b1", 1, ffn_dim);
  ffn_w2_ = AddParameter("ffn_w2", ffn_dim, dim_);
  ffn_b2_ = AddParameter("ffn_b2", 1, dim_);
  tensor::GlorotUniform(*ffn_w1_, rng);
  tensor::GlorotUniform(*ffn_w2_, rng);
  ln2_gamma_ = AddParameter("ln2_gamma", 1, dim_);
  ln2_beta_ = AddParameter("ln2_beta", 1, dim_);
  tensor::FillConstant(*ln2_gamma_, 1.0f);
}

CrossModalOutput CrossModalAttention::Forward(
    const std::vector<TensorPtr>& inputs) const {
  DESALIGN_CHECK_EQ(static_cast<int64_t>(inputs.size()), num_modalities_);
  const int64_t m_count = num_modalities_;
  const float inv_sqrt_dh = 1.0f / std::sqrt(static_cast<float>(head_dim_));

  // beta_sums[m] accumulates, per entity, the attention mass modality m
  // receives as a key from every query modality and head (Eq. 13; the sum
  // over the query axis — summing over the softmax axis would be
  // identically 1 and carry no signal).
  std::vector<TensorPtr> beta_sums(m_count);
  // attended[m][h]: per-head attention output for modality m.
  std::vector<std::vector<TensorPtr>> attended(m_count);

  for (int64_t h = 0; h < num_heads_; ++h) {
    std::vector<TensorPtr> queries(m_count), keys(m_count), values(m_count);
    for (int64_t m = 0; m < m_count; ++m) {
      queries[m] = ops::MatMul(inputs[m], w_query_[h]);
      keys[m] = ops::MatMul(inputs[m], w_key_[h]);
      values[m] = ops::MatMul(inputs[m], w_value_[h]);
    }
    for (int64_t m = 0; m < m_count; ++m) {
      // Per-entity logits over target modalities j (Eq. 10).
      std::vector<TensorPtr> logit_cols(m_count);
      for (int64_t j = 0; j < m_count; ++j) {
        logit_cols[j] =
            ops::Scale(ops::RowDot(queries[m], keys[j]), inv_sqrt_dh);
      }
      auto beta = ops::RowSoftmax(ops::ConcatCols(logit_cols));  // n x M
      // Weighted sum of values (Eq. 9, inner sum).
      TensorPtr acc;
      for (int64_t j = 0; j < m_count; ++j) {
        auto weighted =
            ops::MulColVector(values[j], ops::SliceCols(beta, j, 1));
        acc = acc ? ops::Add(acc, weighted) : weighted;
      }
      attended[m].push_back(acc);
      for (int64_t j = 0; j < m_count; ++j) {
        auto col = ops::SliceCols(beta, j, 1);
        beta_sums[j] = beta_sums[j] ? ops::Add(beta_sums[j], col) : col;
      }
    }
  }

  CrossModalOutput out;
  out.fused.reserve(m_count);
  for (int64_t m = 0; m < m_count; ++m) {
    auto att = num_heads_ == 1 ? attended[m][0]
                               : ops::ConcatCols(attended[m]);
    att = ops::MatMul(att, w_output_);
    // LayerNorm + residual (Eq. 11).
    auto h1 = ops::LayerNorm(ops::Add(att, inputs[m]), ln1_gamma_, ln1_beta_);
    out.fused_mid.push_back(h1);
    // FFN + residual + LayerNorm (Eq. 12).
    auto ff = ops::AddRowVector(
        ops::MatMul(ops::Relu(ops::AddRowVector(ops::MatMul(h1, ffn_w1_),
                                                ffn_b1_)),
                    ffn_w2_),
        ffn_b2_);
    out.fused.push_back(ops::LayerNorm(ops::Add(ff, h1), ln2_gamma_,
                                       ln2_beta_));
  }

  // Modal confidence (Eq. 13): softmax over modalities of the scaled
  // accumulated attention mass each modality receives as a query.
  const float scale =
      1.0f / std::sqrt(static_cast<float>(m_count * num_heads_));
  std::vector<TensorPtr> conf_cols(m_count);
  for (int64_t m = 0; m < m_count; ++m) {
    conf_cols[m] = ops::Scale(beta_sums[m], scale);
  }
  out.confidence = ops::RowSoftmax(ops::ConcatCols(conf_cols));
  return out;
}

}  // namespace desalign::nn
