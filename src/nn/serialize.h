#ifndef DESALIGN_NN_SERIALIZE_H_
#define DESALIGN_NN_SERIALIZE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "tensor/tensor.h"

namespace desalign::nn {

/// Writes a parameter list to `path` (binary: magic, count, then per-tensor
/// rows/cols/float32 data). Order matters: the same module construction
/// order must be used when loading.
common::Status SaveParameters(const std::vector<tensor::TensorPtr>& params,
                              const std::string& path);

/// Loads parameters saved by SaveParameters into `params` in order.
/// Fails (without partial writes) when the count or any shape mismatches.
common::Status LoadParameters(const std::vector<tensor::TensorPtr>& params,
                              const std::string& path);

/// Loads every tensor of a SaveParameters checkpoint, discovering count
/// and shapes from the file — the entry point for consumers (e.g.
/// serve::EmbeddingStore) that have no model to dictate shapes. Sniffs the
/// magic: legacy DESALIGNPARAMS1 files are read directly, while versioned
/// v2/v3 checkpoints (nn/checkpoint.h) are routed through LoadCheckpoint,
/// so dtype-tagged v3 records come back transparently dequantized to
/// float32. Corrupt, truncated or implausible headers produce a clean
/// error Status, never a crash or an over-allocation.
common::Result<std::vector<tensor::TensorPtr>> LoadAllParameters(
    const std::string& path);

}  // namespace desalign::nn

#endif  // DESALIGN_NN_SERIALIZE_H_
