#ifndef DESALIGN_NN_OPTIMIZER_H_
#define DESALIGN_NN_OPTIMIZER_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "tensor/tensor.h"

namespace desalign::nn {

using tensor::TensorPtr;

/// AdamW hyperparameters; defaults follow the paper (β1=0.9, β2=0.999).
struct AdamWConfig {
  float lr = 1e-3f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float eps = 1e-8f;
  float weight_decay = 1e-2f;
};

/// Decoupled-weight-decay Adam over an explicit parameter list.
class AdamW {
 public:
  AdamW(std::vector<TensorPtr> params, AdamWConfig config);

  /// Applies one update from the accumulated gradients.
  void Step();

  /// Zeroes all parameter gradients.
  void ZeroGrad();

  void set_lr(float lr) { config_.lr = lr; }
  float lr() const { return config_.lr; }
  int64_t step_count() const { return step_; }

  /// Moment buffers, ordered like the parameter list (for checkpointing).
  const std::vector<std::vector<float>>& moment1() const { return m_; }
  const std::vector<std::vector<float>>& moment2() const { return v_; }

  /// Restores step counter and moments from a checkpoint so resumed
  /// training continues bit-exactly. Moment shapes must match the
  /// parameter list this optimizer was built over.
  common::Status RestoreState(int64_t step,
                              std::vector<std::vector<float>> m,
                              std::vector<std::vector<float>> v);

 private:
  std::vector<TensorPtr> params_;
  AdamWConfig config_;
  int64_t step_ = 0;
  std::vector<std::vector<float>> m_;
  std::vector<std::vector<float>> v_;
};

/// Cosine learning-rate schedule with linear warm-up over the first
/// `warmup_fraction` of `total_steps` (the paper's "cosine warm-up
/// schedule, 15% steps for LR warmup").
class CosineWarmupSchedule {
 public:
  CosineWarmupSchedule(float base_lr, int64_t total_steps,
                       double warmup_fraction = 0.15,
                       float min_lr_ratio = 0.05f);

  float LrAt(int64_t step) const;

 private:
  float base_lr_;
  int64_t total_steps_;
  int64_t warmup_steps_;
  float min_lr_;
};

/// Scales gradients so their global l2 norm is at most `max_norm`.
/// Returns the pre-clip norm.
double ClipGradNorm(const std::vector<TensorPtr>& params, double max_norm);

}  // namespace desalign::nn

#endif  // DESALIGN_NN_OPTIMIZER_H_
