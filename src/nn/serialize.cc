#include "nn/serialize.h"

#include <cstdint>
#include <cstring>
#include <fstream>

#include "common/fault_injection.h"
#include "nn/checkpoint.h"

namespace desalign::nn {

namespace {

using common::Status;

constexpr char kMagic[] = "DESALIGNPARAMS1";
constexpr size_t kMagicLen = sizeof(kMagic) - 1;

}  // namespace

Status SaveParameters(const std::vector<tensor::TensorPtr>& params,
                      const std::string& path) {
  // Fault site for crash-safety tests (the checkpoint layer's torn-write
  // coverage lives in common/atomic_file; this guards the legacy format).
  if (common::FaultInjector::Global().OnSite("params.write")) {
    return Status::IoError("injected fault at params.write writing " + path);
  }
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out.write(kMagic, kMagicLen);
  const int64_t count = static_cast<int64_t>(params.size());
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const auto& p : params) {
    const int64_t rows = p->rows();
    const int64_t cols = p->cols();
    out.write(reinterpret_cast<const char*>(&rows), sizeof(rows));
    out.write(reinterpret_cast<const char*>(&cols), sizeof(cols));
    out.write(reinterpret_cast<const char*>(p->data().data()),
              static_cast<std::streamsize>(sizeof(float) * rows * cols));
  }
  if (!out) return Status::IoError("short write to " + path);
  return Status::Ok();
}

Status LoadParameters(const std::vector<tensor::TensorPtr>& params,
                      const std::string& path) {
  if (IsVersionedCheckpoint(path)) {
    DESALIGN_ASSIGN_OR_RETURN(TrainingCheckpoint ckpt, LoadCheckpoint(path));
    if (ckpt.tensors.size() != params.size()) {
      return Status::InvalidArgument(
          "checkpoint holds " + std::to_string(ckpt.tensors.size()) +
          " tensors, model has " + std::to_string(params.size()));
    }
    // Validate every shape before touching the model so a mismatch cannot
    // leave it half-loaded.
    for (size_t i = 0; i < params.size(); ++i) {
      if (ckpt.tensors[i]->rows() != params[i]->rows() ||
          ckpt.tensors[i]->cols() != params[i]->cols()) {
        return Status::InvalidArgument(
            "checkpoint tensor shape " +
            std::to_string(ckpt.tensors[i]->rows()) + "x" +
            std::to_string(ckpt.tensors[i]->cols()) +
            " does not match model " + std::to_string(params[i]->rows()) +
            "x" + std::to_string(params[i]->cols()));
      }
    }
    for (size_t i = 0; i < params.size(); ++i) {
      params[i]->data() = std::move(ckpt.tensors[i]->data());
    }
    return Status::Ok();
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  char magic[kMagicLen];
  in.read(magic, kMagicLen);
  if (!in || std::memcmp(magic, kMagic, kMagicLen) != 0) {
    return Status::IoError(path + " is not a DESAlign checkpoint");
  }
  int64_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!in || count != static_cast<int64_t>(params.size())) {
    return Status::InvalidArgument(
        "checkpoint holds " + std::to_string(count) + " tensors, model has " +
        std::to_string(params.size()));
  }
  // Stage into buffers first so a mid-file error leaves the model intact.
  std::vector<std::vector<float>> staged;
  staged.reserve(params.size());
  for (const auto& p : params) {
    int64_t rows = 0;
    int64_t cols = 0;
    in.read(reinterpret_cast<char*>(&rows), sizeof(rows));
    in.read(reinterpret_cast<char*>(&cols), sizeof(cols));
    if (!in || rows != p->rows() || cols != p->cols()) {
      return Status::InvalidArgument(
          "checkpoint tensor shape " + std::to_string(rows) + "x" +
          std::to_string(cols) + " does not match model " +
          std::to_string(p->rows()) + "x" + std::to_string(p->cols()));
    }
    std::vector<float> data(static_cast<size_t>(rows * cols));
    in.read(reinterpret_cast<char*>(data.data()),
            static_cast<std::streamsize>(sizeof(float) * rows * cols));
    if (!in) return Status::IoError("short read from " + path);
    staged.push_back(std::move(data));
  }
  for (size_t i = 0; i < params.size(); ++i) {
    params[i]->data() = std::move(staged[i]);
  }
  return Status::Ok();
}

common::Result<std::vector<tensor::TensorPtr>> LoadAllParameters(
    const std::string& path) {
  if (IsVersionedCheckpoint(path)) {
    DESALIGN_ASSIGN_OR_RETURN(TrainingCheckpoint ckpt, LoadCheckpoint(path));
    return std::move(ckpt.tensors);
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  char magic[kMagicLen];
  in.read(magic, kMagicLen);
  if (!in || std::memcmp(magic, kMagic, kMagicLen) != 0) {
    return Status::IoError(path + " is not a DESAlign checkpoint");
  }
  int64_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  // Cap the header values before trusting them with allocations: a
  // truncated or bit-flipped file must fail cleanly, not bad_alloc.
  constexpr int64_t kMaxTensors = 1 << 20;
  constexpr int64_t kMaxElements = int64_t{1} << 33;  // 32 GiB of floats
  if (!in || count < 0 || count > kMaxTensors) {
    return Status::IoError(path + " has an implausible tensor count (" +
                           std::to_string(count) + "); corrupt checkpoint?");
  }
  std::vector<tensor::TensorPtr> tensors;
  tensors.reserve(static_cast<size_t>(count));
  for (int64_t t = 0; t < count; ++t) {
    int64_t rows = 0;
    int64_t cols = 0;
    in.read(reinterpret_cast<char*>(&rows), sizeof(rows));
    in.read(reinterpret_cast<char*>(&cols), sizeof(cols));
    if (!in) return Status::IoError("truncated checkpoint " + path);
    if (rows < 0 || cols < 0 || (rows > 0 && cols > kMaxElements / rows)) {
      return Status::IoError(path + " tensor " + std::to_string(t) +
                             " has an implausible shape " +
                             std::to_string(rows) + "x" +
                             std::to_string(cols) + "; corrupt checkpoint?");
    }
    std::vector<float> data(static_cast<size_t>(rows * cols));
    in.read(reinterpret_cast<char*>(data.data()),
            static_cast<std::streamsize>(sizeof(float) * rows * cols));
    if (!in) return Status::IoError("truncated checkpoint " + path);
    tensors.push_back(tensor::Tensor::FromData(rows, cols, std::move(data)));
  }
  return tensors;
}

}  // namespace desalign::nn
