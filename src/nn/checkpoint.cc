#include "nn/checkpoint.h"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "common/atomic_file.h"
#include "common/crc32.h"
#include "common/logging.h"
#include "common/strings.h"
#include "nn/serialize.h"

namespace desalign::nn {

namespace {

using common::Crc32;
using common::Result;
using common::Status;

// v2 layout (docs/ROBUSTNESS.md):
//   kMagic
//   -- footer-checksummed region --
//   u32 version | i64 epoch | u32 flags | i64 tensor_count
//   per tensor: i64 rows | i64 cols | f32[rows*cols] | u32 crc(payload)
//   [flags&kHasOptimizer] i64 step; per tensor: f32[] m, u32 crc,
//                                               f32[] v, u32 crc
//   [flags&kHasRng]       i64 len | bytes | u32 crc
//   [flags&kHasTrain]     f32 best_loss | i32 stall | f32 lr_scale
//   -- region ends --
//   u32 footer_crc(region) | kEndMarker
constexpr char kMagic[] = "DESALIGNCKPT2\n";
constexpr size_t kMagicLen = sizeof(kMagic) - 1;
constexpr char kEndMarker[] = "DCKPTEND";
constexpr size_t kEndMarkerLen = sizeof(kEndMarker) - 1;
constexpr uint32_t kVersion = 2;
constexpr uint32_t kHasOptimizer = 1;
constexpr uint32_t kHasRng = 2;
constexpr uint32_t kHasTrain = 4;

// v3 layout (docs/ROBUSTNESS.md): same envelope (magic, footer CRC over the
// body, end marker), but every tensor record carries a dtype tag and a
// dtype-specific payload. v3 files are params-only (flags must be 0).
//   kMagicV3
//   -- footer-checksummed region --
//   u32 version(3) | i64 epoch | u32 flags(0) | i64 tensor_count
//   per tensor: u8 dtype | i64 rows | i64 cols |
//     dtype 0 (fp32): f32[rows*cols] | u32 crc
//     dtype 1 (int8): i64 scale_count | f32 scales[scale_count] | u32 crc
//                     | i8 codes[rows*cols] | u32 crc
//     dtype 2 (bf16): u16[rows*cols] | u32 crc
//   -- region ends --
//   u32 footer_crc(region) | kEndMarker
// scale_count is stored explicitly (it must equal rows) so a file whose
// scale array disagrees with its shape is rejected as corrupt instead of
// silently misframing every record after it.
constexpr char kMagicV3[] = "DESALIGNCKPT3\n";
constexpr size_t kMagicV3Len = sizeof(kMagicV3) - 1;
constexpr uint32_t kVersionV3 = 3;
static_assert(kMagicV3Len == kMagicLen, "v2/v3 magics must share a length");

constexpr char kLegacyMagic[] = "DESALIGNPARAMS1";
constexpr size_t kLegacyMagicLen = sizeof(kLegacyMagic) - 1;

template <typename T>
void Append(std::string* out, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  out->append(reinterpret_cast<const char*>(&value), sizeof(T));
}

void AppendFloats(std::string* out, const std::vector<float>& values) {
  out->append(reinterpret_cast<const char*>(values.data()),
              values.size() * sizeof(float));
  Append<uint32_t>(out, Crc32(values.data(), values.size() * sizeof(float)));
}

template <typename T>
void AppendArray(std::string* out, const std::vector<T>& values) {
  static_assert(std::is_trivially_copyable_v<T>);
  out->append(reinterpret_cast<const char*>(values.data()),
              values.size() * sizeof(T));
  Append<uint32_t>(out, Crc32(values.data(), values.size() * sizeof(T)));
}

/// Bounds-checked forward-only reader over the in-memory file. Every Read
/// validates the remaining length first, so a truncated or lying header can
/// never cause an out-of-bounds read or an unbounded allocation.
class ByteReader {
 public:
  explicit ByteReader(std::string_view bytes) : bytes_(bytes) {}

  template <typename T>
  bool Read(T* out) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (remaining() < sizeof(T)) return false;
    std::memcpy(out, bytes_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }

  /// Reads `count` elements plus their trailing CRC; false on truncation,
  /// CRC mismatch sets `*crc_ok` false (payload is still consumed).
  template <typename T>
  bool ReadArray(size_t count, std::vector<T>* out, bool* crc_ok) {
    static_assert(std::is_trivially_copyable_v<T>);
    const size_t payload = count * sizeof(T);
    if (remaining() < payload + sizeof(uint32_t)) return false;
    out->resize(count);
    std::memcpy(out->data(), bytes_.data() + pos_, payload);
    const uint32_t actual = Crc32(bytes_.data() + pos_, payload);
    pos_ += payload;
    uint32_t stored = 0;
    Read(&stored);
    *crc_ok = stored == actual;
    return true;
  }

  bool ReadFloats(size_t count, std::vector<float>* out, bool* crc_ok) {
    return ReadArray<float>(count, out, crc_ok);
  }

  bool ReadString(size_t count, std::string* out) {
    if (remaining() < count) return false;
    out->assign(bytes_.data() + pos_, count);
    pos_ += count;
    return true;
  }

  size_t remaining() const { return bytes_.size() - pos_; }

 private:
  std::string_view bytes_;
  size_t pos_ = 0;
};

Status Corrupt(const std::string& path, const std::string& detail) {
  return Status::IoError("corrupt checkpoint " + path + ": " + detail);
}

std::string SealFile(const char* magic, const std::string& body) {
  std::string file;
  file.reserve(kMagicLen + body.size() + sizeof(uint32_t) + kEndMarkerLen);
  file.append(magic, kMagicLen);
  file.append(body);
  Append<uint32_t>(&file, Crc32(body.data(), body.size()));
  file.append(kEndMarker, kEndMarkerLen);
  return file;
}

Status SaveCheckpointV3(const TrainingCheckpoint& ckpt,
                        const std::string& path) {
  if (!ckpt.tensors.empty()) {
    return Status::InvalidArgument(
        "a v3 checkpoint stores quant_tensors only; move fp32 tensors into "
        "quant_tensors as kFloat32 records");
  }
  if (ckpt.has_optimizer || ckpt.has_rng || ckpt.has_train_state) {
    return Status::InvalidArgument(
        "quantized checkpoints are params-only snapshots; optimizer / rng / "
        "train state cannot be attached");
  }
  std::string body;
  Append<uint32_t>(&body, kVersionV3);
  Append<int64_t>(&body, ckpt.epoch);
  Append<uint32_t>(&body, 0);  // flags: always 0 in v3
  Append<int64_t>(&body, static_cast<int64_t>(ckpt.quant_tensors.size()));
  for (size_t i = 0; i < ckpt.quant_tensors.size(); ++i) {
    const QuantTensor& q = ckpt.quant_tensors[i];
    const size_t elems = static_cast<size_t>(q.rows * q.cols);
    Append<uint8_t>(&body, static_cast<uint8_t>(q.dtype));
    Append<int64_t>(&body, q.rows);
    Append<int64_t>(&body, q.cols);
    switch (q.dtype) {
      case TensorDtype::kFloat32:
        if (q.f32.size() != elems) {
          return Status::InvalidArgument("tensor " + std::to_string(i) +
                                         ": fp32 payload size mismatch");
        }
        AppendArray(&body, q.f32);
        break;
      case TensorDtype::kInt8:
        if (q.codes.size() != elems ||
            q.scales.size() != static_cast<size_t>(q.rows)) {
          return Status::InvalidArgument("tensor " + std::to_string(i) +
                                         ": int8 payload size mismatch");
        }
        Append<int64_t>(&body, static_cast<int64_t>(q.scales.size()));
        AppendArray(&body, q.scales);
        AppendArray(&body, q.codes);
        break;
      case TensorDtype::kBf16:
        if (q.bf16.size() != elems) {
          return Status::InvalidArgument("tensor " + std::to_string(i) +
                                         ": bf16 payload size mismatch");
        }
        AppendArray(&body, q.bf16);
        break;
      default:
        return Status::InvalidArgument("tensor " + std::to_string(i) +
                                       ": unknown dtype");
    }
  }
  return common::AtomicWriteFile(path, SealFile(kMagicV3, body),
                                 "ckpt.write");
}

Result<TrainingCheckpoint> LoadCheckpointV3(const std::string& path,
                                            ByteReader& reader) {
  uint32_t version = 0;
  uint32_t flags = 0;
  int64_t tensor_count = 0;
  TrainingCheckpoint ckpt;
  if (!reader.Read(&version) || !reader.Read(&ckpt.epoch) ||
      !reader.Read(&flags) || !reader.Read(&tensor_count)) {
    return Corrupt(path, "truncated header");
  }
  if (version != kVersionV3) {
    return Status::IoError(path + " has unsupported checkpoint version " +
                           std::to_string(version));
  }
  if (flags != 0) {
    return Corrupt(path, "v3 checkpoint with nonzero flags " +
                             std::to_string(flags));
  }
  if (tensor_count < 0 || ckpt.epoch < 0) {
    return Corrupt(path, "negative header field");
  }
  bool crc_ok = true;
  for (int64_t t = 0; t < tensor_count; ++t) {
    QuantTensor q;
    uint8_t dtype_tag = 0;
    if (!reader.Read(&dtype_tag) || !reader.Read(&q.rows) ||
        !reader.Read(&q.cols)) {
      return Corrupt(path, "truncated tensor header");
    }
    if (dtype_tag > static_cast<uint8_t>(TensorDtype::kBf16)) {
      return Corrupt(path, "tensor " + std::to_string(t) +
                               " has unknown dtype id " +
                               std::to_string(dtype_tag));
    }
    q.dtype = static_cast<TensorDtype>(dtype_tag);
    const size_t elem_bytes = DtypeBytes(q.dtype);
    if (q.rows < 0 || q.cols < 0 ||
        (q.cols > 0 &&
         q.rows > static_cast<int64_t>(reader.remaining() / elem_bytes) /
                      q.cols)) {
      return Corrupt(path, "implausible tensor shape " +
                               std::to_string(q.rows) + "x" +
                               std::to_string(q.cols));
    }
    const size_t elems = static_cast<size_t>(q.rows * q.cols);
    switch (q.dtype) {
      case TensorDtype::kFloat32:
        if (!reader.ReadArray(elems, &q.f32, &crc_ok)) {
          return Corrupt(path, "truncated tensor payload");
        }
        break;
      case TensorDtype::kInt8: {
        int64_t scale_count = 0;
        if (!reader.Read(&scale_count)) {
          return Corrupt(path, "truncated scale count");
        }
        if (scale_count != q.rows) {
          return Corrupt(path, "tensor " + std::to_string(t) +
                                   " scale count " +
                                   std::to_string(scale_count) +
                                   " does not match rows " +
                                   std::to_string(q.rows));
        }
        if (!reader.ReadArray(static_cast<size_t>(scale_count), &q.scales,
                              &crc_ok)) {
          return Corrupt(path, "truncated scale payload");
        }
        if (!crc_ok) {
          return Corrupt(path, "tensor " + std::to_string(t) +
                                   " scale checksum mismatch");
        }
        if (!reader.ReadArray(elems, &q.codes, &crc_ok)) {
          return Corrupt(path, "truncated tensor payload");
        }
        break;
      }
      case TensorDtype::kBf16:
        if (!reader.ReadArray(elems, &q.bf16, &crc_ok)) {
          return Corrupt(path, "truncated tensor payload");
        }
        break;
    }
    if (!crc_ok) {
      return Corrupt(path, "tensor " + std::to_string(t) +
                               " checksum mismatch");
    }
    // Fill the fp32 view alongside the stored payload so every legacy
    // consumer (LoadAllParameters, serve reload) reads v3 transparently.
    ckpt.tensors.push_back(DequantizeTensor(q));
    ckpt.quant_tensors.push_back(std::move(q));
  }
  if (reader.remaining() != 0) {
    return Corrupt(path, std::to_string(reader.remaining()) +
                             " unexpected trailing bytes");
  }
  return ckpt;
}

}  // namespace

Status SaveCheckpoint(const TrainingCheckpoint& ckpt,
                      const std::string& path) {
  if (!ckpt.quant_tensors.empty()) {
    return SaveCheckpointV3(ckpt, path);
  }
  if (ckpt.has_optimizer && (ckpt.opt_m.size() != ckpt.tensors.size() ||
                             ckpt.opt_v.size() != ckpt.tensors.size())) {
    return Status::InvalidArgument(
        "optimizer moment count does not match tensor count");
  }
  std::string body;  // the footer-checksummed region
  Append<uint32_t>(&body, kVersion);
  Append<int64_t>(&body, ckpt.epoch);
  const uint32_t flags = (ckpt.has_optimizer ? kHasOptimizer : 0) |
                         (ckpt.has_rng ? kHasRng : 0) |
                         (ckpt.has_train_state ? kHasTrain : 0);
  Append<uint32_t>(&body, flags);
  Append<int64_t>(&body, static_cast<int64_t>(ckpt.tensors.size()));
  for (const auto& t : ckpt.tensors) {
    Append<int64_t>(&body, t->rows());
    Append<int64_t>(&body, t->cols());
    AppendFloats(&body, t->data());
  }
  if (ckpt.has_optimizer) {
    Append<int64_t>(&body, ckpt.opt_step);
    for (size_t i = 0; i < ckpt.tensors.size(); ++i) {
      if (ckpt.opt_m[i].size() != ckpt.tensors[i]->data().size() ||
          ckpt.opt_v[i].size() != ckpt.tensors[i]->data().size()) {
        return Status::InvalidArgument(
            "optimizer moment size does not match tensor " +
            std::to_string(i));
      }
      AppendFloats(&body, ckpt.opt_m[i]);
      AppendFloats(&body, ckpt.opt_v[i]);
    }
  }
  if (ckpt.has_rng) {
    Append<int64_t>(&body, static_cast<int64_t>(ckpt.rng_state.size()));
    body.append(ckpt.rng_state);
    Append<uint32_t>(&body,
                     Crc32(ckpt.rng_state.data(), ckpt.rng_state.size()));
  }
  if (ckpt.has_train_state) {
    Append<float>(&body, ckpt.best_loss);
    Append<int32_t>(&body, ckpt.stall);
    Append<float>(&body, ckpt.lr_scale);
  }

  return common::AtomicWriteFile(path, SealFile(kMagic, body), "ckpt.write");
}

bool IsVersionedCheckpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  char magic[kMagicLen];
  in.read(magic, kMagicLen);
  return in && (std::memcmp(magic, kMagic, kMagicLen) == 0 ||
                std::memcmp(magic, kMagicV3, kMagicV3Len) == 0);
}

Result<TrainingCheckpoint> LoadCheckpoint(const std::string& path) {
  std::string bytes;
  DESALIGN_RETURN_NOT_OK(
      common::ReadFileToString(path, &bytes, "ckpt.read"));

  if (bytes.size() >= kLegacyMagicLen &&
      std::memcmp(bytes.data(), kLegacyMagic, kLegacyMagicLen) == 0) {
    // Legacy SaveParameters file: params only, pre-checksum era.
    DESALIGN_ASSIGN_OR_RETURN(auto tensors, LoadAllParameters(path));
    TrainingCheckpoint ckpt;
    ckpt.tensors = std::move(tensors);
    return ckpt;
  }
  const bool is_v3 =
      bytes.size() >= kMagicV3Len &&
      std::memcmp(bytes.data(), kMagicV3, kMagicV3Len) == 0;
  if (bytes.size() < kMagicLen + sizeof(uint32_t) + kEndMarkerLen ||
      (!is_v3 && std::memcmp(bytes.data(), kMagic, kMagicLen) != 0)) {
    return Status::IoError(path + " is not a DESAlign checkpoint");
  }
  if (std::memcmp(bytes.data() + bytes.size() - kEndMarkerLen, kEndMarker,
                  kEndMarkerLen) != 0) {
    return Corrupt(path, "missing end marker (torn write?)");
  }
  const size_t body_len =
      bytes.size() - kMagicLen - sizeof(uint32_t) - kEndMarkerLen;
  uint32_t footer_crc = 0;
  std::memcpy(&footer_crc, bytes.data() + kMagicLen + body_len,
              sizeof(footer_crc));
  if (Crc32(bytes.data() + kMagicLen, body_len) != footer_crc) {
    return Corrupt(path, "footer checksum mismatch");
  }

  ByteReader reader(std::string_view(bytes).substr(kMagicLen, body_len));
  if (is_v3) return LoadCheckpointV3(path, reader);
  uint32_t version = 0;
  uint32_t flags = 0;
  int64_t tensor_count = 0;
  TrainingCheckpoint ckpt;
  if (!reader.Read(&version) || !reader.Read(&ckpt.epoch) ||
      !reader.Read(&flags) || !reader.Read(&tensor_count)) {
    return Corrupt(path, "truncated header");
  }
  if (version != kVersion) {
    return Status::IoError(path + " has unsupported checkpoint version " +
                           std::to_string(version));
  }
  if (tensor_count < 0 || ckpt.epoch < 0) {
    return Corrupt(path, "negative header field");
  }
  bool crc_ok = true;
  for (int64_t t = 0; t < tensor_count; ++t) {
    int64_t rows = 0;
    int64_t cols = 0;
    if (!reader.Read(&rows) || !reader.Read(&cols)) {
      return Corrupt(path, "truncated tensor header");
    }
    if (rows < 0 || cols < 0 ||
        (cols > 0 &&
         rows > static_cast<int64_t>(reader.remaining() / sizeof(float)) /
                    cols)) {
      return Corrupt(path, "implausible tensor shape " +
                               std::to_string(rows) + "x" +
                               std::to_string(cols));
    }
    std::vector<float> data;
    if (!reader.ReadFloats(static_cast<size_t>(rows * cols), &data,
                           &crc_ok)) {
      return Corrupt(path, "truncated tensor payload");
    }
    if (!crc_ok) {
      return Corrupt(path, "tensor " + std::to_string(t) +
                               " checksum mismatch");
    }
    ckpt.tensors.push_back(
        tensor::Tensor::FromData(rows, cols, std::move(data)));
  }
  if (flags & kHasOptimizer) {
    ckpt.has_optimizer = true;
    if (!reader.Read(&ckpt.opt_step)) {
      return Corrupt(path, "truncated optimizer step");
    }
    for (int64_t t = 0; t < tensor_count; ++t) {
      const size_t n = ckpt.tensors[static_cast<size_t>(t)]->data().size();
      std::vector<float> m;
      std::vector<float> v;
      if (!reader.ReadFloats(n, &m, &crc_ok) || !crc_ok) {
        return Corrupt(path, "bad optimizer m for tensor " +
                                 std::to_string(t));
      }
      if (!reader.ReadFloats(n, &v, &crc_ok) || !crc_ok) {
        return Corrupt(path, "bad optimizer v for tensor " +
                                 std::to_string(t));
      }
      ckpt.opt_m.push_back(std::move(m));
      ckpt.opt_v.push_back(std::move(v));
    }
  }
  if (flags & kHasRng) {
    ckpt.has_rng = true;
    int64_t len = 0;
    if (!reader.Read(&len) || len < 0 ||
        static_cast<size_t>(len) > reader.remaining() ||
        !reader.ReadString(static_cast<size_t>(len), &ckpt.rng_state)) {
      return Corrupt(path, "truncated rng state");
    }
    uint32_t stored = 0;
    if (!reader.Read(&stored) ||
        stored != Crc32(ckpt.rng_state.data(), ckpt.rng_state.size())) {
      return Corrupt(path, "rng state checksum mismatch");
    }
  }
  if (flags & kHasTrain) {
    ckpt.has_train_state = true;
    if (!reader.Read(&ckpt.best_loss) || !reader.Read(&ckpt.stall) ||
        !reader.Read(&ckpt.lr_scale)) {
      return Corrupt(path, "truncated train state");
    }
  }
  if (reader.remaining() != 0) {
    return Corrupt(path, std::to_string(reader.remaining()) +
                             " unexpected trailing bytes");
  }
  return ckpt;
}

// ---------------------------------------------------------------------------
// CheckpointManager

namespace {

constexpr char kManifestName[] = "MANIFEST";
constexpr char kManifestHeader[] = "desalign.ckpt.manifest.v1";
constexpr char kFilePrefix[] = "ckpt_";
constexpr char kFileSuffix[] = ".dckpt";

std::string CheckpointFileName(int64_t epoch) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%s%08lld%s", kFilePrefix,
                static_cast<long long>(epoch), kFileSuffix);
  return buf;
}

}  // namespace

CheckpointManager::CheckpointManager(std::string dir, Options options)
    : dir_(std::move(dir)), options_(options) {
  options_.keep_last = std::max(options_.keep_last, 1);
}

std::string CheckpointManager::PathOf(const std::string& name) const {
  return dir_ + "/" + name;
}

Status CheckpointManager::Init() {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) {
    return Status::IoError("cannot create checkpoint directory " + dir_ +
                           ": " + ec.message());
  }
  files_.clear();
  // Prefer the manifest; fall back to a directory scan so a crashed or
  // manually pruned directory still resumes.
  std::ifstream manifest(PathOf(kManifestName));
  std::string line;
  if (manifest && std::getline(manifest, line) && line == kManifestHeader) {
    while (std::getline(manifest, line)) {
      const std::string name(common::Trim(line));
      if (!name.empty() && std::filesystem::exists(PathOf(name))) {
        files_.push_back(name);
      }
    }
    return Status::Ok();
  }
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    const std::string name = entry.path().filename().string();
    if (common::StartsWith(name, kFilePrefix) &&
        name.size() > std::strlen(kFileSuffix) &&
        name.compare(name.size() - std::strlen(kFileSuffix),
                     std::strlen(kFileSuffix), kFileSuffix) == 0) {
      files_.push_back(name);
    }
  }
  std::sort(files_.begin(), files_.end());  // zero-padded epoch => oldest first
  return Status::Ok();
}

Status CheckpointManager::WriteManifest() const {
  std::string body(kManifestHeader);
  body.push_back('\n');
  for (const auto& name : files_) {
    body += name;
    body.push_back('\n');
  }
  return common::AtomicWriteFile(PathOf(kManifestName), body,
                                 "manifest.write");
}

Status CheckpointManager::Write(const TrainingCheckpoint& ckpt) {
  const std::string name = CheckpointFileName(ckpt.epoch);
  DESALIGN_RETURN_NOT_OK(SaveCheckpoint(ckpt, PathOf(name)));
  if (std::find(files_.begin(), files_.end(), name) == files_.end()) {
    files_.push_back(name);
  }
  // Prune only after the new file is durable and listed.
  DESALIGN_RETURN_NOT_OK(WriteManifest());
  while (static_cast<int>(files_.size()) > options_.keep_last) {
    std::error_code ec;
    std::filesystem::remove(PathOf(files_.front()), ec);
    files_.erase(files_.begin());
  }
  return WriteManifest();
}

Result<TrainingCheckpoint> CheckpointManager::LoadLatestValid(
    std::string* loaded_path) const {
  for (auto it = files_.rbegin(); it != files_.rend(); ++it) {
    const std::string path = PathOf(*it);
    auto loaded = LoadCheckpoint(path);
    if (loaded.ok()) {
      if (loaded_path != nullptr) *loaded_path = path;
      return loaded;
    }
    DESALIGN_LOG(Warning) << "skipping unloadable checkpoint: "
                          << loaded.status().ToString();
  }
  return Status::NotFound("no valid checkpoint in " + dir_);
}

}  // namespace desalign::nn
