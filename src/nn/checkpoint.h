#ifndef DESALIGN_NN_CHECKPOINT_H_
#define DESALIGN_NN_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "nn/quant.h"
#include "tensor/tensor.h"

namespace desalign::nn {

/// Everything a training run needs to continue bit-exactly: model params,
/// AdamW moments + step, the RNG engine, the epoch counter, and the loop's
/// scalar state (early-stop bookkeeping and the non-finite LR backoff).
/// The params-only subset (`tensors` with every `has_*` flag false) is the
/// shape serve-side embedding snapshots use.
///
/// `quant_tensors` is the v3 dtype-tagged path: when non-empty the
/// checkpoint is a params-only quantized snapshot (no optimizer / RNG /
/// train state — fp32 moments for int8 params make no sense) and
/// SaveCheckpoint writes the v3 format. Loading a v3 file fills
/// `quant_tensors` with the stored payloads AND `tensors` with their
/// dequantized fp32 views, so every legacy fp32 consumer keeps working.
struct TrainingCheckpoint {
  int64_t epoch = 0;  ///< last completed epoch (0-based)
  std::vector<tensor::TensorPtr> tensors;
  std::vector<QuantTensor> quant_tensors;  ///< non-empty => v3 on save

  bool has_optimizer = false;
  int64_t opt_step = 0;
  std::vector<std::vector<float>> opt_m;  ///< first moments, per tensor
  std::vector<std::vector<float>> opt_v;  ///< second moments, per tensor

  bool has_rng = false;
  std::string rng_state;  ///< common::Rng::SerializeState()

  bool has_train_state = false;
  float best_loss = 0.0f;  ///< early-stopping best
  int32_t stall = 0;       ///< early-stopping stall counter
  float lr_scale = 1.0f;   ///< non-finite-guard LR backoff factor
};

/// Writes `ckpt` to `path` in the versioned v2 format: magic, header,
/// per-tensor payloads each followed by a CRC32, optional optimizer / RNG /
/// train-state sections, a footer CRC32 over everything after the magic,
/// and a trailing end marker. The file is published atomically (tmp +
/// fsync + rename via common::AtomicWriteFile, fault site "ckpt.write"),
/// so a crash mid-save never clobbers an existing checkpoint.
///
/// When `quant_tensors` is non-empty the v3 format is written instead:
/// same envelope, but each tensor record is `u8 dtype | i64 rows |
/// i64 cols | dtype-specific payload` (int8 adds an explicit scale count
/// plus a separately checksummed scale array). v3 files are params-only:
/// `tensors` must be empty and every `has_*` flag false, or the save is
/// rejected. See docs/ROBUSTNESS.md for both byte layouts.
common::Status SaveCheckpoint(const TrainingCheckpoint& ckpt,
                              const std::string& path);

/// Loads and fully validates a v2 or v3 checkpoint: head/tail magic,
/// footer CRC, bounds-checked section parsing, per-payload CRCs (v3 also
/// checks dtype ids and the int8 scale count against the record shape).
/// Any corruption — truncation, torn write, bit flip — yields a clean
/// error Status; corrupt data is never returned. Also accepts legacy
/// SaveParameters (v1) files, which load as params-only checkpoints (no
/// integrity check beyond shape plausibility — v1 predates checksums).
/// Fault site "ckpt.read".
common::Result<TrainingCheckpoint> LoadCheckpoint(const std::string& path);

/// True when `path` starts with the v2 or v3 checkpoint magic. Missing or
/// short files report false.
bool IsVersionedCheckpoint(const std::string& path);

/// Rotating last-K checkpoint directory with a manifest. Files are named
/// `ckpt_<epoch>.dckpt`; `MANIFEST` lists them oldest-first and is itself
/// written atomically (fault site "manifest.write"), so the directory is
/// always recoverable. A missing or corrupt manifest is rebuilt by
/// scanning the directory, which makes the manager safe to point at a
/// directory a crashed run left in any state.
class CheckpointManager {
 public:
  struct Options {
    int keep_last = 3;  ///< checkpoints retained after pruning (>= 1)
  };

  explicit CheckpointManager(std::string dir) : CheckpointManager(std::move(dir), Options()) {}
  CheckpointManager(std::string dir, Options options);

  /// Creates the directory if needed and loads (or rebuilds) the manifest.
  common::Status Init();

  /// Saves `ckpt` as `ckpt_<epoch>.dckpt`, updates the manifest, then
  /// prunes to the newest `keep_last` files. Pruning happens only after
  /// the new checkpoint is durable, so the retained set never shrinks
  /// below keep_last valid-at-write-time snapshots.
  common::Status Write(const TrainingCheckpoint& ckpt);

  /// Loads the newest checkpoint that passes full validation, walking
  /// backwards past corrupt ones (each rejection is logged). NotFound when
  /// no file validates. `loaded_path`, when non-null, receives the
  /// winning file's path.
  common::Result<TrainingCheckpoint> LoadLatestValid(
      std::string* loaded_path = nullptr) const;

  /// Manifest contents, oldest first (file names, not paths).
  const std::vector<std::string>& files() const { return files_; }
  const std::string& dir() const { return dir_; }

 private:
  std::string PathOf(const std::string& name) const;
  common::Status WriteManifest() const;

  std::string dir_;
  Options options_;
  std::vector<std::string> files_;  // oldest first
};

}  // namespace desalign::nn

#endif  // DESALIGN_NN_CHECKPOINT_H_
