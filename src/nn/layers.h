#ifndef DESALIGN_NN_LAYERS_H_
#define DESALIGN_NN_LAYERS_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "graph/graph.h"
#include "nn/module.h"
#include "tensor/ops.h"

namespace desalign::nn {

/// Fully connected layer y = xW + b (paper Eq. 8: the per-modality FC_m).
class Linear : public Module {
 public:
  Linear(int64_t in_dim, int64_t out_dim, common::Rng& rng,
         bool with_bias = true);

  TensorPtr Forward(const TensorPtr& x) const;

  const TensorPtr& weight() const { return weight_; }

 private:
  TensorPtr weight_;
  TensorPtr bias_;  // null when bias disabled
};

/// One graph-attention layer with `num_heads` heads over a fixed edge list
/// (paper Eq. 7 substrate). Uses the diagonal linear transformation of
/// [Yang et al. 2015] as in the paper: h = x ⊙ w_diag, then per-head
/// additive attention with LeakyReLU and segment softmax over incoming
/// edges.
class GatLayer : public Module {
 public:
  GatLayer(int64_t dim, int64_t num_heads, common::Rng& rng);

  /// x: num_nodes x dim; edges: message-passing arcs (with self-loops).
  TensorPtr Forward(const TensorPtr& x,
                    const graph::Graph::DirectedEdges& edges,
                    int64_t num_nodes) const;

 private:
  int64_t dim_;
  int64_t num_heads_;
  int64_t head_dim_;
  TensorPtr w_diag_;                  // 1 x dim
  std::vector<TensorPtr> attn_src_;   // per head: head_dim x 1
  std::vector<TensorPtr> attn_dst_;   // per head: head_dim x 1
};

/// The paper's structure encoder: a two-layer, two-head GAT (Eq. 7).
class GatEncoder : public Module {
 public:
  GatEncoder(int64_t dim, int64_t num_heads, int64_t num_layers,
             common::Rng& rng);

  TensorPtr Forward(const TensorPtr& x,
                    const graph::Graph::DirectedEdges& edges,
                    int64_t num_nodes) const;

 private:
  std::vector<std::unique_ptr<GatLayer>> layers_;
};

/// Output of the cross-modal attention block.
struct CrossModalOutput {
  /// Fused per-modality embeddings \hat h^ATT_m (Eq. 11–12), one per input.
  std::vector<TensorPtr> fused;
  /// Intermediate sublayer output (post-attention LayerNorm + residual,
  /// before the FFN) — the "(k−1)-th layer" embedding of Proposition 3.
  std::vector<TensorPtr> fused_mid;
  /// Modal-level confidence w̃^m (Eq. 13): num_entities x num_modalities,
  /// rows sum to 1.
  TensorPtr confidence;
};

/// Cross-modal Attention Weighted (CAW) block (paper Eq. 9–13): multi-head
/// attention across an entity's modalities with modally shared projections,
/// followed by LayerNorm + residual and a feed-forward sublayer.
class CrossModalAttention : public Module {
 public:
  CrossModalAttention(int64_t dim, int64_t num_modalities, int64_t num_heads,
                      common::Rng& rng);

  CrossModalOutput Forward(const std::vector<TensorPtr>& inputs) const;

 private:
  int64_t dim_;
  int64_t num_modalities_;
  int64_t num_heads_;
  int64_t head_dim_;
  std::vector<TensorPtr> w_query_;  // per head: dim x head_dim
  std::vector<TensorPtr> w_key_;
  std::vector<TensorPtr> w_value_;
  TensorPtr w_output_;              // dim x dim
  TensorPtr ln1_gamma_, ln1_beta_;  // post-attention LayerNorm
  TensorPtr ffn_w1_, ffn_b1_;       // dim x dim_in
  TensorPtr ffn_w2_, ffn_b2_;       // dim_in x dim
  TensorPtr ln2_gamma_, ln2_beta_;  // post-FFN LayerNorm
};

}  // namespace desalign::nn

#endif  // DESALIGN_NN_LAYERS_H_
