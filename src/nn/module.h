#ifndef DESALIGN_NN_MODULE_H_
#define DESALIGN_NN_MODULE_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "tensor/tensor.h"

namespace desalign::nn {

using tensor::TensorPtr;

/// Base class for neural components: owns trainable parameters and exposes
/// them (recursively through registered children) to the optimizer.
class Module {
 public:
  virtual ~Module() = default;

  Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// All trainable parameters, including those of registered children.
  std::vector<TensorPtr> Parameters() const;

  /// Number of scalar parameters (for model-size reporting).
  int64_t NumParameters() const;

  /// Zeroes all parameter gradients.
  void ZeroGrad();

 protected:
  /// Creates, registers and returns a fresh trainable parameter.
  TensorPtr AddParameter(const std::string& name, int64_t rows, int64_t cols);

  /// Registers a child module whose parameters are reported by this one.
  /// The child must outlive this module (normally it is a member).
  void AddChild(Module* child);

 private:
  std::vector<TensorPtr> params_;
  std::vector<Module*> children_;
};

}  // namespace desalign::nn

#endif  // DESALIGN_NN_MODULE_H_
