#include "nn/module.h"

#include "common/check.h"

namespace desalign::nn {

std::vector<TensorPtr> Module::Parameters() const {
  std::vector<TensorPtr> out = params_;
  for (Module* child : children_) {
    auto sub = child->Parameters();
    out.insert(out.end(), sub.begin(), sub.end());
  }
  return out;
}

int64_t Module::NumParameters() const {
  int64_t count = 0;
  for (const auto& p : Parameters()) count += p->size();
  return count;
}

void Module::ZeroGrad() {
  for (const auto& p : Parameters()) p->ZeroGrad();
}

TensorPtr Module::AddParameter(const std::string& name, int64_t rows,
                               int64_t cols) {
  (void)name;  // kept for debuggability of call sites
  auto p = tensor::Tensor::Create(rows, cols, /*requires_grad=*/true);
  params_.push_back(p);
  return p;
}

void Module::AddChild(Module* child) {
  DESALIGN_CHECK(child != nullptr);
  children_.push_back(child);
}

}  // namespace desalign::nn
