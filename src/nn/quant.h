#ifndef DESALIGN_NN_QUANT_H_
#define DESALIGN_NN_QUANT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "tensor/tensor.h"

namespace desalign::nn {

/// Storage datatype of one checkpoint tensor (and of one serve-side
/// embedding table). The numeric ids are the on-disk dtype tags of the v3
/// checkpoint format and must never be renumbered.
enum class TensorDtype : uint8_t {
  kFloat32 = 0,  ///< plain IEEE-754 binary32, the training format
  kInt8 = 1,     ///< per-row symmetric int8 codes + one fp32 scale per row
  kBf16 = 2,     ///< bfloat16: the top 16 bits of the fp32 pattern
};

/// "fp32" / "int8" / "bf16".
const char* DtypeName(TensorDtype dtype);

/// Parses "fp32" / "int8" / "bf16" (the --dtype CLI flag).
common::Result<TensorDtype> ParseDtype(const std::string& name);

/// Per-element storage bytes of `dtype` (int8 excludes the per-row scale;
/// use QuantTensorBytes for the full footprint).
size_t DtypeBytes(TensorDtype dtype);

namespace quant {

/// Quantizes one row to per-row symmetric int8: scale = maxabs / 127 and
/// codes[j] = round-half-away-from-zero(row[j] / scale), clamped to
/// [-127, 127]. The scheme is symmetric, so the zero point is identically
/// 0 and is not stored; rows headed for this path are roughly
/// zero-centered (L2-normalized embeddings), which symmetric quantization
/// serves without the cross-term corrections an asymmetric zero point
/// would force into the integer dot product.
///
/// Guarantees |row[j] - scale * codes[j]| <= scale / 2 (within float
/// rounding) for every element; an all-zero row gets scale 0 and all-zero
/// codes, which dequantizes back to exact zeros.
///
/// Non-finite input policy: REJECT. A row containing NaN or +/-inf
/// returns InvalidArgument and writes nothing — a non-finite embedding is
/// a training bug that saturating to +/-127 would silently serve forever.
common::Status QuantizeRow(const float* row, int64_t d, int8_t* codes,
                           float* scale);

/// Inverse of QuantizeRow: out[j] = scale * codes[j]. Pure scalar float
/// math in a fixed order, so every caller (re-rank, k-means, brute-force
/// reference) reconstructs bit-identical values on every ISA.
void DequantizeRow(const int8_t* codes, int64_t d, float scale, float* out);

/// fp32 -> bf16 with round-to-nearest-even; NaN stays a (quiet) NaN.
uint16_t Bf16FromFloat(float v);

/// bf16 -> fp32. Exact: the bf16 pattern is the fp32 pattern with the low
/// 16 mantissa bits zero, so decode is a bit shift with no rounding.
float FloatFromBf16(uint16_t bits);

void Bf16EncodeRow(const float* row, int64_t d, uint16_t* out);
void Bf16DecodeRow(const uint16_t* in, int64_t d, float* out);

}  // namespace quant

/// One dtype-tagged tensor as stored by the v3 checkpoint format. Exactly
/// the payload vector(s) matching `dtype` are populated.
struct QuantTensor {
  TensorDtype dtype = TensorDtype::kFloat32;
  int64_t rows = 0;
  int64_t cols = 0;
  std::vector<float> f32;       ///< kFloat32: rows * cols values
  std::vector<int8_t> codes;    ///< kInt8: rows * cols codes
  std::vector<float> scales;    ///< kInt8: one scale per row
  std::vector<uint16_t> bf16;   ///< kBf16: rows * cols values
};

/// Storage footprint of the populated payload(s), scales included.
size_t QuantTensorBytes(const QuantTensor& q);

/// Quantizes an fp32 tensor row-wise to `dtype`. kFloat32 copies, kInt8
/// applies quant::QuantizeRow per row (and inherits its reject-non-finite
/// policy), kBf16 rounds every element to nearest-even.
common::Result<QuantTensor> QuantizeTensor(const tensor::Tensor& t,
                                           TensorDtype dtype);

/// Reconstructs the fp32 view of `q` (exact for kFloat32/kBf16 values,
/// scale * code for kInt8) — the read-compat path that lets every legacy
/// fp32 consumer load a v3 quantized checkpoint.
tensor::TensorPtr DequantizeTensor(const QuantTensor& q);

}  // namespace desalign::nn

#endif  // DESALIGN_NN_QUANT_H_
