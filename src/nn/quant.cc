#include "nn/quant.h"

#include <cmath>
#include <cstring>

#include "common/check.h"

namespace desalign::nn {

using common::Status;

const char* DtypeName(TensorDtype dtype) {
  switch (dtype) {
    case TensorDtype::kFloat32:
      return "fp32";
    case TensorDtype::kInt8:
      return "int8";
    case TensorDtype::kBf16:
      return "bf16";
  }
  return "unknown";
}

common::Result<TensorDtype> ParseDtype(const std::string& name) {
  if (name == "fp32" || name == "float32") return TensorDtype::kFloat32;
  if (name == "int8") return TensorDtype::kInt8;
  if (name == "bf16" || name == "bfloat16") return TensorDtype::kBf16;
  return Status::InvalidArgument("unknown dtype '" + name +
                                 "' (expected fp32|int8|bf16)");
}

size_t DtypeBytes(TensorDtype dtype) {
  switch (dtype) {
    case TensorDtype::kFloat32:
      return sizeof(float);
    case TensorDtype::kInt8:
      return sizeof(int8_t);
    case TensorDtype::kBf16:
      return sizeof(uint16_t);
  }
  return 0;
}

namespace quant {

Status QuantizeRow(const float* row, int64_t d, int8_t* codes,
                   float* scale) {
  float maxabs = 0.0f;
  for (int64_t j = 0; j < d; ++j) {
    if (!std::isfinite(row[j])) {
      // Reject, never saturate: a NaN/inf embedding coordinate is a
      // training bug, and +/-127 codes would keep serving it silently.
      return Status::InvalidArgument(
          "cannot quantize row: non-finite value at column " +
          std::to_string(j));
    }
    const float a = std::fabs(row[j]);
    if (a > maxabs) maxabs = a;
  }
  if (maxabs == 0.0f) {
    *scale = 0.0f;
    for (int64_t j = 0; j < d; ++j) codes[j] = 0;
    return Status::Ok();
  }
  const float s = maxabs / 127.0f;
  *scale = s;
  for (int64_t j = 0; j < d; ++j) {
    // Round half away from zero via floor/ceil: deterministic regardless
    // of the process FP rounding mode, unlike lrintf.
    const float v = row[j] / s;
    float r = v >= 0.0f ? std::floor(v + 0.5f) : std::ceil(v - 0.5f);
    if (r > 127.0f) r = 127.0f;
    if (r < -127.0f) r = -127.0f;
    codes[j] = static_cast<int8_t>(r);
  }
  return Status::Ok();
}

void DequantizeRow(const int8_t* codes, int64_t d, float scale, float* out) {
  for (int64_t j = 0; j < d; ++j) {
    out[j] = scale * static_cast<float>(codes[j]);
  }
}

uint16_t Bf16FromFloat(float v) {
  uint32_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  if ((bits & 0x7fffffffu) > 0x7f800000u) {
    // NaN: truncate but force a mantissa bit so it stays NaN (quiet).
    return static_cast<uint16_t>((bits >> 16) | 0x0040u);
  }
  // Round to nearest, ties to even: add 0x7fff plus the lsb of the result.
  bits += 0x7fffu + ((bits >> 16) & 1u);
  return static_cast<uint16_t>(bits >> 16);
}

float FloatFromBf16(uint16_t bits) {
  const uint32_t wide = static_cast<uint32_t>(bits) << 16;
  float out = 0.0f;
  std::memcpy(&out, &wide, sizeof(out));
  return out;
}

void Bf16EncodeRow(const float* row, int64_t d, uint16_t* out) {
  for (int64_t j = 0; j < d; ++j) out[j] = Bf16FromFloat(row[j]);
}

void Bf16DecodeRow(const uint16_t* in, int64_t d, float* out) {
  for (int64_t j = 0; j < d; ++j) out[j] = FloatFromBf16(in[j]);
}

}  // namespace quant

size_t QuantTensorBytes(const QuantTensor& q) {
  switch (q.dtype) {
    case TensorDtype::kFloat32:
      return q.f32.size() * sizeof(float);
    case TensorDtype::kInt8:
      return q.codes.size() * sizeof(int8_t) +
             q.scales.size() * sizeof(float);
    case TensorDtype::kBf16:
      return q.bf16.size() * sizeof(uint16_t);
  }
  return 0;
}

common::Result<QuantTensor> QuantizeTensor(const tensor::Tensor& t,
                                           TensorDtype dtype) {
  QuantTensor q;
  q.dtype = dtype;
  q.rows = t.rows();
  q.cols = t.cols();
  const int64_t rows = q.rows;
  const int64_t cols = q.cols;
  const float* data = t.data().data();
  switch (dtype) {
    case TensorDtype::kFloat32:
      q.f32 = t.data();
      break;
    case TensorDtype::kInt8:
      q.codes.resize(static_cast<size_t>(rows * cols));
      q.scales.resize(static_cast<size_t>(rows));
      for (int64_t r = 0; r < rows; ++r) {
        const Status status =
            quant::QuantizeRow(data + r * cols, cols,
                               q.codes.data() + r * cols,
                               q.scales.data() + r);
        if (!status.ok()) {
          return Status::InvalidArgument("row " + std::to_string(r) + ": " +
                                         status.message());
        }
      }
      break;
    case TensorDtype::kBf16:
      q.bf16.resize(static_cast<size_t>(rows * cols));
      quant::Bf16EncodeRow(data, rows * cols, q.bf16.data());
      break;
  }
  return q;
}

tensor::TensorPtr DequantizeTensor(const QuantTensor& q) {
  std::vector<float> data(static_cast<size_t>(q.rows * q.cols));
  switch (q.dtype) {
    case TensorDtype::kFloat32:
      DESALIGN_CHECK_EQ(q.f32.size(), data.size());
      data = q.f32;
      break;
    case TensorDtype::kInt8:
      DESALIGN_CHECK_EQ(q.codes.size(), data.size());
      DESALIGN_CHECK_EQ(static_cast<int64_t>(q.scales.size()), q.rows);
      for (int64_t r = 0; r < q.rows; ++r) {
        quant::DequantizeRow(q.codes.data() + r * q.cols, q.cols,
                             q.scales[static_cast<size_t>(r)],
                             data.data() + r * q.cols);
      }
      break;
    case TensorDtype::kBf16:
      DESALIGN_CHECK_EQ(q.bf16.size(), data.size());
      quant::Bf16DecodeRow(q.bf16.data(), q.rows * q.cols, data.data());
      break;
  }
  return tensor::Tensor::FromData(q.rows, q.cols, std::move(data));
}

}  // namespace desalign::nn
