#include "nn/optimizer.h"

#include <cmath>

#include "common/check.h"

namespace desalign::nn {

AdamW::AdamW(std::vector<TensorPtr> params, AdamWConfig config)
    : params_(std::move(params)), config_(config) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const auto& p : params_) {
    m_.emplace_back(p->size(), 0.0f);
    v_.emplace_back(p->size(), 0.0f);
  }
}

void AdamW::Step() {
  ++step_;
  const float bc1 = 1.0f - std::pow(config_.beta1,
                                    static_cast<float>(step_));
  const float bc2 = 1.0f - std::pow(config_.beta2,
                                    static_cast<float>(step_));
  for (size_t k = 0; k < params_.size(); ++k) {
    auto& p = *params_[k];
    if (!p.has_grad()) continue;
    auto& data = p.data();
    const auto& g = p.grad();
    auto& m = m_[k];
    auto& v = v_[k];
    for (size_t i = 0; i < data.size(); ++i) {
      m[i] = config_.beta1 * m[i] + (1.0f - config_.beta1) * g[i];
      v[i] = config_.beta2 * v[i] + (1.0f - config_.beta2) * g[i] * g[i];
      const float m_hat = m[i] / bc1;
      const float v_hat = v[i] / bc2;
      data[i] -= config_.lr * (m_hat / (std::sqrt(v_hat) + config_.eps) +
                               config_.weight_decay * data[i]);
    }
  }
}

void AdamW::ZeroGrad() {
  for (const auto& p : params_) p->ZeroGrad();
}

common::Status AdamW::RestoreState(int64_t step,
                                   std::vector<std::vector<float>> m,
                                   std::vector<std::vector<float>> v) {
  if (step < 0) {
    return common::Status::InvalidArgument("negative optimizer step");
  }
  if (m.size() != params_.size() || v.size() != params_.size()) {
    return common::Status::InvalidArgument(
        "optimizer state holds " + std::to_string(m.size()) +
        " moment buffers, optimizer has " + std::to_string(params_.size()) +
        " parameters");
  }
  for (size_t k = 0; k < params_.size(); ++k) {
    if (m[k].size() != params_[k]->data().size() ||
        v[k].size() != params_[k]->data().size()) {
      return common::Status::InvalidArgument(
          "optimizer moment size mismatch for parameter " +
          std::to_string(k));
    }
  }
  step_ = step;
  m_ = std::move(m);
  v_ = std::move(v);
  return common::Status::Ok();
}

CosineWarmupSchedule::CosineWarmupSchedule(float base_lr, int64_t total_steps,
                                           double warmup_fraction,
                                           float min_lr_ratio)
    : base_lr_(base_lr),
      total_steps_(total_steps),
      warmup_steps_(static_cast<int64_t>(warmup_fraction *
                                         static_cast<double>(total_steps))),
      min_lr_(base_lr * min_lr_ratio) {
  DESALIGN_CHECK_GT(total_steps, 0);
}

float CosineWarmupSchedule::LrAt(int64_t step) const {
  if (warmup_steps_ > 0 && step < warmup_steps_) {
    return base_lr_ * static_cast<float>(step + 1) /
           static_cast<float>(warmup_steps_);
  }
  const double progress =
      total_steps_ > warmup_steps_
          ? static_cast<double>(step - warmup_steps_) /
                static_cast<double>(total_steps_ - warmup_steps_)
          : 1.0;
  const double clamped = progress < 0.0 ? 0.0 : (progress > 1.0 ? 1.0
                                                                : progress);
  const double cosine = 0.5 * (1.0 + std::cos(3.14159265358979 * clamped));
  return static_cast<float>(min_lr_ + (base_lr_ - min_lr_) * cosine);
}

double ClipGradNorm(const std::vector<TensorPtr>& params, double max_norm) {
  double total = 0.0;
  for (const auto& p : params) {
    if (!p->has_grad()) continue;
    for (float g : p->grad()) total += static_cast<double>(g) * g;
  }
  const double norm = std::sqrt(total);
  if (norm > max_norm && norm > 0.0) {
    const float scale = static_cast<float>(max_norm / norm);
    for (const auto& p : params) {
      if (!p->has_grad()) continue;
      for (float& g : p->grad()) g *= scale;
    }
  }
  return norm;
}

}  // namespace desalign::nn
