#ifndef DESALIGN_CLI_CLI_H_
#define DESALIGN_CLI_CLI_H_

#include <ostream>
#include <string>
#include <vector>

#include "common/status.h"

namespace desalign::cli {

/// Entry point for the `desalign` command-line tool. Subcommands:
///
///   generate  --preset=FBDB15K --entities=600 --seed-ratio=0.2
///             --image-ratio=0.9 --text-ratio=0.95 --seed=7 --out=DIR
///       Samples a synthetic MMEA dataset and writes it to DIR.
///
///   stats     --data=DIR | --preset=NAME [--entities=N]
///       Prints Table-I-style statistics.
///
///   run       --method=DESAlign [--data=DIR | --preset=NAME] [--epochs=..]
///             [--dim=..] [--iterative] [--np=..] [--csls] [--seed=..]
///       Trains one method and reports H@1/H@5/H@10/MRR plus timings.
///
///   sweep     --variable=image_ratio|text_ratio|seed_ratio
///             --values=0.1,0.3,0.5 --methods=EVA,DESAlign --preset=NAME
///       Runs a robustness sweep and prints one row per method.
///
///   serve-bench  [--preset=NAME | --data=DIR] [--method=DESAlign]
///             [--epochs=..] [--queries=..] [--k=..] [--max-batch=..]
///             [--max-wait-ms=..] [--submitters=..] [--threads=..]
///             [--checkpoint=PATH]
///       Trains briefly, persists the fused embeddings through an
///       nn::serialize checkpoint, rebuilds a serve::EmbeddingStore from
///       it, replays queries through serve::BatchQueue from concurrent
///       submitters, and prints a latency/throughput table (p50/p95).
///
///   quantize  --in=CKPT --out=CKPT [--dtype=int8|bf16|fp32] [--tensor=0]
///       Loads an embedding table from a checkpoint, converts it to the
///       requested storage dtype (per-row symmetric int8 or bf16), and
///       writes a dtype-tagged v3 checkpoint for the serving path.
///
///   bench-quant  [--out=BENCH_quant.json] [--entities-list=..] [--dim=..]
///             [--queries=..] [--k=..] [--rerank=..] [--clusters=..]
///             [--noise=..] [--smoke]
///       Quantization bench: per-dtype memory footprint, latency,
///       recall@k / Hits@1 vs fp32 brute force, and the full-probe
///       bit-exactness gate. Writes schema desalign.quant_bench.v1.
///
/// Every subcommand accepts --threads=N to size the global worker pool.
///
/// Returns the process exit code; all output goes to `out` (results) and
/// stderr (diagnostics), so the tool is scriptable and testable.
int RunCli(const std::vector<std::string>& args, std::ostream& out);

/// argv adapter used by the binary.
int RunCliMain(int argc, char** argv);

}  // namespace desalign::cli

#endif  // DESALIGN_CLI_CLI_H_
