#include "cli/cli.h"

#include <cstdio>
#include <memory>

#include "align/iterative.h"
#include "align/metrics.h"
#include "common/flags.h"
#include "common/strings.h"
#include "core/desalign.h"
#include "eval/csv.h"
#include "eval/harness.h"
#include "eval/table.h"
#include "kg/io.h"
#include "kg/presets.h"
#include "kg/synthetic.h"

namespace desalign::cli {

namespace {

using common::FlagParser;
using common::Result;
using common::Status;

std::vector<const char*> ToArgv(const std::vector<std::string>& args) {
  std::vector<const char*> argv;
  argv.reserve(args.size());
  for (const auto& a : args) argv.push_back(a.c_str());
  return argv;
}

// Dataset source flags shared by stats/run/sweep.
struct DatasetFlags {
  std::string data_dir;
  std::string preset = "FBDB15K";
  int64_t entities = 0;       // 0 = preset default
  double seed_ratio = -1.0;   // <0 = preset default
  double image_ratio = -1.0;
  double text_ratio = -1.0;
  int64_t seed = -1;

  void Register(FlagParser& parser) {
    parser.AddString("data", "", "load a dataset directory instead of "
                     "generating one", &data_dir);
    parser.AddString("preset", "FBDB15K",
                     "generator preset (FBDB15K, FBYG15K, DBP15K-ZH-EN, "
                     "DBP15K-JA-EN, DBP15K-FR-EN)",
                     &preset);
    parser.AddInt64("entities", 0, "entities per KG (0 = preset default)",
                    &entities);
    parser.AddDouble("seed-ratio", -1.0, "R_seed (<0 = preset default)",
                     &seed_ratio);
    parser.AddDouble("image-ratio", -1.0, "R_img (<0 = preset default)",
                     &image_ratio);
    parser.AddDouble("text-ratio", -1.0, "R_tex (<0 = preset default)",
                     &text_ratio);
    parser.AddInt64("seed", -1, "generator seed (<0 = preset default)",
                    &seed);
  }

  Result<kg::AlignedKgPair> Load() const {
    if (!data_dir.empty()) return kg::LoadDataset(data_dir);
    DESALIGN_ASSIGN_OR_RETURN(kg::SyntheticSpec spec,
                              kg::PresetByName(preset));
    if (entities > 0) spec.num_entities = entities;
    if (seed_ratio >= 0) spec.seed_ratio = seed_ratio;
    if (image_ratio >= 0) spec.image_ratio = image_ratio;
    if (text_ratio >= 0) spec.text_ratio = text_ratio;
    if (seed >= 0) spec.seed = static_cast<uint64_t>(seed);
    return kg::GenerateSyntheticPair(spec);
  }
};

Result<eval::NamedFactory> FindMethod(const std::string& name) {
  for (auto& f : eval::AllBasicMethods()) {
    if (f.name == name) return f;
  }
  return Status::NotFound("unknown method '" + name +
                          "'; see `desalign run --help`");
}

Status CmdGenerate(const std::vector<std::string>& args, std::ostream& out) {
  FlagParser parser("desalign generate: sample a synthetic MMEA dataset");
  DatasetFlags dataset;
  dataset.Register(parser);
  std::string out_dir;
  parser.AddString("out", "", "output directory (required)", &out_dir);
  auto argv = ToArgv(args);
  DESALIGN_RETURN_NOT_OK(
      parser.Parse(static_cast<int>(argv.size()), argv.data(), 0));
  if (out_dir.empty()) {
    return Status::InvalidArgument("generate requires --out=DIR");
  }
  DESALIGN_ASSIGN_OR_RETURN(auto pair, dataset.Load());
  DESALIGN_RETURN_NOT_OK(kg::SaveDataset(pair, out_dir));
  out << "wrote " << pair.name << " (" << pair.source.num_entities << "+"
      << pair.target.num_entities << " entities, "
      << pair.train_pairs.size() << " seeds) to " << out_dir << "\n";
  return Status::Ok();
}

Status CmdStats(const std::vector<std::string>& args, std::ostream& out) {
  FlagParser parser("desalign stats: dataset statistics");
  DatasetFlags dataset;
  dataset.Register(parser);
  auto argv = ToArgv(args);
  DESALIGN_RETURN_NOT_OK(
      parser.Parse(static_cast<int>(argv.size()), argv.data(), 0));
  DESALIGN_ASSIGN_OR_RETURN(auto pair, dataset.Load());
  eval::TablePrinter table({"KG", "Ent.", "Rel.", "Att.", "R.Triples",
                            "A.Triples", "Image", "text%", "image%"});
  for (const auto* kg : {&pair.source, &pair.target}) {
    auto s = kg::ComputeStatistics(*kg);
    table.AddRow({kg->name, std::to_string(s.entities),
                  std::to_string(s.relations), std::to_string(s.attributes),
                  std::to_string(s.relation_triples),
                  std::to_string(s.attribute_triples),
                  std::to_string(s.images),
                  eval::Pct(kg->text_features.PresentRatio()),
                  eval::Pct(kg->visual_features.PresentRatio())});
  }
  table.Print(out);
  out << "alignments: " << pair.train_pairs.size() << " seed / "
      << pair.test_pairs.size() << " test (R_seed="
      << eval::Pct(pair.SeedRatio()) << "%)\n";
  return Status::Ok();
}

Status CmdRun(const std::vector<std::string>& args, std::ostream& out) {
  FlagParser parser("desalign run: train and evaluate one method");
  DatasetFlags dataset;
  dataset.Register(parser);
  std::string method_name;
  int64_t epochs;
  int64_t dim;
  int64_t np;
  int64_t method_seed;
  bool iterative;
  bool csls;
  parser.AddString("method", "DESAlign",
                   "TransE, IPTransE, PoE, GCN-align, AttrGNN, MMEA, EVA, "
                   "MCLEA, MEAformer or DESAlign",
                   &method_name);
  parser.AddInt64("epochs", 60, "training epochs", &epochs);
  parser.AddInt64("dim", 32, "hidden dimension", &dim);
  parser.AddInt64("np", 2, "DESAlign propagation iterations", &np);
  parser.AddInt64("method-seed", 7, "model init seed", &method_seed);
  parser.AddBool("iterative", false, "apply the iterative strategy",
                 &iterative);
  parser.AddBool("csls", false, "apply CSLS to the decoded similarities",
                 &csls);
  auto argv = ToArgv(args);
  DESALIGN_RETURN_NOT_OK(
      parser.Parse(static_cast<int>(argv.size()), argv.data(), 0));

  DESALIGN_ASSIGN_OR_RETURN(auto data, dataset.Load());
  auto& settings = eval::GlobalHarnessSettings();
  settings.dim = dim;
  settings.epochs = static_cast<int>(epochs);
  settings.propagation_iterations = static_cast<int>(np);
  DESALIGN_ASSIGN_OR_RETURN(auto factory, FindMethod(method_name));

  align::IterativeConfig iter;
  iter.epochs_per_round = static_cast<int>(epochs) / 2;
  auto result =
      eval::RunCell(factory, data, static_cast<uint64_t>(method_seed),
                    iterative, iter, csls);
  eval::TablePrinter table({"Method", "Dataset", "H@1", "H@5", "H@10",
                            "MRR", "train(s)", "decode(s)"});
  table.AddRow({method_name, data.name, eval::Pct(result.metrics.h_at_1),
                eval::Pct(result.metrics.h_at_5),
                eval::Pct(result.metrics.h_at_10),
                eval::Pct(result.metrics.mrr),
                eval::Secs(result.train_seconds),
                eval::Secs(result.decode_seconds)});
  table.Print(out);
  return Status::Ok();
}

Status CmdSweep(const std::vector<std::string>& args, std::ostream& out) {
  FlagParser parser("desalign sweep: robustness sweep over a dataset knob");
  DatasetFlags dataset;
  dataset.Register(parser);
  std::string variable;
  std::string values_text;
  std::string methods_text;
  std::string csv_path;
  int64_t epochs;
  int64_t dim;
  parser.AddString("variable", "image_ratio",
                   "image_ratio, text_ratio or seed_ratio", &variable);
  parser.AddString("csv", "", "also write results to this CSV file",
                   &csv_path);
  parser.AddString("values", "0.1,0.3,0.5,0.7,0.9",
                   "comma-separated ratios", &values_text);
  parser.AddString("methods", "EVA,MEAformer,DESAlign",
                   "comma-separated method names", &methods_text);
  parser.AddInt64("epochs", 40, "training epochs", &epochs);
  parser.AddInt64("dim", 32, "hidden dimension", &dim);
  auto argv = ToArgv(args);
  DESALIGN_RETURN_NOT_OK(
      parser.Parse(static_cast<int>(argv.size()), argv.data(), 0));
  if (!dataset.data_dir.empty()) {
    return Status::InvalidArgument(
        "sweep regenerates datasets per ratio; use --preset, not --data");
  }

  DESALIGN_ASSIGN_OR_RETURN(auto values,
                            common::ParseDoubleList(values_text));
  if (values.empty()) {
    return Status::InvalidArgument("--values is empty");
  }
  auto method_names = common::ParseStringList(methods_text);
  std::vector<eval::NamedFactory> methods;
  for (const auto& name : method_names) {
    DESALIGN_ASSIGN_OR_RETURN(auto factory, FindMethod(name));
    methods.push_back(std::move(factory));
  }

  auto& settings = eval::GlobalHarnessSettings();
  settings.dim = dim;
  settings.epochs = static_cast<int>(epochs);

  std::vector<std::string> headers = {"Model (H@1)"};
  for (double v : values) headers.push_back(common::FormatDouble(v, 2));
  eval::TablePrinter table(headers);
  eval::CsvRecorder csv;
  std::vector<std::vector<std::string>> rows(methods.size());
  for (size_t mi = 0; mi < methods.size(); ++mi) {
    rows[mi].push_back(methods[mi].name);
  }
  for (double value : values) {
    DatasetFlags point = dataset;
    if (variable == "image_ratio") {
      point.image_ratio = value;
    } else if (variable == "text_ratio") {
      point.text_ratio = value;
    } else if (variable == "seed_ratio") {
      point.seed_ratio = value;
    } else {
      return Status::InvalidArgument("unknown sweep variable '" + variable +
                                     "'");
    }
    DESALIGN_ASSIGN_OR_RETURN(auto data, point.Load());
    for (size_t mi = 0; mi < methods.size(); ++mi) {
      auto cell = eval::RunCell(methods[mi], data, /*seed=*/7);
      rows[mi].push_back(eval::Pct(cell.metrics.h_at_1));
      csv.AddResult(methods[mi].name, data.name, cell,
                    {{variable, common::FormatDouble(value, 4)}});
    }
  }
  for (auto& row : rows) table.AddRow(std::move(row));
  table.Print(out);
  if (!csv_path.empty()) {
    DESALIGN_RETURN_NOT_OK(csv.WriteFile(csv_path));
    out << "wrote " << csv.num_rows() << " rows to " << csv_path << "\n";
  }
  return Status::Ok();
}

constexpr char kTopLevelUsage[] =
    "usage: desalign <command> [flags]\n"
    "commands:\n"
    "  generate   sample a synthetic MMEA dataset and write it to disk\n"
    "  stats      print dataset statistics\n"
    "  run        train + evaluate one alignment method\n"
    "  sweep      robustness sweep over image/text/seed ratio\n"
    "run `desalign <command> --help` for command flags.\n";

}  // namespace

int RunCli(const std::vector<std::string>& args, std::ostream& out) {
  if (args.empty()) {
    out << kTopLevelUsage;
    return 2;
  }
  const std::string& command = args[0];
  std::vector<std::string> rest(args.begin() + 1, args.end());
  Status status;
  if (command == "generate") {
    status = CmdGenerate(rest, out);
  } else if (command == "stats") {
    status = CmdStats(rest, out);
  } else if (command == "run") {
    status = CmdRun(rest, out);
  } else if (command == "sweep") {
    status = CmdSweep(rest, out);
  } else if (command == "--help" || command == "-h" || command == "help") {
    out << kTopLevelUsage;
    return 0;
  } else {
    out << "unknown command '" << command << "'\n" << kTopLevelUsage;
    return 2;
  }
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}

int RunCliMain(int argc, char** argv) {
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  return RunCli(args, std::cout);
}

}  // namespace desalign::cli
