#include "cli/cli.h"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <future>
#include <memory>
#include <thread>

#include "align/fusion_model.h"
#include "align/iterative.h"
#include "align/metrics.h"
#include "common/flags.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "core/desalign.h"
#include "eval/csv.h"
#include "eval/harness.h"
#include "common/table.h"
#include "index/index_bench.h"
#include "index/ivf.h"
#include "index/quant_bench.h"
#include "nn/quant.h"
#include "kg/io.h"
#include "kg/presets.h"
#include "kg/synthetic.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "serve/batch_queue.h"
#include "serve/embedding_store.h"
#include "serve/overload_bench.h"
#include "serve/stats.h"
#include "serve/topk.h"
#include "tensor/kernels/kernel_bench.h"
#include "tensor/kernels/solver/find_db.h"
#include "tensor/kernels/solver/solver.h"
#include "tensor/kernels/solver/tuner.h"

namespace desalign::cli {

namespace {

using common::FlagParser;
using common::Result;
using common::Status;

std::vector<const char*> ToArgv(const std::vector<std::string>& args) {
  std::vector<const char*> argv;
  argv.reserve(args.size());
  for (const auto& a : args) argv.push_back(a.c_str());
  return argv;
}

// Global --threads flag, registered by every subcommand so one knob sizes
// ThreadPool::Global() for all parallel kernels.
struct ThreadsFlag {
  int64_t threads = 0;

  void Register(FlagParser& parser) {
    common::AddThreadsFlag(parser, &threads);
  }
  Status Apply() const { return common::ApplyThreadsFlag(threads); }
};

// Global --metrics-out flag, registered by every subcommand: when set, the
// run starts from a clean registry/span tree with detail-gated measurements
// enabled, and ends by writing an obs::RunReport (format by extension,
// .json or .csv). See docs/OBSERVABILITY.md for the schema.
struct MetricsFlag {
  std::string path;

  void Register(FlagParser& parser) {
    parser.AddString("metrics-out", "",
                     "write a metrics/trace report to this .json or .csv "
                     "file at exit (enables detailed instrumentation)",
                     &path);
  }
  Status Begin() const {
    if (path.empty()) return Status::Ok();
    // Reject a bad path before the run, not after a long training job.
    DESALIGN_RETURN_NOT_OK(obs::RunReport::ValidatePath(path));
    obs::MetricsRegistry::Global().ResetAll();
    obs::ResetSpanTree();
    obs::MetricsRegistry::Global().set_detail_enabled(true);
    return Status::Ok();
  }
  Status Finish(std::ostream& out) const {
    if (path.empty()) return Status::Ok();
    obs::MetricsRegistry::Global().set_detail_enabled(false);
    DESALIGN_RETURN_NOT_OK(obs::RunReport::Collect().WriteTo(path));
    out << "wrote metrics report to " << path << "\n";
    return Status::Ok();
  }
};

// Dataset source flags shared by stats/run/sweep.
struct DatasetFlags {
  std::string data_dir;
  std::string preset = "FBDB15K";
  int64_t entities = 0;       // 0 = preset default
  double seed_ratio = -1.0;   // <0 = preset default
  double image_ratio = -1.0;
  double text_ratio = -1.0;
  int64_t seed = -1;

  void Register(FlagParser& parser) {
    parser.AddString("data", "", "load a dataset directory instead of "
                     "generating one", &data_dir);
    parser.AddString("preset", "FBDB15K",
                     "generator preset (FBDB15K, FBYG15K, DBP15K-ZH-EN, "
                     "DBP15K-JA-EN, DBP15K-FR-EN)",
                     &preset);
    parser.AddInt64("entities", 0, "entities per KG (0 = preset default)",
                    &entities);
    parser.AddDouble("seed-ratio", -1.0, "R_seed (<0 = preset default)",
                     &seed_ratio);
    parser.AddDouble("image-ratio", -1.0, "R_img (<0 = preset default)",
                     &image_ratio);
    parser.AddDouble("text-ratio", -1.0, "R_tex (<0 = preset default)",
                     &text_ratio);
    parser.AddInt64("seed", -1, "generator seed (<0 = preset default)",
                    &seed);
  }

  Result<kg::AlignedKgPair> Load() const {
    if (!data_dir.empty()) return kg::LoadDataset(data_dir);
    DESALIGN_ASSIGN_OR_RETURN(kg::SyntheticSpec spec,
                              kg::PresetByName(preset));
    if (entities > 0) spec.num_entities = entities;
    if (seed_ratio >= 0) spec.seed_ratio = seed_ratio;
    if (image_ratio >= 0) spec.image_ratio = image_ratio;
    if (text_ratio >= 0) spec.text_ratio = text_ratio;
    if (seed >= 0) spec.seed = static_cast<uint64_t>(seed);
    return kg::GenerateSyntheticPair(spec);
  }
};

Result<eval::NamedFactory> FindMethod(const std::string& name) {
  for (auto& f : eval::AllBasicMethods()) {
    if (f.name == name) return f;
  }
  return Status::NotFound("unknown method '" + name +
                          "'; see `desalign run --help`");
}

Status CmdGenerate(const std::vector<std::string>& args, std::ostream& out) {
  FlagParser parser("desalign generate: sample a synthetic MMEA dataset");
  DatasetFlags dataset;
  dataset.Register(parser);
  ThreadsFlag threads;
  threads.Register(parser);
  MetricsFlag metrics;
  metrics.Register(parser);
  std::string out_dir;
  parser.AddString("out", "", "output directory (required)", &out_dir);
  auto argv = ToArgv(args);
  DESALIGN_RETURN_NOT_OK(
      parser.Parse(static_cast<int>(argv.size()), argv.data(), 0));
  DESALIGN_RETURN_NOT_OK(threads.Apply());
  DESALIGN_RETURN_NOT_OK(metrics.Begin());
  if (out_dir.empty()) {
    return Status::InvalidArgument("generate requires --out=DIR");
  }
  DESALIGN_ASSIGN_OR_RETURN(auto pair, dataset.Load());
  DESALIGN_RETURN_NOT_OK(kg::SaveDataset(pair, out_dir));
  out << "wrote " << pair.name << " (" << pair.source.num_entities << "+"
      << pair.target.num_entities << " entities, "
      << pair.train_pairs.size() << " seeds) to " << out_dir << "\n";
  return metrics.Finish(out);
}

Status CmdStats(const std::vector<std::string>& args, std::ostream& out) {
  FlagParser parser("desalign stats: dataset statistics");
  DatasetFlags dataset;
  dataset.Register(parser);
  ThreadsFlag threads;
  threads.Register(parser);
  MetricsFlag metrics;
  metrics.Register(parser);
  auto argv = ToArgv(args);
  DESALIGN_RETURN_NOT_OK(
      parser.Parse(static_cast<int>(argv.size()), argv.data(), 0));
  DESALIGN_RETURN_NOT_OK(threads.Apply());
  DESALIGN_RETURN_NOT_OK(metrics.Begin());
  DESALIGN_ASSIGN_OR_RETURN(auto pair, dataset.Load());
  common::TablePrinter table({"KG", "Ent.", "Rel.", "Att.", "R.Triples",
                            "A.Triples", "Image", "text%", "image%"});
  for (const auto* kg : {&pair.source, &pair.target}) {
    auto s = kg::ComputeStatistics(*kg);
    table.AddRow({kg->name, std::to_string(s.entities),
                  std::to_string(s.relations), std::to_string(s.attributes),
                  std::to_string(s.relation_triples),
                  std::to_string(s.attribute_triples),
                  std::to_string(s.images),
                  common::Pct(kg->text_features.PresentRatio()),
                  common::Pct(kg->visual_features.PresentRatio())});
  }
  table.Print(out);
  out << "alignments: " << pair.train_pairs.size() << " seed / "
      << pair.test_pairs.size() << " test (R_seed="
      << common::Pct(pair.SeedRatio()) << "%)\n";
  return metrics.Finish(out);
}

Status CmdRun(const std::vector<std::string>& args, std::ostream& out) {
  FlagParser parser("desalign run: train and evaluate one method");
  DatasetFlags dataset;
  dataset.Register(parser);
  ThreadsFlag threads;
  threads.Register(parser);
  MetricsFlag metrics;
  metrics.Register(parser);
  std::string method_name;
  int64_t epochs;
  int64_t dim;
  int64_t np;
  int64_t method_seed;
  bool iterative;
  bool csls;
  parser.AddString("method", "DESAlign",
                   "TransE, IPTransE, PoE, GCN-align, AttrGNN, MMEA, EVA, "
                   "MCLEA, MEAformer or DESAlign",
                   &method_name);
  parser.AddInt64("epochs", 60, "training epochs", &epochs);
  parser.AddInt64("dim", 32, "hidden dimension", &dim);
  parser.AddInt64("np", 2, "DESAlign propagation iterations", &np);
  parser.AddInt64("method-seed", 7, "model init seed", &method_seed);
  parser.AddBool("iterative", false, "apply the iterative strategy",
                 &iterative);
  parser.AddBool("csls", false, "apply CSLS to the decoded similarities",
                 &csls);
  auto argv = ToArgv(args);
  DESALIGN_RETURN_NOT_OK(
      parser.Parse(static_cast<int>(argv.size()), argv.data(), 0));
  DESALIGN_RETURN_NOT_OK(threads.Apply());
  DESALIGN_RETURN_NOT_OK(metrics.Begin());

  DESALIGN_ASSIGN_OR_RETURN(auto data, dataset.Load());
  auto& settings = eval::GlobalHarnessSettings();
  settings.dim = dim;
  settings.epochs = static_cast<int>(epochs);
  settings.propagation_iterations = static_cast<int>(np);
  DESALIGN_ASSIGN_OR_RETURN(auto factory, FindMethod(method_name));

  align::IterativeConfig iter;
  iter.epochs_per_round = static_cast<int>(epochs) / 2;
  auto result =
      eval::RunCell(factory, data, static_cast<uint64_t>(method_seed),
                    iterative, iter, csls);
  common::TablePrinter table({"Method", "Dataset", "H@1", "H@5", "H@10",
                            "MRR", "train(s)", "decode(s)"});
  table.AddRow({method_name, data.name, common::Pct(result.metrics.h_at_1),
                common::Pct(result.metrics.h_at_5),
                common::Pct(result.metrics.h_at_10),
                common::Pct(result.metrics.mrr),
                common::Secs(result.train_seconds),
                common::Secs(result.decode_seconds)});
  table.Print(out);
  return metrics.Finish(out);
}

// train: crash-safe training of one fusion-family model. Unlike `run`, it
// writes rotating checksummed checkpoints while training and `--resume`
// continues an interrupted run bit-exactly (same final weights and metrics
// as an uninterrupted run with the same seed and thread count). The final
// parameters can additionally be exported with --out. See
// docs/ROBUSTNESS.md for the checkpoint format and resume semantics.
Status CmdTrain(const std::vector<std::string>& args, std::ostream& out) {
  FlagParser parser("desalign train: crash-safe training with checkpoints");
  DatasetFlags dataset;
  dataset.Register(parser);
  ThreadsFlag threads;
  threads.Register(parser);
  MetricsFlag metrics;
  metrics.Register(parser);
  std::string method_name;
  std::string checkpoint_dir;
  std::string out_path;
  int64_t epochs;
  int64_t dim;
  int64_t np;
  int64_t method_seed;
  int64_t checkpoint_every;
  int64_t checkpoint_keep;
  bool resume;
  parser.AddString("method", "DESAlign",
                   "fusion-family method (EVA, MCLEA, MEAformer, DESAlign)",
                   &method_name);
  parser.AddInt64("epochs", 60, "training epochs", &epochs);
  parser.AddInt64("dim", 32, "hidden dimension", &dim);
  parser.AddInt64("np", 2, "DESAlign propagation iterations", &np);
  parser.AddInt64("method-seed", 7, "model init seed", &method_seed);
  parser.AddString("checkpoint-dir", "",
                   "directory for rotating training checkpoints (required)",
                   &checkpoint_dir);
  parser.AddInt64("checkpoint-every", 5, "epochs between checkpoints",
                  &checkpoint_every);
  parser.AddInt64("checkpoint-keep", 3, "checkpoints retained",
                  &checkpoint_keep);
  parser.AddBool("resume", false,
                 "resume from the newest valid checkpoint in "
                 "--checkpoint-dir",
                 &resume);
  parser.AddString("out", "",
                   "also export the final parameters to this file",
                   &out_path);
  auto argv = ToArgv(args);
  DESALIGN_RETURN_NOT_OK(
      parser.Parse(static_cast<int>(argv.size()), argv.data(), 0));
  DESALIGN_RETURN_NOT_OK(threads.Apply());
  DESALIGN_RETURN_NOT_OK(metrics.Begin());
  if (checkpoint_dir.empty()) {
    return Status::InvalidArgument("train requires --checkpoint-dir=DIR");
  }
  if (checkpoint_every <= 0 || checkpoint_keep <= 0) {
    return Status::InvalidArgument(
        "--checkpoint-every and --checkpoint-keep must be positive");
  }

  DESALIGN_ASSIGN_OR_RETURN(auto data, dataset.Load());
  auto& settings = eval::GlobalHarnessSettings();
  settings.dim = dim;
  settings.epochs = static_cast<int>(epochs);
  settings.propagation_iterations = static_cast<int>(np);
  DESALIGN_ASSIGN_OR_RETURN(auto factory, FindMethod(method_name));
  auto method = factory.make(static_cast<uint64_t>(method_seed));
  auto* fusion = dynamic_cast<align::FusionAlignModel*>(method.get());
  if (fusion == nullptr) {
    return Status::InvalidArgument(
        "train needs a fusion-family method (EVA, MCLEA, MEAformer, "
        "DESAlign); '" + method_name + "' does not support checkpointing");
  }
  fusion->ConfigureCheckpointing(checkpoint_dir,
                                 static_cast<int>(checkpoint_every),
                                 static_cast<int>(checkpoint_keep), resume);

  common::Stopwatch train_clock;
  fusion->Fit(data);
  const double train_seconds = train_clock.ElapsedSeconds();
  auto sim = fusion->DecodeSimilarity(data);
  const auto ranking = align::MetricsFromSimilarity(*sim);

  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  common::TablePrinter table({"Method", "Dataset", "H@1", "H@10", "MRR",
                            "loss", "skips", "rollbacks", "train(s)"});
  table.AddRow({method_name, data.name, common::Pct(ranking.h_at_1),
                common::Pct(ranking.h_at_10), common::Pct(ranking.mrr),
                common::FormatDouble(reg.GetGauge("train.loss").value(), 6),
                std::to_string(reg.GetCounter("train.nonfinite_skips").value()),
                std::to_string(reg.GetCounter("train.rollbacks").value()),
                common::Secs(train_seconds)});
  table.Print(out);
  if (!out_path.empty()) {
    DESALIGN_RETURN_NOT_OK(fusion->SaveCheckpoint(out_path));
    out << "wrote final parameters to " << out_path << "\n";
  }
  return metrics.Finish(out);
}

Status CmdSweep(const std::vector<std::string>& args, std::ostream& out) {
  FlagParser parser("desalign sweep: robustness sweep over a dataset knob");
  DatasetFlags dataset;
  dataset.Register(parser);
  ThreadsFlag threads;
  threads.Register(parser);
  MetricsFlag metrics;
  metrics.Register(parser);
  std::string variable;
  std::string values_text;
  std::string methods_text;
  std::string csv_path;
  int64_t epochs;
  int64_t dim;
  parser.AddString("variable", "image_ratio",
                   "image_ratio, text_ratio or seed_ratio", &variable);
  parser.AddString("csv", "", "also write results to this CSV file",
                   &csv_path);
  parser.AddString("values", "0.1,0.3,0.5,0.7,0.9",
                   "comma-separated ratios", &values_text);
  parser.AddString("methods", "EVA,MEAformer,DESAlign",
                   "comma-separated method names", &methods_text);
  parser.AddInt64("epochs", 40, "training epochs", &epochs);
  parser.AddInt64("dim", 32, "hidden dimension", &dim);
  auto argv = ToArgv(args);
  DESALIGN_RETURN_NOT_OK(
      parser.Parse(static_cast<int>(argv.size()), argv.data(), 0));
  DESALIGN_RETURN_NOT_OK(threads.Apply());
  DESALIGN_RETURN_NOT_OK(metrics.Begin());
  if (!dataset.data_dir.empty()) {
    return Status::InvalidArgument(
        "sweep regenerates datasets per ratio; use --preset, not --data");
  }

  DESALIGN_ASSIGN_OR_RETURN(auto values,
                            common::ParseDoubleList(values_text));
  if (values.empty()) {
    return Status::InvalidArgument("--values is empty");
  }
  auto method_names = common::ParseStringList(methods_text);
  std::vector<eval::NamedFactory> methods;
  for (const auto& name : method_names) {
    DESALIGN_ASSIGN_OR_RETURN(auto factory, FindMethod(name));
    methods.push_back(std::move(factory));
  }

  auto& settings = eval::GlobalHarnessSettings();
  settings.dim = dim;
  settings.epochs = static_cast<int>(epochs);

  std::vector<std::string> headers = {"Model (H@1)"};
  for (double v : values) headers.push_back(common::FormatDouble(v, 2));
  common::TablePrinter table(headers);
  eval::CsvRecorder csv;
  std::vector<std::vector<std::string>> rows(methods.size());
  for (size_t mi = 0; mi < methods.size(); ++mi) {
    rows[mi].push_back(methods[mi].name);
  }
  for (double value : values) {
    DatasetFlags point = dataset;
    if (variable == "image_ratio") {
      point.image_ratio = value;
    } else if (variable == "text_ratio") {
      point.text_ratio = value;
    } else if (variable == "seed_ratio") {
      point.seed_ratio = value;
    } else {
      return Status::InvalidArgument("unknown sweep variable '" + variable +
                                     "'");
    }
    DESALIGN_ASSIGN_OR_RETURN(auto data, point.Load());
    for (size_t mi = 0; mi < methods.size(); ++mi) {
      auto cell = eval::RunCell(methods[mi], data, /*seed=*/7);
      rows[mi].push_back(common::Pct(cell.metrics.h_at_1));
      csv.AddResult(methods[mi].name, data.name, cell,
                    {{variable, common::FormatDouble(value, 4)}});
    }
  }
  for (auto& row : rows) table.AddRow(std::move(row));
  table.Print(out);
  if (!csv_path.empty()) {
    DESALIGN_RETURN_NOT_OK(csv.WriteFile(csv_path));
    out << "wrote " << csv.num_rows() << " rows to " << csv_path << "\n";
  }
  return metrics.Finish(out);
}

// serve-bench: the full online-retrieval journey — generate (or load) a
// dataset, train a fusion model briefly, persist its fused embeddings
// through an nn::serialize checkpoint, rebuild an EmbeddingStore from that
// checkpoint, then replay queries through BatchQueue + TopKRetriever from
// concurrent submitter threads and report latency/throughput.
Status CmdServeBench(const std::vector<std::string>& args,
                     std::ostream& out) {
  FlagParser parser(
      "desalign serve-bench: checkpoint-backed alignment query benchmark");
  DatasetFlags dataset;
  dataset.Register(parser);
  ThreadsFlag threads;
  threads.Register(parser);
  MetricsFlag metrics;
  metrics.Register(parser);
  std::string method_name;
  std::string checkpoint;
  int64_t epochs;
  int64_t dim;
  int64_t method_seed;
  int64_t num_queries;
  int64_t k;
  int64_t max_batch;
  int64_t submitters;
  int64_t block_rows;
  double max_wait_ms;
  std::string index_kind;
  int64_t nprobe;
  int64_t centroids;
  int64_t shards;
  parser.AddString("method", "DESAlign",
                   "fusion-family method to train (EVA, MCLEA, MEAformer, "
                   "DESAlign)",
                   &method_name);
  parser.AddString("checkpoint", "",
                   "embedding checkpoint path (empty = temp file, removed "
                   "after the run)",
                   &checkpoint);
  parser.AddInt64("epochs", 10, "training epochs before serving", &epochs);
  parser.AddInt64("dim", 32, "hidden dimension", &dim);
  parser.AddInt64("method-seed", 7, "model init seed", &method_seed);
  parser.AddInt64("queries", 2000, "queries to replay", &num_queries);
  parser.AddInt64("k", 10, "candidates per query", &k);
  parser.AddInt64("max-batch", 64, "BatchQueue max batch size", &max_batch);
  parser.AddInt64("submitters", 4, "concurrent submitter threads",
                  &submitters);
  parser.AddInt64("block", 256, "target rows per retrieval block",
                  &block_rows);
  parser.AddDouble("max-wait-ms", 1.0, "BatchQueue batching window",
                   &max_wait_ms);
  parser.AddString("index", "brute",
                   "retriever: brute (exact scan) or ivf (two-stage ANN)",
                   &index_kind);
  parser.AddInt64("nprobe", 8, "IVF cells probed per query", &nprobe);
  parser.AddInt64("centroids", 0, "IVF coarse cells (0 = ~sqrt(n))",
                  &centroids);
  parser.AddInt64("shards", 4, "IVF inverted-list shards", &shards);
  auto argv = ToArgv(args);
  DESALIGN_RETURN_NOT_OK(
      parser.Parse(static_cast<int>(argv.size()), argv.data(), 0));
  DESALIGN_RETURN_NOT_OK(threads.Apply());
  DESALIGN_RETURN_NOT_OK(metrics.Begin());
  if (num_queries <= 0 || k <= 0 || submitters <= 0) {
    return Status::InvalidArgument(
        "--queries, --k and --submitters must be positive");
  }

  // ---- Train a fusion model briefly ----
  DESALIGN_ASSIGN_OR_RETURN(auto data, dataset.Load());
  if (data.test_pairs.empty()) {
    return Status::InvalidArgument("dataset has no test pairs to replay");
  }
  auto& settings = eval::GlobalHarnessSettings();
  settings.dim = dim;
  settings.epochs = static_cast<int>(epochs);
  DESALIGN_ASSIGN_OR_RETURN(auto factory, FindMethod(method_name));
  auto method = factory.make(static_cast<uint64_t>(method_seed));
  common::Stopwatch train_clock;
  method->Fit(data);
  const double train_seconds = train_clock.ElapsedSeconds();
  auto* fusion = dynamic_cast<align::FusionAlignModel*>(method.get());
  if (fusion == nullptr) {
    return Status::InvalidArgument(
        "serve-bench needs a fusion-family method (EVA, MCLEA, MEAformer, "
        "DESAlign); '" + method_name + "' does not expose fused embeddings");
  }

  // ---- Checkpoint round-trip: model embeddings -> disk -> store ----
  auto embeddings = fusion->FusedEmbeddings();
  const int64_t num_source = fusion->num_source_entities();
  const int64_t num_target = embeddings->rows() - num_source;
  const int64_t d = embeddings->cols();
  std::vector<float> target_block(
      embeddings->data().begin() + num_source * d, embeddings->data().end());
  const auto built = serve::EmbeddingStore::FromRows(num_target, d,
                                                     std::move(target_block));
  const bool temp_checkpoint = checkpoint.empty();
  if (temp_checkpoint) {
    checkpoint = (std::filesystem::temp_directory_path() /
                  ("desalign_serve_" + std::to_string(::getpid()) + ".ckpt"))
                     .string();
  }
  DESALIGN_RETURN_NOT_OK(built.Save(checkpoint));
  DESALIGN_ASSIGN_OR_RETURN(auto store,
                            serve::EmbeddingStore::Load(checkpoint));
  if (temp_checkpoint) {
    std::error_code ec;
    std::filesystem::remove(checkpoint, ec);
  }

  // ---- Replay queries through the batching front door ----
  index::RetrieverConfig retriever_config;
  DESALIGN_ASSIGN_OR_RETURN(retriever_config.kind,
                            index::ParseRetrieverKind(index_kind));
  retriever_config.topk.block_rows = block_rows;
  retriever_config.ivf.nprobe = nprobe;
  retriever_config.ivf.num_centroids = centroids;
  retriever_config.ivf.num_shards = static_cast<int>(shards);
  const std::unique_ptr<serve::Retriever> retriever =
      index::MakeRetriever(&store, retriever_config);
  serve::ServeStats stats;
  serve::BatchQueueOptions queue_options;
  queue_options.max_batch = max_batch;
  queue_options.max_wait_ms = max_wait_ms;
  queue_options.k = k;

  const auto& tests = data.test_pairs;
  std::atomic<int64_t> hits_at_1{0};
  std::atomic<int64_t> hits_at_k{0};
  stats.Reset();
  {
    serve::BatchQueue queue(retriever.get(), queue_options, &stats);
    std::vector<std::thread> workers;
    workers.reserve(static_cast<size_t>(submitters));
    for (int64_t s = 0; s < submitters; ++s) {
      workers.emplace_back([&, s] {
        std::vector<std::future<serve::TopKResult>> futures;
        std::vector<int64_t> truths;
        for (int64_t i = s; i < num_queries; i += submitters) {
          const auto& pair = tests[static_cast<size_t>(i) % tests.size()];
          const float* row = embeddings->data().data() + pair.source * d;
          futures.push_back(
              queue.Submit(std::vector<float>(row, row + d)));
          truths.push_back(pair.target);
        }
        int64_t h1 = 0;
        int64_t hk = 0;
        for (size_t i = 0; i < futures.size(); ++i) {
          const serve::TopKResult result = futures[i].get();
          if (!result.ids.empty() && result.ids[0] == truths[i]) ++h1;
          for (int64_t id : result.ids) {
            if (id == truths[i]) {
              ++hk;
              break;
            }
          }
        }
        hits_at_1 += h1;
        hits_at_k += hk;
      });
    }
    for (auto& w : workers) w.join();
  }

  // ---- Report ----
  out << "serve-bench: " << data.name << ", " << store.size()
      << " target entities, dim " << store.dim() << ", index " << index_kind
      << ", trained " << method_name << " for " << epochs << " epochs ("
      << common::Secs(train_seconds) << "), "
      << common::ThreadPool::Global().num_threads() << " threads\n";
  if (const auto* ivf = dynamic_cast<const index::IvfRetriever*>(
          retriever.get())) {
    out << "ivf index: " << ivf->num_centroids() << " cells, "
        << ivf->num_shards() << " shards, nprobe " << nprobe << ", built in "
        << common::Secs(ivf->last_build_ms() / 1e3) << "\n";
  }
  stats.PrintTable(out);
  const double q = static_cast<double>(num_queries);
  out << "recall@1 " << common::Pct(static_cast<double>(hits_at_1) / q)
      << "%, recall@" << k << " "
      << common::Pct(static_cast<double>(hits_at_k) / q)
      << "% over " << num_queries << " replayed queries\n";
  return metrics.Finish(out);
}

// bench-kernels: the tensor kernel regression benchmark — times every major
// kernel against the serial scalar reference across a thread-count x ISA
// grid and writes BENCH_kernels.json. tools/ci.sh runs the --smoke
// configuration; docs/PERFORMANCE.md documents the schema.
Status CmdBenchKernels(const std::vector<std::string>& args,
                       std::ostream& out) {
  FlagParser parser(
      "desalign bench-kernels: tensor kernel layer vs scalar reference");
  std::string out_path;
  std::string threads_list;
  int64_t repeats;
  bool smoke;
  parser.AddString("out", "BENCH_kernels.json", "output JSON path",
                   &out_path);
  parser.AddString("threads-list", "1,2,4,8",
                   "comma-separated thread counts to sweep", &threads_list);
  parser.AddInt64("repeats", 5, "timing repeats per measurement (min wins)",
                  &repeats);
  parser.AddBool("smoke", false, "tiny shapes for CI smoke runs", &smoke);
  auto argv = ToArgv(args);
  DESALIGN_RETURN_NOT_OK(
      parser.Parse(static_cast<int>(argv.size()), argv.data(), 0));
  if (repeats <= 0) {
    return Status::InvalidArgument("--repeats must be positive");
  }

  tensor::kernels::KernelBenchOptions options;
  options.thread_counts.clear();
  for (const auto& tok : common::Split(threads_list, ',')) {
    const std::string trimmed(common::Trim(tok));
    if (trimmed.empty()) continue;
    const int t = std::atoi(trimmed.c_str());
    if (t <= 0) {
      return Status::InvalidArgument("--threads-list entries must be "
                                     "positive integers, got '" + tok + "'");
    }
    options.thread_counts.push_back(t);
  }
  if (options.thread_counts.empty()) {
    return Status::InvalidArgument("--threads-list is empty");
  }
  options.repeats = static_cast<int>(repeats);
  options.smoke = smoke;

  const auto report = tensor::kernels::RunKernelBench(options);

  std::ofstream file(out_path);
  if (!file) {
    return Status::InvalidArgument("cannot open '" + out_path +
                                   "' for writing");
  }
  file << report.ToJson();
  file.close();

  for (const auto& c : report.cases) {
    out << c.op << " " << c.rows << "x" << c.cols << ": ref "
        << common::FormatDouble(c.ref_ns_per_elem, 3) << " ns/elem, best "
        << common::FormatDouble(c.BestSpeedup(), 2) << "x\n";
  }
  out << "wrote " << out_path << " (" << report.cases.size() << " cases)\n";
  return Status::Ok();
}

// tune: the offline half of the GEMM solver registry — benchmark every
// applicable solver per (op, shape) on this machine and persist the winners
// to the CRC-guarded find-db that runtime dispatch replays. All timing
// happens here; training/serving never tune online. Re-run after a hardware
// or build change. --print dumps an existing cache without tuning.
Status CmdTune(const std::vector<std::string>& args, std::ostream& out) {
  namespace solver = tensor::kernels::solver;
  FlagParser parser(
      "desalign tune: benchmark GEMM solvers, persist winners to the "
      "find-db tuning cache");
  ThreadsFlag threads;
  threads.Register(parser);
  std::string cache_path;
  std::string sizes_list;
  std::string report_path;
  int64_t repeats;
  bool print;
  parser.AddString("cache", "",
                   "find-db path (default: $DESALIGN_TUNE_CACHE, else "
                   "~/.cache/desalign/gemm_find_db.bin)",
                   &cache_path);
  parser.AddString("sizes", "64,128,256,512",
                   "comma-separated cube edge lengths to tune (m = k = n)",
                   &sizes_list);
  parser.AddInt64("repeats", 5, "timing repeats per solver (min wins)",
                  &repeats);
  parser.AddString("report", "",
                   "also write a desalign.tune.v1 JSON report to this path",
                   &report_path);
  parser.AddBool("print", false,
                 "print the find-db at --cache and exit without tuning",
                 &print);
  auto argv = ToArgv(args);
  DESALIGN_RETURN_NOT_OK(
      parser.Parse(static_cast<int>(argv.size()), argv.data(), 0));
  DESALIGN_RETURN_NOT_OK(threads.Apply());

  if (print) {
    const std::string path =
        cache_path.empty() ? solver::FindDbPath() : cache_path;
    auto loaded = solver::FindDb::Load(path);
    if (!loaded.ok()) return loaded.status();
    const auto db = std::move(loaded).value();
    out << "find-db " << path << " version=" << solver::FindDb::kVersion
        << " records=" << db.records.size()
        << " tuned_at_unix=" << db.tuned_at_unix << "\n";
    for (const auto& r : db.records) {
      out << "record op="
          << solver::GemmOpName(static_cast<solver::GemmOp>(r.key.op))
          << " bucket=" << static_cast<int>(r.key.bm) << ","
          << static_cast<int>(r.key.bk) << "," << static_cast<int>(r.key.bn)
          << " solver=" << r.solver_id << " best_ns_per_elem="
          << common::FormatDouble(r.best_ns_per_elem, 4)
          << " default_ns_per_elem="
          << common::FormatDouble(r.default_ns_per_elem, 4) << "\n";
    }
    return Status::Ok();
  }

  if (repeats <= 0) {
    return Status::InvalidArgument("--repeats must be positive");
  }
  solver::TuneOptions options;
  options.cache_path = cache_path;
  options.repeats = static_cast<int>(repeats);
  options.sizes.clear();
  for (const auto& tok : common::Split(sizes_list, ',')) {
    const std::string trimmed(common::Trim(tok));
    if (trimmed.empty()) continue;
    const int64_t s = std::atoll(trimmed.c_str());
    if (s <= 0) {
      return Status::InvalidArgument(
          "--sizes entries must be positive integers, got '" + tok + "'");
    }
    options.sizes.push_back(s);
  }

  auto tuned = solver::RunTune(options);
  if (!tuned.ok()) return tuned.status();
  const auto report = std::move(tuned).value();

  for (const auto& e : report.entries) {
    out << solver::GemmOpName(e.op) << " " << e.m << "x" << e.k << "x" << e.n
        << ": winner " << e.winner;
    for (const auto& t : e.timings) {
      out << "  [" << t.id << " "
          << common::FormatDouble(t.ns_per_elem, 4) << " ns/elem]";
    }
    out << "\n";
  }
  out << "wrote find-db " << report.cache_path << " ("
      << report.entries.size() << " entries); runtime dispatch now replays "
      << "these winners\n";

  if (!report_path.empty()) {
    std::ofstream file(report_path);
    if (!file) {
      return Status::InvalidArgument("cannot open '" + report_path +
                                     "' for writing");
    }
    file << report.ToJson();
    file.close();
    out << "wrote tune report to " << report_path << "\n";
  }
  return Status::Ok();
}

// bench-index: brute force vs the two-stage IVF index across an
// entity-count sweep on clustered synthetic embeddings; writes
// BENCH_index.json (schema desalign.index_bench.v1, gated by tools/ci.sh).
Status CmdBenchIndex(const std::vector<std::string>& args,
                     std::ostream& out) {
  FlagParser parser(
      "desalign bench-index: IVF two-stage index vs brute-force retrieval");
  ThreadsFlag threads;
  threads.Register(parser);
  std::string out_path;
  std::string entities_list;
  int64_t dim;
  int64_t num_queries;
  int64_t k;
  int64_t nprobe;
  int64_t centroids;
  int64_t shards;
  int64_t clusters;
  double noise;
  bool smoke;
  parser.AddString("out", "BENCH_index.json", "output JSON path", &out_path);
  parser.AddString("entities-list", "10000,100000,1000000",
                   "comma-separated entity counts to sweep", &entities_list);
  parser.AddInt64("dim", 64, "embedding dimension", &dim);
  parser.AddInt64("queries", 256, "queries per case", &num_queries);
  parser.AddInt64("k", 10, "candidates per query", &k);
  parser.AddInt64("nprobe", 8, "partial-probe width", &nprobe);
  parser.AddInt64("centroids", 0, "IVF coarse cells (0 = ~sqrt(n))",
                  &centroids);
  parser.AddInt64("shards", 4, "IVF inverted-list shards", &shards);
  parser.AddInt64("clusters", 256, "synthetic mixture components",
                  &clusters);
  parser.AddDouble("noise", 0.25, "synthetic per-coordinate noise",
                   &noise);
  parser.AddBool("smoke", false,
                 "CI mode: smallest entity count only, fewer queries",
                 &smoke);
  auto argv = ToArgv(args);
  DESALIGN_RETURN_NOT_OK(
      parser.Parse(static_cast<int>(argv.size()), argv.data(), 0));
  DESALIGN_RETURN_NOT_OK(threads.Apply());
  if (num_queries <= 0 || k <= 0) {
    return Status::InvalidArgument("--queries and --k must be positive");
  }

  index::IndexBenchOptions options;
  options.entity_counts.clear();
  for (const auto& tok : common::Split(entities_list, ',')) {
    const std::string trimmed(common::Trim(tok));
    if (trimmed.empty()) continue;
    const int64_t n = std::atoll(trimmed.c_str());
    if (n <= 0) {
      return Status::InvalidArgument("--entities-list entries must be "
                                     "positive integers, got '" + tok + "'");
    }
    options.entity_counts.push_back(n);
  }
  if (options.entity_counts.empty()) {
    return Status::InvalidArgument("--entities-list is empty");
  }
  options.dim = dim;
  options.queries = num_queries;
  options.k = k;
  options.nprobe = nprobe;
  options.num_centroids = centroids;
  options.num_shards = static_cast<int>(shards);
  options.clusters = clusters;
  options.noise = noise;
  options.smoke = smoke;

  const auto report = index::RunIndexBench(options);

  std::ofstream file(out_path);
  if (!file) {
    return Status::InvalidArgument("cannot open '" + out_path +
                                   "' for writing");
  }
  file << report.ToJson();
  file.close();

  for (const auto& c : report.cases) {
    out << c.entities << " entities (dim " << c.dim << ", "
        << c.num_centroids << " cells, " << c.shards << " shards, built "
        << common::Secs(c.build_ms / 1e3) << "):\n";
    for (const auto& p : c.paths) {
      out << "  " << p.path << ": p50 "
          << common::FormatDouble(p.p50_ms, 3) << " ms, p99 "
          << common::FormatDouble(p.p99_ms, 3) << " ms, "
          << common::FormatDouble(p.qps, 0) << " qps, recall@" << c.k << " "
          << common::FormatDouble(p.recall_at_k, 4)
          << (p.bitexact ? " (bit-exact)" : "") << "\n";
    }
  }
  out << "wrote " << out_path << " (" << report.cases.size() << " cases)\n";
  return Status::Ok();
}

// quantize: offline checkpoint conversion — loads an embedding tensor from
// any supported checkpoint (v1/v2/v3), quantizes it row-wise, and writes a
// dtype-tagged v3 checkpoint a serving process can Load or Reload.
Status CmdQuantize(const std::vector<std::string>& args, std::ostream& out) {
  FlagParser parser(
      "desalign quantize: convert a checkpoint's embedding table to "
      "int8/bf16 v3 storage");
  std::string in_path;
  std::string out_path;
  std::string dtype_name;
  int64_t tensor_index;
  parser.AddString("in", "", "input checkpoint (v1/v2/v3)", &in_path);
  parser.AddString("out", "", "output v3 checkpoint path", &out_path);
  parser.AddString("dtype", "int8", "target dtype: int8|bf16|fp32",
                   &dtype_name);
  parser.AddInt64("tensor", 0, "tensor index within the checkpoint",
                  &tensor_index);
  auto argv = ToArgv(args);
  DESALIGN_RETURN_NOT_OK(
      parser.Parse(static_cast<int>(argv.size()), argv.data(), 0));
  if (in_path.empty() || out_path.empty()) {
    return Status::InvalidArgument("--in and --out are required");
  }
  DESALIGN_ASSIGN_OR_RETURN(const nn::TensorDtype dtype,
                            nn::ParseDtype(dtype_name));

  DESALIGN_ASSIGN_OR_RETURN(auto store,
                            serve::EmbeddingStore::Load(in_path, tensor_index));
  DESALIGN_ASSIGN_OR_RETURN(auto quantized, store.Quantize(dtype));
  DESALIGN_RETURN_NOT_OK(quantized.Save(out_path));

  const auto snap = quantized.Snapshot();
  const auto before = store.Snapshot().MemoryBytes();
  const auto after = snap.MemoryBytes();
  out << "quantized " << snap.size() << " x " << snap.dim() << " "
      << nn::DtypeName(store.Snapshot().dtype()) << " -> "
      << nn::DtypeName(snap.dtype()) << ": "
      << before << " -> " << after << " bytes ("
      << common::FormatDouble(
             after > 0 ? static_cast<double>(before) /
                             static_cast<double>(after)
                       : 0.0,
             2)
      << "x), wrote " << out_path << "\n";
  return Status::Ok();
}

// bench-quant: fp32 vs bf16 vs int8 storage across an entity-count sweep;
// writes BENCH_quant.json (schema desalign.quant_bench.v1, gated by
// tools/ci.sh --quant).
Status CmdBenchQuant(const std::vector<std::string>& args,
                     std::ostream& out) {
  FlagParser parser(
      "desalign bench-quant: quantized embedding storage vs fp32 — memory, "
      "latency, recall");
  ThreadsFlag threads;
  threads.Register(parser);
  std::string out_path;
  std::string entities_list;
  int64_t dim;
  int64_t num_queries;
  int64_t k;
  int64_t rerank;
  int64_t clusters;
  double noise;
  bool smoke;
  parser.AddString("out", "BENCH_quant.json", "output JSON path", &out_path);
  parser.AddString("entities-list", "10000,100000,1000000",
                   "comma-separated entity counts to sweep", &entities_list);
  parser.AddInt64("dim", 64, "embedding dimension", &dim);
  parser.AddInt64("queries", 256, "queries per case", &num_queries);
  parser.AddInt64("k", 10, "candidates per query", &k);
  parser.AddInt64("rerank", 0,
                  "int8 stage-2 re-rank width (0 = auto, <0 = all rows)",
                  &rerank);
  parser.AddInt64("clusters", 256, "synthetic mixture components",
                  &clusters);
  parser.AddDouble("noise", 0.25, "synthetic per-coordinate noise",
                   &noise);
  parser.AddBool("smoke", false,
                 "CI mode: smallest entity count only, fewer queries",
                 &smoke);
  auto argv = ToArgv(args);
  DESALIGN_RETURN_NOT_OK(
      parser.Parse(static_cast<int>(argv.size()), argv.data(), 0));
  DESALIGN_RETURN_NOT_OK(threads.Apply());
  if (num_queries <= 0 || k <= 0) {
    return Status::InvalidArgument("--queries and --k must be positive");
  }

  index::QuantBenchOptions options;
  options.entity_counts.clear();
  for (const auto& tok : common::Split(entities_list, ',')) {
    const std::string trimmed(common::Trim(tok));
    if (trimmed.empty()) continue;
    const int64_t n = std::atoll(trimmed.c_str());
    if (n <= 0) {
      return Status::InvalidArgument("--entities-list entries must be "
                                     "positive integers, got '" + tok + "'");
    }
    options.entity_counts.push_back(n);
  }
  if (options.entity_counts.empty()) {
    return Status::InvalidArgument("--entities-list is empty");
  }
  options.dim = dim;
  options.queries = num_queries;
  options.k = k;
  options.rerank_candidates = rerank;
  options.clusters = clusters;
  options.noise = noise;
  options.smoke = smoke;

  const auto report = index::RunQuantBench(options);

  std::ofstream file(out_path);
  if (!file) {
    return Status::InvalidArgument("cannot open '" + out_path +
                                   "' for writing");
  }
  file << report.ToJson();
  file.close();

  for (const auto& c : report.cases) {
    out << c.entities << " entities (dim " << c.dim << ", k " << c.k
        << "):\n";
    for (const auto& d : c.dtypes) {
      out << "  " << d.dtype << ": "
          << d.table_bytes << " B ("
          << common::FormatDouble(d.memory_reduction, 2) << "x), p50 "
          << common::FormatDouble(d.p50_ms, 3) << " ms, p99 "
          << common::FormatDouble(d.p99_ms, 3) << " ms, recall@" << c.k
          << " " << common::FormatDouble(d.recall_at_k, 4)
          << (d.dtype == "int8"
                  ? " (raw " + common::FormatDouble(d.recall_at_k_raw, 4) +
                        ")"
                  : "")
          << ", hits@1 " << common::FormatDouble(d.hits_at_1, 4)
          << (d.bitexact_full ? " (exact-mode bit-exact)" : "")
          << (d.refined_exact_matches_fp32 ? " (refined == fp32)" : "")
          << "\n";
    }
  }
  out << "wrote " << out_path << " (" << report.cases.size() << " cases)\n";
  return Status::Ok();
}

// bench-overload: open-loop offered-QPS sweep past the serving queue's
// measured capacity; writes BENCH_overload.json (schema
// desalign.overload_bench.v1, gated by tools/ci.sh --overload).
Status CmdBenchOverload(const std::vector<std::string>& args,
                        std::ostream& out) {
  FlagParser parser(
      "desalign bench-overload: open-loop overload sweep of the serving "
      "queue — admission, deadlines, degradation ladder");
  ThreadsFlag threads;
  threads.Register(parser);
  std::string out_path;
  std::string multipliers;
  int64_t entities;
  int64_t dim;
  int64_t k;
  int64_t max_pending;
  int64_t submit_threads;
  double deadline_ms;
  double duration_s;
  bool smoke;
  parser.AddString("out", "BENCH_overload.json", "output JSON path",
                   &out_path);
  parser.AddInt64("entities", 30000, "synthetic table rows", &entities);
  parser.AddInt64("dim", 64, "embedding dimension", &dim);
  parser.AddInt64("k", 10, "candidates per query", &k);
  parser.AddDouble("deadline-ms", 50.0, "per-request deadline",
                   &deadline_ms);
  parser.AddInt64("max-pending", 256, "admission bound on the queue",
                  &max_pending);
  parser.AddDouble("duration-s", 2.0, "open-loop seconds per load point",
                   &duration_s);
  parser.AddString("multipliers", "0.5,1,2,4",
                   "offered load as multiples of measured capacity",
                   &multipliers);
  parser.AddInt64("submit-threads", 0,
                  "submitting client threads (0 = auto: min(4, cores))",
                  &submit_threads);
  parser.AddBool("smoke", false, "CI mode: small table, short points",
                 &smoke);
  auto argv = ToArgv(args);
  DESALIGN_RETURN_NOT_OK(
      parser.Parse(static_cast<int>(argv.size()), argv.data(), 0));
  DESALIGN_RETURN_NOT_OK(threads.Apply());
  if (entities <= 0 || dim <= 0 || k <= 0 || max_pending <= 0 ||
      submit_threads < 0 || duration_s <= 0.0) {
    return Status::InvalidArgument(
        "--entities, --dim, --k, --max-pending and --duration-s must be "
        "positive (--submit-threads may be 0 = auto)");
  }

  serve::OverloadBenchOptions options;
  options.entities = entities;
  options.dim = dim;
  options.k = k;
  options.deadline_ms = deadline_ms;
  options.max_pending = max_pending;
  options.duration_s = duration_s;
  options.submit_threads = static_cast<int>(submit_threads);
  options.smoke = smoke;
  options.load_multipliers.clear();
  for (const auto& tok : common::Split(multipliers, ',')) {
    const std::string trimmed(common::Trim(tok));
    if (trimmed.empty()) continue;
    const double m = std::atof(trimmed.c_str());
    if (m <= 0.0) {
      return Status::InvalidArgument(
          "--multipliers entries must be positive, got '" + tok + "'");
    }
    options.load_multipliers.push_back(m);
  }
  if (options.load_multipliers.empty()) {
    return Status::InvalidArgument("--multipliers is empty");
  }

  const auto report = serve::RunOverloadBench(options);

  std::ofstream file(out_path);
  if (!file) {
    return Status::InvalidArgument("cannot open '" + out_path +
                                   "' for writing");
  }
  file << report.ToJson();
  file.close();

  out << "capacity " << common::FormatDouble(report.capacity_qps, 0)
      << " qps (" << report.entities << " entities, dim " << report.dim
      << ", deadline " << common::FormatDouble(report.deadline_ms, 0)
      << " ms)\n";
  for (const auto& c : report.cases) {
    out << "  x" << common::FormatDouble(c.multiplier, 2) << " offered "
        << common::FormatDouble(c.offered_qps, 0) << " qps, goodput "
        << common::FormatDouble(c.goodput_qps, 0) << " qps, ok " << c.ok
        << ", shed " << c.shed_queue_full << "/" << c.shed_deadline
        << ", p99 " << common::FormatDouble(c.p99_ms, 2) << " ms, rung "
        << c.max_rung << "->" << c.end_rung << "\n";
  }
  out << "recovery: rung " << report.recovery.from_rung << " -> "
      << (report.recovery.reached_healthy ? "healthy" : "NOT healthy")
      << " in " << common::FormatDouble(report.recovery.recover_ms, 0)
      << " ms, "
      << (report.recovery.bitexact ? "bit-exact" : "NOT bit-exact") << "\n";
  out << "wrote " << out_path << " (" << report.cases.size()
      << " load points)\n";
  return Status::Ok();
}

constexpr char kTopLevelUsage[] =
    "usage: desalign <command> [flags]\n"
    "commands:\n"
    "  generate   sample a synthetic MMEA dataset and write it to disk\n"
    "  stats      print dataset statistics\n"
    "  run        train + evaluate one alignment method\n"
    "  train      crash-safe training: rotating checksummed checkpoints "
    "and --resume\n"
    "  sweep      robustness sweep over image/text/seed ratio\n"
    "  serve-bench  train, checkpoint, then replay top-k alignment queries\n"
    "  bench-kernels  time tensor kernels vs the scalar reference, write "
    "BENCH_kernels.json\n"
    "  bench-index  sweep entity counts, IVF index vs brute force, write "
    "BENCH_index.json\n"
    "  tune       benchmark GEMM solvers offline, persist winners to the "
    "find-db tuning cache\n"
    "  quantize     convert a checkpoint's embeddings to int8/bf16 v3 "
    "storage\n"
    "  bench-quant  sweep entity counts, quantized storage vs fp32, write "
    "BENCH_quant.json\n"
    "  bench-overload  open-loop overload sweep of the serving queue, "
    "write BENCH_overload.json\n"
    "run `desalign <command> --help` for command flags.\n";

}  // namespace

int RunCli(const std::vector<std::string>& args, std::ostream& out) {
  if (args.empty()) {
    out << kTopLevelUsage;
    return 2;
  }
  const std::string& command = args[0];
  std::vector<std::string> rest(args.begin() + 1, args.end());
  Status status;
  if (command == "generate") {
    status = CmdGenerate(rest, out);
  } else if (command == "stats") {
    status = CmdStats(rest, out);
  } else if (command == "run") {
    status = CmdRun(rest, out);
  } else if (command == "train") {
    status = CmdTrain(rest, out);
  } else if (command == "sweep") {
    status = CmdSweep(rest, out);
  } else if (command == "serve-bench") {
    status = CmdServeBench(rest, out);
  } else if (command == "bench-kernels") {
    status = CmdBenchKernels(rest, out);
  } else if (command == "bench-index") {
    status = CmdBenchIndex(rest, out);
  } else if (command == "tune") {
    status = CmdTune(rest, out);
  } else if (command == "quantize") {
    status = CmdQuantize(rest, out);
  } else if (command == "bench-quant") {
    status = CmdBenchQuant(rest, out);
  } else if (command == "bench-overload") {
    status = CmdBenchOverload(rest, out);
  } else if (command == "--help" || command == "-h" || command == "help") {
    out << kTopLevelUsage;
    return 0;
  } else {
    out << "unknown command '" << command << "'\n" << kTopLevelUsage;
    return 2;
  }
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}

int RunCliMain(int argc, char** argv) {
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  return RunCli(args, std::cout);
}

}  // namespace desalign::cli
