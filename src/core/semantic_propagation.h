#ifndef DESALIGN_CORE_SEMANTIC_PROPAGATION_H_
#define DESALIGN_CORE_SEMANTIC_PROPAGATION_H_

#include <vector>

#include "graph/graph.h"
#include "tensor/sparse.h"
#include "tensor/tensor.h"

namespace desalign::core {

using tensor::CsrMatrixPtr;
using tensor::TensorPtr;

/// Semantic Propagation (paper §IV-C): interpolates missing semantic
/// features by running the discretized gradient flow of the Dirichlet
/// energy, x(t+1) = x(t) − h·Δx(t), with the semantically consistent rows
/// held at their boundary values (Eq. 20–22). For the canonical step size
/// h = 1 this degenerates to x ← Ãx followed by resetting the known rows —
/// a learning-free, O(nnz·d) per-step scheme.
class SemanticPropagation {
 public:
  /// One Euler step over the normalized adjacency. `known[i]` rows are
  /// reset to their value in `boundary` (the boundary condition
  /// x_c(t) = x_c). Requires 0 < h <= 1.
  static TensorPtr Step(const CsrMatrixPtr& normalized_adjacency,
                        const TensorPtr& x, const TensorPtr& boundary,
                        const std::vector<bool>& known, float step_size = 1.0f);

  /// Runs `iterations` steps from `x0` and returns every state
  /// [x0, x1, ..., x_iterations]; the snapshots feed the paper's
  /// mean-of-similarities decoding (Algorithm 1 line 15).
  static std::vector<TensorPtr> Run(const CsrMatrixPtr& normalized_adjacency,
                                    const TensorPtr& x0,
                                    const std::vector<bool>& known,
                                    int iterations, float step_size = 1.0f);

  /// Closed-form interpolation (Eq. 19): solves Δ_oo x_o = −Δ_oc x_c for
  /// the unknown rows by dense Gaussian elimination over the sub-Laplacian
  /// (Δ = I − Ã of `normalized_adjacency`). O(|E_o|³); reference solution
  /// the Euler scheme converges to. Known rows pass through unchanged.
  static TensorPtr SolveClosedForm(const CsrMatrixPtr& normalized_adjacency,
                                   const TensorPtr& x,
                                   const std::vector<bool>& known);

  /// Regularized gradient flow (the generalization of [19], Wang et al.
  /// 2024, which the paper cites for gradient-flow decoding): descends the
  /// composite energy E(x) + (μ/2)·||x − x0||² whose flow is
  ///   x(t+1) = x(t) − h·(Δx(t) + μ·(x(t) − x0)).
  /// μ = 0 recovers the plain Euler scheme (pure smoothing); μ → ∞ pins
  /// x to its initial value. The fidelity term lets every node join the
  /// propagation — Algorithm 1's "consistent features join in" — without
  /// drifting arbitrarily far, which is what degrades large n_p in Fig. 4.
  /// Returns all states [x0, ..., x_iterations]. Requires h·(μ+2) < 2 for
  /// stability; CHECK enforced via h ≤ 1/(1+μ/2).
  static std::vector<TensorPtr> RunRegularized(
      const CsrMatrixPtr& normalized_adjacency, const TensorPtr& x0,
      float fidelity, int iterations, float step_size = 0.5f);
};

}  // namespace desalign::core

#endif  // DESALIGN_CORE_SEMANTIC_PROPAGATION_H_
