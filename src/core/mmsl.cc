#include "core/mmsl.h"

#include "graph/dirichlet.h"
#include "tensor/ops.h"

namespace desalign::core {

namespace ops = desalign::tensor;

TensorPtr MmslPenalty(const CsrMatrixPtr& normalized_adjacency,
                      const TensorPtr& x_initial, const TensorPtr& x_mid,
                      const TensorPtr& x_final, const MmslConfig& config) {
  if (!x_final) return nullptr;
  const auto energy = [&](const TensorPtr& x) {
    const float inv =
        1.0f / static_cast<float>(x->rows() * x->cols());
    return ops::Scale(graph::DirichletEnergyNode(normalized_adjacency, x),
                      inv);
  };
  auto e_final = energy(x_final);
  TensorPtr penalty;
  if (x_mid) {
    // relu(c_min·E(X^(k−1)) − E(X^(k))): stops the energy collapsing layer
    // to layer (over-smoothing).
    penalty = ops::Relu(ops::Sub(ops::Scale(energy(x_mid), config.c_min),
                                 e_final));
  }
  if (x_initial) {
    // relu(E(X^(k)) − c_max·E(X^(0))): stops over-separation.
    auto upper = ops::Relu(ops::Sub(
        e_final, ops::Scale(energy(x_initial), config.c_max)));
    penalty = penalty ? ops::Add(penalty, upper) : upper;
  }
  if (!penalty) return nullptr;
  return ops::Scale(penalty, config.penalty_weight);
}

}  // namespace desalign::core
