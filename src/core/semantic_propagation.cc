#include "core/semantic_propagation.h"

#include <cmath>

#include "common/check.h"
#include "graph/dirichlet.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/tensor.h"

namespace desalign::core {

using tensor::Tensor;

TensorPtr SemanticPropagation::Step(const CsrMatrixPtr& normalized_adjacency,
                                    const TensorPtr& x,
                                    const TensorPtr& boundary,
                                    const std::vector<bool>& known,
                                    float step_size) {
  const int64_t n = x->rows();
  const int64_t d = x->cols();
  DESALIGN_CHECK_EQ(normalized_adjacency->rows(), n);
  DESALIGN_CHECK_EQ(normalized_adjacency->cols(), n);
  DESALIGN_CHECK_EQ(static_cast<int64_t>(known.size()), n);
  DESALIGN_CHECK_EQ(boundary->rows(), n);
  DESALIGN_CHECK(step_size > 0.0f && step_size <= 1.0f);

  auto out = Tensor::Create(n, d);
  // Ãx
  normalized_adjacency->Multiply(x->data().data(), d, out->data().data());
  if (step_size != 1.0f) {
    // x − h·Δx = (1−h)·x + h·Ãx
    for (int64_t i = 0; i < n * d; ++i) {
      out->data()[i] =
          (1.0f - step_size) * x->data()[i] + step_size * out->data()[i];
    }
  }
  for (int64_t r = 0; r < n; ++r) {
    if (!known[r]) continue;
    std::copy(boundary->data().begin() + r * d,
              boundary->data().begin() + (r + 1) * d,
              out->data().begin() + r * d);
  }
  return out;
}

std::vector<TensorPtr> SemanticPropagation::Run(
    const CsrMatrixPtr& normalized_adjacency, const TensorPtr& x0,
    const std::vector<bool>& known, int iterations, float step_size) {
  obs::TraceSpan span("propagation_run");
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  metrics.GetCounter("propagation.runs").Increment();
  metrics.GetCounter("propagation.iterations").Increment(iterations);
  // Per-state energy evaluation costs an extra SpMM per iteration, so the
  // convergence curve is only recorded when `--metrics-out` (or a test)
  // turns the detail flag on.
  const bool record_energy = metrics.detail_enabled();
  obs::Series* energy = record_energy
                            ? &metrics.GetSeries("propagation.dirichlet_energy")
                            : nullptr;
  const double scale =
      1.0 / static_cast<double>(x0->rows() * x0->cols());
  if (energy != nullptr) {
    energy->Append(graph::DirichletEnergy(normalized_adjacency, x0) * scale);
  }
  std::vector<TensorPtr> states;
  states.reserve(iterations + 1);
  states.push_back(x0);
  TensorPtr x = x0;
  for (int it = 0; it < iterations; ++it) {
    x = Step(normalized_adjacency, x, x0, known, step_size);
    states.push_back(x);
    if (energy != nullptr) {
      energy->Append(graph::DirichletEnergy(normalized_adjacency, x) * scale);
    }
  }
  return states;
}

TensorPtr SemanticPropagation::SolveClosedForm(
    const CsrMatrixPtr& normalized_adjacency, const TensorPtr& x,
    const std::vector<bool>& known) {
  const int64_t n = x->rows();
  const int64_t d = x->cols();
  DESALIGN_CHECK_EQ(normalized_adjacency->rows(), n);
  DESALIGN_CHECK_EQ(static_cast<int64_t>(known.size()), n);

  std::vector<int64_t> unknown;
  std::vector<int64_t> position(n, -1);
  for (int64_t i = 0; i < n; ++i) {
    if (!known[i]) {
      position[i] = static_cast<int64_t>(unknown.size());
      unknown.push_back(i);
    }
  }
  auto out = x->Detach();
  const int64_t u = static_cast<int64_t>(unknown.size());
  if (u == 0) return out;

  // Dense sub-Laplacian Δ_oo = I_oo − Ã_oo and right-hand side
  // b = Ã_oc x_c (from −Δ_oc x_c with Δ_oc = −Ã_oc off-diagonal).
  std::vector<double> a(static_cast<size_t>(u * u), 0.0);
  std::vector<std::vector<double>> b(
      static_cast<size_t>(u), std::vector<double>(d, 0.0));
  const auto& row_ptr = normalized_adjacency->row_ptr();
  const auto& col_idx = normalized_adjacency->col_idx();
  const auto& values = normalized_adjacency->values();
  for (int64_t k = 0; k < u; ++k) {
    const int64_t i = unknown[k];
    a[k * u + k] = 1.0;
    for (int64_t p = row_ptr[i]; p < row_ptr[i + 1]; ++p) {
      const int64_t j = col_idx[p];
      const double w = values[p];
      if (position[j] >= 0) {
        a[k * u + position[j]] -= w;  // Δ_oo entry
      } else {
        for (int64_t c = 0; c < d; ++c) {
          b[k][c] += w * x->At(j, c);
        }
      }
    }
  }

  // Gaussian elimination with partial pivoting; multiple RHS columns.
  for (int64_t col = 0; col < u; ++col) {
    int64_t pivot = col;
    for (int64_t r = col + 1; r < u; ++r) {
      if (std::fabs(a[r * u + col]) > std::fabs(a[pivot * u + col]))
        pivot = r;
    }
    DESALIGN_CHECK_MSG(std::fabs(a[pivot * u + col]) > 1e-12,
                       "sub-Laplacian singular: the unknown set contains a "
                       "component disconnected from every known node");
    if (pivot != col) {
      for (int64_t c = 0; c < u; ++c) std::swap(a[pivot * u + c],
                                                a[col * u + c]);
      std::swap(b[pivot], b[col]);
    }
    const double inv = 1.0 / a[col * u + col];
    for (int64_t r = col + 1; r < u; ++r) {
      const double factor = a[r * u + col] * inv;
      if (factor == 0.0) continue;
      for (int64_t c = col; c < u; ++c) {
        a[r * u + c] -= factor * a[col * u + c];
      }
      for (int64_t c = 0; c < d; ++c) b[r][c] -= factor * b[col][c];
    }
  }
  for (int64_t row = u - 1; row >= 0; --row) {
    for (int64_t c = 0; c < d; ++c) {
      double acc = b[row][c];
      for (int64_t col = row + 1; col < u; ++col) {
        acc -= a[row * u + col] * b[col][c];
      }
      b[row][c] = acc / a[row * u + row];
    }
  }
  for (int64_t k = 0; k < u; ++k) {
    for (int64_t c = 0; c < d; ++c) {
      out->At(unknown[k], c) = static_cast<float>(b[k][c]);
    }
  }
  return out;
}

std::vector<TensorPtr> SemanticPropagation::RunRegularized(
    const CsrMatrixPtr& normalized_adjacency, const TensorPtr& x0,
    float fidelity, int iterations, float step_size) {
  const int64_t n = x0->rows();
  const int64_t d = x0->cols();
  DESALIGN_CHECK_EQ(normalized_adjacency->rows(), n);
  DESALIGN_CHECK_GE(fidelity, 0.0f);
  DESALIGN_CHECK(step_size > 0.0f &&
                 step_size <= 1.0f / (1.0f + fidelity / 2.0f));
  std::vector<TensorPtr> states;
  states.reserve(iterations + 1);
  states.push_back(x0);
  TensorPtr x = x0;
  std::vector<float> ax(static_cast<size_t>(n * d));
  for (int it = 0; it < iterations; ++it) {
    auto next = Tensor::Create(n, d);
    normalized_adjacency->Multiply(x->data().data(), d, ax.data());
    for (int64_t i = 0; i < n * d; ++i) {
      const float xv = x->data()[i];
      // x − h·((x − Ãx) + μ(x − x0))
      next->data()[i] = xv - step_size * ((xv - ax[i]) +
                                          fidelity * (xv - x0->data()[i]));
    }
    x = next;
    states.push_back(x);
  }
  return states;
}

}  // namespace desalign::core
