#include "core/desalign.h"

#include <vector>

#include "align/metrics.h"
#include "common/check.h"
#include "obs/trace.h"
#include "tensor/ops.h"

namespace desalign::core {

namespace ops = desalign::tensor;
using tensor::Tensor;
using tensor::TensorPtr;

DesalignConfig DesalignConfig::Default(uint64_t seed) {
  DesalignConfig cfg;
  cfg.base.name = "DESAlign";
  cfg.base.seed = seed;
  cfg.base.use_cross_modal_attention = true;
  cfg.base.use_intra_modal_losses = true;
  cfg.base.use_min_confidence = true;
  cfg.base.use_initial_task_loss = true;
  cfg.base.use_mid_layer_losses = true;
  // DESAlign interpolates missing semantics by propagation instead of
  // sampling noise from a predefined distribution.
  cfg.base.missing_policy = align::MissingFeaturePolicy::kZeroFill;
  return cfg;
}

DesalignModel::DesalignModel(DesalignConfig config)
    : align::FusionAlignModel(config.base), dcfg_(std::move(config)) {}

TensorPtr DesalignModel::ExtraLoss(const ForwardState& state) {
  if (!dcfg_.use_mmsl) return nullptr;
  obs::TraceSpan span("mmsl");
  return MmslPenalty(norm_adj_union_, state.h_ori, state.h_mid, state.h_fus,
                     dcfg_.mmsl);
}

namespace {

// Plain (non-autograd) row-range copy.
TensorPtr SliceRowsCopy(const TensorPtr& x, int64_t start, int64_t count) {
  auto out = Tensor::Create(count, x->cols());
  std::copy(x->data().begin() + start * x->cols(),
            x->data().begin() + (start + count) * x->cols(),
            out->data().begin());
  return out;
}

}  // namespace

TensorPtr DesalignModel::SimilarityFromEmbeddings(
    const ForwardState& state, const kg::AlignedKgPair& data) {
  if (!dcfg_.use_propagation || dcfg_.propagation_iterations <= 0) {
    return FusionAlignModel::SimilarityFromEmbeddings(state, data);
  }
  tensor::NoGradGuard no_grad;
  obs::TraceSpan span("propagation");
  const int64_t ns = features_.num_source;
  const int64_t nt = features_.num_target;
  auto x = state.h_ori->Detach();
  auto xs = SliceRowsCopy(x, 0, ns);
  auto xt = SliceRowsCopy(x, ns, nt);

  // Algorithm 1 keeps the consistent features in the propagation ("to
  // simplify the application"), i.e. no boundary reset: every iteration is
  // one low-pass filter pass X ← ÃX per KG. The Eq. 22 reset variant is
  // available through SemanticPropagation::Step for theoretical use.
  std::vector<bool> no_reset_s(ns, false);
  std::vector<bool> no_reset_t(nt, false);
  auto states_s = SemanticPropagation::Run(
      norm_adj_src_, xs, no_reset_s, dcfg_.propagation_iterations,
      dcfg_.propagation_step);
  auto states_t = SemanticPropagation::Run(
      norm_adj_tgt_, xt, no_reset_t, dcfg_.propagation_iterations,
      dcfg_.propagation_step);

  // Test-pair rows in per-KG index spaces.
  std::vector<int64_t> src_rows;
  std::vector<int64_t> tgt_rows;
  src_rows.reserve(data.test_pairs.size());
  tgt_rows.reserve(data.test_pairs.size());
  for (const auto& p : data.test_pairs) {
    src_rows.push_back(p.source);
    tgt_rows.push_back(p.target);
  }

  // Ω = mean of the pairwise similarities over all propagation states
  // (Algorithm 1 line 15).
  TensorPtr mean_sim;
  for (size_t j = 0; j < states_s.size(); ++j) {
    auto zs = ops::GatherRows(states_s[j], src_rows);
    auto zt = ops::GatherRows(states_t[j], tgt_rows);
    auto sim = align::CosineSimilarityMatrix(zs, zt);
    mean_sim = mean_sim ? ops::Add(mean_sim, sim) : sim;
  }
  return ops::Scale(mean_sim,
                    1.0f / static_cast<float>(states_s.size()));
}

}  // namespace desalign::core
