#ifndef DESALIGN_CORE_DESALIGN_H_
#define DESALIGN_CORE_DESALIGN_H_

#include <string>

#include "align/fusion_model.h"
#include "core/mmsl.h"
#include "core/semantic_propagation.h"

namespace desalign::core {

/// Full DESAlign configuration = fusion base (CAW attention, intra-modal
/// contrastive losses, min-confidence weighting, zero-fill missing policy)
/// + Multi-Modal Semantic Learning penalties + Semantic Propagation
/// decoding.
struct DesalignConfig {
  align::FusionModelConfig base;
  MmslConfig mmsl;
  bool use_mmsl = true;
  /// Semantic-propagation iterations n_p (paper Fig. 4: 1 suits bilingual,
  /// 2–3 suits monolingual data).
  int propagation_iterations = 2;
  bool use_propagation = true;
  float propagation_step = 1.0f;

  /// Paper defaults.
  static DesalignConfig Default(uint64_t seed = 7);
};

/// DESAlign (paper §IV, Algorithm 1): multi-modal knowledge graph
/// representation (Eq. 7–14) trained with the Dirichlet-energy-bounded
/// objective of Proposition 3, decoded with Semantic Propagation
/// (Eq. 20–22) averaging pairwise similarities over propagation states.
class DesalignModel : public align::FusionAlignModel {
 public:
  explicit DesalignModel(DesalignConfig config);

  const DesalignConfig& desalign_config() const { return dcfg_; }

  /// Adjusts the decode-time propagation depth n_p (training-free, so a
  /// fitted model can be re-decoded at any depth — used by the Fig. 4
  /// sweep).
  void set_propagation_iterations(int n) { dcfg_.propagation_iterations = n; }

 protected:
  tensor::TensorPtr ExtraLoss(const ForwardState& state) override;
  tensor::TensorPtr SimilarityFromEmbeddings(
      const ForwardState& state, const kg::AlignedKgPair& data) override;

 private:
  DesalignConfig dcfg_;
};

}  // namespace desalign::core

#endif  // DESALIGN_CORE_DESALIGN_H_
