#ifndef DESALIGN_CORE_MMSL_H_
#define DESALIGN_CORE_MMSL_H_

#include "tensor/sparse.h"
#include "tensor/tensor.h"

namespace desalign::core {

using tensor::CsrMatrixPtr;
using tensor::TensorPtr;

/// Multi-Modal Semantic Learning constraint weights (paper Proposition 3):
/// the training objective is minimized subject to
///   c_min·E(X^(k−1)) ≤ E(X^(k)) ≤ c_max·E(X^(0)).
/// Both constraints are enforced as hinge penalties; keeping E(X^(k))
/// bounded away from zero is what prevents the over-smoothing collapse that
/// semantic inconsistency induces (Proposition 2).
struct MmslConfig {
  float c_min = 0.5f;
  float c_max = 2.0f;
  float penalty_weight = 1.0f;
};

/// Differentiable penalty
///   w · [ relu(c_min·Ē(X^(k−1)) − Ē(X^(k))) + relu(Ē(X^(k)) − c_max·Ē(X^(0))) ]
/// where Ē is the Dirichlet energy normalized by N·d (so the penalty scale
/// is independent of graph size and width). Any of the layer inputs may be
/// null (e.g. a model without a fused path); missing terms drop out.
TensorPtr MmslPenalty(const CsrMatrixPtr& normalized_adjacency,
                      const TensorPtr& x_initial, const TensorPtr& x_mid,
                      const TensorPtr& x_final, const MmslConfig& config);

}  // namespace desalign::core

#endif  // DESALIGN_CORE_MMSL_H_
