#ifndef DESALIGN_SERVE_BATCH_QUEUE_H_
#define DESALIGN_SERVE_BATCH_QUEUE_H_

#include <atomic>
#include <cstdint>
#include <future>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "serve/health.h"
#include "serve/retriever.h"
#include "serve/stats.h"

namespace desalign::serve {

struct BatchQueueOptions {
  /// Queries drained into one retrieval call; reaching it wakes the worker
  /// immediately.
  int64_t max_batch = 64;
  /// Longest a pending query waits for co-batching before the worker runs
  /// a partial batch.
  double max_wait_ms = 1.0;
  /// Candidates returned per query.
  int64_t k = 10;
  /// Admission bound on the pending queue; a Submit past it resolves
  /// immediately with kRejectedQueueFull. 0 = unbounded (no admission
  /// bound, and the governor's depth signal is disabled).
  int64_t max_pending = 0;
  /// Default per-request deadline, relative to admission. A request whose
  /// deadline passes before scoring is shed with kDeadlineExceeded instead
  /// of occupying a retrieval slot. 0 = no default deadline; per-request
  /// overrides via Submit(query, timeout_ms) / SubmitWithDeadline.
  double deadline_ms = 0.0;
  /// Time source for every wait, deadline and latency decision. nullptr =
  /// Clock::Real(); tests inject a common::ManualClock to drive batching
  /// windows and deadlines deterministically.
  common::Clock* clock = nullptr;
  /// Overload governor knobs (disabled by default — bounded admission and
  /// deadlines above work regardless; this adds the degradation ladder).
  OverloadOptions overload;
};

/// Request-batching front door for any Retriever (brute-force
/// TopKRetriever or the IVF index): callers submit single
/// queries from any thread and get a future; a dedicated worker drains up
/// to `max_batch` pending queries (or whatever accumulated within
/// `max_wait_ms` of the oldest one) into one batched Retrieve call. This
/// trades a bounded per-query delay for the cache locality of blocked
/// batch scans — the standard online-serving pattern.
///
/// The queue is also the overload-protection front door: admission is
/// bounded (`max_pending`), requests carry deadlines that are enforced at
/// admission, at batch formation and before scoring, and a hysteresis
/// HealthGovernor walks the degradation ladder (full quality → reduced
/// IVF probe → no fp32 refinement → shedding) under sustained pressure,
/// restoring full quality after it subsides. Every future resolves with a
/// definite ServeStatus — the queue never aborts on bad input and never
/// leaves an outcome ambiguous. See docs/ROBUSTNESS.md.
///
/// Latencies (submit to completion, including queue wait), batch sizes
/// and all admission/shed/degradation outcomes are recorded on the
/// optional ServeStats.
class BatchQueue {
 public:
  /// `retriever` (and its store), `stats` and `options.clock` must outlive
  /// the queue.
  BatchQueue(const Retriever* retriever, BatchQueueOptions options = {},
             ServeStats* stats = nullptr);
  ~BatchQueue();

  BatchQueue(const BatchQueue&) = delete;
  BatchQueue& operator=(const BatchQueue&) = delete;

  /// Enqueues one query under the default deadline (`options.deadline_ms`).
  /// The future always resolves: with the scored top-k (kOk, possibly
  /// degraded), or immediately with the typed rejection — kInvalidQuery
  /// (size != retriever dim), kShutdown (after Shutdown),
  /// kRejectedQueueFull (queue at max_pending, or the governor is
  /// shedding), kDeadlineExceeded (deadline expired).
  [[nodiscard]] std::future<TopKResult> Submit(std::vector<float> query);

  /// Same, with a per-request deadline `timeout_ms` from now (<= 0 = no
  /// deadline, overriding the default).
  [[nodiscard]] std::future<TopKResult> Submit(std::vector<float> query,
                                               double timeout_ms);

  /// Same, with an absolute deadline on `options.clock`'s timeline.
  [[nodiscard]] std::future<TopKResult> SubmitWithDeadline(
      std::vector<float> query, common::Clock::TimePoint deadline);

  /// Drains every pending query, then stops the worker. Idempotent; also
  /// called by the destructor. Later Submits resolve with kShutdown.
  void Shutdown();

  int64_t batches_processed() const;

  /// Overload-governor observability (lock-free).
  HealthState health_state() const { return governor_.state(); }
  int health_rung() const { return governor_.rung(); }
  DegradationLevel degradation_level() const { return governor_.level(); }

 private:
  struct Pending {
    std::vector<float> query;
    std::promise<TopKResult> promise;
    common::Clock::TimePoint enqueued;
    /// TimePoint::max() = no deadline.
    common::Clock::TimePoint deadline;
  };

  /// Resolves a request with a non-kOk status and counts the outcome.
  void Reject(Pending req, ServeStatus status);

  /// Earliest of (oldest pending + max_wait) and every pending deadline.
  common::Clock::TimePoint BatchWindowDeadline() const REQUIRES(mutex_);

  void WorkerLoop();
  void ProcessBatch(std::vector<Pending> batch, DegradationLevel level);

  const Retriever* retriever_;
  BatchQueueOptions options_;
  ServeStats* stats_;
  common::Clock* clock_;
  HealthGovernor governor_;

  mutable common::Mutex mutex_;
  common::CondVar wake_;
  /// Mirrors pending_.size() so overloaded Submits can be turned away on a
  /// relaxed load without touching the queue mutex (the shed fast path —
  /// under a reject storm, admission must not contend with the worker).
  /// Approximate by design; the authoritative bound is re-checked under
  /// mutex_ before any push.
  std::atomic<int64_t> depth_{0};
  std::vector<Pending> pending_ GUARDED_BY(mutex_);
  bool stop_ GUARDED_BY(mutex_) = false;
  int64_t batches_ GUARDED_BY(mutex_) = 0;
  std::thread worker_ GUARDED_BY(mutex_);  // claimed (moved out) by Shutdown
};

}  // namespace desalign::serve

#endif  // DESALIGN_SERVE_BATCH_QUEUE_H_
