#ifndef DESALIGN_SERVE_BATCH_QUEUE_H_
#define DESALIGN_SERVE_BATCH_QUEUE_H_

#include <chrono>
#include <cstdint>
#include <future>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "serve/stats.h"
#include "serve/retriever.h"

namespace desalign::serve {

struct BatchQueueOptions {
  /// Queries drained into one retrieval call; reaching it wakes the worker
  /// immediately.
  int64_t max_batch = 64;
  /// Longest a pending query waits for co-batching before the worker runs
  /// a partial batch.
  double max_wait_ms = 1.0;
  /// Candidates returned per query.
  int64_t k = 10;
};

/// Request-batching front door for any Retriever (brute-force
/// TopKRetriever or the IVF index): callers submit single
/// queries from any thread and get a future; a dedicated worker drains up
/// to `max_batch` pending queries (or whatever accumulated within
/// `max_wait_ms` of the oldest one) into one batched Retrieve call. This
/// trades a bounded per-query delay for the cache locality of blocked
/// batch scans — the standard online-serving pattern.
///
/// Latencies (submit to completion, including queue wait) and batch sizes
/// are recorded on the optional ServeStats.
class BatchQueue {
 public:
  /// `retriever` (and its store) and `stats` must outlive the queue.
  BatchQueue(const Retriever* retriever, BatchQueueOptions options = {},
             ServeStats* stats = nullptr);
  ~BatchQueue();

  BatchQueue(const BatchQueue&) = delete;
  BatchQueue& operator=(const BatchQueue&) = delete;

  /// Enqueues one query (size must equal the retriever dim). The future is
  /// fulfilled by the worker; after Shutdown it resolves immediately to an
  /// empty result.
  std::future<TopKResult> Submit(std::vector<float> query);

  /// Drains every pending query, then stops the worker. Idempotent; also
  /// called by the destructor.
  void Shutdown();

  int64_t batches_processed() const;

 private:
  struct Pending {
    std::vector<float> query;
    std::promise<TopKResult> promise;
    std::chrono::steady_clock::time_point enqueued;
  };

  void WorkerLoop();
  void ProcessBatch(std::vector<Pending> batch);

  const Retriever* retriever_;
  BatchQueueOptions options_;
  ServeStats* stats_;

  mutable common::Mutex mutex_;
  common::CondVar wake_;
  std::vector<Pending> pending_ GUARDED_BY(mutex_);
  bool stop_ GUARDED_BY(mutex_) = false;
  int64_t batches_ GUARDED_BY(mutex_) = 0;
  std::thread worker_ GUARDED_BY(mutex_);  // claimed (moved out) by Shutdown
};

}  // namespace desalign::serve

#endif  // DESALIGN_SERVE_BATCH_QUEUE_H_
