#include "serve/topk.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "serve/scoring.h"

namespace desalign::serve {

namespace {

using scoring::Better;
using scoring::BoundedTopK;
using scoring::Candidate;
using scoring::Dot;

std::vector<float> NormalizedQueries(int64_t dim, const float* queries,
                                     int64_t num_queries) {
  std::vector<float> q(queries, queries + num_queries * dim);
  L2NormalizeRows(q.data(), num_queries, dim);
  return q;
}

}  // namespace

TopKRetriever::TopKRetriever(const EmbeddingStore* store, TopKOptions options)
    : store_(store), options_(options) {
  DESALIGN_CHECK(store_ != nullptr);
  if (options_.block_rows <= 0) options_.block_rows = 256;
}

std::vector<TopKResult> TopKRetriever::Retrieve(const float* queries,
                                                int64_t num_queries,
                                                int64_t k) const {
  std::vector<TopKResult> results(
      num_queries > 0 ? static_cast<size_t>(num_queries) : 0);
  if (num_queries <= 0) return results;
  const EmbeddingSnapshot snap = store_->Snapshot();
  k = std::min(k, snap.size());
  if (k <= 0) return results;

  const int64_t d = snap.dim();
  const int64_t n = snap.size();
  const int64_t block = options_.block_rows;
  const std::vector<float> q = NormalizedQueries(d, queries, num_queries);

  common::ThreadPool& pool =
      options_.pool != nullptr ? *options_.pool : common::ThreadPool::Global();
  pool.ParallelFor(
      0, num_queries,
      [&](int64_t qb, int64_t qe) {
        std::vector<BoundedTopK> heaps;
        heaps.reserve(static_cast<size_t>(qe - qb));
        for (int64_t i = qb; i < qe; ++i) heaps.emplace_back(k);
        const float* base = snap.row(0);
        for (int64_t b0 = 0; b0 < n; b0 += block) {
          const int64_t b1 = std::min(n, b0 + block);
          // Block scan: the target block stays cache-resident while every
          // query of this chunk is scored against it; each query row lives
          // in L1 for its pass over the block.
          for (int64_t i = qb; i < qe; ++i) {
            const float* qi = q.data() + i * d;
            BoundedTopK& heap = heaps[static_cast<size_t>(i - qb)];
            for (int64_t r = b0; r < b1; ++r) {
              heap.Offer(Dot(qi, base + r * d, d), r);
            }
          }
        }
        for (int64_t i = qb; i < qe; ++i) {
          results[static_cast<size_t>(i)] =
              heaps[static_cast<size_t>(i - qb)].Finish();
        }
      },
      /*grain=*/1);
  return results;
}

std::vector<TopKResult> TopKRetriever::Retrieve(const tensor::Tensor& queries,
                                                int64_t k) const {
  DESALIGN_CHECK_EQ(queries.cols(), store_->dim());
  return Retrieve(queries.data().data(), queries.rows(), k);
}

std::vector<TopKResult> TopKRetriever::RetrieveBruteForce(
    const float* queries, int64_t num_queries, int64_t k) const {
  std::vector<TopKResult> results(
      num_queries > 0 ? static_cast<size_t>(num_queries) : 0);
  if (num_queries <= 0) return results;
  const EmbeddingSnapshot snap = store_->Snapshot();
  k = std::min(k, snap.size());
  if (k <= 0) return results;

  const int64_t d = snap.dim();
  const int64_t n = snap.size();
  const std::vector<float> q = NormalizedQueries(d, queries, num_queries);
  std::vector<Candidate> scored(static_cast<size_t>(n));
  for (int64_t i = 0; i < num_queries; ++i) {
    const float* qi = q.data() + i * d;
    for (int64_t r = 0; r < n; ++r) {
      scored[static_cast<size_t>(r)] = {Dot(qi, snap.row(r), d), r};
    }
    std::partial_sort(scored.begin(), scored.begin() + k, scored.end(),
                      Better);
    TopKResult& out = results[static_cast<size_t>(i)];
    out.ids.reserve(k);
    out.scores.reserve(k);
    for (int64_t j = 0; j < k; ++j) {
      out.ids.push_back(scored[static_cast<size_t>(j)].id);
      out.scores.push_back(scored[static_cast<size_t>(j)].score);
    }
  }
  return results;
}

}  // namespace desalign::serve
