#include "serve/topk.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace desalign::serve {

namespace {

struct Candidate {
  float score;
  int64_t id;
};

/// The single ordering contract: higher score first, ties broken by the
/// smaller entity id. Both retrieval paths rank with exactly this.
inline bool Better(const Candidate& a, const Candidate& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.id < b.id;
}

/// Shared dot-product kernel. Four independent accumulators let the
/// compiler keep the FMA pipeline busy; since *both* paths use this
/// function, accumulation order is identical and scores are bit-equal.
inline float Dot(const float* a, const float* b, int64_t d) {
  float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
  int64_t c = 0;
  for (; c + 4 <= d; c += 4) {
    s0 += a[c] * b[c];
    s1 += a[c + 1] * b[c + 1];
    s2 += a[c + 2] * b[c + 2];
    s3 += a[c + 3] * b[c + 3];
  }
  for (; c < d; ++c) s0 += a[c] * b[c];
  return ((s0 + s1) + (s2 + s3));
}

/// Bounded "worst on top" candidate set of size <= k.
class BoundedTopK {
 public:
  explicit BoundedTopK(int64_t k) : k_(k) { heap_.reserve(k); }

  /// Hot path: once the set is full, almost every candidate scores below
  /// the cached k-th best and is rejected on a single register compare.
  void Offer(float score, int64_t id) {
    if (full_ && score < worst_score_) return;
    OfferSlow(score, id);
  }

  TopKResult Finish() {
    std::sort(heap_.begin(), heap_.end(), Better);
    TopKResult out;
    out.ids.reserve(heap_.size());
    out.scores.reserve(heap_.size());
    for (const auto& c : heap_) {
      out.ids.push_back(c.id);
      out.scores.push_back(c.score);
    }
    return out;
  }

 private:
  void OfferSlow(float score, int64_t id) {
    const Candidate c{score, id};
    if (static_cast<int64_t>(heap_.size()) < k_) {
      heap_.push_back(c);
      std::push_heap(heap_.begin(), heap_.end(), Better);
      full_ = static_cast<int64_t>(heap_.size()) == k_;
    } else {
      if (!Better(c, heap_.front())) return;
      std::pop_heap(heap_.begin(), heap_.end(), Better);
      heap_.back() = c;
      std::push_heap(heap_.begin(), heap_.end(), Better);
    }
    worst_score_ = heap_.front().score;
  }

  int64_t k_;
  bool full_ = false;
  float worst_score_ = 0.0f;     // valid only while full_
  std::vector<Candidate> heap_;  // max-heap on Better => worst at front
};

std::vector<float> NormalizedQueries(const EmbeddingStore& store,
                                     const float* queries,
                                     int64_t num_queries) {
  std::vector<float> q(queries, queries + num_queries * store.dim());
  L2NormalizeRows(q.data(), num_queries, store.dim());
  return q;
}

}  // namespace

TopKRetriever::TopKRetriever(const EmbeddingStore* store, TopKOptions options)
    : store_(store), options_(options) {
  DESALIGN_CHECK(store_ != nullptr);
  if (options_.block_rows <= 0) options_.block_rows = 256;
}

std::vector<TopKResult> TopKRetriever::Retrieve(const float* queries,
                                                int64_t num_queries,
                                                int64_t k) const {
  std::vector<TopKResult> results(static_cast<size_t>(num_queries));
  if (num_queries <= 0) return results;
  k = std::min(k, store_->size());
  if (k <= 0) return results;

  const int64_t d = store_->dim();
  const int64_t n = store_->size();
  const int64_t block = options_.block_rows;
  const std::vector<float> q = NormalizedQueries(*store_, queries,
                                                 num_queries);

  common::ThreadPool& pool =
      options_.pool != nullptr ? *options_.pool : common::ThreadPool::Global();
  pool.ParallelFor(
      0, num_queries,
      [&](int64_t qb, int64_t qe) {
        std::vector<BoundedTopK> heaps;
        heaps.reserve(static_cast<size_t>(qe - qb));
        for (int64_t i = qb; i < qe; ++i) heaps.emplace_back(k);
        const float* base = store_->row(0);
        for (int64_t b0 = 0; b0 < n; b0 += block) {
          const int64_t b1 = std::min(n, b0 + block);
          // Block scan: the target block stays cache-resident while every
          // query of this chunk is scored against it; each query row lives
          // in L1 for its pass over the block.
          for (int64_t i = qb; i < qe; ++i) {
            const float* qi = q.data() + i * d;
            BoundedTopK& heap = heaps[static_cast<size_t>(i - qb)];
            for (int64_t r = b0; r < b1; ++r) {
              heap.Offer(Dot(qi, base + r * d, d), r);
            }
          }
        }
        for (int64_t i = qb; i < qe; ++i) {
          results[static_cast<size_t>(i)] =
              heaps[static_cast<size_t>(i - qb)].Finish();
        }
      },
      /*grain=*/1);
  return results;
}

std::vector<TopKResult> TopKRetriever::Retrieve(const tensor::Tensor& queries,
                                                int64_t k) const {
  DESALIGN_CHECK_EQ(queries.cols(), store_->dim());
  return Retrieve(queries.data().data(), queries.rows(), k);
}

std::vector<TopKResult> TopKRetriever::RetrieveBruteForce(
    const float* queries, int64_t num_queries, int64_t k) const {
  std::vector<TopKResult> results(static_cast<size_t>(num_queries));
  if (num_queries <= 0) return results;
  k = std::min(k, store_->size());
  if (k <= 0) return results;

  const int64_t d = store_->dim();
  const int64_t n = store_->size();
  const std::vector<float> q = NormalizedQueries(*store_, queries,
                                                 num_queries);
  std::vector<Candidate> scored(static_cast<size_t>(n));
  for (int64_t i = 0; i < num_queries; ++i) {
    const float* qi = q.data() + i * d;
    for (int64_t r = 0; r < n; ++r) {
      scored[static_cast<size_t>(r)] = {Dot(qi, store_->row(r), d), r};
    }
    std::partial_sort(scored.begin(), scored.begin() + k, scored.end(),
                      Better);
    TopKResult& out = results[static_cast<size_t>(i)];
    out.ids.reserve(k);
    out.scores.reserve(k);
    for (int64_t j = 0; j < k; ++j) {
      out.ids.push_back(scored[static_cast<size_t>(j)].id);
      out.scores.push_back(scored[static_cast<size_t>(j)].score);
    }
  }
  return results;
}

}  // namespace desalign::serve
