#include "serve/topk.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "serve/row_source.h"
#include "serve/scoring.h"

namespace desalign::serve {

namespace {

using scoring::Better;
using scoring::BoundedTopK;
using scoring::Candidate;
using scoring::Dot;

std::vector<float> NormalizedQueries(int64_t dim, const float* queries,
                                     int64_t num_queries) {
  std::vector<float> q(queries, queries + num_queries * dim);
  L2NormalizeRows(q.data(), num_queries, dim);
  return q;
}

}  // namespace

int64_t ResolveRerankCandidates(int64_t requested, int64_t k, int64_t n) {
  if (requested < 0) return n;  // exact mode: re-rank everything
  int64_t c = requested == 0 ? std::max<int64_t>(4 * k, 64) : requested;
  c = std::max(c, k);
  return std::min(c, n);
}

TopKRetriever::TopKRetriever(const EmbeddingStore* store, TopKOptions options)
    : store_(store), options_(options) {
  DESALIGN_CHECK(store_ != nullptr);
  if (options_.block_rows <= 0) options_.block_rows = 256;
  obs::MetricsRegistry& registry = options_.registry != nullptr
                                       ? *options_.registry
                                       : obs::MetricsRegistry::Global();
  int8_queries_ = &registry.GetCounter("quant.int8_queries");
  bf16_queries_ = &registry.GetCounter("quant.bf16_queries");
  source_errors_ = &registry.GetCounter("quant.rerank_source_errors");
  rerank_width_ = &registry.GetHistogram(
      "quant.rerank_candidates",
      obs::Histogram::ExponentialBuckets(1.0, 2.0, 30));
}

std::vector<TopKResult> TopKRetriever::Retrieve(const float* queries,
                                                int64_t num_queries,
                                                int64_t k) const {
  return RetrieveImpl(queries, num_queries, k, options_.rerank_source);
}

std::vector<TopKResult> TopKRetriever::RetrieveDegraded(
    const float* queries, int64_t num_queries, int64_t k,
    DegradationLevel level) const {
  // kNoRefine drops the fp32 refinement source; anything milder (and
  // fp32/bf16 tables regardless) has nothing to shed here.
  const RowSource* source = level >= DegradationLevel::kNoRefine
                                ? nullptr
                                : options_.rerank_source;
  return RetrieveImpl(queries, num_queries, k, source);
}

std::vector<TopKResult> TopKRetriever::RetrieveImpl(
    const float* queries, int64_t num_queries, int64_t k,
    const RowSource* source) const {
  std::vector<TopKResult> results(
      num_queries > 0 ? static_cast<size_t>(num_queries) : 0);
  if (num_queries <= 0) return results;
  const EmbeddingSnapshot snap = store_->Snapshot();
  k = std::min(k, snap.size());
  if (k <= 0) return results;

  const int64_t d = snap.dim();
  const int64_t n = snap.size();
  const int64_t block = options_.block_rows;
  const std::vector<float> q = NormalizedQueries(d, queries, num_queries);

  const nn::TensorDtype dtype = snap.dtype();
  const int64_t rerank =
      ResolveRerankCandidates(options_.rerank_candidates, k, n);
  // Full-precision refinement only applies to the int8 stage-2, and only
  // when the source matches the snapshot's shape (a reload may have
  // swapped tables since the source was opened).
  const bool refine = source != nullptr &&
                      dtype == nn::TensorDtype::kInt8 &&
                      source->rows() == n && source->dim() == d;
  if (source != nullptr && dtype == nn::TensorDtype::kInt8 && !refine) {
    source_errors_->Increment(1);
  }

  common::ThreadPool& pool =
      options_.pool != nullptr ? *options_.pool : common::ThreadPool::Global();
  pool.ParallelFor(
      0, num_queries,
      [&](int64_t qb, int64_t qe) {
        switch (dtype) {
          case nn::TensorDtype::kFloat32: {
            std::vector<BoundedTopK> heaps;
            heaps.reserve(static_cast<size_t>(qe - qb));
            for (int64_t i = qb; i < qe; ++i) heaps.emplace_back(k);
            const float* base = snap.row(0);
            for (int64_t b0 = 0; b0 < n; b0 += block) {
              const int64_t b1 = std::min(n, b0 + block);
              // Block scan: the target block stays cache-resident while
              // every query of this chunk is scored against it; each query
              // row lives in L1 for its pass over the block.
              for (int64_t i = qb; i < qe; ++i) {
                const float* qi = q.data() + i * d;
                BoundedTopK& heap = heaps[static_cast<size_t>(i - qb)];
                for (int64_t r = b0; r < b1; ++r) {
                  heap.Offer(Dot(qi, base + r * d, d), r);
                }
              }
            }
            for (int64_t i = qb; i < qe; ++i) {
              results[static_cast<size_t>(i)] =
                  heaps[static_cast<size_t>(i - qb)].Finish();
            }
            break;
          }
          case nn::TensorDtype::kBf16: {
            // One exact pass: decode each block once into a worker-local
            // fp32 buffer (decode is a bit shift, no rounding), then score
            // with the shared Dot. Scores depend only on the stored bf16
            // patterns, never on block size or thread count.
            std::vector<BoundedTopK> heaps;
            heaps.reserve(static_cast<size_t>(qe - qb));
            for (int64_t i = qb; i < qe; ++i) heaps.emplace_back(k);
            std::vector<float> decoded(static_cast<size_t>(block * d));
            for (int64_t b0 = 0; b0 < n; b0 += block) {
              const int64_t b1 = std::min(n, b0 + block);
              nn::quant::Bf16DecodeRow(snap.bf16_row(b0), (b1 - b0) * d,
                                       decoded.data());
              for (int64_t i = qb; i < qe; ++i) {
                const float* qi = q.data() + i * d;
                BoundedTopK& heap = heaps[static_cast<size_t>(i - qb)];
                for (int64_t r = b0; r < b1; ++r) {
                  heap.Offer(Dot(qi, decoded.data() + (r - b0) * d, d), r);
                }
              }
            }
            for (int64_t i = qb; i < qe; ++i) {
              results[static_cast<size_t>(i)] =
                  heaps[static_cast<size_t>(i - qb)].Finish();
            }
            break;
          }
          case nn::TensorDtype::kInt8: {
            // Stage 1: integer candidate scan. Each query is quantized
            // once; approximate scores select the best `rerank` rows under
            // the same strict total order, so the surviving candidate set
            // is independent of scan order, block size, threads and ISA.
            std::vector<scoring::Int8Query> qq;
            std::vector<BoundedTopK> heaps;
            qq.reserve(static_cast<size_t>(qe - qb));
            heaps.reserve(static_cast<size_t>(qe - qb));
            for (int64_t i = qb; i < qe; ++i) {
              qq.push_back(scoring::QuantizeQuery(q.data() + i * d, d));
              heaps.emplace_back(rerank);
            }
            for (int64_t b0 = 0; b0 < n; b0 += block) {
              const int64_t b1 = std::min(n, b0 + block);
              for (int64_t i = qb; i < qe; ++i) {
                const scoring::Int8Query& qi =
                    qq[static_cast<size_t>(i - qb)];
                BoundedTopK& heap = heaps[static_cast<size_t>(i - qb)];
                for (int64_t r = b0; r < b1; ++r) {
                  heap.Offer(
                      scoring::Int8Score(qi, snap.codes_row(r), snap.scale(r),
                                         d),
                      r);
                }
              }
            }
            // Stage 2: exact fp32 re-rank of the survivors with the shared
            // Dot/Better contract. Rows come from the full-precision
            // source when one is attached, else from fixed-order scalar
            // dequantization — either way the final top-k is bit-identical
            // across threads, block sizes and ISA.
            std::vector<float> scratch(static_cast<size_t>(d));
            int64_t fetch_errors = 0;
            for (int64_t i = qb; i < qe; ++i) {
              const float* qi = q.data() + i * d;
              BoundedTopK final_heap(k);
              for (const int64_t id :
                   heaps[static_cast<size_t>(i - qb)].FinishIds()) {
                const float* row;
                if (refine && source->Row(id, scratch.data())) {
                  row = scratch.data();
                } else {
                  if (refine) ++fetch_errors;
                  row = snap.RowAsFloat(id, scratch.data());
                }
                final_heap.Offer(Dot(qi, row, d), id);
              }
              results[static_cast<size_t>(i)] = final_heap.Finish();
            }
            if (fetch_errors > 0) source_errors_->Increment(fetch_errors);
            break;
          }
        }
      },
      /*grain=*/1);
  if (dtype == nn::TensorDtype::kInt8) {
    int8_queries_->Increment(num_queries);
    rerank_width_->Record(static_cast<double>(rerank));
  } else if (dtype == nn::TensorDtype::kBf16) {
    bf16_queries_->Increment(num_queries);
  }
  return results;
}

std::vector<TopKResult> TopKRetriever::Retrieve(const tensor::Tensor& queries,
                                                int64_t k) const {
  DESALIGN_CHECK_EQ(queries.cols(), store_->dim());
  return Retrieve(queries.data().data(), queries.rows(), k);
}

std::vector<TopKResult> TopKRetriever::RetrieveBruteForce(
    const float* queries, int64_t num_queries, int64_t k) const {
  std::vector<TopKResult> results(
      num_queries > 0 ? static_cast<size_t>(num_queries) : 0);
  if (num_queries <= 0) return results;
  const EmbeddingSnapshot snap = store_->Snapshot();
  k = std::min(k, snap.size());
  if (k <= 0) return results;

  const int64_t d = snap.dim();
  const int64_t n = snap.size();
  const std::vector<float> q = NormalizedQueries(d, queries, num_queries);
  std::vector<Candidate> scored(static_cast<size_t>(n));
  // RowAsFloat makes this the exact reference for every dtype: quantized
  // rows are dequantized with the same fixed-order math the re-rank uses,
  // so int8 exact mode (rerank_candidates < 0) must match this bit-for-bit.
  std::vector<float> scratch(static_cast<size_t>(d));
  for (int64_t i = 0; i < num_queries; ++i) {
    const float* qi = q.data() + i * d;
    for (int64_t r = 0; r < n; ++r) {
      scored[static_cast<size_t>(r)] = {
          Dot(qi, snap.RowAsFloat(r, scratch.data()), d), r};
    }
    std::partial_sort(scored.begin(), scored.begin() + k, scored.end(),
                      Better);
    TopKResult& out = results[static_cast<size_t>(i)];
    out.ids.reserve(k);
    out.scores.reserve(k);
    for (int64_t j = 0; j < k; ++j) {
      out.ids.push_back(scored[static_cast<size_t>(j)].id);
      out.scores.push_back(scored[static_cast<size_t>(j)].score);
    }
  }
  return results;
}

}  // namespace desalign::serve
