#include "serve/retriever.h"

namespace desalign::serve {

const char* ServeStatusName(ServeStatus status) {
  switch (status) {
    case ServeStatus::kOk:
      return "ok";
    case ServeStatus::kRejectedQueueFull:
      return "rejected_queue_full";
    case ServeStatus::kDeadlineExceeded:
      return "deadline_exceeded";
    case ServeStatus::kInvalidQuery:
      return "invalid_query";
    case ServeStatus::kShutdown:
      return "shutdown";
  }
  return "unknown";
}

const char* DegradationLevelName(DegradationLevel level) {
  switch (level) {
    case DegradationLevel::kNone:
      return "none";
    case DegradationLevel::kReducedProbe:
      return "reduced_probe";
    case DegradationLevel::kNoRefine:
      return "no_refine";
  }
  return "unknown";
}

}  // namespace desalign::serve
