// AVX2 body of the int8 candidate-scan dot product. Compiled with 256-bit
// codegen via the target pragma (the build itself stays baseline x86-64);
// quant_scan.cc only calls in here after runtime dispatch confirmed AVX2.
// The reduction is pure int32 arithmetic, so unlike the float kernels no
// lane-independence argument is needed: integer addition is associative and
// the result is bit-identical to the scalar loop by construction.

#include "serve/quant_scan_internal.h"

#if DESALIGN_SERVE_HAVE_AVX2

#include <immintrin.h>

#pragma GCC push_options
#pragma GCC target("avx2")

namespace desalign::serve::scoring::internal {

int32_t DotI8Avx2(const int8_t* a, const int8_t* b, int64_t d) {
  __m256i acc = _mm256_setzero_si256();
  int64_t c = 0;
  for (; c + 16 <= d; c += 16) {
    const __m128i va =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + c));
    const __m128i vb =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + c));
    // Sign-extend to 16 lanes of i16; madd multiplies pairwise and adds
    // adjacent products into 8 lanes of i32. |code| <= 127, so each pair
    // sum is at most 2 * 127^2 and cannot overflow i16->i32 madd.
    const __m256i wa = _mm256_cvtepi8_epi16(va);
    const __m256i wb = _mm256_cvtepi8_epi16(vb);
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(wa, wb));
  }
  alignas(32) int32_t lanes[8];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  int32_t s = 0;
  for (int i = 0; i < 8; ++i) s += lanes[i];
  return s + DotI8Scalar(a + c, b + c, d - c);
}

}  // namespace desalign::serve::scoring::internal

#pragma GCC pop_options

#endif  // DESALIGN_SERVE_HAVE_AVX2
