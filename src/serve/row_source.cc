#include "serve/row_source.h"

#include <fcntl.h>
#include <unistd.h>

#include <cstring>
#include <fstream>
#include <utility>
#include <vector>

#include "common/crc32.h"

namespace desalign::serve {

namespace {

constexpr char kMagicV2[] = "DESALIGNCKPT2\n";
constexpr char kMagicV3[] = "DESALIGNCKPT3\n";
constexpr int64_t kMagicLen = 14;
constexpr char kEndMarker[] = "DCKPTEND";
constexpr int64_t kEndMarkerLen = 8;
constexpr int64_t kFooterLen = 4 + kEndMarkerLen;  // crc32 + end marker

template <typename T>
T ReadLe(const char* p) {
  T v;
  std::memcpy(&v, p, sizeof(T));
  return v;
}

}  // namespace

bool SnapshotRowSource::Row(int64_t i, float* out) const {
  if (i < 0 || i >= snapshot_.size()) return false;
  const int64_t d = snapshot_.dim();
  const float* row = snapshot_.RowAsFloat(i, out);
  if (row != out) std::memcpy(out, row, static_cast<size_t>(d) * sizeof(float));
  return true;
}

common::Result<CheckpointRowSource> CheckpointRowSource::Open(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return common::Status::IoError("cannot open checkpoint " + path);
  }
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  if (in.bad()) {
    return common::Status::IoError("read failed for checkpoint " + path);
  }
  const int64_t size = static_cast<int64_t>(bytes.size());
  // Header through tensor-0 dims: magic + version/epoch/flags/count (24B)
  // + the record header, v3's being the larger (1 + 8 + 8).
  if (size < kMagicLen + 24 + 17 + kFooterLen) {
    return common::Status::IoError("checkpoint " + path +
                                   " is too short to hold a tensor");
  }
  const bool v3 = std::memcmp(bytes.data(), kMagicV3, kMagicLen) == 0;
  if (!v3 && std::memcmp(bytes.data(), kMagicV2, kMagicLen) != 0) {
    return common::Status::IoError("checkpoint " + path +
                                   " has an unknown magic");
  }
  if (std::memcmp(bytes.data() + size - kEndMarkerLen, kEndMarker,
                  kEndMarkerLen) != 0) {
    return common::Status::IoError("checkpoint " + path +
                                   " is truncated (missing end marker)");
  }
  const uint32_t stored_crc = ReadLe<uint32_t>(bytes.data() + size -
                                               kFooterLen);
  const uint32_t computed_crc = common::Crc32(
      bytes.data() + kMagicLen, static_cast<size_t>(size - kMagicLen -
                                                    kFooterLen));
  if (stored_crc != computed_crc) {
    return common::Status::IoError("checkpoint " + path +
                                   " footer checksum mismatch");
  }
  const int64_t tensor_count = ReadLe<int64_t>(bytes.data() + kMagicLen + 16);
  if (tensor_count < 1) {
    return common::Status::IoError("checkpoint " + path + " holds no tensors");
  }
  int64_t offset = kMagicLen + 24;
  if (v3) {
    const uint8_t dtype = static_cast<uint8_t>(bytes[offset]);
    if (dtype != 0) {
      return common::Status::InvalidArgument(
          "checkpoint " + path +
          " tensor 0 is not fp32; quantized records hold no full-precision "
          "rows");
    }
    offset += 1;
  }
  const int64_t rows = ReadLe<int64_t>(bytes.data() + offset);
  const int64_t cols = ReadLe<int64_t>(bytes.data() + offset + 8);
  offset += 16;
  if (rows <= 0 || cols <= 0 || rows > (int64_t{1} << 40) ||
      cols > (int64_t{1} << 30)) {
    return common::Status::IoError("checkpoint " + path +
                                   " tensor 0 has implausible shape");
  }
  const int64_t payload_bytes = rows * cols * static_cast<int64_t>(
                                                 sizeof(float));
  if (offset + payload_bytes + 4 > size - kFooterLen) {
    return common::Status::IoError("checkpoint " + path +
                                   " tensor 0 payload exceeds the file");
  }
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return common::Status::IoError("cannot reopen checkpoint " + path);
  }
  return CheckpointRowSource(fd, rows, cols, offset);
}

CheckpointRowSource::CheckpointRowSource(CheckpointRowSource&& other) noexcept
    : fd_(other.fd_),
      rows_(other.rows_),
      cols_(other.cols_),
      payload_offset_(other.payload_offset_) {
  other.fd_ = -1;
}

CheckpointRowSource& CheckpointRowSource::operator=(
    CheckpointRowSource&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    rows_ = other.rows_;
    cols_ = other.cols_;
    payload_offset_ = other.payload_offset_;
    other.fd_ = -1;
  }
  return *this;
}

CheckpointRowSource::~CheckpointRowSource() {
  if (fd_ >= 0) ::close(fd_);
}

bool CheckpointRowSource::Row(int64_t i, float* out) const {
  if (fd_ < 0 || i < 0 || i >= rows_) return false;
  const size_t want = static_cast<size_t>(cols_) * sizeof(float);
  size_t done = 0;
  char* dst = reinterpret_cast<char*>(out);
  const int64_t base = payload_offset_ + i * static_cast<int64_t>(want);
  while (done < want) {
    const ssize_t got = ::pread(fd_, dst + done, want - done,
                                static_cast<off_t>(base + done));
    if (got <= 0) return false;
    done += static_cast<size_t>(got);
  }
  return true;
}

}  // namespace desalign::serve
