#ifndef DESALIGN_SERVE_OVERLOAD_BENCH_H_
#define DESALIGN_SERVE_OVERLOAD_BENCH_H_

#include <cstdint>
#include <string>
#include <vector>

namespace desalign::serve {

/// Open-loop overload sweep for the BatchQueue front door. A closed-loop
/// probe first measures the retriever's sustainable capacity; the sweep
/// then offers fixed multiples of it (open loop — arrivals do not wait
/// for completions, the honest way to model an external client fleet) and
/// records what bounded admission, deadlines and the degradation ladder
/// make of the excess: goodput must stay near capacity and the p99 of
/// admitted requests must stay bounded while the surplus is shed, and
/// after the storm the queue must walk back to healthy and serve
/// bit-identical full-quality results. tools/ci.sh --overload gates on
/// the committed BENCH_overload.json.
struct OverloadBenchOptions {
  int64_t entities = 30000;
  int64_t dim = 64;
  int64_t k = 10;
  /// Per-request deadline enforced by the queue.
  double deadline_ms = 50.0;
  int64_t max_pending = 256;
  int64_t max_batch = 64;
  double max_wait_ms = 0.5;
  /// Offered load per sweep point, as a multiple of measured capacity.
  std::vector<double> load_multipliers = {0.5, 1.0, 2.0, 4.0};
  /// Open-loop generation time per sweep point.
  double duration_s = 2.0;
  /// Submitting threads (the simulated client fleet). 0 = auto:
  /// min(4, hardware cores) — oversubscribing generators on a small
  /// machine starves the queue worker and distorts the open-loop
  /// arrival schedule into a burst loop.
  int submit_threads = 0;
  uint64_t seed = 20260808;
  /// CI mode: smaller table, shorter points.
  bool smoke = false;
};

/// One offered-load point.
struct OverloadBenchCase {
  double multiplier = 0.0;
  double offered_qps = 0.0;   ///< what the generators aimed for
  int64_t submitted = 0;
  int64_t admitted = 0;       ///< accepted past admission control
  int64_t ok = 0;             ///< resolved kOk (scored)
  int64_t shed_queue_full = 0;
  int64_t shed_deadline = 0;
  int64_t degraded = 0;       ///< kOk answers served below full quality
  double goodput_qps = 0.0;   ///< kOk completions per offered second
  double p50_ms = 0.0;        ///< latency of kOk requests
  double p99_ms = 0.0;
  int64_t max_rung = 0;       ///< deepest governor rung observed
  int64_t end_rung = 0;       ///< rung when generation stopped
};

/// The after-the-storm phase: sustained overload pushes the governor up
/// the ladder, then a gentle trickle must walk it back to healthy and a
/// probe query must match the unloaded brute-force answer bit for bit.
struct OverloadRecovery {
  int64_t from_rung = 0;        ///< rung reached under the storm
  bool reached_healthy = false;
  double recover_ms = 0.0;      ///< trickle time until rung 0
  bool bitexact = false;        ///< probe ids+scores == unloaded baseline
};

struct OverloadBenchReport {
  int64_t entities = 0;
  int64_t dim = 0;
  int64_t k = 0;
  double deadline_ms = 0.0;
  int64_t max_pending = 0;
  double capacity_qps = 0.0;  ///< closed-loop sustainable throughput
  std::vector<OverloadBenchCase> cases;
  OverloadRecovery recovery;
  /// Schema desalign.overload_bench.v1; validated by tools/ci.sh.
  std::string ToJson() const;
};

OverloadBenchReport RunOverloadBench(const OverloadBenchOptions& options);

}  // namespace desalign::serve

#endif  // DESALIGN_SERVE_OVERLOAD_BENCH_H_
