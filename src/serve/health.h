#ifndef DESALIGN_SERVE_HEALTH_H_
#define DESALIGN_SERVE_HEALTH_H_

#include <atomic>
#include <cstdint>

#include "common/clock.h"
#include "serve/retriever.h"

namespace desalign::serve {

class ServeStats;

/// Coarse serving health derived from the degradation rung.
enum class HealthState : uint8_t {
  kHealthy = 0,   ///< rung 0: full-quality answers
  kDegraded = 1,  ///< rungs 1-2: answers served down the ladder
  kShedding = 2,  ///< rung 3: admissions beyond the shed watermark rejected
};

const char* HealthStateName(HealthState state);

/// Knobs of the hysteresis-based overload state machine. Pressure is two
/// signals sampled on the queue's injected Clock at every batch formation:
/// queue depth as a fraction of max_pending, and the deadline-miss
/// fraction of request outcomes inside the current sampling window.
struct OverloadOptions {
  /// Master switch. Off = the governor reports healthy forever; bounded
  /// admission and deadlines still apply, the quality ladder does not.
  bool enabled = false;
  /// depth/max_pending at or above this is pressure (escalate one rung).
  double degrade_depth_fraction = 0.5;
  /// depth/max_pending at or above this jumps straight to shedding.
  double shed_depth_fraction = 0.9;
  /// deadline misses / outcomes within the window counting as pressure.
  double deadline_miss_fraction = 0.5;
  /// Outcome-rate sampling window, and the minimum dwell between two
  /// consecutive escalations (one rung per window, not a free fall).
  double sample_window_ms = 100.0;
  /// Pressure must stay absent this long before each single-rung step back
  /// up the ladder — the hysteresis that stops healthy<->degraded flapping.
  double recover_hold_ms = 250.0;
  /// Recovery additionally requires depth/max_pending at or below this.
  double recover_depth_fraction = 0.25;
};

/// The overload state machine: healthy -> degraded (rung by rung) ->
/// shedding, and back down one rung per quiet recover_hold_ms. Driven
/// entirely by observations its owner feeds it (queue depth at batch
/// formation, per-request outcomes), with every timestamp taken from the
/// owner's injected Clock — so the ladder is deterministic under
/// ManualClock and never reads a timer itself.
///
/// Threading: OnSample and RecordOutcome are called by the queue's single
/// worker thread; rung() / shedding() are lock-free reads from any thread
/// (the Submit fast path checks shedding() at admission).
class HealthGovernor {
 public:
  /// `stats` may be null (no metrics). `max_pending` <= 0 disables the
  /// depth signal (an unbounded queue has no meaningful depth fraction).
  HealthGovernor(const OverloadOptions& options, int64_t max_pending,
                 ServeStats* stats);

  /// Observes the pending-queue depth at one batch formation and walks the
  /// state machine. Returns the rung the next batch should be served at.
  DegradationLevel OnSample(int64_t queue_depth,
                            common::Clock::TimePoint now);

  /// Records one request outcome inside the sampling window.
  void RecordOutcome(bool deadline_miss);

  /// Rung 0..3 (3 = shedding); the ladder position.
  int rung() const { return rung_.load(std::memory_order_relaxed); }
  bool shedding() const { return rung() >= kSheddingRung; }
  HealthState state() const;
  /// Quality level batches are currently served at (rung clamped to the
  /// ladder; shedding still serves already-admitted work at kNoRefine).
  DegradationLevel level() const;

  static constexpr int kSheddingRung = 3;

 private:
  void SetRung(int next, const char* why, double depth_fraction,
               double miss_fraction);

  const OverloadOptions options_;
  const int64_t max_pending_;
  ServeStats* stats_;

  std::atomic<int> rung_{0};

  // Worker-thread-only state (no lock needed; see class comment).
  bool clock_initialized_ = false;
  common::Clock::TimePoint window_start_{};
  common::Clock::TimePoint last_escalation_{};
  common::Clock::TimePoint calm_since_{};
  bool calm_ = false;
  int64_t window_outcomes_ = 0;
  int64_t window_misses_ = 0;
  double last_miss_fraction_ = 0.0;
};

}  // namespace desalign::serve

#endif  // DESALIGN_SERVE_HEALTH_H_
