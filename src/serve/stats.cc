#include "serve/stats.h"

#include <cstdio>

#include "eval/table.h"

namespace desalign::serve {

namespace {

std::string Ms(double ms) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", ms);
  return buf;
}

std::string Num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", v);
  return buf;
}

}  // namespace

ServeStats::ServeStats(obs::MetricsRegistry* registry, std::string prefix) {
  obs::MetricsRegistry& reg =
      registry ? *registry : obs::MetricsRegistry::Global();
  latency_ = &reg.GetHistogram(prefix + ".latency_ms");
  // Powers-of-two edges: batch sizes are small integers and only the
  // count/sum (exact) feed the reported mean.
  batches_ = &reg.GetHistogram(prefix + ".batch_size",
                               obs::Histogram::ExponentialBuckets(1.0, 2.0, 16));
  reloads_ok_ = &reg.GetCounter(prefix + ".reloads_ok");
  reloads_failed_ = &reg.GetCounter(prefix + ".reloads_failed");
  Reset();
}

void ServeStats::RecordQuery(double latency_ms) {
  latency_->Record(latency_ms);
}

void ServeStats::RecordBatch(int64_t size) {
  batches_->Record(static_cast<double>(size));
}

void ServeStats::RecordReload(bool ok) {
  (ok ? reloads_ok_ : reloads_failed_)->Increment();
}

void ServeStats::Reset() {
  latency_->Reset();
  batches_->Reset();
  reloads_ok_->Reset();
  reloads_failed_->Reset();
  clock_.Reset();
}

ServeStatsSnapshot ServeStats::Snapshot() const {
  const obs::HistogramSnapshot latency = latency_->Snapshot();
  const obs::HistogramSnapshot batches = batches_->Snapshot();
  ServeStatsSnapshot snap;
  snap.queries = latency.count;
  snap.batches = batches.count;
  snap.elapsed_seconds = clock_.ElapsedSeconds();
  if (snap.elapsed_seconds > 0.0) {
    snap.queries_per_second =
        static_cast<double>(snap.queries) / snap.elapsed_seconds;
  }
  snap.mean_batch_size = batches.mean;
  snap.mean_latency_ms = latency.mean;
  snap.p50_latency_ms = latency.p50;
  snap.p95_latency_ms = latency.p95;
  snap.p99_latency_ms = latency.p99;
  snap.max_latency_ms = latency.max;
  snap.reloads_ok = reloads_ok_->value();
  snap.reloads_failed = reloads_failed_->value();
  return snap;
}

void ServeStats::PrintTable(std::ostream& os) const {
  const ServeStatsSnapshot s = Snapshot();
  eval::TablePrinter table({"queries", "batches", "avg batch", "qps",
                            "mean(ms)", "p50(ms)", "p95(ms)", "p99(ms)",
                            "max(ms)"});
  table.AddRow({std::to_string(s.queries), std::to_string(s.batches),
                Num(s.mean_batch_size), Num(s.queries_per_second),
                Ms(s.mean_latency_ms), Ms(s.p50_latency_ms),
                Ms(s.p95_latency_ms), Ms(s.p99_latency_ms),
                Ms(s.max_latency_ms)});
  table.Print(os);
}

}  // namespace desalign::serve
