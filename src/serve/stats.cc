#include "serve/stats.h"

#include <cstdio>

#include "common/table.h"

namespace desalign::serve {

namespace {

std::string Ms(double ms) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", ms);
  return buf;
}

std::string Num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", v);
  return buf;
}

}  // namespace

ServeStats::ServeStats(obs::MetricsRegistry* registry, std::string prefix,
                       common::Clock* clock)
    : clock_(clock ? clock : common::Clock::Real()) {
  obs::MetricsRegistry& reg =
      registry ? *registry : obs::MetricsRegistry::Global();
  latency_ = &reg.GetHistogram(prefix + ".latency_ms");
  // Powers-of-two edges: batch sizes are small integers and only the
  // count/sum (exact) feed the reported mean.
  batches_ = &reg.GetHistogram(prefix + ".batch_size",
                               obs::Histogram::ExponentialBuckets(1.0, 2.0, 16));
  queue_wait_ = &reg.GetHistogram(prefix + ".queue_wait_ms");
  reloads_ok_ = &reg.GetCounter(prefix + ".reloads_ok");
  reloads_failed_ = &reg.GetCounter(prefix + ".reloads_failed");
  admitted_ = &reg.GetCounter(prefix + ".admitted");
  shed_queue_full_ = &reg.GetCounter(prefix + ".shed_queue_full");
  shed_deadline_ = &reg.GetCounter(prefix + ".shed_deadline");
  rejected_invalid_ = &reg.GetCounter(prefix + ".rejected_invalid");
  rejected_shutdown_ = &reg.GetCounter(prefix + ".rejected_shutdown");
  degraded_ = &reg.GetCounter(prefix + ".degraded");
  health_transitions_ = &reg.GetCounter(prefix + ".health_transitions");
  queue_depth_ = &reg.GetGauge(prefix + ".queue_depth");
  health_state_ = &reg.GetGauge(prefix + ".health_state");
  Reset();
}

void ServeStats::RecordQuery(double latency_ms) {
  latency_->Record(latency_ms);
}

void ServeStats::RecordBatch(int64_t size) {
  batches_->Record(static_cast<double>(size));
}

void ServeStats::RecordReload(bool ok) {
  (ok ? reloads_ok_ : reloads_failed_)->Increment();
}

void ServeStats::RecordAdmitted() { admitted_->Increment(); }

void ServeStats::RecordRejected(ServeStatus status) {
  switch (status) {
    case ServeStatus::kRejectedQueueFull:
      shed_queue_full_->Increment();
      break;
    case ServeStatus::kDeadlineExceeded:
      shed_deadline_->Increment();
      break;
    case ServeStatus::kInvalidQuery:
      rejected_invalid_->Increment();
      break;
    case ServeStatus::kShutdown:
      rejected_shutdown_->Increment();
      break;
    case ServeStatus::kOk:
      break;  // not a rejection; nothing to count
  }
}

void ServeStats::RecordDegraded(int64_t n) {
  if (n > 0) degraded_->Increment(n);
}

void ServeStats::RecordQueueDepth(int64_t depth) {
  queue_depth_->Set(static_cast<double>(depth));
}

void ServeStats::RecordQueueWait(double wait_ms) {
  queue_wait_->Record(wait_ms);
}

void ServeStats::RecordHealthTransition(int /*from_rung*/, int to_rung) {
  health_transitions_->Increment();
  health_state_->Set(static_cast<double>(to_rung));
}

void ServeStats::Reset() {
  latency_->Reset();
  batches_->Reset();
  queue_wait_->Reset();
  reloads_ok_->Reset();
  reloads_failed_->Reset();
  admitted_->Reset();
  shed_queue_full_->Reset();
  shed_deadline_->Reset();
  rejected_invalid_->Reset();
  rejected_shutdown_->Reset();
  degraded_->Reset();
  health_transitions_->Reset();
  queue_depth_->Reset();
  health_state_->Reset();
  start_ = clock_->Now();
}

ServeStatsSnapshot ServeStats::Snapshot() const {
  const obs::HistogramSnapshot latency = latency_->Snapshot();
  const obs::HistogramSnapshot batches = batches_->Snapshot();
  const obs::HistogramSnapshot waits = queue_wait_->Snapshot();
  ServeStatsSnapshot snap;
  snap.queries = latency.count;
  snap.batches = batches.count;
  snap.elapsed_seconds =
      std::chrono::duration<double>(clock_->Now() - start_).count();
  if (snap.elapsed_seconds > 0.0) {
    snap.queries_per_second =
        static_cast<double>(snap.queries) / snap.elapsed_seconds;
  }
  snap.mean_batch_size = batches.mean;
  snap.mean_latency_ms = latency.mean;
  snap.p50_latency_ms = latency.p50;
  snap.p95_latency_ms = latency.p95;
  snap.p99_latency_ms = latency.p99;
  snap.max_latency_ms = latency.max;
  snap.reloads_ok = reloads_ok_->value();
  snap.reloads_failed = reloads_failed_->value();
  snap.admitted = admitted_->value();
  snap.shed_queue_full = shed_queue_full_->value();
  snap.shed_deadline = shed_deadline_->value();
  snap.rejected_invalid = rejected_invalid_->value();
  snap.rejected_shutdown = rejected_shutdown_->value();
  snap.degraded = degraded_->value();
  snap.health_transitions = health_transitions_->value();
  snap.queue_depth = static_cast<int64_t>(queue_depth_->value());
  snap.health_rung = static_cast<int64_t>(health_state_->value());
  snap.mean_queue_wait_ms = waits.mean;
  snap.p99_queue_wait_ms = waits.p99;
  return snap;
}

void ServeStats::PrintTable(std::ostream& os) const {
  const ServeStatsSnapshot s = Snapshot();
  common::TablePrinter table({"queries", "batches", "avg batch", "qps",
                            "mean(ms)", "p50(ms)", "p95(ms)", "p99(ms)",
                            "max(ms)"});
  table.AddRow({std::to_string(s.queries), std::to_string(s.batches),
                Num(s.mean_batch_size), Num(s.queries_per_second),
                Ms(s.mean_latency_ms), Ms(s.p50_latency_ms),
                Ms(s.p95_latency_ms), Ms(s.p99_latency_ms),
                Ms(s.max_latency_ms)});
  table.Print(os);
  if (s.admitted + s.shed_queue_full + s.shed_deadline + s.rejected_invalid +
          s.rejected_shutdown + s.degraded >
      0) {
    common::TablePrinter overload({"admitted", "shed(full)", "shed(ddl)",
                                 "invalid", "shutdown", "degraded",
                                 "transitions", "wait p99(ms)"});
    overload.AddRow({std::to_string(s.admitted),
                     std::to_string(s.shed_queue_full),
                     std::to_string(s.shed_deadline),
                     std::to_string(s.rejected_invalid),
                     std::to_string(s.rejected_shutdown),
                     std::to_string(s.degraded),
                     std::to_string(s.health_transitions),
                     Ms(s.p99_queue_wait_ms)});
    overload.Print(os);
  }
}

}  // namespace desalign::serve
