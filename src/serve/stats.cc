#include "serve/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/check.h"
#include "eval/table.h"

namespace desalign::serve {

namespace {

// Nearest-rank percentile over a sorted sample.
double PercentileSorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const size_t idx = static_cast<size_t>(std::llround(pos));
  return sorted[std::min(idx, sorted.size() - 1)];
}

std::string Ms(double ms) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", ms);
  return buf;
}

std::string Num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", v);
  return buf;
}

}  // namespace

ServeStats::ServeStats(int64_t reservoir_capacity, uint64_t seed)
    : capacity_(reservoir_capacity), engine_(seed) {
  DESALIGN_CHECK_GT(capacity_, 0);
  reservoir_.reserve(static_cast<size_t>(capacity_));
}

void ServeStats::RecordQuery(double latency_ms) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++queries_;
  sum_latency_ms_ += latency_ms;
  max_latency_ms_ = std::max(max_latency_ms_, latency_ms);
  if (static_cast<int64_t>(reservoir_.size()) < capacity_) {
    reservoir_.push_back(latency_ms);
  } else {
    // Algorithm R: the i-th observation replaces a random slot with
    // probability capacity / i, keeping a uniform sample.
    const uint64_t slot = engine_() % static_cast<uint64_t>(queries_);
    if (slot < static_cast<uint64_t>(capacity_)) {
      reservoir_[static_cast<size_t>(slot)] = latency_ms;
    }
  }
}

void ServeStats::RecordBatch(int64_t size) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++batches_;
  batched_queries_ += size;
}

void ServeStats::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  queries_ = 0;
  batches_ = 0;
  batched_queries_ = 0;
  sum_latency_ms_ = 0.0;
  max_latency_ms_ = 0.0;
  reservoir_.clear();
  clock_.Reset();
}

ServeStatsSnapshot ServeStats::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  ServeStatsSnapshot snap;
  snap.queries = queries_;
  snap.batches = batches_;
  snap.elapsed_seconds = clock_.ElapsedSeconds();
  if (snap.elapsed_seconds > 0.0) {
    snap.queries_per_second =
        static_cast<double>(queries_) / snap.elapsed_seconds;
  }
  if (batches_ > 0) {
    snap.mean_batch_size =
        static_cast<double>(batched_queries_) / static_cast<double>(batches_);
  }
  if (queries_ > 0) {
    snap.mean_latency_ms = sum_latency_ms_ / static_cast<double>(queries_);
  }
  snap.max_latency_ms = max_latency_ms_;
  std::vector<double> sorted = reservoir_;
  std::sort(sorted.begin(), sorted.end());
  snap.p50_latency_ms = PercentileSorted(sorted, 0.50);
  snap.p95_latency_ms = PercentileSorted(sorted, 0.95);
  return snap;
}

void ServeStats::PrintTable(std::ostream& os) const {
  const ServeStatsSnapshot s = Snapshot();
  eval::TablePrinter table({"queries", "batches", "avg batch", "qps",
                            "mean(ms)", "p50(ms)", "p95(ms)", "max(ms)"});
  table.AddRow({std::to_string(s.queries), std::to_string(s.batches),
                Num(s.mean_batch_size), Num(s.queries_per_second),
                Ms(s.mean_latency_ms), Ms(s.p50_latency_ms),
                Ms(s.p95_latency_ms), Ms(s.max_latency_ms)});
  table.Print(os);
}

}  // namespace desalign::serve
