#ifndef DESALIGN_SERVE_ROW_SOURCE_H_
#define DESALIGN_SERVE_ROW_SOURCE_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "serve/embedding_store.h"

namespace desalign::serve {

/// Read-only provider of full-precision fp32 rows for the stage-2 re-rank
/// over an int8 table (TopKOptions::rerank_source). The quantized table
/// answers the candidate scan from resident memory; the source supplies
/// the original fp32 rows — typically from the checkpoint the table was
/// quantized from — so the re-rank recovers exact scores without keeping
/// an fp32 copy of the whole table in RAM.
///
/// Implementations must be safe to call concurrently from const methods:
/// Retrieve fetches rows from worker threads.
class RowSource {
 public:
  virtual ~RowSource() = default;

  virtual int64_t rows() const = 0;
  virtual int64_t dim() const = 0;

  /// Copies fp32 row `i` into `out` (at least dim() floats). Returns false
  /// on failure, in which case the caller falls back to the dequantized
  /// row; `out` may hold partial data.
  virtual bool Row(int64_t i, float* out) const = 0;
};

/// A RowSource over an in-memory EmbeddingSnapshot — the sidecar form used
/// by tests and by bench sweeps that already hold the fp32 table. The
/// snapshot pins its table, so the source stays valid across concurrent
/// store reloads.
class SnapshotRowSource : public RowSource {
 public:
  explicit SnapshotRowSource(EmbeddingSnapshot snapshot)
      : snapshot_(std::move(snapshot)) {}

  int64_t rows() const override { return snapshot_.size(); }
  int64_t dim() const override { return snapshot_.dim(); }
  bool Row(int64_t i, float* out) const override;

 private:
  EmbeddingSnapshot snapshot_;
};

/// A RowSource that reads fp32 rows on demand (pread, no seek state) from
/// tensor 0 of a v2 checkpoint or an fp32 record of a v3 checkpoint on
/// disk. Open() reads the file once to verify the envelope — magic,
/// version, end marker, footer CRC32 over the whole body — and to locate
/// the tensor-0 payload; after that only the requested rows are read, so
/// the resident cost of full-precision re-ranking is the page cache
/// working set of the re-ranked candidates, not the fp32 table.
///
/// Row() trusts the kernel for reads after the open-time validation; a
/// file replaced in place (rather than atomically, as the checkpoint
/// writer does) invalidates the source. Thread-safe: pread carries its own
/// offset, so concurrent Retrieve workers share one descriptor.
class CheckpointRowSource : public RowSource {
 public:
  /// Validates `path` and returns a ready source. Fails with a clean
  /// Status on a missing file, a non-checkpoint file, a corrupt envelope,
  /// or a v3 tensor 0 that is not fp32 (quantized records hold no
  /// full-precision rows to refine with).
  static common::Result<CheckpointRowSource> Open(const std::string& path);

  /// Empty source (0 x 0, every Row fails); exists so the class fits
  /// common::Result. Usable sources come from Open.
  CheckpointRowSource() = default;

  CheckpointRowSource(CheckpointRowSource&& other) noexcept;
  CheckpointRowSource& operator=(CheckpointRowSource&& other) noexcept;
  CheckpointRowSource(const CheckpointRowSource&) = delete;
  CheckpointRowSource& operator=(const CheckpointRowSource&) = delete;
  ~CheckpointRowSource() override;

  int64_t rows() const override { return rows_; }
  int64_t dim() const override { return cols_; }
  bool Row(int64_t i, float* out) const override;

 private:
  CheckpointRowSource(int fd, int64_t rows, int64_t cols,
                      int64_t payload_offset)
      : fd_(fd), rows_(rows), cols_(cols), payload_offset_(payload_offset) {}

  int fd_ = -1;
  int64_t rows_ = 0;
  int64_t cols_ = 0;
  int64_t payload_offset_ = 0;
};

}  // namespace desalign::serve

#endif  // DESALIGN_SERVE_ROW_SOURCE_H_
