#include "serve/embedding_store.h"

#include <cmath>
#include <utility>

#include "common/check.h"
#include "nn/serialize.h"

namespace desalign::serve {

void L2NormalizeRows(float* data, int64_t rows, int64_t dim, float eps) {
  for (int64_t r = 0; r < rows; ++r) {
    float* row = data + r * dim;
    float sum = 0.0f;
    for (int64_t c = 0; c < dim; ++c) sum += row[c] * row[c];
    // Idempotent within float rounding: rows that are already unit (e.g.
    // a store re-loaded from its own checkpoint) keep their exact bits, so
    // save/load round trips are bit-exact.
    if (std::fabs(sum - 1.0f) <= 1e-5f) continue;
    const float norm = std::sqrt(sum);
    if (norm <= eps) continue;
    const float inv = 1.0f / norm;
    for (int64_t c = 0; c < dim; ++c) row[c] *= inv;
  }
}

EmbeddingStore::EmbeddingStore(int64_t rows, int64_t cols,
                               std::vector<float> data)
    : rows_(rows), cols_(cols), data_(std::move(data)) {
  DESALIGN_CHECK_EQ(static_cast<int64_t>(data_.size()), rows_ * cols_);
  L2NormalizeRows(data_.data(), rows_, cols_);
}

EmbeddingStore EmbeddingStore::FromTensor(const tensor::Tensor& embeddings) {
  return EmbeddingStore(embeddings.rows(), embeddings.cols(),
                        embeddings.data());
}

EmbeddingStore EmbeddingStore::FromRows(int64_t rows, int64_t cols,
                                        std::vector<float> data) {
  return EmbeddingStore(rows, cols, std::move(data));
}

common::Status EmbeddingStore::Save(const std::string& path) const {
  auto t = tensor::Tensor::FromData(rows_, cols_, data_);
  return nn::SaveParameters({t}, path);
}

common::Result<EmbeddingStore> EmbeddingStore::Load(const std::string& path,
                                                    int64_t tensor_index) {
  DESALIGN_ASSIGN_OR_RETURN(auto tensors, nn::LoadAllParameters(path));
  if (tensor_index < 0 ||
      tensor_index >= static_cast<int64_t>(tensors.size())) {
    return common::Status::InvalidArgument(
        "checkpoint " + path + " holds " + std::to_string(tensors.size()) +
        " tensors; index " + std::to_string(tensor_index) +
        " is out of range");
  }
  const auto& t = tensors[static_cast<size_t>(tensor_index)];
  if (t->rows() <= 0 || t->cols() <= 0) {
    return common::Status::InvalidArgument(
        "checkpoint tensor " + std::to_string(tensor_index) +
        " is empty; cannot serve from it");
  }
  return EmbeddingStore(t->rows(), t->cols(), t->data());
}

}  // namespace desalign::serve
