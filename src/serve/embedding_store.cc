#include "serve/embedding_store.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>
#include <utility>

#include "common/check.h"
#include "common/logging.h"
#include "nn/checkpoint.h"
#include "nn/serialize.h"
#include "serve/stats.h"

namespace desalign::serve {

namespace {

const std::shared_ptr<const EmbeddingTable>& EmptyTable() {
  static const std::shared_ptr<const EmbeddingTable> empty =
      std::make_shared<const EmbeddingTable>();
  return empty;
}

}  // namespace

void L2NormalizeRows(float* data, int64_t rows, int64_t dim, float eps) {
  for (int64_t r = 0; r < rows; ++r) {
    float* row = data + r * dim;
    float sum = 0.0f;
    for (int64_t c = 0; c < dim; ++c) sum += row[c] * row[c];
    // Idempotent within float rounding: rows that are already unit (e.g.
    // a store re-loaded from its own checkpoint) keep their exact bits, so
    // save/load round trips are bit-exact.
    if (std::fabs(sum - 1.0f) <= 1e-5f) continue;
    const float norm = std::sqrt(sum);
    if (norm <= eps) continue;
    const float inv = 1.0f / norm;
    for (int64_t c = 0; c < dim; ++c) row[c] *= inv;
  }
}

EmbeddingSnapshot::EmbeddingSnapshot() : table_(EmptyTable()) {}

EmbeddingSnapshot::EmbeddingSnapshot(
    std::shared_ptr<const EmbeddingTable> table)
    : table_(std::move(table)) {
  DESALIGN_CHECK(table_ != nullptr);
}

EmbeddingStore::EmbeddingStore() : table_(EmptyTable()) {}

EmbeddingStore::EmbeddingStore(int64_t rows, int64_t cols,
                               std::vector<float> data) {
  DESALIGN_CHECK_EQ(static_cast<int64_t>(data.size()), rows * cols);
  L2NormalizeRows(data.data(), rows, cols);
  auto table = std::make_shared<EmbeddingTable>();
  table->rows = rows;
  table->cols = cols;
  table->data = std::move(data);
  common::MutexLock lock(mutex_);
  table_ = std::move(table);
}

EmbeddingStore::EmbeddingStore(EmbeddingStore&& other) noexcept
    : table_(other.SharedTable()) {}

EmbeddingStore& EmbeddingStore::operator=(EmbeddingStore&& other) noexcept {
  auto table = other.SharedTable();
  common::MutexLock lock(mutex_);
  table_ = std::move(table);
  return *this;
}

EmbeddingStore::EmbeddingStore(const EmbeddingStore& other)
    : table_(other.SharedTable()) {}

EmbeddingStore& EmbeddingStore::operator=(const EmbeddingStore& other) {
  auto table = other.SharedTable();
  common::MutexLock lock(mutex_);
  table_ = std::move(table);
  return *this;
}

std::shared_ptr<const EmbeddingTable> EmbeddingStore::SharedTable() const {
  common::MutexLock lock(mutex_);
  return table_;
}

EmbeddingSnapshot EmbeddingStore::Snapshot() const {
  return EmbeddingSnapshot(SharedTable());
}

int64_t EmbeddingStore::size() const { return SharedTable()->rows; }

int64_t EmbeddingStore::dim() const { return SharedTable()->cols; }

const float* EmbeddingStore::row(int64_t i) const {
  const auto table = SharedTable();
  return table->data.data() + i * table->cols;
}

const std::vector<float>& EmbeddingStore::data() const {
  return SharedTable()->data;
}

EmbeddingStore EmbeddingStore::FromTensor(const tensor::Tensor& embeddings) {
  return EmbeddingStore(embeddings.rows(), embeddings.cols(),
                        embeddings.data());
}

EmbeddingStore EmbeddingStore::FromRows(int64_t rows, int64_t cols,
                                        std::vector<float> data) {
  return EmbeddingStore(rows, cols, std::move(data));
}

common::Status EmbeddingStore::Save(const std::string& path) const {
  const auto table = SharedTable();
  nn::TrainingCheckpoint ckpt;
  ckpt.tensors.push_back(
      tensor::Tensor::FromData(table->rows, table->cols, table->data));
  return nn::SaveCheckpoint(ckpt, path);
}

common::Result<EmbeddingStore> EmbeddingStore::Load(const std::string& path,
                                                    int64_t tensor_index) {
  DESALIGN_ASSIGN_OR_RETURN(auto tensors, nn::LoadAllParameters(path));
  if (tensor_index < 0 ||
      tensor_index >= static_cast<int64_t>(tensors.size())) {
    return common::Status::InvalidArgument(
        "checkpoint " + path + " holds " + std::to_string(tensors.size()) +
        " tensors; index " + std::to_string(tensor_index) +
        " is out of range");
  }
  const auto& t = tensors[static_cast<size_t>(tensor_index)];
  if (t->rows() <= 0 || t->cols() <= 0) {
    return common::Status::InvalidArgument(
        "checkpoint tensor " + std::to_string(tensor_index) +
        " is empty; cannot serve from it");
  }
  return EmbeddingStore(t->rows(), t->cols(), t->data());
}

common::Status EmbeddingStore::Reload(const std::string& path,
                                      const ReloadOptions& options,
                                      ServeStats* stats) {
  const int attempts = std::max(options.max_attempts, 1);
  double backoff_ms = options.backoff_ms;
  common::Status last = common::Status::Internal("reload never attempted");
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0 && backoff_ms > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(backoff_ms));
      backoff_ms *= 2.0;
    }
    auto loaded = Load(path);
    if (loaded.ok()) {
      const auto current = SharedTable();
      const auto fresh = loaded.value().SharedTable();
      if (current->rows > 0 && fresh->cols != current->cols) {
        // Permanent: queries embedded for the old dimension cannot be
        // scored against the new table, so retrying cannot help.
        if (stats != nullptr) stats->RecordReload(false);
        return common::Status::InvalidArgument(
            "reload of " + path + " would change dim from " +
            std::to_string(current->cols) + " to " +
            std::to_string(fresh->cols));
      }
      {
        // The swap is the only mutation; in-flight snapshots keep the old
        // table alive and bit-identical until they drop.
        common::MutexLock lock(mutex_);
        table_ = fresh;
      }
      if (stats != nullptr) stats->RecordReload(true);
      return common::Status::Ok();
    }
    last = loaded.status();
    DESALIGN_LOG(Warning) << "reload attempt " << (attempt + 1) << "/"
                          << attempts << " failed: " << last.ToString();
    if (last.code() == common::StatusCode::kInvalidArgument) break;
  }
  if (stats != nullptr) stats->RecordReload(false);
  return last;  // the previous snapshot is still being served
}

}  // namespace desalign::serve
