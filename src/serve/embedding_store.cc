#include "serve/embedding_store.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>
#include <utility>

#include "common/check.h"
#include "common/logging.h"
#include "nn/checkpoint.h"
#include "nn/serialize.h"
#include "serve/stats.h"

namespace desalign::serve {

namespace {

const std::shared_ptr<const EmbeddingTable>& EmptyTable() {
  static const std::shared_ptr<const EmbeddingTable> empty =
      std::make_shared<const EmbeddingTable>();
  return empty;
}

std::shared_ptr<const EmbeddingTable> TableFromQuantTensor(
    const nn::QuantTensor& q) {
  auto table = std::make_shared<EmbeddingTable>();
  table->rows = q.rows;
  table->cols = q.cols;
  table->dtype = q.dtype;
  switch (q.dtype) {
    case nn::TensorDtype::kFloat32:
      table->data = q.f32;
      break;
    case nn::TensorDtype::kInt8:
      table->codes = q.codes;
      table->scales = q.scales;
      break;
    case nn::TensorDtype::kBf16:
      table->bf16 = q.bf16;
      break;
  }
  return table;
}

}  // namespace

size_t EmbeddingTable::MemoryBytes() const {
  return data.size() * sizeof(float) + codes.size() * sizeof(int8_t) +
         scales.size() * sizeof(float) + bf16.size() * sizeof(uint16_t);
}

const float* EmbeddingSnapshot::RowAsFloat(int64_t i, float* scratch) const {
  const int64_t d = table_->cols;
  switch (table_->dtype) {
    case nn::TensorDtype::kFloat32:
      return table_->data.data() + i * d;
    case nn::TensorDtype::kInt8:
      nn::quant::DequantizeRow(table_->codes.data() + i * d, d,
                               table_->scales[static_cast<size_t>(i)],
                               scratch);
      return scratch;
    case nn::TensorDtype::kBf16:
      nn::quant::Bf16DecodeRow(table_->bf16.data() + i * d, d, scratch);
      return scratch;
  }
  return scratch;
}

void L2NormalizeRows(float* data, int64_t rows, int64_t dim, float eps) {
  for (int64_t r = 0; r < rows; ++r) {
    float* row = data + r * dim;
    float sum = 0.0f;
    for (int64_t c = 0; c < dim; ++c) sum += row[c] * row[c];
    // Idempotent within float rounding: rows that are already unit (e.g.
    // a store re-loaded from its own checkpoint) keep their exact bits, so
    // save/load round trips are bit-exact.
    if (std::fabs(sum - 1.0f) <= 1e-5f) continue;
    const float norm = std::sqrt(sum);
    if (norm <= eps) continue;
    const float inv = 1.0f / norm;
    for (int64_t c = 0; c < dim; ++c) row[c] *= inv;
  }
}

EmbeddingSnapshot::EmbeddingSnapshot() : table_(EmptyTable()) {}

EmbeddingSnapshot::EmbeddingSnapshot(
    std::shared_ptr<const EmbeddingTable> table)
    : table_(std::move(table)) {
  DESALIGN_CHECK(table_ != nullptr);
}

EmbeddingStore::EmbeddingStore() : table_(EmptyTable()) {}

EmbeddingStore::EmbeddingStore(int64_t rows, int64_t cols,
                               std::vector<float> data) {
  DESALIGN_CHECK_EQ(static_cast<int64_t>(data.size()), rows * cols);
  L2NormalizeRows(data.data(), rows, cols);
  auto table = std::make_shared<EmbeddingTable>();
  table->rows = rows;
  table->cols = cols;
  table->data = std::move(data);
  common::MutexLock lock(mutex_);
  table_ = std::move(table);
}

EmbeddingStore::EmbeddingStore(std::shared_ptr<const EmbeddingTable> table) {
  DESALIGN_CHECK(table != nullptr);
  common::MutexLock lock(mutex_);
  table_ = std::move(table);
}

EmbeddingStore::EmbeddingStore(EmbeddingStore&& other) noexcept
    : table_(other.SharedTable()) {}

EmbeddingStore& EmbeddingStore::operator=(EmbeddingStore&& other) noexcept {
  auto table = other.SharedTable();
  common::MutexLock lock(mutex_);
  table_ = std::move(table);
  return *this;
}

EmbeddingStore::EmbeddingStore(const EmbeddingStore& other)
    : table_(other.SharedTable()) {}

EmbeddingStore& EmbeddingStore::operator=(const EmbeddingStore& other) {
  auto table = other.SharedTable();
  common::MutexLock lock(mutex_);
  table_ = std::move(table);
  return *this;
}

std::shared_ptr<const EmbeddingTable> EmbeddingStore::SharedTable() const {
  common::MutexLock lock(mutex_);
  return table_;
}

EmbeddingSnapshot EmbeddingStore::Snapshot() const {
  return EmbeddingSnapshot(SharedTable());
}

int64_t EmbeddingStore::size() const { return SharedTable()->rows; }

int64_t EmbeddingStore::dim() const { return SharedTable()->cols; }

const float* EmbeddingStore::row(int64_t i) const {
  const auto table = SharedTable();
  return table->data.data() + i * table->cols;
}

const std::vector<float>& EmbeddingStore::data() const {
  return SharedTable()->data;
}

EmbeddingStore EmbeddingStore::FromTensor(const tensor::Tensor& embeddings) {
  return EmbeddingStore(embeddings.rows(), embeddings.cols(),
                        embeddings.data());
}

EmbeddingStore EmbeddingStore::FromRows(int64_t rows, int64_t cols,
                                        std::vector<float> data) {
  return EmbeddingStore(rows, cols, std::move(data));
}

common::Status EmbeddingStore::Save(const std::string& path) const {
  const auto table = SharedTable();
  nn::TrainingCheckpoint ckpt;
  if (table->dtype == nn::TensorDtype::kFloat32) {
    ckpt.tensors.push_back(
        tensor::Tensor::FromData(table->rows, table->cols, table->data));
  } else {
    nn::QuantTensor q;
    q.dtype = table->dtype;
    q.rows = table->rows;
    q.cols = table->cols;
    q.codes = table->codes;
    q.scales = table->scales;
    q.bf16 = table->bf16;
    ckpt.quant_tensors.push_back(std::move(q));
  }
  return nn::SaveCheckpoint(ckpt, path);
}

common::Result<EmbeddingStore> EmbeddingStore::Load(const std::string& path,
                                                    int64_t tensor_index) {
  DESALIGN_ASSIGN_OR_RETURN(auto ckpt, nn::LoadCheckpoint(path));
  const auto& tensors = ckpt.tensors;
  if (tensor_index < 0 ||
      tensor_index >= static_cast<int64_t>(tensors.size())) {
    return common::Status::InvalidArgument(
        "checkpoint " + path + " holds " + std::to_string(tensors.size()) +
        " tensors; index " + std::to_string(tensor_index) +
        " is out of range");
  }
  // v3 checkpoints carry the stored dtype alongside the fp32 view; adopt
  // quantized records verbatim so codes and scales round-trip bit-exactly
  // (re-normalizing a dequantized view would silently perturb scores).
  if (!ckpt.quant_tensors.empty()) {
    const auto& q = ckpt.quant_tensors[static_cast<size_t>(tensor_index)];
    if (q.rows <= 0 || q.cols <= 0) {
      return common::Status::InvalidArgument(
          "checkpoint tensor " + std::to_string(tensor_index) +
          " is empty; cannot serve from it");
    }
    if (q.dtype != nn::TensorDtype::kFloat32) {
      return EmbeddingStore(TableFromQuantTensor(q));
    }
  }
  const auto& t = tensors[static_cast<size_t>(tensor_index)];
  if (t->rows() <= 0 || t->cols() <= 0) {
    return common::Status::InvalidArgument(
        "checkpoint tensor " + std::to_string(tensor_index) +
        " is empty; cannot serve from it");
  }
  return EmbeddingStore(t->rows(), t->cols(), t->data());
}

common::Result<EmbeddingStore> EmbeddingStore::Quantize(
    nn::TensorDtype dtype) const {
  const auto table = SharedTable();
  if (table->dtype != nn::TensorDtype::kFloat32) {
    return common::Status::InvalidArgument(
        std::string("cannot quantize a ") + nn::DtypeName(table->dtype) +
        " table; quantize from the fp32 original");
  }
  if (dtype == nn::TensorDtype::kFloat32) return *this;
  auto out = std::make_shared<EmbeddingTable>();
  out->rows = table->rows;
  out->cols = table->cols;
  out->dtype = dtype;
  if (dtype == nn::TensorDtype::kInt8) {
    out->codes.resize(table->data.size());
    out->scales.resize(static_cast<size_t>(table->rows));
    for (int64_t r = 0; r < table->rows; ++r) {
      const common::Status status = nn::quant::QuantizeRow(
          table->data.data() + r * table->cols, table->cols,
          out->codes.data() + r * table->cols, out->scales.data() + r);
      if (!status.ok()) {
        return common::Status::InvalidArgument(
            "row " + std::to_string(r) + ": " + status.message());
      }
    }
  } else {
    out->bf16.resize(table->data.size());
    nn::quant::Bf16EncodeRow(table->data.data(),
                             static_cast<int64_t>(table->data.size()),
                             out->bf16.data());
  }
  return EmbeddingStore(
      std::shared_ptr<const EmbeddingTable>(std::move(out)));
}

common::Status EmbeddingStore::Reload(const std::string& path,
                                      const ReloadOptions& options,
                                      ServeStats* stats) {
  const int attempts = std::max(options.max_attempts, 1);
  double backoff_ms = options.backoff_ms;
  common::Status last = common::Status::Internal("reload never attempted");
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0 && backoff_ms > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(backoff_ms));
      backoff_ms *= 2.0;
    }
    auto loaded = Load(path);
    if (loaded.ok()) {
      const auto current = SharedTable();
      const auto fresh = loaded.value().SharedTable();
      if (current->rows > 0 && fresh->cols != current->cols) {
        // Permanent: queries embedded for the old dimension cannot be
        // scored against the new table, so retrying cannot help.
        if (stats != nullptr) stats->RecordReload(false);
        return common::Status::InvalidArgument(
            "reload of " + path + " would change dim from " +
            std::to_string(current->cols) + " to " +
            std::to_string(fresh->cols));
      }
      {
        // The swap is the only mutation; in-flight snapshots keep the old
        // table alive and bit-identical until they drop.
        common::MutexLock lock(mutex_);
        table_ = fresh;
      }
      if (stats != nullptr) stats->RecordReload(true);
      return common::Status::Ok();
    }
    last = loaded.status();
    DESALIGN_LOG(Warning) << "reload attempt " << (attempt + 1) << "/"
                          << attempts << " failed: " << last.ToString();
    if (last.code() == common::StatusCode::kInvalidArgument) break;
  }
  if (stats != nullptr) stats->RecordReload(false);
  return last;  // the previous snapshot is still being served
}

}  // namespace desalign::serve
