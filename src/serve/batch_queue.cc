#include "serve/batch_queue.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "common/fault_injection.h"

namespace desalign::serve {

namespace {

constexpr common::Clock::TimePoint kNoDeadline =
    common::Clock::TimePoint::max();

/// Runs a DESALIGN_FAULTS site and applies the only action the serve path
/// honours: `delay` stalls `param` ms on the queue's injected clock. Must
/// be called without the queue mutex held — a ManualClock delay wakes the
/// queue's own waiters.
void MaybeDelay(const char* site, common::Clock* clock) {
  const common::FaultAction action =
      common::FaultInjector::Global().OnSite(site);
  if (action.kind == common::FaultKind::kDelay) {
    clock->SleepFor(common::Clock::FromMillis(
        static_cast<double>(action.param)));
  }
}

}  // namespace

BatchQueue::BatchQueue(const Retriever* retriever, BatchQueueOptions options,
                       ServeStats* stats)
    : retriever_(retriever),
      options_(options),
      stats_(stats),
      clock_(options.clock ? options.clock : common::Clock::Real()),
      governor_(options.overload, options.max_pending, stats) {
  DESALIGN_CHECK(retriever_ != nullptr);
  DESALIGN_CHECK_GT(options_.max_batch, 0);
  DESALIGN_CHECK_GT(options_.k, 0);
  DESALIGN_CHECK_GE(options_.max_pending, 0);
  worker_ = std::thread([this] { WorkerLoop(); });
}

BatchQueue::~BatchQueue() { Shutdown(); }

std::future<TopKResult> BatchQueue::Submit(std::vector<float> query) {
  return Submit(std::move(query), options_.deadline_ms);
}

std::future<TopKResult> BatchQueue::Submit(std::vector<float> query,
                                           double timeout_ms) {
  return SubmitWithDeadline(
      std::move(query),
      timeout_ms > 0.0
          ? clock_->Now() + common::Clock::FromMillis(timeout_ms)
          : kNoDeadline);
}

std::future<TopKResult> BatchQueue::SubmitWithDeadline(
    std::vector<float> query, common::Clock::TimePoint deadline) {
  Pending req;
  req.query = std::move(query);
  req.enqueued = clock_->Now();
  req.deadline = deadline;
  std::future<TopKResult> future = req.promise.get_future();

  // Typed admission control: every early-out resolves the future with a
  // definite status instead of aborting or handing back an ambiguous
  // empty result.
  if (static_cast<int64_t>(req.query.size()) != retriever_->dim()) {
    Reject(std::move(req), ServeStatus::kInvalidQuery);
    return future;
  }
  if (req.deadline <= req.enqueued) {
    Reject(std::move(req), ServeStatus::kDeadlineExceeded);
    return future;
  }
  const common::FaultAction fault =
      common::FaultInjector::Global().OnSite("serve.submit.admit");
  if (fault.kind == common::FaultKind::kFail) {
    // Reject-storm chaos: admission turns requests away as if overloaded.
    Reject(std::move(req), ServeStatus::kRejectedQueueFull);
    return future;
  }
  // Shed fast path: while the queue is visibly past its bound (or past the
  // shed watermark while the governor is shedding), turn the request away
  // on relaxed atomics alone — an overload's reject storm must not contend
  // on the queue mutex with the worker that is trying to drain it. depth_
  // is approximate here; admissions that slip past re-check under the lock.
  if (options_.max_pending > 0) {
    const int64_t seen = depth_.load(std::memory_order_relaxed);
    const int64_t watermark = static_cast<int64_t>(
        options_.overload.shed_depth_fraction *
        static_cast<double>(options_.max_pending));
    if (seen >= options_.max_pending ||
        (governor_.shedding() && seen >= watermark)) {
      Reject(std::move(req), ServeStatus::kRejectedQueueFull);
      return future;
    }
  }
  {
    common::MutexLock lock(mutex_);
    if (stop_) {
      Reject(std::move(req), ServeStatus::kShutdown);
      return future;
    }
    const int64_t depth = static_cast<int64_t>(pending_.size());
    if (options_.max_pending > 0 && depth >= options_.max_pending) {
      Reject(std::move(req), ServeStatus::kRejectedQueueFull);
      return future;
    }
    if (governor_.shedding()) {
      // Shedding sheds the *surplus*, not the service: admission drops to
      // the shed watermark so the worker keeps draining full batches at
      // capacity while the excess is turned away cheaply. An unbounded
      // queue has no watermark, so shedding there rejects everything.
      const int64_t watermark = static_cast<int64_t>(
          options_.overload.shed_depth_fraction *
          static_cast<double>(options_.max_pending));
      if (options_.max_pending <= 0 || depth >= watermark) {
        Reject(std::move(req), ServeStatus::kRejectedQueueFull);
        return future;
      }
    }
    pending_.push_back(std::move(req));
    depth_.store(static_cast<int64_t>(pending_.size()),
                 std::memory_order_relaxed);
    if (stats_ != nullptr) {
      stats_->RecordAdmitted();
      stats_->RecordQueueDepth(static_cast<int64_t>(pending_.size()));
    }
  }
  wake_.NotifyAll();
  return future;
}

void BatchQueue::Reject(Pending req, ServeStatus status) {
  if (stats_ != nullptr) stats_->RecordRejected(status);
  TopKResult result;
  result.status = status;
  req.promise.set_value(std::move(result));
}

void BatchQueue::Shutdown() {
  std::thread to_join;
  {
    common::MutexLock lock(mutex_);
    stop_ = true;
    to_join = std::move(worker_);  // claimed by exactly one caller
  }
  wake_.NotifyAll();
  if (to_join.joinable()) to_join.join();
}

int64_t BatchQueue::batches_processed() const {
  common::MutexLock lock(mutex_);
  return batches_;
}

common::Clock::TimePoint BatchQueue::BatchWindowDeadline() const {
  common::Clock::TimePoint deadline =
      pending_.front().enqueued +
      common::Clock::FromMillis(options_.max_wait_ms);
  // A pending request's deadline caps the co-batch hold: better a partial
  // batch than a shed request.
  for (const Pending& req : pending_) {
    deadline = std::min(deadline, req.deadline);
  }
  return deadline;
}

void BatchQueue::WorkerLoop() {
  while (true) {
    std::vector<Pending> batch;
    std::vector<Pending> expired;
    int64_t depth = 0;
    {
      common::MutexLock lock(mutex_);
      while (!stop_ && pending_.empty()) {
        if (governor_.rung() == 0) {
          wake_.Wait(lock);
          continue;
        }
        // Degraded or shedding with nothing queued (shedding rejects all
        // admissions, so this is the steady state of a full shed): keep
        // sampling on a window timer, otherwise the ladder could never
        // walk back down and the queue would shed forever.
        const common::Clock::TimePoint sample_at =
            clock_->Now() + common::Clock::FromMillis(std::max(
                                options_.overload.sample_window_ms, 1.0));
        clock_->WaitUntil(wake_, mutex_, lock, sample_at);
        if (!stop_ && pending_.empty()) {
          governor_.OnSample(0, clock_->Now());
        }
      }
      if (pending_.empty()) {
        if (stop_) return;
        continue;
      }
      if (!stop_) {
        // Give co-batching a chance: hold until the batch fills, the
        // oldest pending query has waited max_wait_ms, or a pending
        // deadline is about to expire.
        while (!stop_ &&
               static_cast<int64_t>(pending_.size()) < options_.max_batch) {
          const common::Clock::TimePoint window = BatchWindowDeadline();
          if (clock_->Now() >= window) break;
          if (clock_->WaitUntil(wake_, mutex_, lock, window) ==
              std::cv_status::timeout) {
            break;
          }
        }
      }
      // Shed pre-scan: expired requests leave the queue without ever
      // occupying a slot in the batch.
      const common::Clock::TimePoint now = clock_->Now();
      auto alive = std::stable_partition(
          pending_.begin(), pending_.end(),
          [now](const Pending& req) { return req.deadline > now; });
      expired.assign(std::make_move_iterator(alive),
                     std::make_move_iterator(pending_.end()));
      pending_.erase(alive, pending_.end());
      depth = static_cast<int64_t>(pending_.size());
      const size_t take = std::min(pending_.size(),
                                   static_cast<size_t>(options_.max_batch));
      batch.assign(std::make_move_iterator(pending_.begin()),
                   std::make_move_iterator(pending_.begin() + take));
      pending_.erase(pending_.begin(), pending_.begin() + take);
      depth_.store(static_cast<int64_t>(pending_.size()),
                   std::memory_order_relaxed);
      if (stats_ != nullptr) {
        stats_->RecordQueueDepth(static_cast<int64_t>(pending_.size()));
      }
    }
    for (Pending& req : expired) {
      if (stats_ != nullptr) {
        stats_->RecordQueueWait(clock_->MillisSince(req.enqueued));
      }
      governor_.RecordOutcome(/*deadline_miss=*/true);
      Reject(std::move(req), ServeStatus::kDeadlineExceeded);
    }
    // The governor samples the backlog depth at every batch formation —
    // on the injected clock, outside the queue lock (it may log).
    const DegradationLevel level = governor_.OnSample(depth, clock_->Now());
    if (stats_ != nullptr) {
      for (const Pending& req : batch) {
        stats_->RecordQueueWait(clock_->MillisSince(req.enqueued));
      }
    }
    if (!batch.empty()) {
      ProcessBatch(std::move(batch), level);
      common::MutexLock lock(mutex_);
      ++batches_;
    }
  }
}

void BatchQueue::ProcessBatch(std::vector<Pending> batch,
                              DegradationLevel level) {
  // Chaos site: the worker itself stalls (e.g. scheduling hiccup) before
  // it looks at deadlines, so the pre-scoring check below sheds what the
  // stall expired.
  MaybeDelay("serve.batch.worker", clock_);

  // Pre-scoring deadline check: a request that expired between batch
  // formation and here is shed instead of scored.
  std::vector<Pending> live;
  live.reserve(batch.size());
  {
    const common::Clock::TimePoint now = clock_->Now();
    for (Pending& req : batch) {
      if (req.deadline <= now) {
        governor_.RecordOutcome(/*deadline_miss=*/true);
        Reject(std::move(req), ServeStatus::kDeadlineExceeded);
      } else {
        live.push_back(std::move(req));
      }
    }
  }
  if (live.empty()) return;

  const int64_t d = retriever_->dim();
  const int64_t b = static_cast<int64_t>(live.size());
  std::vector<float> queries(static_cast<size_t>(b * d));
  for (int64_t i = 0; i < b; ++i) {
    std::copy(live[static_cast<size_t>(i)].query.begin(),
              live[static_cast<size_t>(i)].query.end(),
              queries.begin() + i * d);
  }

  // Chaos site: retrieval runs slow. Placed before the Retrieve call so an
  // injected delay models the scan itself taking long — completed-late
  // outcomes below then drive the governor's miss-rate signal.
  MaybeDelay("serve.batch.retrieve", clock_);

  std::vector<TopKResult> results =
      level == DegradationLevel::kNone
          ? retriever_->Retrieve(queries.data(), b, options_.k)
          : retriever_->RetrieveDegraded(queries.data(), b, options_.k, level);

  const common::Clock::TimePoint done = clock_->Now();
  // Record before resolving any promise, so a caller woken by its future
  // sees stats that already include its own batch.
  if (stats_ != nullptr) {
    stats_->RecordBatch(b);
    stats_->RecordDegraded(level == DegradationLevel::kNone ? 0 : b);
    for (const Pending& req : live) {
      stats_->RecordQuery(clock_->MillisSince(req.enqueued));
    }
  }
  for (int64_t i = 0; i < b; ++i) {
    Pending& req = live[static_cast<size_t>(i)];
    TopKResult& result = results[static_cast<size_t>(i)];
    result.degradation = level;
    // Completed late is still delivered (the work is done), but it counts
    // as a deadline miss for the governor's pressure signal.
    governor_.RecordOutcome(/*deadline_miss=*/req.deadline <= done);
    req.promise.set_value(std::move(result));
  }
}

}  // namespace desalign::serve
