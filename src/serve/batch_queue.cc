#include "serve/batch_queue.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace desalign::serve {

namespace {

using Clock = std::chrono::steady_clock;

double MillisSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

}  // namespace

BatchQueue::BatchQueue(const Retriever* retriever,
                       BatchQueueOptions options, ServeStats* stats)
    : retriever_(retriever), options_(options), stats_(stats) {
  DESALIGN_CHECK(retriever_ != nullptr);
  DESALIGN_CHECK_GT(options_.max_batch, 0);
  DESALIGN_CHECK_GT(options_.k, 0);
  worker_ = std::thread([this] { WorkerLoop(); });
}

BatchQueue::~BatchQueue() { Shutdown(); }

std::future<TopKResult> BatchQueue::Submit(std::vector<float> query) {
  DESALIGN_CHECK_EQ(static_cast<int64_t>(query.size()),
                    retriever_->dim());
  Pending req;
  req.query = std::move(query);
  req.enqueued = Clock::now();
  std::future<TopKResult> future = req.promise.get_future();
  {
    common::MutexLock lock(mutex_);
    if (stop_) {
      req.promise.set_value(TopKResult{});
      return future;
    }
    pending_.push_back(std::move(req));
  }
  wake_.NotifyAll();
  return future;
}

void BatchQueue::Shutdown() {
  std::thread to_join;
  {
    common::MutexLock lock(mutex_);
    stop_ = true;
    to_join = std::move(worker_);  // claimed by exactly one caller
  }
  wake_.NotifyAll();
  if (to_join.joinable()) to_join.join();
}

int64_t BatchQueue::batches_processed() const {
  common::MutexLock lock(mutex_);
  return batches_;
}

void BatchQueue::WorkerLoop() {
  while (true) {
    std::vector<Pending> batch;
    {
      common::MutexLock lock(mutex_);
      while (!stop_ && pending_.empty()) wake_.Wait(lock);
      if (pending_.empty()) {
        if (stop_) return;
        continue;
      }
      if (!stop_) {
        // Give co-batching a chance: hold until the batch fills or the
        // oldest pending query has waited max_wait_ms.
        const auto deadline =
            pending_.front().enqueued +
            std::chrono::duration_cast<Clock::duration>(
                std::chrono::duration<double, std::milli>(
                    options_.max_wait_ms));
        while (!stop_ &&
               static_cast<int64_t>(pending_.size()) < options_.max_batch) {
          if (wake_.WaitUntil(lock, deadline) == std::cv_status::timeout) {
            break;
          }
        }
      }
      const size_t take = std::min(pending_.size(),
                                   static_cast<size_t>(options_.max_batch));
      batch.assign(std::make_move_iterator(pending_.begin()),
                   std::make_move_iterator(pending_.begin() + take));
      pending_.erase(pending_.begin(), pending_.begin() + take);
    }
    ProcessBatch(std::move(batch));
    common::MutexLock lock(mutex_);
    ++batches_;
  }
}

void BatchQueue::ProcessBatch(std::vector<Pending> batch) {
  const int64_t d = retriever_->dim();
  const int64_t b = static_cast<int64_t>(batch.size());
  std::vector<float> queries(static_cast<size_t>(b * d));
  for (int64_t i = 0; i < b; ++i) {
    std::copy(batch[static_cast<size_t>(i)].query.begin(),
              batch[static_cast<size_t>(i)].query.end(),
              queries.begin() + i * d);
  }
  std::vector<TopKResult> results =
      retriever_->Retrieve(queries.data(), b, options_.k);
  for (int64_t i = 0; i < b; ++i) {
    Pending& req = batch[static_cast<size_t>(i)];
    if (stats_ != nullptr) stats_->RecordQuery(MillisSince(req.enqueued));
    req.promise.set_value(std::move(results[static_cast<size_t>(i)]));
  }
  if (stats_ != nullptr) stats_->RecordBatch(b);
}

}  // namespace desalign::serve
