#ifndef DESALIGN_SERVE_RETRIEVER_H_
#define DESALIGN_SERVE_RETRIEVER_H_

#include <cstdint>
#include <vector>

namespace desalign::serve {

/// Top-k candidates for one query, best first. Ordering is the total order
/// (score descending, entity id ascending), so results are deterministic
/// even under score ties.
struct TopKResult {
  std::vector<int64_t> ids;
  std::vector<float> scores;
};

/// Abstract batched top-k retrieval over an entity embedding table. The
/// serving front door (BatchQueue, serve-bench) programs against this, so
/// exact brute force (TopKRetriever) and the two-stage ANN index
/// (index::IvfRetriever) are interchangeable by configuration.
///
/// Contract every implementation must honour (and tests enforce):
///  - `queries` is num_queries x dim() row-major; queries are L2-normalized
///    internally, scores are cosine similarities;
///  - the result vector always has exactly num_queries entries, in query
///    order (num_queries <= 0 yields an empty vector);
///  - k is clamped to size(); k <= 0 yields empty per-query results;
///  - ranking follows scoring::Better — score descending, exact float ties
///    broken toward the smaller entity id — so any two implementations
///    scoring the same candidate set return byte-identical results.
class Retriever {
 public:
  virtual ~Retriever() = default;

  virtual std::vector<TopKResult> Retrieve(const float* queries,
                                           int64_t num_queries,
                                           int64_t k) const = 0;

  /// Embedding dimension queries must match.
  virtual int64_t dim() const = 0;

  /// Entities currently retrievable.
  virtual int64_t size() const = 0;
};

}  // namespace desalign::serve

#endif  // DESALIGN_SERVE_RETRIEVER_H_
