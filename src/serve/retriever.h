#ifndef DESALIGN_SERVE_RETRIEVER_H_
#define DESALIGN_SERVE_RETRIEVER_H_

#include <cstdint>
#include <vector>

namespace desalign::serve {

/// Definite outcome of one serving request. Every future a BatchQueue
/// issues resolves with exactly one of these, so callers can tell a
/// legitimate empty result (kOk, empty store or k clamp) from an admission
/// rejection — the serving front door never aborts and never leaves an
/// outcome ambiguous. See docs/ROBUSTNESS.md "Overload protection".
enum class ServeStatus : uint8_t {
  kOk = 0,                 ///< scored; ids/scores are the real top-k
  kRejectedQueueFull = 1,  ///< shed at admission: queue at max_pending, or
                           ///< at the shed watermark while the governor is
                           ///< in kShedding
  kDeadlineExceeded = 2,   ///< request deadline expired before scoring
  kInvalidQuery = 3,       ///< malformed query (wrong dimension)
  kShutdown = 4,           ///< submitted after Shutdown
};

const char* ServeStatusName(ServeStatus status);

/// Rung of the graceful-degradation ladder a result was served at. Under
/// sustained overload the health governor steps the queue down this ladder
/// (cheaper answers instead of no answers) and back up once pressure
/// subsides; each result carries the rung so callers know they got a
/// degraded answer. kNone results are bit-identical to an unloaded queue.
enum class DegradationLevel : uint8_t {
  kNone = 0,          ///< full quality
  kReducedProbe = 1,  ///< IVF probes fewer cells (recall dips, scan shrinks)
  kNoRefine = 2,      ///< int8 fp32-refinement re-rank skipped: scores come
                      ///< from dequantized codes only
};

const char* DegradationLevelName(DegradationLevel level);

/// Top-k candidates for one query, best first. Ordering is the total order
/// (score descending, entity id ascending), so results are deterministic
/// even under score ties. `status` says whether ids/scores are meaningful
/// (kOk) or why they are empty; `degradation` flags answers served below
/// full quality by an overloaded queue.
struct TopKResult {
  std::vector<int64_t> ids;
  std::vector<float> scores;
  ServeStatus status = ServeStatus::kOk;
  DegradationLevel degradation = DegradationLevel::kNone;
};

/// Abstract batched top-k retrieval over an entity embedding table. The
/// serving front door (BatchQueue, serve-bench) programs against this, so
/// exact brute force (TopKRetriever) and the two-stage ANN index
/// (index::IvfRetriever) are interchangeable by configuration.
///
/// Contract every implementation must honour (and tests enforce):
///  - `queries` is num_queries x dim() row-major; queries are L2-normalized
///    internally, scores are cosine similarities;
///  - the result vector always has exactly num_queries entries, in query
///    order (num_queries <= 0 yields an empty vector);
///  - k is clamped to size(); k <= 0 yields empty per-query results;
///  - ranking follows scoring::Better — score descending, exact float ties
///    broken toward the smaller entity id — so any two implementations
///    scoring the same candidate set return byte-identical results.
class Retriever {
 public:
  virtual ~Retriever() = default;

  virtual std::vector<TopKResult> Retrieve(const float* queries,
                                           int64_t num_queries,
                                           int64_t k) const = 0;

  /// Retrieval at a degradation rung, for the overload ladder. The base
  /// contract (result count, ordering, k clamping) is unchanged; a rung
  /// only shrinks the work per query. Implementations that have nothing to
  /// shed at a rung serve full quality (this default). Results do NOT
  /// carry the rung — the BatchQueue stamps `degradation` on what it hands
  /// out, since only it knows why the rung was requested.
  virtual std::vector<TopKResult> RetrieveDegraded(
      const float* queries, int64_t num_queries, int64_t k,
      DegradationLevel /*level*/) const {
    return Retrieve(queries, num_queries, k);
  }

  /// Embedding dimension queries must match.
  virtual int64_t dim() const = 0;

  /// Entities currently retrievable.
  virtual int64_t size() const = 0;
};

}  // namespace desalign::serve

#endif  // DESALIGN_SERVE_RETRIEVER_H_
