#ifndef DESALIGN_SERVE_TOPK_H_
#define DESALIGN_SERVE_TOPK_H_

#include <cstdint>
#include <vector>

#include "common/thread_pool.h"
#include "serve/embedding_store.h"
#include "serve/retriever.h"
#include "tensor/tensor.h"

namespace desalign::serve {

struct TopKOptions {
  /// Target rows scanned per block; a block's rows stay hot in cache while
  /// every query in the worker's chunk consumes them.
  int64_t block_rows = 256;
  /// Pool used to parallelize across queries; null means
  /// `common::ThreadPool::Global()` (sized by the --threads flag /
  /// DESALIGN_NUM_THREADS).
  common::ThreadPool* pool = nullptr;
};

/// Batched exact cosine top-k over an EmbeddingStore — the brute-force
/// Retriever. Queries are L2-normalized internally, so scores are true
/// cosine similarities. Two paths share one dot-product kernel and one
/// ordering contract (serve/scoring.h) and therefore return bit-identical
/// results:
///
///  - Retrieve: blocked scan with a per-query bounded heap, parallelized
///    across the query batch via ThreadPool::ParallelFor;
///  - RetrieveBruteForce: single-threaded full score vector + sort, the
///    exact reference used by the tests and the bench baseline.
///
/// Each call scans one EmbeddingSnapshot, so retrieval racing a concurrent
/// EmbeddingStore::Reload sees either the fully-old or the fully-new
/// table, never a mix.
///
/// Edge-case contract (regression-tested in tests/serve/topk_test.cc):
/// k <= 0 yields empty per-query results; k > size() is clamped to
/// size(); duplicate scores rank the smaller entity id first.
class TopKRetriever : public Retriever {
 public:
  /// `store` must outlive the retriever.
  explicit TopKRetriever(const EmbeddingStore* store,
                         TopKOptions options = {});

  /// `queries` is num_queries x dim() row-major.
  std::vector<TopKResult> Retrieve(const float* queries, int64_t num_queries,
                                   int64_t k) const override;
  std::vector<TopKResult> Retrieve(const tensor::Tensor& queries,
                                   int64_t k) const;

  std::vector<TopKResult> RetrieveBruteForce(const float* queries,
                                             int64_t num_queries,
                                             int64_t k) const;

  int64_t dim() const override { return store_->dim(); }
  int64_t size() const override { return store_->size(); }

  const EmbeddingStore& store() const { return *store_; }

 private:
  const EmbeddingStore* store_;
  TopKOptions options_;
};

}  // namespace desalign::serve

#endif  // DESALIGN_SERVE_TOPK_H_
