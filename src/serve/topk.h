#ifndef DESALIGN_SERVE_TOPK_H_
#define DESALIGN_SERVE_TOPK_H_

#include <cstdint>
#include <vector>

#include "common/thread_pool.h"
#include "serve/embedding_store.h"
#include "tensor/tensor.h"

namespace desalign::serve {

/// Top-k candidates for one query, best first. Ordering is the total order
/// (score descending, entity id ascending), so results are deterministic
/// even under score ties.
struct TopKResult {
  std::vector<int64_t> ids;
  std::vector<float> scores;
};

struct TopKOptions {
  /// Target rows scanned per block; a block's rows stay hot in cache while
  /// every query in the worker's chunk consumes them.
  int64_t block_rows = 256;
  /// Pool used to parallelize across queries; null means
  /// `common::ThreadPool::Global()` (sized by the --threads flag /
  /// DESALIGN_NUM_THREADS).
  common::ThreadPool* pool = nullptr;
};

/// Batched cosine top-k over an EmbeddingStore. Queries are L2-normalized
/// internally, so scores are true cosine similarities. Two paths share one
/// dot-product kernel and one ordering contract and therefore return
/// bit-identical results:
///
///  - Retrieve: blocked scan with a per-query bounded heap, parallelized
///    across the query batch via ThreadPool::ParallelFor;
///  - RetrieveBruteForce: single-threaded full score vector + sort, the
///    exact reference used by the tests and the bench baseline.
class TopKRetriever {
 public:
  /// `store` must outlive the retriever.
  explicit TopKRetriever(const EmbeddingStore* store,
                         TopKOptions options = {});

  /// `queries` is num_queries x store->dim() row-major. k is clamped to
  /// the store size; k <= 0 yields empty results.
  std::vector<TopKResult> Retrieve(const float* queries, int64_t num_queries,
                                   int64_t k) const;
  std::vector<TopKResult> Retrieve(const tensor::Tensor& queries,
                                   int64_t k) const;

  std::vector<TopKResult> RetrieveBruteForce(const float* queries,
                                             int64_t num_queries,
                                             int64_t k) const;

  const EmbeddingStore& store() const { return *store_; }

 private:
  const EmbeddingStore* store_;
  TopKOptions options_;
};

}  // namespace desalign::serve

#endif  // DESALIGN_SERVE_TOPK_H_
