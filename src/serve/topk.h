#ifndef DESALIGN_SERVE_TOPK_H_
#define DESALIGN_SERVE_TOPK_H_

#include <cstdint>
#include <vector>

#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "serve/embedding_store.h"
#include "serve/retriever.h"
#include "tensor/tensor.h"

namespace desalign::serve {

class RowSource;

struct TopKOptions {
  /// Target rows scanned per block; a block's rows stay hot in cache while
  /// every query in the worker's chunk consumes them.
  int64_t block_rows = 256;
  /// Pool used to parallelize across queries; null means
  /// `common::ThreadPool::Global()` (sized by the --threads flag /
  /// DESALIGN_NUM_THREADS).
  common::ThreadPool* pool = nullptr;
  /// int8 tables only: how many stage-1 (approximate int8) candidates C
  /// survive into the exact fp32 re-rank that produces the final top-k.
  ///   0  (default) auto: C = min(n, max(4k, 64));
  ///   >0 explicit C, clamped to [k, n];
  ///   <0 exact mode: C = n — every row is re-ranked in fp32, making the
  ///      result identical to RetrieveBruteForce over the same table (the
  ///      CI bit-exactness gate). fp32/bf16 tables score exactly in one
  ///      pass and ignore this field.
  int64_t rerank_candidates = 0;
  /// int8 tables only: optional full-precision refinement. When set, the
  /// stage-2 re-rank scores candidates with fp32 rows fetched from this
  /// source (e.g. a serve::CheckpointRowSource over the checkpoint the
  /// table was quantized from) instead of dequantized int8 rows, so exact
  /// mode (rerank_candidates < 0) reproduces fp32 brute force bit for bit
  /// while only the int8 table stays memory-resident. The source must
  /// outlive the retriever and match the table's shape; a mismatched
  /// source or a failed row fetch falls back to the dequantized row
  /// (counted on `quant.rerank_source_errors`). fp32/bf16 tables ignore
  /// this field.
  const RowSource* rerank_source = nullptr;
  /// Registry for the `quant.*` counters recorded when scanning quantized
  /// tables; null = MetricsRegistry::Global().
  obs::MetricsRegistry* registry = nullptr;
};

/// Resolves the rerank_candidates policy above to a concrete C for one
/// (k, n) query; shared by TopKRetriever and the IVF second stage.
int64_t ResolveRerankCandidates(int64_t requested, int64_t k, int64_t n);

/// Batched exact cosine top-k over an EmbeddingStore — the brute-force
/// Retriever. Queries are L2-normalized internally, so scores are true
/// cosine similarities. Two paths share one dot-product kernel and one
/// ordering contract (serve/scoring.h) and therefore return bit-identical
/// results:
///
///  - Retrieve: blocked scan with a per-query bounded heap, parallelized
///    across the query batch via ThreadPool::ParallelFor;
///  - RetrieveBruteForce: single-threaded full score vector + sort, the
///    exact reference used by the tests and the bench baseline.
///
/// Each call scans one EmbeddingSnapshot, so retrieval racing a concurrent
/// EmbeddingStore::Reload sees either the fully-old or the fully-new
/// table, never a mix.
///
/// Quantized tables: bf16 rows are decoded (exactly) block-by-block and
/// scored with the same fp32 Dot, one pass. int8 rows go through two
/// stages — an integer candidate scan (scoring::Int8Score, scalar or AVX2,
/// bit-identical either way) keeps the best `rerank_candidates` per query,
/// then those rows are re-scored with the shared fp32 Dot/Better contract
/// — from dequantized codes, or from original fp32 rows when a
/// `rerank_source` is attached. Both stages use strict total orders, so
/// results stay bit-identical across thread counts, block sizes and ISA —
/// see docs/SERVING.md "Quantized serving".
///
/// Edge-case contract (regression-tested in tests/serve/topk_test.cc):
/// k <= 0 yields empty per-query results; k > size() is clamped to
/// size(); duplicate scores rank the smaller entity id first.
class TopKRetriever : public Retriever {
 public:
  /// `store` must outlive the retriever.
  explicit TopKRetriever(const EmbeddingStore* store,
                         TopKOptions options = {});

  /// `queries` is num_queries x dim() row-major.
  std::vector<TopKResult> Retrieve(const float* queries, int64_t num_queries,
                                   int64_t k) const override;
  std::vector<TopKResult> Retrieve(const tensor::Tensor& queries,
                                   int64_t k) const;

  /// Overload ladder: at kNoRefine the int8 stage-2 re-rank skips the
  /// fp32 `rerank_source` refinement and scores survivors from dequantized
  /// codes only — no checkpoint row fetches on an overloaded box. Other
  /// rungs (and fp32/bf16 tables, which have no refinement to shed) serve
  /// full quality; once the governor steps back to kNone, results are
  /// bit-identical to an unloaded queue because stage 1 candidates never
  /// depended on the refinement source.
  std::vector<TopKResult> RetrieveDegraded(
      const float* queries, int64_t num_queries, int64_t k,
      DegradationLevel level) const override;

  std::vector<TopKResult> RetrieveBruteForce(const float* queries,
                                             int64_t num_queries,
                                             int64_t k) const;

  int64_t dim() const override { return store_->dim(); }
  int64_t size() const override { return store_->size(); }

  const EmbeddingStore& store() const { return *store_; }

 private:
  /// Shared scan; `source` is the refinement row source to use for the
  /// int8 stage-2 (null = dequantized codes only).
  std::vector<TopKResult> RetrieveImpl(const float* queries,
                                       int64_t num_queries, int64_t k,
                                       const RowSource* source) const;

  const EmbeddingStore* store_;
  TopKOptions options_;
  obs::Counter* int8_queries_;    // owned by the registry
  obs::Counter* bf16_queries_;    // owned by the registry
  obs::Counter* source_errors_;   // owned by the registry
  obs::Histogram* rerank_width_;  // owned by the registry
};

}  // namespace desalign::serve

#endif  // DESALIGN_SERVE_TOPK_H_
