#include "serve/overload_bench.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "serve/batch_queue.h"
#include "serve/embedding_store.h"
#include "serve/topk.h"

namespace desalign::serve {

namespace {

using SteadyClock = std::chrono::steady_clock;

std::string JsonNum(double v) {
  std::ostringstream os;
  os.precision(6);
  os << v;
  return os.str();
}

/// Clustered synthetic rows (mixture around unit centers), matching the
/// other benches: uniform noise would have no neighbourhood structure and
/// make latency the only meaningful number.
std::vector<float> MixtureRows(common::Rng& rng,
                               const std::vector<float>& centers,
                               int64_t clusters, int64_t n, int64_t dim,
                               double noise) {
  std::vector<float> rows(static_cast<size_t>(n * dim));
  const auto amp = static_cast<float>(noise);
  for (int64_t i = 0; i < n; ++i) {
    const float* center = centers.data() + rng.UniformInt(clusters) * dim;
    float* row = rows.data() + i * dim;
    for (int64_t j = 0; j < dim; ++j) {
      row[j] = center[j] + amp * rng.UniformF(-1.0f, 1.0f);
    }
  }
  return rows;
}

std::vector<float> QueryAt(const std::vector<float>& pool, int64_t dim,
                           int64_t i, int64_t pool_size) {
  const float* row = pool.data() + (i % pool_size) * dim;
  return std::vector<float>(row, row + dim);
}

/// Closed-loop burst capacity probe: each submitter keeps a full batch
/// in flight (submit max_batch, wait for all, repeat), so the worker
/// always drains full batches and the measured rate converges to the
/// retriever's true batched scan throughput — what "capacity" must mean
/// for an open-loop sweep to actually exceed it.
double MeasureCapacity(const Retriever& retriever,
                       const BatchQueueOptions& queue_options,
                       const std::vector<float>& pool, int64_t dim,
                       int64_t pool_size, int threads, double seconds) {
  BatchQueueOptions opts = queue_options;
  opts.deadline_ms = 0.0;  // raw capacity: nothing shed
  opts.max_pending = 0;
  opts.overload.enabled = false;
  BatchQueue queue(&retriever, opts);
  std::atomic<int64_t> completed{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  const int64_t burst = std::max<int64_t>(opts.max_batch, 1);
  const SteadyClock::time_point start = SteadyClock::now();
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      int64_t i = t;
      std::vector<std::future<TopKResult>> inflight;
      inflight.reserve(static_cast<size_t>(burst));
      while (!stop.load(std::memory_order_relaxed)) {
        inflight.clear();
        for (int64_t j = 0; j < burst; ++j) {
          inflight.push_back(
              queue.Submit(QueryAt(pool, dim, i + j * threads, pool_size)));
        }
        for (auto& f : inflight) f.get();
        completed.fetch_add(burst, std::memory_order_relaxed);
        i += burst * threads;
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  stop.store(true, std::memory_order_relaxed);
  for (auto& w : workers) w.join();
  const double elapsed =
      std::chrono::duration<double>(SteadyClock::now() - start).count();
  return elapsed > 0.0 ? static_cast<double>(completed.load()) / elapsed : 0.0;
}

/// Open-loop generation: each thread submits on a fixed arrival schedule,
/// catching up with a burst when it falls behind, and never waits for
/// results — offered load is independent of how the queue is coping.
/// Returns the number submitted. Futures are dropped on the floor; every
/// promise is still fulfilled by the queue (drain on shutdown), which is
/// exactly the "client went away" shape of real overload.
int64_t OfferLoad(BatchQueue& queue, const std::vector<float>& pool,
                  int64_t dim, int64_t pool_size, double total_qps,
                  double seconds, int threads, std::atomic<int>* max_rung) {
  std::atomic<int64_t> submitted{0};
  std::atomic<int> active{threads};
  std::vector<std::thread> workers;
  const double per_thread_qps = total_qps / threads;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      const SteadyClock::time_point start = SteadyClock::now();
      const auto interval =
          std::chrono::duration_cast<SteadyClock::duration>(
              std::chrono::duration<double>(1.0 / per_thread_qps));
      const auto total = std::chrono::duration_cast<SteadyClock::duration>(
          std::chrono::duration<double>(seconds));
      int64_t i = 0;
      while (true) {
        const SteadyClock::time_point arrival = start + i * interval;
        if (arrival - start >= total) break;
        if (arrival > SteadyClock::now()) std::this_thread::sleep_until(arrival);
        // Open-loop generator: outcomes are read from the stats registry,
        // not per-query futures, so the future is discarded deliberately.
        (void)queue.Submit(QueryAt(pool, dim, i * threads + t, pool_size));
        submitted.fetch_add(1, std::memory_order_relaxed);
        ++i;
      }
      active.fetch_sub(1, std::memory_order_relaxed);
    });
  }
  // The main thread doubles as the rung sampler while generators run.
  while (active.load(std::memory_order_relaxed) > 0) {
    if (max_rung != nullptr) {
      const int rung = queue.health_rung();
      int seen = max_rung->load(std::memory_order_relaxed);
      while (rung > seen &&
             !max_rung->compare_exchange_weak(seen, rung,
                                              std::memory_order_relaxed)) {
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  for (auto& w : workers) w.join();
  return submitted.load();
}

bool BitExactResult(const TopKResult& a, const TopKResult& b) {
  return a.ids == b.ids && a.scores == b.scores;
}

}  // namespace

std::string OverloadBenchReport::ToJson() const {
  std::ostringstream os;
  os << "{\"schema\":\"desalign.overload_bench.v1\",\"entities\":" << entities
     << ",\"dim\":" << dim << ",\"k\":" << k
     << ",\"deadline_ms\":" << JsonNum(deadline_ms)
     << ",\"max_pending\":" << max_pending
     << ",\"capacity_qps\":" << JsonNum(capacity_qps) << ",\"cases\":[";
  for (size_t i = 0; i < cases.size(); ++i) {
    const auto& c = cases[i];
    if (i) os << ",";
    os << "{\"multiplier\":" << JsonNum(c.multiplier)
       << ",\"offered_qps\":" << JsonNum(c.offered_qps)
       << ",\"submitted\":" << c.submitted << ",\"admitted\":" << c.admitted
       << ",\"ok\":" << c.ok << ",\"shed_queue_full\":" << c.shed_queue_full
       << ",\"shed_deadline\":" << c.shed_deadline
       << ",\"degraded\":" << c.degraded
       << ",\"goodput_qps\":" << JsonNum(c.goodput_qps)
       << ",\"p50_ms\":" << JsonNum(c.p50_ms)
       << ",\"p99_ms\":" << JsonNum(c.p99_ms) << ",\"max_rung\":" << c.max_rung
       << ",\"end_rung\":" << c.end_rung << "}";
  }
  os << "],\"recovery\":{\"from_rung\":" << recovery.from_rung
     << ",\"reached_healthy\":" << (recovery.reached_healthy ? "true" : "false")
     << ",\"recover_ms\":" << JsonNum(recovery.recover_ms)
     << ",\"bitexact\":" << (recovery.bitexact ? "true" : "false") << "}}";
  return os.str();
}

OverloadBenchReport RunOverloadBench(const OverloadBenchOptions& options) {
  OverloadBenchOptions opt = options;
  if (opt.smoke) {
    opt.entities = std::min<int64_t>(opt.entities, 8000);
    opt.duration_s = std::min(opt.duration_s, 0.5);
    opt.load_multipliers = {0.5, 1.0, 2.0};
  }
  opt.entities = std::max<int64_t>(opt.entities, 64);
  opt.dim = std::max<int64_t>(opt.dim, 4);
  int threads = opt.submit_threads;
  if (threads <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = static_cast<int>(std::min(4u, std::max(1u, hw)));
  }

  common::Rng rng(opt.seed);
  const int64_t clusters = std::min<int64_t>(256, opt.entities);
  std::vector<float> centers(static_cast<size_t>(clusters * opt.dim));
  for (auto& v : centers) v = rng.UniformF(-1.0f, 1.0f);
  L2NormalizeRows(centers.data(), clusters, opt.dim);
  EmbeddingStore store = EmbeddingStore::FromRows(
      opt.entities, opt.dim,
      MixtureRows(rng, centers, clusters, opt.entities, opt.dim, 0.25));
  const int64_t pool_size = 1024;
  const std::vector<float> queries =
      MixtureRows(rng, centers, clusters, pool_size, opt.dim, 0.25);

  // One scan thread: the point is an easily-saturated retriever, so the
  // client fleet can actually push the queue past capacity.
  common::ThreadPool scan_pool(1);
  TopKOptions topk;
  topk.pool = &scan_pool;
  obs::MetricsRegistry quant_registry;
  topk.registry = &quant_registry;
  TopKRetriever retriever(&store, topk);

  OverloadBenchReport report;
  report.entities = opt.entities;
  report.dim = opt.dim;
  report.k = opt.k;
  report.deadline_ms = opt.deadline_ms;
  report.max_pending = opt.max_pending;

  BatchQueueOptions base;
  base.max_batch = opt.max_batch;
  base.max_wait_ms = opt.max_wait_ms;
  base.k = opt.k;
  base.max_pending = opt.max_pending;
  base.deadline_ms = opt.deadline_ms;
  base.overload.enabled = true;
  base.overload.sample_window_ms = 20.0;
  base.overload.recover_hold_ms = 100.0;

  report.capacity_qps =
      MeasureCapacity(retriever, base, queries, opt.dim, pool_size, threads,
                      opt.smoke ? 0.25 : 0.5);
  DESALIGN_CHECK_GT(report.capacity_qps, 0.0);

  // Size the admission bound to the deadline: backlog deeper than one
  // deadline's worth of drain only admits requests that are already
  // doomed (admitted, then shed in queue), which depresses goodput
  // without serving anyone. Cap max_pending at the depth the measured
  // capacity drains within deadline_ms, but never below one batch.
  if (opt.deadline_ms > 0.0) {
    const int64_t drainable = static_cast<int64_t>(
        report.capacity_qps * opt.deadline_ms / 1000.0);
    base.max_pending = std::max<int64_t>(
        opt.max_batch, std::min<int64_t>(base.max_pending, drainable));
    report.max_pending = base.max_pending;
  }

  for (const double multiplier : opt.load_multipliers) {
    obs::MetricsRegistry registry;
    ServeStats stats(&registry);
    BatchQueue queue(&retriever, base, &stats);
    std::atomic<int> max_rung{0};
    const double offered = multiplier * report.capacity_qps;
    OverloadBenchCase c;
    c.multiplier = multiplier;
    c.offered_qps = offered;
    c.submitted = OfferLoad(queue, queries, opt.dim, pool_size, offered,
                            opt.duration_s, threads, &max_rung);
    c.end_rung = queue.health_rung();
    queue.Shutdown();  // drain; every future resolves before we read stats
    const ServeStatsSnapshot snap = stats.Snapshot();
    c.admitted = snap.admitted;
    c.ok = snap.queries;
    c.shed_queue_full = snap.shed_queue_full;
    c.shed_deadline = snap.shed_deadline;
    c.degraded = snap.degraded;
    c.goodput_qps = opt.duration_s > 0.0
                        ? static_cast<double>(c.ok) / opt.duration_s
                        : 0.0;
    c.p50_ms = snap.p50_latency_ms;
    c.p99_ms = snap.p99_latency_ms;
    c.max_rung = std::max<int64_t>(max_rung.load(), c.end_rung);
    report.cases.push_back(c);
  }

  // Recovery: storm the queue up the ladder, then trickle light load (the
  // governor only samples at batch formation) until it reports healthy,
  // and prove the first full-quality answer is bit-identical to the
  // unloaded brute-force baseline.
  {
    obs::MetricsRegistry registry;
    ServeStats stats(&registry);
    BatchQueue queue(&retriever, base, &stats);
    OfferLoad(queue, queries, opt.dim, pool_size, 4.0 * report.capacity_qps,
              opt.smoke ? 0.3 : 0.8, threads, nullptr);
    report.recovery.from_rung = queue.health_rung();
    const SteadyClock::time_point start = SteadyClock::now();
    const auto timeout = std::chrono::duration<double>(5.0);
    while (queue.health_rung() > 0 &&
           SteadyClock::now() - start < timeout) {
      queue.Submit(QueryAt(queries, opt.dim, 0, pool_size)).get();
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    report.recovery.reached_healthy = queue.health_rung() == 0;
    report.recovery.recover_ms =
        std::chrono::duration<double, std::milli>(SteadyClock::now() - start)
            .count();
    const std::vector<float> probe = QueryAt(queries, opt.dim, 7, pool_size);
    const TopKResult via_queue =
        queue.Submit(probe).get();
    const std::vector<TopKResult> direct =
        retriever.Retrieve(probe.data(), 1, opt.k);
    report.recovery.bitexact = via_queue.status == ServeStatus::kOk &&
                               via_queue.degradation ==
                                   DegradationLevel::kNone &&
                               BitExactResult(via_queue, direct[0]);
  }
  return report;
}

}  // namespace desalign::serve
