#ifndef DESALIGN_SERVE_SCORING_H_
#define DESALIGN_SERVE_SCORING_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "serve/retriever.h"

namespace desalign::serve::scoring {

/// One scored entity. The pair (score, id) carries the full ranking state:
/// ids are unique, so Better() below is a strict total order and any top-k
/// selection over a fixed candidate set has exactly one answer — the
/// property that makes IVF-at-full-probe bit-identical to brute force
/// regardless of scan order, shard count or thread count.
struct Candidate {
  float score;
  int64_t id;
};

/// The single ordering contract shared by every retrieval path (blocked
/// brute force, partial-sort reference, IVF re-rank): higher score first,
/// exact float ties broken by the smaller entity id.
inline bool Better(const Candidate& a, const Candidate& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.id < b.id;
}

/// Shared dot-product kernel. Four independent accumulators let the
/// compiler keep the FMA pipeline busy; since *every* path uses this
/// function, accumulation order is identical and scores are bit-equal.
inline float Dot(const float* a, const float* b, int64_t d) {
  float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
  int64_t c = 0;
  for (; c + 4 <= d; c += 4) {
    s0 += a[c] * b[c];
    s1 += a[c + 1] * b[c + 1];
    s2 += a[c + 2] * b[c + 2];
    s3 += a[c + 3] * b[c + 3];
  }
  for (; c < d; ++c) s0 += a[c] * b[c];
  return ((s0 + s1) + (s2 + s3));
}

/// Squared L2 distance with a fixed single-accumulator order; used for
/// coarse-quantizer assignment and probe selection, where both sides of a
/// comparison must be computed identically for tie-breaks to be stable.
inline float SquaredL2(const float* a, const float* b, int64_t d) {
  float s = 0.0f;
  for (int64_t c = 0; c < d; ++c) {
    const float diff = a[c] - b[c];
    s += diff * diff;
  }
  return s;
}

/// Integer dot product of two int8 code rows, accumulated in int32.
/// Dispatches scalar vs AVX2 via tensor::kernels::ActiveIsa(); because
/// int32 addition is associative, the vectorised reduction is bit-identical
/// to the scalar loop — the one place where ISA reordering is provably
/// harmless, unlike float accumulation. Overflow-safe for d up to ~2^17
/// (|code| <= 127, so |sum| <= d * 127^2). Defined in quant_scan.cc.
int32_t DotI8(const int8_t* a, const int8_t* b, int64_t d);

/// A query quantized once per request with the same per-row symmetric
/// scheme the table rows use (nn::quant::QuantizeRow), amortising the
/// fp32 -> int8 conversion across the whole candidate scan.
struct Int8Query {
  std::vector<int8_t> codes;
  float scale = 0.0f;
};

/// Quantizes `q` (dim d) for the int8 candidate scan. Queries are caller
/// input, so unlike table rows (where QuantizeRow rejects) non-finite
/// coordinates are sanitized to 0 here: a poisoned query must degrade to
/// a well-defined answer, not poison the server. Defined in quant_scan.cc.
Int8Query QuantizeQuery(const float* q, int64_t d);

/// Approximate candidate score: (scale_q * scale_row) * <codes_q, codes_row>.
/// The int32 dot is exact on every ISA and the two float multiplies happen
/// in one fixed order, so approximate scores — and therefore the candidate
/// sets they select — are bit-identical across scalar/AVX2, thread counts
/// and scan orders. Final ranking always re-scores candidates with the
/// fp32 Dot above.
inline float Int8Score(const Int8Query& q, const int8_t* row_codes,
                       float row_scale, int64_t d) {
  return (q.scale * row_scale) *
         static_cast<float>(DotI8(q.codes.data(), row_codes, d));
}

/// Bounded "worst on top" candidate set of size <= k. Because Better is a
/// strict total order over unique ids, the surviving set (and its sorted
/// Finish order) is independent of Offer order.
class BoundedTopK {
 public:
  explicit BoundedTopK(int64_t k) : k_(k) { heap_.reserve(k); }

  /// Hot path: once the set is full, almost every candidate scores below
  /// the cached k-th best and is rejected on a single register compare.
  void Offer(float score, int64_t id) {
    if (full_ && score < worst_score_) return;
    OfferSlow(score, id);
  }

  TopKResult Finish() {
    std::sort(heap_.begin(), heap_.end(), Better);
    TopKResult out;
    out.ids.reserve(heap_.size());
    out.scores.reserve(heap_.size());
    for (const auto& c : heap_) {
      out.ids.push_back(c.id);
      out.scores.push_back(c.score);
    }
    return out;
  }

  /// Finish() without the TopKResult packaging; the IVF probe step wants
  /// the ids only.
  std::vector<int64_t> FinishIds() {
    std::sort(heap_.begin(), heap_.end(), Better);
    std::vector<int64_t> ids;
    ids.reserve(heap_.size());
    for (const auto& c : heap_) ids.push_back(c.id);
    return ids;
  }

 private:
  void OfferSlow(float score, int64_t id) {
    const Candidate c{score, id};
    if (static_cast<int64_t>(heap_.size()) < k_) {
      heap_.push_back(c);
      std::push_heap(heap_.begin(), heap_.end(), Better);
      full_ = static_cast<int64_t>(heap_.size()) == k_;
    } else {
      if (!Better(c, heap_.front())) return;
      std::pop_heap(heap_.begin(), heap_.end(), Better);
      heap_.back() = c;
      std::push_heap(heap_.begin(), heap_.end(), Better);
    }
    worst_score_ = heap_.front().score;
  }

  int64_t k_;
  bool full_ = false;
  float worst_score_ = 0.0f;     // valid only while full_
  std::vector<Candidate> heap_;  // max-heap on Better => worst at front
};

}  // namespace desalign::serve::scoring

#endif  // DESALIGN_SERVE_SCORING_H_
