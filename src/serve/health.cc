#include "serve/health.h"

#include <algorithm>

#include "common/logging.h"
#include "serve/stats.h"

namespace desalign::serve {

const char* HealthStateName(HealthState state) {
  switch (state) {
    case HealthState::kHealthy:
      return "healthy";
    case HealthState::kDegraded:
      return "degraded";
    case HealthState::kShedding:
      return "shedding";
  }
  return "unknown";
}

HealthGovernor::HealthGovernor(const OverloadOptions& options,
                               int64_t max_pending, ServeStats* stats)
    : options_(options), max_pending_(max_pending), stats_(stats) {}

HealthState HealthGovernor::state() const {
  const int r = rung();
  if (r >= kSheddingRung) return HealthState::kShedding;
  return r > 0 ? HealthState::kDegraded : HealthState::kHealthy;
}

DegradationLevel HealthGovernor::level() const {
  switch (std::min(rung(), 2)) {
    case 1:
      return DegradationLevel::kReducedProbe;
    case 2:
      return DegradationLevel::kNoRefine;
    default:
      return DegradationLevel::kNone;
  }
}

void HealthGovernor::RecordOutcome(bool deadline_miss) {
  ++window_outcomes_;
  if (deadline_miss) ++window_misses_;
}

DegradationLevel HealthGovernor::OnSample(int64_t queue_depth,
                                          common::Clock::TimePoint now) {
  if (!options_.enabled) return DegradationLevel::kNone;
  const auto window =
      common::Clock::FromMillis(std::max(options_.sample_window_ms, 0.0));
  if (!clock_initialized_) {
    clock_initialized_ = true;
    window_start_ = now;
    // Back-dated so the very first pressure sample can escalate; the dwell
    // only rate-limits consecutive escalations after that.
    last_escalation_ = now - window;
  }

  // Roll the outcome window. The just-closed window's miss fraction stays
  // the pressure signal until the next one closes, so a momentarily empty
  // window does not read as instant recovery.
  if (now - window_start_ >= window) {
    last_miss_fraction_ =
        window_outcomes_ > 0 ? static_cast<double>(window_misses_) /
                                   static_cast<double>(window_outcomes_)
                             : 0.0;
    window_outcomes_ = 0;
    window_misses_ = 0;
    window_start_ = now;
  }

  const double depth_fraction =
      max_pending_ > 0 ? static_cast<double>(queue_depth) /
                             static_cast<double>(max_pending_)
                       : 0.0;
  const double live_miss_fraction =
      window_outcomes_ > 0 ? static_cast<double>(window_misses_) /
                                 static_cast<double>(window_outcomes_)
                           : 0.0;
  const double miss_fraction = std::max(last_miss_fraction_, live_miss_fraction);
  const bool urgent = depth_fraction >= options_.shed_depth_fraction;
  const bool pressure = urgent ||
                        depth_fraction >= options_.degrade_depth_fraction ||
                        miss_fraction >= options_.deadline_miss_fraction;

  const int current = rung();
  if (urgent && current < kSheddingRung) {
    // Imminent overflow: skip the ladder walk, stop the bleeding now.
    SetRung(kSheddingRung, "depth past shed threshold", depth_fraction,
            miss_fraction);
    last_escalation_ = now;
    calm_ = false;
    return level();
  }
  if (pressure) {
    calm_ = false;
    if (current < kSheddingRung && now - last_escalation_ >= window) {
      SetRung(current + 1, "sustained pressure", depth_fraction,
              miss_fraction);
      last_escalation_ = now;
    }
    return level();
  }

  // No pressure. Step back one rung per uninterrupted recover_hold_ms of
  // calm (depth also below the recovery watermark) — the hysteresis that
  // keeps a borderline queue from flapping between rungs.
  if (current > 0 && depth_fraction <= options_.recover_depth_fraction) {
    if (!calm_) {
      calm_ = true;
      calm_since_ = now;
    } else if (now - calm_since_ >=
               common::Clock::FromMillis(options_.recover_hold_ms)) {
      SetRung(current - 1, "pressure subsided", depth_fraction,
              miss_fraction);
      calm_since_ = now;  // each further rung needs its own full hold
    }
  } else if (current == 0) {
    calm_ = false;
  }
  return level();
}

void HealthGovernor::SetRung(int next, const char* why, double depth_fraction,
                             double miss_fraction) {
  const int prev = rung_.exchange(next, std::memory_order_relaxed);
  if (prev == next) return;
  if (stats_ != nullptr) stats_->RecordHealthTransition(prev, next);
  DESALIGN_LOG(Info) << "serve health rung " << prev << " -> " << next << " ("
                     << HealthStateName(state()) << "): " << why
                     << " [depth=" << depth_fraction
                     << " miss=" << miss_fraction << "]";
}

}  // namespace desalign::serve
