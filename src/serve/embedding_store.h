#ifndef DESALIGN_SERVE_EMBEDDING_STORE_H_
#define DESALIGN_SERVE_EMBEDDING_STORE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "tensor/tensor.h"

namespace desalign::serve {

/// Immutable, query-time view of a fused entity embedding table. Rows are
/// copied once into a contiguous row-major float block and L2-normalized
/// at construction, so cosine similarity at serving time is a plain dot
/// product and every retrieval touches cache-friendly memory.
///
/// A store is either built in-memory from a tensor produced by a fitted
/// model (`align::FusionAlignModel::FusedEmbeddings`) or restored from an
/// `nn::serialize` checkpoint file, which is how a trained model's
/// embeddings reach a serving process that never sees the training data.
class EmbeddingStore {
 public:
  /// Copies and L2-normalizes all rows of `embeddings`. Zero rows (e.g.
  /// entities whose every modality was missing) stay zero and therefore
  /// never enter a top-k result ahead of a real match.
  static EmbeddingStore FromTensor(const tensor::Tensor& embeddings);

  /// Adopts `data` (size must equal rows * cols) and L2-normalizes it.
  static EmbeddingStore FromRows(int64_t rows, int64_t cols,
                                 std::vector<float> data);

  /// Writes the (already normalized) table as a single-tensor checkpoint
  /// compatible with `nn::LoadParameters` / `nn::LoadAllParameters`.
  common::Status Save(const std::string& path) const;

  /// Restores a store from checkpoint tensor `tensor_index` of `path`.
  /// Returns a clean Status (never crashes) on missing, corrupt or
  /// truncated files; rows are re-normalized defensively so a store is
  /// valid even when the checkpoint holds raw embeddings.
  static common::Result<EmbeddingStore> Load(const std::string& path,
                                             int64_t tensor_index = 0);

  /// Empty store (0 x 0); exists so the class fits common::Result. Every
  /// populated store comes from the factories above.
  EmbeddingStore() = default;

  int64_t size() const { return rows_; }
  int64_t dim() const { return cols_; }

  /// Contiguous row `i` (dim() floats).
  const float* row(int64_t i) const { return data_.data() + i * cols_; }
  const std::vector<float>& data() const { return data_; }

 private:
  EmbeddingStore(int64_t rows, int64_t cols, std::vector<float> data);

  int64_t rows_ = 0;
  int64_t cols_ = 0;
  std::vector<float> data_;
};

/// L2-normalizes each `dim`-sized row of `data` in place; rows with norm
/// below `eps` are left untouched. Shared by the store and query paths so
/// stored rows and incoming queries go through bit-identical scaling.
void L2NormalizeRows(float* data, int64_t rows, int64_t dim,
                     float eps = 1e-12f);

}  // namespace desalign::serve

#endif  // DESALIGN_SERVE_EMBEDDING_STORE_H_
