#ifndef DESALIGN_SERVE_EMBEDDING_STORE_H_
#define DESALIGN_SERVE_EMBEDDING_STORE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "nn/quant.h"
#include "tensor/tensor.h"

namespace desalign::serve {

class ServeStats;

/// Retry policy for EmbeddingStore::Reload.
struct ReloadOptions {
  int max_attempts = 3;     ///< total load attempts (>= 1)
  double backoff_ms = 10.0; ///< sleep before retry 2; doubles per retry
};

/// One immutable embedding table of `rows` x `cols`, row-major, stored in
/// one of three dtypes. fp32 tables hold L2-normalized rows in `data`;
/// int8 tables hold per-row symmetric codes in `codes` plus one fp32
/// scale per row in `scales`; bf16 tables hold rounded patterns in
/// `bf16`. Exactly the vector(s) matching `dtype` are populated. Tables
/// are shared read-only between the owning EmbeddingStore and any number
/// of in-flight EmbeddingSnapshot holders and never mutated after
/// construction — which is why a Reload may swap dtypes freely: readers
/// pin whole tables, never fields of one.
struct EmbeddingTable {
  int64_t rows = 0;
  int64_t cols = 0;
  nn::TensorDtype dtype = nn::TensorDtype::kFloat32;
  std::vector<float> data;      ///< kFloat32
  std::vector<int8_t> codes;    ///< kInt8: rows * cols
  std::vector<float> scales;    ///< kInt8: one per row
  std::vector<uint16_t> bf16;   ///< kBf16

  /// Bytes held by the populated payload vector(s), scales included — the
  /// quantity BENCH_quant.json reports as the memory footprint.
  size_t MemoryBytes() const;
};

/// A consistent, immutable view of an EmbeddingStore's table at one point
/// in time. Copyable and cheap (shared_ptr bump); the underlying table
/// stays alive — and bit-identical — for as long as any snapshot holds it,
/// even across concurrent Reload swaps. Every query path (TopKRetriever,
/// the IVF index) scans through a snapshot, which is what makes hot reload
/// race-free: a reload publishes a *new* table, it never mutates one a
/// reader may be scanning.
class EmbeddingSnapshot {
 public:
  /// Empty (0 x 0) view.
  EmbeddingSnapshot();

  int64_t size() const { return table_->rows; }
  int64_t dim() const { return table_->cols; }
  nn::TensorDtype dtype() const { return table_->dtype; }
  size_t MemoryBytes() const { return table_->MemoryBytes(); }

  /// Contiguous row `i` (dim() floats); valid for the snapshot's lifetime.
  /// Only meaningful for kFloat32 tables — quantized tables have no fp32
  /// block; use RowAsFloat (or the dtype-specific accessors) instead.
  const float* row(int64_t i) const {
    return table_->data.data() + i * table_->cols;
  }
  const std::vector<float>& data() const { return table_->data; }

  /// kInt8 accessors: row `i`'s codes and its dequantization scale.
  const int8_t* codes_row(int64_t i) const {
    return table_->codes.data() + i * table_->cols;
  }
  float scale(int64_t i) const {
    return table_->scales[static_cast<size_t>(i)];
  }

  /// kBf16 accessor.
  const uint16_t* bf16_row(int64_t i) const {
    return table_->bf16.data() + i * table_->cols;
  }

  /// Row `i` as fp32 regardless of dtype: returns the stored pointer for
  /// kFloat32 (scratch untouched) and otherwise dequantizes into `scratch`
  /// (at least dim() floats) and returns it. Dequantization is fixed-order
  /// scalar float math, so callers on any thread / ISA reconstruct
  /// bit-identical rows — the property that keeps k-means builds and the
  /// fp32 re-rank deterministic over quantized tables.
  const float* RowAsFloat(int64_t i, float* scratch) const;

 private:
  friend class EmbeddingStore;
  explicit EmbeddingSnapshot(std::shared_ptr<const EmbeddingTable> table);

  std::shared_ptr<const EmbeddingTable> table_;  // never null
};

/// Query-time holder of a fused entity embedding table. Rows are copied
/// once into a contiguous row-major float block and L2-normalized at
/// construction, so cosine similarity at serving time is a plain dot
/// product and every retrieval touches cache-friendly memory.
///
/// A store is either built in-memory from a tensor produced by a fitted
/// model (`align::FusionAlignModel::FusedEmbeddings`) or restored from an
/// `nn::serialize` checkpoint file, which is how a trained model's
/// embeddings reach a serving process that never sees the training data.
///
/// Concurrency: the store holds its table behind a mutex-guarded
/// shared_ptr. `Snapshot()` hands out an immutable view that outlives any
/// concurrent `Reload`, so queries racing a reload are well-defined: each
/// query sees exactly one table, either fully-old or fully-new
/// (tests/serve/reload_race_test.cc runs this under TSan). The
/// convenience accessors `row()`/`data()` read the *current* table and
/// are only safe while no concurrent Reload can swap it; retrieval code
/// must hold a Snapshot instead.
class EmbeddingStore {
 public:
  /// Copies and L2-normalizes all rows of `embeddings`. Zero rows (e.g.
  /// entities whose every modality was missing) stay zero and therefore
  /// never enter a top-k result ahead of a real match.
  static EmbeddingStore FromTensor(const tensor::Tensor& embeddings);

  /// Adopts `data` (size must equal rows * cols) and L2-normalizes it.
  static EmbeddingStore FromRows(int64_t rows, int64_t cols,
                                 std::vector<float> data);

  /// Writes the table as a single-tensor checkpoint: v2 for fp32 tables,
  /// v3 (dtype-tagged) for quantized ones. Either way the file is
  /// checksummed and atomically published, and loadable with `Load` below
  /// (and, for any dtype, with `nn::LoadAllParameters`, which sees the
  /// dequantized fp32 view).
  common::Status Save(const std::string& path) const;

  /// Restores a store from checkpoint tensor `tensor_index` of `path`.
  /// Returns a clean Status (never crashes) on missing, corrupt or
  /// truncated files. fp32 tensors (v1/v2, or fp32 records in v3) are
  /// re-normalized defensively so a store is valid even when the
  /// checkpoint holds raw embeddings; quantized v3 records are adopted
  /// verbatim — codes and scales round-trip bit-exactly, and
  /// re-normalizing their dequantized view would silently perturb scores.
  static common::Result<EmbeddingStore> Load(const std::string& path,
                                             int64_t tensor_index = 0);

  /// Returns a new store holding this store's rows quantized to `dtype`
  /// (the offline path behind `desalign quantize`). Requires the current
  /// table to be fp32 — requantizing already-quantized rows would stack
  /// rounding error invisibly. kFloat32 returns a plain shared-table copy.
  common::Result<EmbeddingStore> Quantize(nn::TensorDtype dtype) const;

  /// Empty store (0 x 0); exists so the class fits common::Result. Every
  /// populated store comes from the factories above.
  EmbeddingStore();

  EmbeddingStore(EmbeddingStore&& other) noexcept;
  EmbeddingStore& operator=(EmbeddingStore&& other) noexcept;
  /// Copies share the immutable table (shared_ptr bump, no data copy).
  EmbeddingStore(const EmbeddingStore& other);
  EmbeddingStore& operator=(const EmbeddingStore& other);

  /// Degradation-safe snapshot swap: loads and fully validates the
  /// checkpoint at `path` (checksums included for v2 files) into a fresh
  /// table and only then publishes it as the current table; concurrent
  /// queries holding a Snapshot keep scanning the old table, which stays
  /// alive until the last snapshot drops. On any failure — missing file,
  /// corruption, torn write — the store keeps serving its previous
  /// snapshot unchanged. Transient IO errors are retried up to
  /// `options.max_attempts` with exponential backoff; a dimension change
  /// relative to the current (non-empty) table is permanent and fails
  /// immediately, since queries embedded for the old dim cannot be scored
  /// against the new one. A *dtype* change at the same dim is allowed —
  /// swapping an fp32 table for its int8/bf16 quantization (or back) is
  /// exactly how a serving process migrates storage formats without a
  /// restart (tests/serve/quant_reload_race_test.cc runs this under TSan).
  /// Outcomes are counted on `stats` when provided
  /// (`<prefix>.reloads_ok` / `<prefix>.reloads_failed`).
  common::Status Reload(const std::string& path,
                        const ReloadOptions& options = {},
                        ServeStats* stats = nullptr);

  /// The current table as an immutable shared view; the only way to read
  /// rows concurrently with Reload.
  EmbeddingSnapshot Snapshot() const;

  int64_t size() const;
  int64_t dim() const;

  /// Contiguous row `i` (dim() floats). Single-threaded convenience: the
  /// pointer targets the current table and dangles if a concurrent Reload
  /// swaps it. Hold a Snapshot() in retrieval code.
  const float* row(int64_t i) const;
  const std::vector<float>& data() const;

 private:
  EmbeddingStore(int64_t rows, int64_t cols, std::vector<float> data);
  explicit EmbeddingStore(std::shared_ptr<const EmbeddingTable> table);

  std::shared_ptr<const EmbeddingTable> SharedTable() const;

  mutable common::Mutex mutex_;
  std::shared_ptr<const EmbeddingTable> table_ GUARDED_BY(mutex_);
};

/// L2-normalizes each `dim`-sized row of `data` in place; rows with norm
/// below `eps` are left untouched. Shared by the store and query paths so
/// stored rows and incoming queries go through bit-identical scaling.
void L2NormalizeRows(float* data, int64_t rows, int64_t dim,
                     float eps = 1e-12f);

}  // namespace desalign::serve

#endif  // DESALIGN_SERVE_EMBEDDING_STORE_H_
