#ifndef DESALIGN_SERVE_EMBEDDING_STORE_H_
#define DESALIGN_SERVE_EMBEDDING_STORE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "tensor/tensor.h"

namespace desalign::serve {

class ServeStats;

/// Retry policy for EmbeddingStore::Reload.
struct ReloadOptions {
  int max_attempts = 3;     ///< total load attempts (>= 1)
  double backoff_ms = 10.0; ///< sleep before retry 2; doubles per retry
};

/// Immutable, query-time view of a fused entity embedding table. Rows are
/// copied once into a contiguous row-major float block and L2-normalized
/// at construction, so cosine similarity at serving time is a plain dot
/// product and every retrieval touches cache-friendly memory.
///
/// A store is either built in-memory from a tensor produced by a fitted
/// model (`align::FusionAlignModel::FusedEmbeddings`) or restored from an
/// `nn::serialize` checkpoint file, which is how a trained model's
/// embeddings reach a serving process that never sees the training data.
class EmbeddingStore {
 public:
  /// Copies and L2-normalizes all rows of `embeddings`. Zero rows (e.g.
  /// entities whose every modality was missing) stay zero and therefore
  /// never enter a top-k result ahead of a real match.
  static EmbeddingStore FromTensor(const tensor::Tensor& embeddings);

  /// Adopts `data` (size must equal rows * cols) and L2-normalizes it.
  static EmbeddingStore FromRows(int64_t rows, int64_t cols,
                                 std::vector<float> data);

  /// Writes the (already normalized) table as a single-tensor v2
  /// checkpoint: checksummed and atomically published, loadable with
  /// `nn::LoadParameters` / `nn::LoadAllParameters` / `Load` below.
  common::Status Save(const std::string& path) const;

  /// Restores a store from checkpoint tensor `tensor_index` of `path`.
  /// Returns a clean Status (never crashes) on missing, corrupt or
  /// truncated files; rows are re-normalized defensively so a store is
  /// valid even when the checkpoint holds raw embeddings.
  static common::Result<EmbeddingStore> Load(const std::string& path,
                                             int64_t tensor_index = 0);

  /// Empty store (0 x 0); exists so the class fits common::Result. Every
  /// populated store comes from the factories above.
  EmbeddingStore() = default;

  /// Degradation-safe snapshot swap: loads and fully validates the
  /// checkpoint at `path` (checksums included for v2 files) into a fresh
  /// table and only then replaces this store's contents. On any failure —
  /// missing file, corruption, torn write — the store keeps serving its
  /// previous snapshot unchanged. Transient IO errors are retried up to
  /// `options.max_attempts` with exponential backoff; a dimension change
  /// relative to the current (non-empty) table is permanent and fails
  /// immediately, since queries embedded for the old dim cannot be scored
  /// against the new one. Outcomes are counted on `stats` when provided
  /// (`<prefix>.reloads_ok` / `<prefix>.reloads_failed`).
  common::Status Reload(const std::string& path,
                        const ReloadOptions& options = {},
                        ServeStats* stats = nullptr);

  int64_t size() const { return rows_; }
  int64_t dim() const { return cols_; }

  /// Contiguous row `i` (dim() floats).
  const float* row(int64_t i) const { return data_.data() + i * cols_; }
  const std::vector<float>& data() const { return data_; }

 private:
  EmbeddingStore(int64_t rows, int64_t cols, std::vector<float> data);

  int64_t rows_ = 0;
  int64_t cols_ = 0;
  std::vector<float> data_;
};

/// L2-normalizes each `dim`-sized row of `data` in place; rows with norm
/// below `eps` are left untouched. Shared by the store and query paths so
/// stored rows and incoming queries go through bit-identical scaling.
void L2NormalizeRows(float* data, int64_t rows, int64_t dim,
                     float eps = 1e-12f);

}  // namespace desalign::serve

#endif  // DESALIGN_SERVE_EMBEDDING_STORE_H_
