#include <cmath>

#include "nn/quant.h"
#include "serve/quant_scan_internal.h"
#include "serve/scoring.h"
#include "tensor/kernels/dispatch.h"

namespace desalign::serve::scoring {

int32_t DotI8(const int8_t* a, const int8_t* b, int64_t d) {
#if DESALIGN_SERVE_HAVE_AVX2
  if (tensor::kernels::ActiveIsa() == tensor::kernels::IsaLevel::kAvx2) {
    return internal::DotI8Avx2(a, b, d);
  }
#endif
  return internal::DotI8Scalar(a, b, d);
}

Int8Query QuantizeQuery(const float* q, int64_t d) {
  Int8Query out;
  out.codes.resize(static_cast<size_t>(d));
  float maxabs = 0.0f;
  for (int64_t j = 0; j < d; ++j) {
    const float v = q[j];
    if (!std::isfinite(v)) continue;  // sanitized to code 0 below
    const float a = std::fabs(v);
    if (a > maxabs) maxabs = a;
  }
  if (maxabs == 0.0f) {
    out.scale = 0.0f;
    return out;  // codes already zero-initialised by resize
  }
  const float s = maxabs / 127.0f;
  out.scale = s;
  for (int64_t j = 0; j < d; ++j) {
    const float v = q[j];
    if (!std::isfinite(v)) {
      out.codes[static_cast<size_t>(j)] = 0;
      continue;
    }
    // Same round-half-away-from-zero as nn::quant::QuantizeRow so query
    // and table codes come from one quantizer.
    const float t = v / s;
    float r = t >= 0.0f ? std::floor(t + 0.5f) : std::ceil(t - 0.5f);
    if (r > 127.0f) r = 127.0f;
    if (r < -127.0f) r = -127.0f;
    out.codes[static_cast<size_t>(j)] = static_cast<int8_t>(r);
  }
  return out;
}

}  // namespace desalign::serve::scoring
