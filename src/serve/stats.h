#ifndef DESALIGN_SERVE_STATS_H_
#define DESALIGN_SERVE_STATS_H_

#include <cstdint>
#include <ostream>
#include <string>

#include "common/stopwatch.h"
#include "obs/metrics.h"

namespace desalign::serve {

/// Point-in-time view of the serving counters. count/min/max/mean are
/// exact over every recorded query; percentiles come from the shared
/// fixed-bucket histogram (~10% bucket resolution, exact for 0/1/
/// duplicate-valued samples).
struct ServeStatsSnapshot {
  int64_t queries = 0;
  int64_t batches = 0;
  double elapsed_seconds = 0.0;
  double queries_per_second = 0.0;
  double mean_batch_size = 0.0;
  double mean_latency_ms = 0.0;
  double p50_latency_ms = 0.0;
  double p95_latency_ms = 0.0;
  double p99_latency_ms = 0.0;
  double max_latency_ms = 0.0;
  int64_t reloads_ok = 0;      ///< snapshot swaps that succeeded
  int64_t reloads_failed = 0;  ///< reloads rejected (store kept last-good)
};

/// Thread-safe per-call latency / throughput counters for the serving
/// path, backed by obs::Histogram metrics in a MetricsRegistry — so a
/// serve-bench run and a training run report through one registry and one
/// `--metrics-out` file. Recording is lock-free; memory stays fixed no
/// matter how many queries are replayed. Throughput is measured from
/// construction (or the last Reset) to the Snapshot call.
class ServeStats {
 public:
  /// Binds to `<prefix>.latency_ms` and `<prefix>.batch_size` in
  /// `registry` (nullptr → MetricsRegistry::Global()) and resets them, so
  /// each ServeStats instance starts a fresh measurement window. Use one
  /// ServeStats per prefix per process; two live instances with the same
  /// prefix would share (and stomp) the same histograms.
  explicit ServeStats(obs::MetricsRegistry* registry = nullptr,
                      std::string prefix = "serve");

  /// Records one completed query (submit-to-result latency).
  void RecordQuery(double latency_ms);

  /// Records one drained batch of `size` queries.
  void RecordBatch(int64_t size);

  /// Records the outcome of an EmbeddingStore::Reload (counters
  /// `<prefix>.reloads_ok` / `<prefix>.reloads_failed`).
  void RecordReload(bool ok);

  /// Restarts the throughput clock and clears this instance's histograms.
  void Reset();

  ServeStatsSnapshot Snapshot() const;

  /// Prints a one-row latency/throughput table via eval::TablePrinter.
  void PrintTable(std::ostream& os) const;

 private:
  obs::Histogram* latency_;        // owned by the registry
  obs::Histogram* batches_;        // owned by the registry
  obs::Counter* reloads_ok_;       // owned by the registry
  obs::Counter* reloads_failed_;   // owned by the registry
  common::Stopwatch clock_;
};

}  // namespace desalign::serve

#endif  // DESALIGN_SERVE_STATS_H_
