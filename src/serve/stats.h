#ifndef DESALIGN_SERVE_STATS_H_
#define DESALIGN_SERVE_STATS_H_

#include <cstdint>
#include <mutex>
#include <ostream>
#include <random>
#include <vector>

#include "common/stopwatch.h"

namespace desalign::serve {

/// Point-in-time view of the serving counters. Percentiles cover the
/// reservoir sample; count/min/max/mean cover every recorded query.
struct ServeStatsSnapshot {
  int64_t queries = 0;
  int64_t batches = 0;
  double elapsed_seconds = 0.0;
  double queries_per_second = 0.0;
  double mean_batch_size = 0.0;
  double mean_latency_ms = 0.0;
  double p50_latency_ms = 0.0;
  double p95_latency_ms = 0.0;
  double max_latency_ms = 0.0;
};

/// Thread-safe per-call latency / throughput counters for the serving
/// path. Latency percentiles use reservoir sampling (algorithm R with a
/// deterministic engine) so memory stays bounded no matter how many
/// queries are replayed; throughput is measured from construction (or the
/// last Reset) to the Snapshot call.
class ServeStats {
 public:
  explicit ServeStats(int64_t reservoir_capacity = 4096, uint64_t seed = 1);

  /// Records one completed query (submit-to-result latency).
  void RecordQuery(double latency_ms);

  /// Records one drained batch of `size` queries.
  void RecordBatch(int64_t size);

  /// Restarts the throughput clock and clears all counters.
  void Reset();

  ServeStatsSnapshot Snapshot() const;

  /// Prints a one-row latency/throughput table via eval::TablePrinter.
  void PrintTable(std::ostream& os) const;

 private:
  mutable std::mutex mutex_;
  int64_t capacity_;
  std::mt19937_64 engine_;
  common::Stopwatch clock_;
  int64_t queries_ = 0;
  int64_t batches_ = 0;
  int64_t batched_queries_ = 0;
  double sum_latency_ms_ = 0.0;
  double max_latency_ms_ = 0.0;
  std::vector<double> reservoir_;
};

}  // namespace desalign::serve

#endif  // DESALIGN_SERVE_STATS_H_
