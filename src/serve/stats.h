#ifndef DESALIGN_SERVE_STATS_H_
#define DESALIGN_SERVE_STATS_H_

#include <cstdint>
#include <ostream>
#include <string>

#include "common/clock.h"
#include "obs/metrics.h"
#include "serve/retriever.h"

namespace desalign::serve {

/// Point-in-time view of the serving counters. count/min/max/mean are
/// exact over every recorded query; percentiles come from the shared
/// fixed-bucket histogram (~10% bucket resolution, exact for 0/1/
/// duplicate-valued samples).
struct ServeStatsSnapshot {
  int64_t queries = 0;
  int64_t batches = 0;
  double elapsed_seconds = 0.0;
  double queries_per_second = 0.0;
  double mean_batch_size = 0.0;
  double mean_latency_ms = 0.0;
  double p50_latency_ms = 0.0;
  double p95_latency_ms = 0.0;
  double p99_latency_ms = 0.0;
  double max_latency_ms = 0.0;
  int64_t reloads_ok = 0;      ///< snapshot swaps that succeeded
  int64_t reloads_failed = 0;  ///< reloads rejected (store kept last-good)

  // Overload protection (see docs/ROBUSTNESS.md "Overload protection").
  int64_t admitted = 0;         ///< requests accepted into the queue
  int64_t shed_queue_full = 0;  ///< rejected: queue at max_pending/shedding
  int64_t shed_deadline = 0;    ///< shed: deadline expired before scoring
  int64_t rejected_invalid = 0;   ///< rejected: malformed query
  int64_t rejected_shutdown = 0;  ///< rejected: submitted after Shutdown
  int64_t degraded = 0;           ///< answers served below full quality
  int64_t health_transitions = 0;  ///< governor rung changes
  int64_t queue_depth = 0;         ///< pending requests (last sample)
  int64_t health_rung = 0;         ///< 0 healthy .. 3 shedding (last sample)
  double mean_queue_wait_ms = 0.0;  ///< admission-to-batch-formation wait
  double p99_queue_wait_ms = 0.0;
};

/// Thread-safe per-call latency / throughput counters for the serving
/// path, backed by obs metrics in a MetricsRegistry — so a serve-bench
/// run and a training run report through one registry and one
/// `--metrics-out` file. Recording is lock-free; memory stays fixed no
/// matter how many queries are replayed. Throughput is measured from
/// construction (or the last Reset) to the Snapshot call on the injected
/// Clock, so elapsed/qps are deterministic under a ManualClock.
class ServeStats {
 public:
  /// Binds to `<prefix>.latency_ms`, `<prefix>.batch_size` and the
  /// `<prefix>.*` admission/health series in `registry` (nullptr →
  /// MetricsRegistry::Global()) and resets them, so each ServeStats
  /// instance starts a fresh measurement window. Use one ServeStats per
  /// prefix per process; two live instances with the same prefix would
  /// share (and stomp) the same series. `clock` nullptr → Clock::Real().
  explicit ServeStats(obs::MetricsRegistry* registry = nullptr,
                      std::string prefix = "serve",
                      common::Clock* clock = nullptr);

  /// Records one completed query (submit-to-result latency).
  void RecordQuery(double latency_ms);

  /// Records one drained batch of `size` queries.
  void RecordBatch(int64_t size);

  /// Records the outcome of an EmbeddingStore::Reload (counters
  /// `<prefix>.reloads_ok` / `<prefix>.reloads_failed`).
  void RecordReload(bool ok);

  /// Records one request accepted past admission control.
  void RecordAdmitted();

  /// Records one request turned away with `status` (anything but kOk):
  /// kRejectedQueueFull → `<prefix>.shed_queue_full`, kDeadlineExceeded →
  /// `<prefix>.shed_deadline`, kInvalidQuery → `<prefix>.rejected_invalid`,
  /// kShutdown → `<prefix>.rejected_shutdown`.
  void RecordRejected(ServeStatus status);

  /// Records `n` answers served below full quality.
  void RecordDegraded(int64_t n);

  /// Publishes the pending-queue depth gauge.
  void RecordQueueDepth(int64_t depth);

  /// Records one request's admission-to-batch-formation wait.
  void RecordQueueWait(double wait_ms);

  /// Records a governor rung change and publishes the health-state gauge.
  void RecordHealthTransition(int from_rung, int to_rung);

  /// Restarts the throughput clock and clears this instance's series.
  void Reset();

  ServeStatsSnapshot Snapshot() const;

  /// Prints a one-row latency/throughput table via common::TablePrinter;
  /// when any admission-control activity was recorded, a second row with
  /// the overload counters follows.
  void PrintTable(std::ostream& os) const;

 private:
  // All metric objects are owned by the registry.
  obs::Histogram* latency_;
  obs::Histogram* batches_;
  obs::Histogram* queue_wait_;
  obs::Counter* reloads_ok_;
  obs::Counter* reloads_failed_;
  obs::Counter* admitted_;
  obs::Counter* shed_queue_full_;
  obs::Counter* shed_deadline_;
  obs::Counter* rejected_invalid_;
  obs::Counter* rejected_shutdown_;
  obs::Counter* degraded_;
  obs::Counter* health_transitions_;
  obs::Gauge* queue_depth_;
  obs::Gauge* health_state_;
  common::Clock* clock_;
  common::Clock::TimePoint start_;
};

}  // namespace desalign::serve

#endif  // DESALIGN_SERVE_STATS_H_
