#ifndef DESALIGN_SERVE_QUANT_SCAN_INTERNAL_H_
#define DESALIGN_SERVE_QUANT_SCAN_INTERNAL_H_

#include <cstdint>

// Shared between quant_scan.cc (dispatch + scalar body) and
// quant_scan_avx2.cc (vector body). Mirrors the tensor kernel layout: the
// AVX2 translation unit enables 256-bit codegen via the target pragma while
// the build stays baseline x86-64, and nothing in it executes unless
// runtime dispatch confirmed CPU support.
#if defined(__x86_64__) || defined(__i386__)
#define DESALIGN_SERVE_HAVE_AVX2 1
#else
#define DESALIGN_SERVE_HAVE_AVX2 0
#endif

namespace desalign::serve::scoring::internal {

/// Scalar int8 dot body; also the tail loop of the AVX2 body.
inline int32_t DotI8Scalar(const int8_t* a, const int8_t* b, int64_t d) {
  int32_t s = 0;
  for (int64_t c = 0; c < d; ++c) {
    s += static_cast<int32_t>(a[c]) * static_cast<int32_t>(b[c]);
  }
  return s;
}

#if DESALIGN_SERVE_HAVE_AVX2
/// AVX2 int8 dot: 16 codes per iteration via sign-extend to i16 +
/// _mm256_madd_epi16. Bit-identical to DotI8Scalar because int32 addition
/// is associative and the i16 products cannot overflow their madd pairs.
int32_t DotI8Avx2(const int8_t* a, const int8_t* b, int64_t d);
#endif

}  // namespace desalign::serve::scoring::internal

#endif  // DESALIGN_SERVE_QUANT_SCAN_INTERNAL_H_
