#ifndef DESALIGN_INDEX_QUANT_BENCH_H_
#define DESALIGN_INDEX_QUANT_BENCH_H_

#include <cstdint>
#include <string>
#include <vector>

namespace desalign::index {

/// Entity-count sweep measuring what quantized embedding storage costs in
/// accuracy and buys in memory: for each dtype (fp32 baseline, bf16, int8)
/// the table footprint, single-query latency, recall@k and Hits@1
/// agreement against fp32 brute-force ground truth, and the full-probe
/// bit-exactness invariant (int8 scan + fp32 re-rank over all rows must
/// reproduce the dequantized brute-force reference byte for byte).
struct QuantBenchOptions {
  std::vector<int64_t> entity_counts = {10000, 100000, 1000000};
  int64_t dim = 64;
  int64_t queries = 256;  ///< per case; latency is measured per query
  int64_t k = 10;
  /// Stage-1 int8 candidates re-ranked in fp32 for the measured (non-
  /// exact-mode) path; 0 = auto (min(n, max(4k, 64))).
  int64_t rerank_candidates = 0;
  int64_t clusters = 256;  ///< mixture components in the synthetic data
  double noise = 0.25;     ///< per-coordinate noise amplitude
  uint64_t seed = 20240808;
  /// CI mode: only the smallest entity count, fewer queries.
  bool smoke = false;
};

/// One measured dtype within a case.
struct QuantBenchDtype {
  std::string dtype;          ///< "fp32" | "bf16" | "int8"
  int64_t table_bytes = 0;    ///< EmbeddingTable::MemoryBytes()
  double memory_reduction = 0.0;  ///< fp32_bytes / table_bytes
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double qps = 0.0;
  double recall_at_k = 0.0;    ///< vs fp32 brute-force ground truth
  /// int8 only: recall of the self-contained path (stage-2 over
  /// dequantized rows, no checkpoint source). Equals recall_at_k for
  /// fp32/bf16. The headline recall_at_k for int8 is measured with
  /// full-precision refinement: stage-2 rows fetched on demand from the
  /// source fp32 checkpoint on disk, so only the int8 table is resident.
  double recall_at_k_raw = 0.0;
  double hits_at_1 = 0.0;      ///< rank-1 agreement with fp32 truth
  double hits_at_1_delta = 0.0;  ///< fp32 hits@1 minus this dtype's
  /// Exact mode (rerank all) over this dtype's table byte-equals its own
  /// dequantized brute-force reference — the determinism-contract gate.
  bool bitexact_full = false;
  /// int8 only: exact mode with the fp32 row source byte-equals the fp32
  /// baseline's brute force — full-probe int8 scan + fp32 re-rank IS fp32
  /// brute force, bit for bit.
  bool refined_exact_matches_fp32 = false;
  int64_t rerank_candidates = 0;  ///< resolved stage-2 width (int8 only)
};

struct QuantBenchCase {
  int64_t entities = 0;
  int64_t dim = 0;
  int64_t k = 0;
  std::vector<QuantBenchDtype> dtypes;
};

struct QuantBenchReport {
  std::vector<QuantBenchCase> cases;
  /// Schema desalign.quant_bench.v1; validated by tools/ci.sh --quant.
  std::string ToJson() const;
};

QuantBenchReport RunQuantBench(const QuantBenchOptions& options);

}  // namespace desalign::index

#endif  // DESALIGN_INDEX_QUANT_BENCH_H_
