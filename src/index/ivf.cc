#include "index/ivf.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <utility>

#include "common/check.h"
#include "common/stopwatch.h"
#include "serve/scoring.h"

namespace desalign::index {

namespace {

using serve::scoring::BoundedTopK;
using serve::scoring::Dot;
using serve::scoring::SquaredL2;

int64_t ResolveCentroids(int64_t requested, int64_t n) {
  if (n <= 0) return 0;
  if (requested > 0) return std::min(requested, n);
  const auto root = static_cast<int64_t>(
      std::llround(std::ceil(std::sqrt(static_cast<double>(n)))));
  return std::min(std::max<int64_t>(root, 1), n);
}

}  // namespace

IvfRetriever::IvfRetriever(serve::EmbeddingStore* store, IvfOptions options)
    : store_(store), options_(options) {
  DESALIGN_CHECK(store_ != nullptr);
  obs::MetricsRegistry& registry = options_.registry != nullptr
                                       ? *options_.registry
                                       : obs::MetricsRegistry::Global();
  builds_ = &registry.GetCounter("index.builds");
  build_ms_ = &registry.GetGauge("index.build_ms");
  queries_ = &registry.GetCounter("index.queries");
  probes_ = &registry.GetCounter("index.probes");
  candidates_ = &registry.GetHistogram(
      "index.candidates_per_query",
      obs::Histogram::ExponentialBuckets(1.0, 2.0, 30));
  int8_queries_ = &registry.GetCounter("quant.int8_queries");
  rerank_width_ = &registry.GetHistogram(
      "quant.rerank_candidates",
      obs::Histogram::ExponentialBuckets(1.0, 2.0, 30));
  Rebuild();
}

std::shared_ptr<const IvfRetriever::Built> IvfRetriever::Current() const {
  common::MutexLock lock(mutex_);
  return built_;
}

void IvfRetriever::Rebuild() {
  common::Stopwatch build_clock;
  auto built = std::make_shared<Built>();
  built->snap = store_->Snapshot();
  const serve::EmbeddingSnapshot& snap = built->snap;
  const int64_t n = snap.size();
  const int64_t dim = snap.dim();
  if (n > 0) {
    KMeansOptions kopts;
    kopts.num_centroids = ResolveCentroids(options_.num_centroids, n);
    kopts.iterations = options_.kmeans_iterations;
    kopts.seed = options_.seed;
    kopts.sample_rows = options_.kmeans_sample_rows;
    kopts.pool = options_.pool;
    built->coarse = TrainKMeans(snap, kopts);
    const int64_t k = built->coarse.num_centroids;

    const int num_shards = static_cast<int>(std::min<int64_t>(
        std::max(options_.num_shards, 1), n));
    built->shards.resize(static_cast<size_t>(num_shards));
    common::ThreadPool& pool = options_.pool != nullptr
                                   ? *options_.pool
                                   : common::ThreadPool::Global();
    // Shard s owns rows [s*n/S, (s+1)*n/S): a pure function of (s, n, S).
    // Shards build independently, so this fan-out cannot reorder anything
    // observable — each shard's lists depend only on its own row range.
    pool.ParallelFor(
        0, num_shards,
        [&](int64_t sb, int64_t se) {
          std::vector<float> scratch(static_cast<size_t>(dim));
          for (int64_t s = sb; s < se; ++s) {
            Shard& shard = built->shards[static_cast<size_t>(s)];
            shard.begin = s * n / num_shards;
            shard.end = (s + 1) * n / num_shards;
            const int64_t rows = shard.end - shard.begin;
            std::vector<int64_t> assign(static_cast<size_t>(rows));
            for (int64_t i = 0; i < rows; ++i) {
              // RowAsFloat dequantizes deterministically, so a row's cell
              // is the same whatever shard/thread assigns it.
              assign[static_cast<size_t>(i)] = NearestCentroid(
                  built->coarse,
                  snap.RowAsFloat(shard.begin + i, scratch.data()));
            }
            // Counting sort by centroid: rows are visited in ascending id
            // order, so every inverted list comes out id-ascending.
            shard.list_start.assign(static_cast<size_t>(k + 1), 0);
            for (int64_t i = 0; i < rows; ++i) {
              ++shard.list_start[static_cast<size_t>(
                  assign[static_cast<size_t>(i)] + 1)];
            }
            std::partial_sum(shard.list_start.begin(), shard.list_start.end(),
                             shard.list_start.begin());
            shard.entries.resize(static_cast<size_t>(rows));
            std::vector<int64_t> cursor(shard.list_start.begin(),
                                        shard.list_start.end() - 1);
            for (int64_t i = 0; i < rows; ++i) {
              const auto c =
                  static_cast<size_t>(assign[static_cast<size_t>(i)]);
              shard.entries[static_cast<size_t>(cursor[c]++)] =
                  shard.begin + i;
            }
          }
        },
        /*grain=*/1);
  }
  built->build_ms = build_clock.ElapsedMillis();
  builds_->Increment();
  build_ms_->Set(built->build_ms);
  common::MutexLock lock(mutex_);
  built_ = std::move(built);
}

common::Status IvfRetriever::ReloadAndRebuild(
    const std::string& path, const serve::ReloadOptions& options,
    serve::ServeStats* stats) {
  const common::Status status = store_->Reload(path, options, stats);
  // On failure the store kept its last-good table and this index still
  // serves the (snapshot, lists) pair it was built from.
  if (!status.ok()) return status;
  Rebuild();
  return common::Status::Ok();
}

std::vector<serve::TopKResult> IvfRetriever::Retrieve(const float* queries,
                                                      int64_t num_queries,
                                                      int64_t k) const {
  return RetrieveWithProbe(queries, num_queries, k, options_.nprobe);
}

std::vector<serve::TopKResult> IvfRetriever::RetrieveDegraded(
    const float* queries, int64_t num_queries, int64_t k,
    serve::DegradationLevel level) const {
  if (level < serve::DegradationLevel::kReducedProbe) {
    return Retrieve(queries, num_queries, k);
  }
  int64_t nprobe = options_.degraded_nprobe > 0
                       ? options_.degraded_nprobe
                       : std::max<int64_t>(1, options_.nprobe / 4);
  nprobe = std::min(std::max<int64_t>(nprobe, 1), options_.nprobe);
  return RetrieveWithProbe(queries, num_queries, k, nprobe);
}

std::vector<serve::TopKResult> IvfRetriever::RetrieveWithProbe(
    const float* queries, int64_t num_queries, int64_t k,
    int64_t nprobe) const {
  std::vector<serve::TopKResult> results(
      num_queries > 0 ? static_cast<size_t>(num_queries) : 0);
  if (num_queries <= 0) return results;
  const std::shared_ptr<const Built> built = Current();
  const serve::EmbeddingSnapshot& snap = built->snap;
  const int64_t n = snap.size();
  k = std::min(k, n);
  if (k <= 0) return results;
  const int64_t d = snap.dim();
  const int64_t nc = built->coarse.num_centroids;
  nprobe = std::min(std::max<int64_t>(nprobe, 1), nc);

  std::vector<float> q(queries, queries + num_queries * d);
  serve::L2NormalizeRows(q.data(), num_queries, d);

  const nn::TensorDtype dtype = snap.dtype();
  const int64_t rerank =
      serve::ResolveRerankCandidates(options_.rerank_candidates, k, n);

  common::ThreadPool& pool =
      options_.pool != nullptr ? *options_.pool : common::ThreadPool::Global();
  const float* centroids = built->coarse.centroids.data();
  pool.ParallelFor(
      0, num_queries,
      [&](int64_t qb, int64_t qe) {
        std::vector<float> scratch(static_cast<size_t>(d));
        for (int64_t i = qb; i < qe; ++i) {
          const float* qi = q.data() + i * d;
          // Stage 1: nearest cells by squared L2, ties toward the smaller
          // centroid id — the same rule assignment used at build time.
          BoundedTopK probe(nprobe);
          for (int64_t c = 0; c < nc; ++c) {
            probe.Offer(-SquaredL2(qi, centroids + c * d, d), c);
          }
          const std::vector<int64_t> cells = probe.FinishIds();
          // Stage 2: re-rank every entity in a probed list. The shard x
          // cell visit order is irrelevant to the output — the candidate
          // set is a set, and scoring::Better is total. fp32/bf16 rows are
          // scored exactly in one pass; int8 rows go through the integer
          // scan first, with only the best `rerank` survivors re-scored in
          // fp32 (see docs/SERVING.md "Quantized serving").
          BoundedTopK heap(dtype == nn::TensorDtype::kInt8 ? rerank : k);
          int64_t offered = 0;
          serve::scoring::Int8Query qq;
          if (dtype == nn::TensorDtype::kInt8) {
            qq = serve::scoring::QuantizeQuery(qi, d);
          }
          for (const Shard& shard : built->shards) {
            for (const int64_t c : cells) {
              const int64_t lb = shard.list_start[static_cast<size_t>(c)];
              const int64_t le = shard.list_start[static_cast<size_t>(c + 1)];
              for (int64_t e = lb; e < le; ++e) {
                const int64_t id = shard.entries[static_cast<size_t>(e)];
                if (dtype == nn::TensorDtype::kInt8) {
                  heap.Offer(serve::scoring::Int8Score(
                                 qq, snap.codes_row(id), snap.scale(id), d),
                             id);
                } else {
                  heap.Offer(Dot(qi, snap.RowAsFloat(id, scratch.data()), d),
                             id);
                }
              }
              offered += le - lb;
            }
          }
          if (dtype == nn::TensorDtype::kInt8) {
            BoundedTopK final_heap(k);
            for (const int64_t id : heap.FinishIds()) {
              final_heap.Offer(Dot(qi, snap.RowAsFloat(id, scratch.data()),
                                   d),
                               id);
            }
            results[static_cast<size_t>(i)] = final_heap.Finish();
          } else {
            results[static_cast<size_t>(i)] = heap.Finish();
          }
          candidates_->Record(static_cast<double>(offered));
        }
      },
      /*grain=*/1);
  queries_->Increment(num_queries);
  probes_->Increment(num_queries * nprobe);
  if (dtype == nn::TensorDtype::kInt8) {
    int8_queries_->Increment(num_queries);
    rerank_width_->Record(static_cast<double>(rerank));
  }
  return results;
}

int64_t IvfRetriever::dim() const { return Current()->snap.dim(); }

int64_t IvfRetriever::size() const { return Current()->snap.size(); }

int64_t IvfRetriever::num_centroids() const {
  return Current()->coarse.num_centroids;
}

int IvfRetriever::num_shards() const {
  return static_cast<int>(Current()->shards.size());
}

double IvfRetriever::last_build_ms() const { return Current()->build_ms; }

common::Result<RetrieverKind> ParseRetrieverKind(const std::string& name) {
  if (name == "brute") return RetrieverKind::kBruteForce;
  if (name == "ivf") return RetrieverKind::kIvf;
  return common::Status::InvalidArgument(
      "unknown retriever kind '" + name + "' (expected brute|ivf)");
}

std::unique_ptr<serve::Retriever> MakeRetriever(serve::EmbeddingStore* store,
                                                const RetrieverConfig& config) {
  if (config.kind == RetrieverKind::kIvf) {
    return std::make_unique<IvfRetriever>(store, config.ivf);
  }
  return std::make_unique<serve::TopKRetriever>(store, config.topk);
}

}  // namespace desalign::index
