#include "index/quant_bench.h"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <utility>

#include "common/check.h"
#include "common/rng.h"
#include "eval/retrieval_metrics.h"
#include "index/bench_util.h"
#include "index/ivf.h"
#include "nn/quant.h"
#include "obs/metrics.h"
#include "serve/embedding_store.h"
#include "serve/row_source.h"
#include "serve/topk.h"

namespace desalign::index {

namespace {

using bench::BitExact;
using bench::IdsOf;
using bench::JsonNum;
using bench::MixtureRows;
using bench::UnitCenters;
using serve::TopKResult;

}  // namespace

std::string QuantBenchReport::ToJson() const {
  std::ostringstream os;
  os << "{\"schema\":\"desalign.quant_bench.v1\",\"cases\":[";
  for (size_t i = 0; i < cases.size(); ++i) {
    const auto& c = cases[i];
    if (i) os << ",";
    os << "{\"entities\":" << c.entities << ",\"dim\":" << c.dim
       << ",\"k\":" << c.k << ",\"dtypes\":[";
    for (size_t j = 0; j < c.dtypes.size(); ++j) {
      const auto& d = c.dtypes[j];
      if (j) os << ",";
      os << "{\"dtype\":\"" << d.dtype
         << "\",\"table_bytes\":" << d.table_bytes
         << ",\"memory_reduction\":" << JsonNum(d.memory_reduction)
         << ",\"mean_ms\":" << JsonNum(d.mean_ms)
         << ",\"p50_ms\":" << JsonNum(d.p50_ms)
         << ",\"p99_ms\":" << JsonNum(d.p99_ms)
         << ",\"qps\":" << JsonNum(d.qps)
         << ",\"recall_at_k\":" << JsonNum(d.recall_at_k)
         << ",\"recall_at_k_raw\":" << JsonNum(d.recall_at_k_raw)
         << ",\"hits_at_1\":" << JsonNum(d.hits_at_1)
         << ",\"hits_at_1_delta\":" << JsonNum(d.hits_at_1_delta)
         << ",\"bitexact_full\":" << (d.bitexact_full ? "true" : "false");
      if (d.dtype == "int8") {
        os << ",\"refined_exact_matches_fp32\":"
           << (d.refined_exact_matches_fp32 ? "true" : "false");
      }
      os << ",\"rerank_candidates\":" << d.rerank_candidates << "}";
    }
    os << "]}";
  }
  os << "]}";
  return os.str();
}

QuantBenchReport RunQuantBench(const QuantBenchOptions& options) {
  QuantBenchReport report;
  std::vector<int64_t> entity_counts = options.entity_counts;
  if (options.smoke && !entity_counts.empty()) {
    entity_counts = {
        *std::min_element(entity_counts.begin(), entity_counts.end())};
  }
  const int64_t num_queries = std::max<int64_t>(
      options.smoke ? std::min<int64_t>(options.queries, 128)
                    : options.queries,
      1);
  const int64_t dim = std::max<int64_t>(options.dim, 4);
  const nn::TensorDtype dtypes[] = {nn::TensorDtype::kFloat32,
                                    nn::TensorDtype::kBf16,
                                    nn::TensorDtype::kInt8};

  for (const int64_t n : entity_counts) {
    common::Rng rng(options.seed + static_cast<uint64_t>(n));
    const int64_t clusters =
        std::min(std::max<int64_t>(options.clusters, 1), n);
    const auto centers = UnitCenters(rng, clusters, dim);
    auto store = serve::EmbeddingStore::FromRows(
        n, dim, MixtureRows(rng, centers, clusters, n, dim, options.noise));
    const auto queries =
        MixtureRows(rng, centers, clusters, num_queries, dim, options.noise);

    QuantBenchCase bench_case;
    bench_case.entities = n;
    bench_case.dim = dim;
    bench_case.k = std::min(options.k, n);
    const int64_t k = bench_case.k;

    // fp32 ground truth once, from the single-threaded exact reference —
    // the baseline every dtype's recall and Hits@1 are measured against.
    serve::TopKRetriever fp32_brute(&store);
    const auto truth =
        fp32_brute.RetrieveBruteForce(queries.data(), num_queries, k);
    const auto truth_ids = IdsOf(truth);
    const int64_t fp32_bytes =
        static_cast<int64_t>(store.Snapshot().MemoryBytes());

    // Full-precision refinement source: the fp32 table as a checkpoint on
    // disk, read row-by-row during stage 2 — the deployment shape where
    // only the int8 table is memory-resident. The in-memory snapshot
    // source is value-identical (checked below) and stands in for the
    // file in the exact-mode sweep, which touches every row per query.
    const std::string source_path =
        "/tmp/desalign_quant_bench_" + std::to_string(::getpid()) + "_" +
        std::to_string(n) + ".dckpt";
    DESALIGN_CHECK(store.Save(source_path).ok());
    auto opened = serve::CheckpointRowSource::Open(source_path);
    DESALIGN_CHECK(opened.ok());
    const serve::CheckpointRowSource ckpt_source = std::move(opened).value();
    const serve::SnapshotRowSource fp32_rows(store.Snapshot());
    {
      std::vector<float> from_file(static_cast<size_t>(dim));
      std::vector<float> from_snap(static_cast<size_t>(dim));
      for (const int64_t r : {int64_t{0}, n / 2, n - 1}) {
        DESALIGN_CHECK(ckpt_source.Row(r, from_file.data()));
        DESALIGN_CHECK(fp32_rows.Row(r, from_snap.data()));
        DESALIGN_CHECK(from_file == from_snap);
      }
    }

    for (const nn::TensorDtype dtype : dtypes) {
      auto quantized = store.Quantize(dtype);
      DESALIGN_CHECK(quantized.ok());
      serve::EmbeddingStore qstore = std::move(quantized.value());

      QuantBenchDtype out;
      out.dtype = nn::DtypeName(dtype);
      out.table_bytes = static_cast<int64_t>(qstore.Snapshot().MemoryBytes());
      out.memory_reduction = out.table_bytes > 0
                                 ? static_cast<double>(fp32_bytes) /
                                       static_cast<double>(out.table_bytes)
                                 : 0.0;

      // Measured path: the production configuration — for int8, the
      // integer candidate scan plus a stage-2 re-rank refined from the
      // on-disk fp32 checkpoint; a single exact pass otherwise.
      const bool is_int8 = dtype == nn::TensorDtype::kInt8;
      serve::TopKOptions topk_options;
      topk_options.rerank_candidates = options.rerank_candidates;
      if (is_int8) topk_options.rerank_source = &ckpt_source;
      serve::TopKRetriever retriever(&qstore, topk_options);
      out.rerank_candidates =
          is_int8 ? serve::ResolveRerankCandidates(options.rerank_candidates,
                                                   k, n)
                  : 0;

      const auto got = retriever.Retrieve(queries.data(), num_queries, k);
      const auto got_ids = IdsOf(got);
      out.recall_at_k = eval::MeanRecallAtK(truth_ids, got_ids);
      out.hits_at_1 = eval::HitsAt1Agreement(truth_ids, got_ids);
      out.hits_at_1_delta = 1.0 - out.hits_at_1;
      if (is_int8) {
        // The self-contained configuration (stage-2 over dequantized
        // rows): what a deployment without the source checkpoint gets.
        serve::TopKOptions raw_options;
        raw_options.rerank_candidates = options.rerank_candidates;
        serve::TopKRetriever raw(&qstore, raw_options);
        out.recall_at_k_raw = eval::MeanRecallAtK(
            truth_ids, IdsOf(raw.Retrieve(queries.data(), num_queries, k)));
      } else {
        out.recall_at_k_raw = out.recall_at_k;
      }

      // Determinism gate: exact mode (re-rank all rows) must byte-equal
      // the dequantized brute-force reference over the same table.
      serve::TopKOptions exact_options;
      exact_options.rerank_candidates = -1;
      serve::TopKRetriever exact(&qstore, exact_options);
      out.bitexact_full =
          BitExact(exact.Retrieve(queries.data(), num_queries, k),
                   exact.RetrieveBruteForce(queries.data(), num_queries, k));
      if (is_int8) {
        // Stronger gate: exact mode refined with fp32 rows IS the fp32
        // baseline's brute force, bit for bit.
        serve::TopKOptions refined_exact_options;
        refined_exact_options.rerank_candidates = -1;
        refined_exact_options.rerank_source = &fp32_rows;
        serve::TopKRetriever refined_exact(&qstore, refined_exact_options);
        out.refined_exact_matches_fp32 = BitExact(
            refined_exact.Retrieve(queries.data(), num_queries, k), truth);
      }

      const bench::LatencyStats stats = bench::MeasureLatency(
          [&](const float* q, int64_t b, int64_t kk) {
            return retriever.Retrieve(q, b, kk);
          },
          queries.data(), num_queries, dim, k);
      out.mean_ms = stats.mean_ms;
      out.p50_ms = stats.p50_ms;
      out.p99_ms = stats.p99_ms;
      out.qps = stats.qps;

      bench_case.dtypes.push_back(std::move(out));
    }
    std::remove(source_path.c_str());
    report.cases.push_back(std::move(bench_case));

    obs::MetricsRegistry::Global()
        .GetGauge("quant.recall_at_k")
        .Set(report.cases.back().dtypes.back().recall_at_k);
  }
  return report;
}

}  // namespace desalign::index
