#ifndef DESALIGN_INDEX_INDEX_BENCH_H_
#define DESALIGN_INDEX_INDEX_BENCH_H_

#include <cstdint>
#include <string>
#include <vector>

namespace desalign::index {

/// Entity-count sweep comparing brute-force retrieval against the IVF
/// index on clustered synthetic embeddings (a mixture around random unit
/// centers — uniform noise has no cluster structure for an IVF to find,
/// which would make every recall number meaningless).
struct IndexBenchOptions {
  std::vector<int64_t> entity_counts = {10000, 100000, 1000000};
  int64_t dim = 64;
  int64_t queries = 256;  ///< per case; latency is measured per query
  int64_t k = 10;
  int64_t nprobe = 8;         ///< probe width of the partial-probe path
  int64_t num_centroids = 0;  ///< 0 = auto (~sqrt(n))
  int num_shards = 4;
  int64_t clusters = 256;  ///< mixture components in the synthetic data
  double noise = 0.25;     ///< per-coordinate noise amplitude
  uint64_t seed = 20240808;
  /// CI mode: only the smallest entity count, fewer queries.
  bool smoke = false;
};

/// One measured retrieval path within a case. `path` is "brute"
/// (TopKRetriever), "ivf_full" (nprobe = num_centroids; must be bit-exact
/// vs brute) or "ivf_partial" (options.nprobe).
struct IndexBenchPath {
  std::string path;
  int64_t nprobe = 0;  ///< 0 for brute
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double qps = 0.0;
  double recall_at_k = 0.0;      ///< vs brute-force ground truth
  bool bitexact = false;         ///< ids AND scores byte-equal to brute
  double mean_candidates = 0.0;  ///< exactly-scored entities per query
};

struct IndexBenchCase {
  int64_t entities = 0;
  int64_t dim = 0;
  int64_t k = 0;
  int64_t num_centroids = 0;
  int shards = 0;
  double build_ms = 0.0;
  std::vector<IndexBenchPath> paths;
};

struct IndexBenchReport {
  std::vector<IndexBenchCase> cases;
  /// Schema desalign.index_bench.v1; validated by tools/ci.sh.
  std::string ToJson() const;
};

IndexBenchReport RunIndexBench(const IndexBenchOptions& options);

}  // namespace desalign::index

#endif  // DESALIGN_INDEX_INDEX_BENCH_H_
