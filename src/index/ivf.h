#ifndef DESALIGN_INDEX_IVF_H_
#define DESALIGN_INDEX_IVF_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "index/kmeans.h"
#include "obs/metrics.h"
#include "serve/embedding_store.h"
#include "serve/retriever.h"
#include "serve/stats.h"
#include "serve/topk.h"

namespace desalign::index {

struct IvfOptions {
  /// Coarse-quantizer cells; 0 = auto (~sqrt(n), clamped to [1, n]).
  int64_t num_centroids = 0;
  /// Cells probed per query by the Retriever-interface Retrieve; clamped
  /// to [1, num_centroids]. nprobe == num_centroids scans every list and
  /// is byte-identical to brute force.
  int64_t nprobe = 8;
  int kmeans_iterations = 8;
  /// Rows sampled for k-means training (0 = all); keeps build time flat
  /// in the table size.
  int64_t kmeans_sample_rows = 65536;
  uint64_t seed = common::Rng::kDefaultSeed;
  /// Inverted lists are split into this many contiguous-entity-range
  /// shards, built in parallel; clamped to [1, n]. Shard contents are
  /// independent of the shard count, so results are too.
  int num_shards = 4;
  common::ThreadPool* pool = nullptr;  ///< null = ThreadPool::Global()
  /// Registry for `index.*` metrics; null = MetricsRegistry::Global().
  obs::MetricsRegistry* registry = nullptr;
  /// int8 tables: stage-2 candidates kept by the integer scan per probed
  /// set before the exact fp32 re-rank; same policy as
  /// serve::TopKOptions::rerank_candidates (0 auto, >0 explicit, <0 all).
  int64_t rerank_candidates = 0;
  /// Probe width served while the overload governor has the queue at
  /// DegradationLevel::kReducedProbe or below; 0 = auto
  /// (max(1, nprobe / 4)). Clamped to [1, nprobe] — degrading never scans
  /// more than the configured probe.
  int64_t degraded_nprobe = 0;
};

/// Two-stage deterministic ANN retriever: a k-means coarse quantizer
/// buckets entities into per-shard inverted lists (stage 1); a query
/// probes its `nprobe` nearest centroids and the surviving candidates are
/// re-ranked with the exact shared scorer (stage 2, serve/scoring.h).
///
/// Determinism: the candidate set for a query is a pure function of
/// (table bits, options) — seeded k-means, fixed iterations, id-ascending
/// tie-breaks — and the re-rank uses the same Dot kernel and total order
/// as TopKRetriever. Therefore results are bit-identical across thread
/// counts and shard counts, and at full probe (nprobe = num_centroids)
/// byte-identical to TopKRetriever::RetrieveBruteForce. Partial probe
/// trades recall for latency; see docs/SERVING.md for tuning.
///
/// Reload: ReloadAndRebuild chains the store's validate-before-swap
/// Reload with an index rebuild; queries in flight keep the previous
/// (snapshot, lists) pair, which stays internally consistent because a
/// build captures its own EmbeddingSnapshot. A failed reload leaves both
/// the store and the index serving the last-good table.
///
/// Quantized tables: list building and the coarse quantizer read rows
/// through EmbeddingSnapshot::RowAsFloat (fixed-order scalar
/// dequantization), so cell assignment is dtype-deterministic. For int8
/// tables the probed lists are first scanned with the integer scorer and
/// only the best `rerank_candidates` survivors are re-ranked in fp32; at
/// full probe with rerank_candidates < 0 this is again byte-identical to
/// RetrieveBruteForce over the same table.
///
/// Metrics (`index.*`): builds, build_ms, queries, probes,
/// candidates_per_query; plus `quant.int8_queries` /
/// `quant.rerank_candidates` when the table is int8.
class IvfRetriever final : public serve::Retriever {
 public:
  /// Builds the index from the store's current snapshot; `store` must
  /// outlive the retriever.
  explicit IvfRetriever(serve::EmbeddingStore* store, IvfOptions options = {});

  /// Re-snapshots the store and rebuilds quantizer + inverted lists, then
  /// publishes the new index in one swap.
  void Rebuild();

  /// Validate-before-swap reload of the backing store followed by a
  /// rebuild. On failure the previous store table *and* index stay live.
  common::Status ReloadAndRebuild(const std::string& path,
                                  const serve::ReloadOptions& options = {},
                                  serve::ServeStats* stats = nullptr);

  /// Retriever interface: probes options.nprobe cells.
  std::vector<serve::TopKResult> Retrieve(const float* queries,
                                          int64_t num_queries,
                                          int64_t k) const override;

  /// Same with an explicit probe width (clamped to [1, num_centroids]).
  std::vector<serve::TopKResult> RetrieveWithProbe(const float* queries,
                                                   int64_t num_queries,
                                                   int64_t k,
                                                   int64_t nprobe) const;

  /// Overload ladder: any rung at or past kReducedProbe probes
  /// `degraded_nprobe` cells instead of `nprobe` — recall dips, the scan
  /// shrinks, and results return to bit-identical full quality as soon as
  /// the governor steps back to kNone (the index itself is untouched).
  std::vector<serve::TopKResult> RetrieveDegraded(
      const float* queries, int64_t num_queries, int64_t k,
      serve::DegradationLevel level) const override;

  int64_t dim() const override;
  int64_t size() const override;

  /// Cells in the current index (resolved from options and table size).
  int64_t num_centroids() const;
  int num_shards() const;
  double last_build_ms() const;

 private:
  /// One shard: inverted lists for the contiguous entity range
  /// [begin, end), stored CSR-style. entries under one list are ascending
  /// entity ids (the build scans rows in order), and a range's lists are
  /// independent of how many shards the table was cut into.
  struct Shard {
    int64_t begin = 0;
    int64_t end = 0;
    std::vector<int64_t> list_start;  ///< num_centroids + 1 offsets
    std::vector<int64_t> entries;     ///< entity ids grouped by centroid
  };

  /// An immutable built index: the exact table snapshot it indexes plus
  /// the quantizer and lists derived from it. Swapped whole, so a query
  /// never sees lists from one table and rows from another.
  struct Built {
    serve::EmbeddingSnapshot snap;
    KMeansModel coarse;
    std::vector<Shard> shards;
    double build_ms = 0.0;
  };

  std::shared_ptr<const Built> Current() const;

  serve::EmbeddingStore* store_;
  IvfOptions options_;

  obs::Counter* builds_;             // owned by the registry
  obs::Gauge* build_ms_;             // owned by the registry
  obs::Counter* queries_;            // owned by the registry
  obs::Counter* probes_;             // owned by the registry
  obs::Histogram* candidates_;       // owned by the registry
  obs::Counter* int8_queries_;       // owned by the registry
  obs::Histogram* rerank_width_;     // owned by the registry

  mutable common::Mutex mutex_;
  std::shared_ptr<const Built> built_ GUARDED_BY(mutex_);
};

/// Which Retriever implementation serve should run.
enum class RetrieverKind { kBruteForce, kIvf };

/// Parses "brute" / "ivf" (the --index CLI flag).
common::Result<RetrieverKind> ParseRetrieverKind(const std::string& name);

struct RetrieverConfig {
  RetrieverKind kind = RetrieverKind::kBruteForce;
  serve::TopKOptions topk;  ///< used when kind == kBruteForce
  IvfOptions ivf;           ///< used when kind == kIvf
};

/// Config-driven factory so serving picks brute force vs IVF without
/// compile-time knowledge of either.
std::unique_ptr<serve::Retriever> MakeRetriever(serve::EmbeddingStore* store,
                                                const RetrieverConfig& config);

}  // namespace desalign::index

#endif  // DESALIGN_INDEX_IVF_H_
