#ifndef DESALIGN_INDEX_KMEANS_H_
#define DESALIGN_INDEX_KMEANS_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "serve/embedding_store.h"

namespace desalign::index {

/// Configuration for the coarse quantizer. Every field that influences
/// the result is explicit — there is no hidden state — so the same
/// (table, options) pair always trains bit-identical centroids.
struct KMeansOptions {
  int64_t num_centroids = 16;  ///< clamped to [1, rows]
  /// Fixed Lloyd iteration count — no convergence test, because an
  /// epsilon-based stop would make the trained quantizer depend on float
  /// noise. Diminishing returns past ~10 for coarse quantization.
  int iterations = 8;
  uint64_t seed = common::Rng::kDefaultSeed;
  /// Rows used for training; 0 = all rows. Capping keeps build time flat
  /// as the table grows — centroid quality needs a sample, not the corpus.
  int64_t sample_rows = 0;
  common::ThreadPool* pool = nullptr;  ///< null = ThreadPool::Global()
};

/// A trained coarse quantizer: `num_centroids` x `dim` row-major centroid
/// matrix. Immutable after TrainKMeans returns.
struct KMeansModel {
  int64_t num_centroids = 0;
  int64_t dim = 0;
  std::vector<float> centroids;
};

/// Nearest centroid of `x` by squared L2 distance, scanning centroids in
/// ascending id order with a strictly-less update — exact score ties
/// break toward the smaller centroid id, the same tie rule the probe
/// stage uses, so assignment and probing agree bit-for-bit.
int64_t NearestCentroid(const KMeansModel& model, const float* x);

/// Deterministic Lloyd's k-means over the rows of `table`.
///
/// Determinism contract (tested across thread counts):
///  - initial centroids are `num_centroids` distinct rows sampled with
///    `common::Rng(seed)`;
///  - assignment is embarrassingly parallel (each row's nearest centroid
///    is independent) and runs on the pool;
///  - the update step accumulates rows into per-centroid sums serially in
///    ascending row order with double precision, so the reduction order —
///    and therefore every centroid bit — is independent of the thread
///    count;
///  - centroids that attract no rows keep their previous position.
KMeansModel TrainKMeans(const serve::EmbeddingSnapshot& table,
                        const KMeansOptions& options);

}  // namespace desalign::index

#endif  // DESALIGN_INDEX_KMEANS_H_
