#ifndef DESALIGN_INDEX_BENCH_UTIL_H_
#define DESALIGN_INDEX_BENCH_UTIL_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "serve/embedding_store.h"
#include "serve/retriever.h"

namespace desalign::index::bench {

/// Shared plumbing for the index and quantization benches: clustered
/// synthetic data (uniform noise has no structure for an IVF to find, and
/// no near-duplicate neighbours for quantization to confuse — both would
/// make the measured numbers meaningless), per-query latency measurement,
/// and result comparison.

using RetrieveFn = std::function<std::vector<serve::TopKResult>(
    const float*, int64_t, int64_t)>;

inline std::vector<float> UnitCenters(common::Rng& rng, int64_t clusters,
                                      int64_t dim) {
  std::vector<float> centers(static_cast<size_t>(clusters * dim));
  for (auto& v : centers) v = rng.UniformF(-1.0f, 1.0f);
  serve::L2NormalizeRows(centers.data(), clusters, dim);
  return centers;
}

inline std::vector<float> MixtureRows(common::Rng& rng,
                                      const std::vector<float>& centers,
                                      int64_t clusters, int64_t n,
                                      int64_t dim, double noise) {
  std::vector<float> rows(static_cast<size_t>(n * dim));
  const auto amp = static_cast<float>(noise);
  for (int64_t i = 0; i < n; ++i) {
    const float* center = centers.data() + rng.UniformInt(clusters) * dim;
    float* row = rows.data() + i * dim;
    for (int64_t j = 0; j < dim; ++j) {
      row[j] = center[j] + amp * rng.UniformF(-1.0f, 1.0f);
    }
  }
  return rows;
}

struct LatencyStats {
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double qps = 0.0;
};

/// Issues the queries one by one (batch of 1, the online-serving shape).
inline LatencyStats MeasureLatency(const RetrieveFn& retrieve,
                                   const float* queries, int64_t num_queries,
                                   int64_t dim, int64_t k) {
  std::vector<double> ms(static_cast<size_t>(num_queries));
  common::Stopwatch total;
  for (int64_t i = 0; i < num_queries; ++i) {
    common::Stopwatch clock;
    const auto result = retrieve(queries + i * dim, 1, k);
    ms[static_cast<size_t>(i)] = clock.ElapsedMillis();
    DESALIGN_CHECK_EQ(static_cast<int64_t>(result.size()), 1);
  }
  const double total_s = total.ElapsedSeconds();
  double sum = 0.0;
  for (const double v : ms) sum += v;
  std::sort(ms.begin(), ms.end());
  const auto at = [&](double q) {
    const auto idx =
        static_cast<size_t>(q * static_cast<double>(num_queries - 1));
    return ms[idx];
  };
  LatencyStats stats;
  stats.mean_ms = sum / static_cast<double>(num_queries);
  stats.p50_ms = at(0.5);
  stats.p99_ms = at(0.99);
  stats.qps =
      total_s > 0.0 ? static_cast<double>(num_queries) / total_s : 0.0;
  return stats;
}

/// ids AND scores byte-equal — the determinism-contract comparison.
inline bool BitExact(const std::vector<serve::TopKResult>& a,
                     const std::vector<serve::TopKResult>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].ids != b[i].ids || a[i].scores != b[i].scores) return false;
  }
  return true;
}

/// Per-query id lists, the shape eval::MeanRecallAtK / HitsAt1Agreement
/// consume.
inline std::vector<std::vector<int64_t>> IdsOf(
    const std::vector<serve::TopKResult>& results) {
  std::vector<std::vector<int64_t>> ids;
  ids.reserve(results.size());
  for (const auto& r : results) ids.push_back(r.ids);
  return ids;
}

inline std::string JsonNum(double v) {
  std::ostringstream os;
  os.precision(6);
  os << v;
  return os.str();
}

}  // namespace desalign::index::bench

#endif  // DESALIGN_INDEX_BENCH_UTIL_H_
