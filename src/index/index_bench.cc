#include "index/index_bench.h"

#include <algorithm>
#include <functional>
#include <sstream>
#include <utility>

#include "common/check.h"
#include "common/rng.h"
#include "eval/retrieval_metrics.h"
#include "index/bench_util.h"
#include "index/ivf.h"
#include "obs/metrics.h"
#include "serve/embedding_store.h"
#include "serve/topk.h"

namespace desalign::index {

namespace {

using bench::BitExact;
using bench::JsonNum;
using bench::MixtureRows;
using bench::UnitCenters;
using serve::TopKResult;

double MeanRecall(const std::vector<TopKResult>& truth,
                  const std::vector<TopKResult>& got) {
  return eval::MeanRecallAtK(bench::IdsOf(truth), bench::IdsOf(got));
}

void FillLatency(const bench::LatencyStats& stats, IndexBenchPath* out) {
  out->mean_ms = stats.mean_ms;
  out->p50_ms = stats.p50_ms;
  out->p99_ms = stats.p99_ms;
  out->qps = stats.qps;
}

}  // namespace

std::string IndexBenchReport::ToJson() const {
  std::ostringstream os;
  os << "{\"schema\":\"desalign.index_bench.v1\",\"cases\":[";
  for (size_t i = 0; i < cases.size(); ++i) {
    const auto& c = cases[i];
    if (i) os << ",";
    os << "{\"entities\":" << c.entities << ",\"dim\":" << c.dim
       << ",\"k\":" << c.k << ",\"num_centroids\":" << c.num_centroids
       << ",\"shards\":" << c.shards
       << ",\"build_ms\":" << JsonNum(c.build_ms) << ",\"paths\":[";
    for (size_t j = 0; j < c.paths.size(); ++j) {
      const auto& p = c.paths[j];
      if (j) os << ",";
      os << "{\"path\":\"" << p.path << "\",\"nprobe\":" << p.nprobe
         << ",\"mean_ms\":" << JsonNum(p.mean_ms)
         << ",\"p50_ms\":" << JsonNum(p.p50_ms)
         << ",\"p99_ms\":" << JsonNum(p.p99_ms)
         << ",\"qps\":" << JsonNum(p.qps)
         << ",\"recall_at_k\":" << JsonNum(p.recall_at_k)
         << ",\"bitexact\":" << (p.bitexact ? "true" : "false")
         << ",\"mean_candidates\":" << JsonNum(p.mean_candidates) << "}";
    }
    os << "]}";
  }
  os << "]}";
  return os.str();
}

IndexBenchReport RunIndexBench(const IndexBenchOptions& options) {
  IndexBenchReport report;
  std::vector<int64_t> entity_counts = options.entity_counts;
  if (options.smoke && !entity_counts.empty()) {
    entity_counts = {*std::min_element(entity_counts.begin(),
                                       entity_counts.end())};
  }
  const int64_t num_queries =
      std::max<int64_t>(options.smoke ? std::min<int64_t>(options.queries, 128)
                                      : options.queries,
                        1);
  const int64_t dim = std::max<int64_t>(options.dim, 4);

  for (const int64_t n : entity_counts) {
    common::Rng rng(options.seed + static_cast<uint64_t>(n));
    const int64_t clusters =
        std::min(std::max<int64_t>(options.clusters, 1), n);
    const auto centers = UnitCenters(rng, clusters, dim);
    auto store = serve::EmbeddingStore::FromRows(
        n, dim, MixtureRows(rng, centers, clusters, n, dim, options.noise));
    const auto queries =
        MixtureRows(rng, centers, clusters, num_queries, dim, options.noise);

    IndexBenchCase bench_case;
    bench_case.entities = n;
    bench_case.dim = dim;
    bench_case.k = std::min(options.k, n);

    // A case-local registry keeps index.* counters attributable to one
    // (path, entity count) pair; the recall gauge is mirrored globally.
    obs::MetricsRegistry registry;
    obs::Histogram& candidates =
        registry.GetHistogram("index.candidates_per_query");

    serve::TopKRetriever brute(&store);
    IvfOptions ivf_options;
    ivf_options.num_centroids = options.num_centroids;
    ivf_options.nprobe = options.nprobe;
    ivf_options.num_shards = options.num_shards;
    ivf_options.seed = options.seed;
    ivf_options.registry = &registry;
    IvfRetriever ivf(&store, ivf_options);
    bench_case.num_centroids = ivf.num_centroids();
    bench_case.shards = ivf.num_shards();
    bench_case.build_ms = ivf.last_build_ms();

    // Ground truth once, from the single-threaded exact reference.
    const auto truth =
        brute.RetrieveBruteForce(queries.data(), num_queries, bench_case.k);

    {
      IndexBenchPath path;
      path.path = "brute";
      path.recall_at_k = 1.0;
      path.bitexact = true;
      path.mean_candidates = static_cast<double>(n);
      FillLatency(bench::MeasureLatency(
                      [&](const float* q, int64_t b, int64_t k) {
                        return brute.Retrieve(q, b, k);
                      },
                      queries.data(), num_queries, dim, bench_case.k),
                  &path);
      bench_case.paths.push_back(std::move(path));
    }

    const auto measure_ivf = [&](const std::string& name, int64_t nprobe) {
      IndexBenchPath path;
      path.path = name;
      path.nprobe = std::min(std::max<int64_t>(nprobe, 1),
                             std::max<int64_t>(ivf.num_centroids(), 1));
      const auto got = ivf.RetrieveWithProbe(queries.data(), num_queries,
                                             bench_case.k, path.nprobe);
      path.recall_at_k = MeanRecall(truth, got);
      path.bitexact = BitExact(truth, got);
      candidates.Reset();
      FillLatency(bench::MeasureLatency(
                      [&](const float* q, int64_t b, int64_t k) {
                        return ivf.RetrieveWithProbe(q, b, k, path.nprobe);
                      },
                      queries.data(), num_queries, dim, bench_case.k),
                  &path);
      const auto snapshot = candidates.Snapshot();
      path.mean_candidates = snapshot.mean;
      const double recall = path.recall_at_k;
      bench_case.paths.push_back(std::move(path));
      return recall;
    };

    measure_ivf("ivf_full", ivf.num_centroids());
    const double partial_recall = measure_ivf("ivf_partial", options.nprobe);
    registry.GetGauge("index.recall_at_k").Set(partial_recall);
    obs::MetricsRegistry::Global()
        .GetGauge("index.recall_at_k")
        .Set(partial_recall);

    report.cases.push_back(std::move(bench_case));
  }
  return report;
}

}  // namespace desalign::index
