#include "index/index_bench.h"

#include <algorithm>
#include <functional>
#include <sstream>
#include <utility>

#include "common/check.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "index/ivf.h"
#include "obs/metrics.h"
#include "serve/embedding_store.h"
#include "serve/topk.h"

namespace desalign::index {

namespace {

using serve::TopKResult;

using RetrieveFn =
    std::function<std::vector<TopKResult>(const float*, int64_t, int64_t)>;

std::vector<float> UnitCenters(common::Rng& rng, int64_t clusters,
                               int64_t dim) {
  std::vector<float> centers(static_cast<size_t>(clusters * dim));
  for (auto& v : centers) v = rng.UniformF(-1.0f, 1.0f);
  serve::L2NormalizeRows(centers.data(), clusters, dim);
  return centers;
}

std::vector<float> MixtureRows(common::Rng& rng,
                               const std::vector<float>& centers,
                               int64_t clusters, int64_t n, int64_t dim,
                               double noise) {
  std::vector<float> rows(static_cast<size_t>(n * dim));
  const auto amp = static_cast<float>(noise);
  for (int64_t i = 0; i < n; ++i) {
    const float* center = centers.data() + rng.UniformInt(clusters) * dim;
    float* row = rows.data() + i * dim;
    for (int64_t j = 0; j < dim; ++j) {
      row[j] = center[j] + amp * rng.UniformF(-1.0f, 1.0f);
    }
  }
  return rows;
}

/// Issues the queries one by one (batch of 1, the online-serving shape)
/// and fills mean/p50/p99/qps on `out`.
void MeasureLatency(const RetrieveFn& retrieve, const float* queries,
                    int64_t num_queries, int64_t dim, int64_t k,
                    IndexBenchPath* out) {
  std::vector<double> ms(static_cast<size_t>(num_queries));
  common::Stopwatch total;
  for (int64_t i = 0; i < num_queries; ++i) {
    common::Stopwatch clock;
    const auto result = retrieve(queries + i * dim, 1, k);
    ms[static_cast<size_t>(i)] = clock.ElapsedMillis();
    DESALIGN_CHECK_EQ(static_cast<int64_t>(result.size()), 1);
  }
  const double total_s = total.ElapsedSeconds();
  double sum = 0.0;
  for (const double v : ms) sum += v;
  std::sort(ms.begin(), ms.end());
  const auto at = [&](double q) {
    const auto idx = static_cast<size_t>(
        q * static_cast<double>(num_queries - 1));
    return ms[idx];
  };
  out->mean_ms = sum / static_cast<double>(num_queries);
  out->p50_ms = at(0.5);
  out->p99_ms = at(0.99);
  out->qps = total_s > 0.0 ? static_cast<double>(num_queries) / total_s : 0.0;
}

double MeanRecall(const std::vector<TopKResult>& truth,
                  const std::vector<TopKResult>& got) {
  DESALIGN_CHECK_EQ(truth.size(), got.size());
  if (truth.empty()) return 1.0;
  double total = 0.0;
  for (size_t i = 0; i < truth.size(); ++i) {
    if (truth[i].ids.empty()) {
      total += 1.0;
      continue;
    }
    // Both id lists are small (k entries); count the overlap directly.
    int64_t hit = 0;
    for (const int64_t id : got[i].ids) {
      if (std::find(truth[i].ids.begin(), truth[i].ids.end(), id) !=
          truth[i].ids.end()) {
        ++hit;
      }
    }
    total += static_cast<double>(hit) /
             static_cast<double>(truth[i].ids.size());
  }
  return total / static_cast<double>(truth.size());
}

bool BitExact(const std::vector<TopKResult>& a,
              const std::vector<TopKResult>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].ids != b[i].ids || a[i].scores != b[i].scores) return false;
  }
  return true;
}

std::string JsonNum(double v) {
  std::ostringstream os;
  os.precision(6);
  os << v;
  return os.str();
}

}  // namespace

std::string IndexBenchReport::ToJson() const {
  std::ostringstream os;
  os << "{\"schema\":\"desalign.index_bench.v1\",\"cases\":[";
  for (size_t i = 0; i < cases.size(); ++i) {
    const auto& c = cases[i];
    if (i) os << ",";
    os << "{\"entities\":" << c.entities << ",\"dim\":" << c.dim
       << ",\"k\":" << c.k << ",\"num_centroids\":" << c.num_centroids
       << ",\"shards\":" << c.shards
       << ",\"build_ms\":" << JsonNum(c.build_ms) << ",\"paths\":[";
    for (size_t j = 0; j < c.paths.size(); ++j) {
      const auto& p = c.paths[j];
      if (j) os << ",";
      os << "{\"path\":\"" << p.path << "\",\"nprobe\":" << p.nprobe
         << ",\"mean_ms\":" << JsonNum(p.mean_ms)
         << ",\"p50_ms\":" << JsonNum(p.p50_ms)
         << ",\"p99_ms\":" << JsonNum(p.p99_ms)
         << ",\"qps\":" << JsonNum(p.qps)
         << ",\"recall_at_k\":" << JsonNum(p.recall_at_k)
         << ",\"bitexact\":" << (p.bitexact ? "true" : "false")
         << ",\"mean_candidates\":" << JsonNum(p.mean_candidates) << "}";
    }
    os << "]}";
  }
  os << "]}";
  return os.str();
}

IndexBenchReport RunIndexBench(const IndexBenchOptions& options) {
  IndexBenchReport report;
  std::vector<int64_t> entity_counts = options.entity_counts;
  if (options.smoke && !entity_counts.empty()) {
    entity_counts = {*std::min_element(entity_counts.begin(),
                                       entity_counts.end())};
  }
  const int64_t num_queries =
      std::max<int64_t>(options.smoke ? std::min<int64_t>(options.queries, 128)
                                      : options.queries,
                        1);
  const int64_t dim = std::max<int64_t>(options.dim, 4);

  for (const int64_t n : entity_counts) {
    common::Rng rng(options.seed + static_cast<uint64_t>(n));
    const int64_t clusters =
        std::min(std::max<int64_t>(options.clusters, 1), n);
    const auto centers = UnitCenters(rng, clusters, dim);
    auto store = serve::EmbeddingStore::FromRows(
        n, dim, MixtureRows(rng, centers, clusters, n, dim, options.noise));
    const auto queries =
        MixtureRows(rng, centers, clusters, num_queries, dim, options.noise);

    IndexBenchCase bench_case;
    bench_case.entities = n;
    bench_case.dim = dim;
    bench_case.k = std::min(options.k, n);

    // A case-local registry keeps index.* counters attributable to one
    // (path, entity count) pair; the recall gauge is mirrored globally.
    obs::MetricsRegistry registry;
    obs::Histogram& candidates =
        registry.GetHistogram("index.candidates_per_query");

    serve::TopKRetriever brute(&store);
    IvfOptions ivf_options;
    ivf_options.num_centroids = options.num_centroids;
    ivf_options.nprobe = options.nprobe;
    ivf_options.num_shards = options.num_shards;
    ivf_options.seed = options.seed;
    ivf_options.registry = &registry;
    IvfRetriever ivf(&store, ivf_options);
    bench_case.num_centroids = ivf.num_centroids();
    bench_case.shards = ivf.num_shards();
    bench_case.build_ms = ivf.last_build_ms();

    // Ground truth once, from the single-threaded exact reference.
    const auto truth =
        brute.RetrieveBruteForce(queries.data(), num_queries, bench_case.k);

    {
      IndexBenchPath path;
      path.path = "brute";
      path.recall_at_k = 1.0;
      path.bitexact = true;
      path.mean_candidates = static_cast<double>(n);
      MeasureLatency(
          [&](const float* q, int64_t b, int64_t k) {
            return brute.Retrieve(q, b, k);
          },
          queries.data(), num_queries, dim, bench_case.k, &path);
      bench_case.paths.push_back(std::move(path));
    }

    const auto measure_ivf = [&](const std::string& name, int64_t nprobe) {
      IndexBenchPath path;
      path.path = name;
      path.nprobe = std::min(std::max<int64_t>(nprobe, 1),
                             std::max<int64_t>(ivf.num_centroids(), 1));
      const auto got = ivf.RetrieveWithProbe(queries.data(), num_queries,
                                             bench_case.k, path.nprobe);
      path.recall_at_k = MeanRecall(truth, got);
      path.bitexact = BitExact(truth, got);
      candidates.Reset();
      MeasureLatency(
          [&](const float* q, int64_t b, int64_t k) {
            return ivf.RetrieveWithProbe(q, b, k, path.nprobe);
          },
          queries.data(), num_queries, dim, bench_case.k, &path);
      const auto snapshot = candidates.Snapshot();
      path.mean_candidates = snapshot.mean;
      const double recall = path.recall_at_k;
      bench_case.paths.push_back(std::move(path));
      return recall;
    };

    measure_ivf("ivf_full", ivf.num_centroids());
    const double partial_recall = measure_ivf("ivf_partial", options.nprobe);
    registry.GetGauge("index.recall_at_k").Set(partial_recall);
    obs::MetricsRegistry::Global()
        .GetGauge("index.recall_at_k")
        .Set(partial_recall);

    report.cases.push_back(std::move(bench_case));
  }
  return report;
}

}  // namespace desalign::index
