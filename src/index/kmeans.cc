#include "index/kmeans.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "serve/scoring.h"

namespace desalign::index {

namespace {

int64_t NearestOf(const float* x, const float* centroids, int64_t k,
                  int64_t dim) {
  int64_t best = 0;
  float best_dist = serve::scoring::SquaredL2(x, centroids, dim);
  for (int64_t c = 1; c < k; ++c) {
    // Strictly-less: on an exact distance tie the earlier (smaller id)
    // centroid wins, matching the probe stage's ordering contract.
    const float dist =
        serve::scoring::SquaredL2(x, centroids + c * dim, dim);
    if (dist < best_dist) {
      best = c;
      best_dist = dist;
    }
  }
  return best;
}

}  // namespace

int64_t NearestCentroid(const KMeansModel& model, const float* x) {
  DESALIGN_CHECK_GT(model.num_centroids, 0);
  return NearestOf(x, model.centroids.data(), model.num_centroids,
                   model.dim);
}

KMeansModel TrainKMeans(const serve::EmbeddingSnapshot& table,
                        const KMeansOptions& options) {
  KMeansModel model;
  model.dim = table.dim();
  const int64_t n = table.size();
  if (n <= 0) return model;
  const int64_t dim = table.dim();
  const int64_t k = std::min(std::max<int64_t>(options.num_centroids, 1), n);
  model.num_centroids = k;

  common::Rng rng(options.seed);
  // Training subset: a deterministic sample caps the per-iteration cost;
  // the quantizer only has to carve the space into balanced cells, which
  // a sample does as well as the full corpus.
  std::vector<int64_t> train_rows;
  if (options.sample_rows > 0 && options.sample_rows < n) {
    const int64_t sample = std::max(options.sample_rows, k);
    train_rows = rng.SampleWithoutReplacement(n, std::min(sample, n));
    std::sort(train_rows.begin(), train_rows.end());
  } else {
    train_rows.resize(static_cast<size_t>(n));
    for (int64_t r = 0; r < n; ++r) train_rows[static_cast<size_t>(r)] = r;
  }
  const int64_t t = static_cast<int64_t>(train_rows.size());

  // Initial centroids: k distinct training rows drawn from the seeded Rng.
  // Rows are read through RowAsFloat so quantized tables train the same
  // quantizer everywhere (dequantization is fixed-order scalar math).
  model.centroids.resize(static_cast<size_t>(k * dim));
  std::vector<float> scratch(static_cast<size_t>(dim));
  const std::vector<int64_t> init = rng.SampleWithoutReplacement(t, k);
  for (int64_t c = 0; c < k; ++c) {
    const float* src = table.RowAsFloat(
        train_rows[static_cast<size_t>(init[c])], scratch.data());
    std::copy(src, src + dim, model.centroids.data() + c * dim);
  }

  common::ThreadPool& pool =
      options.pool != nullptr ? *options.pool : common::ThreadPool::Global();
  std::vector<int64_t> assign(static_cast<size_t>(t));
  std::vector<double> sums(static_cast<size_t>(k * dim));
  std::vector<int64_t> counts(static_cast<size_t>(k));
  const int64_t grain =
      std::max<int64_t>(1, common::ThreadPool::GrainForCost(k * dim));

  for (int iter = 0; iter < options.iterations; ++iter) {
    // Assignment: per-row and order-free, so the pool may split it any
    // way — assign[i] is a pure function of (row i, centroids).
    pool.ParallelFor(
        0, t,
        [&](int64_t begin, int64_t end) {
          std::vector<float> chunk_scratch(static_cast<size_t>(dim));
          for (int64_t i = begin; i < end; ++i) {
            assign[static_cast<size_t>(i)] = NearestOf(
                table.RowAsFloat(train_rows[static_cast<size_t>(i)],
                                 chunk_scratch.data()),
                model.centroids.data(), k, dim);
          }
        },
        grain);

    // Update: serial accumulation in ascending row order. This is the
    // deterministic reduction — O(t * dim) adds, cheap next to the
    // O(t * k * dim) assignment above, and the double accumulators make
    // the final float cast stable.
    std::fill(sums.begin(), sums.end(), 0.0);
    std::fill(counts.begin(), counts.end(), 0);
    for (int64_t i = 0; i < t; ++i) {
      const int64_t c = assign[static_cast<size_t>(i)];
      const float* row = table.RowAsFloat(
          train_rows[static_cast<size_t>(i)], scratch.data());
      double* sum = sums.data() + c * dim;
      for (int64_t j = 0; j < dim; ++j) sum[j] += row[j];
      ++counts[static_cast<size_t>(c)];
    }
    for (int64_t c = 0; c < k; ++c) {
      const int64_t count = counts[static_cast<size_t>(c)];
      if (count == 0) continue;  // empty cell keeps its previous centroid
      const double inv = 1.0 / static_cast<double>(count);
      const double* sum = sums.data() + c * dim;
      float* centroid = model.centroids.data() + c * dim;
      for (int64_t j = 0; j < dim; ++j) {
        centroid[j] = static_cast<float>(sum[j] * inv);
      }
    }
  }
  return model;
}

}  // namespace desalign::index
