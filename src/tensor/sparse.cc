#include "tensor/sparse.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/check.h"
#include "common/thread_pool.h"

namespace desalign::tensor {

CsrMatrixPtr CsrMatrix::FromTriplets(int64_t rows, int64_t cols,
                                     std::vector<Triplet> triplets) {
  DESALIGN_CHECK_GT(rows, 0);
  DESALIGN_CHECK_GT(cols, 0);
  auto m = std::shared_ptr<CsrMatrix>(new CsrMatrix(rows, cols));
  // One pass validates bounds and counts entries per row; a second pass
  // buckets triplets by row (counting sort on the row index). Only the
  // within-row column sort remains comparison-based, so the build is
  // O(nnz + rows + sum_r nnz_r log nnz_r) instead of a global
  // O(nnz log nnz) sort. stable_sort keeps duplicate (row, col) entries in
  // insertion order, making the dedup summation order deterministic (the
  // previous global std::sort left it unspecified).
  m->row_ptr_.assign(static_cast<size_t>(rows) + 1, 0);
  for (const auto& t : triplets) {
    DESALIGN_CHECK(t.row >= 0 && t.row < rows);
    DESALIGN_CHECK(t.col >= 0 && t.col < cols);
    ++m->row_ptr_[static_cast<size_t>(t.row) + 1];
  }
  for (int64_t r = 0; r < rows; ++r) m->row_ptr_[r + 1] += m->row_ptr_[r];

  struct Entry {
    int64_t col;
    float value;
  };
  std::vector<Entry> entries(triplets.size());
  std::vector<int64_t> cursor(m->row_ptr_.begin(), m->row_ptr_.end() - 1);
  for (const auto& t : triplets) {
    entries[static_cast<size_t>(cursor[t.row]++)] = {t.col, t.value};
  }

  m->col_idx_.reserve(triplets.size());
  m->values_.reserve(triplets.size());
  std::vector<int64_t> dedup_counts(static_cast<size_t>(rows), 0);
  for (int64_t r = 0; r < rows; ++r) {
    const int64_t begin = m->row_ptr_[r];
    const int64_t end = m->row_ptr_[r + 1];
    std::stable_sort(entries.begin() + begin, entries.begin() + end,
                     [](const Entry& a, const Entry& b) {
                       return a.col < b.col;
                     });
    for (int64_t i = begin; i < end; ++i) {
      if (i > begin && entries[i].col == entries[i - 1].col &&
          !m->col_idx_.empty() && m->col_idx_.back() == entries[i].col) {
        m->values_.back() += entries[i].value;
      } else {
        m->col_idx_.push_back(entries[i].col);
        m->values_.push_back(entries[i].value);
        ++dedup_counts[r];
      }
    }
  }
  m->row_ptr_[0] = 0;
  for (int64_t r = 0; r < rows; ++r) {
    m->row_ptr_[r + 1] = m->row_ptr_[r] + dedup_counts[r];
  }
  return m;
}

CsrMatrixPtr CsrMatrix::Identity(int64_t n) {
  std::vector<Triplet> t(n);
  for (int64_t i = 0; i < n; ++i) t[i] = {i, i, 1.0f};
  return FromTriplets(n, n, std::move(t));
}

void CsrMatrix::Multiply(const float* x, int64_t k, float* y) const {
  std::memset(y, 0, sizeof(float) * static_cast<size_t>(rows_ * k));
  // Row-partitioned: each thread owns disjoint output rows, so the
  // accumulation order (and hence the float result) is fixed.
  common::ThreadPool::Global().ParallelFor(
      0, rows_,
      [&](int64_t row_begin, int64_t row_end) {
        for (int64_t r = row_begin; r < row_end; ++r) {
          float* yr = y + r * k;
          for (int64_t p = row_ptr_[r]; p < row_ptr_[r + 1]; ++p) {
            const float v = values_[p];
            const float* xc = x + col_idx_[p] * k;
            for (int64_t j = 0; j < k; ++j) yr[j] += v * xc[j];
          }
        }
      },
      /*grain=*/std::max<int64_t>(64, 16384 / std::max<int64_t>(1, k)));
}

CsrMatrixPtr CsrMatrix::Transpose() const {
  // Counting sort on the column index: O(nnz + cols) with no comparison
  // sort and no triplet round-trip. Scanning rows in ascending order means
  // each transposed row receives its entries with ascending column index,
  // so the output is already in canonical CSR form; values are moved
  // bit-unchanged.
  auto m = std::shared_ptr<CsrMatrix>(new CsrMatrix(cols_, rows_));
  m->row_ptr_.assign(static_cast<size_t>(cols_) + 1, 0);
  for (int64_t c : col_idx_) ++m->row_ptr_[static_cast<size_t>(c) + 1];
  for (int64_t c = 0; c < cols_; ++c) m->row_ptr_[c + 1] += m->row_ptr_[c];
  m->col_idx_.resize(values_.size());
  m->values_.resize(values_.size());
  std::vector<int64_t> cursor(m->row_ptr_.begin(), m->row_ptr_.end() - 1);
  for (int64_t r = 0; r < rows_; ++r) {
    for (int64_t p = row_ptr_[r]; p < row_ptr_[r + 1]; ++p) {
      const int64_t slot = cursor[col_idx_[p]]++;
      m->col_idx_[slot] = r;
      m->values_[slot] = values_[p];
    }
  }
  return m;
}

CsrMatrixPtr CsrMatrix::Add(const CsrMatrix& other, float alpha,
                            float beta) const {
  DESALIGN_CHECK_EQ(rows_, other.rows_);
  DESALIGN_CHECK_EQ(cols_, other.cols_);
  std::vector<Triplet> t;
  t.reserve(values_.size() + other.values_.size());
  for (int64_t r = 0; r < rows_; ++r) {
    for (int64_t p = row_ptr_[r]; p < row_ptr_[r + 1]; ++p) {
      t.push_back({r, col_idx_[p], alpha * values_[p]});
    }
    for (int64_t p = other.row_ptr_[r]; p < other.row_ptr_[r + 1]; ++p) {
      t.push_back({r, other.col_idx_[p], beta * other.values_[p]});
    }
  }
  return FromTriplets(rows_, cols_, std::move(t));
}

float CsrMatrix::At(int64_t row, int64_t col) const {
  DESALIGN_CHECK(row >= 0 && row < rows_);
  DESALIGN_CHECK(col >= 0 && col < cols_);
  auto begin = col_idx_.begin() + row_ptr_[row];
  auto end = col_idx_.begin() + row_ptr_[row + 1];
  auto it = std::lower_bound(begin, end, col);
  if (it != end && *it == col) {
    return values_[static_cast<size_t>(it - col_idx_.begin())];
  }
  return 0.0f;
}

std::vector<float> CsrMatrix::RowSums() const {
  std::vector<float> sums(rows_, 0.0f);
  for (int64_t r = 0; r < rows_; ++r) {
    for (int64_t p = row_ptr_[r]; p < row_ptr_[r + 1]; ++p) {
      sums[r] += values_[p];
    }
  }
  return sums;
}

CsrMatrixPtr CsrMatrix::SubMatrix(const std::vector<bool>& row_mask,
                                  const std::vector<bool>& col_mask) const {
  DESALIGN_CHECK_EQ(static_cast<int64_t>(row_mask.size()), rows_);
  DESALIGN_CHECK_EQ(static_cast<int64_t>(col_mask.size()), cols_);
  std::vector<int64_t> row_map(rows_, -1);
  std::vector<int64_t> col_map(cols_, -1);
  int64_t new_rows = 0;
  int64_t new_cols = 0;
  for (int64_t r = 0; r < rows_; ++r) {
    if (row_mask[r]) row_map[r] = new_rows++;
  }
  for (int64_t c = 0; c < cols_; ++c) {
    if (col_mask[c]) col_map[c] = new_cols++;
  }
  DESALIGN_CHECK_MSG(new_rows > 0 && new_cols > 0,
                     "SubMatrix selection is empty");
  std::vector<Triplet> t;
  for (int64_t r = 0; r < rows_; ++r) {
    if (row_map[r] < 0) continue;
    for (int64_t p = row_ptr_[r]; p < row_ptr_[r + 1]; ++p) {
      const int64_t c = col_idx_[p];
      if (col_map[c] < 0) continue;
      t.push_back({row_map[r], col_map[c], values_[p]});
    }
  }
  return FromTriplets(new_rows, new_cols, std::move(t));
}

bool CsrMatrix::IsSymmetric(float tol) const {
  if (rows_ != cols_) return false;
  for (int64_t r = 0; r < rows_; ++r) {
    for (int64_t p = row_ptr_[r]; p < row_ptr_[r + 1]; ++p) {
      if (std::fabs(values_[p] - At(col_idx_[p], r)) > tol) return false;
    }
  }
  return true;
}

}  // namespace desalign::tensor
