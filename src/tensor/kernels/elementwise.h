#ifndef DESALIGN_TENSOR_KERNELS_ELEMENTWISE_H_
#define DESALIGN_TENSOR_KERNELS_ELEMENTWISE_H_

#include <cstdint>

// Parallel elementwise kernels over contiguous float spans. Each call
// resolves the active ISA level once, then partitions [0, n) into contiguous
// chunks via ThreadPool::ParallelFor. Because every output element depends
// only on the same input index, the partitioning cannot change results:
// outputs are bit-identical for any thread count and any ISA level.
//
// Accumulating forms (`out[i] += ...`) mirror the autograd backward lambdas
// they replaced; their expressions are kept token-for-token identical to the
// pre-kernel-layer ops.cc so gradients stay bit-exact (enforced by
// tests/tensor/kernels_bitexact_test.cc against kernels/reference.cc).

namespace desalign::tensor::kernels {

// ---- Forward ----
void Add(const float* a, const float* b, float* y, int64_t n);
void Sub(const float* a, const float* b, float* y, int64_t n);
void Mul(const float* a, const float* b, float* y, int64_t n);
void Div(const float* a, const float* b, float* y, int64_t n);
void Scale(const float* x, float s, float* y, int64_t n);      // y = s * x
void MulScalar(const float* x, float s, float* y, int64_t n);  // y = x * s
void AddScalar(const float* x, float s, float* y, int64_t n);  // y = x + s
void Relu(const float* x, float* y, int64_t n);
void LeakyRelu(const float* x, float slope, float* y, int64_t n);
void Sigmoid(const float* x, float* y, int64_t n);
void Tanh(const float* x, float* y, int64_t n);
void Exp(const float* x, float* y, int64_t n);
void LogEps(const float* x, float eps, float* y, int64_t n);  // log(x + eps)
void Square(const float* x, float* y, int64_t n);
void Abs(const float* x, float* y, int64_t n);
void Clip(const float* x, float lo, float hi, float* y, int64_t n);

// ---- Backward / accumulating ----
void Accumulate(const float* g, float* out, int64_t n);     // out += g
void AccumulateNeg(const float* g, float* out, int64_t n);  // out -= g
void Axpy(float alpha, const float* x, float* out, int64_t n);  // out += a*x
void AccumulateConstant(float v, float* out, int64_t n);        // out += v
// out += g * s (operand order differs from Axpy; see span_bodies.inl)
void AccumulateScaled(const float* g, float s, float* out, int64_t n);
// out += g .* x
void AccumulateProduct(const float* g, const float* x, float* out, int64_t n);
// out += g ./ b
void AccumulateQuotient(const float* g, const float* b, float* out, int64_t n);
// out -= g .* a ./ (b .* b)   (Div backward wrt denominator)
void DivGradB(const float* g, const float* a, const float* b, float* out,
              int64_t n);
void ReluGrad(const float* g, const float* x, float* out, int64_t n);
void LeakyReluGrad(const float* g, const float* x, float slope, float* out,
                   int64_t n);
void SigmoidGrad(const float* g, const float* y, float* out, int64_t n);
void TanhGrad(const float* g, const float* y, float* out, int64_t n);
void LogEpsGrad(const float* g, const float* x, float eps, float* out,
                int64_t n);
void SquareGrad(const float* g, const float* x, float* out, int64_t n);
void AbsGrad(const float* g, const float* x, float* out, int64_t n);
void ClipGrad(const float* g, const float* x, float lo, float hi, float* out,
              int64_t n);

}  // namespace desalign::tensor::kernels

#endif  // DESALIGN_TENSOR_KERNELS_ELEMENTWISE_H_
