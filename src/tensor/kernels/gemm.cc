#include "tensor/kernels/gemm.h"

#include <cstring>

#include "common/thread_pool.h"
#include "tensor/kernels/buffer_pool.h"
#include "tensor/kernels/internal.h"
#include "tensor/kernels/rowwise.h"
#include "tensor/kernels/solver/solver.h"

namespace desalign::tensor::kernels {

// The public entry points route through the solver registry: selection
// replays the offline tuning cache (or falls back to rowaxpy below on a
// miss), then runs the chosen solver. Every registered solver is
// bit-identical to reference.cc, so this indirection is a speed knob only.

void MatMul(const float* a, const float* b, float* y, int64_t m, int64_t k,
            int64_t n) {
  solver::DispatchGemm(solver::GemmOp::kMatMul, a, b, y, m, k, n);
}

void MatMulGradA(const float* g, const float* b, float* ga, int64_t m,
                 int64_t k, int64_t n) {
  solver::DispatchGemm(solver::GemmOp::kMatMulGradA, g, b, ga, m, k, n);
}

void MatMulGradB(const float* g, const float* a, float* gb, int64_t m,
                 int64_t k, int64_t n) {
  solver::DispatchGemm(solver::GemmOp::kMatMulGradB, g, a, gb, m, k, n);
}

namespace rowaxpy {

void MatMul(const float* a, const float* b, float* y, int64_t m, int64_t k,
            int64_t n) {
  const IsaLevel isa = ActiveIsa();
  common::ThreadPool::Global().ParallelFor(
      0, m,
      [&](int64_t row_begin, int64_t row_end) {
        for (int64_t i = row_begin; i < row_end; ++i) {
          float* yrow = y + i * n;
          std::memset(yrow, 0, static_cast<size_t>(n) * sizeof(float));
          const float* arow = a + i * k;
          for (int64_t p = 0; p < k; ++p) {
            const float av = arow[p];
            if (av == 0.0f) continue;
            span::Axpy(isa, av, b + p * n, yrow, n);
          }
        }
      },
      KernelGrain(k * n));
}

void MatMulGradA(const float* g, const float* b, float* ga, int64_t m,
                 int64_t k, int64_t n) {
  // ga[i,p] += sum_j g[i,j] * b[p,j]. The serial version computed a dot per
  // (i,p); here each row i is built in a zeroed workspace by streaming
  // j-ascending axpys of b's transposed rows. Per element the partial-sum
  // sequence is identical ((..(0 + t_0) + t_1)..), so results are bit-exact,
  // but the inner loop has no loop-carried dependence and vectorizes.
  // Terms with g[i,j] == 0 are NOT skipped — the serial dot included them,
  // and +0.0 is not always a bitwise no-op (-0.0 + 0.0 == +0.0).
  const IsaLevel isa = ActiveIsa();
  PooledBuffer bt(static_cast<size_t>(n * k), /*zero=*/false);
  Transpose(b, bt.data(), k, n);
  const float* btd = bt.data();
  common::ThreadPool::Global().ParallelFor(
      0, m,
      [&](int64_t row_begin, int64_t row_end) {
        PooledBuffer tmp(static_cast<size_t>(k), /*zero=*/false);
        for (int64_t i = row_begin; i < row_end; ++i) {
          std::memset(tmp.data(), 0, static_cast<size_t>(k) * sizeof(float));
          const float* grow = g + i * n;
          for (int64_t j = 0; j < n; ++j) {
            span::Axpy(isa, grow[j], btd + j * k, tmp.data(), k);
          }
          span::Acc(isa, tmp.data(), ga + i * k, k);
        }
      },
      KernelGrain(k * n));
}

void MatMulGradB(const float* g, const float* a, float* gb, int64_t m,
                 int64_t k, int64_t n) {
  // gb[p,:] += sum_i a[i,p] * g[i,:], partitioned over p. Within a chunk the
  // i-outer loop applies g's rows in ascending order, matching the serial
  // accumulation order per output element; the zero-skip is preserved from
  // the serial version (skipped terms contribute nothing, not even +0).
  const IsaLevel isa = ActiveIsa();
  common::ThreadPool::Global().ParallelFor(
      0, k,
      [&](int64_t p_begin, int64_t p_end) {
        for (int64_t i = 0; i < m; ++i) {
          const float* grow = g + i * n;
          const float* arow = a + i * k;
          for (int64_t p = p_begin; p < p_end; ++p) {
            const float av = arow[p];
            if (av == 0.0f) continue;
            span::Axpy(isa, av, grow, gb + p * n, n);
          }
        }
      },
      KernelGrain(m * n));
}

}  // namespace rowaxpy

}  // namespace desalign::tensor::kernels
