#ifndef DESALIGN_TENSOR_KERNELS_BUFFER_POOL_H_
#define DESALIGN_TENSOR_KERNELS_BUFFER_POOL_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace desalign::tensor::kernels {

/// Thread-safe recycling pool for float buffers, backing Tensor storage and
/// kernel workspaces. Buffers are bucketed by power-of-two capacity
/// (smallest bucket 256 floats = 1 KiB); Acquire pops from the bucket whose
/// capacity covers the request, Release pushes back for reuse. After the
/// first few training steps touch every live shape, the epoch loop runs at
/// ~100% hit rate — i.e. zero malloc/free for tensor data, gradients and
/// temporaries in steady state. Hit/miss/release/discard counts are exported
/// through obs::MetricsRegistry as `tensor.pool.*`.
///
/// Determinism: the pool only changes *where* a buffer's memory comes from,
/// never its contents as observed by kernels — `zero=true` acquisitions are
/// always fully zeroed, and `zero=false` acquisitions are only handed to
/// code that overwrites every element before reading. The integration suite
/// asserts byte-identical training artifacts with the pool on vs. off.
class BufferPool {
 public:
  struct Stats {
    int64_t hits = 0;       // Acquire served from a free list
    int64_t misses = 0;     // Acquire fell through to operator new
    int64_t releases = 0;   // buffers returned and cached
    int64_t discards = 0;   // buffers returned but dropped (tiny/full bucket)
    int64_t cached_buffers = 0;
    int64_t cached_bytes = 0;

    double HitRate() const {
      const int64_t total = hits + misses;
      return total > 0 ? static_cast<double>(hits) / total : 0.0;
    }
  };

  /// Process-wide pool (lazily constructed, never destroyed — Tensor
  /// destructors may run during static teardown).
  static BufferPool& Global();

  BufferPool() = default;
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Returns a vector with size() == n. `zero=true` guarantees all-zero
  /// contents; `zero=false` leaves contents unspecified (possibly stale data
  /// from a previous user) and the caller must write every element before
  /// reading. Falls back to a plain allocation when the pool is disabled.
  std::vector<float> Acquire(size_t n, bool zero);

  /// Returns a buffer to the pool (or frees it when disabled, undersized,
  /// or the bucket is full). Safe to call with a moved-from/empty vector.
  void Release(std::vector<float>&& buf);

  /// When disabled, Acquire allocates fresh zeroed storage and Release
  /// frees — the exact pre-pool behaviour. Flipped by the determinism suite
  /// and the benchmark's "pre-PR baseline" mode; not intended to change
  /// mid-training.
  bool enabled() const;
  void set_enabled(bool enabled);

  /// Drops all cached buffers (cumulative counters are preserved).
  void Clear();

  /// Zeroes the cumulative hit/miss/release/discard counters (cached
  /// buffers stay cached).
  void ResetStats();

  Stats GetStats() const;

  // Buckets cover capacities 2^8 .. 2^31 floats (1 KiB .. 8 GiB).
  static constexpr int kMinCapacityLog2 = 8;
  static constexpr int kNumBuckets = 24;
  // Per-bucket count cap. Deliberately generous: an autograd step keeps its
  // whole graph (often thousands of small tensors) live until backward
  // finishes, and a bucket must absorb that peak for the next step to run
  // allocation-free. Cached memory stays bounded regardless — every cached
  // buffer was live at some point, so the pool never holds more than the
  // historic peak working set. Clear() trims it explicitly.
  static constexpr size_t kMaxBuffersPerBucket = 4096;

 private:

  // Smallest bucket whose capacity holds `n` floats, or -1 when n exceeds
  // the largest bucket (the request bypasses the pool).
  static int BucketForRequest(size_t n);
  // Largest bucket whose capacity is <= `capacity` — any cached buffer in
  // bucket b can serve any request routed to b. -1 for tiny buffers.
  static int BucketForCapacity(size_t capacity);

  mutable common::Mutex mutex_;
  std::vector<std::vector<float>> buckets_[kNumBuckets] GUARDED_BY(mutex_);
  bool enabled_ GUARDED_BY(mutex_) = true;
  Stats stats_ GUARDED_BY(mutex_);
};

/// RAII workspace buffer for kernel/op temporaries: acquires from the global
/// pool on construction, releases on destruction. Copying acquires a fresh
/// buffer and copies contents (needed because autograd backward closures are
/// stored in copyable std::function objects; in practice the closures are
/// only moved).
class PooledBuffer {
 public:
  explicit PooledBuffer(size_t n, bool zero)
      : buf_(BufferPool::Global().Acquire(n, zero)) {}
  ~PooledBuffer() { BufferPool::Global().Release(std::move(buf_)); }

  PooledBuffer(const PooledBuffer& other)
      : buf_(BufferPool::Global().Acquire(other.buf_.size(), false)) {
    std::copy(other.buf_.begin(), other.buf_.end(), buf_.begin());
  }
  PooledBuffer(PooledBuffer&& other) noexcept : buf_(std::move(other.buf_)) {}
  PooledBuffer& operator=(const PooledBuffer&) = delete;
  PooledBuffer& operator=(PooledBuffer&&) = delete;

  float* data() { return buf_.data(); }
  const float* data() const { return buf_.data(); }
  size_t size() const { return buf_.size(); }

 private:
  std::vector<float> buf_;
};

}  // namespace desalign::tensor::kernels

#endif  // DESALIGN_TENSOR_KERNELS_BUFFER_POOL_H_
