#ifndef DESALIGN_TENSOR_KERNELS_INTERNAL_H_
#define DESALIGN_TENSOR_KERNELS_INTERNAL_H_

// Internal ISA plumbing for the kernel layer. Not installed into ops.cc or
// any code outside src/tensor/kernels/.
//
// Every elementwise span body (span_bodies.inl) is compiled twice, into
// kernels::scalar_impl (baseline codegen, elementwise.cc) and
// kernels::avx2_impl (256-bit codegen, avx2.cc). Both namespaces share the
// prototype list below; span::Foo(isa, ...) picks the instantiation for the
// resolved IsaLevel. The two are bit-identical by construction — see
// span_bodies.inl for the lane-independence argument.

#include <cstdint>

#include "tensor/kernels/dispatch.h"

#if defined(__x86_64__) || defined(__i386__)
#define DESALIGN_KERNELS_HAVE_AVX2 1
#else
#define DESALIGN_KERNELS_HAVE_AVX2 0
#endif

namespace desalign::tensor::kernels {

#define DESALIGN_KERNEL_SPAN_PROTOS                                          \
  void AddBody(const float* a, const float* b, float* y, int64_t n);         \
  void SubBody(const float* a, const float* b, float* y, int64_t n);         \
  void MulBody(const float* a, const float* b, float* y, int64_t n);         \
  void DivBody(const float* a, const float* b, float* y, int64_t n);         \
  void ScaleBody(const float* x, float s, float* y, int64_t n);              \
  void AddConstBody(const float* x, float s, float* y, int64_t n);           \
  void MulConstBody(const float* x, float s, float* y, int64_t n);           \
  void ReluBody(const float* x, float* y, int64_t n);                        \
  void LeakyReluBody(const float* x, float slope, float* y, int64_t n);      \
  void SigmoidBody(const float* x, float* y, int64_t n);                     \
  void TanhBody(const float* x, float* y, int64_t n);                        \
  void ExpBody(const float* x, float* y, int64_t n);                         \
  void LogEpsBody(const float* x, float eps, float* y, int64_t n);           \
  void SquareBody(const float* x, float* y, int64_t n);                      \
  void AbsBody(const float* x, float* y, int64_t n);                         \
  void ClipBody(const float* x, float lo, float hi, float* y, int64_t n);    \
  void AccBody(const float* g, float* out, int64_t n);                       \
  void AccNegBody(const float* g, float* out, int64_t n);                    \
  void AxpyBody(float alpha, const float* x, float* out, int64_t n);         \
  void AccConstBody(float v, float* out, int64_t n);                         \
  void AccMulConstBody(const float* g, float s, float* out, int64_t n);      \
  void AccMulBody(const float* g, const float* x, float* out, int64_t n);    \
  void AccDivBody(const float* g, const float* b, float* out, int64_t n);    \
  void DivGradBBody(const float* g, const float* a, const float* b,          \
                    float* out, int64_t n);                                  \
  void ReluGradBody(const float* g, const float* x, float* out, int64_t n);  \
  void LeakyReluGradBody(const float* g, const float* x, float slope,        \
                         float* out, int64_t n);                             \
  void SigmoidGradBody(const float* g, const float* y, float* out,           \
                       int64_t n);                                           \
  void TanhGradBody(const float* g, const float* y, float* out, int64_t n);  \
  void LogEpsGradBody(const float* g, const float* x, float eps, float* out, \
                      int64_t n);                                            \
  void SquareGradBody(const float* g, const float* x, float* out,            \
                      int64_t n);                                            \
  void AbsGradBody(const float* g, const float* x, float* out, int64_t n);   \
  void ClipGradBody(const float* g, const float* x, float lo, float hi,      \
                    float* out, int64_t n);

namespace scalar_impl {
DESALIGN_KERNEL_SPAN_PROTOS
}  // namespace scalar_impl

#if DESALIGN_KERNELS_HAVE_AVX2
namespace avx2_impl {
DESALIGN_KERNEL_SPAN_PROTOS
}  // namespace avx2_impl
#endif

#undef DESALIGN_KERNEL_SPAN_PROTOS

// span::Foo(isa, args...) — single-threaded span dispatch. Rowwise and gemm
// kernels resolve ActiveIsa() once per kernel call and pass it down so the
// per-row inner loops avoid repeated atomic loads.
namespace span {

#if DESALIGN_KERNELS_HAVE_AVX2
#define DESALIGN_DEFINE_SPAN(NAME)                      \
  template <typename... Args>                           \
  inline void NAME(IsaLevel isa, Args... args) {        \
    if (isa == IsaLevel::kAvx2) {                       \
      avx2_impl::NAME##Body(args...);                   \
    } else {                                            \
      scalar_impl::NAME##Body(args...);                 \
    }                                                   \
  }
#else
#define DESALIGN_DEFINE_SPAN(NAME)                      \
  template <typename... Args>                           \
  inline void NAME(IsaLevel /*isa*/, Args... args) {    \
    scalar_impl::NAME##Body(args...);                   \
  }
#endif

DESALIGN_DEFINE_SPAN(Add)
DESALIGN_DEFINE_SPAN(Sub)
DESALIGN_DEFINE_SPAN(Mul)
DESALIGN_DEFINE_SPAN(Div)
DESALIGN_DEFINE_SPAN(Scale)
DESALIGN_DEFINE_SPAN(AddConst)
DESALIGN_DEFINE_SPAN(MulConst)
DESALIGN_DEFINE_SPAN(Relu)
DESALIGN_DEFINE_SPAN(LeakyRelu)
DESALIGN_DEFINE_SPAN(Sigmoid)
DESALIGN_DEFINE_SPAN(Tanh)
DESALIGN_DEFINE_SPAN(Exp)
DESALIGN_DEFINE_SPAN(LogEps)
DESALIGN_DEFINE_SPAN(Square)
DESALIGN_DEFINE_SPAN(Abs)
DESALIGN_DEFINE_SPAN(Clip)
DESALIGN_DEFINE_SPAN(Acc)
DESALIGN_DEFINE_SPAN(AccNeg)
DESALIGN_DEFINE_SPAN(Axpy)
DESALIGN_DEFINE_SPAN(AccConst)
DESALIGN_DEFINE_SPAN(AccMulConst)
DESALIGN_DEFINE_SPAN(AccMul)
DESALIGN_DEFINE_SPAN(AccDiv)
DESALIGN_DEFINE_SPAN(DivGradB)
DESALIGN_DEFINE_SPAN(ReluGrad)
DESALIGN_DEFINE_SPAN(LeakyReluGrad)
DESALIGN_DEFINE_SPAN(SigmoidGrad)
DESALIGN_DEFINE_SPAN(TanhGrad)
DESALIGN_DEFINE_SPAN(LogEpsGrad)
DESALIGN_DEFINE_SPAN(SquareGrad)
DESALIGN_DEFINE_SPAN(AbsGrad)
DESALIGN_DEFINE_SPAN(ClipGrad)

#undef DESALIGN_DEFINE_SPAN

}  // namespace span

// The pre-registry GEMM loop nests (gemm.cc). The public MatMul* entry
// points now route through the solver registry (solver/solver.h); these are
// the bodies the registry's fixed default solver ("gemm.rowaxpy") runs, and
// the baseline `desalign tune` prices every other solver against.
namespace rowaxpy {
void MatMul(const float* a, const float* b, float* y, int64_t m, int64_t k,
            int64_t n);
void MatMulGradA(const float* g, const float* b, float* ga, int64_t m,
                 int64_t k, int64_t n);
void MatMulGradB(const float* g, const float* a, float* gb, int64_t m,
                 int64_t k, int64_t n);
}  // namespace rowaxpy

}  // namespace desalign::tensor::kernels

#endif  // DESALIGN_TENSOR_KERNELS_INTERNAL_H_
