#include "tensor/kernels/kernel_bench.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <functional>
#include <limits>
#include <sstream>
#include <utility>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "tensor/kernels/dispatch.h"
#include "tensor/kernels/elementwise.h"
#include "tensor/kernels/gemm.h"
#include "tensor/kernels/reference.h"
#include "tensor/kernels/rowwise.h"
#include "tensor/kernels/solver/solver.h"
#include "tensor/sparse.h"

namespace desalign::tensor::kernels {

namespace {

using BenchFn = std::function<void()>;

double MeasureNs(int repeats, const BenchFn& fn) {
  fn();  // warm-up: faults pages, primes caches and the buffer pool
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < std::max(1, repeats); ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(
        best, static_cast<double>(
                  std::chrono::duration_cast<std::chrono::nanoseconds>(t1 -
                                                                       t0)
                      .count()));
  }
  return best;
}

std::vector<float> RandomVec(common::Rng& rng, int64_t n, float lo = -1.0f,
                             float hi = 1.0f) {
  std::vector<float> v(static_cast<size_t>(n));
  for (auto& x : v) x = rng.UniformF(lo, hi);
  return v;
}

// Pre-kernel-layer CsrMatrix::FromTriplets: a global (row, col) sort plus a
// dedup sweep. Kept here as the baseline the one-pass counting-sort builder
// is measured against.
void ReferenceFromTriplets(int64_t rows, std::vector<Triplet> triplets,
                           std::vector<int64_t>* row_ptr,
                           std::vector<int64_t>* col_idx,
                           std::vector<float>* values) {
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });
  col_idx->clear();
  values->clear();
  std::vector<int64_t> row_of;
  for (const auto& t : triplets) {
    if (!col_idx->empty() && row_of.back() == t.row &&
        col_idx->back() == t.col) {
      values->back() += t.value;
    } else {
      row_of.push_back(t.row);
      col_idx->push_back(t.col);
      values->push_back(t.value);
    }
  }
  row_ptr->assign(static_cast<size_t>(rows) + 1, 0);
  for (int64_t r : row_of) ++(*row_ptr)[static_cast<size_t>(r) + 1];
  for (int64_t r = 0; r < rows; ++r) (*row_ptr)[r + 1] += (*row_ptr)[r];
}

// Serial CSR * dense, the shape of the pre-parallel Multiply loop.
void ReferenceSpmm(const CsrMatrix& m, const float* x, int64_t k, float* y) {
  std::memset(y, 0, static_cast<size_t>(m.rows() * k) * sizeof(float));
  for (int64_t r = 0; r < m.rows(); ++r) {
    float* yr = y + r * k;
    for (int64_t e = m.row_ptr()[r]; e < m.row_ptr()[r + 1]; ++e) {
      const float v = m.values()[e];
      const float* xr = x + m.col_idx()[e] * k;
      for (int64_t j = 0; j < k; ++j) yr[j] += v * xr[j];
    }
  }
}

class Runner {
 public:
  Runner(const KernelBenchOptions& options, KernelBenchReport* report)
      : options_(options), report_(report) {}

  // Measures `ref_fn` serially, then `kernel_fn` for every
  // (thread count, ISA) combination. `norm_elems` normalizes wall time to
  // ns/elem (elements for elementwise ops, m*k*n for matmul, nnz*k for
  // SpMM).
  void Case(const std::string& op, int64_t rows, int64_t cols,
            double norm_elems, const BenchFn& ref_fn,
            const BenchFn& kernel_fn) {
    MultiCase(op, rows, cols, norm_elems, ref_fn, {{"", kernel_fn}});
  }

  // GEMM variant: one labeled function per registered solver, so each
  // (threads, isa) cell is measured once per solver and tagged with its id.
  // Solvers are invoked directly (not through cache replay) — the bench
  // reports what each solver costs, independent of any find-db on disk.
  void MultiCase(
      const std::string& op, int64_t rows, int64_t cols, double norm_elems,
      const BenchFn& ref_fn,
      const std::vector<std::pair<std::string, BenchFn>>& kernels) {
    KernelBenchCase c;
    c.op = op;
    c.rows = rows;
    c.cols = cols;
    common::ThreadPool::SetGlobalThreadCount(1);
    c.ref_ns_per_elem = MeasureNs(options_.repeats, ref_fn) / norm_elems;
    for (int threads : options_.thread_counts) {
      common::ThreadPool::SetGlobalThreadCount(threads);
      for (const IsaLevel isa : {IsaLevel::kScalar, IsaLevel::kAvx2}) {
        if (isa == IsaLevel::kAvx2 && !CpuSupportsAvx2()) continue;
        SetIsaOverride(isa, /*has_override=*/true);
        for (const auto& [solver_id, kernel_fn] : kernels) {
          KernelBenchVariant v;
          v.threads = threads;
          v.isa = IsaName(isa);
          v.solver = solver_id;
          v.ns_per_elem = MeasureNs(options_.repeats, kernel_fn) / norm_elems;
          v.speedup = v.ns_per_elem > 0.0 ? c.ref_ns_per_elem / v.ns_per_elem
                                          : 0.0;
          c.variants.push_back(std::move(v));
        }
      }
      SetIsaOverride(IsaLevel::kScalar, /*has_override=*/false);
    }
    report_->cases.push_back(std::move(c));
  }

 private:
  const KernelBenchOptions& options_;
  KernelBenchReport* report_;
};

std::string JsonNum(double v) {
  std::ostringstream os;
  os.precision(6);
  os << v;
  return os.str();
}

}  // namespace

double KernelBenchCase::BestSpeedup() const {
  double best = 0.0;
  for (const auto& v : variants) best = std::max(best, v.speedup);
  return best;
}

std::string KernelBenchReport::ToJson() const {
  std::ostringstream os;
  os << "{\"schema\":\"desalign.kernel_bench.v2\",\"cases\":[";
  for (size_t i = 0; i < cases.size(); ++i) {
    const auto& c = cases[i];
    if (i) os << ",";
    os << "{\"op\":\"" << c.op << "\",\"rows\":" << c.rows
       << ",\"cols\":" << c.cols
       << ",\"ref_ns_per_elem\":" << JsonNum(c.ref_ns_per_elem)
       << ",\"variants\":[";
    for (size_t j = 0; j < c.variants.size(); ++j) {
      const auto& v = c.variants[j];
      if (j) os << ",";
      os << "{\"threads\":" << v.threads << ",\"isa\":\"" << v.isa
         << "\",\"solver\":\"" << v.solver
         << "\",\"ns_per_elem\":" << JsonNum(v.ns_per_elem)
         << ",\"speedup\":" << JsonNum(v.speedup) << "}";
    }
    os << "]}";
  }
  os << "]}";
  return os.str();
}

KernelBenchReport RunKernelBench(const KernelBenchOptions& options) {
  const int saved_threads = common::ThreadPool::Global().num_threads();
  KernelBenchReport report;
  Runner runner(options, &report);
  common::Rng rng(20240805);

  const bool smoke = options.smoke;

  // ---- Elementwise over a flat span ----
  {
    const int64_t n = smoke ? (1 << 16) : (1 << 20);
    const auto a = RandomVec(rng, n);
    const auto b = RandomVec(rng, n, 0.5f, 1.5f);
    std::vector<float> y(static_cast<size_t>(n));
    runner.Case(
        "add", n, 1, static_cast<double>(n),
        [&] { reference::Add(a.data(), b.data(), y.data(), n); },
        [&] { Add(a.data(), b.data(), y.data(), n); });
    runner.Case(
        "mul", n, 1, static_cast<double>(n),
        [&] { reference::Mul(a.data(), b.data(), y.data(), n); },
        [&] { Mul(a.data(), b.data(), y.data(), n); });
    runner.Case(
        "axpy", n, 1, static_cast<double>(n),
        [&] { reference::Axpy(0.5f, a.data(), y.data(), n); },
        [&] { Axpy(0.5f, a.data(), y.data(), n); });
    runner.Case(
        "relu", n, 1, static_cast<double>(n),
        [&] { reference::Relu(a.data(), y.data(), n); },
        [&] { Relu(a.data(), y.data(), n); });
    runner.Case(
        "sigmoid", n, 1, static_cast<double>(n),
        [&] { reference::Sigmoid(a.data(), y.data(), n); },
        [&] { Sigmoid(a.data(), y.data(), n); });
  }

  // ---- MatMul forward + backward, one variant per registered solver ----
  // The full shape is the 512^3 cube the solver acceptance gate measures
  // (the old 512x256x512 shape shared a bucket with it anyway). Each solver
  // is run directly so the committed JSON compares them; the runtime cache
  // would pick whichever one `desalign tune` found fastest here.
  {
    const int64_t m = smoke ? 48 : 512;
    const int64_t k = smoke ? 32 : 512;
    const int64_t n = smoke ? 48 : 512;
    const auto a = RandomVec(rng, m * k);
    const auto b = RandomVec(rng, k * n);
    const auto g = RandomVec(rng, m * n);
    std::vector<float> y(static_cast<size_t>(m * n));
    std::vector<float> ga(static_cast<size_t>(m * k));
    std::vector<float> gb(static_cast<size_t>(k * n));
    const double ops = static_cast<double>(m) * k * n;
    const auto& solvers = solver::SolverRegistry::Global().Solvers();
    std::vector<std::pair<std::string, BenchFn>> fwd, grad_a, grad_b;
    for (const solver::GemmSolver* s : solvers) {
      fwd.emplace_back(s->id(), [&, s] {
        s->Run(solver::GemmProblem::Current(solver::GemmOp::kMatMul, m, k, n),
               a.data(), b.data(), y.data());
      });
      grad_a.emplace_back(s->id(), [&, s] {
        std::fill(ga.begin(), ga.end(), 0.0f);
        s->Run(solver::GemmProblem::Current(solver::GemmOp::kMatMulGradA, m,
                                            k, n),
               g.data(), b.data(), ga.data());
      });
      grad_b.emplace_back(s->id(), [&, s] {
        std::fill(gb.begin(), gb.end(), 0.0f);
        s->Run(solver::GemmProblem::Current(solver::GemmOp::kMatMulGradB, m,
                                            k, n),
               g.data(), a.data(), gb.data());
      });
    }
    runner.MultiCase(
        "matmul_fwd", m, n, ops,
        [&] { reference::MatMul(a.data(), b.data(), y.data(), m, k, n); },
        fwd);
    runner.MultiCase(
        "matmul_grad_a", m, k, ops,
        [&] {
          std::fill(ga.begin(), ga.end(), 0.0f);
          reference::MatMulGradA(g.data(), b.data(), ga.data(), m, k, n);
        },
        grad_a);
    runner.MultiCase(
        "matmul_grad_b", k, n, ops,
        [&] {
          std::fill(gb.begin(), gb.end(), 0.0f);
          reference::MatMulGradB(g.data(), a.data(), gb.data(), m, k, n);
        },
        grad_b);
  }

  // ---- Rowwise ----
  {
    const int64_t n = smoke ? 256 : 4096;
    const int64_t c = smoke ? 64 : 256;
    const auto x = RandomVec(rng, n * c);
    const auto g = RandomVec(rng, n * c);
    const auto gamma = RandomVec(rng, c, 0.5f, 1.5f);
    const auto beta = RandomVec(rng, c);
    std::vector<float> y(static_cast<size_t>(n * c));
    std::vector<float> xhat(static_cast<size_t>(n * c));
    std::vector<float> inv_sigma(static_cast<size_t>(n));
    std::vector<float> gx(static_cast<size_t>(n * c));
    std::vector<float> col_out(static_cast<size_t>(c));
    const double elems = static_cast<double>(n) * c;
    runner.Case(
        "layernorm_fwd", n, c, elems,
        [&] {
          reference::LayerNormForward(x.data(), gamma.data(), beta.data(),
                                      1e-5f, y.data(), xhat.data(),
                                      inv_sigma.data(), n, c);
        },
        [&] {
          LayerNormForward(x.data(), gamma.data(), beta.data(), 1e-5f,
                           y.data(), xhat.data(), inv_sigma.data(), n, c);
        });
    runner.Case(
        "layernorm_grad_x", n, c, elems,
        [&] {
          std::fill(gx.begin(), gx.end(), 0.0f);
          reference::LayerNormGradX(g.data(), gamma.data(), xhat.data(),
                                    inv_sigma.data(), gx.data(), n, c);
        },
        [&] {
          std::fill(gx.begin(), gx.end(), 0.0f);
          LayerNormGradX(g.data(), gamma.data(), xhat.data(),
                         inv_sigma.data(), gx.data(), n, c);
        });
    runner.Case(
        "row_softmax", n, c, elems,
        [&] { reference::RowSoftmax(x.data(), y.data(), n, c); },
        [&] { RowSoftmax(x.data(), y.data(), n, c); });
    runner.Case(
        "row_l2normalize", n, c, elems,
        [&] {
          reference::RowL2Normalize(x.data(), 1e-12f, y.data(),
                                    inv_sigma.data(), n, c);
        },
        [&] {
          RowL2Normalize(x.data(), 1e-12f, y.data(), inv_sigma.data(), n, c);
        });
    runner.Case(
        "add_row_broadcast", n, c, elems,
        [&] {
          reference::AddRowBroadcast(x.data(), gamma.data(), y.data(), n, c);
        },
        [&] { AddRowBroadcast(x.data(), gamma.data(), y.data(), n, c); });
    runner.Case(
        "column_acc", n, c, elems,
        [&] {
          std::fill(col_out.begin(), col_out.end(), 0.0f);
          reference::ColumnAcc(g.data(), col_out.data(), n, c);
        },
        [&] {
          std::fill(col_out.begin(), col_out.end(), 0.0f);
          ColumnAcc(g.data(), col_out.data(), n, c);
        });

    std::vector<int64_t> indices(static_cast<size_t>(n));
    for (auto& idx : indices) idx = rng.UniformInt(n);
    runner.Case(
        "gather_rows", n, c, elems,
        [&] { reference::GatherRows(x.data(), indices.data(), y.data(), n, c); },
        [&] { GatherRows(x.data(), indices.data(), y.data(), n, c); });
    runner.Case(
        "scatter_add_rows", n, c, elems,
        [&] {
          std::fill(gx.begin(), gx.end(), 0.0f);
          reference::ScatterAddRows(g.data(), indices.data(), gx.data(), n,
                                    c);
        },
        [&] {
          std::fill(gx.begin(), gx.end(), 0.0f);
          ScatterAddRows(g.data(), indices.data(), gx.data(), n, c);
        });
  }

  // ---- Sparse (CSR) setup and SpMM ----
  {
    const int64_t nodes = smoke ? 500 : 20000;
    const int64_t degree = smoke ? 4 : 8;
    const int64_t k = smoke ? 8 : 64;
    std::vector<Triplet> triplets;
    triplets.reserve(static_cast<size_t>(nodes * degree));
    for (int64_t r = 0; r < nodes; ++r) {
      for (int64_t d = 0; d < degree; ++d) {
        triplets.push_back({r, rng.UniformInt(nodes),
                            rng.UniformF(0.1f, 1.0f)});
      }
    }
    const auto csr = CsrMatrix::FromTriplets(nodes, nodes, triplets);
    const double nnz = static_cast<double>(csr->nnz());
    std::vector<int64_t> ref_row_ptr;
    std::vector<int64_t> ref_col_idx;
    std::vector<float> ref_values;
    runner.Case(
        "csr_from_triplets", nodes, nodes, nnz,
        [&] {
          ReferenceFromTriplets(nodes, triplets, &ref_row_ptr, &ref_col_idx,
                                &ref_values);
        },
        [&] { CsrMatrix::FromTriplets(nodes, nodes, triplets); });
    runner.Case(
        "csr_transpose", nodes, nodes, nnz,
        [&] {
          // Pre-kernel-layer Transpose: round-trip through COO + sort.
          std::vector<Triplet> t;
          t.reserve(static_cast<size_t>(csr->nnz()));
          for (int64_t r = 0; r < csr->rows(); ++r) {
            for (int64_t e = csr->row_ptr()[r]; e < csr->row_ptr()[r + 1];
                 ++e) {
              t.push_back({csr->col_idx()[e], r, csr->values()[e]});
            }
          }
          CsrMatrix::FromTriplets(csr->cols(), csr->rows(), std::move(t));
        },
        [&] { csr->Transpose(); });
    const auto dense = RandomVec(rng, nodes * k);
    std::vector<float> out(static_cast<size_t>(nodes * k));
    runner.Case(
        "spmm", nodes, k, nnz * static_cast<double>(k),
        [&] { ReferenceSpmm(*csr, dense.data(), k, out.data()); },
        [&] { csr->Multiply(dense.data(), k, out.data()); });
  }

  common::ThreadPool::SetGlobalThreadCount(saved_threads);
  SetIsaOverride(IsaLevel::kScalar, /*has_override=*/false);
  return report;
}

}  // namespace desalign::tensor::kernels
