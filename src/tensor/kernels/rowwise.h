#ifndef DESALIGN_TENSOR_KERNELS_ROWWISE_H_
#define DESALIGN_TENSOR_KERNELS_ROWWISE_H_

#include <cstdint>

// Deterministic-parallel kernels over row-major (n x c) matrices.
//
// Determinism contract (see docs/PERFORMANCE.md): every kernel partitions
// work so each output element is written by exactly one thread and its
// accumulation order is a fixed function of the shape — never of the thread
// count. Two schemes are used:
//
//  * row-partitioned — output rows are disjoint per chunk (softmax,
//    LayerNorm, broadcasts, gathers). Within a row the loop is the original
//    serial order.
//  * column-partitioned — reductions *across* rows (bias/gamma gradients,
//    scatter-add with duplicate indices) give each chunk a disjoint column
//    range and iterate rows in ascending order inside it, reproducing the
//    serial per-column accumulation order exactly.
//
// No atomics touch float accumulation anywhere in this layer.
//
// Numerics are kept token-for-token compatible with the pre-kernel-layer
// ops.cc (double accumulators where it used double, float where float), so
// results are bit-identical to the old serial code for every thread count
// and ISA level.

namespace desalign::tensor::kernels {

// ---- Row broadcasts (b is a 1 x c row vector) ----
void AddRowBroadcast(const float* a, const float* row, float* y, int64_t n,
                     int64_t c);
void MulRowBroadcast(const float* a, const float* row, float* y, int64_t n,
                     int64_t c);
// out[r,:] += g[r,:] .* row
void MulRowBroadcastAcc(const float* g, const float* row, float* out,
                        int64_t n, int64_t c);

// ---- Column broadcasts (s is an n x 1 column vector) ----
void RowScale(const float* a, const float* s, float* y, int64_t n, int64_t c);
// out[r,:] += g[r,:] * s[r]
void RowScaleAcc(const float* g, const float* s, float* out, int64_t n,
                 int64_t c);
// out[r] += sum_j g[r,j] * x[r,j]   (serial float accumulation per row)
void RowDotAcc(const float* g, const float* x, float* out, int64_t n,
               int64_t c);
// out[r,:] += g[r]
void AddColBroadcastAcc(const float* g, float* out, int64_t n, int64_t c);

// ---- Cross-row column reductions (column-partitioned) ----
// out[j] += sum_r g[r,j]
void ColumnAcc(const float* g, float* out, int64_t n, int64_t c);
// out[j] += sum_r g[r,j] * x[r,j]
void ColumnAccMul(const float* g, const float* x, float* out, int64_t n,
                  int64_t c);

// ---- Softmax family ----
void RowSoftmax(const float* a, float* y, int64_t n, int64_t c);
// out[r,j] += y[r,j] * (g[r,j] - dot_r),  dot_r = sum_j g[r,j]*y[r,j]
void RowSoftmaxGrad(const float* y, const float* g, float* out, int64_t n,
                    int64_t c);
void RowLogSoftmax(const float* a, float* y, int64_t n, int64_t c);
void RowLogSoftmaxGrad(const float* y, const float* g, float* out, int64_t n,
                       int64_t c);

// ---- Normalization ----
// norms[r] = sqrt(sum_j a[r,j]^2 + eps) (double accumulation), y = a / norm.
void RowL2Normalize(const float* a, float eps, float* y, float* norms,
                    int64_t n, int64_t c);
void RowL2NormalizeGrad(const float* y, const float* g, const float* norms,
                        float* out, int64_t n, int64_t c);
// Per-row mean/var in double; writes y, xhat and inv_sigma (length n).
void LayerNormForward(const float* x, const float* gamma, const float* beta,
                      float eps, float* y, float* xhat, float* inv_sigma,
                      int64_t n, int64_t c);
void LayerNormGradX(const float* g, const float* gamma, const float* xhat,
                    const float* inv_sigma, float* gx, int64_t n, int64_t c);

// ---- Gather / scatter ----
void GatherRows(const float* a, const int64_t* indices, float* y, int64_t e,
                int64_t c);
// out[indices[i],:] += g[i,:]; indices may repeat, so the parallel axis is
// columns and rows are accumulated in ascending i order per column.
void ScatterAddRows(const float* g, const int64_t* indices, float* out,
                    int64_t e, int64_t c);
// out[i,:] += g[indices[i],:] (gather-accumulate; output rows are disjoint
// even with repeated indices, so this is row-partitioned).
void GatherRowsAcc(const float* g, const int64_t* indices, float* out,
                   int64_t e, int64_t c);

// ---- Layout ----
// y (n x m) = a^T for row-major a (m x n).
void Transpose(const float* a, float* y, int64_t m, int64_t n);
// out (m x n) += g^T for row-major g (n x m).
void TransposeAcc(const float* g, float* out, int64_t m, int64_t n);
// dst[r*c+j]           = src[r*src_stride+j]   (column-slice extract)
void CopyStridedToDense(const float* src, int64_t src_stride, float* dst,
                        int64_t n, int64_t c);
// dst[r*dst_stride+j]  = src[r*c+j]            (column-slice insert)
void CopyDenseToStrided(const float* src, float* dst, int64_t dst_stride,
                        int64_t n, int64_t c);
// out[r*c+j]          += g[r*src_stride+j]
void AccStridedToDense(const float* g, int64_t src_stride, float* out,
                       int64_t n, int64_t c);
// out[r*dst_stride+j] += g[r*c+j]
void AccDenseToStrided(const float* g, float* out, int64_t dst_stride,
                       int64_t n, int64_t c);

}  // namespace desalign::tensor::kernels

#endif  // DESALIGN_TENSOR_KERNELS_ROWWISE_H_
