#ifndef DESALIGN_TENSOR_KERNELS_KERNEL_BENCH_H_
#define DESALIGN_TENSOR_KERNELS_KERNEL_BENCH_H_

#include <cstdint>
#include <string>
#include <vector>

// Kernel regression benchmark: times every major kernel against the serial
// scalar reference (kernels/reference.cc, the pre-kernel-layer op loops)
// across a thread-count x ISA grid and emits a machine-readable report
// (BENCH_kernels.json, schema "desalign.kernel_bench.v2"). The GEMM cases
// additionally sweep every registered solver (solver/solver.h) and tag each
// variant with its solver id, so the committed JSON records which solver
// wins where — the same comparison `desalign tune` persists. tools/ci.sh
// runs the smoke configuration and asserts the vector path does not regress
// below the reference; docs/PERFORMANCE.md explains how to read the output.

namespace desalign::tensor::kernels {

struct KernelBenchOptions {
  /// Thread counts to sweep; the global pool is resized per measurement and
  /// restored afterwards.
  std::vector<int> thread_counts = {1, 2, 4, 8};
  /// Timing repeats per measurement (minimum is reported; one untimed
  /// warm-up run precedes them).
  int repeats = 5;
  /// Shrinks every shape so the full grid finishes in a couple of seconds;
  /// used by the CI smoke step.
  bool smoke = false;
};

struct KernelBenchVariant {
  int threads = 1;
  std::string isa;          // "scalar" or "avx2"
  std::string solver;       // solver id for GEMM cases, "" for other ops
  double ns_per_elem = 0.0;
  double speedup = 0.0;     // ref_ns_per_elem / ns_per_elem
};

struct KernelBenchCase {
  std::string op;
  int64_t rows = 0;
  int64_t cols = 0;
  double ref_ns_per_elem = 0.0;  // serial scalar reference, 1 thread
  std::vector<KernelBenchVariant> variants;

  /// Largest speedup across the measured variants.
  double BestSpeedup() const;
};

struct KernelBenchReport {
  std::vector<KernelBenchCase> cases;

  std::string ToJson() const;
};

/// Runs the full grid. Temporarily resizes ThreadPool::Global() and forces
/// the kernel ISA level per measurement; both are restored on return.
KernelBenchReport RunKernelBench(const KernelBenchOptions& options);

}  // namespace desalign::tensor::kernels

#endif  // DESALIGN_TENSOR_KERNELS_KERNEL_BENCH_H_
