#ifndef DESALIGN_TENSOR_KERNELS_REFERENCE_H_
#define DESALIGN_TENSOR_KERNELS_REFERENCE_H_

#include <cstdint>

// Serial scalar reference implementations, transcribed from the
// pre-kernel-layer src/tensor/ops.cc loops. These are the ground truth for
// the bit-exactness suite (tests/tensor/kernels_bitexact_test.cc) and the
// baseline the kernel benchmark reports speedups against. This file is
// deliberately compiled WITHOUT the kernel layer's -O3 flags, so the
// baseline reflects what the op layer actually ran before this change.
//
// Signatures mirror the public kernels in elementwise.h / rowwise.h /
// gemm.h one-for-one.

namespace desalign::tensor::kernels::reference {

// ---- elementwise ----
void Add(const float* a, const float* b, float* y, int64_t n);
void Sub(const float* a, const float* b, float* y, int64_t n);
void Mul(const float* a, const float* b, float* y, int64_t n);
void Div(const float* a, const float* b, float* y, int64_t n);
void Scale(const float* x, float s, float* y, int64_t n);
void MulScalar(const float* x, float s, float* y, int64_t n);
void AddScalar(const float* x, float s, float* y, int64_t n);
void Relu(const float* x, float* y, int64_t n);
void LeakyRelu(const float* x, float slope, float* y, int64_t n);
void Sigmoid(const float* x, float* y, int64_t n);
void Tanh(const float* x, float* y, int64_t n);
void Exp(const float* x, float* y, int64_t n);
void LogEps(const float* x, float eps, float* y, int64_t n);
void Square(const float* x, float* y, int64_t n);
void Abs(const float* x, float* y, int64_t n);
void Clip(const float* x, float lo, float hi, float* y, int64_t n);
void Accumulate(const float* g, float* out, int64_t n);
void AccumulateNeg(const float* g, float* out, int64_t n);
void Axpy(float alpha, const float* x, float* out, int64_t n);
void AccumulateConstant(float v, float* out, int64_t n);
void AccumulateScaled(const float* g, float s, float* out, int64_t n);
void AccumulateProduct(const float* g, const float* x, float* out, int64_t n);
void AccumulateQuotient(const float* g, const float* b, float* out,
                        int64_t n);
void DivGradB(const float* g, const float* a, const float* b, float* out,
              int64_t n);
void ReluGrad(const float* g, const float* x, float* out, int64_t n);
void LeakyReluGrad(const float* g, const float* x, float slope, float* out,
                   int64_t n);
void SigmoidGrad(const float* g, const float* y, float* out, int64_t n);
void TanhGrad(const float* g, const float* y, float* out, int64_t n);
void LogEpsGrad(const float* g, const float* x, float eps, float* out,
                int64_t n);
void SquareGrad(const float* g, const float* x, float* out, int64_t n);
void AbsGrad(const float* g, const float* x, float* out, int64_t n);
void ClipGrad(const float* g, const float* x, float lo, float hi, float* out,
              int64_t n);

// ---- rowwise ----
void AddRowBroadcast(const float* a, const float* row, float* y, int64_t n,
                     int64_t c);
void MulRowBroadcast(const float* a, const float* row, float* y, int64_t n,
                     int64_t c);
void MulRowBroadcastAcc(const float* g, const float* row, float* out,
                        int64_t n, int64_t c);
void RowScale(const float* a, const float* s, float* y, int64_t n, int64_t c);
void RowScaleAcc(const float* g, const float* s, float* out, int64_t n,
                 int64_t c);
void RowDotAcc(const float* g, const float* x, float* out, int64_t n,
               int64_t c);
void AddColBroadcastAcc(const float* g, float* out, int64_t n, int64_t c);
void ColumnAcc(const float* g, float* out, int64_t n, int64_t c);
void ColumnAccMul(const float* g, const float* x, float* out, int64_t n,
                  int64_t c);
void RowSoftmax(const float* a, float* y, int64_t n, int64_t c);
void RowSoftmaxGrad(const float* y, const float* g, float* out, int64_t n,
                    int64_t c);
void RowLogSoftmax(const float* a, float* y, int64_t n, int64_t c);
void RowLogSoftmaxGrad(const float* y, const float* g, float* out, int64_t n,
                       int64_t c);
void RowL2Normalize(const float* a, float eps, float* y, float* norms,
                    int64_t n, int64_t c);
void RowL2NormalizeGrad(const float* y, const float* g, const float* norms,
                        float* out, int64_t n, int64_t c);
void LayerNormForward(const float* x, const float* gamma, const float* beta,
                      float eps, float* y, float* xhat, float* inv_sigma,
                      int64_t n, int64_t c);
void LayerNormGradX(const float* g, const float* gamma, const float* xhat,
                    const float* inv_sigma, float* gx, int64_t n, int64_t c);
void GatherRows(const float* a, const int64_t* indices, float* y, int64_t e,
                int64_t c);
void ScatterAddRows(const float* g, const int64_t* indices, float* out,
                    int64_t e, int64_t c);
void GatherRowsAcc(const float* g, const int64_t* indices, float* out,
                   int64_t e, int64_t c);
void Transpose(const float* a, float* y, int64_t m, int64_t n);
void TransposeAcc(const float* g, float* out, int64_t m, int64_t n);

// ---- gemm ----
void MatMul(const float* a, const float* b, float* y, int64_t m, int64_t k,
            int64_t n);
void MatMulGradA(const float* g, const float* b, float* ga, int64_t m,
                 int64_t k, int64_t n);
void MatMulGradB(const float* g, const float* a, float* gb, int64_t m,
                 int64_t k, int64_t n);

}  // namespace desalign::tensor::kernels::reference

#endif  // DESALIGN_TENSOR_KERNELS_REFERENCE_H_
