#include "tensor/kernels/rowwise.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>

#include "common/thread_pool.h"
#include "tensor/kernels/internal.h"

namespace desalign::tensor::kernels {

namespace {

// Partition [0, n) rows with a grain targeting ~64k scalar ops per chunk
// given `cost` ops per row.
template <typename Fn>
void ParallelRows(int64_t n, int64_t cost_per_row, const Fn& fn) {
  common::ThreadPool::Global().ParallelFor(
      0, n, [&](int64_t b, int64_t e) { fn(b, e); },
      KernelGrain(std::max<int64_t>(1, cost_per_row)));
}

template <typename Fn>
void ParallelCols(int64_t c, int64_t cost_per_col, const Fn& fn) {
  common::ThreadPool::Global().ParallelFor(
      0, c, [&](int64_t b, int64_t e) { fn(b, e); },
      KernelGrain(std::max<int64_t>(1, cost_per_col)));
}

}  // namespace

void AddRowBroadcast(const float* a, const float* row, float* y, int64_t n,
                     int64_t c) {
  const IsaLevel isa = ActiveIsa();
  ParallelRows(n, c, [&](int64_t rb, int64_t re) {
    for (int64_t r = rb; r < re; ++r) {
      span::Add(isa, a + r * c, row, y + r * c, c);
    }
  });
}

void MulRowBroadcast(const float* a, const float* row, float* y, int64_t n,
                     int64_t c) {
  const IsaLevel isa = ActiveIsa();
  ParallelRows(n, c, [&](int64_t rb, int64_t re) {
    for (int64_t r = rb; r < re; ++r) {
      span::Mul(isa, a + r * c, row, y + r * c, c);
    }
  });
}

void MulRowBroadcastAcc(const float* g, const float* row, float* out,
                        int64_t n, int64_t c) {
  const IsaLevel isa = ActiveIsa();
  ParallelRows(n, c, [&](int64_t rb, int64_t re) {
    for (int64_t r = rb; r < re; ++r) {
      span::AccMul(isa, g + r * c, row, out + r * c, c);
    }
  });
}

void RowScale(const float* a, const float* s, float* y, int64_t n,
              int64_t c) {
  const IsaLevel isa = ActiveIsa();
  ParallelRows(n, c, [&](int64_t rb, int64_t re) {
    for (int64_t r = rb; r < re; ++r) {
      span::MulConst(isa, a + r * c, s[r], y + r * c, c);
    }
  });
}

void RowScaleAcc(const float* g, const float* s, float* out, int64_t n,
                 int64_t c) {
  const IsaLevel isa = ActiveIsa();
  ParallelRows(n, c, [&](int64_t rb, int64_t re) {
    for (int64_t r = rb; r < re; ++r) {
      span::AccMulConst(isa, g + r * c, s[r], out + r * c, c);
    }
  });
}

void RowDotAcc(const float* g, const float* x, float* out, int64_t n,
               int64_t c) {
  ParallelRows(n, c, [&](int64_t rb, int64_t re) {
    for (int64_t r = rb; r < re; ++r) {
      float acc = 0.0f;
      const float* gr = g + r * c;
      const float* xr = x + r * c;
      for (int64_t j = 0; j < c; ++j) acc += gr[j] * xr[j];
      out[r] += acc;
    }
  });
}

void AddColBroadcastAcc(const float* g, float* out, int64_t n, int64_t c) {
  const IsaLevel isa = ActiveIsa();
  ParallelRows(n, c, [&](int64_t rb, int64_t re) {
    for (int64_t r = rb; r < re; ++r) {
      span::AccConst(isa, g[r], out + r * c, c);
    }
  });
}

void ColumnAcc(const float* g, float* out, int64_t n, int64_t c) {
  // Column-partitioned: each chunk owns columns [jb, je) and walks rows in
  // ascending order, so per-column accumulation order matches the serial
  // row-outer loop this replaced.
  ParallelCols(c, n, [&](int64_t jb, int64_t je) {
    for (int64_t r = 0; r < n; ++r) {
      const float* gr = g + r * c;
      for (int64_t j = jb; j < je; ++j) out[j] += gr[j];
    }
  });
}

void ColumnAccMul(const float* g, const float* x, float* out, int64_t n,
                  int64_t c) {
  ParallelCols(c, n, [&](int64_t jb, int64_t je) {
    for (int64_t r = 0; r < n; ++r) {
      const float* gr = g + r * c;
      const float* xr = x + r * c;
      for (int64_t j = jb; j < je; ++j) out[j] += gr[j] * xr[j];
    }
  });
}

void RowSoftmax(const float* a, float* y, int64_t n, int64_t c) {
  ParallelRows(n, c * 8, [&](int64_t rb, int64_t re) {
    for (int64_t r = rb; r < re; ++r) {
      const float* ar = a + r * c;
      float* yr = y + r * c;
      float mx = -std::numeric_limits<float>::infinity();
      for (int64_t j = 0; j < c; ++j) mx = std::max(mx, ar[j]);
      float denom = 0.0f;
      for (int64_t j = 0; j < c; ++j) {
        const float e = std::exp(ar[j] - mx);
        yr[j] = e;
        denom += e;
      }
      for (int64_t j = 0; j < c; ++j) yr[j] /= denom;
    }
  });
}

void RowSoftmaxGrad(const float* y, const float* g, float* out, int64_t n,
                    int64_t c) {
  ParallelRows(n, c * 4, [&](int64_t rb, int64_t re) {
    for (int64_t r = rb; r < re; ++r) {
      const float* yr = y + r * c;
      const float* gr = g + r * c;
      float* or_ = out + r * c;
      float dot = 0.0f;
      for (int64_t j = 0; j < c; ++j) dot += gr[j] * yr[j];
      for (int64_t j = 0; j < c; ++j) or_[j] += yr[j] * (gr[j] - dot);
    }
  });
}

void RowLogSoftmax(const float* a, float* y, int64_t n, int64_t c) {
  ParallelRows(n, c * 8, [&](int64_t rb, int64_t re) {
    for (int64_t r = rb; r < re; ++r) {
      const float* ar = a + r * c;
      float* yr = y + r * c;
      float mx = -std::numeric_limits<float>::infinity();
      for (int64_t j = 0; j < c; ++j) mx = std::max(mx, ar[j]);
      float denom = 0.0f;
      for (int64_t j = 0; j < c; ++j) denom += std::exp(ar[j] - mx);
      const float logz = mx + std::log(denom);
      for (int64_t j = 0; j < c; ++j) yr[j] = ar[j] - logz;
    }
  });
}

void RowLogSoftmaxGrad(const float* y, const float* g, float* out, int64_t n,
                       int64_t c) {
  ParallelRows(n, c * 8, [&](int64_t rb, int64_t re) {
    for (int64_t r = rb; r < re; ++r) {
      const float* yr = y + r * c;
      const float* gr = g + r * c;
      float* or_ = out + r * c;
      float gsum = 0.0f;
      for (int64_t j = 0; j < c; ++j) gsum += gr[j];
      for (int64_t j = 0; j < c; ++j) {
        const float sm = std::exp(yr[j]);
        or_[j] += gr[j] - sm * gsum;
      }
    }
  });
}

void RowL2Normalize(const float* a, float eps, float* y, float* norms,
                    int64_t n, int64_t c) {
  ParallelRows(n, c * 4, [&](int64_t rb, int64_t re) {
    for (int64_t r = rb; r < re; ++r) {
      const float* ar = a + r * c;
      float* yr = y + r * c;
      double acc = 0.0;
      for (int64_t j = 0; j < c; ++j) {
        const float v = ar[j];
        acc += static_cast<double>(v) * v;
      }
      norms[r] = static_cast<float>(std::sqrt(acc + eps));
      for (int64_t j = 0; j < c; ++j) yr[j] = ar[j] / norms[r];
    }
  });
}

void RowL2NormalizeGrad(const float* y, const float* g, const float* norms,
                        float* out, int64_t n, int64_t c) {
  ParallelRows(n, c * 4, [&](int64_t rb, int64_t re) {
    for (int64_t r = rb; r < re; ++r) {
      const float* yr = y + r * c;
      const float* gr = g + r * c;
      float* or_ = out + r * c;
      float dot = 0.0f;
      for (int64_t j = 0; j < c; ++j) dot += gr[j] * yr[j];
      for (int64_t j = 0; j < c; ++j) {
        or_[j] += (gr[j] - yr[j] * dot) / norms[r];
      }
    }
  });
}

void LayerNormForward(const float* x, const float* gamma, const float* beta,
                      float eps, float* y, float* xhat, float* inv_sigma,
                      int64_t n, int64_t c) {
  ParallelRows(n, c * 6, [&](int64_t rb, int64_t re) {
    for (int64_t r = rb; r < re; ++r) {
      const float* xr = x + r * c;
      float* yr = y + r * c;
      float* xhr = xhat + r * c;
      double mean = 0.0;
      for (int64_t j = 0; j < c; ++j) mean += xr[j];
      mean /= c;
      double var = 0.0;
      for (int64_t j = 0; j < c; ++j) {
        const double d = xr[j] - mean;
        var += d * d;
      }
      var /= c;
      inv_sigma[r] = static_cast<float>(1.0 / std::sqrt(var + eps));
      for (int64_t j = 0; j < c; ++j) {
        const float xh = (xr[j] - static_cast<float>(mean)) * inv_sigma[r];
        xhr[j] = xh;
        yr[j] = gamma[j] * xh + beta[j];
      }
    }
  });
}

void LayerNormGradX(const float* g, const float* gamma, const float* xhat,
                    const float* inv_sigma, float* gx, int64_t n, int64_t c) {
  ParallelRows(n, c * 8, [&](int64_t rb, int64_t re) {
    for (int64_t r = rb; r < re; ++r) {
      const float* gr = g + r * c;
      const float* xhr = xhat + r * c;
      float* gxr = gx + r * c;
      // d = gamma ⊙ dy; dx = (d - mean(d) - xhat*mean(d⊙xhat)) * inv_sigma
      float mean_d = 0.0f;
      float mean_dx = 0.0f;
      for (int64_t j = 0; j < c; ++j) {
        const float d = gamma[j] * gr[j];
        mean_d += d;
        mean_dx += d * xhr[j];
      }
      mean_d /= c;
      mean_dx /= c;
      for (int64_t j = 0; j < c; ++j) {
        const float d = gamma[j] * gr[j];
        gxr[j] += (d - mean_d - xhr[j] * mean_dx) * inv_sigma[r];
      }
    }
  });
}

void GatherRows(const float* a, const int64_t* indices, float* y, int64_t e,
                int64_t c) {
  ParallelRows(e, c, [&](int64_t ib, int64_t ie) {
    for (int64_t i = ib; i < ie; ++i) {
      std::memcpy(y + i * c, a + indices[i] * c,
                  static_cast<size_t>(c) * sizeof(float));
    }
  });
}

void ScatterAddRows(const float* g, const int64_t* indices, float* out,
                    int64_t e, int64_t c) {
  // Indices may repeat, so rows cannot be the parallel axis. Each chunk owns
  // a disjoint column range and applies all e updates in ascending i order,
  // reproducing the serial accumulation order per output element.
  ParallelCols(c, e, [&](int64_t jb, int64_t je) {
    for (int64_t i = 0; i < e; ++i) {
      const float* gr = g + i * c;
      float* or_ = out + indices[i] * c;
      for (int64_t j = jb; j < je; ++j) or_[j] += gr[j];
    }
  });
}

void GatherRowsAcc(const float* g, const int64_t* indices, float* out,
                   int64_t e, int64_t c) {
  const IsaLevel isa = ActiveIsa();
  ParallelRows(e, c, [&](int64_t ib, int64_t ie) {
    for (int64_t i = ib; i < ie; ++i) {
      span::Acc(isa, g + indices[i] * c, out + i * c, c);
    }
  });
}

void Transpose(const float* a, float* y, int64_t m, int64_t n) {
  ParallelRows(m, n, [&](int64_t ib, int64_t ie) {
    for (int64_t i = ib; i < ie; ++i) {
      const float* ar = a + i * n;
      for (int64_t j = 0; j < n; ++j) y[j * m + i] = ar[j];
    }
  });
}

void TransposeAcc(const float* g, float* out, int64_t m, int64_t n) {
  ParallelRows(m, n, [&](int64_t ib, int64_t ie) {
    for (int64_t i = ib; i < ie; ++i) {
      float* or_ = out + i * n;
      for (int64_t j = 0; j < n; ++j) or_[j] += g[j * m + i];
    }
  });
}

void CopyStridedToDense(const float* src, int64_t src_stride, float* dst,
                        int64_t n, int64_t c) {
  ParallelRows(n, c, [&](int64_t rb, int64_t re) {
    for (int64_t r = rb; r < re; ++r) {
      std::memcpy(dst + r * c, src + r * src_stride,
                  static_cast<size_t>(c) * sizeof(float));
    }
  });
}

void CopyDenseToStrided(const float* src, float* dst, int64_t dst_stride,
                        int64_t n, int64_t c) {
  ParallelRows(n, c, [&](int64_t rb, int64_t re) {
    for (int64_t r = rb; r < re; ++r) {
      std::memcpy(dst + r * dst_stride, src + r * c,
                  static_cast<size_t>(c) * sizeof(float));
    }
  });
}

void AccStridedToDense(const float* g, int64_t src_stride, float* out,
                       int64_t n, int64_t c) {
  const IsaLevel isa = ActiveIsa();
  ParallelRows(n, c, [&](int64_t rb, int64_t re) {
    for (int64_t r = rb; r < re; ++r) {
      span::Acc(isa, g + r * src_stride, out + r * c, c);
    }
  });
}

void AccDenseToStrided(const float* g, float* out, int64_t dst_stride,
                       int64_t n, int64_t c) {
  const IsaLevel isa = ActiveIsa();
  ParallelRows(n, c, [&](int64_t rb, int64_t re) {
    for (int64_t r = rb; r < re; ++r) {
      span::Acc(isa, g + r * c, out + r * dst_stride, c);
    }
  });
}

}  // namespace desalign::tensor::kernels
