#include "tensor/kernels/elementwise.h"

#include <cmath>
#include <cstdint>

#include "common/thread_pool.h"
#include "tensor/kernels/internal.h"

namespace desalign::tensor::kernels {

// Baseline-ISA instantiation of every span body (see internal.h).
namespace scalar_impl {
#include "tensor/kernels/span_bodies.inl"
}  // namespace scalar_impl

namespace {

// Approximate per-element scalar-op costs, used only to size ParallelFor
// chunks (KernelGrain targets a fixed op count per chunk). Wrong values cost
// speed, never correctness.
constexpr int64_t kCheap = 1;           // add/mul/compare
constexpr int64_t kTranscendental = 24; // exp/log/tanh via libm

template <typename SpanFn>
void ParallelSpan(int64_t n, int64_t cost, const SpanFn& fn) {
  const IsaLevel isa = ActiveIsa();
  common::ThreadPool::Global().ParallelFor(
      0, n, [&](int64_t b, int64_t e) { fn(isa, b, e - b); },
      SpanGrain(cost));
}

}  // namespace

void Add(const float* a, const float* b, float* y, int64_t n) {
  ParallelSpan(n, kCheap, [&](IsaLevel isa, int64_t o, int64_t len) {
    span::Add(isa, a + o, b + o, y + o, len);
  });
}

void Sub(const float* a, const float* b, float* y, int64_t n) {
  ParallelSpan(n, kCheap, [&](IsaLevel isa, int64_t o, int64_t len) {
    span::Sub(isa, a + o, b + o, y + o, len);
  });
}

void Mul(const float* a, const float* b, float* y, int64_t n) {
  ParallelSpan(n, kCheap, [&](IsaLevel isa, int64_t o, int64_t len) {
    span::Mul(isa, a + o, b + o, y + o, len);
  });
}

void Div(const float* a, const float* b, float* y, int64_t n) {
  ParallelSpan(n, kCheap, [&](IsaLevel isa, int64_t o, int64_t len) {
    span::Div(isa, a + o, b + o, y + o, len);
  });
}

void Scale(const float* x, float s, float* y, int64_t n) {
  ParallelSpan(n, kCheap, [&](IsaLevel isa, int64_t o, int64_t len) {
    span::Scale(isa, x + o, s, y + o, len);
  });
}

void MulScalar(const float* x, float s, float* y, int64_t n) {
  ParallelSpan(n, kCheap, [&](IsaLevel isa, int64_t o, int64_t len) {
    span::MulConst(isa, x + o, s, y + o, len);
  });
}

void AddScalar(const float* x, float s, float* y, int64_t n) {
  ParallelSpan(n, kCheap, [&](IsaLevel isa, int64_t o, int64_t len) {
    span::AddConst(isa, x + o, s, y + o, len);
  });
}

void Relu(const float* x, float* y, int64_t n) {
  ParallelSpan(n, kCheap, [&](IsaLevel isa, int64_t o, int64_t len) {
    span::Relu(isa, x + o, y + o, len);
  });
}

void LeakyRelu(const float* x, float slope, float* y, int64_t n) {
  ParallelSpan(n, kCheap, [&](IsaLevel isa, int64_t o, int64_t len) {
    span::LeakyRelu(isa, x + o, slope, y + o, len);
  });
}

void Sigmoid(const float* x, float* y, int64_t n) {
  ParallelSpan(n, kTranscendental, [&](IsaLevel isa, int64_t o, int64_t len) {
    span::Sigmoid(isa, x + o, y + o, len);
  });
}

void Tanh(const float* x, float* y, int64_t n) {
  ParallelSpan(n, kTranscendental, [&](IsaLevel isa, int64_t o, int64_t len) {
    span::Tanh(isa, x + o, y + o, len);
  });
}

void Exp(const float* x, float* y, int64_t n) {
  ParallelSpan(n, kTranscendental, [&](IsaLevel isa, int64_t o, int64_t len) {
    span::Exp(isa, x + o, y + o, len);
  });
}

void LogEps(const float* x, float eps, float* y, int64_t n) {
  ParallelSpan(n, kTranscendental, [&](IsaLevel isa, int64_t o, int64_t len) {
    span::LogEps(isa, x + o, eps, y + o, len);
  });
}

void Square(const float* x, float* y, int64_t n) {
  ParallelSpan(n, kCheap, [&](IsaLevel isa, int64_t o, int64_t len) {
    span::Square(isa, x + o, y + o, len);
  });
}

void Abs(const float* x, float* y, int64_t n) {
  ParallelSpan(n, kCheap, [&](IsaLevel isa, int64_t o, int64_t len) {
    span::Abs(isa, x + o, y + o, len);
  });
}

void Clip(const float* x, float lo, float hi, float* y, int64_t n) {
  ParallelSpan(n, kCheap, [&](IsaLevel isa, int64_t o, int64_t len) {
    span::Clip(isa, x + o, lo, hi, y + o, len);
  });
}

void Accumulate(const float* g, float* out, int64_t n) {
  ParallelSpan(n, kCheap, [&](IsaLevel isa, int64_t o, int64_t len) {
    span::Acc(isa, g + o, out + o, len);
  });
}

void AccumulateNeg(const float* g, float* out, int64_t n) {
  ParallelSpan(n, kCheap, [&](IsaLevel isa, int64_t o, int64_t len) {
    span::AccNeg(isa, g + o, out + o, len);
  });
}

void Axpy(float alpha, const float* x, float* out, int64_t n) {
  ParallelSpan(n, kCheap, [&](IsaLevel isa, int64_t o, int64_t len) {
    span::Axpy(isa, alpha, x + o, out + o, len);
  });
}

void AccumulateConstant(float v, float* out, int64_t n) {
  ParallelSpan(n, kCheap, [&](IsaLevel isa, int64_t o, int64_t len) {
    span::AccConst(isa, v, out + o, len);
  });
}

void AccumulateScaled(const float* g, float s, float* out, int64_t n) {
  ParallelSpan(n, kCheap, [&](IsaLevel isa, int64_t o, int64_t len) {
    span::AccMulConst(isa, g + o, s, out + o, len);
  });
}

void AccumulateProduct(const float* g, const float* x, float* out, int64_t n) {
  ParallelSpan(n, kCheap, [&](IsaLevel isa, int64_t o, int64_t len) {
    span::AccMul(isa, g + o, x + o, out + o, len);
  });
}

void AccumulateQuotient(const float* g, const float* b, float* out,
                        int64_t n) {
  ParallelSpan(n, kCheap, [&](IsaLevel isa, int64_t o, int64_t len) {
    span::AccDiv(isa, g + o, b + o, out + o, len);
  });
}

void DivGradB(const float* g, const float* a, const float* b, float* out,
              int64_t n) {
  ParallelSpan(n, kCheap, [&](IsaLevel isa, int64_t o, int64_t len) {
    span::DivGradB(isa, g + o, a + o, b + o, out + o, len);
  });
}

void ReluGrad(const float* g, const float* x, float* out, int64_t n) {
  ParallelSpan(n, kCheap, [&](IsaLevel isa, int64_t o, int64_t len) {
    span::ReluGrad(isa, g + o, x + o, out + o, len);
  });
}

void LeakyReluGrad(const float* g, const float* x, float slope, float* out,
                   int64_t n) {
  ParallelSpan(n, kCheap, [&](IsaLevel isa, int64_t o, int64_t len) {
    span::LeakyReluGrad(isa, g + o, x + o, slope, out + o, len);
  });
}

void SigmoidGrad(const float* g, const float* y, float* out, int64_t n) {
  ParallelSpan(n, kCheap, [&](IsaLevel isa, int64_t o, int64_t len) {
    span::SigmoidGrad(isa, g + o, y + o, out + o, len);
  });
}

void TanhGrad(const float* g, const float* y, float* out, int64_t n) {
  ParallelSpan(n, kCheap, [&](IsaLevel isa, int64_t o, int64_t len) {
    span::TanhGrad(isa, g + o, y + o, out + o, len);
  });
}

void LogEpsGrad(const float* g, const float* x, float eps, float* out,
                int64_t n) {
  ParallelSpan(n, kCheap, [&](IsaLevel isa, int64_t o, int64_t len) {
    span::LogEpsGrad(isa, g + o, x + o, eps, out + o, len);
  });
}

void SquareGrad(const float* g, const float* x, float* out, int64_t n) {
  ParallelSpan(n, kCheap, [&](IsaLevel isa, int64_t o, int64_t len) {
    span::SquareGrad(isa, g + o, x + o, out + o, len);
  });
}

void AbsGrad(const float* g, const float* x, float* out, int64_t n) {
  ParallelSpan(n, kCheap, [&](IsaLevel isa, int64_t o, int64_t len) {
    span::AbsGrad(isa, g + o, x + o, out + o, len);
  });
}

void ClipGrad(const float* g, const float* x, float lo, float hi, float* out,
              int64_t n) {
  ParallelSpan(n, kCheap, [&](IsaLevel isa, int64_t o, int64_t len) {
    span::ClipGrad(isa, g + o, x + o, lo, hi, out + o, len);
  });
}

}  // namespace desalign::tensor::kernels
