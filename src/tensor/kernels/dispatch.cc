#include "tensor/kernels/dispatch.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>

#include "common/thread_pool.h"

namespace desalign::tensor::kernels {

namespace {

#if defined(__x86_64__) || defined(__i386__)
bool DetectAvx2() { return __builtin_cpu_supports("avx2") != 0; }
#else
bool DetectAvx2() { return false; }
#endif

// Environment resolution happens once; SetIsaOverride takes precedence and
// is cheap to flip (tests and the bench harness toggle it per measurement).
IsaLevel EnvIsa(bool cpu_avx2) {
  const char* env = std::getenv("DESALIGN_KERNEL_ISA");
  if (env != nullptr && std::strcmp(env, "scalar") == 0) {
    return IsaLevel::kScalar;
  }
  return cpu_avx2 ? IsaLevel::kAvx2 : IsaLevel::kScalar;
}

std::atomic<bool> g_has_override{false};
std::atomic<IsaLevel> g_override{IsaLevel::kScalar};
std::atomic<int64_t> g_forced_grain{0};

}  // namespace

bool CpuSupportsAvx2() {
  static const bool supported = DetectAvx2();
  return supported;
}

IsaLevel ActiveIsa() {
  if (g_has_override.load(std::memory_order_relaxed)) {
    const IsaLevel level = g_override.load(std::memory_order_relaxed);
    if (level == IsaLevel::kAvx2 && !CpuSupportsAvx2()) {
      return IsaLevel::kScalar;
    }
    return level;
  }
  static const IsaLevel resolved = EnvIsa(CpuSupportsAvx2());
  return resolved;
}

void SetIsaOverride(IsaLevel level, bool has_override) {
  g_override.store(level, std::memory_order_relaxed);
  g_has_override.store(has_override, std::memory_order_relaxed);
}

const char* IsaName(IsaLevel level) {
  switch (level) {
    case IsaLevel::kAvx2:
      return "avx2";
    case IsaLevel::kScalar:
      break;
  }
  return "scalar";
}

void SetForcedGrainForTesting(int64_t grain) {
  g_forced_grain.store(grain, std::memory_order_relaxed);
}

int64_t ForcedGrainForTesting() {
  return g_forced_grain.load(std::memory_order_relaxed);
}

int64_t KernelGrain(int64_t cost_per_item) {
  const int64_t forced = ForcedGrainForTesting();
  if (forced > 0) return forced;
  return common::ThreadPool::GrainForCost(cost_per_item);
}

int64_t SpanGrain(int64_t cost_per_item) {
  const int64_t forced = ForcedGrainForTesting();
  if (forced > 0) return forced;
  const int64_t cost = cost_per_item > 0 ? cost_per_item : 1;
  const int64_t min_elems = kMinSpanOpsPerChunk / cost;
  return std::max(common::ThreadPool::GrainForCost(cost_per_item),
                  min_elems > 0 ? min_elems : 1);
}

}  // namespace desalign::tensor::kernels
