#ifndef DESALIGN_TENSOR_KERNELS_DISPATCH_H_
#define DESALIGN_TENSOR_KERNELS_DISPATCH_H_

#include <cstdint>

namespace desalign::tensor::kernels {

/// Instruction-set level a kernel body runs at. The vector paths are
/// restricted to operations whose lanes are independent IEEE operations
/// (add/sub/mul/div/min/max/blend), so every level produces bit-identical
/// results — ISA selection is a speed knob, never a numerics knob. That is
/// the property the determinism suite (tests/integration) relies on; see
/// docs/PERFORMANCE.md "Determinism contract".
enum class IsaLevel {
  kScalar = 0,
  kAvx2 = 1,
};

/// The level kernel dispatch currently resolves to: the best level the CPU
/// supports, unless overridden by SetIsaOverride or the DESALIGN_KERNEL_ISA
/// environment variable ("scalar" or "avx2"; an unsupported request falls
/// back to scalar).
IsaLevel ActiveIsa();

/// True when the running CPU supports AVX2 (and this build targets x86).
bool CpuSupportsAvx2();

/// Forces a level (clamped to what the CPU supports); pass
/// `has_override=false` to restore automatic resolution. Used by the
/// bit-exactness tests and the benchmark harness to measure scalar vs
/// vector on the same machine.
void SetIsaOverride(IsaLevel level, bool has_override = true);

/// "scalar" / "avx2".
const char* IsaName(IsaLevel level);

/// Test hook: when set to g > 0, every kernel uses `g` as its ParallelFor
/// grain so tiny tensors still exercise multi-chunk partitioning. 0 restores
/// the automatic cost-based grain. Not for production use.
void SetForcedGrainForTesting(int64_t grain);
int64_t ForcedGrainForTesting();

/// Grain actually used by a kernel whose per-index cost is roughly
/// `cost_per_item` scalar operations: the forced test grain if set, else
/// ~64k operations per chunk.
int64_t KernelGrain(int64_t cost_per_item);

/// Minimum scalar-op-equivalents a worker chunk must carry before a pure
/// elementwise span kernel is worth splitting across threads. Elementwise
/// ops are memory-bound: below this, fork/join and cache-line handoff cost
/// more than a second core saves (BENCH_kernels.json showed mul/AVX2 at
/// 0.51x with 2 threads on 64k elements), so small spans run serial.
inline constexpr int64_t kMinSpanOpsPerChunk = 1 << 17;

/// Grain for pure elementwise span kernels: KernelGrain raised to at least
/// kMinSpanOpsPerChunk / cost_per_item elements per chunk. The forced test
/// grain still wins so tests can exercise multi-chunk partitioning on tiny
/// tensors. Chunking never reorders an elementwise op's per-element math,
/// so this is a speed knob only — the determinism contract is unaffected.
int64_t SpanGrain(int64_t cost_per_item);

}  // namespace desalign::tensor::kernels

#endif  // DESALIGN_TENSOR_KERNELS_DISPATCH_H_
