// Elementwise span bodies — the single source of truth for every
// lane-independent kernel loop. This file is included (inside a namespace)
// by two translation units:
//
//   elementwise.cc   -> kernels::scalar_impl  (baseline codegen)
//   avx2.cc          -> kernels::avx2_impl    (#pragma GCC target("avx2"))
//
// so each body exists at two ISA levels with identical C++ semantics. Every
// loop here is lane-independent (output element i depends only on input
// element(s) i), every operation is an IEEE-754 single op (or libm call)
// applied per lane, and the build pins -ffp-contract=off, so the two
// instantiations are bit-identical — vector width is a speed knob, not a
// numerics knob. Reductions (dot products, row sums) must NOT live here;
// they belong in rowwise.cc / gemm.cc where the accumulation order is
// explicitly sequenced.
//
// No #include directives in this file: it is textually included inside a
// namespace. The including .cc provides <cmath> and <cstdint>.

#define DESALIGN_RESTRICT __restrict__

// ---- Forward: binary ----

void AddBody(const float* DESALIGN_RESTRICT a,
                    const float* DESALIGN_RESTRICT b,
                    float* DESALIGN_RESTRICT y, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] = a[i] + b[i];
}

void SubBody(const float* DESALIGN_RESTRICT a,
                    const float* DESALIGN_RESTRICT b,
                    float* DESALIGN_RESTRICT y, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] = a[i] - b[i];
}

void MulBody(const float* DESALIGN_RESTRICT a,
                    const float* DESALIGN_RESTRICT b,
                    float* DESALIGN_RESTRICT y, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] = a[i] * b[i];
}

void DivBody(const float* DESALIGN_RESTRICT a,
                    const float* DESALIGN_RESTRICT b,
                    float* DESALIGN_RESTRICT y, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] = a[i] / b[i];
}

// ---- Forward: scalar-constant ----

void ScaleBody(const float* DESALIGN_RESTRICT x, float s,
                      float* DESALIGN_RESTRICT y, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] = s * x[i];
}

void AddConstBody(const float* DESALIGN_RESTRICT x, float s,
                         float* DESALIGN_RESTRICT y, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] = x[i] + s;
}

// Distinct from ScaleBody (`s * x`): operand order is preserved from the
// call sites this replaced (MulColVector computes `a * s`).
void MulConstBody(const float* DESALIGN_RESTRICT x, float s,
                  float* DESALIGN_RESTRICT y, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] = x[i] * s;
}

// ---- Forward: unary nonlinearities ----

void ReluBody(const float* DESALIGN_RESTRICT x,
                     float* DESALIGN_RESTRICT y, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] = x[i] > 0.0f ? x[i] : 0.0f;
}

void LeakyReluBody(const float* DESALIGN_RESTRICT x, float slope,
                          float* DESALIGN_RESTRICT y, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] = x[i] > 0.0f ? x[i] : slope * x[i];
}

void SigmoidBody(const float* DESALIGN_RESTRICT x,
                        float* DESALIGN_RESTRICT y, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] = 1.0f / (1.0f + std::exp(-x[i]));
}

void TanhBody(const float* DESALIGN_RESTRICT x,
                     float* DESALIGN_RESTRICT y, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] = std::tanh(x[i]);
}

void ExpBody(const float* DESALIGN_RESTRICT x,
                    float* DESALIGN_RESTRICT y, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] = std::exp(x[i]);
}

void LogEpsBody(const float* DESALIGN_RESTRICT x, float eps,
                       float* DESALIGN_RESTRICT y, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] = std::log(x[i] + eps);
}

void SquareBody(const float* DESALIGN_RESTRICT x,
                       float* DESALIGN_RESTRICT y, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] = x[i] * x[i];
}

void AbsBody(const float* DESALIGN_RESTRICT x,
                    float* DESALIGN_RESTRICT y, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] = std::fabs(x[i]);
}

void ClipBody(const float* DESALIGN_RESTRICT x, float lo, float hi,
                     float* DESALIGN_RESTRICT y, int64_t n) {
  for (int64_t i = 0; i < n; ++i) {
    y[i] = x[i] < lo ? lo : (x[i] > hi ? hi : x[i]);
  }
}

// ---- Backward: accumulating forms (out[i] += expr) ----
// Expressions mirror the pre-kernel-layer ops.cc lambdas exactly — the
// bit-exactness suite compares against those (kernels/reference.cc).

void AccBody(const float* DESALIGN_RESTRICT g,
                    float* DESALIGN_RESTRICT out, int64_t n) {
  for (int64_t i = 0; i < n; ++i) out[i] += g[i];
}

void AccNegBody(const float* DESALIGN_RESTRICT g,
                       float* DESALIGN_RESTRICT out, int64_t n) {
  for (int64_t i = 0; i < n; ++i) out[i] -= g[i];
}

void AxpyBody(float alpha, const float* DESALIGN_RESTRICT x,
                     float* DESALIGN_RESTRICT out, int64_t n) {
  for (int64_t i = 0; i < n; ++i) out[i] += alpha * x[i];
}

void AccConstBody(float v, float* DESALIGN_RESTRICT out, int64_t n) {
  for (int64_t i = 0; i < n; ++i) out[i] += v;
}

// `out += g * s` — operand order matches the RowSum/MulColVector/Dropout
// backward lambdas this replaced (gradient first, then the factor).
void AccMulConstBody(const float* DESALIGN_RESTRICT g, float s,
                     float* DESALIGN_RESTRICT out, int64_t n) {
  for (int64_t i = 0; i < n; ++i) out[i] += g[i] * s;
}

void AccMulBody(const float* DESALIGN_RESTRICT g,
                       const float* DESALIGN_RESTRICT x,
                       float* DESALIGN_RESTRICT out, int64_t n) {
  for (int64_t i = 0; i < n; ++i) out[i] += g[i] * x[i];
}

void AccDivBody(const float* DESALIGN_RESTRICT g,
                       const float* DESALIGN_RESTRICT b,
                       float* DESALIGN_RESTRICT out, int64_t n) {
  for (int64_t i = 0; i < n; ++i) out[i] += g[i] / b[i];
}

void DivGradBBody(const float* DESALIGN_RESTRICT g,
                         const float* DESALIGN_RESTRICT a,
                         const float* DESALIGN_RESTRICT b,
                         float* DESALIGN_RESTRICT out, int64_t n) {
  for (int64_t i = 0; i < n; ++i) {
    const float bv = b[i];
    out[i] -= g[i] * a[i] / (bv * bv);
  }
}

void ReluGradBody(const float* DESALIGN_RESTRICT g,
                         const float* DESALIGN_RESTRICT x,
                         float* DESALIGN_RESTRICT out, int64_t n) {
  for (int64_t i = 0; i < n; ++i) {
    out[i] += g[i] * (x[i] > 0.0f ? 1.0f : 0.0f);
  }
}

void LeakyReluGradBody(const float* DESALIGN_RESTRICT g,
                              const float* DESALIGN_RESTRICT x, float slope,
                              float* DESALIGN_RESTRICT out, int64_t n) {
  for (int64_t i = 0; i < n; ++i) {
    out[i] += g[i] * (x[i] > 0.0f ? 1.0f : slope);
  }
}

void SigmoidGradBody(const float* DESALIGN_RESTRICT g,
                            const float* DESALIGN_RESTRICT y,
                            float* DESALIGN_RESTRICT out, int64_t n) {
  for (int64_t i = 0; i < n; ++i) out[i] += g[i] * (y[i] * (1.0f - y[i]));
}

void TanhGradBody(const float* DESALIGN_RESTRICT g,
                         const float* DESALIGN_RESTRICT y,
                         float* DESALIGN_RESTRICT out, int64_t n) {
  for (int64_t i = 0; i < n; ++i) out[i] += g[i] * (1.0f - y[i] * y[i]);
}

void LogEpsGradBody(const float* DESALIGN_RESTRICT g,
                           const float* DESALIGN_RESTRICT x, float eps,
                           float* DESALIGN_RESTRICT out, int64_t n) {
  for (int64_t i = 0; i < n; ++i) out[i] += g[i] * (1.0f / (x[i] + eps));
}

void SquareGradBody(const float* DESALIGN_RESTRICT g,
                           const float* DESALIGN_RESTRICT x,
                           float* DESALIGN_RESTRICT out, int64_t n) {
  for (int64_t i = 0; i < n; ++i) out[i] += g[i] * (2.0f * x[i]);
}

void AbsGradBody(const float* DESALIGN_RESTRICT g,
                        const float* DESALIGN_RESTRICT x,
                        float* DESALIGN_RESTRICT out, int64_t n) {
  for (int64_t i = 0; i < n; ++i) {
    out[i] += g[i] * (x[i] > 0.0f ? 1.0f : (x[i] < 0.0f ? -1.0f : 0.0f));
  }
}

void ClipGradBody(const float* DESALIGN_RESTRICT g,
                         const float* DESALIGN_RESTRICT x, float lo, float hi,
                         float* DESALIGN_RESTRICT out, int64_t n) {
  for (int64_t i = 0; i < n; ++i) {
    out[i] += g[i] * ((x[i] > lo && x[i] < hi) ? 1.0f : 0.0f);
  }
}

#undef DESALIGN_RESTRICT
