// AVX2 instantiation of the elementwise span bodies. The whole translation
// unit is compiled with 256-bit codegen enabled via the target pragma (the
// build itself stays baseline-x86-64 so the binary runs on CPUs without
// AVX2); nothing here executes unless dispatch.cc confirmed AVX2 support at
// runtime. The bodies are the same C++ as the scalar instantiation —
// lane-independent IEEE operations with -ffp-contract=off — so both levels
// are bit-identical; only the vector width differs.

#include "tensor/kernels/internal.h"

#if DESALIGN_KERNELS_HAVE_AVX2

#include <cmath>
#include <cstdint>

#pragma GCC push_options
#pragma GCC target("avx2")

namespace desalign::tensor::kernels {
namespace avx2_impl {
#include "tensor/kernels/span_bodies.inl"
}  // namespace avx2_impl
}  // namespace desalign::tensor::kernels

#pragma GCC pop_options

#endif  // DESALIGN_KERNELS_HAVE_AVX2
