#include "tensor/kernels/reference.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

// Transcribed from the pre-kernel-layer src/tensor/ops.cc (commit 805110d):
// plain serial loops, no restrict, no explicit vector paths. Do not
// "improve" these — their only job is to be exactly what the op layer used
// to execute.

namespace desalign::tensor::kernels::reference {

void Add(const float* a, const float* b, float* y, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] = a[i] + b[i];
}

void Sub(const float* a, const float* b, float* y, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] = a[i] - b[i];
}

void Mul(const float* a, const float* b, float* y, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] = a[i] * b[i];
}

void Div(const float* a, const float* b, float* y, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] = a[i] / b[i];
}

void Scale(const float* x, float s, float* y, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] = s * x[i];
}

void MulScalar(const float* x, float s, float* y, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] = x[i] * s;
}

void AddScalar(const float* x, float s, float* y, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] = x[i] + s;
}

void Relu(const float* x, float* y, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] = x[i] > 0.0f ? x[i] : 0.0f;
}

void LeakyRelu(const float* x, float slope, float* y, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] = x[i] > 0.0f ? x[i] : slope * x[i];
}

void Sigmoid(const float* x, float* y, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] = 1.0f / (1.0f + std::exp(-x[i]));
}

void Tanh(const float* x, float* y, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] = std::tanh(x[i]);
}

void Exp(const float* x, float* y, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] = std::exp(x[i]);
}

void LogEps(const float* x, float eps, float* y, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] = std::log(x[i] + eps);
}

void Square(const float* x, float* y, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] = x[i] * x[i];
}

void Abs(const float* x, float* y, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] = std::fabs(x[i]);
}

void Clip(const float* x, float lo, float hi, float* y, int64_t n) {
  for (int64_t i = 0; i < n; ++i) {
    y[i] = x[i] < lo ? lo : (x[i] > hi ? hi : x[i]);
  }
}

void Accumulate(const float* g, float* out, int64_t n) {
  for (int64_t i = 0; i < n; ++i) out[i] += g[i];
}

void AccumulateNeg(const float* g, float* out, int64_t n) {
  for (int64_t i = 0; i < n; ++i) out[i] -= g[i];
}

void Axpy(float alpha, const float* x, float* out, int64_t n) {
  for (int64_t i = 0; i < n; ++i) out[i] += alpha * x[i];
}

void AccumulateConstant(float v, float* out, int64_t n) {
  for (int64_t i = 0; i < n; ++i) out[i] += v;
}

void AccumulateScaled(const float* g, float s, float* out, int64_t n) {
  for (int64_t i = 0; i < n; ++i) out[i] += g[i] * s;
}

void AccumulateProduct(const float* g, const float* x, float* out,
                       int64_t n) {
  for (int64_t i = 0; i < n; ++i) out[i] += g[i] * x[i];
}

void AccumulateQuotient(const float* g, const float* b, float* out,
                        int64_t n) {
  for (int64_t i = 0; i < n; ++i) out[i] += g[i] / b[i];
}

void DivGradB(const float* g, const float* a, const float* b, float* out,
              int64_t n) {
  for (int64_t i = 0; i < n; ++i) {
    const float bv = b[i];
    out[i] -= g[i] * a[i] / (bv * bv);
  }
}

void ReluGrad(const float* g, const float* x, float* out, int64_t n) {
  for (int64_t i = 0; i < n; ++i) {
    out[i] += g[i] * (x[i] > 0.0f ? 1.0f : 0.0f);
  }
}

void LeakyReluGrad(const float* g, const float* x, float slope, float* out,
                   int64_t n) {
  for (int64_t i = 0; i < n; ++i) {
    out[i] += g[i] * (x[i] > 0.0f ? 1.0f : slope);
  }
}

void SigmoidGrad(const float* g, const float* y, float* out, int64_t n) {
  for (int64_t i = 0; i < n; ++i) out[i] += g[i] * (y[i] * (1.0f - y[i]));
}

void TanhGrad(const float* g, const float* y, float* out, int64_t n) {
  for (int64_t i = 0; i < n; ++i) out[i] += g[i] * (1.0f - y[i] * y[i]);
}

void LogEpsGrad(const float* g, const float* x, float eps, float* out,
                int64_t n) {
  for (int64_t i = 0; i < n; ++i) out[i] += g[i] * (1.0f / (x[i] + eps));
}

void SquareGrad(const float* g, const float* x, float* out, int64_t n) {
  for (int64_t i = 0; i < n; ++i) out[i] += g[i] * (2.0f * x[i]);
}

void AbsGrad(const float* g, const float* x, float* out, int64_t n) {
  for (int64_t i = 0; i < n; ++i) {
    out[i] += g[i] * (x[i] > 0.0f ? 1.0f : (x[i] < 0.0f ? -1.0f : 0.0f));
  }
}

void ClipGrad(const float* g, const float* x, float lo, float hi, float* out,
              int64_t n) {
  for (int64_t i = 0; i < n; ++i) {
    out[i] += g[i] * ((x[i] > lo && x[i] < hi) ? 1.0f : 0.0f);
  }
}

void AddRowBroadcast(const float* a, const float* row, float* y, int64_t n,
                     int64_t c) {
  for (int64_t r = 0; r < n; ++r) {
    for (int64_t j = 0; j < c; ++j) y[r * c + j] = a[r * c + j] + row[j];
  }
}

void MulRowBroadcast(const float* a, const float* row, float* y, int64_t n,
                     int64_t c) {
  for (int64_t r = 0; r < n; ++r) {
    for (int64_t j = 0; j < c; ++j) y[r * c + j] = a[r * c + j] * row[j];
  }
}

void MulRowBroadcastAcc(const float* g, const float* row, float* out,
                        int64_t n, int64_t c) {
  for (int64_t r = 0; r < n; ++r) {
    for (int64_t j = 0; j < c; ++j) out[r * c + j] += g[r * c + j] * row[j];
  }
}

void RowScale(const float* a, const float* s, float* y, int64_t n,
              int64_t c) {
  for (int64_t r = 0; r < n; ++r) {
    const float sv = s[r];
    for (int64_t j = 0; j < c; ++j) y[r * c + j] = a[r * c + j] * sv;
  }
}

void RowScaleAcc(const float* g, const float* s, float* out, int64_t n,
                 int64_t c) {
  for (int64_t r = 0; r < n; ++r) {
    const float sv = s[r];
    for (int64_t j = 0; j < c; ++j) out[r * c + j] += g[r * c + j] * sv;
  }
}

void RowDotAcc(const float* g, const float* x, float* out, int64_t n,
               int64_t c) {
  for (int64_t r = 0; r < n; ++r) {
    float acc = 0.0f;
    for (int64_t j = 0; j < c; ++j) acc += g[r * c + j] * x[r * c + j];
    out[r] += acc;
  }
}

void AddColBroadcastAcc(const float* g, float* out, int64_t n, int64_t c) {
  for (int64_t r = 0; r < n; ++r) {
    for (int64_t j = 0; j < c; ++j) out[r * c + j] += g[r];
  }
}

void ColumnAcc(const float* g, float* out, int64_t n, int64_t c) {
  for (int64_t r = 0; r < n; ++r) {
    for (int64_t j = 0; j < c; ++j) out[j] += g[r * c + j];
  }
}

void ColumnAccMul(const float* g, const float* x, float* out, int64_t n,
                  int64_t c) {
  for (int64_t r = 0; r < n; ++r) {
    for (int64_t j = 0; j < c; ++j) out[j] += g[r * c + j] * x[r * c + j];
  }
}

void RowSoftmax(const float* a, float* y, int64_t n, int64_t c) {
  for (int64_t r = 0; r < n; ++r) {
    float mx = -std::numeric_limits<float>::infinity();
    for (int64_t j = 0; j < c; ++j) mx = std::max(mx, a[r * c + j]);
    float denom = 0.0f;
    for (int64_t j = 0; j < c; ++j) {
      const float e = std::exp(a[r * c + j] - mx);
      y[r * c + j] = e;
      denom += e;
    }
    for (int64_t j = 0; j < c; ++j) y[r * c + j] /= denom;
  }
}

void RowSoftmaxGrad(const float* y, const float* g, float* out, int64_t n,
                    int64_t c) {
  for (int64_t r = 0; r < n; ++r) {
    float dot = 0.0f;
    for (int64_t j = 0; j < c; ++j) dot += g[r * c + j] * y[r * c + j];
    for (int64_t j = 0; j < c; ++j) {
      out[r * c + j] += y[r * c + j] * (g[r * c + j] - dot);
    }
  }
}

void RowLogSoftmax(const float* a, float* y, int64_t n, int64_t c) {
  for (int64_t r = 0; r < n; ++r) {
    float mx = -std::numeric_limits<float>::infinity();
    for (int64_t j = 0; j < c; ++j) mx = std::max(mx, a[r * c + j]);
    float denom = 0.0f;
    for (int64_t j = 0; j < c; ++j) denom += std::exp(a[r * c + j] - mx);
    const float logz = mx + std::log(denom);
    for (int64_t j = 0; j < c; ++j) y[r * c + j] = a[r * c + j] - logz;
  }
}

void RowLogSoftmaxGrad(const float* y, const float* g, float* out, int64_t n,
                       int64_t c) {
  for (int64_t r = 0; r < n; ++r) {
    float gsum = 0.0f;
    for (int64_t j = 0; j < c; ++j) gsum += g[r * c + j];
    for (int64_t j = 0; j < c; ++j) {
      const float sm = std::exp(y[r * c + j]);
      out[r * c + j] += g[r * c + j] - sm * gsum;
    }
  }
}

void RowL2Normalize(const float* a, float eps, float* y, float* norms,
                    int64_t n, int64_t c) {
  for (int64_t r = 0; r < n; ++r) {
    double acc = 0.0;
    for (int64_t j = 0; j < c; ++j) {
      const float v = a[r * c + j];
      acc += static_cast<double>(v) * v;
    }
    norms[r] = static_cast<float>(std::sqrt(acc + eps));
    for (int64_t j = 0; j < c; ++j) y[r * c + j] = a[r * c + j] / norms[r];
  }
}

void RowL2NormalizeGrad(const float* y, const float* g, const float* norms,
                        float* out, int64_t n, int64_t c) {
  for (int64_t r = 0; r < n; ++r) {
    float dot = 0.0f;
    for (int64_t j = 0; j < c; ++j) dot += g[r * c + j] * y[r * c + j];
    for (int64_t j = 0; j < c; ++j) {
      out[r * c + j] += (g[r * c + j] - y[r * c + j] * dot) / norms[r];
    }
  }
}

void LayerNormForward(const float* x, const float* gamma, const float* beta,
                      float eps, float* y, float* xhat, float* inv_sigma,
                      int64_t n, int64_t c) {
  for (int64_t r = 0; r < n; ++r) {
    double mean = 0.0;
    for (int64_t j = 0; j < c; ++j) mean += x[r * c + j];
    mean /= c;
    double var = 0.0;
    for (int64_t j = 0; j < c; ++j) {
      const double d = x[r * c + j] - mean;
      var += d * d;
    }
    var /= c;
    inv_sigma[r] = static_cast<float>(1.0 / std::sqrt(var + eps));
    for (int64_t j = 0; j < c; ++j) {
      const float xh = (x[r * c + j] - static_cast<float>(mean)) *
                       inv_sigma[r];
      xhat[r * c + j] = xh;
      y[r * c + j] = gamma[j] * xh + beta[j];
    }
  }
}

void LayerNormGradX(const float* g, const float* gamma, const float* xhat,
                    const float* inv_sigma, float* gx, int64_t n, int64_t c) {
  for (int64_t r = 0; r < n; ++r) {
    float mean_d = 0.0f;
    float mean_dx = 0.0f;
    for (int64_t j = 0; j < c; ++j) {
      const float d = gamma[j] * g[r * c + j];
      mean_d += d;
      mean_dx += d * xhat[r * c + j];
    }
    mean_d /= c;
    mean_dx /= c;
    for (int64_t j = 0; j < c; ++j) {
      const float d = gamma[j] * g[r * c + j];
      gx[r * c + j] += (d - mean_d - xhat[r * c + j] * mean_dx) *
                       inv_sigma[r];
    }
  }
}

void GatherRows(const float* a, const int64_t* indices, float* y, int64_t e,
                int64_t c) {
  for (int64_t i = 0; i < e; ++i) {
    std::memcpy(y + i * c, a + indices[i] * c,
                static_cast<size_t>(c) * sizeof(float));
  }
}

void ScatterAddRows(const float* g, const int64_t* indices, float* out,
                    int64_t e, int64_t c) {
  for (int64_t i = 0; i < e; ++i) {
    for (int64_t j = 0; j < c; ++j) {
      out[indices[i] * c + j] += g[i * c + j];
    }
  }
}

void GatherRowsAcc(const float* g, const int64_t* indices, float* out,
                   int64_t e, int64_t c) {
  for (int64_t i = 0; i < e; ++i) {
    for (int64_t j = 0; j < c; ++j) {
      out[i * c + j] += g[indices[i] * c + j];
    }
  }
}

void Transpose(const float* a, float* y, int64_t m, int64_t n) {
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) y[j * m + i] = a[i * n + j];
  }
}

void TransposeAcc(const float* g, float* out, int64_t m, int64_t n) {
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) out[i * n + j] += g[j * m + i];
  }
}

void MatMul(const float* a, const float* b, float* y, int64_t m, int64_t k,
            int64_t n) {
  std::memset(y, 0, static_cast<size_t>(m * n) * sizeof(float));
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t p = 0; p < k; ++p) {
      const float av = a[i * k + p];
      if (av == 0.0f) continue;
      const float* br = b + p * n;
      float* yrow = y + i * n;
      for (int64_t j = 0; j < n; ++j) yrow[j] += av * br[j];
    }
  }
}

void MatMulGradA(const float* g, const float* b, float* ga, int64_t m,
                 int64_t k, int64_t n) {
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t p = 0; p < k; ++p) {
      const float* grow = g + i * n;
      const float* brow = b + p * n;
      float acc = 0.0f;
      for (int64_t j = 0; j < n; ++j) acc += grow[j] * brow[j];
      ga[i * k + p] += acc;
    }
  }
}

void MatMulGradB(const float* g, const float* a, float* gb, int64_t m,
                 int64_t k, int64_t n) {
  for (int64_t i = 0; i < m; ++i) {
    const float* grow = g + i * n;
    for (int64_t p = 0; p < k; ++p) {
      const float av = a[i * k + p];
      if (av == 0.0f) continue;
      float* gbrow = gb + p * n;
      for (int64_t j = 0; j < n; ++j) gbrow[j] += av * grow[j];
    }
  }
}

}  // namespace desalign::tensor::kernels::reference
