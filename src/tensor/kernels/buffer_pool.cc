#include "tensor/kernels/buffer_pool.h"

#include <bit>
#include <utility>

#include "obs/metrics.h"

namespace desalign::tensor::kernels {

namespace {

// Registry handles are created once and cached; MetricsRegistry::ResetAll
// zeroes them in place without invalidating the references. The pool's own
// Stats struct stays authoritative (tests read it); the obs counters are the
// export surface (`run --metrics-out`, serve /metrics).
struct PoolObs {
  obs::Counter& hit;
  obs::Counter& miss;
  obs::Counter& release;
  obs::Counter& discard;
  obs::Gauge& cached_bytes;
};

PoolObs& Obs() {
  static PoolObs* obs = new PoolObs{
      obs::MetricsRegistry::Global().GetCounter("tensor.pool.hit"),
      obs::MetricsRegistry::Global().GetCounter("tensor.pool.miss"),
      obs::MetricsRegistry::Global().GetCounter("tensor.pool.release"),
      obs::MetricsRegistry::Global().GetCounter("tensor.pool.discard"),
      obs::MetricsRegistry::Global().GetGauge("tensor.pool.cached_bytes"),
  };
  return *obs;
}

size_t CapacityForBucket(int bucket) {
  return size_t{1} << (BufferPool::kMinCapacityLog2 + bucket);
}

}  // namespace

BufferPool& BufferPool::Global() {
  // Leaked deliberately: Tensors (and therefore Release calls) can outlive
  // any static destruction order we could arrange.
  static BufferPool* pool = new BufferPool();
  return *pool;
}

int BufferPool::BucketForRequest(size_t n) {
  const int ceil_log2 =
      n <= 1 ? 0 : static_cast<int>(std::bit_width(n - 1));
  const int bucket = ceil_log2 <= kMinCapacityLog2
                         ? 0
                         : ceil_log2 - kMinCapacityLog2;
  return bucket < kNumBuckets ? bucket : -1;
}

int BufferPool::BucketForCapacity(size_t capacity) {
  if (capacity == 0) return -1;
  const int floor_log2 = static_cast<int>(std::bit_width(capacity)) - 1;
  if (floor_log2 < kMinCapacityLog2) return -1;
  const int bucket = floor_log2 - kMinCapacityLog2;
  // Oversized buffers live in the top bucket: their capacity still covers
  // every request routed there.
  return bucket < kNumBuckets ? bucket : kNumBuckets - 1;
}

std::vector<float> BufferPool::Acquire(size_t n, bool zero) {
  if (n == 0) return {};
  const int bucket = BucketForRequest(n);
  std::vector<float> buf;
  bool pooled = false;
  bool hit = false;
  {
    common::MutexLock lock(mutex_);
    if (enabled_) {
      pooled = true;
      if (bucket >= 0 && !buckets_[bucket].empty()) {
        buf = std::move(buckets_[bucket].back());
        buckets_[bucket].pop_back();
        stats_.hits++;
        stats_.cached_buffers--;
        stats_.cached_bytes -=
            static_cast<int64_t>(buf.capacity() * sizeof(float));
        hit = true;
      } else {
        stats_.misses++;
      }
    }
  }
  if (pooled) {
    if (hit) {
      Obs().hit.Increment();
    } else {
      Obs().miss.Increment();
    }
  }
  if (!hit) {
    if (pooled && bucket >= 0) {
      // Round fresh allocations up to the bucket capacity so the buffer can
      // serve any request in its bucket once released.
      buf.reserve(CapacityForBucket(bucket));
    }
    buf.resize(n);  // fresh storage: value-initialized, so `zero` holds
    return buf;
  }
  if (zero) {
    buf.assign(n, 0.0f);
  } else {
    // resize() never writes elements below the old size; a shrink is free
    // and a grow zero-fills only the tail. Stale contents are exactly the
    // "unspecified" contract of zero=false.
    buf.resize(n);
  }
  return buf;
}

void BufferPool::Release(std::vector<float>&& buf) {
  if (buf.capacity() == 0) return;
  const int bucket = BucketForCapacity(buf.capacity());
  bool cached = false;
  bool pooled = false;
  {
    common::MutexLock lock(mutex_);
    if (enabled_) {
      pooled = true;
      if (bucket >= 0 && buckets_[bucket].size() < kMaxBuffersPerBucket) {
        stats_.releases++;
        stats_.cached_buffers++;
        stats_.cached_bytes +=
            static_cast<int64_t>(buf.capacity() * sizeof(float));
        buckets_[bucket].push_back(std::move(buf));
        cached = true;
      } else {
        stats_.discards++;
      }
    }
  }
  if (pooled) {
    if (cached) {
      Obs().release.Increment();
    } else {
      Obs().discard.Increment();
    }
    Obs().cached_bytes.Set(static_cast<double>([this] {
      common::MutexLock lock(mutex_);
      return stats_.cached_bytes;
    }()));
  }
}

bool BufferPool::enabled() const {
  common::MutexLock lock(mutex_);
  return enabled_;
}

void BufferPool::set_enabled(bool enabled) {
  common::MutexLock lock(mutex_);
  enabled_ = enabled;
}

void BufferPool::Clear() {
  common::MutexLock lock(mutex_);
  for (auto& bucket : buckets_) bucket.clear();
  stats_.cached_buffers = 0;
  stats_.cached_bytes = 0;
}

void BufferPool::ResetStats() {
  common::MutexLock lock(mutex_);
  stats_.hits = 0;
  stats_.misses = 0;
  stats_.releases = 0;
  stats_.discards = 0;
}

BufferPool::Stats BufferPool::GetStats() const {
  common::MutexLock lock(mutex_);
  return stats_;
}

}  // namespace desalign::tensor::kernels
