#ifndef DESALIGN_TENSOR_KERNELS_GEMM_H_
#define DESALIGN_TENSOR_KERNELS_GEMM_H_

#include <cstdint>

// Dense matmul forward/backward kernels, row-partitioned over disjoint
// output rows (bit-deterministic for any thread count — see rowwise.h for
// the contract). Shapes follow ops::MatMul: a is (m x k), b is (k x n),
// y/g are (m x n), ga is (m x k), gb is (k x n); all row-major contiguous.

namespace desalign::tensor::kernels {

// y = a * b. y may be uninitialized: each output row is zeroed before
// accumulation, preserving the zero-initialized + ikj accumulation order of
// the serial implementation this replaced (including its skip of zero
// a-elements).
void MatMul(const float* a, const float* b, float* y, int64_t m, int64_t k,
            int64_t n);

// ga += g * b^T. Internally transposes b once (pooled workspace) and streams
// each output row as a sequence of axpy operations over j — the summation
// order per (i,p) element is exactly the serial dot product's j-ascending
// order, but the inner loop is lane-independent and vectorizes.
void MatMulGradA(const float* g, const float* b, float* ga, int64_t m,
                 int64_t k, int64_t n);

// gb += a^T * g, partitioned over rows of gb; rows of g are applied in
// ascending i order per chunk (matching the serial i-outer loop), and zero
// a-elements are skipped exactly as before.
void MatMulGradB(const float* g, const float* a, float* gb, int64_t m,
                 int64_t k, int64_t n);

}  // namespace desalign::tensor::kernels

#endif  // DESALIGN_TENSOR_KERNELS_GEMM_H_
