#include "tensor/kernels/solver/gemm_blocked.h"

#include <algorithm>
#include <cstring>

#include "common/thread_pool.h"
#include "tensor/kernels/buffer_pool.h"
#include "tensor/kernels/elementwise.h"
#include "tensor/kernels/internal.h"
#include "tensor/kernels/rowwise.h"

namespace desalign::tensor::kernels::solver::blocked {

namespace detail {
// Defined in gemm_blocked_avx2.cc under #pragma GCC target("avx2").
// ap is an (8 x kc) packed tile (ap[p*8 + r]), bp a (kc x 8) packed panel
// (bp[p*8 + j]), c an 8x8 tile at row stride ldc.
void MicroKernel8x8Avx2(const float* ap, const float* bp, float* c,
                        int64_t ldc, int64_t kc, bool skip_zero_a);
}  // namespace detail

namespace {

constexpr int64_t kMr = 8;    // micro-tile rows (register-blocked in C)
constexpr int64_t kNr = 8;    // micro-tile cols (one AVX2 float vector)
constexpr int64_t kKc = 256;  // K block: an A tile is 8 x 256 = 8 KB (L1)
constexpr int64_t kNc = 2048; // N block: a B panel is at most 2 MB (L2/L3)

// Scalar micro-kernel over a (rows x cols) tile, rows/cols <= 8. Also the
// edge-tile path under AVX2. ap is packed (ap[p*rows + r]), bp packed
// (bp[p*cols + j]). The per-element chain — ascending p, separate
// round(mul) and round(add), optional zero-skip — is exactly the vector
// kernel's and the reference's.
template <bool kSkipZeroA>
void MicroScalar(const float* ap, const float* bp, float* c, int64_t ldc,
                 int64_t kc, int64_t rows, int64_t cols) {
  for (int64_t p = 0; p < kc; ++p) {
    const float* brow = bp + p * cols;
    const float* acol = ap + p * rows;
    for (int64_t r = 0; r < rows; ++r) {
      const float av = acol[r];
      if (kSkipZeroA && av == 0.0f) continue;
      float* crow = c + r * ldc;
      for (int64_t j = 0; j < cols; ++j) {
        crow[j] += av * brow[j];
      }
    }
  }
}

// Packs a (rows x kc) slice of `a` (row stride lda) into ap[p*rows + r].
void PackATile(const float* a, int64_t lda, int64_t rows, int64_t kc,
               float* ap) {
  for (int64_t r = 0; r < rows; ++r) {
    const float* arow = a + r * lda;
    for (int64_t p = 0; p < kc; ++p) {
      ap[p * rows + r] = arow[p];
    }
  }
}

// Packs a (kc x nc) slice of `b` (row stride ldb) into kNr-wide micro
// panels: panel q starts at bp + q*kc*kNr and holds bp[p*width + j] for its
// `width` columns (only the last panel may be narrower).
void PackBPanel(const float* b, int64_t ldb, int64_t kc, int64_t nc,
                float* bp) {
  const int64_t panels = (nc + kNr - 1) / kNr;
  for (int64_t q = 0; q < panels; ++q) {
    const int64_t j0 = q * kNr;
    const int64_t width = std::min(kNr, nc - j0);
    float* dst = bp + q * kc * kNr;
    for (int64_t p = 0; p < kc; ++p) {
      const float* brow = b + p * ldb + j0;
      for (int64_t j = 0; j < width; ++j) {
        dst[p * width + j] = brow[j];
      }
    }
  }
}

}  // namespace

void GemmAccumulate(const float* a, const float* b, float* c, int64_t m,
                    int64_t k, int64_t n, bool skip_zero_a, IsaLevel isa) {
  if (m <= 0 || k <= 0 || n <= 0) return;
#if DESALIGN_KERNELS_HAVE_AVX2
  const bool use_avx2 = (isa == IsaLevel::kAvx2);
#else
  (void)isa;
#endif
  const int64_t row_tiles = (m + kMr - 1) / kMr;
  // Grain in row tiles; KernelGrain honors the forced test grain so the
  // bit-exactness suite exercises multi-chunk tilings on tiny shapes.
  const int64_t grain =
      std::max<int64_t>(1, KernelGrain(2 * k * n) / kMr);
  auto& pool = common::ThreadPool::Global();

  for (int64_t jc = 0; jc < n; jc += kNc) {
    const int64_t nc = std::min(kNc, n - jc);
    const int64_t col_panels = (nc + kNr - 1) / kNr;
    for (int64_t pc = 0; pc < k; pc += kKc) {
      const int64_t kc = std::min(kKc, k - pc);
      // B is packed once per (jc, pc) block by the calling thread; row
      // tiles then share it read-only.
      PooledBuffer bpack(static_cast<size_t>(kc * nc), /*zero=*/false);
      PackBPanel(b + pc * n + jc, n, kc, nc, bpack.data());
      const float* bp_base = bpack.data();

      pool.ParallelFor(
          0, row_tiles,
          [&](int64_t tile_begin, int64_t tile_end) {
            PooledBuffer apack(static_cast<size_t>(kMr * kc),
                               /*zero=*/false);
            for (int64_t t = tile_begin; t < tile_end; ++t) {
              const int64_t i0 = t * kMr;
              const int64_t rows = std::min(kMr, m - i0);
              PackATile(a + i0 * k + pc, k, rows, kc, apack.data());
              for (int64_t q = 0; q < col_panels; ++q) {
                const int64_t j0 = q * kNr;
                const int64_t cols = std::min(kNr, nc - j0);
                const float* bp = bp_base + q * kc * kNr;
                float* ctile = c + i0 * n + jc + j0;
#if DESALIGN_KERNELS_HAVE_AVX2
                if (use_avx2 && rows == kMr && cols == kNr) {
                  detail::MicroKernel8x8Avx2(apack.data(), bp, ctile, n, kc,
                                             skip_zero_a);
                } else
#endif
                if (skip_zero_a) {
                  MicroScalar<true>(apack.data(), bp, ctile, n, kc, rows,
                                    cols);
                } else {
                  MicroScalar<false>(apack.data(), bp, ctile, n, kc, rows,
                                     cols);
                }
              }
            }
          },
          grain);
    }
  }
}

void MatMul(const float* a, const float* b, float* y, int64_t m, int64_t k,
            int64_t n, IsaLevel isa) {
  // reference.cc zeroes y then accumulates i,p,j with the zero-a skip; the
  // memset covers k == 0 the same way the reference's empty p-loop does.
  std::memset(y, 0, static_cast<size_t>(m * n) * sizeof(float));
  GemmAccumulate(a, b, y, m, k, n, /*skip_zero_a=*/true, isa);
}

void MatMulGradA(const float* g, const float* b, float* ga, int64_t m,
                 int64_t k, int64_t n, IsaLevel isa) {
  // reference.cc computes a fresh float dot per (i,p) over ascending j —
  // no zero-skip — then adds it to ga once. Reproduced as: tmp = g·bT
  // accumulated from zero (ascending-j chain preserved across KC blocks by
  // GemmAccumulate's running C), then a single elementwise ga += tmp. The
  // n == 0 case still adds +0.0 into every ga element, exactly like the
  // reference's empty dot (-0.0 + 0.0 flips to +0.0; skipping the add
  // would not be bit-exact).
  if (m <= 0 || k <= 0) return;
  PooledBuffer tmp(static_cast<size_t>(m * k), /*zero=*/true);
  if (n > 0) {
    PooledBuffer bt(static_cast<size_t>(n * k), /*zero=*/false);
    Transpose(b, bt.data(), k, n);
    GemmAccumulate(g, bt.data(), tmp.data(), m, n, k,
                   /*skip_zero_a=*/false, isa);
  }
  Accumulate(tmp.data(), ga, m * k);
}

void MatMulGradB(const float* g, const float* a, float* gb, int64_t m,
                 int64_t k, int64_t n, IsaLevel isa) {
  // reference.cc accumulates straight into the caller's gb, ascending i,
  // skipping zero a-elements: exactly GemmAccumulate over aT (packed once)
  // with i as the reduction dimension and gb as the live accumulator.
  if (m <= 0 || k <= 0 || n <= 0) return;
  PooledBuffer at(static_cast<size_t>(m * k), /*zero=*/false);
  Transpose(a, at.data(), m, k);
  GemmAccumulate(at.data(), g, gb, k, m, n, /*skip_zero_a=*/true, isa);
}

}  // namespace desalign::tensor::kernels::solver::blocked
