#ifndef DESALIGN_TENSOR_KERNELS_SOLVER_SOLVER_H_
#define DESALIGN_TENSOR_KERNELS_SOLVER_SOLVER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "obs/metrics.h"
#include "tensor/kernels/dispatch.h"
#include "tensor/kernels/solver/find_db.h"

// GEMM solver registry, MIOpen-style: several interchangeable
// implementations per op, each declaring IsApplicable/Estimate, with the
// winner per (op, shape-bucket) chosen *offline* by `desalign tune` and
// persisted to a find-db file. Runtime dispatch only replays that cache —
// it never times anything — so kernel selection is a pure function of the
// tuning file on disk plus the problem shape, and therefore deterministic
// across thread counts, ISA levels and runs.
//
// Every registered solver is bit-identical to kernels/reference.cc (the
// docs/PERFORMANCE.md contract), so which solver the cache picks can only
// change speed, never a single output bit. The `solver`-labeled test suite
// enforces both halves: bit-exactness per solver, determinism of replay.

namespace desalign::tensor::kernels::solver {

/// The three dense-GEMM entry points the registry dispatches
/// (kernels::MatMul / MatMulGradA / MatMulGradB).
enum class GemmOp : uint8_t {
  kMatMul = 0,
  kMatMulGradA = 1,
  kMatMulGradB = 2,
};

/// "matmul_fwd" / "matmul_grad_a" / "matmul_grad_b" — matches the op names
/// kernel_bench emits, so tuning reports and bench JSON line up.
const char* GemmOpName(GemmOp op);

/// One concrete GEMM invocation as the registry sees it. Shapes follow
/// ops::MatMul: a is (m x k), b is (k x n), g/y are (m x n). `isa` and
/// `threads` describe the execution environment; they are part of the
/// problem (solvers may consult them in Estimate) but deliberately NOT part
/// of the persisted cache key — see ProblemKey.
struct GemmProblem {
  GemmOp op = GemmOp::kMatMul;
  int64_t m = 0;
  int64_t k = 0;
  int64_t n = 0;
  IsaLevel isa = IsaLevel::kScalar;
  int threads = 1;

  /// Problem for the current execution environment (ActiveIsa(), global
  /// thread pool width).
  static GemmProblem Current(GemmOp op, int64_t m, int64_t k, int64_t n);
};

/// A GEMM implementation. All inputs/outputs are row-major contiguous; the
/// operand order matches the public kernels:
///   kMatMul:      in1 = a (m x k), in2 = b (k x n), out = y  (m x n)
///   kMatMulGradA: in1 = g (m x n), in2 = b (k x n), out = ga (m x k)
///   kMatMulGradB: in1 = g (m x n), in2 = a (m x k), out = gb (k x n)
/// Run must be bit-identical to the corresponding reference.cc loop for
/// every applicable problem — including the grads' accumulate-into-out
/// semantics and the reference's skip of zero a-elements.
class GemmSolver {
 public:
  virtual ~GemmSolver() = default;

  /// Stable identifier persisted in the find-db (e.g. "gemm.rowaxpy").
  virtual const char* id() const = 0;

  /// Whether this solver can run `p` at all. Applicability must not depend
  /// on p.isa or p.threads (solvers carry their own scalar fallback paths),
  /// so that cache replay selects identically in every environment.
  virtual bool IsApplicable(const GemmProblem& p) const = 0;

  /// Rough prior in ns per logical element (m·k·n), used only to order
  /// tuning candidates and break exact timing ties deterministically. Never
  /// consulted by runtime selection.
  virtual double Estimate(const GemmProblem& p) const = 0;

  virtual void Run(const GemmProblem& p, const float* in1, const float* in2,
                   float* out) const = 0;
};

/// Process-wide solver table plus the replayed tuning cache.
///
/// The solver list is fixed at construction and immutable afterwards
/// (lock-free to read); the cache is mutex-guarded so `desalign tune` /
/// tests can reload it while other threads keep dispatching.
class SolverRegistry {
 public:
  static SolverRegistry& Global();

  /// All registered solvers, in registration order (deterministic; the
  /// default solver is first).
  const std::vector<const GemmSolver*>& Solvers() const { return solvers_; }

  /// nullptr when no solver carries `id` (e.g. a find-db written by a newer
  /// build).
  const GemmSolver* FindById(const std::string& id) const;

  /// The fixed fallback: the row-axpy kernels that predate the registry.
  /// Applicable to every problem, so Select can never fail.
  const GemmSolver* DefaultSolver() const { return solvers_.front(); }

  /// Solvers whose IsApplicable(p) holds, ordered by Estimate(p) ascending
  /// (ties broken by registration order). This is the tuner's candidate
  /// list; runtime selection does not use it.
  std::vector<const GemmSolver*> Applicable(const GemmProblem& p) const;

  /// Runtime selection: replay the find-db cache, nothing else. On the
  /// first call the cache is lazily loaded from FindDbPath() (a missing
  /// file is normal — an untuned machine — and simply leaves the cache
  /// empty; a corrupt file counts tensor.solver.cache_errors and is treated
  /// as empty). A cache hit whose solver id is unknown or inapplicable, or
  /// any miss, falls back to DefaultSolver(). Never returns nullptr and
  /// never measures anything.
  const GemmSolver* Select(const GemmProblem& p);

  /// Replaces the cache with the contents of `path`. On any load error the
  /// cache is cleared (dispatch falls back to defaults), cache_errors is
  /// incremented, and the error is returned; the process never aborts on a
  /// bad tuning file.
  common::Status ReloadCache(const std::string& path);

  /// Empties the cache (every Select falls back to the default solver) and
  /// suppresses the lazy default-path load. Tests use this for hermetic
  /// counter assertions.
  void ClearCache();

  /// Number of cached (op, shape-bucket) records.
  int64_t CacheSize() const;

 private:
  SolverRegistry();

  void EnsureCacheLoadedLocked() REQUIRES(mutex_);

  // Immutable after construction — safe to read without the lock.
  std::vector<const GemmSolver*> solvers_;

  mutable common::Mutex mutex_;
  FindDb cache_ GUARDED_BY(mutex_);
  bool cache_loaded_ GUARDED_BY(mutex_) = false;

  // obs::MetricsRegistry references are stable forever (see metrics.h).
  obs::Counter& cache_hit_;
  obs::Counter& cache_miss_;
  obs::Counter& fallback_;
  obs::Counter& cache_errors_;
};

/// The dispatch path the public gemm kernels call: builds the problem for
/// the current environment, Selects, Runs.
void DispatchGemm(GemmOp op, const float* in1, const float* in2, float* out,
                  int64_t m, int64_t k, int64_t n);

}  // namespace desalign::tensor::kernels::solver

#endif  // DESALIGN_TENSOR_KERNELS_SOLVER_SOLVER_H_
