#ifndef DESALIGN_TENSOR_KERNELS_SOLVER_FIND_DB_H_
#define DESALIGN_TENSOR_KERNELS_SOLVER_FIND_DB_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

// The persisted tuning cache ("find-db", after MIOpen's): winners chosen by
// `desalign tune`, keyed by (op, shape-bucket). Binary format v1:
//
//   offset size  field
//   0      4     magic "DSFD"
//   4      4     u32 version (= 1)
//   8      8     i64 tuned_at_unix (provenance stamp only, never selected on)
//   16     4     u32 record count
//   20     …     records, each:
//                  u8 op, u8 bm, u8 bk, u8 bn       (ProblemKey)
//                  u16 id_len, id bytes             (winning solver id)
//                  f64 best_ns_per_elem             (winner's tuned timing)
//                  f64 default_ns_per_elem          (default solver's timing)
//   end-4  4     u32 CRC32 over every preceding byte
//
// Integers and doubles are host-endian (the cache describes *this*
// machine; it is not a portable artifact). Any structural defect —
// truncation, bad magic, version skew, checksum mismatch, trailing bytes —
// makes Load return an error; the registry then runs on default solvers.

namespace desalign::tensor::kernels::solver {

struct GemmProblem;  // solver.h

/// Cache key: op plus ceil-log2 buckets of each extent. ISA and thread
/// count are deliberately excluded — the find-db answers "which solver for
/// this shape class", and every solver is bit-identical and carries its own
/// scalar path, so one answer serves every environment. That exclusion is
/// what makes cache replay deterministic across threads × ISA (asserted by
/// the determinism suite).
struct ProblemKey {
  uint8_t op = 0;
  uint8_t bm = 0;
  uint8_t bk = 0;
  uint8_t bn = 0;

  /// Ceil-log2 bucket: 0 for extents <= 1, else bit_width(extent - 1)
  /// (256 -> 8, 257..512 -> 9), clamped to 63.
  static uint8_t Bucket(int64_t extent);

  static ProblemKey FromProblem(const GemmProblem& p);

  friend bool operator==(const ProblemKey& a, const ProblemKey& b) {
    return a.op == b.op && a.bm == b.bm && a.bk == b.bk && a.bn == b.bn;
  }
  friend bool operator<(const ProblemKey& a, const ProblemKey& b);
};

struct FindDbRecord {
  ProblemKey key;
  std::string solver_id;
  double best_ns_per_elem = 0.0;
  double default_ns_per_elem = 0.0;
};

struct FindDb {
  static constexpr uint32_t kVersion = 1;

  int64_t tuned_at_unix = 0;
  /// Kept sorted by key (Upsert maintains the order, Deserialize verifies
  /// nothing beyond bounds — duplicate keys keep the last write).
  std::vector<FindDbRecord> records;

  const FindDbRecord* Find(const ProblemKey& key) const;
  void Upsert(FindDbRecord record);
  void Clear() { records.clear(); }

  std::string Serialize() const;
  static common::Result<FindDb> Deserialize(const std::string& bytes);

  /// Serialize + AtomicWriteFile, creating parent directories as needed.
  common::Status Save(const std::string& path) const;
  /// ReadFileToString + Deserialize. The registry checks existence before
  /// calling this, so "not tuned yet" never reaches the error path.
  static common::Result<FindDb> Load(const std::string& path);
};

/// Where the cache lives: $DESALIGN_TUNE_CACHE if set, else
/// $XDG_CACHE_HOME/desalign/gemm_find_db.bin, else
/// $HOME/.cache/desalign/gemm_find_db.bin, else a cwd-relative fallback.
/// `desalign tune --cache=PATH` overrides all of these when writing.
std::string FindDbPath();

}  // namespace desalign::tensor::kernels::solver

#endif  // DESALIGN_TENSOR_KERNELS_SOLVER_FIND_DB_H_
