#ifndef DESALIGN_TENSOR_KERNELS_SOLVER_TUNER_H_
#define DESALIGN_TENSOR_KERNELS_SOLVER_TUNER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "tensor/kernels/solver/find_db.h"
#include "tensor/kernels/solver/solver.h"

// The offline half of the solver pattern: `desalign tune` benchmarks every
// applicable solver per (op, shape) on *this* machine and persists the
// winners to the find-db. All timing lives here — runtime dispatch only
// replays the resulting file. Re-run after a hardware or build change; the
// cache can only change speed, never results, so a stale one is safe.

namespace desalign::tensor::kernels::solver {

struct TuneOptions {
  /// Cube edge lengths to tune (m = k = n = size); each op is tuned at
  /// every size. Distinct log2 buckets avoid overwriting one another.
  std::vector<int64_t> sizes = {64, 128, 256, 512};
  /// Timing repeats per solver; the minimum is kept (one warmup run first).
  int repeats = 5;
  /// Find-db destination; empty means FindDbPath().
  std::string cache_path;
};

struct TuneSolverTiming {
  std::string id;
  double ns_per_elem = 0.0;
};

struct TuneEntry {
  GemmOp op = GemmOp::kMatMul;
  int64_t m = 0;
  int64_t k = 0;
  int64_t n = 0;
  ProblemKey key;
  std::string winner;
  /// Candidate order (Estimate-ascending), one timing per applicable solver.
  std::vector<TuneSolverTiming> timings;
};

struct TuneReport {
  std::string cache_path;
  int64_t tuned_at_unix = 0;
  std::vector<TuneEntry> entries;

  /// `{"schema": "desalign.tune.v1", ...}` — consumed by tools/ci.sh.
  std::string ToJson() const;
};

/// Benchmarks, writes the find-db, returns the report. The registry's
/// in-process cache is reloaded from the written file on success, so a
/// process that tunes then trains replays its own winners immediately.
common::Result<TuneReport> RunTune(const TuneOptions& options);

}  // namespace desalign::tensor::kernels::solver

#endif  // DESALIGN_TENSOR_KERNELS_SOLVER_TUNER_H_
