// The 8x8 AVX2 microkernel for the blocked GEMM solver, isolated in its own
// translation unit so `#pragma GCC target("avx2")` applies only here (the
// same scheme avx2.cc uses for the span bodies). The scalar twin lives in
// gemm_blocked.cc; runtime dispatch picks between them via ActiveIsa().
//
// Deliberately no _mm256_fmadd_ps anywhere: the build sets
// -ffp-contract=off and the bit-exactness contract requires the same two
// roundings (mul, then add) the scalar chain performs.

#include <cstdint>

#include "tensor/kernels/internal.h"

#if DESALIGN_KERNELS_HAVE_AVX2

#include <immintrin.h>

#pragma GCC push_options
#pragma GCC target("avx2")

namespace desalign::tensor::kernels::solver::blocked::detail {

namespace {

template <bool kSkipZeroA>
inline void Micro8x8(const float* __restrict__ ap,
                     const float* __restrict__ bp, float* __restrict__ c,
                     int64_t ldc, int64_t kc) {
  // The full C tile stays in registers across the KC reduction — the whole
  // point of the blocking: one load+store of C per (tile, KC block) instead
  // of the row-axpy kernel's read-modify-write of y per reduction step.
  __m256 acc0 = _mm256_loadu_ps(c + 0 * ldc);
  __m256 acc1 = _mm256_loadu_ps(c + 1 * ldc);
  __m256 acc2 = _mm256_loadu_ps(c + 2 * ldc);
  __m256 acc3 = _mm256_loadu_ps(c + 3 * ldc);
  __m256 acc4 = _mm256_loadu_ps(c + 4 * ldc);
  __m256 acc5 = _mm256_loadu_ps(c + 5 * ldc);
  __m256 acc6 = _mm256_loadu_ps(c + 6 * ldc);
  __m256 acc7 = _mm256_loadu_ps(c + 7 * ldc);
  for (int64_t p = 0; p < kc; ++p) {
    const __m256 bv = _mm256_loadu_ps(bp + p * 8);
    const float* acol = ap + p * 8;
#define DESALIGN_GEMM_ROW(R)                                             \
  do {                                                                   \
    const float av = acol[R];                                            \
    if (!kSkipZeroA || av != 0.0f) {                                     \
      acc##R = _mm256_add_ps(acc##R,                                     \
                             _mm256_mul_ps(_mm256_set1_ps(av), bv));     \
    }                                                                    \
  } while (false)
    DESALIGN_GEMM_ROW(0);
    DESALIGN_GEMM_ROW(1);
    DESALIGN_GEMM_ROW(2);
    DESALIGN_GEMM_ROW(3);
    DESALIGN_GEMM_ROW(4);
    DESALIGN_GEMM_ROW(5);
    DESALIGN_GEMM_ROW(6);
    DESALIGN_GEMM_ROW(7);
#undef DESALIGN_GEMM_ROW
  }
  _mm256_storeu_ps(c + 0 * ldc, acc0);
  _mm256_storeu_ps(c + 1 * ldc, acc1);
  _mm256_storeu_ps(c + 2 * ldc, acc2);
  _mm256_storeu_ps(c + 3 * ldc, acc3);
  _mm256_storeu_ps(c + 4 * ldc, acc4);
  _mm256_storeu_ps(c + 5 * ldc, acc5);
  _mm256_storeu_ps(c + 6 * ldc, acc6);
  _mm256_storeu_ps(c + 7 * ldc, acc7);
}

}  // namespace

void MicroKernel8x8Avx2(const float* ap, const float* bp, float* c,
                        int64_t ldc, int64_t kc, bool skip_zero_a) {
  if (skip_zero_a) {
    Micro8x8<true>(ap, bp, c, ldc, kc);
  } else {
    Micro8x8<false>(ap, bp, c, ldc, kc);
  }
}

}  // namespace desalign::tensor::kernels::solver::blocked::detail

#pragma GCC pop_options

#endif  // DESALIGN_KERNELS_HAVE_AVX2
