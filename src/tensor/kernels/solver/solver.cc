#include "tensor/kernels/solver/solver.h"

#include <algorithm>
#include <filesystem>

#include "common/thread_pool.h"
#include "tensor/kernels/internal.h"
#include "tensor/kernels/solver/gemm_blocked.h"

namespace desalign::tensor::kernels::solver {

const char* GemmOpName(GemmOp op) {
  switch (op) {
    case GemmOp::kMatMul:
      return "matmul_fwd";
    case GemmOp::kMatMulGradA:
      return "matmul_grad_a";
    case GemmOp::kMatMulGradB:
      return "matmul_grad_b";
  }
  return "matmul_fwd";
}

GemmProblem GemmProblem::Current(GemmOp op, int64_t m, int64_t k, int64_t n) {
  GemmProblem p;
  p.op = op;
  p.m = m;
  p.k = k;
  p.n = n;
  p.isa = ActiveIsa();
  p.threads = common::ThreadPool::Global().num_threads();
  return p;
}

namespace {

// The pre-registry kernels (gemm.cc's row-axpy loop nests), wrapped as the
// fixed default solver. Applicable everywhere; its Estimate is the baseline
// the others are priced against.
class RowAxpySolver : public GemmSolver {
 public:
  const char* id() const override { return "gemm.rowaxpy"; }

  bool IsApplicable(const GemmProblem&) const override { return true; }

  double Estimate(const GemmProblem&) const override { return 0.12; }

  void Run(const GemmProblem& p, const float* in1, const float* in2,
           float* out) const override {
    switch (p.op) {
      case GemmOp::kMatMul:
        rowaxpy::MatMul(in1, in2, out, p.m, p.k, p.n);
        return;
      case GemmOp::kMatMulGradA:
        rowaxpy::MatMulGradA(in1, in2, out, p.m, p.k, p.n);
        return;
      case GemmOp::kMatMulGradB:
        rowaxpy::MatMulGradB(in1, in2, out, p.m, p.k, p.n);
        return;
    }
  }
};

class BlockedGemmSolver : public GemmSolver {
 public:
  const char* id() const override { return "gemm.blocked8x8"; }

  // Applicable to every shape (the scalar microkernel twin covers non-AVX2
  // environments and tile edges), keeping applicability independent of
  // p.isa / p.threads as the determinism contract requires.
  bool IsApplicable(const GemmProblem&) const override { return true; }

  double Estimate(const GemmProblem& p) const override {
    // Packing overhead dominates until the reduction is long enough for
    // the register-resident C tile to pay for itself.
    const int64_t inner = std::min(p.m, std::min(p.k, p.n));
    return inner < 32 ? 0.50 : 0.05;
  }

  void Run(const GemmProblem& p, const float* in1, const float* in2,
           float* out) const override {
    switch (p.op) {
      case GemmOp::kMatMul:
        blocked::MatMul(in1, in2, out, p.m, p.k, p.n, p.isa);
        return;
      case GemmOp::kMatMulGradA:
        blocked::MatMulGradA(in1, in2, out, p.m, p.k, p.n, p.isa);
        return;
      case GemmOp::kMatMulGradB:
        blocked::MatMulGradB(in1, in2, out, p.m, p.k, p.n, p.isa);
        return;
    }
  }
};

}  // namespace

SolverRegistry& SolverRegistry::Global() {
  // Leaked like BufferPool::Global: kernels can run during static
  // destruction of other objects.
  static SolverRegistry* registry = new SolverRegistry();
  return *registry;
}

SolverRegistry::SolverRegistry()
    : cache_hit_(
          obs::MetricsRegistry::Global().GetCounter("tensor.solver.cache_hit")),
      cache_miss_(obs::MetricsRegistry::Global().GetCounter(
          "tensor.solver.cache_miss")),
      fallback_(
          obs::MetricsRegistry::Global().GetCounter("tensor.solver.fallback")),
      cache_errors_(obs::MetricsRegistry::Global().GetCounter(
          "tensor.solver.cache_errors")) {
  // Registration order is the deterministic tie-break everywhere; the
  // default solver must be first (DefaultSolver() is front()).
  static RowAxpySolver row_axpy;
  static BlockedGemmSolver blocked;
  solvers_ = {&row_axpy, &blocked};
}

const GemmSolver* SolverRegistry::FindById(const std::string& id) const {
  for (const GemmSolver* s : solvers_) {
    if (id == s->id()) return s;
  }
  return nullptr;
}

std::vector<const GemmSolver*> SolverRegistry::Applicable(
    const GemmProblem& p) const {
  std::vector<const GemmSolver*> out;
  for (const GemmSolver* s : solvers_) {
    if (s->IsApplicable(p)) out.push_back(s);
  }
  std::stable_sort(out.begin(), out.end(),
                   [&p](const GemmSolver* a, const GemmSolver* b) {
                     return a->Estimate(p) < b->Estimate(p);
                   });
  return out;
}

void SolverRegistry::EnsureCacheLoadedLocked() {
  if (cache_loaded_) return;
  cache_loaded_ = true;
  const std::string path = FindDbPath();
  std::error_code ec;
  if (!std::filesystem::exists(path, ec)) return;  // untuned: not an error
  auto loaded = FindDb::Load(path);
  if (loaded.ok()) {
    cache_ = std::move(loaded).value();
  } else {
    cache_errors_.Increment();
  }
}

const GemmSolver* SolverRegistry::Select(const GemmProblem& p) {
  {
    common::MutexLock lock(mutex_);
    EnsureCacheLoadedLocked();
    const FindDbRecord* rec = cache_.Find(ProblemKey::FromProblem(p));
    if (rec != nullptr) {
      const GemmSolver* s = FindById(rec->solver_id);
      if (s != nullptr && s->IsApplicable(p)) {
        cache_hit_.Increment();
        return s;
      }
      // Cached winner from another build / no longer applicable: fall back.
    } else {
      cache_miss_.Increment();
    }
  }
  fallback_.Increment();
  return DefaultSolver();
}

common::Status SolverRegistry::ReloadCache(const std::string& path) {
  auto loaded = FindDb::Load(path);
  common::MutexLock lock(mutex_);
  cache_loaded_ = true;
  if (!loaded.ok()) {
    cache_.Clear();
    cache_errors_.Increment();
    return loaded.status();
  }
  cache_ = std::move(loaded).value();
  return common::Status::Ok();
}

void SolverRegistry::ClearCache() {
  common::MutexLock lock(mutex_);
  cache_.Clear();
  cache_loaded_ = true;
}

int64_t SolverRegistry::CacheSize() const {
  common::MutexLock lock(mutex_);
  return static_cast<int64_t>(cache_.records.size());
}

void DispatchGemm(GemmOp op, const float* in1, const float* in2, float* out,
                  int64_t m, int64_t k, int64_t n) {
  const GemmProblem p = GemmProblem::Current(op, m, k, n);
  SolverRegistry::Global().Select(p)->Run(p, in1, in2, out);
}

}  // namespace desalign::tensor::kernels::solver
