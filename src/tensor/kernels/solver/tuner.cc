#include "tensor/kernels/solver/tuner.h"

#include <algorithm>
#include <chrono>
#include <ctime>
#include <limits>
#include <sstream>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"

namespace desalign::tensor::kernels::solver {

namespace {

// Min-of-repeats wall time for one solver run, after one warmup (faults
// pages, primes the buffer pool). steady_clock, like kernel_bench — the
// sanctioned monotonic timer.
template <typename Fn>
double MeasureNs(int repeats, const Fn& fn) {
  fn();
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < std::max(1, repeats); ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(
        best,
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                .count()));
  }
  return best;
}

std::string JsonNum(double v) {
  std::ostringstream os;
  os.precision(6);
  os << v;
  return os.str();
}

}  // namespace

std::string TuneReport::ToJson() const {
  std::ostringstream os;
  os << "{\"schema\":\"desalign.tune.v1\",\"cache\":\"" << cache_path
     << "\",\"tuned_at_unix\":" << tuned_at_unix << ",\"entries\":[";
  for (size_t i = 0; i < entries.size(); ++i) {
    const TuneEntry& e = entries[i];
    if (i) os << ",";
    os << "{\"op\":\"" << GemmOpName(e.op) << "\",\"m\":" << e.m
       << ",\"k\":" << e.k << ",\"n\":" << e.n << ",\"bucket\":["
       << static_cast<int>(e.key.bm) << "," << static_cast<int>(e.key.bk)
       << "," << static_cast<int>(e.key.bn) << "],\"winner\":\"" << e.winner
       << "\",\"solvers\":[";
    for (size_t j = 0; j < e.timings.size(); ++j) {
      if (j) os << ",";
      os << "{\"id\":\"" << e.timings[j].id
         << "\",\"ns_per_elem\":" << JsonNum(e.timings[j].ns_per_elem) << "}";
    }
    os << "]}";
  }
  os << "]}";
  return os.str();
}

common::Result<TuneReport> RunTune(const TuneOptions& options) {
  if (options.sizes.empty()) {
    return common::Status::InvalidArgument("tune: no sizes given");
  }
  for (int64_t s : options.sizes) {
    if (s <= 0) {
      return common::Status::InvalidArgument(
          "tune: sizes must be positive, got " + std::to_string(s));
    }
  }

  SolverRegistry& registry = SolverRegistry::Global();
  TuneReport report;
  report.cache_path =
      options.cache_path.empty() ? FindDbPath() : options.cache_path;

  FindDb db;
  // Provenance stamp only — selection never reads it back, so the lint
  // determinism rule does not apply to this one call.
  db.tuned_at_unix = static_cast<int64_t>(
      std::time(nullptr));  // desalign-lint: allow(wall-clock)
  report.tuned_at_unix = db.tuned_at_unix;

  common::Rng rng(20260808);
  for (int64_t size : options.sizes) {
    const int64_t m = size;
    const int64_t k = size;
    const int64_t n = size;
    std::vector<float> a(static_cast<size_t>(m * k));
    std::vector<float> b(static_cast<size_t>(k * n));
    std::vector<float> g(static_cast<size_t>(m * n));
    for (auto& x : a) x = rng.UniformF(-1.0f, 1.0f);
    for (auto& x : b) x = rng.UniformF(-1.0f, 1.0f);
    for (auto& x : g) x = rng.UniformF(-1.0f, 1.0f);
    std::vector<float> y(static_cast<size_t>(m * n));
    std::vector<float> ga(static_cast<size_t>(m * k));
    std::vector<float> gb(static_cast<size_t>(k * n));
    const double elems = static_cast<double>(m) * k * n;

    for (const GemmOp op :
         {GemmOp::kMatMul, GemmOp::kMatMulGradA, GemmOp::kMatMulGradB}) {
      const GemmProblem problem = GemmProblem::Current(op, m, k, n);
      const float* in1 = op == GemmOp::kMatMul ? a.data() : g.data();
      const float* in2 = op == GemmOp::kMatMulGradB ? a.data() : b.data();
      float* out = op == GemmOp::kMatMul
                       ? y.data()
                       : (op == GemmOp::kMatMulGradA ? ga.data() : gb.data());

      TuneEntry entry;
      entry.op = op;
      entry.m = m;
      entry.k = k;
      entry.n = n;
      entry.key = ProblemKey::FromProblem(problem);

      double best_ns = std::numeric_limits<double>::infinity();
      double default_ns = 0.0;
      // Candidates come Estimate-ordered; strict < keeps the earlier
      // candidate on an exact tie, so reruns pick the same winner.
      for (const GemmSolver* s : registry.Applicable(problem)) {
        const double ns = MeasureNs(options.repeats, [&] {
          s->Run(problem, in1, in2, out);
        });
        entry.timings.push_back({s->id(), ns / elems});
        if (ns < best_ns) {
          best_ns = ns;
          entry.winner = s->id();
        }
        if (s == registry.DefaultSolver()) default_ns = ns;
      }

      FindDbRecord record;
      record.key = entry.key;
      record.solver_id = entry.winner;
      record.best_ns_per_elem = best_ns / elems;
      record.default_ns_per_elem = default_ns / elems;
      db.Upsert(std::move(record));
      report.entries.push_back(std::move(entry));
    }
  }

  DESALIGN_RETURN_NOT_OK(db.Save(report.cache_path));
  // Replay our own winners from the file we just wrote — also proves the
  // round-trip before the CLI reports success.
  DESALIGN_RETURN_NOT_OK(registry.ReloadCache(report.cache_path));
  return report;
}

}  // namespace desalign::tensor::kernels::solver
