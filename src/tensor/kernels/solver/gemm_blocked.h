#ifndef DESALIGN_TENSOR_KERNELS_SOLVER_GEMM_BLOCKED_H_
#define DESALIGN_TENSOR_KERNELS_SOLVER_GEMM_BLOCKED_H_

#include <cstdint>

#include "tensor/kernels/dispatch.h"

// Cache-blocked, panel-packed GEMM — the first solver added on top of the
// registry's row-axpy default. Classic MC/KC/NC structure: B is packed one
// (KC x NC) panel at a time into column-major-of-8 micro-panels, rows are
// partitioned into 8-row tiles (the MC direction doubles as the parallel
// grain), each tile packs its (8 x KC) slice of A, and an 8x8 microkernel
// keeps the C tile in registers across the whole KC reduction. The AVX2
// microkernel uses explicit mul+add intrinsics (never FMA — the tree builds
// with -ffp-contract=off and bit-exactness vs the scalar path requires both
// roundings), and a scalar twin with the identical per-element operation
// chain serves non-AVX2 machines, DESALIGN_KERNEL_ISA=scalar, and tile
// edges — so the solver's output is one fixed bit pattern everywhere.
//
// Bit-exactness vs kernels/reference.cc holds because, per output element,
// the accumulation chain is untouched: KC blocks advance the reduction
// index in ascending order with the running sum held in C (or in the
// register tile mid-block), every term is a separate round(mul)+round(add),
// and the reference's skip of zero a-elements is reproduced term-for-term.

namespace desalign::tensor::kernels::solver::blocked {

/// c += a·b, a (m x k), b (k x n), c (m x n), all row-major. Accumulates
/// into the existing contents of c in ascending-p order — bit-identical to
///   for p in [0,k): if (!skip_zero_a || a[i,p] != 0) c[i,j] += a[i,p]*b[p,j]
/// for every element, any thread count, either ISA. Parallelism is
/// row-partitioned (8-row tiles) with no float atomics.
void GemmAccumulate(const float* a, const float* b, float* c, int64_t m,
                    int64_t k, int64_t n, bool skip_zero_a, IsaLevel isa);

/// The three public-kernel shapes, each reproducing the corresponding
/// reference.cc accumulation contract exactly (see gemm_blocked.cc).
void MatMul(const float* a, const float* b, float* y, int64_t m, int64_t k,
            int64_t n, IsaLevel isa);
void MatMulGradA(const float* g, const float* b, float* ga, int64_t m,
                 int64_t k, int64_t n, IsaLevel isa);
void MatMulGradB(const float* g, const float* a, float* gb, int64_t m,
                 int64_t k, int64_t n, IsaLevel isa);

}  // namespace desalign::tensor::kernels::solver::blocked

#endif  // DESALIGN_TENSOR_KERNELS_SOLVER_GEMM_BLOCKED_H_
