#include "tensor/kernels/solver/find_db.h"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <utility>

#include "common/atomic_file.h"
#include "common/crc32.h"
#include "tensor/kernels/solver/solver.h"

namespace desalign::tensor::kernels::solver {

namespace {

constexpr char kMagic[4] = {'D', 'S', 'F', 'D'};
// magic + version + tuned_at + count + trailing crc.
constexpr size_t kHeaderSize = 4 + 4 + 8 + 4;
constexpr size_t kMinSize = kHeaderSize + 4;

template <typename T>
void AppendRaw(std::string* out, T value) {
  char buf[sizeof(T)];
  std::memcpy(buf, &value, sizeof(T));
  out->append(buf, sizeof(T));
}

// Bounds-checked cursor over the serialized bytes.
struct Reader {
  const char* p;
  size_t left;

  template <typename T>
  bool Read(T* value) {
    if (left < sizeof(T)) return false;
    std::memcpy(value, p, sizeof(T));
    p += sizeof(T);
    left -= sizeof(T);
    return true;
  }

  bool ReadBytes(std::string* out, size_t n) {
    if (left < n) return false;
    out->assign(p, n);
    p += n;
    left -= n;
    return true;
  }
};

}  // namespace

uint8_t ProblemKey::Bucket(int64_t extent) {
  if (extent <= 1) return 0;
  const auto width =
      std::bit_width(static_cast<uint64_t>(extent) - 1);
  return static_cast<uint8_t>(width > 63 ? 63 : width);
}

ProblemKey ProblemKey::FromProblem(const GemmProblem& p) {
  ProblemKey key;
  key.op = static_cast<uint8_t>(p.op);
  key.bm = Bucket(p.m);
  key.bk = Bucket(p.k);
  key.bn = Bucket(p.n);
  return key;
}

bool operator<(const ProblemKey& a, const ProblemKey& b) {
  if (a.op != b.op) return a.op < b.op;
  if (a.bm != b.bm) return a.bm < b.bm;
  if (a.bk != b.bk) return a.bk < b.bk;
  return a.bn < b.bn;
}

const FindDbRecord* FindDb::Find(const ProblemKey& key) const {
  const auto it = std::lower_bound(
      records.begin(), records.end(), key,
      [](const FindDbRecord& r, const ProblemKey& k) { return r.key < k; });
  if (it == records.end() || !(it->key == key)) return nullptr;
  return &*it;
}

void FindDb::Upsert(FindDbRecord record) {
  const auto it = std::lower_bound(
      records.begin(), records.end(), record.key,
      [](const FindDbRecord& r, const ProblemKey& k) { return r.key < k; });
  if (it != records.end() && it->key == record.key) {
    *it = std::move(record);
  } else {
    records.insert(it, std::move(record));
  }
}

std::string FindDb::Serialize() const {
  std::string out;
  out.append(kMagic, sizeof(kMagic));
  AppendRaw<uint32_t>(&out, kVersion);
  AppendRaw<int64_t>(&out, tuned_at_unix);
  AppendRaw<uint32_t>(&out, static_cast<uint32_t>(records.size()));
  for (const FindDbRecord& r : records) {
    AppendRaw<uint8_t>(&out, r.key.op);
    AppendRaw<uint8_t>(&out, r.key.bm);
    AppendRaw<uint8_t>(&out, r.key.bk);
    AppendRaw<uint8_t>(&out, r.key.bn);
    AppendRaw<uint16_t>(&out, static_cast<uint16_t>(r.solver_id.size()));
    out.append(r.solver_id);
    AppendRaw<double>(&out, r.best_ns_per_elem);
    AppendRaw<double>(&out, r.default_ns_per_elem);
  }
  AppendRaw<uint32_t>(&out, common::Crc32(out.data(), out.size()));
  return out;
}

common::Result<FindDb> FindDb::Deserialize(const std::string& bytes) {
  if (bytes.size() < kMinSize) {
    return common::Status::IoError("find-db too short to be valid");
  }
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return common::Status::IoError("find-db bad magic");
  }
  // Version before checksum: a future layout fails as explicit skew, not as
  // a checksum mismatch over bytes we can't interpret.
  uint32_t version = 0;
  std::memcpy(&version, bytes.data() + 4, sizeof(version));
  if (version != kVersion) {
    return common::Status::IoError(
        "find-db version skew: file v" + std::to_string(version) +
        ", this build reads v" + std::to_string(kVersion));
  }
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, bytes.data() + bytes.size() - 4, sizeof(stored_crc));
  const uint32_t actual_crc = common::Crc32(bytes.data(), bytes.size() - 4);
  if (stored_crc != actual_crc) {
    return common::Status::IoError("find-db checksum mismatch");
  }

  Reader reader{bytes.data() + 8, bytes.size() - 8 - 4};
  FindDb db;
  if (!reader.Read(&db.tuned_at_unix)) {
    return common::Status::IoError("find-db truncated header");
  }
  uint32_t count = 0;
  if (!reader.Read(&count)) {
    return common::Status::IoError("find-db truncated header");
  }
  db.records.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    FindDbRecord r;
    uint16_t id_len = 0;
    if (!reader.Read(&r.key.op) || !reader.Read(&r.key.bm) ||
        !reader.Read(&r.key.bk) || !reader.Read(&r.key.bn) ||
        !reader.Read(&id_len) || !reader.ReadBytes(&r.solver_id, id_len) ||
        !reader.Read(&r.best_ns_per_elem) ||
        !reader.Read(&r.default_ns_per_elem)) {
      return common::Status::IoError("find-db truncated record");
    }
    db.Upsert(std::move(r));
  }
  if (reader.left != 0) {
    return common::Status::IoError("find-db trailing bytes");
  }
  return db;
}

common::Status FindDb::Save(const std::string& path) const {
  std::error_code ec;  // best effort; the write below reports real failures
  const auto parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent, ec);
  return common::AtomicWriteFile(path, Serialize(), "findb.write");
}

common::Result<FindDb> FindDb::Load(const std::string& path) {
  std::string bytes;
  DESALIGN_RETURN_NOT_OK(common::ReadFileToString(path, &bytes, "findb.read"));
  return Deserialize(bytes);
}

std::string FindDbPath() {
  if (const char* env = std::getenv("DESALIGN_TUNE_CACHE");
      env != nullptr && *env != '\0') {
    return env;
  }
  if (const char* xdg = std::getenv("XDG_CACHE_HOME");
      xdg != nullptr && *xdg != '\0') {
    return std::string(xdg) + "/desalign/gemm_find_db.bin";
  }
  if (const char* home = std::getenv("HOME");
      home != nullptr && *home != '\0') {
    return std::string(home) + "/.cache/desalign/gemm_find_db.bin";
  }
  return ".desalign_cache/gemm_find_db.bin";
}

}  // namespace desalign::tensor::kernels::solver
