#ifndef DESALIGN_TENSOR_INIT_H_
#define DESALIGN_TENSOR_INIT_H_

#include "common/rng.h"
#include "tensor/tensor.h"

namespace desalign::tensor {

/// Glorot (Xavier) uniform initialization over [-a, a], a = sqrt(6/(fan_in +
/// fan_out)). The paper relies on Glorot init in its Proposition 2
/// discussion.
void GlorotUniform(Tensor& t, common::Rng& rng);

/// Fills with N(mean, stddev) samples.
void FillNormal(Tensor& t, common::Rng& rng, float mean = 0.0f,
                float stddev = 1.0f);

/// Fills with U[lo, hi) samples.
void FillUniform(Tensor& t, common::Rng& rng, float lo, float hi);

/// Fills with a constant.
void FillConstant(Tensor& t, float value);

/// Sets the main diagonal to `value` (zeros elsewhere untouched).
void FillDiagonal(Tensor& t, float value);

}  // namespace desalign::tensor

#endif  // DESALIGN_TENSOR_INIT_H_
