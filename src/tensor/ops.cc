#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

#include "common/check.h"
#include "common/thread_pool.h"

namespace desalign::tensor {

namespace {

void CheckSameShape(const TensorPtr& a, const TensorPtr& b) {
  DESALIGN_CHECK_EQ(a->rows(), b->rows());
  DESALIGN_CHECK_EQ(a->cols(), b->cols());
}

}  // namespace

TensorPtr Add(const TensorPtr& a, const TensorPtr& b) {
  CheckSameShape(a, b);
  auto out = Tensor::Create(a->rows(), a->cols());
  for (int64_t i = 0; i < a->size(); ++i)
    out->data()[i] = a->data()[i] + b->data()[i];
  Tensor* ap = a.get();
  Tensor* bp = b.get();
  Tensor* op = out.get();
  out->SetBackward({a, b}, [ap, bp, op]() {
    const auto& g = op->grad();
    if (ap->NeedsGrad()) {
      auto& ga = ap->grad();
      for (size_t i = 0; i < g.size(); ++i) ga[i] += g[i];
    }
    if (bp->NeedsGrad()) {
      auto& gb = bp->grad();
      for (size_t i = 0; i < g.size(); ++i) gb[i] += g[i];
    }
  });
  return out;
}

TensorPtr Sub(const TensorPtr& a, const TensorPtr& b) {
  CheckSameShape(a, b);
  auto out = Tensor::Create(a->rows(), a->cols());
  for (int64_t i = 0; i < a->size(); ++i)
    out->data()[i] = a->data()[i] - b->data()[i];
  Tensor* ap = a.get();
  Tensor* bp = b.get();
  Tensor* op = out.get();
  out->SetBackward({a, b}, [ap, bp, op]() {
    const auto& g = op->grad();
    if (ap->NeedsGrad()) {
      auto& ga = ap->grad();
      for (size_t i = 0; i < g.size(); ++i) ga[i] += g[i];
    }
    if (bp->NeedsGrad()) {
      auto& gb = bp->grad();
      for (size_t i = 0; i < g.size(); ++i) gb[i] -= g[i];
    }
  });
  return out;
}

TensorPtr Mul(const TensorPtr& a, const TensorPtr& b) {
  CheckSameShape(a, b);
  auto out = Tensor::Create(a->rows(), a->cols());
  for (int64_t i = 0; i < a->size(); ++i)
    out->data()[i] = a->data()[i] * b->data()[i];
  Tensor* ap = a.get();
  Tensor* bp = b.get();
  Tensor* op = out.get();
  out->SetBackward({a, b}, [ap, bp, op]() {
    const auto& g = op->grad();
    if (ap->NeedsGrad()) {
      auto& ga = ap->grad();
      for (size_t i = 0; i < g.size(); ++i) ga[i] += g[i] * bp->data()[i];
    }
    if (bp->NeedsGrad()) {
      auto& gb = bp->grad();
      for (size_t i = 0; i < g.size(); ++i) gb[i] += g[i] * ap->data()[i];
    }
  });
  return out;
}

TensorPtr Div(const TensorPtr& a, const TensorPtr& b) {
  CheckSameShape(a, b);
  auto out = Tensor::Create(a->rows(), a->cols());
  for (int64_t i = 0; i < a->size(); ++i)
    out->data()[i] = a->data()[i] / b->data()[i];
  Tensor* ap = a.get();
  Tensor* bp = b.get();
  Tensor* op = out.get();
  out->SetBackward({a, b}, [ap, bp, op]() {
    const auto& g = op->grad();
    if (ap->NeedsGrad()) {
      auto& ga = ap->grad();
      for (size_t i = 0; i < g.size(); ++i) ga[i] += g[i] / bp->data()[i];
    }
    if (bp->NeedsGrad()) {
      auto& gb = bp->grad();
      for (size_t i = 0; i < g.size(); ++i) {
        const float bv = bp->data()[i];
        gb[i] -= g[i] * ap->data()[i] / (bv * bv);
      }
    }
  });
  return out;
}

TensorPtr AddRowVector(const TensorPtr& a, const TensorPtr& b) {
  DESALIGN_CHECK_EQ(b->rows(), 1);
  DESALIGN_CHECK_EQ(a->cols(), b->cols());
  const int64_t n = a->rows();
  const int64_t c = a->cols();
  auto out = Tensor::Create(n, c);
  for (int64_t r = 0; r < n; ++r) {
    for (int64_t j = 0; j < c; ++j) {
      out->At(r, j) = a->At(r, j) + b->At(0, j);
    }
  }
  Tensor* ap = a.get();
  Tensor* bp = b.get();
  Tensor* op = out.get();
  out->SetBackward({a, b}, [ap, bp, op, n, c]() {
    const auto& g = op->grad();
    if (ap->NeedsGrad()) {
      auto& ga = ap->grad();
      for (size_t i = 0; i < g.size(); ++i) ga[i] += g[i];
    }
    if (bp->NeedsGrad()) {
      auto& gb = bp->grad();
      for (int64_t r = 0; r < n; ++r) {
        for (int64_t j = 0; j < c; ++j) gb[j] += g[r * c + j];
      }
    }
  });
  return out;
}

TensorPtr MulColVector(const TensorPtr& a, const TensorPtr& b) {
  DESALIGN_CHECK_EQ(b->cols(), 1);
  DESALIGN_CHECK_EQ(a->rows(), b->rows());
  const int64_t n = a->rows();
  const int64_t c = a->cols();
  auto out = Tensor::Create(n, c);
  for (int64_t r = 0; r < n; ++r) {
    const float s = b->At(r, 0);
    for (int64_t j = 0; j < c; ++j) out->At(r, j) = a->At(r, j) * s;
  }
  Tensor* ap = a.get();
  Tensor* bp = b.get();
  Tensor* op = out.get();
  out->SetBackward({a, b}, [ap, bp, op, n, c]() {
    const auto& g = op->grad();
    if (ap->NeedsGrad()) {
      auto& ga = ap->grad();
      for (int64_t r = 0; r < n; ++r) {
        const float s = bp->data()[r];
        for (int64_t j = 0; j < c; ++j) ga[r * c + j] += g[r * c + j] * s;
      }
    }
    if (bp->NeedsGrad()) {
      auto& gb = bp->grad();
      for (int64_t r = 0; r < n; ++r) {
        float acc = 0.0f;
        for (int64_t j = 0; j < c; ++j)
          acc += g[r * c + j] * ap->data()[r * c + j];
        gb[r] += acc;
      }
    }
  });
  return out;
}

TensorPtr MulRowVector(const TensorPtr& a, const TensorPtr& b) {
  DESALIGN_CHECK_EQ(b->rows(), 1);
  DESALIGN_CHECK_EQ(a->cols(), b->cols());
  const int64_t n = a->rows();
  const int64_t c = a->cols();
  auto out = Tensor::Create(n, c);
  for (int64_t r = 0; r < n; ++r) {
    for (int64_t j = 0; j < c; ++j) out->At(r, j) = a->At(r, j) * b->At(0, j);
  }
  Tensor* ap = a.get();
  Tensor* bp = b.get();
  Tensor* op = out.get();
  out->SetBackward({a, b}, [ap, bp, op, n, c]() {
    const auto& g = op->grad();
    if (ap->NeedsGrad()) {
      auto& ga = ap->grad();
      for (int64_t r = 0; r < n; ++r) {
        for (int64_t j = 0; j < c; ++j) {
          ga[r * c + j] += g[r * c + j] * bp->data()[j];
        }
      }
    }
    if (bp->NeedsGrad()) {
      auto& gb = bp->grad();
      for (int64_t r = 0; r < n; ++r) {
        for (int64_t j = 0; j < c; ++j) {
          gb[j] += g[r * c + j] * ap->data()[r * c + j];
        }
      }
    }
  });
  return out;
}

TensorPtr Scale(const TensorPtr& a, float s) {
  auto out = Tensor::Create(a->rows(), a->cols());
  for (int64_t i = 0; i < a->size(); ++i) out->data()[i] = s * a->data()[i];
  Tensor* ap = a.get();
  Tensor* op = out.get();
  out->SetBackward({a}, [ap, op, s]() {
    if (!ap->NeedsGrad()) return;
    const auto& g = op->grad();
    auto& ga = ap->grad();
    for (size_t i = 0; i < g.size(); ++i) ga[i] += s * g[i];
  });
  return out;
}

TensorPtr AddScalar(const TensorPtr& a, float s) {
  auto out = Tensor::Create(a->rows(), a->cols());
  for (int64_t i = 0; i < a->size(); ++i) out->data()[i] = a->data()[i] + s;
  Tensor* ap = a.get();
  Tensor* op = out.get();
  out->SetBackward({a}, [ap, op]() {
    if (!ap->NeedsGrad()) return;
    const auto& g = op->grad();
    auto& ga = ap->grad();
    for (size_t i = 0; i < g.size(); ++i) ga[i] += g[i];
  });
  return out;
}

TensorPtr Neg(const TensorPtr& a) { return Scale(a, -1.0f); }

TensorPtr MatMul(const TensorPtr& a, const TensorPtr& b) {
  DESALIGN_CHECK_EQ(a->cols(), b->rows());
  const int64_t m = a->rows();
  const int64_t k = a->cols();
  const int64_t n = b->cols();
  auto out = Tensor::Create(m, n);
  // ikj loop order: streams through b and out rows. Row-partitioned across
  // the global pool (threads write disjoint output rows, so the result is
  // deterministic for any thread count).
  const float* ad = a->data().data();
  const float* bd = b->data().data();
  float* od = out->data().data();
  common::ThreadPool::Global().ParallelFor(
      0, m,
      [&](int64_t row_begin, int64_t row_end) {
        for (int64_t i = row_begin; i < row_end; ++i) {
          for (int64_t p = 0; p < k; ++p) {
            const float av = ad[i * k + p];
            if (av == 0.0f) continue;
            const float* br = bd + p * n;
            float* orow = od + i * n;
            for (int64_t j = 0; j < n; ++j) orow[j] += av * br[j];
          }
        }
      },
      /*grain=*/std::max<int64_t>(1, 65536 / std::max<int64_t>(1, k * n)));
  Tensor* ap = a.get();
  Tensor* bp = b.get();
  Tensor* op = out.get();
  out->SetBackward({a, b}, [ap, bp, op, m, k, n]() {
    const float* g = op->grad().data();
    if (ap->NeedsGrad()) {
      // dA = G * B^T   (m x k)
      float* ga = ap->grad().data();
      const float* bd2 = bp->data().data();
      for (int64_t i = 0; i < m; ++i) {
        for (int64_t p = 0; p < k; ++p) {
          const float* grow = g + i * n;
          const float* brow = bd2 + p * n;
          float acc = 0.0f;
          for (int64_t j = 0; j < n; ++j) acc += grow[j] * brow[j];
          ga[i * k + p] += acc;
        }
      }
    }
    if (bp->NeedsGrad()) {
      // dB = A^T * G   (k x n)
      float* gb = bp->grad().data();
      const float* ad2 = ap->data().data();
      for (int64_t i = 0; i < m; ++i) {
        const float* grow = g + i * n;
        for (int64_t p = 0; p < k; ++p) {
          const float av = ad2[i * k + p];
          if (av == 0.0f) continue;
          float* gbrow = gb + p * n;
          for (int64_t j = 0; j < n; ++j) gbrow[j] += av * grow[j];
        }
      }
    }
  });
  return out;
}

TensorPtr Transpose(const TensorPtr& a) {
  const int64_t m = a->rows();
  const int64_t n = a->cols();
  auto out = Tensor::Create(n, m);
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) out->At(j, i) = a->At(i, j);
  }
  Tensor* ap = a.get();
  Tensor* op = out.get();
  out->SetBackward({a}, [ap, op, m, n]() {
    if (!ap->NeedsGrad()) return;
    const auto& g = op->grad();
    auto& ga = ap->grad();
    for (int64_t i = 0; i < m; ++i) {
      for (int64_t j = 0; j < n; ++j) ga[i * n + j] += g[j * m + i];
    }
  });
  return out;
}

TensorPtr SpMM(const CsrMatrixPtr& a, const TensorPtr& x) {
  DESALIGN_CHECK_EQ(a->cols(), x->rows());
  const int64_t k = x->cols();
  auto out = Tensor::Create(a->rows(), k);
  a->Multiply(x->data().data(), k, out->data().data());
  if (!GradEnabled() || !x->NeedsGrad()) return out;
  CsrMatrixPtr at = a->Transpose();
  Tensor* xp = x.get();
  Tensor* op = out.get();
  out->SetBackward({x}, [at, xp, op, k]() {
    if (!xp->NeedsGrad()) return;
    std::vector<float> gx(xp->grad().size(), 0.0f);
    at->Multiply(op->grad().data(), k, gx.data());
    auto& g = xp->grad();
    for (size_t i = 0; i < g.size(); ++i) g[i] += gx[i];
  });
  return out;
}

namespace {

template <typename Fwd, typename Bwd>
TensorPtr UnaryOp(const TensorPtr& a, Fwd fwd, Bwd bwd_factor_from_in_out) {
  auto out = Tensor::Create(a->rows(), a->cols());
  for (int64_t i = 0; i < a->size(); ++i)
    out->data()[i] = fwd(a->data()[i]);
  Tensor* ap = a.get();
  Tensor* op = out.get();
  out->SetBackward({a}, [ap, op, bwd_factor_from_in_out]() {
    if (!ap->NeedsGrad()) return;
    const auto& g = op->grad();
    auto& ga = ap->grad();
    for (size_t i = 0; i < g.size(); ++i) {
      ga[i] += g[i] * bwd_factor_from_in_out(ap->data()[i], op->data()[i]);
    }
  });
  return out;
}

}  // namespace

TensorPtr Relu(const TensorPtr& a) {
  return UnaryOp(
      a, [](float x) { return x > 0.0f ? x : 0.0f; },
      [](float x, float) { return x > 0.0f ? 1.0f : 0.0f; });
}

TensorPtr LeakyRelu(const TensorPtr& a, float slope) {
  return UnaryOp(
      a, [slope](float x) { return x > 0.0f ? x : slope * x; },
      [slope](float x, float) { return x > 0.0f ? 1.0f : slope; });
}

TensorPtr Sigmoid(const TensorPtr& a) {
  return UnaryOp(
      a, [](float x) { return 1.0f / (1.0f + std::exp(-x)); },
      [](float, float y) { return y * (1.0f - y); });
}

TensorPtr Tanh(const TensorPtr& a) {
  return UnaryOp(
      a, [](float x) { return std::tanh(x); },
      [](float, float y) { return 1.0f - y * y; });
}

TensorPtr Exp(const TensorPtr& a) {
  return UnaryOp(
      a, [](float x) { return std::exp(x); },
      [](float, float y) { return y; });
}

TensorPtr LogSafe(const TensorPtr& a, float eps) {
  return UnaryOp(
      a, [eps](float x) { return std::log(x + eps); },
      [eps](float x, float) { return 1.0f / (x + eps); });
}

TensorPtr Square(const TensorPtr& a) {
  return UnaryOp(
      a, [](float x) { return x * x; },
      [](float x, float) { return 2.0f * x; });
}

TensorPtr Abs(const TensorPtr& a) {
  return UnaryOp(
      a, [](float x) { return std::fabs(x); },
      [](float x, float) { return x > 0.0f ? 1.0f : (x < 0.0f ? -1.0f
                                                              : 0.0f); });
}

TensorPtr ClipByValue(const TensorPtr& a, float lo, float hi) {
  DESALIGN_CHECK_LE(lo, hi);
  return UnaryOp(
      a,
      [lo, hi](float x) { return x < lo ? lo : (x > hi ? hi : x); },
      [lo, hi](float x, float) {
        return (x > lo && x < hi) ? 1.0f : 0.0f;
      });
}

namespace {

template <typename Pick>
TensorPtr SelectElementwise(const TensorPtr& a, const TensorPtr& b,
                            Pick pick_a) {
  CheckSameShape(a, b);
  auto out = Tensor::Create(a->rows(), a->cols());
  std::vector<uint8_t> from_a(static_cast<size_t>(a->size()));
  for (int64_t i = 0; i < a->size(); ++i) {
    from_a[i] = pick_a(a->data()[i], b->data()[i]) ? 1 : 0;
    out->data()[i] = from_a[i] ? a->data()[i] : b->data()[i];
  }
  Tensor* ap = a.get();
  Tensor* bp = b.get();
  Tensor* op = out.get();
  out->SetBackward({a, b}, [ap, bp, op, from_a = std::move(from_a)]() {
    const auto& g = op->grad();
    if (ap->NeedsGrad()) {
      auto& ga = ap->grad();
      for (size_t i = 0; i < g.size(); ++i) {
        if (from_a[i]) ga[i] += g[i];
      }
    }
    if (bp->NeedsGrad()) {
      auto& gb = bp->grad();
      for (size_t i = 0; i < g.size(); ++i) {
        if (!from_a[i]) gb[i] += g[i];
      }
    }
  });
  return out;
}

}  // namespace

TensorPtr MaxElementwise(const TensorPtr& a, const TensorPtr& b) {
  return SelectElementwise(a, b, [](float x, float y) { return x >= y; });
}

TensorPtr MinElementwise(const TensorPtr& a, const TensorPtr& b) {
  return SelectElementwise(a, b, [](float x, float y) { return x <= y; });
}

TensorPtr RowMax(const TensorPtr& a) {
  const int64_t n = a->rows();
  const int64_t c = a->cols();
  auto out = Tensor::Create(n, 1);
  std::vector<int64_t> argmax(n, 0);
  for (int64_t r = 0; r < n; ++r) {
    float best = a->At(r, 0);
    for (int64_t j = 1; j < c; ++j) {
      if (a->At(r, j) > best) {
        best = a->At(r, j);
        argmax[r] = j;
      }
    }
    out->data()[r] = best;
  }
  Tensor* ap = a.get();
  Tensor* op = out.get();
  out->SetBackward({a}, [ap, op, argmax = std::move(argmax), n, c]() {
    if (!ap->NeedsGrad()) return;
    const auto& g = op->grad();
    auto& ga = ap->grad();
    for (int64_t r = 0; r < n; ++r) ga[r * c + argmax[r]] += g[r];
  });
  return out;
}

TensorPtr ColMean(const TensorPtr& a) {
  const int64_t n = a->rows();
  const int64_t c = a->cols();
  auto out = Tensor::Create(1, c);
  for (int64_t r = 0; r < n; ++r) {
    for (int64_t j = 0; j < c; ++j) out->data()[j] += a->At(r, j);
  }
  const float inv = 1.0f / static_cast<float>(n);
  for (auto& v : out->data()) v *= inv;
  Tensor* ap = a.get();
  Tensor* op = out.get();
  out->SetBackward({a}, [ap, op, n, c, inv]() {
    if (!ap->NeedsGrad()) return;
    const auto& g = op->grad();
    auto& ga = ap->grad();
    for (int64_t r = 0; r < n; ++r) {
      for (int64_t j = 0; j < c; ++j) ga[r * c + j] += g[j] * inv;
    }
  });
  return out;
}

std::vector<int64_t> ArgMaxRows(const Tensor& a) {
  std::vector<int64_t> out(a.rows(), 0);
  for (int64_t r = 0; r < a.rows(); ++r) {
    for (int64_t j = 1; j < a.cols(); ++j) {
      if (a.At(r, j) > a.At(r, out[r])) out[r] = j;
    }
  }
  return out;
}

TensorPtr RowSoftmax(const TensorPtr& a) {
  const int64_t n = a->rows();
  const int64_t c = a->cols();
  auto out = Tensor::Create(n, c);
  for (int64_t r = 0; r < n; ++r) {
    float mx = -std::numeric_limits<float>::infinity();
    for (int64_t j = 0; j < c; ++j) mx = std::max(mx, a->At(r, j));
    float denom = 0.0f;
    for (int64_t j = 0; j < c; ++j) {
      const float e = std::exp(a->At(r, j) - mx);
      out->At(r, j) = e;
      denom += e;
    }
    for (int64_t j = 0; j < c; ++j) out->At(r, j) /= denom;
  }
  Tensor* ap = a.get();
  Tensor* op = out.get();
  out->SetBackward({a}, [ap, op, n, c]() {
    if (!ap->NeedsGrad()) return;
    const auto& g = op->grad();
    auto& ga = ap->grad();
    for (int64_t r = 0; r < n; ++r) {
      float dot = 0.0f;
      for (int64_t j = 0; j < c; ++j)
        dot += g[r * c + j] * op->data()[r * c + j];
      for (int64_t j = 0; j < c; ++j) {
        ga[r * c + j] += op->data()[r * c + j] * (g[r * c + j] - dot);
      }
    }
  });
  return out;
}

TensorPtr RowLogSoftmax(const TensorPtr& a) {
  const int64_t n = a->rows();
  const int64_t c = a->cols();
  auto out = Tensor::Create(n, c);
  for (int64_t r = 0; r < n; ++r) {
    float mx = -std::numeric_limits<float>::infinity();
    for (int64_t j = 0; j < c; ++j) mx = std::max(mx, a->At(r, j));
    float denom = 0.0f;
    for (int64_t j = 0; j < c; ++j) denom += std::exp(a->At(r, j) - mx);
    const float logz = mx + std::log(denom);
    for (int64_t j = 0; j < c; ++j) out->At(r, j) = a->At(r, j) - logz;
  }
  Tensor* ap = a.get();
  Tensor* op = out.get();
  out->SetBackward({a}, [ap, op, n, c]() {
    if (!ap->NeedsGrad()) return;
    const auto& g = op->grad();
    auto& ga = ap->grad();
    for (int64_t r = 0; r < n; ++r) {
      float gsum = 0.0f;
      for (int64_t j = 0; j < c; ++j) gsum += g[r * c + j];
      for (int64_t j = 0; j < c; ++j) {
        const float sm = std::exp(op->data()[r * c + j]);
        ga[r * c + j] += g[r * c + j] - sm * gsum;
      }
    }
  });
  return out;
}

TensorPtr SegmentSoftmax(const TensorPtr& scores,
                         const std::vector<int64_t>& segments,
                         int64_t num_segments) {
  DESALIGN_CHECK_EQ(scores->cols(), 1);
  const int64_t e = scores->rows();
  DESALIGN_CHECK_EQ(static_cast<int64_t>(segments.size()), e);
  auto out = Tensor::Create(e, 1);
  std::vector<float> seg_max(num_segments,
                             -std::numeric_limits<float>::infinity());
  for (int64_t i = 0; i < e; ++i) {
    seg_max[segments[i]] = std::max(seg_max[segments[i]], scores->data()[i]);
  }
  std::vector<float> seg_denom(num_segments, 0.0f);
  for (int64_t i = 0; i < e; ++i) {
    const float ev = std::exp(scores->data()[i] - seg_max[segments[i]]);
    out->data()[i] = ev;
    seg_denom[segments[i]] += ev;
  }
  for (int64_t i = 0; i < e; ++i) out->data()[i] /= seg_denom[segments[i]];
  Tensor* sp = scores.get();
  Tensor* op = out.get();
  std::vector<int64_t> segs = segments;
  out->SetBackward({scores}, [sp, op, segs = std::move(segs), num_segments,
                              e]() {
    if (!sp->NeedsGrad()) return;
    const auto& g = op->grad();
    auto& gs = sp->grad();
    std::vector<float> seg_dot(num_segments, 0.0f);
    for (int64_t i = 0; i < e; ++i)
      seg_dot[segs[i]] += g[i] * op->data()[i];
    for (int64_t i = 0; i < e; ++i) {
      gs[i] += op->data()[i] * (g[i] - seg_dot[segs[i]]);
    }
  });
  return out;
}

TensorPtr Sum(const TensorPtr& a) {
  auto out = Tensor::Create(1, 1);
  double acc = 0.0;
  for (int64_t i = 0; i < a->size(); ++i) acc += a->data()[i];
  out->data()[0] = static_cast<float>(acc);
  Tensor* ap = a.get();
  Tensor* op = out.get();
  out->SetBackward({a}, [ap, op]() {
    if (!ap->NeedsGrad()) return;
    const float g = op->grad()[0];
    auto& ga = ap->grad();
    for (auto& v : ga) v += g;
  });
  return out;
}

TensorPtr Mean(const TensorPtr& a) {
  const float inv = 1.0f / static_cast<float>(a->size());
  return Scale(Sum(a), inv);
}

TensorPtr RowSum(const TensorPtr& a) {
  const int64_t n = a->rows();
  const int64_t c = a->cols();
  auto out = Tensor::Create(n, 1);
  for (int64_t r = 0; r < n; ++r) {
    float acc = 0.0f;
    for (int64_t j = 0; j < c; ++j) acc += a->At(r, j);
    out->data()[r] = acc;
  }
  Tensor* ap = a.get();
  Tensor* op = out.get();
  out->SetBackward({a}, [ap, op, n, c]() {
    if (!ap->NeedsGrad()) return;
    const auto& g = op->grad();
    auto& ga = ap->grad();
    for (int64_t r = 0; r < n; ++r) {
      for (int64_t j = 0; j < c; ++j) ga[r * c + j] += g[r];
    }
  });
  return out;
}

TensorPtr SegmentSum(const TensorPtr& values,
                     const std::vector<int64_t>& segments,
                     int64_t num_segments) {
  const int64_t e = values->rows();
  const int64_t c = values->cols();
  DESALIGN_CHECK_EQ(static_cast<int64_t>(segments.size()), e);
  auto out = Tensor::Create(num_segments, c);
  for (int64_t i = 0; i < e; ++i) {
    const int64_t s = segments[i];
    DESALIGN_DCHECK(s >= 0 && s < num_segments);
    for (int64_t j = 0; j < c; ++j) {
      out->At(s, j) += values->At(i, j);
    }
  }
  Tensor* vp = values.get();
  Tensor* op = out.get();
  std::vector<int64_t> segs = segments;
  out->SetBackward({values}, [vp, op, segs = std::move(segs), e, c]() {
    if (!vp->NeedsGrad()) return;
    const auto& g = op->grad();
    auto& gv = vp->grad();
    for (int64_t i = 0; i < e; ++i) {
      const int64_t s = segs[i];
      for (int64_t j = 0; j < c; ++j) gv[i * c + j] += g[s * c + j];
    }
  });
  return out;
}

TensorPtr ConcatCols(const std::vector<TensorPtr>& parts) {
  DESALIGN_CHECK(!parts.empty());
  const int64_t n = parts[0]->rows();
  int64_t total_c = 0;
  for (const auto& p : parts) {
    DESALIGN_CHECK_EQ(p->rows(), n);
    total_c += p->cols();
  }
  auto out = Tensor::Create(n, total_c);
  int64_t offset = 0;
  for (const auto& p : parts) {
    const int64_t c = p->cols();
    for (int64_t r = 0; r < n; ++r) {
      for (int64_t j = 0; j < c; ++j) out->At(r, offset + j) = p->At(r, j);
    }
    offset += c;
  }
  std::vector<TensorPtr> parents = parts;
  Tensor* op = out.get();
  std::vector<Tensor*> raw;
  std::vector<int64_t> col_counts;
  for (const auto& p : parts) {
    raw.push_back(p.get());
    col_counts.push_back(p->cols());
  }
  out->SetBackward(std::move(parents), [op, raw = std::move(raw),
                                        col_counts = std::move(col_counts), n,
                                        total_c]() {
    const auto& g = op->grad();
    int64_t offset2 = 0;
    for (size_t k = 0; k < raw.size(); ++k) {
      const int64_t c = col_counts[k];
      if (raw[k]->NeedsGrad()) {
        auto& gp = raw[k]->grad();
        for (int64_t r = 0; r < n; ++r) {
          for (int64_t j = 0; j < c; ++j) {
            gp[r * c + j] += g[r * total_c + offset2 + j];
          }
        }
      }
      offset2 += c;
    }
  });
  return out;
}

TensorPtr ConcatRows(const std::vector<TensorPtr>& parts) {
  DESALIGN_CHECK(!parts.empty());
  const int64_t c = parts[0]->cols();
  int64_t total_n = 0;
  for (const auto& p : parts) {
    DESALIGN_CHECK_EQ(p->cols(), c);
    total_n += p->rows();
  }
  auto out = Tensor::Create(total_n, c);
  int64_t offset = 0;
  for (const auto& p : parts) {
    std::copy(p->data().begin(), p->data().end(),
              out->data().begin() + offset * c);
    offset += p->rows();
  }
  std::vector<TensorPtr> parents = parts;
  Tensor* op = out.get();
  std::vector<Tensor*> raw;
  std::vector<int64_t> row_counts;
  for (const auto& p : parts) {
    raw.push_back(p.get());
    row_counts.push_back(p->rows());
  }
  out->SetBackward(std::move(parents),
                   [op, raw = std::move(raw),
                    row_counts = std::move(row_counts), c]() {
                     const auto& g = op->grad();
                     int64_t offset2 = 0;
                     for (size_t k = 0; k < raw.size(); ++k) {
                       const int64_t n = row_counts[k];
                       if (raw[k]->NeedsGrad()) {
                         auto& gp = raw[k]->grad();
                         for (int64_t i = 0; i < n * c; ++i) {
                           gp[i] += g[offset2 * c + i];
                         }
                       }
                       offset2 += n;
                     }
                   });
  return out;
}

TensorPtr SliceCols(const TensorPtr& a, int64_t start, int64_t count) {
  DESALIGN_CHECK_GE(start, 0);
  DESALIGN_CHECK_GT(count, 0);
  DESALIGN_CHECK_LE(start + count, a->cols());
  const int64_t n = a->rows();
  const int64_t c = a->cols();
  auto out = Tensor::Create(n, count);
  for (int64_t r = 0; r < n; ++r) {
    for (int64_t j = 0; j < count; ++j) out->At(r, j) = a->At(r, start + j);
  }
  Tensor* ap = a.get();
  Tensor* op = out.get();
  out->SetBackward({a}, [ap, op, start, count, n, c]() {
    if (!ap->NeedsGrad()) return;
    const auto& g = op->grad();
    auto& ga = ap->grad();
    for (int64_t r = 0; r < n; ++r) {
      for (int64_t j = 0; j < count; ++j) {
        ga[r * c + start + j] += g[r * count + j];
      }
    }
  });
  return out;
}

TensorPtr GatherRows(const TensorPtr& a, std::vector<int64_t> indices) {
  const int64_t e = static_cast<int64_t>(indices.size());
  DESALIGN_CHECK_GT(e, 0);
  const int64_t c = a->cols();
  for (int64_t idx : indices) {
    DESALIGN_CHECK(idx >= 0 && idx < a->rows());
  }
  auto out = Tensor::Create(e, c);
  for (int64_t i = 0; i < e; ++i) {
    std::copy(a->data().begin() + indices[i] * c,
              a->data().begin() + (indices[i] + 1) * c,
              out->data().begin() + i * c);
  }
  Tensor* ap = a.get();
  Tensor* op = out.get();
  out->SetBackward({a}, [ap, op, indices = std::move(indices), e, c]() {
    if (!ap->NeedsGrad()) return;
    const auto& g = op->grad();
    auto& ga = ap->grad();
    for (int64_t i = 0; i < e; ++i) {
      for (int64_t j = 0; j < c; ++j) {
        ga[indices[i] * c + j] += g[i * c + j];
      }
    }
  });
  return out;
}

TensorPtr TakeDiag(const TensorPtr& a) {
  DESALIGN_CHECK_EQ(a->rows(), a->cols());
  const int64_t n = a->rows();
  auto out = Tensor::Create(n, 1);
  for (int64_t i = 0; i < n; ++i) out->data()[i] = a->At(i, i);
  Tensor* ap = a.get();
  Tensor* op = out.get();
  out->SetBackward({a}, [ap, op, n]() {
    if (!ap->NeedsGrad()) return;
    const auto& g = op->grad();
    auto& ga = ap->grad();
    for (int64_t i = 0; i < n; ++i) ga[i * n + i] += g[i];
  });
  return out;
}

TensorPtr RowL2Normalize(const TensorPtr& a, float eps) {
  const int64_t n = a->rows();
  const int64_t c = a->cols();
  auto out = Tensor::Create(n, c);
  std::vector<float> norms(n);
  for (int64_t r = 0; r < n; ++r) {
    double acc = 0.0;
    for (int64_t j = 0; j < c; ++j) {
      const float v = a->At(r, j);
      acc += static_cast<double>(v) * v;
    }
    norms[r] = static_cast<float>(std::sqrt(acc + eps));
    for (int64_t j = 0; j < c; ++j) out->At(r, j) = a->At(r, j) / norms[r];
  }
  Tensor* ap = a.get();
  Tensor* op = out.get();
  out->SetBackward({a}, [ap, op, norms = std::move(norms), n, c]() {
    if (!ap->NeedsGrad()) return;
    const auto& g = op->grad();
    auto& ga = ap->grad();
    for (int64_t r = 0; r < n; ++r) {
      float dot = 0.0f;
      for (int64_t j = 0; j < c; ++j)
        dot += g[r * c + j] * op->data()[r * c + j];
      for (int64_t j = 0; j < c; ++j) {
        ga[r * c + j] +=
            (g[r * c + j] - op->data()[r * c + j] * dot) / norms[r];
      }
    }
  });
  return out;
}

TensorPtr LayerNorm(const TensorPtr& x, const TensorPtr& gamma,
                    const TensorPtr& beta, float eps) {
  const int64_t n = x->rows();
  const int64_t c = x->cols();
  DESALIGN_CHECK_EQ(gamma->rows(), 1);
  DESALIGN_CHECK_EQ(gamma->cols(), c);
  DESALIGN_CHECK_EQ(beta->rows(), 1);
  DESALIGN_CHECK_EQ(beta->cols(), c);
  auto out = Tensor::Create(n, c);
  std::vector<float> inv_sigma(n);
  std::vector<float> xhat(static_cast<size_t>(n * c));
  for (int64_t r = 0; r < n; ++r) {
    double mean = 0.0;
    for (int64_t j = 0; j < c; ++j) mean += x->At(r, j);
    mean /= c;
    double var = 0.0;
    for (int64_t j = 0; j < c; ++j) {
      const double d = x->At(r, j) - mean;
      var += d * d;
    }
    var /= c;
    inv_sigma[r] = static_cast<float>(1.0 / std::sqrt(var + eps));
    for (int64_t j = 0; j < c; ++j) {
      const float xh =
          (x->At(r, j) - static_cast<float>(mean)) * inv_sigma[r];
      xhat[r * c + j] = xh;
      out->At(r, j) = gamma->At(0, j) * xh + beta->At(0, j);
    }
  }
  Tensor* xp = x.get();
  Tensor* gp = gamma.get();
  Tensor* bp = beta.get();
  Tensor* op = out.get();
  out->SetBackward({x, gamma, beta}, [xp, gp, bp, op,
                                      inv_sigma = std::move(inv_sigma),
                                      xhat = std::move(xhat), n, c]() {
    const auto& g = op->grad();
    if (gp->NeedsGrad()) {
      auto& gg = gp->grad();
      for (int64_t r = 0; r < n; ++r) {
        for (int64_t j = 0; j < c; ++j) {
          gg[j] += g[r * c + j] * xhat[r * c + j];
        }
      }
    }
    if (bp->NeedsGrad()) {
      auto& gb = bp->grad();
      for (int64_t r = 0; r < n; ++r) {
        for (int64_t j = 0; j < c; ++j) gb[j] += g[r * c + j];
      }
    }
    if (xp->NeedsGrad()) {
      auto& gx = xp->grad();
      for (int64_t r = 0; r < n; ++r) {
        // d = gamma ⊙ dy; dx = (d - mean(d) - xhat*mean(d⊙xhat)) * inv_sigma
        float mean_d = 0.0f;
        float mean_dx = 0.0f;
        for (int64_t j = 0; j < c; ++j) {
          const float d = gp->data()[j] * g[r * c + j];
          mean_d += d;
          mean_dx += d * xhat[r * c + j];
        }
        mean_d /= c;
        mean_dx /= c;
        for (int64_t j = 0; j < c; ++j) {
          const float d = gp->data()[j] * g[r * c + j];
          gx[r * c + j] +=
              (d - mean_d - xhat[r * c + j] * mean_dx) * inv_sigma[r];
        }
      }
    }
  });
  return out;
}

TensorPtr Dropout(const TensorPtr& a, float p, common::Rng& rng,
                  bool training) {
  if (!training || p <= 0.0f) return a;
  DESALIGN_CHECK_LT(p, 1.0f);
  const float keep = 1.0f - p;
  auto out = Tensor::Create(a->rows(), a->cols());
  std::vector<float> mask(static_cast<size_t>(a->size()));
  for (int64_t i = 0; i < a->size(); ++i) {
    mask[i] = rng.Bernoulli(keep) ? 1.0f / keep : 0.0f;
    out->data()[i] = a->data()[i] * mask[i];
  }
  Tensor* ap = a.get();
  Tensor* op = out.get();
  out->SetBackward({a}, [ap, op, mask = std::move(mask)]() {
    if (!ap->NeedsGrad()) return;
    const auto& g = op->grad();
    auto& ga = ap->grad();
    for (size_t i = 0; i < g.size(); ++i) ga[i] += g[i] * mask[i];
  });
  return out;
}

TensorPtr RowDot(const TensorPtr& a, const TensorPtr& b) {
  return RowSum(Mul(a, b));
}

TensorPtr SumSquares(const TensorPtr& a) { return Sum(Square(a)); }

}  // namespace desalign::tensor
