#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

#include "common/check.h"
#include "tensor/kernels/buffer_pool.h"
#include "tensor/kernels/elementwise.h"
#include "tensor/kernels/gemm.h"
#include "tensor/kernels/rowwise.h"

namespace desalign::tensor {

namespace {

void CheckSameShape(const TensorPtr& a, const TensorPtr& b) {
  DESALIGN_CHECK_EQ(a->rows(), b->rows());
  DESALIGN_CHECK_EQ(a->cols(), b->cols());
}

}  // namespace

TensorPtr Add(const TensorPtr& a, const TensorPtr& b) {
  CheckSameShape(a, b);
  auto out = Tensor::CreateUninitialized(a->rows(), a->cols());
  kernels::Add(a->data().data(), b->data().data(), out->data().data(),
               a->size());
  Tensor* ap = a.get();
  Tensor* bp = b.get();
  Tensor* op = out.get();
  out->SetBackward({a, b}, [ap, bp, op]() {
    const auto& g = op->grad();
    const int64_t n = static_cast<int64_t>(g.size());
    if (ap->NeedsGrad()) {
      kernels::Accumulate(g.data(), ap->grad().data(), n);
    }
    if (bp->NeedsGrad()) {
      kernels::Accumulate(g.data(), bp->grad().data(), n);
    }
  });
  return out;
}

TensorPtr Sub(const TensorPtr& a, const TensorPtr& b) {
  CheckSameShape(a, b);
  auto out = Tensor::CreateUninitialized(a->rows(), a->cols());
  kernels::Sub(a->data().data(), b->data().data(), out->data().data(),
               a->size());
  Tensor* ap = a.get();
  Tensor* bp = b.get();
  Tensor* op = out.get();
  out->SetBackward({a, b}, [ap, bp, op]() {
    const auto& g = op->grad();
    const int64_t n = static_cast<int64_t>(g.size());
    if (ap->NeedsGrad()) {
      kernels::Accumulate(g.data(), ap->grad().data(), n);
    }
    if (bp->NeedsGrad()) {
      kernels::AccumulateNeg(g.data(), bp->grad().data(), n);
    }
  });
  return out;
}

TensorPtr Mul(const TensorPtr& a, const TensorPtr& b) {
  CheckSameShape(a, b);
  auto out = Tensor::CreateUninitialized(a->rows(), a->cols());
  kernels::Mul(a->data().data(), b->data().data(), out->data().data(),
               a->size());
  Tensor* ap = a.get();
  Tensor* bp = b.get();
  Tensor* op = out.get();
  out->SetBackward({a, b}, [ap, bp, op]() {
    const auto& g = op->grad();
    const int64_t n = static_cast<int64_t>(g.size());
    if (ap->NeedsGrad()) {
      kernels::AccumulateProduct(g.data(), bp->data().data(),
                                 ap->grad().data(), n);
    }
    if (bp->NeedsGrad()) {
      kernels::AccumulateProduct(g.data(), ap->data().data(),
                                 bp->grad().data(), n);
    }
  });
  return out;
}

TensorPtr Div(const TensorPtr& a, const TensorPtr& b) {
  CheckSameShape(a, b);
  auto out = Tensor::CreateUninitialized(a->rows(), a->cols());
  kernels::Div(a->data().data(), b->data().data(), out->data().data(),
               a->size());
  Tensor* ap = a.get();
  Tensor* bp = b.get();
  Tensor* op = out.get();
  out->SetBackward({a, b}, [ap, bp, op]() {
    const auto& g = op->grad();
    const int64_t n = static_cast<int64_t>(g.size());
    if (ap->NeedsGrad()) {
      kernels::AccumulateQuotient(g.data(), bp->data().data(),
                                  ap->grad().data(), n);
    }
    if (bp->NeedsGrad()) {
      kernels::DivGradB(g.data(), ap->data().data(), bp->data().data(),
                        bp->grad().data(), n);
    }
  });
  return out;
}

TensorPtr AddRowVector(const TensorPtr& a, const TensorPtr& b) {
  DESALIGN_CHECK_EQ(b->rows(), 1);
  DESALIGN_CHECK_EQ(a->cols(), b->cols());
  const int64_t n = a->rows();
  const int64_t c = a->cols();
  auto out = Tensor::CreateUninitialized(n, c);
  kernels::AddRowBroadcast(a->data().data(), b->data().data(),
                           out->data().data(), n, c);
  Tensor* ap = a.get();
  Tensor* bp = b.get();
  Tensor* op = out.get();
  out->SetBackward({a, b}, [ap, bp, op, n, c]() {
    const auto& g = op->grad();
    if (ap->NeedsGrad()) {
      kernels::Accumulate(g.data(), ap->grad().data(), n * c);
    }
    if (bp->NeedsGrad()) {
      kernels::ColumnAcc(g.data(), bp->grad().data(), n, c);
    }
  });
  return out;
}

TensorPtr MulColVector(const TensorPtr& a, const TensorPtr& b) {
  DESALIGN_CHECK_EQ(b->cols(), 1);
  DESALIGN_CHECK_EQ(a->rows(), b->rows());
  const int64_t n = a->rows();
  const int64_t c = a->cols();
  auto out = Tensor::CreateUninitialized(n, c);
  kernels::RowScale(a->data().data(), b->data().data(), out->data().data(),
                    n, c);
  Tensor* ap = a.get();
  Tensor* bp = b.get();
  Tensor* op = out.get();
  out->SetBackward({a, b}, [ap, bp, op, n, c]() {
    const auto& g = op->grad();
    if (ap->NeedsGrad()) {
      kernels::RowScaleAcc(g.data(), bp->data().data(), ap->grad().data(), n,
                           c);
    }
    if (bp->NeedsGrad()) {
      kernels::RowDotAcc(g.data(), ap->data().data(), bp->grad().data(), n,
                         c);
    }
  });
  return out;
}

TensorPtr MulRowVector(const TensorPtr& a, const TensorPtr& b) {
  DESALIGN_CHECK_EQ(b->rows(), 1);
  DESALIGN_CHECK_EQ(a->cols(), b->cols());
  const int64_t n = a->rows();
  const int64_t c = a->cols();
  auto out = Tensor::CreateUninitialized(n, c);
  kernels::MulRowBroadcast(a->data().data(), b->data().data(),
                           out->data().data(), n, c);
  Tensor* ap = a.get();
  Tensor* bp = b.get();
  Tensor* op = out.get();
  out->SetBackward({a, b}, [ap, bp, op, n, c]() {
    const auto& g = op->grad();
    if (ap->NeedsGrad()) {
      kernels::MulRowBroadcastAcc(g.data(), bp->data().data(),
                                  ap->grad().data(), n, c);
    }
    if (bp->NeedsGrad()) {
      kernels::ColumnAccMul(g.data(), ap->data().data(), bp->grad().data(),
                            n, c);
    }
  });
  return out;
}

TensorPtr Scale(const TensorPtr& a, float s) {
  auto out = Tensor::CreateUninitialized(a->rows(), a->cols());
  kernels::Scale(a->data().data(), s, out->data().data(), a->size());
  Tensor* ap = a.get();
  Tensor* op = out.get();
  out->SetBackward({a}, [ap, op, s]() {
    if (!ap->NeedsGrad()) return;
    const auto& g = op->grad();
    kernels::Axpy(s, g.data(), ap->grad().data(),
                  static_cast<int64_t>(g.size()));
  });
  return out;
}

TensorPtr AddScalar(const TensorPtr& a, float s) {
  auto out = Tensor::CreateUninitialized(a->rows(), a->cols());
  kernels::AddScalar(a->data().data(), s, out->data().data(), a->size());
  Tensor* ap = a.get();
  Tensor* op = out.get();
  out->SetBackward({a}, [ap, op]() {
    if (!ap->NeedsGrad()) return;
    const auto& g = op->grad();
    kernels::Accumulate(g.data(), ap->grad().data(),
                        static_cast<int64_t>(g.size()));
  });
  return out;
}

TensorPtr Neg(const TensorPtr& a) { return Scale(a, -1.0f); }

TensorPtr MatMul(const TensorPtr& a, const TensorPtr& b) {
  DESALIGN_CHECK_EQ(a->cols(), b->rows());
  const int64_t m = a->rows();
  const int64_t k = a->cols();
  const int64_t n = b->cols();
  auto out = Tensor::CreateUninitialized(m, n);
  kernels::MatMul(a->data().data(), b->data().data(), out->data().data(), m,
                  k, n);
  Tensor* ap = a.get();
  Tensor* bp = b.get();
  Tensor* op = out.get();
  out->SetBackward({a, b}, [ap, bp, op, m, k, n]() {
    const float* g = op->grad().data();
    if (ap->NeedsGrad()) {
      kernels::MatMulGradA(g, bp->data().data(), ap->grad().data(), m, k, n);
    }
    if (bp->NeedsGrad()) {
      kernels::MatMulGradB(g, ap->data().data(), bp->grad().data(), m, k, n);
    }
  });
  return out;
}

TensorPtr Transpose(const TensorPtr& a) {
  const int64_t m = a->rows();
  const int64_t n = a->cols();
  auto out = Tensor::CreateUninitialized(n, m);
  kernels::Transpose(a->data().data(), out->data().data(), m, n);
  Tensor* ap = a.get();
  Tensor* op = out.get();
  out->SetBackward({a}, [ap, op, m, n]() {
    if (!ap->NeedsGrad()) return;
    kernels::TransposeAcc(op->grad().data(), ap->grad().data(), m, n);
  });
  return out;
}

TensorPtr SpMM(const CsrMatrixPtr& a, const TensorPtr& x) {
  DESALIGN_CHECK_EQ(a->cols(), x->rows());
  const int64_t k = x->cols();
  // Multiply zeroes its output rows before accumulating, so an
  // uninitialized output is safe.
  auto out = Tensor::CreateUninitialized(a->rows(), k);
  a->Multiply(x->data().data(), k, out->data().data());
  if (!GradEnabled() || !x->NeedsGrad()) return out;
  CsrMatrixPtr at = a->Transpose();
  Tensor* xp = x.get();
  Tensor* op = out.get();
  out->SetBackward({x}, [at, xp, op, k]() {
    if (!xp->NeedsGrad()) return;
    auto& g = xp->grad();
    const int64_t n = static_cast<int64_t>(g.size());
    kernels::PooledBuffer gx(g.size(), /*zero=*/false);
    at->Multiply(op->grad().data(), k, gx.data());
    kernels::Accumulate(gx.data(), g.data(), n);
  });
  return out;
}

TensorPtr Relu(const TensorPtr& a) {
  auto out = Tensor::CreateUninitialized(a->rows(), a->cols());
  kernels::Relu(a->data().data(), out->data().data(), a->size());
  Tensor* ap = a.get();
  Tensor* op = out.get();
  out->SetBackward({a}, [ap, op]() {
    if (!ap->NeedsGrad()) return;
    const auto& g = op->grad();
    kernels::ReluGrad(g.data(), ap->data().data(), ap->grad().data(),
                      static_cast<int64_t>(g.size()));
  });
  return out;
}

TensorPtr LeakyRelu(const TensorPtr& a, float slope) {
  auto out = Tensor::CreateUninitialized(a->rows(), a->cols());
  kernels::LeakyRelu(a->data().data(), slope, out->data().data(), a->size());
  Tensor* ap = a.get();
  Tensor* op = out.get();
  out->SetBackward({a}, [ap, op, slope]() {
    if (!ap->NeedsGrad()) return;
    const auto& g = op->grad();
    kernels::LeakyReluGrad(g.data(), ap->data().data(), slope,
                           ap->grad().data(),
                           static_cast<int64_t>(g.size()));
  });
  return out;
}

TensorPtr Sigmoid(const TensorPtr& a) {
  auto out = Tensor::CreateUninitialized(a->rows(), a->cols());
  kernels::Sigmoid(a->data().data(), out->data().data(), a->size());
  Tensor* ap = a.get();
  Tensor* op = out.get();
  out->SetBackward({a}, [ap, op]() {
    if (!ap->NeedsGrad()) return;
    const auto& g = op->grad();
    kernels::SigmoidGrad(g.data(), op->data().data(), ap->grad().data(),
                         static_cast<int64_t>(g.size()));
  });
  return out;
}

TensorPtr Tanh(const TensorPtr& a) {
  auto out = Tensor::CreateUninitialized(a->rows(), a->cols());
  kernels::Tanh(a->data().data(), out->data().data(), a->size());
  Tensor* ap = a.get();
  Tensor* op = out.get();
  out->SetBackward({a}, [ap, op]() {
    if (!ap->NeedsGrad()) return;
    const auto& g = op->grad();
    kernels::TanhGrad(g.data(), op->data().data(), ap->grad().data(),
                      static_cast<int64_t>(g.size()));
  });
  return out;
}

TensorPtr Exp(const TensorPtr& a) {
  auto out = Tensor::CreateUninitialized(a->rows(), a->cols());
  kernels::Exp(a->data().data(), out->data().data(), a->size());
  Tensor* ap = a.get();
  Tensor* op = out.get();
  out->SetBackward({a}, [ap, op]() {
    if (!ap->NeedsGrad()) return;
    const auto& g = op->grad();
    kernels::AccumulateProduct(g.data(), op->data().data(),
                               ap->grad().data(),
                               static_cast<int64_t>(g.size()));
  });
  return out;
}

TensorPtr LogSafe(const TensorPtr& a, float eps) {
  auto out = Tensor::CreateUninitialized(a->rows(), a->cols());
  kernels::LogEps(a->data().data(), eps, out->data().data(), a->size());
  Tensor* ap = a.get();
  Tensor* op = out.get();
  out->SetBackward({a}, [ap, op, eps]() {
    if (!ap->NeedsGrad()) return;
    const auto& g = op->grad();
    kernels::LogEpsGrad(g.data(), ap->data().data(), eps, ap->grad().data(),
                        static_cast<int64_t>(g.size()));
  });
  return out;
}

TensorPtr Square(const TensorPtr& a) {
  auto out = Tensor::CreateUninitialized(a->rows(), a->cols());
  kernels::Square(a->data().data(), out->data().data(), a->size());
  Tensor* ap = a.get();
  Tensor* op = out.get();
  out->SetBackward({a}, [ap, op]() {
    if (!ap->NeedsGrad()) return;
    const auto& g = op->grad();
    kernels::SquareGrad(g.data(), ap->data().data(), ap->grad().data(),
                        static_cast<int64_t>(g.size()));
  });
  return out;
}

TensorPtr Abs(const TensorPtr& a) {
  auto out = Tensor::CreateUninitialized(a->rows(), a->cols());
  kernels::Abs(a->data().data(), out->data().data(), a->size());
  Tensor* ap = a.get();
  Tensor* op = out.get();
  out->SetBackward({a}, [ap, op]() {
    if (!ap->NeedsGrad()) return;
    const auto& g = op->grad();
    kernels::AbsGrad(g.data(), ap->data().data(), ap->grad().data(),
                     static_cast<int64_t>(g.size()));
  });
  return out;
}

TensorPtr ClipByValue(const TensorPtr& a, float lo, float hi) {
  DESALIGN_CHECK_LE(lo, hi);
  auto out = Tensor::CreateUninitialized(a->rows(), a->cols());
  kernels::Clip(a->data().data(), lo, hi, out->data().data(), a->size());
  Tensor* ap = a.get();
  Tensor* op = out.get();
  out->SetBackward({a}, [ap, op, lo, hi]() {
    if (!ap->NeedsGrad()) return;
    const auto& g = op->grad();
    kernels::ClipGrad(g.data(), ap->data().data(), lo, hi,
                      ap->grad().data(), static_cast<int64_t>(g.size()));
  });
  return out;
}

namespace {

template <typename Pick>
TensorPtr SelectElementwise(const TensorPtr& a, const TensorPtr& b,
                            Pick pick_a) {
  CheckSameShape(a, b);
  auto out = Tensor::CreateUninitialized(a->rows(), a->cols());
  std::vector<uint8_t> from_a(static_cast<size_t>(a->size()));
  for (int64_t i = 0; i < a->size(); ++i) {
    from_a[i] = pick_a(a->data()[i], b->data()[i]) ? 1 : 0;
    out->data()[i] = from_a[i] ? a->data()[i] : b->data()[i];
  }
  Tensor* ap = a.get();
  Tensor* bp = b.get();
  Tensor* op = out.get();
  out->SetBackward({a, b}, [ap, bp, op, from_a = std::move(from_a)]() {
    const auto& g = op->grad();
    if (ap->NeedsGrad()) {
      auto& ga = ap->grad();
      for (size_t i = 0; i < g.size(); ++i) {
        if (from_a[i]) ga[i] += g[i];
      }
    }
    if (bp->NeedsGrad()) {
      auto& gb = bp->grad();
      for (size_t i = 0; i < g.size(); ++i) {
        if (!from_a[i]) gb[i] += g[i];
      }
    }
  });
  return out;
}

}  // namespace

TensorPtr MaxElementwise(const TensorPtr& a, const TensorPtr& b) {
  return SelectElementwise(a, b, [](float x, float y) { return x >= y; });
}

TensorPtr MinElementwise(const TensorPtr& a, const TensorPtr& b) {
  return SelectElementwise(a, b, [](float x, float y) { return x <= y; });
}

TensorPtr RowMax(const TensorPtr& a) {
  const int64_t n = a->rows();
  const int64_t c = a->cols();
  auto out = Tensor::CreateUninitialized(n, 1);
  std::vector<int64_t> argmax(n, 0);
  for (int64_t r = 0; r < n; ++r) {
    float best = a->At(r, 0);
    for (int64_t j = 1; j < c; ++j) {
      if (a->At(r, j) > best) {
        best = a->At(r, j);
        argmax[r] = j;
      }
    }
    out->data()[r] = best;
  }
  Tensor* ap = a.get();
  Tensor* op = out.get();
  out->SetBackward({a}, [ap, op, argmax = std::move(argmax), n, c]() {
    if (!ap->NeedsGrad()) return;
    const auto& g = op->grad();
    auto& ga = ap->grad();
    for (int64_t r = 0; r < n; ++r) ga[r * c + argmax[r]] += g[r];
  });
  return out;
}

TensorPtr ColMean(const TensorPtr& a) {
  const int64_t n = a->rows();
  const int64_t c = a->cols();
  auto out = Tensor::Create(1, c);
  for (int64_t r = 0; r < n; ++r) {
    for (int64_t j = 0; j < c; ++j) out->data()[j] += a->At(r, j);
  }
  const float inv = 1.0f / static_cast<float>(n);
  for (auto& v : out->data()) v *= inv;
  Tensor* ap = a.get();
  Tensor* op = out.get();
  out->SetBackward({a}, [ap, op, n, c, inv]() {
    if (!ap->NeedsGrad()) return;
    const auto& g = op->grad();
    auto& ga = ap->grad();
    for (int64_t r = 0; r < n; ++r) {
      for (int64_t j = 0; j < c; ++j) ga[r * c + j] += g[j] * inv;
    }
  });
  return out;
}

std::vector<int64_t> ArgMaxRows(const Tensor& a) {
  std::vector<int64_t> out(a.rows(), 0);
  for (int64_t r = 0; r < a.rows(); ++r) {
    for (int64_t j = 1; j < a.cols(); ++j) {
      if (a.At(r, j) > a.At(r, out[r])) out[r] = j;
    }
  }
  return out;
}

TensorPtr RowSoftmax(const TensorPtr& a) {
  const int64_t n = a->rows();
  const int64_t c = a->cols();
  auto out = Tensor::CreateUninitialized(n, c);
  kernels::RowSoftmax(a->data().data(), out->data().data(), n, c);
  Tensor* ap = a.get();
  Tensor* op = out.get();
  out->SetBackward({a}, [ap, op, n, c]() {
    if (!ap->NeedsGrad()) return;
    kernels::RowSoftmaxGrad(op->data().data(), op->grad().data(),
                            ap->grad().data(), n, c);
  });
  return out;
}

TensorPtr RowLogSoftmax(const TensorPtr& a) {
  const int64_t n = a->rows();
  const int64_t c = a->cols();
  auto out = Tensor::CreateUninitialized(n, c);
  kernels::RowLogSoftmax(a->data().data(), out->data().data(), n, c);
  Tensor* ap = a.get();
  Tensor* op = out.get();
  out->SetBackward({a}, [ap, op, n, c]() {
    if (!ap->NeedsGrad()) return;
    kernels::RowLogSoftmaxGrad(op->data().data(), op->grad().data(),
                               ap->grad().data(), n, c);
  });
  return out;
}

TensorPtr SegmentSoftmax(const TensorPtr& scores,
                         const std::vector<int64_t>& segments,
                         int64_t num_segments) {
  DESALIGN_CHECK_EQ(scores->cols(), 1);
  const int64_t e = scores->rows();
  DESALIGN_CHECK_EQ(static_cast<int64_t>(segments.size()), e);
  auto out = Tensor::CreateUninitialized(e, 1);
  kernels::PooledBuffer seg_max(static_cast<size_t>(num_segments),
                                /*zero=*/false);
  for (int64_t s = 0; s < num_segments; ++s) {
    seg_max.data()[s] = -std::numeric_limits<float>::infinity();
  }
  for (int64_t i = 0; i < e; ++i) {
    seg_max.data()[segments[i]] =
        std::max(seg_max.data()[segments[i]], scores->data()[i]);
  }
  kernels::PooledBuffer seg_denom(static_cast<size_t>(num_segments),
                                  /*zero=*/true);
  for (int64_t i = 0; i < e; ++i) {
    const float ev = std::exp(scores->data()[i] - seg_max.data()[segments[i]]);
    out->data()[i] = ev;
    seg_denom.data()[segments[i]] += ev;
  }
  for (int64_t i = 0; i < e; ++i) {
    out->data()[i] /= seg_denom.data()[segments[i]];
  }
  Tensor* sp = scores.get();
  Tensor* op = out.get();
  std::vector<int64_t> segs = segments;
  out->SetBackward({scores}, [sp, op, segs = std::move(segs), num_segments,
                              e]() {
    if (!sp->NeedsGrad()) return;
    const auto& g = op->grad();
    auto& gs = sp->grad();
    kernels::PooledBuffer seg_dot(static_cast<size_t>(num_segments),
                                  /*zero=*/true);
    for (int64_t i = 0; i < e; ++i)
      seg_dot.data()[segs[i]] += g[i] * op->data()[i];
    for (int64_t i = 0; i < e; ++i) {
      gs[i] += op->data()[i] * (g[i] - seg_dot.data()[segs[i]]);
    }
  });
  return out;
}

TensorPtr Sum(const TensorPtr& a) {
  auto out = Tensor::CreateUninitialized(1, 1);
  double acc = 0.0;
  for (int64_t i = 0; i < a->size(); ++i) acc += a->data()[i];
  out->data()[0] = static_cast<float>(acc);
  Tensor* ap = a.get();
  Tensor* op = out.get();
  out->SetBackward({a}, [ap, op]() {
    if (!ap->NeedsGrad()) return;
    const float g = op->grad()[0];
    auto& ga = ap->grad();
    kernels::AccumulateConstant(g, ga.data(),
                                static_cast<int64_t>(ga.size()));
  });
  return out;
}

TensorPtr Mean(const TensorPtr& a) {
  const float inv = 1.0f / static_cast<float>(a->size());
  return Scale(Sum(a), inv);
}

TensorPtr RowSum(const TensorPtr& a) {
  const int64_t n = a->rows();
  const int64_t c = a->cols();
  auto out = Tensor::CreateUninitialized(n, 1);
  for (int64_t r = 0; r < n; ++r) {
    float acc = 0.0f;
    for (int64_t j = 0; j < c; ++j) acc += a->At(r, j);
    out->data()[r] = acc;
  }
  Tensor* ap = a.get();
  Tensor* op = out.get();
  out->SetBackward({a}, [ap, op, n, c]() {
    if (!ap->NeedsGrad()) return;
    kernels::AddColBroadcastAcc(op->grad().data(), ap->grad().data(), n, c);
  });
  return out;
}

TensorPtr SegmentSum(const TensorPtr& values,
                     const std::vector<int64_t>& segments,
                     int64_t num_segments) {
  const int64_t e = values->rows();
  const int64_t c = values->cols();
  DESALIGN_CHECK_EQ(static_cast<int64_t>(segments.size()), e);
  auto out = Tensor::Create(num_segments, c);
  kernels::ScatterAddRows(values->data().data(), segments.data(),
                          out->data().data(), e, c);
  Tensor* vp = values.get();
  Tensor* op = out.get();
  std::vector<int64_t> segs = segments;
  out->SetBackward({values}, [vp, op, segs = std::move(segs), e, c]() {
    if (!vp->NeedsGrad()) return;
    kernels::GatherRowsAcc(op->grad().data(), segs.data(), vp->grad().data(),
                           e, c);
  });
  return out;
}

TensorPtr ConcatCols(const std::vector<TensorPtr>& parts) {
  DESALIGN_CHECK(!parts.empty());
  const int64_t n = parts[0]->rows();
  int64_t total_c = 0;
  for (const auto& p : parts) {
    DESALIGN_CHECK_EQ(p->rows(), n);
    total_c += p->cols();
  }
  auto out = Tensor::CreateUninitialized(n, total_c);
  int64_t offset = 0;
  for (const auto& p : parts) {
    kernels::CopyDenseToStrided(p->data().data(),
                                out->data().data() + offset, total_c, n,
                                p->cols());
    offset += p->cols();
  }
  std::vector<TensorPtr> parents = parts;
  Tensor* op = out.get();
  std::vector<Tensor*> raw;
  std::vector<int64_t> col_counts;
  for (const auto& p : parts) {
    raw.push_back(p.get());
    col_counts.push_back(p->cols());
  }
  out->SetBackward(std::move(parents), [op, raw = std::move(raw),
                                        col_counts = std::move(col_counts), n,
                                        total_c]() {
    const auto& g = op->grad();
    int64_t offset2 = 0;
    for (size_t k = 0; k < raw.size(); ++k) {
      const int64_t c = col_counts[k];
      if (raw[k]->NeedsGrad()) {
        kernels::AccStridedToDense(g.data() + offset2, total_c,
                                   raw[k]->grad().data(), n, c);
      }
      offset2 += c;
    }
  });
  return out;
}

TensorPtr ConcatRows(const std::vector<TensorPtr>& parts) {
  DESALIGN_CHECK(!parts.empty());
  const int64_t c = parts[0]->cols();
  int64_t total_n = 0;
  for (const auto& p : parts) {
    DESALIGN_CHECK_EQ(p->cols(), c);
    total_n += p->rows();
  }
  auto out = Tensor::CreateUninitialized(total_n, c);
  int64_t offset = 0;
  for (const auto& p : parts) {
    std::copy(p->data().begin(), p->data().end(),
              out->data().begin() + offset * c);
    offset += p->rows();
  }
  std::vector<TensorPtr> parents = parts;
  Tensor* op = out.get();
  std::vector<Tensor*> raw;
  std::vector<int64_t> row_counts;
  for (const auto& p : parts) {
    raw.push_back(p.get());
    row_counts.push_back(p->rows());
  }
  out->SetBackward(std::move(parents),
                   [op, raw = std::move(raw),
                    row_counts = std::move(row_counts), c]() {
                     const auto& g = op->grad();
                     int64_t offset2 = 0;
                     for (size_t k = 0; k < raw.size(); ++k) {
                       const int64_t n = row_counts[k];
                       if (raw[k]->NeedsGrad()) {
                         kernels::Accumulate(g.data() + offset2 * c,
                                             raw[k]->grad().data(), n * c);
                       }
                       offset2 += n;
                     }
                   });
  return out;
}

TensorPtr SliceCols(const TensorPtr& a, int64_t start, int64_t count) {
  DESALIGN_CHECK_GE(start, 0);
  DESALIGN_CHECK_GT(count, 0);
  DESALIGN_CHECK_LE(start + count, a->cols());
  const int64_t n = a->rows();
  const int64_t c = a->cols();
  auto out = Tensor::CreateUninitialized(n, count);
  kernels::CopyStridedToDense(a->data().data() + start, c,
                              out->data().data(), n, count);
  Tensor* ap = a.get();
  Tensor* op = out.get();
  out->SetBackward({a}, [ap, op, start, count, n, c]() {
    if (!ap->NeedsGrad()) return;
    kernels::AccDenseToStrided(op->grad().data(),
                               ap->grad().data() + start, c, n, count);
  });
  return out;
}

TensorPtr GatherRows(const TensorPtr& a, std::vector<int64_t> indices) {
  const int64_t e = static_cast<int64_t>(indices.size());
  DESALIGN_CHECK_GT(e, 0);
  const int64_t c = a->cols();
  for (int64_t idx : indices) {
    DESALIGN_CHECK(idx >= 0 && idx < a->rows());
  }
  auto out = Tensor::CreateUninitialized(e, c);
  kernels::GatherRows(a->data().data(), indices.data(), out->data().data(),
                      e, c);
  Tensor* ap = a.get();
  Tensor* op = out.get();
  out->SetBackward({a}, [ap, op, indices = std::move(indices), e, c]() {
    if (!ap->NeedsGrad()) return;
    kernels::ScatterAddRows(op->grad().data(), indices.data(),
                            ap->grad().data(), e, c);
  });
  return out;
}

TensorPtr TakeDiag(const TensorPtr& a) {
  DESALIGN_CHECK_EQ(a->rows(), a->cols());
  const int64_t n = a->rows();
  auto out = Tensor::CreateUninitialized(n, 1);
  for (int64_t i = 0; i < n; ++i) out->data()[i] = a->At(i, i);
  Tensor* ap = a.get();
  Tensor* op = out.get();
  out->SetBackward({a}, [ap, op, n]() {
    if (!ap->NeedsGrad()) return;
    const auto& g = op->grad();
    auto& ga = ap->grad();
    for (int64_t i = 0; i < n; ++i) ga[i * n + i] += g[i];
  });
  return out;
}

TensorPtr RowL2Normalize(const TensorPtr& a, float eps) {
  const int64_t n = a->rows();
  const int64_t c = a->cols();
  auto out = Tensor::CreateUninitialized(n, c);
  kernels::PooledBuffer norms(static_cast<size_t>(n), /*zero=*/false);
  kernels::RowL2Normalize(a->data().data(), eps, out->data().data(),
                          norms.data(), n, c);
  Tensor* ap = a.get();
  Tensor* op = out.get();
  out->SetBackward({a}, [ap, op, norms = std::move(norms), n, c]() {
    if (!ap->NeedsGrad()) return;
    kernels::RowL2NormalizeGrad(op->data().data(), op->grad().data(),
                                norms.data(), ap->grad().data(), n, c);
  });
  return out;
}

TensorPtr LayerNorm(const TensorPtr& x, const TensorPtr& gamma,
                    const TensorPtr& beta, float eps) {
  const int64_t n = x->rows();
  const int64_t c = x->cols();
  DESALIGN_CHECK_EQ(gamma->rows(), 1);
  DESALIGN_CHECK_EQ(gamma->cols(), c);
  DESALIGN_CHECK_EQ(beta->rows(), 1);
  DESALIGN_CHECK_EQ(beta->cols(), c);
  auto out = Tensor::CreateUninitialized(n, c);
  kernels::PooledBuffer inv_sigma(static_cast<size_t>(n), /*zero=*/false);
  kernels::PooledBuffer xhat(static_cast<size_t>(n * c), /*zero=*/false);
  kernels::LayerNormForward(x->data().data(), gamma->data().data(),
                            beta->data().data(), eps, out->data().data(),
                            xhat.data(), inv_sigma.data(), n, c);
  Tensor* xp = x.get();
  Tensor* gp = gamma.get();
  Tensor* bp = beta.get();
  Tensor* op = out.get();
  out->SetBackward({x, gamma, beta}, [xp, gp, bp, op,
                                      inv_sigma = std::move(inv_sigma),
                                      xhat = std::move(xhat), n, c]() {
    const auto& g = op->grad();
    if (gp->NeedsGrad()) {
      kernels::ColumnAccMul(g.data(), xhat.data(), gp->grad().data(), n, c);
    }
    if (bp->NeedsGrad()) {
      kernels::ColumnAcc(g.data(), bp->grad().data(), n, c);
    }
    if (xp->NeedsGrad()) {
      kernels::LayerNormGradX(g.data(), gp->data().data(), xhat.data(),
                              inv_sigma.data(), xp->grad().data(), n, c);
    }
  });
  return out;
}

TensorPtr Dropout(const TensorPtr& a, float p, common::Rng& rng,
                  bool training) {
  if (!training || p <= 0.0f) return a;
  DESALIGN_CHECK_LT(p, 1.0f);
  const float keep = 1.0f - p;
  auto out = Tensor::CreateUninitialized(a->rows(), a->cols());
  // The mask must be drawn sequentially (the rng stream is part of the
  // training contract), so the forward loop stays serial.
  kernels::PooledBuffer mask(static_cast<size_t>(a->size()), /*zero=*/false);
  for (int64_t i = 0; i < a->size(); ++i) {
    mask.data()[i] = rng.Bernoulli(keep) ? 1.0f / keep : 0.0f;
    out->data()[i] = a->data()[i] * mask.data()[i];
  }
  Tensor* ap = a.get();
  Tensor* op = out.get();
  out->SetBackward({a}, [ap, op, mask = std::move(mask)]() {
    if (!ap->NeedsGrad()) return;
    const auto& g = op->grad();
    kernels::AccumulateProduct(g.data(), mask.data(), ap->grad().data(),
                               static_cast<int64_t>(g.size()));
  });
  return out;
}

TensorPtr RowDot(const TensorPtr& a, const TensorPtr& b) {
  return RowSum(Mul(a, b));
}

TensorPtr SumSquares(const TensorPtr& a) { return Sum(Square(a)); }

}  // namespace desalign::tensor
