#include "tensor/tensor.h"

#include <cmath>
#include <sstream>
#include <unordered_set>

#include "common/check.h"
#include "tensor/kernels/buffer_pool.h"

namespace desalign::tensor {

namespace {
thread_local bool g_grad_enabled = true;
}  // namespace

NoGradGuard::NoGradGuard() : previous_(g_grad_enabled) {
  g_grad_enabled = false;
}

NoGradGuard::~NoGradGuard() { g_grad_enabled = previous_; }

bool GradEnabled() { return g_grad_enabled; }

Tensor::Tensor(int64_t rows, int64_t cols, bool requires_grad)
    : Tensor(rows, cols, requires_grad, /*zero_init=*/true) {}

Tensor::Tensor(int64_t rows, int64_t cols, bool requires_grad,
               bool zero_init)
    : rows_(rows), cols_(cols), requires_grad_(requires_grad) {
  DESALIGN_CHECK_GT(rows, 0);
  DESALIGN_CHECK_GT(cols, 0);
  data_ = kernels::BufferPool::Global().Acquire(
      static_cast<size_t>(rows * cols), zero_init);
}

Tensor::~Tensor() {
  auto& pool = kernels::BufferPool::Global();
  pool.Release(std::move(data_));
  pool.Release(std::move(grad_));
}

TensorPtr Tensor::Create(int64_t rows, int64_t cols, bool requires_grad) {
  return std::make_shared<Tensor>(rows, cols, requires_grad);
}

TensorPtr Tensor::CreateUninitialized(int64_t rows, int64_t cols,
                                      bool requires_grad) {
  return std::make_shared<Tensor>(rows, cols, requires_grad,
                                  /*zero_init=*/false);
}

TensorPtr Tensor::FromData(int64_t rows, int64_t cols,
                           std::vector<float> data, bool requires_grad) {
  DESALIGN_CHECK_EQ(static_cast<int64_t>(data.size()), rows * cols);
  auto t = CreateUninitialized(rows, cols, requires_grad);
  // The adopted buffer replaces the pooled one, which goes back to the pool.
  kernels::BufferPool::Global().Release(std::move(t->data_));
  t->data_ = std::move(data);
  return t;
}

TensorPtr Tensor::Zeros(int64_t rows, int64_t cols, bool requires_grad) {
  return Create(rows, cols, requires_grad);
}

TensorPtr Tensor::Full(int64_t rows, int64_t cols, float value,
                       bool requires_grad) {
  auto t = Create(rows, cols, requires_grad);
  for (auto& v : t->data_) v = value;
  return t;
}

TensorPtr Tensor::Scalar(float value, bool requires_grad) {
  return Full(1, 1, value, requires_grad);
}

std::vector<float>& Tensor::grad() {
  if (grad_.empty()) {
    grad_ = kernels::BufferPool::Global().Acquire(data_.size(),
                                                  /*zero=*/true);
  }
  return grad_;
}

void Tensor::SetBackward(std::vector<TensorPtr> parents,
                         std::function<void()> backward_fn) {
  if (!g_grad_enabled) return;
  bool any_needs_grad = false;
  for (const auto& p : parents) {
    if (p->NeedsGrad()) {
      any_needs_grad = true;
      break;
    }
  }
  if (!any_needs_grad) return;
  parents_ = std::move(parents);
  backward_fn_ = std::move(backward_fn);
}

void Tensor::Backward() {
  DESALIGN_CHECK_MSG(rows_ == 1 && cols_ == 1,
                     "Backward() must start from a scalar loss");
  // Topological order via iterative post-order DFS.
  std::vector<Tensor*> topo;
  std::unordered_set<Tensor*> visited;
  std::vector<std::pair<Tensor*, size_t>> stack;
  stack.emplace_back(this, 0);
  visited.insert(this);
  while (!stack.empty()) {
    auto& [node, next_child] = stack.back();
    if (next_child < node->parents_.size()) {
      Tensor* child = node->parents_[next_child].get();
      ++next_child;
      if (visited.insert(child).second) {
        stack.emplace_back(child, 0);
      }
    } else {
      topo.push_back(node);
      stack.pop_back();
    }
  }
  grad().assign(1, 1.0f);
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    Tensor* node = *it;
    if (node->backward_fn_ && node->has_grad()) {
      node->backward_fn_();
    }
  }
}

void Tensor::ZeroGrad() {
  if (!grad_.empty()) grad_.assign(data_.size(), 0.0f);
}

TensorPtr Tensor::Detach() const {
  auto t = Create(rows_, cols_, /*requires_grad=*/false);
  t->data_ = data_;
  return t;
}

float Tensor::ScalarValue() const {
  DESALIGN_CHECK(rows_ == 1 && cols_ == 1);
  return data_[0];
}

float Tensor::FrobeniusNorm() const {
  double acc = 0.0;
  for (float v : data_) acc += static_cast<double>(v) * v;
  return static_cast<float>(std::sqrt(acc));
}

std::string Tensor::ToString() const {
  std::ostringstream os;
  os << "Tensor(" << rows_ << "x" << cols_ << ")";
  if (size() <= 16) {
    os << " [";
    for (int64_t i = 0; i < size(); ++i) {
      if (i) os << ", ";
      os << data_[i];
    }
    os << "]";
  }
  return os.str();
}

}  // namespace desalign::tensor
