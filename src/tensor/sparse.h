#ifndef DESALIGN_TENSOR_SPARSE_H_
#define DESALIGN_TENSOR_SPARSE_H_

#include <cstdint>
#include <memory>
#include <vector>

namespace desalign::tensor {

/// A single (row, col, value) sparse entry.
struct Triplet {
  int64_t row = 0;
  int64_t col = 0;
  float value = 0.0f;
};

class CsrMatrix;
using CsrMatrixPtr = std::shared_ptr<const CsrMatrix>;

/// Immutable compressed-sparse-row float matrix. Used for adjacency
/// matrices, normalized adjacencies Ã and Laplacians Δ; the SpMM autograd op
/// multiplies it against dense tensors.
class CsrMatrix {
 public:
  /// Builds from COO triplets; duplicate (row, col) entries are summed.
  static CsrMatrixPtr FromTriplets(int64_t rows, int64_t cols,
                                   std::vector<Triplet> triplets);

  /// Identity matrix of size n.
  static CsrMatrixPtr Identity(int64_t n);

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t nnz() const { return static_cast<int64_t>(values_.size()); }

  const std::vector<int64_t>& row_ptr() const { return row_ptr_; }
  const std::vector<int64_t>& col_idx() const { return col_idx_; }
  const std::vector<float>& values() const { return values_; }

  /// y = this * x  (dense x: cols() x k, y: rows() x k, both row-major).
  void Multiply(const float* x, int64_t k, float* y) const;

  /// Returns the transposed matrix.
  CsrMatrixPtr Transpose() const;

  /// Returns alpha*this + beta*other (shapes must match; union sparsity).
  CsrMatrixPtr Add(const CsrMatrix& other, float alpha, float beta) const;

  /// Returns the dense entry (row, col); O(log nnz_row) binary search.
  float At(int64_t row, int64_t col) const;

  /// Row sums (out-degree for an adjacency matrix).
  std::vector<float> RowSums() const;

  /// True if equal to its own transpose (within tolerance).
  bool IsSymmetric(float tol = 1e-6f) const;

  /// Extracts the sub-matrix of rows where row_mask is true and columns
  /// where col_mask is true, in original relative order. This is the
  /// block-partition primitive behind the paper's Eq. 2 decomposition
  /// (A_cc, A_co, A_oc, A_oo) and the sub-Laplacian Δ_oo of Eq. 19.
  CsrMatrixPtr SubMatrix(const std::vector<bool>& row_mask,
                         const std::vector<bool>& col_mask) const;

 private:
  CsrMatrix(int64_t rows, int64_t cols) : rows_(rows), cols_(cols) {}

  int64_t rows_;
  int64_t cols_;
  std::vector<int64_t> row_ptr_;
  std::vector<int64_t> col_idx_;
  std::vector<float> values_;
};

}  // namespace desalign::tensor

#endif  // DESALIGN_TENSOR_SPARSE_H_
