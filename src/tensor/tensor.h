#ifndef DESALIGN_TENSOR_TENSOR_H_
#define DESALIGN_TENSOR_TENSOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace desalign::tensor {

class Tensor;
using TensorPtr = std::shared_ptr<Tensor>;

/// Dense row-major float32 matrix that doubles as a node in a reverse-mode
/// autograd graph. All model math in this library (encoders, attention,
/// losses, Dirichlet-energy penalties) is expressed over Tensor; gradients
/// are obtained by calling Backward() on a scalar (1x1) loss node.
///
/// Ownership model: each node holds shared_ptr references to its parents
/// (`parents()`), which keeps the upstream graph alive for backward; the
/// backward closure captures only raw pointers, so there are no reference
/// cycles and a training-step graph is freed when the loss node goes out of
/// scope.
class Tensor {
 public:
  /// Creates a zero-filled rows x cols tensor.
  static TensorPtr Create(int64_t rows, int64_t cols,
                          bool requires_grad = false);

  /// Creates a tensor whose data contents are unspecified (possibly stale
  /// bytes from the buffer pool). Reserved for ops that overwrite every
  /// element before any read — never hand one to code that accumulates.
  static TensorPtr CreateUninitialized(int64_t rows, int64_t cols,
                                       bool requires_grad = false);

  /// Creates a tensor adopting `data` (size must equal rows*cols).
  static TensorPtr FromData(int64_t rows, int64_t cols,
                            std::vector<float> data,
                            bool requires_grad = false);

  /// All-zeros tensor.
  static TensorPtr Zeros(int64_t rows, int64_t cols,
                         bool requires_grad = false);

  /// All-`value` tensor.
  static TensorPtr Full(int64_t rows, int64_t cols, float value,
                        bool requires_grad = false);

  /// 1x1 scalar tensor.
  static TensorPtr Scalar(float value, bool requires_grad = false);

  Tensor(int64_t rows, int64_t cols, bool requires_grad);
  Tensor(int64_t rows, int64_t cols, bool requires_grad, bool zero_init);

  /// Returns the data and gradient buffers to the global BufferPool.
  ~Tensor();

  Tensor(const Tensor&) = delete;
  Tensor& operator=(const Tensor&) = delete;

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t size() const { return rows_ * cols_; }

  float At(int64_t r, int64_t c) const { return data_[r * cols_ + c]; }
  float& At(int64_t r, int64_t c) { return data_[r * cols_ + c]; }

  const std::vector<float>& data() const { return data_; }
  std::vector<float>& data() { return data_; }

  /// Gradient buffer; lazily allocated (zero-filled) on first access.
  std::vector<float>& grad();
  bool has_grad() const { return !grad_.empty(); }

  bool requires_grad() const { return requires_grad_; }
  void set_requires_grad(bool v) { requires_grad_ = v; }

  /// True when this node participates in autograd (it is a trainable leaf
  /// or was produced by an op over such nodes).
  bool NeedsGrad() const { return requires_grad_ || !parents_.empty(); }

  const std::vector<TensorPtr>& parents() const { return parents_; }

  /// Wires this node into the autograd graph. Called by ops.
  void SetBackward(std::vector<TensorPtr> parents,
                   std::function<void()> backward_fn);

  /// Runs reverse-mode differentiation from this node, which must be a
  /// scalar (1x1). Accumulates into the `grad()` buffers of all reachable
  /// nodes that need gradients.
  void Backward();

  /// Clears the gradient buffer (keeps allocation).
  void ZeroGrad();

  /// Returns a gradient-detached copy of the data (fresh leaf node).
  TensorPtr Detach() const;

  /// Scalar value accessor; requires a 1x1 tensor.
  float ScalarValue() const;

  /// Frobenius (entry-wise l2) norm of the data.
  float FrobeniusNorm() const;

  /// Debug string: "Tensor(RxC)" plus contents for small tensors.
  std::string ToString() const;

 private:
  int64_t rows_;
  int64_t cols_;
  bool requires_grad_;
  std::vector<float> data_;
  std::vector<float> grad_;
  std::vector<TensorPtr> parents_;
  std::function<void()> backward_fn_;
};

/// RAII guard disabling autograd graph construction within its scope, used
/// in evaluation and semantic propagation (which is learning-free).
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();

  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

 private:
  bool previous_;
};

/// True when ops should record backward closures.
bool GradEnabled();

}  // namespace desalign::tensor

#endif  // DESALIGN_TENSOR_TENSOR_H_
