#ifndef DESALIGN_TENSOR_OPS_H_
#define DESALIGN_TENSOR_OPS_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "tensor/sparse.h"
#include "tensor/tensor.h"

namespace desalign::tensor {

// Differentiable operations. Every function returns a fresh node wired into
// the autograd graph (when gradients are enabled and some input requires
// them). Shapes are validated with CHECK macros — a mismatch is a
// programming error, not a recoverable condition.

// ---- Elementwise binary (same shape) ----

/// c = a + b.
TensorPtr Add(const TensorPtr& a, const TensorPtr& b);
/// c = a - b.
TensorPtr Sub(const TensorPtr& a, const TensorPtr& b);
/// c = a ⊙ b (Hadamard).
TensorPtr Mul(const TensorPtr& a, const TensorPtr& b);
/// c = a / b (elementwise; caller guarantees b != 0).
TensorPtr Div(const TensorPtr& a, const TensorPtr& b);

// ---- Broadcasting ----

/// Adds row vector b (1 x C) to every row of a (N x C).
TensorPtr AddRowVector(const TensorPtr& a, const TensorPtr& b);
/// Multiplies every row r of a (N x C) by scalar b[r] (b is N x 1).
TensorPtr MulColVector(const TensorPtr& a, const TensorPtr& b);
/// Multiplies every row of a (N x C) entrywise by row vector b (1 x C);
/// equivalent to a * diag(b) — the paper's diagonal weight matrix.
TensorPtr MulRowVector(const TensorPtr& a, const TensorPtr& b);

// ---- Scalar-constant ops ----

/// c = s * a.
TensorPtr Scale(const TensorPtr& a, float s);
/// c = a + s (entrywise constant shift).
TensorPtr AddScalar(const TensorPtr& a, float s);
/// c = -a.
TensorPtr Neg(const TensorPtr& a);

// ---- Linear algebra ----

/// Matrix product (M x K) * (K x N) -> (M x N).
TensorPtr MatMul(const TensorPtr& a, const TensorPtr& b);
/// Transpose (M x N) -> (N x M).
TensorPtr Transpose(const TensorPtr& a);
/// Sparse-dense product A (R x C sparse) * x (C x K) -> (R x K). The sparse
/// operand is a constant (no gradient flows into it).
TensorPtr SpMM(const CsrMatrixPtr& a, const TensorPtr& x);

// ---- Elementwise nonlinearities ----

TensorPtr Relu(const TensorPtr& a);
/// max(x, slope*x); slope in (0, 1).
TensorPtr LeakyRelu(const TensorPtr& a, float slope = 0.2f);
TensorPtr Sigmoid(const TensorPtr& a);
TensorPtr Tanh(const TensorPtr& a);
TensorPtr Exp(const TensorPtr& a);
/// log(a + eps); eps guards against log(0).
TensorPtr LogSafe(const TensorPtr& a, float eps = 1e-12f);
/// a^2, entrywise.
TensorPtr Square(const TensorPtr& a);
/// |a|, entrywise (subgradient 0 at 0).
TensorPtr Abs(const TensorPtr& a);
/// Clamps entries into [lo, hi]; gradient is 1 strictly inside the range.
TensorPtr ClipByValue(const TensorPtr& a, float lo, float hi);
/// Entrywise maximum / minimum of two equally shaped tensors; the
/// gradient follows the selected operand (ties go to `a`).
TensorPtr MaxElementwise(const TensorPtr& a, const TensorPtr& b);
TensorPtr MinElementwise(const TensorPtr& a, const TensorPtr& b);

// ---- Softmax ----

/// Softmax across each row (numerically stabilized).
TensorPtr RowSoftmax(const TensorPtr& a);
/// Log-softmax across each row.
TensorPtr RowLogSoftmax(const TensorPtr& a);
/// Softmax over entries of a column vector (E x 1) grouped by segment id;
/// used for GAT edge attention (segments = destination nodes).
TensorPtr SegmentSoftmax(const TensorPtr& scores,
                         const std::vector<int64_t>& segments,
                         int64_t num_segments);

// ---- Reductions ----

/// Sum of all entries -> 1x1.
TensorPtr Sum(const TensorPtr& a);
/// Mean of all entries -> 1x1.
TensorPtr Mean(const TensorPtr& a);
/// Per-row sum (N x C) -> (N x 1).
TensorPtr RowSum(const TensorPtr& a);
/// Per-row maximum (N x C) -> (N x 1); gradient routes to the (first)
/// argmax entry per row.
TensorPtr RowMax(const TensorPtr& a);
/// Column means (N x C) -> (1 x C).
TensorPtr ColMean(const TensorPtr& a);
/// Index of the per-row maximum (plain helper, no autograd).
std::vector<int64_t> ArgMaxRows(const Tensor& a);
/// Scatter-add of rows: out[segments[e], :] += values[e, :]; out is
/// (num_segments x C). Used to aggregate GAT messages at destinations.
TensorPtr SegmentSum(const TensorPtr& values,
                     const std::vector<int64_t>& segments,
                     int64_t num_segments);

// ---- Shape ops ----

/// Horizontal concatenation of tensors with equal row counts.
TensorPtr ConcatCols(const std::vector<TensorPtr>& parts);
/// Vertical concatenation of tensors with equal column counts.
TensorPtr ConcatRows(const std::vector<TensorPtr>& parts);
/// Column slice [start, start+count).
TensorPtr SliceCols(const TensorPtr& a, int64_t start, int64_t count);
/// Row gather: out[e, :] = a[indices[e], :].
TensorPtr GatherRows(const TensorPtr& a, std::vector<int64_t> indices);
/// Diagonal of a square matrix -> (N x 1).
TensorPtr TakeDiag(const TensorPtr& a);

// ---- Normalization / regularization ----

/// Rows scaled to unit l2 norm: out_r = a_r / sqrt(||a_r||^2 + eps).
TensorPtr RowL2Normalize(const TensorPtr& a, float eps = 1e-12f);
/// Row-wise layer normalization with learnable gamma/beta (both 1 x C).
TensorPtr LayerNorm(const TensorPtr& x, const TensorPtr& gamma,
                    const TensorPtr& beta, float eps = 1e-5f);
/// Inverted dropout; identity when `training` is false or p == 0.
TensorPtr Dropout(const TensorPtr& a, float p, common::Rng& rng,
                  bool training);

// ---- Composite helpers ----

/// Per-row inner product of two equally shaped matrices -> (N x 1).
TensorPtr RowDot(const TensorPtr& a, const TensorPtr& b);
/// Sum of squared entries -> 1x1 (== tr(AᵀA)).
TensorPtr SumSquares(const TensorPtr& a);

}  // namespace desalign::tensor

#endif  // DESALIGN_TENSOR_OPS_H_
