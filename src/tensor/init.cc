#include "tensor/init.h"

#include <algorithm>
#include <cmath>

namespace desalign::tensor {

void GlorotUniform(Tensor& t, common::Rng& rng) {
  const float a = std::sqrt(
      6.0f / static_cast<float>(t.rows() + t.cols()));
  FillUniform(t, rng, -a, a);
}

void FillNormal(Tensor& t, common::Rng& rng, float mean, float stddev) {
  for (auto& v : t.data()) {
    v = static_cast<float>(rng.Normal(mean, stddev));
  }
}

void FillUniform(Tensor& t, common::Rng& rng, float lo, float hi) {
  for (auto& v : t.data()) v = rng.UniformF(lo, hi);
}

void FillConstant(Tensor& t, float value) {
  std::fill(t.data().begin(), t.data().end(), value);
}

void FillDiagonal(Tensor& t, float value) {
  const int64_t n = std::min(t.rows(), t.cols());
  for (int64_t i = 0; i < n; ++i) t.At(i, i) = value;
}

}  // namespace desalign::tensor
