#ifndef DESALIGN_OBS_METRICS_H_
#define DESALIGN_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace desalign::obs {

/// Monotonic event counter. Increment is a relaxed atomic add, so counters
/// are safe (and cheap) to bump from any thread, including hot loops.
class Counter {
 public:
  void Increment(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Last-written scalar (loss value, queue depth, ...). Set/value are atomic
/// loads/stores; there is no read-modify-write, so writers simply race to
/// publish the freshest value.
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  // Last-write-wins publish with no read-modify-write: accumulation-order
  // nondeterminism cannot arise, and gauges never feed computation.
  std::atomic<double> value_{0.0};  // desalign-lint: allow(float-atomic)
};

/// Point-in-time view of a Histogram. `bounds[i]` is the inclusive upper
/// edge of bucket i; the final bucket (counts.back()) is the overflow
/// bucket (+inf). min/max/mean are exact over every recorded value;
/// quantiles interpolate within the containing bucket and are clamped to
/// [min, max], so they are exact whenever all samples share one value
/// (in particular for 0 or 1 samples) and otherwise accurate to the
/// bucket's relative width.
struct HistogramSnapshot {
  int64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  std::vector<double> bounds;
  std::vector<int64_t> counts;

  /// Interpolated quantile (q in [0, 1]) over the bucket counts, clamped
  /// to the observed [min, max].
  double Quantile(double q) const;
};

/// Fixed-bucket histogram with lock-free recording: per-bucket relaxed
/// atomic counters plus atomic sum/min/max, so concurrent Record calls
/// never block each other and the type is safe under ThreadSanitizer.
/// Memory is fixed at construction no matter how many values are recorded
/// — the property the serving path needs for unbounded query replays.
class Histogram {
 public:
  /// `bounds` are strictly increasing inclusive bucket upper edges; an
  /// implicit +inf overflow bucket is appended. Empty bounds fall back to
  /// DefaultLatencyBucketsMs().
  explicit Histogram(std::vector<double> bounds = {});

  /// Exponential edges start, start*factor, ... (count edges, factor > 1).
  static std::vector<double> ExponentialBuckets(double start, double factor,
                                                int count);
  /// Default latency scale: 1 microsecond to ~100 seconds in milliseconds,
  /// ~10% relative resolution (so interpolated quantiles are within ~5%).
  static const std::vector<double>& DefaultLatencyBucketsMs();

  void Record(double value);
  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  HistogramSnapshot Snapshot() const;
  void Reset();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<int64_t>[]> counts_;  // bounds_.size() + 1
  std::atomic<int64_t> count_{0};
  // sum/min/max are observability-only diagnostics: their CAS-loop updates
  // are order-dependent in the last float ulp, but snapshots never feed
  // back into training or serving computation, so the determinism contract
  // (docs/PERFORMANCE.md) is unaffected.
  std::atomic<double> sum_{0.0};  // desalign-lint: allow(float-atomic)
  std::atomic<double> min_;       // desalign-lint: allow(float-atomic)
  std::atomic<double> max_;       // desalign-lint: allow(float-atomic)
};

/// Append-only sequence of observations in recording order — the shape of
/// a convergence curve (per-iteration propagation Dirichlet energy,
/// per-epoch energy trace). Unlike a Histogram it grows with the run, so
/// it is reserved for low-frequency series (per epoch / per iteration).
class Series {
 public:
  void Append(double value);
  std::vector<double> values() const;
  int64_t size() const;
  void Reset();

 private:
  mutable common::Mutex mutex_;
  std::vector<double> values_ GUARDED_BY(mutex_);
};

/// Process-wide, thread-safe metrics registry. Metrics are created on
/// first lookup and live for the process lifetime, so call sites may cache
/// the returned references; Reset zeroes values in place and never
/// invalidates them. Names are dot-separated paths (`train.epochs`,
/// `serve.latency_ms`, `quant.int8_queries`) and form a stable reporting
/// interface — see docs/OBSERVABILITY.md before renaming anything.
///
/// The `detail` flag gates derived measurements that cost real compute
/// (e.g. per-iteration Dirichlet-energy evaluation during semantic
/// propagation). Always-on instrumentation (counters, spans, latency
/// histograms) is cheap enough to leave unconditional; `--metrics-out`
/// turns detail on for the duration of a CLI run.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create. Each kind has its own namespace, but reuse of one
  /// name across kinds is confusing — don't. For histograms, `bounds` is
  /// honoured only by the call that creates the metric.
  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name,
                          std::vector<double> bounds = {});
  Series& GetSeries(const std::string& name);

  bool detail_enabled() const {
    return detail_.load(std::memory_order_relaxed);
  }
  void set_detail_enabled(bool enabled) {
    detail_.store(enabled, std::memory_order_relaxed);
  }

  /// Zeroes every registered metric in place (handles stay valid).
  void ResetAll();

  /// Consistent-enough copy for export; concurrent writers may land
  /// between two metric reads, which a run report can tolerate.
  struct Snapshot {
    std::map<std::string, int64_t> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, HistogramSnapshot> histograms;
    std::map<std::string, std::vector<double>> series;
  };
  Snapshot Collect() const;

 private:
  mutable common::Mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_
      GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Series>> series_ GUARDED_BY(mutex_);
  std::atomic<bool> detail_{false};
};

}  // namespace desalign::obs

#endif  // DESALIGN_OBS_METRICS_H_
