#include "obs/report.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/fault_injection.h"

namespace desalign::obs {

namespace {

std::string FormatDouble(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", value);
  return buf;
}

// JSON has no representation for inf/nan; emit null so the file stays
// parseable by strict consumers (jq).
std::string JsonNumber(double value) {
  if (!std::isfinite(value)) return "null";
  return FormatDouble(value);
}

std::string JsonString(const std::string& text) {
  std::string out = "\"";
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

void AppendHistogramJson(const HistogramSnapshot& hist, std::ostream& os) {
  os << "{\"count\":" << hist.count << ",\"sum\":" << JsonNumber(hist.sum)
     << ",\"min\":" << JsonNumber(hist.min)
     << ",\"max\":" << JsonNumber(hist.max)
     << ",\"mean\":" << JsonNumber(hist.mean)
     << ",\"p50\":" << JsonNumber(hist.p50)
     << ",\"p95\":" << JsonNumber(hist.p95)
     << ",\"p99\":" << JsonNumber(hist.p99) << ",\"buckets\":[";
  bool first = true;
  for (size_t b = 0; b < hist.counts.size(); ++b) {
    if (hist.counts[b] == 0) continue;
    if (!first) os << ',';
    first = false;
    os << "{\"le\":"
       << (b < hist.bounds.size() ? JsonNumber(hist.bounds[b]) : "null")
       << ",\"count\":" << hist.counts[b] << '}';
  }
  os << "]}";
}

void AppendSpanJson(const SpanNodeSnapshot& span, std::ostream& os) {
  os << "{\"name\":" << JsonString(span.name) << ",\"count\":" << span.count
     << ",\"total_seconds\":" << JsonNumber(span.total_seconds)
     << ",\"children\":[";
  for (size_t i = 0; i < span.children.size(); ++i) {
    if (i) os << ',';
    AppendSpanJson(span.children[i], os);
  }
  os << "]}";
}

// CSV fields never need quoting here: metric/span names are code-chosen
// identifiers and values are numbers. Keep commas/quotes out of names.
void AppendCsvRow(std::ostream& os, const std::string& kind,
                  const std::string& name, const std::string& field,
                  const std::string& value) {
  os << kind << ',' << name << ',' << field << ',' << value << '\n';
}

void AppendSpanCsv(const SpanNodeSnapshot& span, const std::string& prefix,
                   std::ostream& os) {
  const std::string path = prefix.empty() ? span.name : prefix + "/" + span.name;
  AppendCsvRow(os, "span", path, "count", std::to_string(span.count));
  AppendCsvRow(os, "span", path, "total_seconds",
               FormatDouble(span.total_seconds));
  for (const auto& child : span.children) {
    AppendSpanCsv(child, path, os);
  }
}

bool HasSuffix(const std::string& text, const std::string& suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

RunReport RunReport::Collect() {
  return Collect(MetricsRegistry::Global());
}

RunReport RunReport::Collect(const MetricsRegistry& registry) {
  RunReport report;
  report.metrics_ = registry.Collect();
  report.spans_ = CollectSpanTree();
  return report;
}

std::string RunReport::ToJson() const {
  std::ostringstream os;
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : metrics_.counters) {
    if (!first) os << ',';
    first = false;
    os << JsonString(name) << ':' << value;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : metrics_.gauges) {
    if (!first) os << ',';
    first = false;
    os << JsonString(name) << ':' << JsonNumber(value);
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, hist] : metrics_.histograms) {
    if (!first) os << ',';
    first = false;
    os << JsonString(name) << ':';
    AppendHistogramJson(hist, os);
  }
  os << "},\"series\":{";
  first = true;
  for (const auto& [name, values] : metrics_.series) {
    if (!first) os << ',';
    first = false;
    os << JsonString(name) << ":[";
    for (size_t i = 0; i < values.size(); ++i) {
      if (i) os << ',';
      os << JsonNumber(values[i]);
    }
    os << ']';
  }
  os << "},\"spans\":[";
  for (size_t i = 0; i < spans_.size(); ++i) {
    if (i) os << ',';
    AppendSpanJson(spans_[i], os);
  }
  os << "]}";
  return os.str();
}

std::string RunReport::ToCsv() const {
  std::ostringstream os;
  os << "kind,name,field,value\n";
  for (const auto& [name, value] : metrics_.counters) {
    AppendCsvRow(os, "counter", name, "value", std::to_string(value));
  }
  for (const auto& [name, value] : metrics_.gauges) {
    AppendCsvRow(os, "gauge", name, "value", FormatDouble(value));
  }
  for (const auto& [name, hist] : metrics_.histograms) {
    AppendCsvRow(os, "histogram", name, "count", std::to_string(hist.count));
    AppendCsvRow(os, "histogram", name, "sum", FormatDouble(hist.sum));
    AppendCsvRow(os, "histogram", name, "min", FormatDouble(hist.min));
    AppendCsvRow(os, "histogram", name, "max", FormatDouble(hist.max));
    AppendCsvRow(os, "histogram", name, "mean", FormatDouble(hist.mean));
    AppendCsvRow(os, "histogram", name, "p50", FormatDouble(hist.p50));
    AppendCsvRow(os, "histogram", name, "p95", FormatDouble(hist.p95));
    AppendCsvRow(os, "histogram", name, "p99", FormatDouble(hist.p99));
  }
  for (const auto& [name, values] : metrics_.series) {
    for (size_t i = 0; i < values.size(); ++i) {
      AppendCsvRow(os, "series", name, std::to_string(i),
                   FormatDouble(values[i]));
    }
  }
  for (const auto& span : spans_) {
    AppendSpanCsv(span, "", os);
  }
  return os.str();
}

common::Status RunReport::ValidatePath(const std::string& path) {
  if (HasSuffix(path, ".json") || HasSuffix(path, ".csv")) {
    return common::Status::Ok();
  }
  return common::Status::InvalidArgument(
      "metrics report path must end in .json or .csv: " + path);
}

common::Status RunReport::WriteTo(const std::string& path) const {
  DESALIGN_RETURN_NOT_OK(ValidatePath(path));
  // Fault site: proves --metrics-out failures surface as Status, never as
  // a silently missing report (DESALIGN_FAULTS="report.write:fail").
  if (common::FaultInjector::Global().OnSite("report.write")) {
    return common::Status::IoError("injected fault at report.write writing " +
                                   path);
  }
  std::string payload;
  if (HasSuffix(path, ".json")) {
    payload = ToJson();
    payload += '\n';
  } else {
    payload = ToCsv();
  }
  std::ofstream out(path);
  if (!out) {
    return common::Status::IoError("cannot open " + path + " for writing");
  }
  out << payload;
  if (!out) return common::Status::IoError("short write to " + path);
  return common::Status::Ok();
}

}  // namespace desalign::obs
