#ifndef DESALIGN_OBS_TRACE_H_
#define DESALIGN_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace desalign::obs {

/// Aggregated view of one node of the phase tree: how many times the phase
/// ran and the total wall-time spent inside it (children included, since a
/// parent span is open while its children run).
struct SpanNodeSnapshot {
  std::string name;
  int64_t count = 0;
  double total_seconds = 0.0;
  std::vector<SpanNodeSnapshot> children;

  /// Depth-first lookup of a direct child by name; nullptr when absent.
  const SpanNodeSnapshot* Child(std::string_view child_name) const;
};

/// RAII scoped timer that aggregates into a process-wide per-phase
/// wall-time tree. Nesting follows C++ scopes per thread: a span opened
/// while another span on the same thread is live becomes its child; spans
/// opened on other threads start new roots. Repeated visits to the same
/// path accumulate (count, total), so a 60-epoch loop yields one
/// `train/epoch` node with count 60 — the shape the efficiency analysis
/// reads ("where did this epoch's time go").
///
/// Cost is two steady_clock reads plus one short critical section per
/// span, so spans belong at phase granularity (epoch, decode, batch), not
/// around individual tensor ops.
class TraceSpan {
 public:
  explicit TraceSpan(std::string_view name);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  // Internal tree nodes; opaque to keep the header light.
  void* node_;
  void* parent_;
  std::chrono::steady_clock::time_point start_;
};

/// Copies the current span tree (root nodes in first-open order).
std::vector<SpanNodeSnapshot> CollectSpanTree();

/// Clears the aggregated tree. Must not run while any span is live —
/// call it between runs (the CLI does, right before an instrumented run).
void ResetSpanTree();

}  // namespace desalign::obs

#endif  // DESALIGN_OBS_TRACE_H_
