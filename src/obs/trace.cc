#include "obs/trace.h"

#include <memory>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace desalign::obs {

namespace {

// Internal aggregation node. Children are owned and ordered by first open,
// which keeps the exported tree in program order (forward before backward).
struct SpanNode {
  std::string name;
  int64_t count = 0;
  double total_seconds = 0.0;
  std::vector<std::unique_ptr<SpanNode>> children;

  SpanNode* FindOrAddChild(std::string_view child_name) {
    for (auto& child : children) {
      if (child->name == child_name) return child.get();
    }
    children.push_back(std::make_unique<SpanNode>());
    children.back()->name = std::string(child_name);
    return children.back().get();
  }
};

struct SpanTree {
  common::Mutex mutex;
  // Sentinel root; its children are the exported roots.
  SpanNode root GUARDED_BY(mutex);
};

SpanTree& GlobalTree() {
  static SpanTree& tree = *new SpanTree();
  return tree;
}

// Per-thread innermost open span. Spans opened on a worker thread nest
// under whatever that thread previously opened, not under another
// thread's stack — cross-thread work shows up as its own root.
thread_local SpanNode* tls_open_span = nullptr;

SpanNodeSnapshot SnapshotNode(const SpanNode& node) {
  SpanNodeSnapshot snap;
  snap.name = node.name;
  snap.count = node.count;
  snap.total_seconds = node.total_seconds;
  snap.children.reserve(node.children.size());
  for (const auto& child : node.children) {
    snap.children.push_back(SnapshotNode(*child));
  }
  return snap;
}

}  // namespace

const SpanNodeSnapshot* SpanNodeSnapshot::Child(
    std::string_view child_name) const {
  for (const auto& child : children) {
    if (child.name == child_name) return &child;
  }
  return nullptr;
}

TraceSpan::TraceSpan(std::string_view name) {
  SpanTree& tree = GlobalTree();
  SpanNode* parent = tls_open_span;
  parent_ = parent;
  {
    common::MutexLock lock(tree.mutex);
    node_ = (parent ? parent : &tree.root)->FindOrAddChild(name);
  }
  tls_open_span = static_cast<SpanNode*>(node_);
  // Start the clock after the bookkeeping so node lookup does not count
  // toward the span's own time.
  start_ = std::chrono::steady_clock::now();
}

TraceSpan::~TraceSpan() {
  const auto elapsed = std::chrono::steady_clock::now() - start_;
  const double seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(elapsed)
          .count();
  SpanNode* node = static_cast<SpanNode*>(node_);
  SpanTree& tree = GlobalTree();
  {
    common::MutexLock lock(tree.mutex);
    node->count += 1;
    node->total_seconds += seconds;
  }
  // Spans are scoped objects, so within a thread destruction order is
  // reverse construction order: the innermost open span reverts to
  // whatever it was when this span opened.
  tls_open_span = static_cast<SpanNode*>(parent_);
}

std::vector<SpanNodeSnapshot> CollectSpanTree() {
  SpanTree& tree = GlobalTree();
  common::MutexLock lock(tree.mutex);
  std::vector<SpanNodeSnapshot> roots;
  roots.reserve(tree.root.children.size());
  for (const auto& child : tree.root.children) {
    roots.push_back(SnapshotNode(*child));
  }
  return roots;
}

void ResetSpanTree() {
  SpanTree& tree = GlobalTree();
  common::MutexLock lock(tree.mutex);
  tree.root.children.clear();
}

}  // namespace desalign::obs
