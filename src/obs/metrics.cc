#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace desalign::obs {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// CAS-loop helpers for the Histogram's observability-only sum/min/max —
// see the allow(float-atomic) rationale on the fields in metrics.h.
void AtomicAddDouble(std::atomic<double>& target,  // desalign-lint: allow(float-atomic)
                     double delta) {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

void AtomicMinDouble(std::atomic<double>& target,  // desalign-lint: allow(float-atomic)
                     double value) {
  double current = target.load(std::memory_order_relaxed);
  while (value < current &&
         !target.compare_exchange_weak(current, value,
                                       std::memory_order_relaxed)) {
  }
}

void AtomicMaxDouble(std::atomic<double>& target,  // desalign-lint: allow(float-atomic)
                     double value) {
  double current = target.load(std::memory_order_relaxed);
  while (value > current &&
         !target.compare_exchange_weak(current, value,
                                       std::memory_order_relaxed)) {
  }
}

}  // namespace

double HistogramSnapshot::Quantile(double q) const {
  if (count <= 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // 0-based fractional rank; the last rank is count - 1.
  const double rank = q * static_cast<double>(count - 1);
  int64_t seen = 0;
  for (size_t b = 0; b < counts.size(); ++b) {
    const int64_t in_bucket = counts[b];
    if (in_bucket == 0) continue;
    if (rank < static_cast<double>(seen + in_bucket)) {
      const double lower = b == 0 ? 0.0 : bounds[b - 1];
      const double upper = b < bounds.size() ? bounds[b] : max;
      const double fraction =
          (rank - static_cast<double>(seen) + 0.5) /
          static_cast<double>(in_bucket);
      const double value = lower + fraction * (upper - lower);
      // Clamping to the observed range makes degenerate distributions
      // (0/1 samples, all-duplicates) exact.
      return std::clamp(value, min, max);
    }
    seen += in_bucket;
  }
  return max;
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(bounds.empty() ? DefaultLatencyBucketsMs()
                             : std::move(bounds)),
      min_(kInf),
      max_(-kInf) {
  for (size_t i = 1; i < bounds_.size(); ++i) {
    DESALIGN_CHECK_MSG(bounds_[i - 1] < bounds_[i],
                       "histogram bounds must be strictly increasing");
  }
  counts_ = std::make_unique<std::atomic<int64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) counts_[i].store(0);
}

std::vector<double> Histogram::ExponentialBuckets(double start, double factor,
                                                  int count) {
  DESALIGN_CHECK(start > 0.0 && factor > 1.0 && count > 0);
  std::vector<double> bounds(static_cast<size_t>(count));
  double edge = start;
  for (int i = 0; i < count; ++i) {
    bounds[static_cast<size_t>(i)] = edge;
    edge *= factor;
  }
  return bounds;
}

const std::vector<double>& Histogram::DefaultLatencyBucketsMs() {
  // 1e-3 ms .. ~1e5 ms with 10% growth: ~194 edges, fixed ~1.5 KiB.
  static const std::vector<double>& buckets =
      *new std::vector<double>(ExponentialBuckets(1e-3, 1.1, 194));
  return buckets;
}

void Histogram::Record(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const size_t bucket = static_cast<size_t>(it - bounds_.begin());
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAddDouble(sum_, value);
  AtomicMinDouble(min_, value);
  AtomicMaxDouble(max_, value);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.bounds = bounds_;
  snap.counts.resize(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    snap.counts[i] = counts_[i].load(std::memory_order_relaxed);
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  const double lo = min_.load(std::memory_order_relaxed);
  const double hi = max_.load(std::memory_order_relaxed);
  snap.min = std::isfinite(lo) ? lo : 0.0;
  snap.max = std::isfinite(hi) ? hi : 0.0;
  snap.mean = snap.count > 0 ? snap.sum / static_cast<double>(snap.count)
                             : 0.0;
  snap.p50 = snap.Quantile(0.50);
  snap.p95 = snap.Quantile(0.95);
  snap.p99 = snap.Quantile(0.99);
  return snap;
}

void Histogram::Reset() {
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(kInf, std::memory_order_relaxed);
  max_.store(-kInf, std::memory_order_relaxed);
}

void Series::Append(double value) {
  common::MutexLock lock(mutex_);
  values_.push_back(value);
}

std::vector<double> Series::values() const {
  common::MutexLock lock(mutex_);
  return values_;
}

int64_t Series::size() const {
  common::MutexLock lock(mutex_);
  return static_cast<int64_t>(values_.size());
}

void Series::Reset() {
  common::MutexLock lock(mutex_);
  values_.clear();
}

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked intentionally: call sites cache metric references, and the
  // registry must outlive every static-destruction-order hazard.
  static MetricsRegistry& registry = *new MetricsRegistry();
  return registry;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  common::MutexLock lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  common::MutexLock lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds) {
  common::MutexLock lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return *slot;
}

Series& MetricsRegistry::GetSeries(const std::string& name) {
  common::MutexLock lock(mutex_);
  auto& slot = series_[name];
  if (!slot) slot = std::make_unique<Series>();
  return *slot;
}

void MetricsRegistry::ResetAll() {
  common::MutexLock lock(mutex_);
  for (auto& [name, metric] : counters_) metric->Reset();
  for (auto& [name, metric] : gauges_) metric->Reset();
  for (auto& [name, metric] : histograms_) metric->Reset();
  for (auto& [name, metric] : series_) metric->Reset();
}

MetricsRegistry::Snapshot MetricsRegistry::Collect() const {
  common::MutexLock lock(mutex_);
  Snapshot snap;
  for (const auto& [name, metric] : counters_) {
    snap.counters[name] = metric->value();
  }
  for (const auto& [name, metric] : gauges_) {
    snap.gauges[name] = metric->value();
  }
  for (const auto& [name, metric] : histograms_) {
    snap.histograms[name] = metric->Snapshot();
  }
  for (const auto& [name, metric] : series_) {
    snap.series[name] = metric->values();
  }
  return snap;
}

}  // namespace desalign::obs
