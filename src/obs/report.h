#ifndef DESALIGN_OBS_REPORT_H_
#define DESALIGN_OBS_REPORT_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace desalign::obs {

/// One run's worth of observability output: a registry snapshot plus the
/// aggregated span tree, with JSON/CSV serializers. The JSON schema
/// (documented in docs/OBSERVABILITY.md) is what `--metrics-out` writes
/// and what downstream tooling (jq sanity checks, plotting scripts)
/// consumes, so treat field names as a stable interface.
class RunReport {
 public:
  /// Snapshots MetricsRegistry::Global() and the global span tree.
  static RunReport Collect();
  /// Snapshots an explicit registry (tests use private registries).
  static RunReport Collect(const MetricsRegistry& registry);

  /// {"counters": {...}, "gauges": {...}, "histograms": {...},
  ///  "series": {...}, "spans": [...]}. Non-finite doubles serialize as
  ///  null; histogram buckets list only non-empty ones as {le, count}
  ///  pairs (le == null for the overflow bucket).
  std::string ToJson() const;

  /// Flat rows `kind,name,field,value` — spans use slash-joined paths
  /// for the name, series use the sample index as the field.
  std::string ToCsv() const;

  /// Ok iff `path` ends in a supported report extension (`.json` or
  /// `.csv`). Lets callers reject a bad path up front instead of after a
  /// long run.
  static common::Status ValidatePath(const std::string& path);

  /// Dispatches on extension: `.json` or `.csv`.
  common::Status WriteTo(const std::string& path) const;

  const MetricsRegistry::Snapshot& metrics() const { return metrics_; }
  const std::vector<SpanNodeSnapshot>& spans() const { return spans_; }

 private:
  MetricsRegistry::Snapshot metrics_;
  std::vector<SpanNodeSnapshot> spans_;
};

}  // namespace desalign::obs

#endif  // DESALIGN_OBS_REPORT_H_
