#ifndef DESALIGN_COMMON_TABLE_H_
#define DESALIGN_COMMON_TABLE_H_

#include <iostream>
#include <string>
#include <vector>

namespace desalign::common {

/// Fixed-width ASCII table writer used by every bench binary to print rows
/// in the layout of the paper's tables.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);
  /// Inserts a horizontal separator line before the next row.
  void AddSeparator();
  void Print(std::ostream& os = std::cout) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;  // empty row == separator
};

/// Formats a fraction as percent with one decimal ("0.471" -> "47.1").
std::string Pct(double fraction);

/// Formats seconds with two decimals.
std::string Secs(double seconds);

}  // namespace desalign::common

#endif  // DESALIGN_COMMON_TABLE_H_
