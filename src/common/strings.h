#ifndef DESALIGN_COMMON_STRINGS_H_
#define DESALIGN_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace desalign::common {

/// Splits `text` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view text, char sep);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, char sep);

/// Removes leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view text);

/// Formats a double with `digits` decimal places (fixed notation).
std::string FormatDouble(double value, int digits);

/// True when `text` starts with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// Strict decimal int64 parse: the whole of `text` must be one optionally
/// signed integer (no trailing junk, no overflow). Returns false without
/// touching `*out` on failure — never throws, unlike std::stoll, which is
/// why the file loaders use these for untrusted input.
bool ParseInt64(std::string_view text, int64_t* out);

/// Strict float parse with the same whole-string contract as ParseInt64.
bool ParseFloat(std::string_view text, float* out);

}  // namespace desalign::common

#endif  // DESALIGN_COMMON_STRINGS_H_
