#ifndef DESALIGN_COMMON_FLAGS_H_
#define DESALIGN_COMMON_FLAGS_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/status.h"

namespace desalign::common {

/// Minimal command-line flag parser for the CLI tools. Supports
/// `--name=value`, `--name value`, bare boolean `--name` /
/// `--no-name`, and `--help`. Unknown flags are errors; remaining
/// positional arguments are collected in order.
class FlagParser {
 public:
  explicit FlagParser(std::string program_description);

  /// Registration. Each out-pointer must outlive Parse(); it is
  /// pre-loaded with the default so callers can rely on it unconditionally.
  void AddString(const std::string& name, const std::string& default_value,
                 const std::string& help, std::string* out);
  void AddInt64(const std::string& name, int64_t default_value,
                const std::string& help, int64_t* out);
  void AddDouble(const std::string& name, double default_value,
                 const std::string& help, double* out);
  void AddBool(const std::string& name, bool default_value,
               const std::string& help, bool* out);

  /// Parses argv[start..argc). Returns InvalidArgument on unknown flags or
  /// malformed values, and FailedPrecondition("help requested") after
  /// printing usage when --help is present.
  Status Parse(int argc, const char* const* argv, int start = 1);

  /// Positional (non-flag) arguments, in order of appearance.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Human-readable usage text.
  std::string Usage() const;

 private:
  struct Flag {
    std::string name;
    std::string help;
    std::string default_text;
    bool is_bool = false;
    std::function<Status(const std::string&)> set;
    std::function<Status()> set_true;   // bool flags only
    std::function<Status()> set_false;  // bool flags only
  };

  const Flag* Find(const std::string& name) const;

  std::string description_;
  std::vector<Flag> flags_;
  std::vector<std::string> positional_;
};

/// Registers the global `--threads` flag (0 = auto: DESALIGN_NUM_THREADS
/// env var, else min(8, hardware_concurrency)). Every CLI subcommand
/// registers this so one knob sizes every ThreadPool::Global() call site
/// (tensor matmul, sparse spmm, serve retrieval).
void AddThreadsFlag(FlagParser& parser, int64_t* out);

/// Applies a parsed `--threads` value by resizing ThreadPool::Global().
/// Negative values are invalid; 0 restores the automatic default.
Status ApplyThreadsFlag(int64_t threads);

/// Splits "a,b,c" into doubles; Status on malformed entries.
Result<std::vector<double>> ParseDoubleList(const std::string& text);

/// Splits "a,b,c" into trimmed non-empty strings.
std::vector<std::string> ParseStringList(const std::string& text);

}  // namespace desalign::common

#endif  // DESALIGN_COMMON_FLAGS_H_
