#ifndef DESALIGN_COMMON_MUTEX_H_
#define DESALIGN_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace desalign::common {

/// std::mutex wrapped as a Clang thread-safety CAPABILITY.
///
/// libstdc++'s std::mutex / std::lock_guard carry no capability
/// attributes, so `-Wthread-safety` cannot see them acquire anything and
/// GUARDED_BY fields would warn on every access. This wrapper (plus
/// MutexLock / CondVar below) is the annotated locking vocabulary for the
/// whole tree: any field that a mutex protects is declared
///
///   Mutex mutex_;
///   int64_t pending_ GUARDED_BY(mutex_);
///
/// and every access compiles only under a MutexLock (or inside a
/// REQUIRES(mutex_) function). On GCC everything degrades to plain
/// std::mutex semantics with zero overhead.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { m_.lock(); }
  void Unlock() RELEASE() { m_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  friend class MutexLock;
  std::mutex m_;
};

/// RAII scoped lock over Mutex (the annotated std::lock_guard /
/// std::unique_lock replacement). Holds the capability from construction
/// to destruction; CondVar::Wait* atomically release and reacquire it,
/// which the analysis models as "held throughout" — sound for GUARDED_BY,
/// since the data is only ever touched while the lock is in fact held.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : lock_(mu.m_) {}
  ~MutexLock() RELEASE() {}

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// Condition variable paired with Mutex/MutexLock. The predicate-taking
/// std::condition_variable overloads are deliberately absent: the analysis
/// treats a lambda as a separate function and would reject guarded-field
/// reads inside it, so call sites spell the standard loop out —
///
///   MutexLock lock(mutex_);
///   while (!ready_) cv_.Wait(lock);
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(MutexLock& lock) { cv_.wait(lock.lock_); }

  template <class Clock, class Duration>
  std::cv_status WaitUntil(
      MutexLock& lock,
      const std::chrono::time_point<Clock, Duration>& deadline) {
    return cv_.wait_until(lock.lock_, deadline);
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace desalign::common

#endif  // DESALIGN_COMMON_MUTEX_H_
