#include "common/strings.h"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace desalign::common {

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      break;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, char sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.push_back(sep);
    out += parts[i];
  }
  return out;
}

std::string_view Trim(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin])))
    ++begin;
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1])))
    --end;
  return text.substr(begin, end - begin);
}

std::string FormatDouble(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool ParseInt64(std::string_view text, int64_t* out) {
  if (text.empty() || text.size() >= 32) return false;
  char buf[32];
  text.copy(buf, text.size());
  buf[text.size()] = '\0';
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(buf, &end, 10);
  if (errno == ERANGE || end != buf + text.size()) return false;
  *out = static_cast<int64_t>(value);
  return true;
}

bool ParseFloat(std::string_view text, float* out) {
  if (text.empty() || text.size() >= 64) return false;
  char buf[64];
  text.copy(buf, text.size());
  buf[text.size()] = '\0';
  errno = 0;
  char* end = nullptr;
  const float value = std::strtof(buf, &end);
  if (errno == ERANGE || end != buf + text.size()) return false;
  *out = value;
  return true;
}

}  // namespace desalign::common
