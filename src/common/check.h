#ifndef DESALIGN_COMMON_CHECK_H_
#define DESALIGN_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

// CHECK macros for programming errors (shape mismatches, broken invariants)
// in numeric code paths where a Status return would be noise. They abort
// with file/line context; DESALIGN_DCHECK compiles out in NDEBUG builds.

namespace desalign::common::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr, const char* msg) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s%s%s\n", file, line, expr,
               msg[0] ? " — " : "", msg);
  std::abort();
}

}  // namespace desalign::common::internal

#define DESALIGN_CHECK(cond)                                               \
  do {                                                                     \
    if (!(cond))                                                           \
      ::desalign::common::internal::CheckFailed(__FILE__, __LINE__, #cond, \
                                                "");                       \
  } while (false)

#define DESALIGN_CHECK_MSG(cond, msg)                                      \
  do {                                                                     \
    if (!(cond))                                                           \
      ::desalign::common::internal::CheckFailed(__FILE__, __LINE__, #cond, \
                                                (msg));                    \
  } while (false)

#define DESALIGN_CHECK_EQ(a, b) DESALIGN_CHECK((a) == (b))
#define DESALIGN_CHECK_NE(a, b) DESALIGN_CHECK((a) != (b))
#define DESALIGN_CHECK_LT(a, b) DESALIGN_CHECK((a) < (b))
#define DESALIGN_CHECK_LE(a, b) DESALIGN_CHECK((a) <= (b))
#define DESALIGN_CHECK_GT(a, b) DESALIGN_CHECK((a) > (b))
#define DESALIGN_CHECK_GE(a, b) DESALIGN_CHECK((a) >= (b))

#ifdef NDEBUG
#define DESALIGN_DCHECK(cond) \
  do {                        \
  } while (false)
#else
#define DESALIGN_DCHECK(cond) DESALIGN_CHECK(cond)
#endif

#endif  // DESALIGN_COMMON_CHECK_H_
