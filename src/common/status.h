#ifndef DESALIGN_COMMON_STATUS_H_
#define DESALIGN_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace desalign::common {

/// Canonical error codes, modeled after the Arrow/Abseil status vocabulary.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kIoError,
  kInternal,
  kUnimplemented,
};

/// Returns a human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// Lightweight status object used for fallible operations (I/O, parsing,
/// configuration). Programming errors in hot numeric paths use CHECK macros
/// instead; Status is reserved for conditions a caller can meaningfully
/// handle.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Formats as "Code: message" (or "OK").
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Holds either a value of type T or an error Status. Mirrors
/// `arrow::Result` in spirit; accessing the value of an errored Result
/// aborts (programming error).
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit from value — enables `return value;` in Result-returning code.
  Result(T value) : status_(), value_(std::move(value)), has_value_(true) {}
  /// Implicit from error status — enables `return Status::...;`.
  Result(Status status) : status_(std::move(status)), has_value_(false) {}

  bool ok() const { return has_value_; }
  const Status& status() const { return status_; }

  const T& value() const& {
    AbortIfError();
    return value_;
  }
  T& value() & {
    AbortIfError();
    return value_;
  }
  T&& value() && {
    AbortIfError();
    return std::move(value_);
  }

  /// Returns the contained value or `fallback` when errored.
  T value_or(T fallback) const {
    return has_value_ ? value_ : std::move(fallback);
  }

 private:
  void AbortIfError() const;

  Status status_;
  T value_{};
  bool has_value_;
};

namespace internal {
[[noreturn]] void DieOnBadResultAccess(const Status& status);
}  // namespace internal

template <typename T>
void Result<T>::AbortIfError() const {
  if (!has_value_) internal::DieOnBadResultAccess(status_);
}

/// Propagates a non-OK Status from an expression, Arrow-style.
#define DESALIGN_RETURN_NOT_OK(expr)                    \
  do {                                                  \
    ::desalign::common::Status _st = (expr);            \
    if (!_st.ok()) return _st;                          \
  } while (false)

/// Assigns the value of a Result expression or propagates its error.
#define DESALIGN_ASSIGN_OR_RETURN(lhs, expr) \
  DESALIGN_ASSIGN_OR_RETURN_IMPL(            \
      DESALIGN_STATUS_CONCAT(_res_, __LINE__), lhs, expr)

#define DESALIGN_STATUS_CONCAT_INNER(a, b) a##b
#define DESALIGN_STATUS_CONCAT(a, b) DESALIGN_STATUS_CONCAT_INNER(a, b)

#define DESALIGN_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                   \
  if (!tmp.ok()) return tmp.status();                  \
  lhs = std::move(tmp).value();

}  // namespace desalign::common

#endif  // DESALIGN_COMMON_STATUS_H_
