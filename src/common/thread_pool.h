#ifndef DESALIGN_COMMON_THREAD_POOL_H_
#define DESALIGN_COMMON_THREAD_POOL_H_

#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace desalign::common {

/// Fixed-size worker pool with a blocking ParallelFor. Work is split into
/// contiguous chunks (one per worker plus the calling thread), so
/// float accumulation order inside a chunk is fixed and results are
/// bit-deterministic for a given thread count.
///
/// Thread count resolution: DESALIGN_NUM_THREADS env var if set, else
/// min(8, hardware_concurrency); a value of 1 disables the workers and
/// ParallelFor degenerates to a plain loop on the caller.
class ThreadPool {
 public:
  /// Process-wide pool (lazily constructed, never destroyed at exit).
  static ThreadPool& Global();

  /// Resizes the process-wide pool: n >= 1 forces that many threads, n <= 0
  /// restores the automatic default (DESALIGN_NUM_THREADS env var, else
  /// min(8, hardware_concurrency)). The old pool is drained and joined, so
  /// this must not race with in-flight ParallelFor calls — call it at
  /// startup (the CLI's --threads flag) or between parallel sections.
  static void SetGlobalThreadCount(int num_threads);

  /// The automatic thread count SetGlobalThreadCount(0) / the first
  /// Global() call would resolve to.
  static int DefaultThreadCount();

  /// ParallelFor grain for a loop whose per-index cost is roughly
  /// `cost_per_item` scalar operations: sized so each chunk carries about
  /// `target_ops` operations, keeping dispatch overhead negligible without
  /// starving the pool of chunks. Grain only affects partitioning, never
  /// results (chunks own disjoint index ranges).
  static int64_t GrainForCost(int64_t cost_per_item,
                              int64_t target_ops = 65536);

  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  /// Runs fn(chunk_begin, chunk_end) over a partition of [begin, end) and
  /// blocks until every chunk completes. `fn` must be safe to call
  /// concurrently on disjoint ranges. Ranges smaller than `grain` run
  /// inline on the caller.
  void ParallelFor(int64_t begin, int64_t end,
                   const std::function<void(int64_t, int64_t)>& fn,
                   int64_t grain = 1024);

 private:
  struct Task {
    const std::function<void(int64_t, int64_t)>* fn = nullptr;
    int64_t begin = 0;
    int64_t end = 0;
  };

  void WorkerLoop();

  int num_threads_;
  std::vector<std::thread> workers_;
  Mutex mutex_;
  CondVar work_ready_;
  CondVar work_done_;
  std::vector<Task> queue_ GUARDED_BY(mutex_);
  int64_t pending_ GUARDED_BY(mutex_) = 0;
  bool shutdown_ GUARDED_BY(mutex_) = false;
};

}  // namespace desalign::common

#endif  // DESALIGN_COMMON_THREAD_POOL_H_
