#ifndef DESALIGN_COMMON_RNG_H_
#define DESALIGN_COMMON_RNG_H_

#include <cstdint>
#include <random>
#include <string>
#include <vector>

namespace desalign::common {

/// Deterministic random number generator wrapper. Every stochastic component
/// in the library (dataset generation, weight init, dropout, negative
/// sampling) draws from an explicitly threaded Rng so that experiments are
/// reproducible from a single seed.
class Rng {
 public:
  /// Seed used when none is given — named so the default is visible (and
  /// desalign-lint's unseeded-rng rule can hold the whole tree to
  /// explicit seeding).
  static constexpr uint64_t kDefaultSeed = 42;

  explicit Rng(uint64_t seed = kDefaultSeed) : engine_(seed) {}

  /// Uniform double in [0, 1).
  double Uniform() { return unit_(engine_); }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

  /// Uniform float in [lo, hi).
  float UniformF(float lo, float hi) {
    return static_cast<float>(Uniform(lo, hi));
  }

  /// Standard normal sample.
  double Normal() { return normal_(engine_); }

  /// Normal with the given mean / stddev.
  double Normal(double mean, double stddev) {
    return mean + stddev * Normal();
  }

  /// Uniform integer in [0, n). Requires n > 0.
  int64_t UniformInt(int64_t n) {
    return static_cast<int64_t>(engine_() % static_cast<uint64_t>(n));
  }

  /// Uniform integer in [lo, hi).
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return lo + UniformInt(hi - lo);
  }

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p) { return Uniform() < p; }

  /// Returns k distinct indices sampled uniformly from [0, n) (k <= n).
  std::vector<int64_t> SampleWithoutReplacement(int64_t n, int64_t k);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (int64_t i = static_cast<int64_t>(v.size()) - 1; i > 0; --i) {
      std::swap(v[i], v[UniformInt(i + 1)]);
    }
  }

  /// Derives a child generator; used to give independent, reproducible
  /// streams to sub-components.
  Rng Fork() { return Rng(engine_()); }

  std::mt19937_64& engine() { return engine_; }

  /// Engine state as portable ASCII (the standard stream format), for
  /// checkpointing. The cached distribution state (e.g. the Box-Muller
  /// spare of Normal()) is NOT captured — DeserializeState resets the
  /// distributions, so a save/restore pair is a stream-reset point. The
  /// integer draws (UniformInt, Shuffle, Fork) are exact regardless.
  std::string SerializeState() const;

  /// Restores a SerializeState() snapshot and resets the distributions.
  /// False (generator untouched) when `state` is malformed.
  bool DeserializeState(const std::string& state);

 private:
  std::mt19937_64 engine_{kDefaultSeed};
  std::uniform_real_distribution<double> unit_{0.0, 1.0};
  std::normal_distribution<double> normal_{0.0, 1.0};
};

}  // namespace desalign::common

#endif  // DESALIGN_COMMON_RNG_H_
