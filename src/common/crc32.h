#ifndef DESALIGN_COMMON_CRC32_H_
#define DESALIGN_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace desalign::common {

/// CRC-32 (IEEE 802.3 polynomial, the zlib/gzip variant) over `size` bytes.
/// Pass a previous return value as `seed` to checksum data incrementally:
///   crc = Crc32(a, na); crc = Crc32(b, nb, crc);
/// equals Crc32 over the concatenation. Used by the checkpoint format to
/// detect torn writes and bit rot before any payload is trusted.
uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0);

}  // namespace desalign::common

#endif  // DESALIGN_COMMON_CRC32_H_
