#ifndef DESALIGN_COMMON_LOGGING_H_
#define DESALIGN_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace desalign::common {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Global minimum level; messages below it are dropped. Defaults to kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log sink: accumulates a message and emits it (with a
/// timestamp and level tag) to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace desalign::common

#define DESALIGN_LOG(level)                                           \
  ::desalign::common::internal::LogMessage(                           \
      ::desalign::common::LogLevel::k##level, __FILE__, __LINE__)

#endif  // DESALIGN_COMMON_LOGGING_H_
